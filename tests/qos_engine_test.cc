// Unit/property suites for the QoS engine's building blocks: token-bucket
// conservation, DRR weight proportionality, config validation, and the
// tenant table's admission/arbitration state machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qos/tenant.h"
#include "qos/tenant_table.h"
#include "qos/token_bucket.h"
#include "util/random.h"

namespace ctflash::qos {
namespace {

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucket, UnlimitedAdmitsInstantly) {
  TokenBucket bucket;
  EXPECT_FALSE(bucket.limited());
  EXPECT_EQ(bucket.EarliestAt(123, 1e18), 123);
  bucket.Consume(123, 1e18);  // no-op
  EXPECT_EQ(bucket.EarliestAt(124, 1.0), 124);
}

TEST(TokenBucket, BurstAdmittedImmediatelyThenPaced) {
  // 1000 ops/s, burst 10: the first 10 admit at t=0, the 11th waits 1 ms.
  TokenBucket bucket(1000.0, 10.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(bucket.EarliestAt(0, 1.0), 0) << "burst op " << i;
    bucket.Consume(0, 1.0);
  }
  const Us next = bucket.EarliestAt(0, 1.0);
  EXPECT_EQ(next, 1000);  // 1 token / (1000 ops/s) = 1000 us
  bucket.Consume(next, 1.0);
  EXPECT_EQ(bucket.EarliestAt(next, 1.0), next + 1000);
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(1000.0, 10.0);
  bucket.Consume(0, 10.0);
  EXPECT_NEAR(bucket.TokensAt(0), 0.0, 1e-9);
  // A long idle gap refills to the burst, not beyond.
  EXPECT_NEAR(bucket.TokensAt(1'000'000'000), 10.0, 1e-9);
}

TEST(TokenBucket, OversizeCostAdmitsAtFullBucketAndCarriesDebt) {
  // burst 10, cost 25: admitted once the bucket is full, balance -15,
  // and the next unit cost waits for the debt plus one token.
  TokenBucket bucket(1000.0, 10.0);
  bucket.Consume(0, 10.0);  // drain
  const Us at = bucket.EarliestAt(0, 25.0);
  EXPECT_EQ(at, 10'000);  // refill to full takes 10 tokens / 1000 per sec
  bucket.Consume(at, 25.0);
  EXPECT_NEAR(bucket.TokensAt(at), -15.0, 1e-9);
  EXPECT_EQ(bucket.EarliestAt(at, 1.0), at + 16'000);
}

TEST(TokenBucket, ConservationNeverExceedsRatePlusBurst) {
  // Property: on any admission schedule where callers wait for EarliestAt,
  // total admitted cost over [0, T] is bounded by burst + rate * T.
  util::Xoshiro256StarStar rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const double rate = 100.0 + static_cast<double>(rng.UniformBelow(10'000));
    const double burst = 1.0 + static_cast<double>(rng.UniformBelow(64));
    TokenBucket bucket(rate, burst);
    double admitted = 0.0;
    Us now = 0;
    Us last_admit = 0;
    for (int i = 0; i < 2'000; ++i) {
      const double cost = 1.0 + static_cast<double>(rng.UniformBelow(4));
      // An aggressive submitter: asks as early as possible, sometimes
      // idles to let the bucket refill.
      now += static_cast<Us>(rng.UniformBelow(200));
      const Us at = bucket.EarliestAt(now, cost);
      ASSERT_GE(at, now);
      bucket.Consume(at, cost);
      admitted += cost;
      now = at;
      last_admit = at;
      const double bound =
          burst + rate * static_cast<double>(last_admit) / 1e6;
      ASSERT_LE(admitted, bound + cost + 1e-6)
          << "trial " << trial << " op " << i;
    }
  }
}

TEST(TokenBucket, RejectsInvalidConstruction) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, 0.0), std::invalid_argument);
}

// --- QosConfig validation --------------------------------------------------

QosConfig TwoTenantConfig() {
  QosConfig qos;
  qos.tenants.resize(2);
  qos.tenants[0].name = "a";
  qos.tenants[0].queues = {0, 1};
  qos.tenants[1].name = "b";
  qos.tenants[1].queues = {2, 3};
  return qos;
}

TEST(QosConfig, ValidatesCleanPartition) {
  EXPECT_NO_THROW(TwoTenantConfig().Validate(4));
}

TEST(QosConfig, RejectsBadConfigs) {
  {
    auto qos = TwoTenantConfig();
    qos.tenants[0].weight = 0;
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[1].queues = {1, 2};  // queue 1 assigned twice
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[1].queues = {2};  // queue 3 unowned
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[1].queues = {2, 4};  // out of range
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[0].queues = {};  // no queues
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[0].iops_limit = -1.0;
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[0].min_share = 0.6;
    qos.tenants[1].min_share = 0.6;  // reservations oversubscribed
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
  {
    auto qos = TwoTenantConfig();
    qos.tenants[0].min_share = 1.0;  // must be < 1
    EXPECT_THROW(qos.Validate(4), std::invalid_argument);
  }
}

// --- DrrArbiter ------------------------------------------------------------

TEST(DrrArbiter, WeightProportionalUnderSaturation) {
  // Both tenants always active: dispatch counts follow the 2:1 weights
  // exactly over whole rounds.
  DrrArbiter drr({2, 1});
  const std::vector<bool> active = {true, true};
  std::uint64_t counts[2] = {0, 0};
  for (int i = 0; i < 3'000; ++i) counts[drr.Pick(active)]++;
  EXPECT_EQ(counts[0], 2'000u);
  EXPECT_EQ(counts[1], 1'000u);
}

TEST(DrrArbiter, SoleActiveTenantGetsEverything) {
  DrrArbiter drr({2, 5});
  const std::vector<bool> only_b = {false, true};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(drr.Pick(only_b), 1u);
}

TEST(DrrArbiter, IdleTenantForfeitsCredit) {
  // Tenant 1 sits idle for many rounds; when it wakes it gets its weight's
  // share of the future, not a burst repaying the idle past.
  DrrArbiter drr({1, 1});
  const std::vector<bool> only_a = {true, false};
  const std::vector<bool> both = {true, true};
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(drr.Pick(only_a), 0u);
  std::uint64_t counts[2] = {0, 0};
  for (int i = 0; i < 1'000; ++i) counts[drr.Pick(both)]++;
  EXPECT_EQ(counts[0], 500u);
  EXPECT_EQ(counts[1], 500u);
}

TEST(DrrArbiter, NothingActiveReturnsNoTenant) {
  DrrArbiter drr({1, 1});
  EXPECT_EQ(drr.Pick({false, false}), kNoTenant);
}

TEST(DrrArbiter, DeterministicSequence) {
  auto run = [] {
    DrrArbiter drr({3, 2, 1});
    util::Xoshiro256StarStar rng(11);
    std::vector<TenantId> picks;
    for (int i = 0; i < 500; ++i) {
      const std::vector<bool> active = {rng.Bernoulli(0.7), rng.Bernoulli(0.7),
                                        rng.Bernoulli(0.7)};
      picks.push_back(drr.Pick(active));
    }
    return picks;
  };
  EXPECT_EQ(run(), run());
}

// --- TenantTable -----------------------------------------------------------

TEST(TenantTable, MapsQueuesAndBuckets) {
  auto qos = TwoTenantConfig();
  qos.tenants[0].iops_limit = 1000.0;
  qos.tenants[0].iops_burst = 4.0;
  TenantTable table(qos, 4);
  EXPECT_EQ(table.TenantCount(), 2u);
  EXPECT_EQ(table.TenantOfQueue(0), 0u);
  EXPECT_EQ(table.TenantOfQueue(1), 0u);
  EXPECT_EQ(table.TenantOfQueue(2), 1u);
  EXPECT_EQ(table.TenantOfQueue(3), 1u);
  EXPECT_TRUE(table.Limited(0));
  EXPECT_FALSE(table.Limited(1));

  // Tenant 0's burst of 4 admits instantly, the 5th request paces.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(table.AdmissionAt(0, 0, 16 * 1024), 0);
    table.ChargeAdmission(0, 0, 16 * 1024);
  }
  EXPECT_EQ(table.AdmissionAt(0, 0, 16 * 1024), 1000);
  // Tenant 1 is uncapped regardless.
  EXPECT_EQ(table.AdmissionAt(1, 0, 1 << 30), 0);
}

TEST(TenantTable, RejectsInvalidConfig) {
  auto qos = TwoTenantConfig();
  qos.tenants[1].queues = {2};  // queue 3 unowned
  EXPECT_THROW(TenantTable(qos, 4), std::invalid_argument);
}

TEST(TenantTable, MinShareFloorOverridesDrr) {
  // Tenant 1 reserves 40 % of dispatches; after a window in which tenant 0
  // took everything, the reservation wins every pick until the share
  // recovers, regardless of DRR weights stacked toward tenant 0.
  auto qos = TwoTenantConfig();
  qos.tenants[0].weight = 8;
  qos.tenants[1].min_share = 0.4;
  TenantTable table(qos, 4);
  const std::vector<bool> both = {true, true};
  for (int i = 0; i < 100; ++i) table.NoteDispatch(0, ArbClass::kRead);
  ASSERT_DOUBLE_EQ(table.WindowShareOf(1), 0.0);
  std::uint64_t counts[2] = {0, 0};
  for (int i = 0; i < 200; ++i) {
    const TenantId pick = table.PickTenant(ArbClass::kRead, both);
    counts[pick]++;
    table.NoteDispatch(pick, ArbClass::kRead);
  }
  // 100 head-start dispatches for tenant 0: tenant 1 must claw back to
  // ~40 % of the 300-dispatch window, i.e. about 120 of the 200 (the floor
  // oscillates a few picks around the boundary).
  EXPECT_GE(counts[1], 115u);
  EXPECT_GE(table.WindowShareOf(1), 0.38);
}

TEST(TenantTable, StatsResetClearsTelemetryNotArbitration) {
  auto qos = TwoTenantConfig();
  TenantTable table(qos, 4);
  table.NoteDispatch(0, ArbClass::kRead);
  table.StatsOf(0).throttled = 7;
  table.ResetStats();
  EXPECT_EQ(table.StatsOf(0).read_dispatches, 0u);
  EXPECT_EQ(table.StatsOf(0).throttled, 0u);
}

}  // namespace
}  // namespace ctflash::qos
