// Figure 17 — Web Server Trace: Write Latency Comparison.
//
// Cumulative write latency of conventional FTL vs FTL+PPB across speed
// differences 2x-5x on the web/SQL trace.  Paper shape: curves coincide.
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Figure 17: Web Server Trace - Write Latency",
                     "Figure 17", options);

  util::TablePrinter table({"Speed Difference", "Conventional FTL (s)",
                            "FTL with PPB (s)", "Delta"});
  for (const double ratio : {2.0, 3.0, 4.0, 5.0}) {
    const auto cmp = bench::RunComparison(bench::Workload::kWebServer,
                                          16 * 1024, ratio, options);
    table.AddRow({util::TablePrinter::FormatDouble(ratio, 0) + "x",
                  util::TablePrinter::FormatScientific(
                      cmp.conventional.TotalWriteSeconds()),
                  util::TablePrinter::FormatScientific(
                      cmp.ppb.TotalWriteSeconds()),
                  util::TablePrinter::FormatPercent(cmp.WriteEnhancement(), 4)});
  }
  table.Print();
  std::cout << "\nPaper shape: curves coincide at every ratio.\n";
  return 0;
}
