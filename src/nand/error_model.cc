#include "nand/error_model.h"

#include <cmath>
#include <stdexcept>

namespace ctflash::nand {

void ErrorModelConfig::Validate() const {
  if (base_rber <= 0.0 || base_rber >= 1.0) {
    throw std::invalid_argument("ErrorModelConfig: base_rber must be in (0,1)");
  }
  if (layer_skew < 1.0) {
    throw std::invalid_argument("ErrorModelConfig: layer_skew must be >= 1");
  }
  if (pe_scale <= 0.0) {
    throw std::invalid_argument("ErrorModelConfig: pe_scale must be > 0");
  }
  if (codeword_bytes == 0) {
    throw std::invalid_argument("ErrorModelConfig: codeword_bytes must be > 0");
  }
}

LayerErrorModel::LayerErrorModel(const NandGeometry& geometry,
                                 const ErrorModelConfig& config)
    : geometry_(geometry), config_(config) {
  geometry_.Validate();
  config_.Validate();
  if (geometry_.page_size_bytes % config_.codeword_bytes != 0) {
    throw std::invalid_argument(
        "LayerErrorModel: page size must be a whole number of codewords");
  }
}

double LayerErrorModel::Rber(std::uint32_t page_in_block,
                             std::uint32_t pe_cycles) const {
  const std::uint32_t layer = geometry_.LayerOfPage(page_in_block);
  const std::uint32_t layers = geometry_.num_layers;
  // A single-layer geometry has no vertical etch gradient: its one layer is
  // the top of the (degenerate) stack, so depth is 0, not 1 — otherwise a
  // 1-layer device would eat the full bottom-layer `layer_skew` while the
  // top layer of every multi-layer device gets skew^0.
  const double depth =
      layers == 1 ? 0.0
                  : static_cast<double>(layer) / static_cast<double>(layers - 1);
  const double rber = config_.base_rber * std::pow(config_.layer_skew, depth) *
                      std::exp(static_cast<double>(pe_cycles) / config_.pe_scale);
  return rber >= 1.0 ? 1.0 : rber;
}

std::uint64_t LayerErrorModel::DecodedBytes(std::uint64_t transfer_bytes) const {
  const std::uint64_t page = geometry_.page_size_bytes;
  if (transfer_bytes == 0 || transfer_bytes >= page) return page;
  const std::uint64_t cw = config_.codeword_bytes;
  const std::uint64_t rounded = (transfer_bytes + cw - 1) / cw * cw;
  return rounded < page ? rounded : page;
}

std::uint64_t LayerErrorModel::SampleBitErrors(
    std::uint32_t page_in_block, std::uint32_t pe_cycles,
    util::Xoshiro256StarStar& rng, std::uint64_t transfer_bytes,
    double rber_scale) const {
  const double bits = static_cast<double>(DecodedBytes(transfer_bytes)) * 8.0;
  double lambda = bits * Rber(page_in_block, pe_cycles);
  lambda *= rber_scale;
  if (lambda > bits) lambda = bits;
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's method.
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= rng.UniformDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large lambda.
  const double u1 = rng.UniformDouble();
  const double u2 = rng.UniformDouble();
  const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = lambda + std::sqrt(lambda) * z;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

std::uint64_t LayerErrorModel::CodewordsPerPage() const {
  return geometry_.page_size_bytes / config_.codeword_bytes;
}

bool LayerErrorModel::Correctable(std::uint64_t bit_errors,
                                  std::uint64_t transfer_bytes) const {
  const std::uint64_t codewords =
      DecodedBytes(transfer_bytes) / config_.codeword_bytes;
  // Worst-case packing: ceil(bit_errors / codewords) errors in one codeword.
  const std::uint64_t worst = (bit_errors + codewords - 1) / codewords;
  return worst <= config_.correctable_bits_per_codeword;
}

double LayerErrorModel::EnduranceEstimate(std::uint32_t page_in_block) const {
  const double bits_per_codeword = static_cast<double>(config_.codeword_bytes) * 8.0;
  const double budget_rber =
      static_cast<double>(config_.correctable_bits_per_codeword) /
      bits_per_codeword;
  const double fresh = Rber(page_in_block, 0);
  if (fresh >= budget_rber) return 0.0;
  return config_.pe_scale * std::log(budget_rber / fresh);
}

}  // namespace ctflash::nand
