#include "nand/geometry.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>

namespace ctflash::nand {
namespace {

NandGeometry Small() {
  NandGeometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.dies_per_chip = 1;
  g.planes_per_die = 2;
  g.blocks_per_plane = 3;
  g.pages_per_block = 12;
  g.page_size_bytes = 4096;
  g.num_layers = 4;
  return g;
}

TEST(Geometry, Table1DefaultsMatchPaper) {
  const NandGeometry g;  // defaults
  EXPECT_EQ(g.pages_per_block, 384u);
  EXPECT_EQ(g.page_size_bytes, 16u * 1024);
  EXPECT_EQ(g.num_layers, 64u);
  // Total capacity ~64 GiB (Table 1 "Flash size").
  const double gib = static_cast<double>(g.TotalBytes()) / (1ull << 30);
  EXPECT_NEAR(gib, 64.0, 1.0);
}

TEST(Geometry, Totals) {
  const auto g = Small();
  EXPECT_EQ(g.TotalPlanes(), 8u);
  EXPECT_EQ(g.TotalBlocks(), 24u);
  EXPECT_EQ(g.TotalPages(), 24u * 12);
  EXPECT_EQ(g.TotalBytes(), 24ull * 12 * 4096);
  EXPECT_EQ(g.TotalChips(), 4u);
}

TEST(Geometry, ValidationRejectsZeroes) {
  auto g = Small();
  g.channels = 0;
  EXPECT_THROW(g.Validate(), std::invalid_argument);
}

TEST(Geometry, ValidationRejectsLayerMismatch) {
  auto g = Small();
  g.num_layers = 5;  // 12 % 5 != 0
  EXPECT_THROW(g.Validate(), std::invalid_argument);
  g.num_layers = 24;  // more layers than pages
  EXPECT_THROW(g.Validate(), std::invalid_argument);
}

TEST(Geometry, PpnRoundTrip) {
  const auto g = Small();
  for (BlockId b = 0; b < g.TotalBlocks(); ++b) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      const Ppn ppn = g.PpnOf(b, p);
      EXPECT_EQ(g.BlockOf(ppn), b);
      EXPECT_EQ(g.PageOf(ppn), p);
    }
  }
}

TEST(Geometry, LayerOfPageMapsTopToBottom) {
  const auto g = Small();  // 12 pages, 4 layers -> 3 pages per layer
  EXPECT_EQ(g.LayerOfPage(0), 0u);
  EXPECT_EQ(g.LayerOfPage(2), 0u);
  EXPECT_EQ(g.LayerOfPage(3), 1u);
  EXPECT_EQ(g.LayerOfPage(11), 3u);
  EXPECT_THROW(g.LayerOfPage(12), std::out_of_range);
}

TEST(Geometry, AddressDecompositionIsBijective) {
  const auto g = Small();
  // Every block id maps to a unique physical address and back.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                      std::uint32_t, std::uint64_t>>
      seen;
  for (BlockId b = 0; b < g.TotalBlocks(); ++b) {
    const auto a = g.AddressOfBlock(b);
    EXPECT_LT(a.channel, g.channels);
    EXPECT_LT(a.chip, g.chips_per_channel);
    EXPECT_LT(a.die, g.dies_per_chip);
    EXPECT_LT(a.plane, g.planes_per_die);
    EXPECT_LT(a.block, g.blocks_per_plane);
    EXPECT_TRUE(
        seen.insert({a.channel, a.chip, a.die, a.plane, a.block}).second);
  }
}

TEST(Geometry, ConsecutiveBlocksStripeAcrossPlanes) {
  const auto g = Small();
  // Blocks 0..TotalPlanes-1 all land on different planes (plane-major).
  std::set<std::uint64_t> chips;
  for (BlockId b = 0; b < g.TotalPlanes(); ++b) {
    const auto a = g.AddressOfBlock(b);
    EXPECT_EQ(a.block, 0u);
    chips.insert(g.ChipOfBlock(b));
  }
  EXPECT_EQ(chips.size(), g.TotalChips());
}

TEST(Geometry, ChipAndChannelConsistent) {
  const auto g = Small();
  for (BlockId b = 0; b < g.TotalBlocks(); ++b) {
    const auto a = g.AddressOfBlock(b);
    EXPECT_EQ(g.ChipOfBlock(b),
              static_cast<std::uint64_t>(a.channel) * g.chips_per_channel +
                  a.chip);
    EXPECT_EQ(g.ChannelOfBlock(b), a.channel);
  }
}

TEST(Geometry, AddressOfPpnIncludesPage) {
  const auto g = Small();
  const Ppn ppn = g.PpnOf(5, 7);
  const auto a = g.AddressOfPpn(ppn);
  EXPECT_EQ(a.page, 7u);
}

TEST(Geometry, OutOfRangeThrows) {
  const auto g = Small();
  EXPECT_THROW(g.AddressOfBlock(g.TotalBlocks()), std::out_of_range);
  EXPECT_THROW(g.AddressOfPpn(g.TotalPages()), std::out_of_range);
  EXPECT_THROW(g.ChipOfBlock(g.TotalBlocks()), std::out_of_range);
}

TEST(Geometry, ScaledGeometryHitsTarget) {
  const NandGeometry base;  // 64 GiB
  const auto g = ScaledGeometry(base, 1ull << 30);
  EXPECT_GE(g.TotalBytes(), 1ull << 30);
  // Block shape unchanged.
  EXPECT_EQ(g.pages_per_block, base.pages_per_block);
  EXPECT_EQ(g.page_size_bytes, base.page_size_bytes);
  EXPECT_EQ(g.num_layers, base.num_layers);
  // Not wildly oversized: within one block row of the target.
  const std::uint64_t row = static_cast<std::uint64_t>(g.pages_per_block) *
                            g.page_size_bytes * g.TotalPlanes();
  EXPECT_LT(g.TotalBytes() - (1ull << 30), row);
}

TEST(Geometry, ScaledGeometryMinimumOneBlock) {
  const NandGeometry base;
  const auto g = ScaledGeometry(base, 1);
  EXPECT_EQ(g.blocks_per_plane, 1u);
  EXPECT_THROW(ScaledGeometry(base, 0), std::invalid_argument);
}

TEST(Geometry, ToStringMentionsShape) {
  const auto g = Small();
  const auto s = g.ToString();
  EXPECT_NE(s.find("2ch"), std::string::npos);
  EXPECT_NE(s.find("4 layers"), std::string::npos);
}

/// Layer mapping must be monotone non-decreasing and cover all layers, for
/// any (pages_per_block, num_layers) pair with even division.
class LayerSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(LayerSweep, MonotoneAndComplete) {
  auto g = Small();
  g.pages_per_block = GetParam().first;
  g.num_layers = GetParam().second;
  g.Validate();
  std::uint32_t prev = 0;
  std::set<std::uint32_t> layers;
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    const auto layer = g.LayerOfPage(p);
    EXPECT_GE(layer, prev);
    EXPECT_LT(layer, g.num_layers);
    prev = layer;
    layers.insert(layer);
  }
  EXPECT_EQ(layers.size(), g.num_layers);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayerSweep,
    ::testing::Values(std::make_pair(384u, 64u), std::make_pair(384u, 48u),
                      std::make_pair(128u, 32u), std::make_pair(64u, 64u),
                      std::make_pair(12u, 4u)));

}  // namespace
}  // namespace ctflash::nand
