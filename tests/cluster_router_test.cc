// ShardRouter invariants: seed-deterministic placement, bounded load
// imbalance under a million hashed users, and minimal-disruption remapping
// on device failure (only the failed device's shards move; a spare adopts
// them wholesale).
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/shard_router.h"

namespace ctflash::cluster {
namespace {

RouterConfig SmallConfig() {
  RouterConfig cfg;
  cfg.num_devices = 8;
  cfg.spare_devices = 1;
  cfg.num_shards = 256;
  cfg.replicas = 2;
  cfg.vnodes = 64;
  cfg.seed = 42;
  return cfg;
}

TEST(ShardRouter, PlacementIsDeterministic) {
  const RouterConfig cfg = SmallConfig();
  ShardRouter a(cfg);
  ShardRouter b(cfg);
  for (ShardId s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(a.PlacementOf(s), b.PlacementOf(s)) << "shard " << s;
  }
  for (std::uint64_t user = 0; user < 10'000; ++user) {
    ASSERT_EQ(a.ShardOfUser(user), b.ShardOfUser(user)) << "user " << user;
    ASSERT_EQ(a.DeviceOfUser(user), b.DeviceOfUser(user)) << "user " << user;
  }
  // A different seed reshuffles the world.
  RouterConfig other = cfg;
  other.seed = 43;
  ShardRouter c(other);
  std::uint32_t moved = 0;
  for (ShardId s = 0; s < cfg.num_shards; ++s) {
    if (a.PrimaryOf(s) != c.PrimaryOf(s)) ++moved;
  }
  EXPECT_GT(moved, cfg.num_shards / 2);
}

TEST(ShardRouter, PlacementsAreDistinctAliveDevices) {
  ShardRouter router(SmallConfig());
  for (ShardId s = 0; s < router.config().num_shards; ++s) {
    const std::vector<DeviceId>& p = router.PlacementOf(s);
    ASSERT_EQ(p.size(), router.config().replicas);
    const std::set<DeviceId> distinct(p.begin(), p.end());
    EXPECT_EQ(distinct.size(), p.size()) << "shard " << s;
    for (const DeviceId d : p) {
      EXPECT_LT(d, router.config().num_devices);  // spares start outside
      EXPECT_TRUE(router.IsAlive(d));
    }
  }
}

TEST(ShardRouter, MillionUsersBalanceAcrossDevices) {
  const RouterConfig cfg = SmallConfig();
  ShardRouter router(cfg);
  std::vector<std::uint64_t> per_device(cfg.num_devices, 0);
  constexpr std::uint64_t kUsers = 1'000'000;
  for (std::uint64_t user = 0; user < kUsers; ++user) {
    ++per_device[router.DeviceOfUser(user)];
  }
  const double mean = static_cast<double>(kUsers) / cfg.num_devices;
  std::uint64_t max_load = 0, min_load = kUsers;
  for (const std::uint64_t n : per_device) {
    max_load = std::max(max_load, n);
    min_load = std::min(min_load, n);
  }
  // Consistent hashing with 64 vnodes/device keeps the hot/cold spread
  // bounded: no device sees more than 2x the fair share or less than a
  // quarter of it.
  EXPECT_LT(static_cast<double>(max_load), 2.0 * mean)
      << "max " << max_load << " vs mean " << mean;
  EXPECT_GT(static_cast<double>(min_load), 0.25 * mean)
      << "min " << min_load << " vs mean " << mean;
}

TEST(ShardRouter, SpareAdoptsExactlyTheFailedDevicesShards) {
  ShardRouter router(SmallConfig());
  const DeviceId failed = 3;
  const DeviceId spare = router.config().num_devices;  // first spare id

  std::map<ShardId, std::vector<DeviceId>> before;
  for (ShardId s = 0; s < router.config().num_shards; ++s) {
    before[s] = router.PlacementOf(s);
  }
  ASSERT_EQ(router.SparesLeft(), 1u);
  const std::vector<ShardMove> moves = router.MarkFailed(failed);
  EXPECT_EQ(router.SparesLeft(), 0u);
  EXPECT_FALSE(router.IsAlive(failed));
  EXPECT_FALSE(moves.empty());

  std::set<ShardId> moved_shards;
  for (const ShardMove& m : moves) {
    EXPECT_EQ(m.from, failed);
    EXPECT_EQ(m.to, spare);  // spare adoption: every slot lands on the spare
    EXPECT_NE(m.source, kNoDevice);  // replicas=2 -> a survivor exists
    EXPECT_NE(m.source, failed);
    moved_shards.insert(m.shard);
  }
  for (ShardId s = 0; s < router.config().num_shards; ++s) {
    const std::vector<DeviceId>& now = router.PlacementOf(s);
    if (std::find(before[s].begin(), before[s].end(), failed) ==
        before[s].end()) {
      // Minimal disruption: untouched placements are bit-identical.
      EXPECT_EQ(now, before[s]) << "shard " << s;
      EXPECT_EQ(moved_shards.count(s), 0u);
    } else {
      // The failed member was replaced in place; survivors kept their slots.
      EXPECT_EQ(moved_shards.count(s), 1u);
      ASSERT_EQ(now.size(), before[s].size());
      for (std::size_t slot = 0; slot < now.size(); ++slot) {
        if (before[s][slot] == failed) {
          EXPECT_EQ(now[slot], spare);
        } else {
          EXPECT_EQ(now[slot], before[s][slot]);
        }
      }
    }
  }
  // Repeated failure of the same device is a no-op.
  EXPECT_TRUE(router.MarkFailed(failed).empty());
}

TEST(ShardRouter, FailureWithoutSparesRemapsToSurvivors) {
  RouterConfig cfg = SmallConfig();
  cfg.spare_devices = 0;
  ShardRouter router(cfg);
  const DeviceId failed = 5;
  const std::vector<ShardMove> moves = router.MarkFailed(failed);
  EXPECT_FALSE(moves.empty());
  for (const ShardMove& m : moves) {
    EXPECT_EQ(m.from, failed);
    EXPECT_NE(m.to, failed);
    EXPECT_TRUE(router.IsAlive(m.to));
  }
  for (ShardId s = 0; s < cfg.num_shards; ++s) {
    const std::vector<DeviceId>& p = router.PlacementOf(s);
    const std::set<DeviceId> distinct(p.begin(), p.end());
    EXPECT_EQ(distinct.size(), p.size());
    for (const DeviceId d : p) EXPECT_NE(d, failed);
  }
}

TEST(ShardRouter, SingleReplicaFailureIsUnrecoverable) {
  RouterConfig cfg = SmallConfig();
  cfg.replicas = 1;
  cfg.spare_devices = 0;
  ShardRouter router(cfg);
  const std::vector<ShardMove> moves = router.MarkFailed(0);
  EXPECT_FALSE(moves.empty());
  for (const ShardMove& m : moves) {
    EXPECT_EQ(m.source, kNoDevice);  // nobody left to rebuild from
  }
}

TEST(ShardRouter, ValidatesConfig) {
  RouterConfig cfg;
  cfg.num_devices = 0;
  EXPECT_THROW(ShardRouter{cfg}, std::invalid_argument);
  cfg = RouterConfig{};
  cfg.replicas = cfg.num_devices + 1;
  EXPECT_THROW(ShardRouter{cfg}, std::invalid_argument);
  cfg = RouterConfig{};
  EXPECT_THROW(ShardRouter(cfg).MarkFailed(cfg.TotalDevices()),
               std::invalid_argument);
}

}  // namespace
}  // namespace ctflash::cluster
