// Multi-tenant QoS engine, end to end through the host interface: weighted
// DRR throughput proportionality, noisy-neighbor isolation, token-bucket
// rate capping, the write-aging starvation fix, per-queue telemetry and
// bit-for-bit determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "qos/tenant.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"

namespace ctflash::host {
namespace {

ssd::SsdConfig SmallConfig() {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  return cfg;
}

Us Prefill(ssd::Ssd& ssd, std::uint32_t fraction_pct) {
  ssd::ExperimentRunner runner(ssd);
  return runner.Prefill(ssd.LogicalBytes() / 100 * fraction_pct);
}

/// Two tenants on queues {0,1} and {2,3}.
qos::QosConfig TwoTenants(std::uint32_t weight_a, std::uint32_t weight_b) {
  qos::QosConfig qos;
  qos.tenants.resize(2);
  qos.tenants[0].name = "a";
  qos.tenants[0].weight = weight_a;
  qos.tenants[0].queues = {0, 1};
  qos.tenants[1].name = "b";
  qos.tenants[1].weight = weight_b;
  qos.tenants[1].queues = {2, 3};
  return qos;
}

TEST(TenantQos, WeightedDrrTwoToOneThroughputUnderSaturation) {
  // The acceptance shape: identical saturating closed-loop read workloads
  // at 2:1 weights serve 2:1 within +-10 %.  Measured as the per-tenant
  // dispatch ratio over the contention window (counting stops the moment
  // the faster tenant's work is exhausted, before its tail drains).
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  HostConfig cfg;
  cfg.qos = TwoTenants(2, 1);
  cfg.device_slots = 4;  // keep the ready set deep so arbitration decides
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  const std::uint64_t kRequests = 6'000;  // 1 page each (16 KiB)
  std::uint64_t dispatches[2] = {0, 0};
  bool counting = true;
  host.scheduler().OnDispatch([&](const FlashTransaction& txn) {
    if (!counting || txn.tenant == qos::kNoTenant) return;
    dispatches[txn.tenant]++;
    if (dispatches[txn.tenant] >= kRequests) counting = false;
  });

  TenantWorkload base;
  base.queue_depth = 16;
  base.total_requests = kRequests;
  base.read_fraction = 1.0;
  base.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  std::vector<TenantWorkload> workloads(2, base);
  workloads[0].tenant = 0;
  workloads[0].seed = 21;
  workloads[1].tenant = 1;
  workloads[1].seed = 22;
  MultiTenantGenerator(host, workloads).Run();

  ASSERT_FALSE(counting) << "one tenant should exhaust its work";
  ASSERT_GT(dispatches[1], 0u);
  const double ratio = static_cast<double>(dispatches[0]) /
                       static_cast<double>(dispatches[1]);
  EXPECT_GE(ratio, 1.8) << dispatches[0] << ":" << dispatches[1];
  EXPECT_LE(ratio, 2.2) << dispatches[0] << ":" << dispatches[1];
}

/// Paced (latency-sensitive) tenant 0 on a private working-set slice;
/// optional flooder on tenant 1.  Returns tenant 0's read p99.
double PacedP99(const qos::QosConfig& qos, bool with_flooder) {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  HostConfig cfg;
  cfg.qos = qos;
  cfg.device_slots = 4;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  TenantWorkload paced;
  paced.tenant = 0;
  paced.interarrival_us = 2'000;
  paced.total_requests = 400;
  paced.read_fraction = 1.0;
  paced.footprint_bytes = ssd.LogicalBytes() / 100 * 20;
  paced.seed = 31;
  std::vector<TenantWorkload> workloads = {paced};
  if (with_flooder) {
    TenantWorkload flooder;
    flooder.tenant = 1;
    flooder.queue_depth = 32;
    flooder.total_requests = 40'000;
    flooder.read_fraction = 1.0;
    flooder.footprint_base_bytes = ssd.LogicalBytes() / 100 * 20;
    flooder.footprint_bytes = ssd.LogicalBytes() / 100 * 40;
    flooder.seed = 32;
    workloads.push_back(flooder);
  }
  const auto results = MultiTenantGenerator(host, workloads).Run();
  return results[0].load.read_latency.p99_us();
}

/// The same paced + flooder mix with NO tenants configured: both streams
/// funnel through the seed single-tenant path, so the flooder's ready
/// transactions compete with the paced reads on die keys alone.
double PacedP99NoQos() {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  HostConfig cfg;
  cfg.device_slots = 4;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  const std::uint64_t request = 16 * 1024;
  const std::uint64_t flood_base = ssd.LogicalBytes() / 100 * 20;
  const std::uint64_t flood_span = ssd.LogicalBytes() / 100 * 40;
  util::Xoshiro256StarStar rng(32);
  std::uint64_t issued = 0;
  // The chain closure outlives every pending completion (host.Run()
  // returns drained), so callbacks capture it by plain pointer.
  std::function<void()> submit_flood = [&, self = &submit_flood]() {
    if (issued >= 40'000) return;
    ++issued;
    const std::uint64_t offset =
        flood_base + rng.UniformBelow(flood_span / request) * request;
    host.Submit(trace::OpType::kRead, offset, request,
                [self](const HostCompletion&) { (*self)(); });
  };
  for (int i = 0; i < 32; ++i) submit_flood();

  util::Xoshiro256StarStar paced_rng(31);
  util::LatencyStats paced;
  const std::uint64_t paced_span = ssd.LogicalBytes() / 100 * 20;
  const Us t0 = host.queue().Now();
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t offset =
        paced_rng.UniformBelow(paced_span / request) * request;
    host.SubmitAt(t0 + static_cast<Us>(i) * 2'000, trace::OpType::kRead,
                  offset, request, [&paced](const HostCompletion& c) {
                    paced.Add(c.LatencyUs());
                  });
  }
  host.Run();
  return paced.p99_us();
}

TEST(TenantQos, NoisyNeighborIsolationBounded) {
  // A closed-loop flooder at QD 32 shares the device with a paced tenant.
  // With QoS weights in the paced tenant's favor, its read p99 stays
  // within 2x of its solo-run p99 (the acceptance bound); pushing the same
  // mix through the tenant-less seed path degrades it strictly more.
  auto favored = TwoTenants(8, 1);
  const double solo = PacedP99(favored, /*with_flooder=*/false);
  const double with_qos = PacedP99(favored, /*with_flooder=*/true);
  const double no_qos = PacedP99NoQos();
  ASSERT_GT(solo, 0.0);
  EXPECT_LE(with_qos, 2.0 * solo)
      << "solo " << solo << " us, with qos " << with_qos << " us";
  EXPECT_GT(no_qos, with_qos)
      << "the tenant-less path should hurt more: " << no_qos << " vs "
      << with_qos;
}

TEST(TenantQos, TokenBucketCapsFlooderIops) {
  // A closed-loop flooder capped at 2000 IOPS drains at the cap, not at
  // device speed, and the pacing queue (not the submission queues) absorbs
  // the excess.
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  auto qos = TwoTenants(1, 1);
  qos.tenants[0].iops_limit = 2'000.0;
  qos.tenants[0].iops_burst = 8.0;
  HostConfig cfg;
  cfg.qos = qos;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  TenantWorkload flood;
  flood.tenant = 0;
  flood.queue_depth = 32;
  flood.total_requests = 2'000;
  flood.read_fraction = 1.0;
  flood.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  flood.seed = 41;
  const auto results = MultiTenantGenerator(host, {flood}).Run();

  const double iops = results[0].load.Iops();
  EXPECT_LE(iops, 2'000.0 * 1.1) << "cap exceeded";
  EXPECT_GE(iops, 2'000.0 * 0.8) << "cap wildly undershot";
  const auto& tstats = host.tenants()->StatsOf(0);
  EXPECT_GT(tstats.throttled, 0u);
  EXPECT_GT(tstats.throttle_wait_us, 0);
  EXPECT_EQ(tstats.completed, flood.total_requests);
}

TEST(TenantQos, BytesBucketCapsThroughput) {
  // 16 MiB/s cap on 16 KiB requests = 1024 IOPS equivalent.
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  auto qos = TwoTenants(1, 1);
  qos.tenants[0].bytes_per_sec_limit = 16.0 * 1024 * 1024;
  HostConfig cfg;
  cfg.qos = qos;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  TenantWorkload flood;
  flood.tenant = 0;
  flood.queue_depth = 16;
  flood.total_requests = 1'000;
  flood.read_fraction = 1.0;
  flood.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  flood.seed = 43;
  const auto results = MultiTenantGenerator(host, {flood}).Run();
  const double bytes_per_sec =
      static_cast<double>(results[0].load.requests) * 16.0 * 1024 /
      (static_cast<double>(results[0].load.MakespanUs()) / 1e6);
  EXPECT_LE(bytes_per_sec, 16.0 * 1024 * 1024 * 1.1);
}

/// Read flood + a handful of writes; returns (last write completion,
/// makespan, aged-write dispatches).
std::tuple<Us, Us, std::uint64_t> ReadFloodWrites(
    std::uint32_t write_aging_limit) {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  HostConfig cfg;
  cfg.device_slots = 2;
  cfg.write_aging_limit = write_aging_limit;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  const std::uint32_t page = ssd.config().geometry.page_size_bytes;
  const std::uint64_t read_span = ssd.LogicalBytes() / 100 * 60;
  const Us t0 = host.queue().Now();
  // Open-loop read flood: arrivals far faster than service, so the ready
  // set stays read-saturated for the whole run.
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(i) * 37 * page) % read_span;
    host.SubmitAt(t0 + i * 5, trace::OpType::kRead, offset, page);
  }
  Us last_write_done = 0;
  for (int i = 0; i < 4; ++i) {
    host.SubmitAt(t0 + 100 + i, trace::OpType::kWrite,
                  read_span + static_cast<std::uint64_t>(i) * page, page,
                  [&](const HostCompletion& c) {
                    last_write_done = std::max(last_write_done,
                                               c.completion_us - t0);
                  });
  }
  host.Run();
  return {last_write_done, host.queue().Now() - t0,
          host.scheduler().AgedWriteDispatches()};
}

TEST(TenantQos, WriteAgingBoundsReadFloodStarvation) {
  // Regression for the documented starvation gap: with no write aging
  // (seed behavior) a sustained read flood postpones the writes to the
  // very end of the run; with HostConfig::write_aging_limit they complete
  // early, after a bounded number of read overtakes.  No tenants involved
  // — the fix must work outside QoS mode.
  const auto [starved_done, starved_span, starved_boosts] = ReadFloodWrites(0);
  const auto [aged_done, aged_span, aged_boosts] = ReadFloodWrites(64);
  EXPECT_EQ(starved_boosts, 0u);
  EXPECT_GT(starved_done, starved_span * 9 / 10)
      << "without aging the flood should starve writes to the end";
  EXPECT_GE(aged_boosts, 1u);
  EXPECT_LT(aged_done, aged_span / 4)
      << "aged writes should complete early in the flood";
  EXPECT_LT(aged_done, starved_done / 2);
}

TEST(TenantQos, PerQueueBreakdownConserves) {
  // Per-queue slices sum to the aggregate, and in multi-tenant mode
  // requests only land on their tenant's queues.
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 80);
  HostConfig cfg;
  cfg.qos = TwoTenants(1, 1);
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  TenantWorkload only_b;
  only_b.tenant = 1;
  only_b.queue_depth = 8;
  only_b.total_requests = 500;
  only_b.read_fraction = 0.5;
  only_b.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  only_b.seed = 51;
  MultiTenantGenerator(host, {only_b}).Run();

  const auto& stats = host.stats();
  ASSERT_EQ(stats.per_queue.size(), 4u);
  std::uint64_t sum_completed = 0;
  std::uint64_t sum_samples = 0;
  for (const auto& q : stats.per_queue) {
    sum_completed += q.completed;
    sum_samples += q.read_latency.count() + q.write_latency.count();
  }
  EXPECT_EQ(sum_completed, stats.completed);
  EXPECT_EQ(sum_samples, stats.completed);
  // Tenant 1 owns queues 2 and 3; 0 and 1 must stay untouched.
  EXPECT_EQ(stats.per_queue[0].admitted, 0u);
  EXPECT_EQ(stats.per_queue[1].admitted, 0u);
  EXPECT_GT(stats.per_queue[2].admitted, 0u);
  EXPECT_GT(stats.per_queue[3].admitted, 0u);
}

TEST(TenantQos, MultiTenantRunDeterministic) {
  auto run = [] {
    ssd::Ssd ssd(SmallConfig());
    const Us prefill_end = Prefill(ssd, 80);
    HostConfig cfg;
    auto qos = TwoTenants(3, 1);
    qos.tenants[1].iops_limit = 5'000.0;
    cfg.qos = qos;
    cfg.write_aging_limit = 32;
    HostInterface host(ssd, cfg);
    host.AdvanceTo(prefill_end);
    TenantWorkload base;
    base.queue_depth = 12;
    base.total_requests = 1'500;
    base.read_fraction = 0.7;
    base.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
    std::vector<TenantWorkload> workloads(2, base);
    workloads[0].tenant = 0;
    workloads[0].seed = 61;
    workloads[1].tenant = 1;
    workloads[1].seed = 62;
    const auto results = MultiTenantGenerator(host, workloads).Run();
    std::vector<std::tuple<std::uint64_t, Us, double, double>> out;
    for (const auto& r : results) {
      out.emplace_back(r.load.requests, r.load.end_us,
                       r.load.read_latency.total_us(),
                       r.load.write_latency.total_us());
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(TenantQos, TenantQdSweepReportsPerTenantTelemetry) {
  ssd::TenantSweepOptions options;
  options.host.qos = TwoTenants(2, 1);
  options.queue_depths = {4, 8};
  TenantWorkload base;
  base.total_requests = 600;
  base.read_fraction = 1.0;
  std::vector<TenantWorkload> workloads(2, base);
  workloads[0].tenant = 0;
  workloads[0].seed = 71;
  workloads[1].tenant = 1;
  workloads[1].seed = 72;
  options.workloads = workloads;
  const auto points = ssd::RunTenantQdSweep(SmallConfig(), options);
  ASSERT_EQ(points.size(), 4u);  // 2 QDs x 2 tenants
  for (const auto& point : points) {
    EXPECT_GT(point.iops, 0.0);
    EXPECT_GT(point.requests, 0u);
    EXPECT_GT(point.read_dispatches, 0u);
  }
}

TEST(TenantQos, ApiContracts) {
  ssd::Ssd ssd(SmallConfig());
  // FIFO cannot express weights.
  {
    HostConfig cfg;
    cfg.qos = TwoTenants(1, 1);
    cfg.policy = SchedPolicy::kFifo;
    EXPECT_THROW(HostInterface(ssd, cfg), std::invalid_argument);
  }
  // Tenants must partition the queues.
  {
    HostConfig cfg;
    cfg.qos = TwoTenants(1, 1);
    cfg.qos.tenants[1].queues = {2};  // queue 3 unowned
    EXPECT_THROW(HostInterface(ssd, cfg), std::invalid_argument);
  }
  // SubmitAs needs tenants; unknown tenants are rejected.
  {
    HostInterface host(ssd, HostConfig{});
    EXPECT_THROW(host.SubmitAs(0, trace::OpType::kRead, 0, 4096),
                 std::logic_error);
  }
  {
    HostConfig cfg;
    cfg.qos = TwoTenants(1, 1);
    HostInterface host(ssd, cfg);
    EXPECT_THROW(host.SubmitAs(7, trace::OpType::kRead, 0, 4096),
                 std::out_of_range);
  }
}

}  // namespace
}  // namespace ctflash::host
