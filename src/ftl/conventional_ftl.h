// The conventional page-mapping FTL baseline (the paper's comparator).
//
// One globally active block is filled page-by-page in sequential order
// regardless of data hotness — pages of different layer speeds are handed
// out blindly, which is exactly the behaviour the paper's Section 2.2
// motivates against.  Greedy GC relocates valid pages into the same active
// stream.
#pragma once

#include <cstdint>
#include <optional>

#include "ftl/block_manager.h"
#include "ftl/ftl_base.h"
#include "ftl/mapping_table.h"

namespace ctflash::ftl {

class ConventionalFtl : public FtlBase {
 public:
  ConventionalFtl(FlashTarget& target, const FtlConfig& config);

  std::string Name() const override { return "conventional-ftl"; }

  Ppn ProbePpn(Lpn lpn) const override { return map_.Lookup(lpn); }

  const MappingTable& mapping() const { return map_; }
  const BlockManager& blocks() const { return blocks_; }

  /// Invariant probe for property tests: every mapped lpn points at a
  /// programmed page, valid counters match the mapping, free counts agree.
  bool CheckInvariants() const;

 protected:
  Us DoRead(Lpn lpn_first, std::uint32_t pages, std::uint64_t offset_bytes,
            std::uint64_t size_bytes, Us earliest) override;
  Us DoWrite(Lpn lpn_first, std::uint32_t pages, std::uint64_t request_bytes,
             Us earliest) override;

 private:
  /// Next programmable ppn on the host or GC write stream, opening a new
  /// block when needed.  Never runs GC.  Host and GC traffic use separate
  /// active blocks (standard dual-stream design); this also prevents the
  /// GC-burst/host-write phasing from accidentally sorting cold data into
  /// top-layer pages.
  Ppn AllocatePage(bool for_gc);

  /// Runs GC until free blocks reach gc_threshold_high; returns completion
  /// time of all GC work (>= earliest).
  Us MaybeRunGc(Us earliest);

  /// Writes one logical page (mapping update + program).
  Us WriteOnePage(Lpn lpn, Us earliest);

  MappingTable map_;
  BlockManager blocks_;
  std::optional<BlockId> active_block_;     ///< host write stream
  std::optional<BlockId> gc_active_block_;  ///< GC relocation stream
  bool in_gc_ = false;
};

}  // namespace ctflash::ftl
