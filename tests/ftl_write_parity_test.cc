// Seed-parity lock-in for the write-frontier refactor.
//
// `write_frontiers = 1` must reproduce the pre-refactor single-active-block
// write path bit-for-bit: identical FtlStats/PpbStats, identical mapping
// state and identical replay timing on the synthetic trace mix.  The golden
// fingerprints below were captured from the seed allocator before
// ftl::WriteAllocator existed; if this test fails, the refactor silently
// changed the paper-figure benches.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "ssd/experiment.h"
#include "ssd/ssd.h"
#include "trace/synthetic.h"

namespace ctflash {
namespace {

std::uint64_t Fold(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;  // FNV-1a
  }
  return h;
}

std::uint64_t Fold(std::uint64_t h, Us v) {
  return Fold(h, static_cast<std::uint64_t>(v));
}

std::uint64_t Fold(std::uint64_t h, double v) {
  return Fold(h, std::bit_cast<std::uint64_t>(v));
}

struct Fingerprint {
  std::uint64_t mapping = 0;
  std::uint64_t stats = 0;
};

/// Prefill + web/media synthetic mix; folds the final mapping table and all
/// replay-visible counters/timings into two hashes.
Fingerprint RunScenario(ssd::FtlKind kind) {
  auto cfg = ssd::ScaledConfig(kind, 256ull << 20, 16 * 1024, 2.0);
  cfg.ftl.write_frontiers = 1;  // the compatibility setting under test
  // The GC-routing default must stay the seed-identical inline mode: the
  // priority-transaction refactor (sched::FlashTransaction, FtlBase GC
  // hooks) moved mapping/block ownership into FtlBase, and these goldens
  // prove the inline write+GC path still produces the exact seed states.
  cfg.ftl.gc_routing = ftl::GcRouting::kInline;
  static_assert(ftl::FtlConfig{}.gc_routing == ftl::GcRouting::kInline,
                "inline GC routing must remain the default");
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() / 100 * 80);

  const std::uint64_t footprint = ssd.LogicalBytes() / 100 * 85;
  const auto web =
      trace::SyntheticTraceGenerator(trace::WebServerWorkload(footprint, 30'000, 7))
          .Generate();
  const auto media =
      trace::SyntheticTraceGenerator(trace::MediaServerWorkload(footprint, 10'000, 9))
          .Generate();
  const auto web_result = runner.Replay(web, "web");
  const auto media_result = runner.Replay(media, "media");

  Fingerprint fp;
  const std::uint64_t logical_pages =
      ssd.LogicalBytes() / cfg.geometry.page_size_bytes;
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    const Ppn ppn = ssd.ftl().ProbePpn(lpn);
    if (ppn == kInvalidPpn) continue;
    fp.mapping = Fold(fp.mapping, lpn);
    fp.mapping = Fold(fp.mapping, ppn);
  }

  const auto& s = ssd.ftl().stats();
  std::uint64_t h = 0;
  h = Fold(h, s.host_read_pages);
  h = Fold(h, s.host_write_pages);
  h = Fold(h, s.gc_page_copies);
  h = Fold(h, s.gc_erases);
  h = Fold(h, s.gc_time_us);
  for (const auto& r : {web_result, media_result}) {
    h = Fold(h, r.read_latency.total_us());
    h = Fold(h, r.write_latency.total_us());
    h = Fold(h, r.erase_count);
    h = Fold(h, r.sim_end_us);
  }
  if (const auto* ppb = ssd.ppb()) {
    const auto& p = ppb->ppb_stats();
    h = Fold(h, p.hot_area_writes);
    h = Fold(h, p.cold_area_writes);
    h = Fold(h, p.iron_promotions);
    h = Fold(h, p.cold_demotions);
    h = Fold(h, p.diverted_writes);
    h = Fold(h, p.fast_class_writes);
    h = Fold(h, p.slow_class_writes);
    h = Fold(h, p.gc_migrations);
    h = Fold(h, p.fast_reads);
    h = Fold(h, p.slow_reads);
  }
  fp.stats = h;
  return fp;
}

// Golden fingerprints captured from the seed (pre-WriteAllocator) write path.
constexpr std::uint64_t kConventionalMapping = 0x9118797829d2bed6ull;
constexpr std::uint64_t kConventionalStats = 0xdf2899795dc0840full;
constexpr std::uint64_t kPpbMapping = 0x360e946e7e6b6116ull;
constexpr std::uint64_t kPpbStats = 0xbf2a5b27e65f57feull;

TEST(WriteFrontierParity, ConventionalMatchesSeed) {
  const auto fp = RunScenario(ssd::FtlKind::kConventional);
  EXPECT_EQ(fp.mapping, kConventionalMapping)
      << "mapping fingerprint: 0x" << std::hex << fp.mapping;
  EXPECT_EQ(fp.stats, kConventionalStats)
      << "stats fingerprint: 0x" << std::hex << fp.stats;
}

TEST(WriteFrontierParity, PpbMatchesSeed) {
  const auto fp = RunScenario(ssd::FtlKind::kPpb);
  EXPECT_EQ(fp.mapping, kPpbMapping)
      << "mapping fingerprint: 0x" << std::hex << fp.mapping;
  EXPECT_EQ(fp.stats, kPpbStats)
      << "stats fingerprint: 0x" << std::hex << fp.stats;
}

}  // namespace
}  // namespace ctflash
