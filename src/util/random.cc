#include "util/random.h"

#include <cmath>
#include <stdexcept>

namespace ctflash::util {

namespace {
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Xoshiro256StarStar::Reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // Guard against the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Xoshiro256StarStar::UniformBelow(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("UniformBelow: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Xoshiro256StarStar::UniformInRange(std::uint64_t lo,
                                                 std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("UniformInRange: lo > hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return (*this)();  // full 64-bit range
  return lo + UniformBelow(span);
}

double Xoshiro256StarStar::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256StarStar::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (theta < 0.0) throw std::invalid_argument("ZipfSampler: theta must be >= 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against fp round-off at the tail
}

std::uint64_t ZipfSampler::Sample(Xoshiro256StarStar& rng) const {
  const double u = rng.UniformDouble();
  // Binary search for the first cdf_[i] >= u.
  std::uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(std::uint64_t rank) const {
  if (rank >= n_) throw std::out_of_range("ZipfSampler::Pmf: rank out of range");
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ctflash::util
