// WorkloadProfile characterization tests: the profiler must recover the
// first-order properties the synthetic generators were configured with,
// and FitSynthetic must close the loop (profile -> config -> generator)
// with matching shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "replay/trace_source.h"
#include "replay/workload_profile.h"
#include "trace/synthetic.h"

namespace ctflash::replay {
namespace {

constexpr std::uint64_t kFootprint = 256 * kMiB;

WorkloadProfile ProfileOf(const trace::SyntheticWorkloadConfig& cfg) {
  SyntheticTraceSource source(cfg);
  return Characterize(source);
}

TEST(WorkloadProfile, RecoversMixVolumeAndFootprint) {
  auto cfg = trace::WebServerWorkload(kFootprint, 20'000);
  const auto profile = ProfileOf(cfg);
  EXPECT_EQ(profile.requests, 20'000u);
  EXPECT_EQ(profile.reads + profile.writes, profile.requests);
  EXPECT_NEAR(profile.ReadFraction(), cfg.read_fraction, 0.02);
  EXPECT_LE(profile.max_offset_bytes, kFootprint);
  EXPECT_GT(profile.max_offset_bytes, kFootprint / 2);
  EXPECT_GT(profile.duration_us, 0);
  EXPECT_NEAR(profile.NativeIops(),
              1e6 / static_cast<double>(cfg.mean_interarrival_us),
              0.25 * 1e6 / static_cast<double>(cfg.mean_interarrival_us));
}

TEST(WorkloadProfile, SizeHistogramsSeeTheConfiguredSizes) {
  auto cfg = trace::WebServerWorkload(kFootprint, 10'000);
  const auto profile = ProfileOf(cfg);
  // Every configured web read size shows up in the exact counts.
  for (const auto& sw : cfg.read_sizes) {
    EXPECT_GT(profile.read_size_counts.count(sw.bytes), 0u)
        << "missing read size " << sw.bytes;
  }
  EXPECT_EQ(profile.read_size_hist.count(), profile.reads);
  EXPECT_EQ(profile.write_size_hist.count(), profile.writes);
}

TEST(WorkloadProfile, DetectsSequentialityAndSkewOrdering) {
  // Media (mostly-sequential large reads, strong skew) vs a uniform
  // random workload: the profile must order them correctly.
  auto media = trace::MediaServerWorkload(kFootprint, 15'000);
  const auto media_profile = ProfileOf(media);

  trace::SyntheticWorkloadConfig uniform;
  uniform.num_requests = 15'000;
  uniform.footprint_bytes = kFootprint;
  uniform.read_fraction = 0.9;
  uniform.read_zipf_theta = 0.0;
  uniform.write_zipf_theta = 0.0;
  uniform.sequential_read_fraction = 0.0;
  const auto uniform_profile = ProfileOf(uniform);

  EXPECT_GT(media_profile.SequentialReadFraction(),
            uniform_profile.SequentialReadFraction() + 0.2);
  EXPECT_GT(media_profile.read_run_length.mean(), 1.5);
  EXPECT_GT(media_profile.read_zipf_theta,
            uniform_profile.read_zipf_theta);
  EXPECT_GT(media_profile.top10pct_share,
            uniform_profile.top10pct_share);
  EXPECT_GT(media_profile.distinct_regions, 0u);
  EXPECT_FALSE(media_profile.working_set_regions.empty());
}

TEST(WorkloadProfile, WorkingSetWindowsCoverTheDuration) {
  auto cfg = trace::WebServerWorkload(kFootprint, 5'000);
  SyntheticTraceSource source(cfg);
  WorkloadProfileConfig pcfg;
  pcfg.window_us = 50'000;
  const auto profile = Characterize(source, pcfg);
  const std::size_t expected_windows =
      static_cast<std::size_t>(profile.duration_us / pcfg.window_us) + 1;
  EXPECT_EQ(profile.working_set_regions.size(), expected_windows);
  std::uint64_t max_window = 0;
  for (const auto n : profile.working_set_regions) {
    max_window = std::max(max_window, n);
  }
  EXPECT_GT(max_window, 0u);
  EXPECT_LE(max_window, profile.distinct_regions);
}

TEST(WorkloadProfile, FitSyntheticClosesTheLoop) {
  auto cfg = trace::WebServerWorkload(kFootprint, 20'000);
  const auto profile = ProfileOf(cfg);
  const auto fit = profile.FitSynthetic("refit", 10'000);

  EXPECT_EQ(fit.num_requests, 10'000u);
  EXPECT_NEAR(fit.read_fraction, cfg.read_fraction, 0.02);
  EXPECT_GE(fit.footprint_bytes, profile.max_offset_bytes);
  EXPECT_GT(fit.read_zipf_theta, 0.3) << "web workload is skewed";
  fit.Validate();  // must be generator-acceptable

  // The refit config generates, and its own profile matches the original
  // on the first-order properties.
  SyntheticTraceSource refit_source(fit);
  const auto refit_profile = Characterize(refit_source);
  EXPECT_NEAR(refit_profile.ReadFraction(), profile.ReadFraction(), 0.05);
  const double mean_read_a =
      profile.reads ? static_cast<double>(profile.read_bytes) /
                          static_cast<double>(profile.reads)
                    : 0.0;
  const double mean_read_b =
      refit_profile.reads ? static_cast<double>(refit_profile.read_bytes) /
                                static_cast<double>(refit_profile.reads)
                          : 0.0;
  EXPECT_NEAR(mean_read_b, mean_read_a, 0.25 * mean_read_a);
}

TEST(WorkloadProfile, ValidatesConfig) {
  WorkloadProfileConfig bad;
  bad.region_bytes = 0;
  EXPECT_THROW(WorkloadProfiler{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace ctflash::replay
