// Shared harness for the figure-regeneration benches.
//
// Every bench replays the same deterministic synthetic traces (media-server
// and web/SQL-server stand-ins, see src/trace/synthetic.h) against a scaled
// device that keeps the paper's Table 1 block shape and timing, once per FTL
// variant, and prints the rows/series the corresponding paper figure reports.
//
// Command-line knobs (all optional):
//   --device <bytes|"4GiB">   device capacity        (default 4 GiB)
//   --requests <n>            trace length           (default per workload)
//   --quick                   1/10th-length traces for smoke runs
//   --media-trace <csv>       replay a real MSR CSV instead of the media
//   --web-trace <csv>         (resp. web) synthetic stand-in; offsets are
//                             wrapped into the device's logical space
//   --trace-file <csv>        one real MSR CSV for BOTH workload slots
//                             (sets --media-trace and --web-trace; also the
//                             sample-smoke input of bench_trace_replay)
//   --tenant-trace <t>=<csv>[@host]
//                             repeatable: tenant t replays this MSR CSV in
//                             the multi-tenant benches (optional @host
//                             keeps only that Hostname's records when one
//                             combined CSV carries several servers)
//   --qd-list <a,b,c>         queue depths for QD-scaling benches
//   --qd-requests <n>         requests per QD sweep point
//   --frontiers <n>           write frontiers for the striped series
//   --json <path>             machine-readable results (benches that emit it)
//   --trace-out <path>        Chrome/Perfetto trace JSON (benches that trace)
//   --metrics-out <path>      MetricsRegistry JSON dump (benches that trace)
//   --metrics-epoch-us <n>    tracer time-series epoch length (0 = off)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/snapshot.h"
#include "replay/replay_plan.h"
#include "ssd/experiment.h"
#include "trace/synthetic.h"

namespace ctflash::bench {

/// Snapshot-shared prefill for benches that build several same-shape
/// devices (FTL-variant and GC-routing series prefill identically — the
/// snapshot shape key deliberately excludes gc_routing).  The first
/// Prefill() of a shape runs the real sequential prefill and snapshots the
/// device; every later same-shape call restores the snapshot instead.
/// Restored devices are bit-identical to straight-through prefills
/// (bench_campaign asserts this), so series numbers do not change — only
/// the wall clock does.  Single-threaded (benches run series serially).
class PrefillSnapshotCache {
 public:
  /// Prefills `ssd` with `bytes` sequential bytes (restoring a cached
  /// snapshot when this shape+bytes was prefilled before) and returns the
  /// simulated prefill-end time, exactly like ExperimentRunner::Prefill.
  Us Prefill(ssd::Ssd& ssd, std::uint64_t bytes,
             std::uint64_t chunk_bytes = 256 * kKiB);

  std::uint64_t distinct_prefills() const { return distinct_prefills_; }
  std::uint64_t restores() const { return restores_; }
  /// Wall clock actually spent prefilling (the cache misses).
  double prefill_wall_ms() const { return prefill_wall_ms_; }
  /// Wall clock the restores avoided: the cached prefill's cost minus the
  /// restore's own cost, summed over hits.
  double saved_wall_ms() const { return saved_wall_ms_; }

  /// JSON fragment for bench result files:
  /// {"distinct_prefills": n, "restores": n, "prefill_wall_ms": x,
  ///  "saved_wall_ms": x} (no surrounding braces caller concerns).
  std::string JsonObject() const;

 private:
  struct Entry {
    campaign::DeviceState state;
    double wall_ms = 0.0;  ///< cost of the prefill this entry replaces
  };
  std::map<std::string, Entry> cache_;
  std::uint64_t distinct_prefills_ = 0;
  std::uint64_t restores_ = 0;
  double prefill_wall_ms_ = 0.0;
  double saved_wall_ms_ = 0.0;
};

/// One --tenant-trace assignment: tenant `tenant` replays the MSR CSV at
/// `path`, optionally keeping only `hostname`'s records.
struct TenantTraceOption {
  std::uint32_t tenant = 0;
  std::string path;
  std::string hostname;  ///< "" = all records
};

/// Adds one streaming MSR CSV source per --tenant-trace spec to `plan`:
/// wrap-remapped into its own slice of `logical_bytes` (spec i gets slice
/// i of specs.size(), so working sets stay disjoint), hostname-filtered,
/// tagged with its tenant.  Throws std::runtime_error for a tenant id at
/// or beyond `tenant_count`.  Returns the source name chosen for each
/// spec (its hostname, or "tenant<t>") — index-aligned with `specs`, NOT
/// with tenant ids (several specs may feed one tenant).
std::vector<std::string> AddTenantTraceSources(
    replay::ReplayPlan& plan, const std::vector<TenantTraceOption>& specs,
    std::uint64_t logical_bytes, std::size_t tenant_count);

struct BenchOptions {
  std::uint64_t device_bytes = 4ull << 30;
  std::uint64_t web_requests = 1'200'000;
  std::uint64_t media_requests = 600'000;
  std::string media_trace_path;  ///< real MSR CSV overriding the stand-in
  std::string web_trace_path;
  std::string trace_file;        ///< --trace-file (also fills the two above)
  std::vector<TenantTraceOption> tenant_traces;
  std::vector<std::uint32_t> qd_list = {1, 2, 4, 8, 16, 32, 64};
  std::uint64_t qd_requests = 20'000;
  std::uint32_t write_frontiers = 8;  ///< striped series of bench_write_scaling
  std::string json_path;              ///< "" = the bench's default file name
  /// --trace-out: where tracing benches write the Chrome/Perfetto trace
  /// JSON ("" = no trace export).  Shared by every bench via the harness.
  std::string trace_out_path;
  /// --metrics-out: where tracing benches dump their obs::MetricsRegistry
  /// as JSON — counters plus histogram summaries with p50/p99/p99.9 ("" =
  /// no metrics export).
  std::string metrics_out_path;
  /// --metrics-epoch-us: tracer epoch length for per-epoch phase rows and
  /// counter tracks (0 = no time series).
  Us metrics_epoch_us = 0;

  static BenchOptions FromArgs(int argc, char** argv);
};

enum class Workload { kMediaServer, kWebServer };

const char* WorkloadName(Workload w);

/// Runs one experiment: build the device, prefill 80 % of the logical space,
/// replay the workload trace.  `ppb_override` customizes the PPB knobs for
/// ablations (ignored for the conventional FTL).
ssd::ExperimentResult RunOne(
    ssd::FtlKind kind, Workload workload, std::uint32_t page_size_bytes,
    double speed_ratio, const BenchOptions& options,
    const std::optional<core::PpbConfig>& ppb_override = std::nullopt);

/// Conventional + PPB pair on identical traces.
struct ComparisonResult {
  ssd::ExperimentResult conventional;
  ssd::ExperimentResult ppb;

  double ReadEnhancement() const {
    return ssd::Enhancement(conventional.TotalReadSeconds(),
                            ppb.TotalReadSeconds());
  }
  double WriteEnhancement() const {
    return ssd::Enhancement(conventional.TotalWriteSeconds(),
                            ppb.TotalWriteSeconds());
  }
};

ComparisonResult RunComparison(
    Workload workload, std::uint32_t page_size_bytes, double speed_ratio,
    const BenchOptions& options,
    const std::optional<core::PpbConfig>& ppb_override = std::nullopt);

/// Prints the standard bench header (device, workload sizes, paper pointer).
void PrintHeader(const std::string& title, const std::string& paper_ref,
                 const BenchOptions& options);

/// Device for queue-depth scaling studies: Table 1 block shape and timing
/// scaled to options.device_bytes, with `channels` channels and queued
/// (contention-exposing) timing.
ssd::SsdConfig QdDeviceConfig(std::uint32_t channels,
                              const BenchOptions& options);

/// QdDeviceConfig plus the die-striped write-path knobs, with the
/// over-provisioned spare pool resized for the larger open-block population
/// (2 streams x `write_frontiers` open blocks) so small smoke devices keep
/// valid GC thresholds.
ssd::SsdConfig WriteDeviceConfig(std::uint32_t channels,
                                 std::uint32_t write_frontiers,
                                 const BenchOptions& options);

/// Runs a closed-loop QD sweep on `config` using the harness knobs.
std::vector<ssd::QdSweepPoint> RunQdSweep(const ssd::SsdConfig& config,
                                          const BenchOptions& options);

/// Prints one sweep as a table: QD, IOPS, mean/p50/p95/p99/p99.9, util.
void PrintQdSweep(const std::string& label,
                  const std::vector<ssd::QdSweepPoint>& points);

}  // namespace ctflash::bench
