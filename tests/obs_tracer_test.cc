// Lifecycle-tracer integration on real devices: the conservation property
// (paced + queued + media == end-to-end for EVERY traced request), stall
// attribution under GC pressure, agreement with the host interface's own
// latency aggregates, and the zero-interference contract — attaching a
// tracer (or the legacy OnDispatch callback, now an observer adapter)
// never changes the dispatch order or any simulated outcome.
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "obs/phase.h"
#include "sched/transaction.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"

namespace ctflash::obs {
namespace {

ssd::SsdConfig GcHeavyConfig() {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 256ull << 20,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  cfg.ftl.gc_routing = ftl::GcRouting::kScheduled;
  return cfg;
}

Us Prefill(ssd::Ssd& ssd, std::uint32_t fraction_pct) {
  ssd::ExperimentRunner runner(ssd);
  return runner.Prefill(ssd.LogicalBytes() / 100 * fraction_pct);
}

host::ClosedLoopGenerator::Config MixedBurst(const ssd::Ssd& ssd,
                                             double read_frac,
                                             std::uint64_t requests) {
  host::ClosedLoopGenerator::Config gen;
  gen.queue_depth = 16;
  gen.total_requests = requests;
  gen.read_fraction = read_frac;
  gen.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  gen.seed = 7;
  return gen;
}

TEST(ObsTracer, ConservationHoldsForEveryRequest) {
  ssd::Ssd ssd(GcHeavyConfig());
  const Us prefill_end = Prefill(ssd, 85);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  TracerConfig tc;
  tc.record_spans = false;
  tc.record_requests = true;
  Tracer tracer(tc);
  host.AttachTracer(&tracer);

  const host::LoadStats load =
      host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.5, 20000)).Run();

  ASSERT_EQ(tracer.requests().size(), 20000u);
  for (const PhaseRecord& r : tracer.requests()) {
    ASSERT_EQ(r.PacedUs() + r.QueuedUs() + r.MediaUs(), r.TotalUs())
        << "conservation violated on request " << r.request_id;
    ASSERT_GE(r.PacedUs(), 0);
    ASSERT_GE(r.QueuedUs(), 0);
    ASSERT_GE(r.MediaUs(), 0);
  }
  EXPECT_EQ(tracer.PendingRequests(), 0u);

  // The aggregate form of the same identity, and agreement with the host
  // interface's own latency accounting: same counts, same total time.
  for (const PhaseBreakdown* b :
       {&tracer.phases().read, &tracer.phases().write}) {
    EXPECT_EQ(b->paced.count(), b->total.count());
    EXPECT_DOUBLE_EQ(
        b->paced.total_us() + b->queued.total_us() + b->media.total_us(),
        b->total.total_us());
  }
  EXPECT_EQ(tracer.phases().read.total.count(), load.read_latency.count());
  EXPECT_EQ(tracer.phases().write.total.count(), load.write_latency.count());
  EXPECT_DOUBLE_EQ(tracer.phases().read.total.total_us(),
                   load.read_latency.total_us());
  EXPECT_DOUBLE_EQ(tracer.phases().write.total.total_us(),
                   load.write_latency.total_us());
}

TEST(ObsTracer, GcPressureAttributesReadStallToGcByName) {
  ssd::Ssd ssd(GcHeavyConfig());
  const Us prefill_end = Prefill(ssd, 85);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  TracerConfig tc;
  tc.record_spans = false;
  Tracer tracer(tc);
  host.AttachTracer(&tracer);

  host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.5, 30000)).Run();
  ASSERT_GT(ssd.ftl().stats().gc_erases, 0u) << "burst was expected to GC";

  const PhaseBreakdown& read = tracer.phases().read;
  const auto gc = static_cast<std::size_t>(StallCause::kDieBusyGc);
  EXPECT_GT(read.stall_us[gc], 0u)
      << "scheduled GC holds dies; read waits must name it";
  EXPECT_GT(read.stall_events[gc], 0u);
}

TEST(ObsTracer, WriteHoldAttributedUnderSustainedWrites) {
  ssd::Ssd ssd(GcHeavyConfig());
  const Us prefill_end = Prefill(ssd, 85);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  TracerConfig tc;
  tc.record_spans = false;
  Tracer tracer(tc);
  host.AttachTracer(&tracer);

  host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.0, 30000)).Run();
  ASSERT_GT(host.scheduler().WriteHoldPicks(), 0u)
      << "the admission guard was expected to engage";

  const PhaseBreakdown& write = tracer.phases().write;
  const auto hold = static_cast<std::size_t>(StallCause::kWriteHold);
  EXPECT_GT(write.stall_events[hold], 0u)
      << "held writes must book their queue time as write-hold";
}

// The observer seam must be invisible: the legacy OnDispatch callback (now
// an adapter on the observer list) sees the identical dispatch sequence
// whether or not a tracer is also attached, and every simulated outcome is
// bit-identical.  This is the regression lock for promoting the test-only
// hook onto the tracer sink interface.
TEST(ObsTracer, AttachingTracerNeverChangesDispatchOrder) {
  using DispatchKey = std::tuple<std::uint8_t, std::uint64_t, std::uint64_t>;
  const auto run = [](bool with_tracer) {
    ssd::Ssd ssd(GcHeavyConfig());
    const Us prefill_end = Prefill(ssd, 85);
    host::HostInterface host(ssd, host::HostConfig{});
    host.AdvanceTo(prefill_end);

    std::vector<DispatchKey> order;
    host.scheduler().OnDispatch([&](const sched::FlashTransaction& txn) {
      order.emplace_back(static_cast<std::uint8_t>(txn.source),
                         txn.request_id, txn.seq);
    });
    Tracer tracer;
    if (with_tracer) host.AttachTracer(&tracer);

    const host::LoadStats load =
        host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.3, 10000)).Run();
    return std::tuple{std::move(order), load.end_us,
                      load.read_latency.total_us(),
                      load.write_latency.total_us(),
                      ssd.ftl().stats().gc_erases,
                      ssd.ftl().stats().gc_page_copies};
  };
  const auto bare = run(false);
  const auto traced = run(true);
  ASSERT_FALSE(std::get<0>(bare).empty());
  EXPECT_EQ(bare, traced);
}

TEST(ObsTracer, OnDispatchReplacementDetachesOldCallback) {
  ssd::Ssd ssd(GcHeavyConfig());
  const Us prefill_end = Prefill(ssd, 50);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  std::uint64_t first = 0, second = 0;
  host.scheduler().OnDispatch(
      [&](const sched::FlashTransaction&) { ++first; });
  host.scheduler().OnDispatch(
      [&](const sched::FlashTransaction&) { ++second; });
  host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.5, 200)).Run();
  EXPECT_EQ(first, 0u) << "replaced callback must stop firing";
  EXPECT_GT(second, 0u);

  // Clearing the callback detaches the adapter entirely.
  host.scheduler().OnDispatch(nullptr);
  host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.5, 200)).Run();
  EXPECT_GT(second, 0u);
}

TEST(ObsTracer, EpochRowsTileTheRunAndMergeToTheAggregate) {
  ssd::Ssd ssd(GcHeavyConfig());
  const Us prefill_end = Prefill(ssd, 85);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  TracerConfig tc;
  tc.record_spans = false;
  tc.metrics_epoch_us = 10'000;
  tc.epoch_base_us = prefill_end;
  Tracer tracer(tc);
  host.AttachTracer(&tracer);

  host::ClosedLoopGenerator(host, MixedBurst(ssd, 0.5, 10000)).Run();

  ASSERT_FALSE(tracer.epoch_phases().empty());
  PhaseStats merged;
  for (const PhaseStats& row : tracer.epoch_phases()) merged.Merge(row);
  EXPECT_EQ(merged.read.total.count(), tracer.phases().read.total.count());
  EXPECT_EQ(merged.write.total.count(), tracer.phases().write.total.count());
  EXPECT_DOUBLE_EQ(merged.read.total.total_us(),
                   tracer.phases().read.total.total_us());
}

}  // namespace
}  // namespace ctflash::obs
