// Page-level flash transaction scheduler: the dispatch stage between the
// host submission queues and the device.
//
// Admitted host requests arrive already split into single-page
// FlashTransactions.  The scheduler keeps a ready set and at most
// `device_slots` transactions in flight (the device's internal command
// queue); each completion event frees a slot and pulls the next winner, so
// dispatch is driven entirely by the simulation event queue and is
// deterministic.
//
// Dispatch order is the scheduler's whole point:
//  * kFifo issues strictly in submission order — a read stuck behind a busy
//    die blocks everything after it (head-of-line blocking);
//  * kOutOfOrder picks the ready transaction whose target die frees
//    earliest (die-level conflict detection via the FlashTarget occupancy
//    timelines), tie-breaking on plane then submission order so same-die
//    work stripes across planes deterministically.  Reads to idle dies
//    overtake bursts queued on hot ones, which is where channel/chip/die
//    parallelism — and QD scaling — comes from.
//
// Writes and unmapped reads have no resolvable die before the FTL's
// allocator runs at dispatch time, so they dispatch in FIFO order among
// themselves at the head of the ready set.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "host/request.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash::host {

/// Dispatch-order policy; see file header.
enum class SchedPolicy { kFifo = 0, kOutOfOrder = 1 };

const char* SchedPolicyName(SchedPolicy policy);

/// One page-granular slice of a host request.
struct FlashTransaction {
  std::uint64_t request_id = 0;
  std::uint64_t seq = 0;  ///< global submission order (FIFO key)
  trace::OpType op = trace::OpType::kRead;
  std::uint64_t offset_bytes = 0;  ///< absolute; spans at most one page
  std::uint64_t size_bytes = 0;
  Lpn lpn = 0;
};

class IoScheduler {
 public:
  using TxnCallback =
      std::function<void(const FlashTransaction&, const ftl::RequestResult&)>;

  IoScheduler(ssd::Ssd& ssd, sim::EventQueue& queue, SchedPolicy policy,
              std::uint32_t device_slots);

  /// Sink for completed transactions (set once by the host interface).
  void OnTxnComplete(TxnCallback cb) { on_complete_ = std::move(cb); }

  /// Adds a transaction to the ready set and dispatches while slots allow.
  void Enqueue(FlashTransaction txn);

  std::uint32_t InFlight() const { return in_flight_; }
  std::size_t ReadyCount() const { return ready_.size(); }
  std::uint64_t DispatchedCount() const { return dispatched_; }
  /// Highest number of simultaneously in-flight transactions observed.
  std::uint32_t PeakInFlight() const { return peak_in_flight_; }
  SchedPolicy policy() const { return policy_; }

 private:
  /// Out-of-order sort key: earliest cell-op start on the target die plus
  /// the plane stripe tie-break; writes use the FTL's write-frontier
  /// availability probe (`write_free_at`, computed once per pick), unmapped
  /// reads are startable now ({0, 0}).
  struct DispatchKey {
    Us start = 0;
    std::uint32_t plane = 0;
  };

  void Pump();
  std::size_t PickNext() const;
  DispatchKey KeyOf(const FlashTransaction& txn, Us write_free_at) const;

  ssd::Ssd& ssd_;
  sim::EventQueue& queue_;
  SchedPolicy policy_;
  std::uint32_t device_slots_;
  std::uint32_t in_flight_ = 0;
  std::uint32_t peak_in_flight_ = 0;
  std::uint64_t dispatched_ = 0;
  std::vector<FlashTransaction> ready_;
  TxnCallback on_complete_;
};

}  // namespace ctflash::host
