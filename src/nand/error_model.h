// Synthetic layer-dependent reliability model for 3D charge-trap NAND.
//
// The paper evaluates performance only, but the same asymmetric feature
// process size that makes bottom layers faster also concentrates the
// electric field there, raising program-disturb and hence raw bit error
// rate (RBER).  Since the authors' silicon data is unavailable, we provide a
// synthetic model (documented substitution, see DESIGN.md):
//
//   RBER(layer, pe) = base_rber
//                     * layer_skew ^ depth(layer)        (field concentration)
//                     * exp(pe / pe_scale)               (wear-out growth)
//
// with depth in [0,1] (1 = bottom).  An LDPC/BCH-style ECC budget declares a
// page read correctable when sampled bit errors per codeword stay within
// `correctable_bits_per_codeword`.
#pragma once

#include <cstdint>

#include "nand/geometry.h"
#include "util/random.h"
#include "util/types.h"

namespace ctflash::nand {

struct ErrorModelConfig {
  double base_rber = 1e-7;          ///< fresh top-layer RBER
  double layer_skew = 8.0;          ///< bottom-layer RBER / top-layer RBER
  double pe_scale = 1500.0;         ///< P/E cycles for an e-fold RBER growth
  std::uint32_t codeword_bytes = 1024;
  std::uint32_t correctable_bits_per_codeword = 40;  ///< ECC strength (BCH-40)

  void Validate() const;
};

class LayerErrorModel {
 public:
  LayerErrorModel(const NandGeometry& geometry, const ErrorModelConfig& config);

  /// Raw bit error rate for a page at a given wear level.
  double Rber(std::uint32_t page_in_block, std::uint32_t pe_cycles) const;

  /// Samples the number of bit errors in one page read (Poisson
  /// approximation of the binomial; exact enough for RBER << 1).
  /// `transfer_bytes` = 0 (or >= page size) samples the whole page;
  /// smaller transfers sample only the codewords the ECC engine actually
  /// decodes (rounded up to whole codewords).  `rber_scale` multiplies the
  /// modeled RBER — the fault injector uses it for read-disturb/retention
  /// inflation and the read-retry ladder for threshold-shift recovery.
  std::uint64_t SampleBitErrors(std::uint32_t page_in_block,
                                std::uint32_t pe_cycles,
                                util::Xoshiro256StarStar& rng,
                                std::uint64_t transfer_bytes = 0,
                                double rber_scale = 1.0) const;

  /// True when `bit_errors` spread over the transfer's codewords stays
  /// within the ECC budget in the worst-case uniform packing (ceil split).
  /// `transfer_bytes` = 0 means the whole page.
  bool Correctable(std::uint64_t bit_errors,
                   std::uint64_t transfer_bytes = 0) const;

  /// Expected number of P/E cycles after which the mean bit errors per
  /// codeword of the given page exceed the ECC budget (analytic endurance).
  double EnduranceEstimate(std::uint32_t page_in_block) const;

  const ErrorModelConfig& config() const { return config_; }
  const NandGeometry& geometry() const { return geometry_; }

 private:
  std::uint64_t CodewordsPerPage() const;
  /// Bytes the ECC engine decodes for a `transfer_bytes` transfer: the
  /// transfer rounded up to whole codewords, clamped to the page.
  std::uint64_t DecodedBytes(std::uint64_t transfer_bytes) const;

  NandGeometry geometry_;
  ErrorModelConfig config_;
};

}  // namespace ctflash::nand
