// ClusterSim: a storage-cluster scenario over a fleet of simulated devices.
//
// The fleet is N + S full Ssd instances (spares included) stamped from one
// device template.  All of them restore from a single aged prefill snapshot
// (the campaign trick: pay the prefill once per shape), then per-device
// fault schedules arm and the measured run starts.
//
// Time advances in EPOCH LOCKSTEP, which is what makes the simulation both
// parallel and bit-deterministic for any worker count:
//
//   1. serial    generate this epoch's user arrivals (evenly spaced at the
//                cluster rate; users drawn Zipf; routed to their shard's
//                primary) and bucket them per device;
//   2. parallel  each device independently submits its bucket through its
//                own HostInterface/EventQueue and advances to the epoch
//                boundary — devices share no simulation state, so worker
//                scheduling cannot reorder anything observable;
//   3. serial    the ClusterDirector reads per-device health (unrecoverable
//                media errors = the device threw, or injected faults pushed
//                its lost-page count past the threshold), marks failures on
//                the ShardRouter, and converts the returned ShardMoves into
//                rebuild traffic for the NEXT epoch — reads on a surviving
//                replica, writes on the new placement, submitted through the
//                normal host path as the low-weight "rebuild" QoS tenant.
//
// Requests routed to a fatally-failed device complete at `timeout_us` (the
// cluster SLA timeout): under the "on_failure" policy the router stops
// routing there after one detection epoch, under the "none" control policy
// the timeouts keep accumulating — the contrast bench_cluster quantifies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "cluster/shard_router.h"
#include "cluster/spec.h"
#include "host/host_interface.h"
#include "obs/tracer.h"
#include "ssd/ssd.h"
#include "util/random.h"
#include "util/stats.h"

namespace ctflash::cluster {

/// Cluster-level latency aggregate for one epoch (merged over devices, plus
/// the timeout samples charged to dead-device traffic).
struct EpochSummary {
  util::LatencyStats read;
  util::LatencyStats write;
  std::uint64_t arrivals = 0;  ///< user requests generated this epoch
  std::uint64_t timeouts = 0;  ///< charged at timeout_us (dead device)
  /// Phase breakdown merged across the fleet (populated only with
  /// observability on; dead-device timeouts book as dead-device stall).
  obs::PhaseStats phases;
  // Observed-policy fleet health counts at this epoch's director step.
  std::uint64_t devices_degraded = 0;
  std::uint64_t devices_failing = 0;
  std::uint64_t slo_breaches = 0;  ///< devices whose window breached the SLO
};

/// End-of-run state of one fleet device.
struct DeviceSummary {
  bool alive = true;        ///< router-alive (never marked failed)
  bool fatal = false;       ///< its simulation threw (unrecoverable media)
  bool in_ring = false;     ///< holds ring points at end of run
  std::uint64_t completed = 0;  ///< user requests it completed
  std::uint64_t lost_pages = 0;
  util::LatencyStats read;  ///< whole-run user read latency on this device
  std::uint64_t rebuild_reads = 0;   ///< rebuild-tenant dispatches (source)
  std::uint64_t rebuild_writes = 0;  ///< rebuild-tenant dispatches (target)
  std::uint64_t primary_shards = 0;  ///< shards it primaries at end of run
  bool drained = false;  ///< predictively evacuated while still alive
  /// Whole-run phase breakdown for this device (observability on only).
  obs::PhaseStats phases;
  /// Final health / SLO monitor snapshots (policy on_observed only).
  campaign::Json health;
  campaign::Json slo;
};

struct ClusterResult {
  std::string name;
  campaign::Json config;
  std::vector<EpochSummary> epochs;
  std::vector<DeviceSummary> devices;
  /// Director log: one object per detection ({"epoch", "device", "cause",
  /// "shards_moved", "unrecoverable", "spare_adopted"}).
  std::vector<campaign::Json> events;

  std::uint64_t devices_failed = 0;
  std::uint64_t devices_drained = 0;  ///< predictive evacuations (on_observed)
  std::uint64_t shards_moved = 0;
  std::uint64_t spares_used = 0;
  std::uint64_t unrecoverable_shards = 0;
  std::uint64_t migration_ops = 0;    ///< rebuild chunk reads + writes
  std::uint64_t migration_bytes = 0;  ///< bytes written to new placements
  /// Phase breakdowns populated (spec observability.phases); gates the
  /// "phases" fields in the JSON report and the CSV phase columns.
  bool has_phases = false;
  /// Health/SLO monitors ran (policy on_observed); gates the "health" and
  /// "slo" report sections and the CSV health columns.
  bool has_health = false;
  double wall_ms = 0.0;

  /// Everything except wall-clock timing: byte-identical across runs and
  /// worker counts (the determinism contract bench_cluster asserts).
  campaign::Json DeterministicJson() const;
  /// DeterministicJson + timing.
  campaign::Json Report() const;
  /// Per-(epoch, device) CSV with RFC 4180 quoting.
  std::string Csv() const;
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterSpec spec);

  /// Runs the whole scenario; workers_override != 0 replaces spec.workers.
  /// Deterministic: two runs from one spec return identical
  /// DeterministicJson() for ANY worker counts.
  ClusterResult Run(std::uint32_t workers_override = 0);

  const ClusterSpec& spec() const { return spec_; }

  /// Perfetto-loadable Chrome trace of the whole fleet: one process per
  /// device with its phase/GC counter tracks, plus — under on_observed —
  /// per-device health-score (per-mille) and SLO window-p99 counter tracks.
  /// Valid after Run() when the spec enables tracing; "{}" otherwise.
  std::string FleetChromeTrace() const;

 private:
  /// One scheduled I/O for a device (user or rebuild traffic).
  struct PendingOp {
    Us at = 0;
    qos::TenantId tenant = kUserTenant;
    bool is_read = true;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };

  /// One fleet member; simulation state touched only by its worker during
  /// the parallel phase.
  struct Device {
    std::unique_ptr<ssd::Ssd> ssd;
    std::unique_ptr<host::HostInterface> host;
    /// Aggregate-only lifecycle tracer (observability on); touched only by
    /// this device's worker during the parallel phase.
    std::unique_ptr<obs::Tracer> tracer;
    bool fatal = false;
    bool router_alive = true;  ///< mirror of router state (serial phase)
    bool drained = false;      ///< predictively evacuated (on_observed)
    std::vector<PendingOp> bucket;  ///< this epoch's arrivals
    // User-op accounting (timeout attribution when the device dies with
    // requests in flight).
    std::uint64_t submitted_reads = 0, completed_reads = 0;
    std::uint64_t submitted_writes = 0, completed_writes = 0;
    std::uint64_t completed = 0;
    // Per-epoch user latency, merged into the cluster epochs serially.
    std::vector<util::LatencyStats> epoch_read;
    std::vector<util::LatencyStats> epoch_write;
    util::LatencyStats run_read;
    std::uint64_t epoch_timeouts = 0;  ///< this epoch (in-flight at death)
  };

  void BuildFleet(ClusterResult& result);
  /// Phase 1: generate + route this epoch's arrivals into device buckets.
  void GenerateEpoch(std::uint32_t epoch, ClusterResult& result);
  /// Phase 2 body: submit the device's bucket and advance to `until`.
  void RunDeviceEpoch(Device& dev, std::uint32_t epoch, Us until);
  /// Phase 3: detect failures, remap, emit next epoch's rebuild traffic.
  void DirectorStep(std::uint32_t epoch, ClusterResult& result);
  /// Director helper: mark `d` failed/drained on the router, remap its
  /// shards, and pace the rebuild traffic into future epoch buckets.
  /// Fills the move-accounting fields of `event`.
  void RebalanceDevice(std::uint32_t d, std::uint32_t epoch,
                       ClusterResult& result, campaign::Json& event);
  /// Snapshot of one device's cumulative wear / media-error / GC counters
  /// for the health monitor (serial director phase only).
  obs::HealthSample CollectHealthSample(const Device& dev) const;

  std::uint32_t EpochOf(Us at) const;
  std::uint64_t UserOffset(std::uint64_t user) const;

  ClusterSpec spec_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<Device> devices_;
  /// Per-device monitors, one each per fleet member; sized only under
  /// policy on_observed (zero-cost otherwise).  Observed serially in the
  /// director phase, so byte-deterministic for any worker count.
  std::vector<obs::HealthMonitor> health_;
  std::vector<obs::SloMonitor> slo_;
  util::Xoshiro256StarStar rng_;       ///< serial-phase draws only
  std::unique_ptr<util::ZipfSampler> zipf_;
  Us run_start_us_ = 0;
  std::uint64_t prefill_bytes_ = 0;
  std::uint64_t offset_slots_ = 0;
};

}  // namespace ctflash::cluster
