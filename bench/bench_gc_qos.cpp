// GC/host QoS — the priority-transaction routing bench.
//
// Read tail latency during a GC-heavy mixed burst (closed-loop QD 16,
// 50 % reads, 16 KiB requests over a 60 % footprint after an 85 % prefill),
// comparing the two GC routings on the identical request stream:
//   * gc_routing = kInline     (seed behavior: relocations book the die
//     timelines inside the FTL, invisible to the scheduler — a read that
//     lands behind a victim relocation waits out the whole burst);
//   * gc_routing = kScheduled  (relocation copies and erases flow through
//     the IoScheduler as low-priority transactions: ready host reads
//     overtake queued GC on the die, aging + admission control keep GC
//     live and the pool above the trigger).
//
// Asserted shape (std::runtime_error on violation, the bench error idiom),
// for BOTH FTL variants:
//   * scheduled-mode read p99 is STRICTLY lower than inline-mode read p99;
//   * mean read latency does not regress;
//   * the routings do equal GC work: erase counts within 15 %, WAF within
//     10 % (scheduled mode may skip copies the host already rewrote).
//
// Results are also written as JSON (default BENCH_gc_qos.json, override
// with --json) so the numbers are diffable across PRs.
//
// Observability (obs/): --trace-out <file> attaches a lifecycle tracer to
// every run and writes the fleet's Chrome/Perfetto timeline there (one
// process per FTL x routing); the JSON rows then carry the phase
// breakdowns.  --trace-smoke runs a single small scheduled-GC burst with
// tracing on and asserts the contract instead: phase conservation on every
// request, die-busy-gc stall attribution present, and the exported trace
// re-parses as JSON (the CI smoke, sanitizer-friendly).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "host/host_interface.h"
#include "host/load_generator.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "util/table_printer.h"

namespace {

using namespace ctflash;

struct RoutingResult {
  std::string ftl;
  std::string routing;
  double read_p50_us = 0.0;
  double read_p95_us = 0.0;
  double read_p99_us = 0.0;
  double read_mean_us = 0.0;
  double write_p99_us = 0.0;
  double waf = 1.0;
  std::uint64_t gc_erases = 0;
  std::uint64_t gc_page_copies = 0;
  std::uint64_t gc_stale_copies = 0;
  std::uint64_t read_preemptions = 0;
  /// Set only under --trace-out: the run's lifecycle tracer (timeline
  /// spans + phase breakdowns).
  std::unique_ptr<obs::Tracer> tracer;
};

RoutingResult RunOne(ssd::FtlKind kind, ftl::GcRouting routing,
                     std::uint64_t device_bytes, std::uint64_t requests,
                     bench::PrefillSnapshotCache& prefills, bool trace,
                     Us metrics_epoch_us) {
  auto cfg = ssd::ScaledConfig(kind, device_bytes, 16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  cfg.ftl.gc_routing = routing;
  ssd::Ssd ssd(cfg);

  // Synchronous prefill before the host interface exists: the GC sink is
  // not attached yet, so inline GC keeps the pool healthy in both modes —
  // which also makes the prefilled state routing-independent, so the cache
  // prefills each FTL variant once and restores it for the other routing.
  const Us prefill_end =
      prefills.Prefill(ssd, ssd.LogicalBytes() / 100 * 85);
  ssd.ftl().ResetStats();

  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  std::unique_ptr<obs::Tracer> tracer;
  if (trace) {
    obs::TracerConfig tc;
    tc.record_spans = true;
    tc.metrics_epoch_us = metrics_epoch_us;
    tc.epoch_base_us = prefill_end;
    tracer = std::make_unique<obs::Tracer>(tc);
    host.AttachTracer(tracer.get());
  }

  host::ClosedLoopGenerator::Config gen;
  gen.queue_depth = 16;
  gen.total_requests = requests;
  gen.read_fraction = 0.5;
  gen.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  gen.seed = 99;
  const host::LoadStats load = host::ClosedLoopGenerator(host, gen).Run();

  RoutingResult r;
  r.ftl = ssd::FtlKindName(kind);
  r.routing = ftl::GcRoutingName(routing);
  r.read_p50_us = load.read_latency.p50_us();
  r.read_p95_us = load.read_latency.p95_us();
  r.read_p99_us = load.read_latency.p99_us();
  r.read_mean_us = load.read_latency.mean_us();
  r.write_p99_us = load.write_latency.p99_us();
  r.waf = ssd.ftl().stats().Waf();
  r.gc_erases = ssd.ftl().stats().gc_erases;
  r.gc_page_copies = ssd.ftl().stats().gc_page_copies;
  r.gc_stale_copies = ssd.ftl().stats().gc_stale_copies;
  r.read_preemptions = host.scheduler().ReadPreemptionsOfGc();
  r.tracer = std::move(tracer);
  return r;
}

void CheckPair(const RoutingResult& inline_r, const RoutingResult& sched_r) {
  std::ostringstream os;
  if (inline_r.gc_erases == 0) {
    os << inline_r.ftl << ": burst was expected to be GC-heavy";
    throw std::runtime_error(os.str());
  }
  if (!(sched_r.read_p99_us < inline_r.read_p99_us)) {
    os << sched_r.ftl << ": scheduled read p99 (" << sched_r.read_p99_us
       << " us) not strictly below inline (" << inline_r.read_p99_us << " us)";
    throw std::runtime_error(os.str());
  }
  if (sched_r.read_mean_us > inline_r.read_mean_us) {
    os << sched_r.ftl << ": scheduled mean read latency regressed ("
       << sched_r.read_mean_us << " > " << inline_r.read_mean_us << " us)";
    throw std::runtime_error(os.str());
  }
  const double erase_ratio = static_cast<double>(sched_r.gc_erases) /
                             static_cast<double>(inline_r.gc_erases);
  if (erase_ratio < 0.85 || erase_ratio > 1.15) {
    os << sched_r.ftl << ": erase counts diverged (scheduled "
       << sched_r.gc_erases << " vs inline " << inline_r.gc_erases << ")";
    throw std::runtime_error(os.str());
  }
  const double waf_ratio = sched_r.waf / inline_r.waf;
  if (waf_ratio < 0.90 || waf_ratio > 1.10) {
    os << sched_r.ftl << ": WAF diverged (scheduled " << sched_r.waf
       << " vs inline " << inline_r.waf << ")";
    throw std::runtime_error(os.str());
  }
}

void WriteJson(const std::string& path, std::uint64_t device_bytes,
               std::uint64_t requests,
               const std::vector<RoutingResult>& results,
               const ctflash::bench::PrefillSnapshotCache& prefills) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n"
      << "  \"bench\": \"gc_qos\",\n"
      << "  \"workload\": \"closed-loop QD16, 50% reads, 16KiB, 60% "
         "footprint, 85% prefill\",\n"
      << "  \"device_bytes\": " << device_bytes << ",\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"prefill\": " << prefills.JsonObject() << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"ftl\": \"" << r.ftl << "\", \"gc_routing\": \"" << r.routing
        << "\", \"read_p50_us\": " << r.read_p50_us
        << ", \"read_p95_us\": " << r.read_p95_us
        << ", \"read_p99_us\": " << r.read_p99_us
        << ", \"read_mean_us\": " << r.read_mean_us
        << ", \"write_p99_us\": " << r.write_p99_us << ", \"waf\": " << r.waf
        << ", \"gc_erases\": " << r.gc_erases
        << ", \"gc_page_copies\": " << r.gc_page_copies
        << ", \"gc_stale_copies\": " << r.gc_stale_copies
        << ", \"read_preemptions\": " << r.read_preemptions;
    if (r.tracer != nullptr) {
      out << ", \"phases\": " << ctflash::obs::PhaseStatsJson(r.tracer->phases()).Dump();
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// --trace-smoke: one small scheduled-GC burst with full tracing on.  The
// asserted contract is the observability story itself, not the p99 shape:
// conservation holds per request, read tail time is attributable to GC
// holding dies by name, and the export round-trips through the JSON parser.
int RunTraceSmoke(const bench::BenchOptions& options) {
  auto cfg =
      ssd::ScaledConfig(ssd::FtlKind::kPpb, 256ull << 20, 16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  cfg.ftl.gc_routing = ftl::GcRouting::kScheduled;
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner prefiller(ssd);
  const Us prefill_end = prefiller.Prefill(ssd.LogicalBytes() / 100 * 85);
  ssd.ftl().ResetStats();

  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  obs::TracerConfig tc;
  tc.record_spans = true;
  tc.record_requests = true;
  tc.metrics_epoch_us =
      options.metrics_epoch_us != 0 ? options.metrics_epoch_us : 10'000;
  tc.epoch_base_us = prefill_end;
  obs::Tracer tracer(tc);
  host.AttachTracer(&tracer);

  host::ClosedLoopGenerator::Config gen;
  gen.queue_depth = 16;
  gen.total_requests = 20'000;
  gen.read_fraction = 0.5;
  gen.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  gen.seed = 99;
  host::ClosedLoopGenerator(host, gen).Run();

  if (ssd.ftl().stats().gc_erases == 0) {
    throw std::runtime_error("trace-smoke: burst was expected to be GC-heavy");
  }
  if (tracer.requests().empty()) {
    throw std::runtime_error("trace-smoke: no requests recorded");
  }
  for (const obs::PhaseRecord& r : tracer.requests()) {
    if (r.PacedUs() + r.QueuedUs() + r.MediaUs() != r.TotalUs()) {
      throw std::runtime_error(
          "trace-smoke: phase conservation violated on request " +
          std::to_string(r.request_id));
    }
  }
  const auto& read = tracer.phases().read;
  const auto gc_idx = static_cast<std::size_t>(obs::StallCause::kDieBusyGc);
  if (read.stall_us[gc_idx] == 0) {
    throw std::runtime_error(
        "trace-smoke: no die-busy-gc stall attributed to reads");
  }
  if (tracer.PendingRequests() != 0) {
    throw std::runtime_error(
        "trace-smoke: requests left pending after drain");
  }

  const std::string trace = obs::ChromeTraceJson(tracer);
  const campaign::Json parsed = campaign::Json::Parse(trace);
  const campaign::Json* events = parsed.Get("traceEvents");
  if (events == nullptr || events->AsArray().empty()) {
    throw std::runtime_error("trace-smoke: exported trace has no events");
  }
  const std::string path = options.trace_out_path.empty()
                               ? "BENCH_gc_qos_trace.json"
                               : options.trace_out_path;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << trace;
  if (!options.metrics_out_path.empty()) {
    obs::MetricsRegistry registry;
    obs::ExportPhaseStats(tracer.phases(), "gc_qos", registry);
    registry.AddCounter("gc_qos.spans", tracer.spans().size());
    registry.AddCounter("gc_qos.requests", tracer.requests().size());
    std::ofstream mout(options.metrics_out_path);
    if (!mout) {
      throw std::runtime_error("cannot write " + options.metrics_out_path);
    }
    mout << registry.ToJson().Dump(2) << "\n";
    std::cout << "metrics written to " << options.metrics_out_path << "\n";
  }
  std::cout << "trace-smoke OK: " << events->AsArray().size()
            << " trace events (" << tracer.spans().size() << " spans, "
            << tracer.requests().size() << " requests, digest "
            << obs::TraceDigest(trace) << ")\n"
            << "read die-busy-gc stall: " << read.stall_us[gc_idx]
            << " us over " << read.stall_events[gc_idx] << " events\n"
            << "trace written to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using ctflash::bench::BenchOptions;
  // --trace-smoke is this bench's own mode switch, peeled off before the
  // shared harness parser sees the argument list.
  bool trace_smoke = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace-smoke") {
      trace_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  auto options =
      BenchOptions::FromArgs(static_cast<int>(args.size()), args.data());
  if (trace_smoke) return RunTraceSmoke(options);
  // This bench's own scale defaults (a small array GC cycles quickly),
  // applied only when the user did not pass the flag — the harness default
  // values are valid user choices, so detect presence, not value.
  bool user_device = false;
  bool user_requests = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--device") user_device = true;
    if (arg == "--qd-requests") user_requests = true;
  }
  if (!user_device) options.device_bytes = 512ull << 20;
  const std::uint64_t requests = user_requests ? options.qd_requests : 120'000;
  const std::string json_path =
      options.json_path.empty() ? "BENCH_gc_qos.json" : options.json_path;

  std::cout << "=== GC/host QoS: inline vs scheduled GC routing ===\n"
            << "Reads during a GC-heavy mixed burst (QD16, 50% reads); GC as\n"
            << "preemptible scheduler-visible transactions vs inline booking.\n"
            << "Device: " << (options.device_bytes >> 20)
            << " MiB scaled array; " << requests << " requests\n\n";

  // --metrics-out needs the tracers attached too: the registry is built
  // from their phase breakdowns.
  const bool trace =
      !options.trace_out_path.empty() || !options.metrics_out_path.empty();
  std::vector<RoutingResult> results;
  ctflash::bench::PrefillSnapshotCache prefills;
  for (const auto kind :
       {ctflash::ssd::FtlKind::kConventional, ctflash::ssd::FtlKind::kPpb}) {
    auto inline_r =
        RunOne(kind, ctflash::ftl::GcRouting::kInline, options.device_bytes,
               requests, prefills, trace, options.metrics_epoch_us);
    auto sched_r =
        RunOne(kind, ctflash::ftl::GcRouting::kScheduled, options.device_bytes,
               requests, prefills, trace, options.metrics_epoch_us);
    CheckPair(inline_r, sched_r);
    results.push_back(std::move(inline_r));
    results.push_back(std::move(sched_r));
  }

  ctflash::util::TablePrinter table(
      {"FTL", "GC routing", "read p50", "read p95", "read p99", "read mean",
       "WAF", "erases", "stale copies", "preemptions"});
  for (const auto& r : results) {
    table.AddRow({r.ftl, r.routing, ctflash::util::TablePrinter::FormatDouble(r.read_p50_us),
                  ctflash::util::TablePrinter::FormatDouble(r.read_p95_us), ctflash::util::TablePrinter::FormatDouble(r.read_p99_us),
                  ctflash::util::TablePrinter::FormatDouble(r.read_mean_us), ctflash::util::TablePrinter::FormatDouble(r.waf),
                  std::to_string(r.gc_erases), std::to_string(r.gc_stale_copies),
                  std::to_string(r.read_preemptions)});
  }
  table.Print();

  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const auto& in = results[i];
    const auto& sc = results[i + 1];
    std::cout << "\n" << in.ftl << ": scheduled read p99 "
              << sc.read_p99_us << " us vs inline " << in.read_p99_us
              << " us (" << (1.0 - sc.read_p99_us / in.read_p99_us) * 100.0
              << "% lower) at erase parity " << sc.gc_erases << "/"
              << in.gc_erases;
  }
  if (!options.trace_out_path.empty()) {
    std::vector<std::pair<std::string, const ctflash::obs::Tracer*>> fleet;
    for (const auto& r : results) {
      fleet.emplace_back(r.ftl + "-" + r.routing, r.tracer.get());
    }
    const std::string trace_json = ctflash::obs::ChromeTraceJson(fleet);
    std::ofstream tout(options.trace_out_path);
    if (!tout) {
      throw std::runtime_error("cannot write " + options.trace_out_path);
    }
    tout << trace_json;
    std::cout << "\ntrace written to " << options.trace_out_path << " ("
              << trace_json.size() << " bytes, digest "
              << ctflash::obs::TraceDigest(trace_json) << ")";
  }
  if (!options.metrics_out_path.empty()) {
    // One registry over all arms, namespaced per (ftl, routing) pair.
    ctflash::obs::MetricsRegistry registry;
    for (const auto& r : results) {
      if (r.tracer == nullptr) continue;
      ctflash::obs::ExportPhaseStats(r.tracer->phases(),
                                     r.ftl + "." + r.routing, registry);
    }
    std::ofstream mout(options.metrics_out_path);
    if (!mout) {
      throw std::runtime_error("cannot write " + options.metrics_out_path);
    }
    mout << registry.ToJson().Dump(2) << "\n";
    std::cout << "\nmetrics written to " << options.metrics_out_path;
  }
  std::cout << "\n\nprefill snapshots: " << prefills.distinct_prefills()
            << " prefills, " << prefills.restores() << " restores, ~"
            << prefills.saved_wall_ms() << " ms saved";
  std::cout << "\nAll assertions passed; JSON written to " << json_path
            << "\n";
  WriteJson(json_path, options.device_bytes, requests, results, prefills);
  return 0;
}
