#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace ctflash::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::cout << ToString(); }

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::FormatScientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*E", precision, v);
  return buf;
}

}  // namespace ctflash::util
