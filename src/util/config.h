// Minimal INI-style configuration store.
//
// Sections map keys to string values; typed getters parse integers, doubles,
// booleans and byte sizes ("16KiB", "64GB", "4096").  Used by the example
// programs and the experiment harness so device geometry can be changed
// without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace ctflash::util {

class ConfigMap {
 public:
  ConfigMap() = default;

  /// Parses INI text: `[section]`, `key = value`, `#`/`;` comments.
  /// Throws std::invalid_argument on malformed lines.
  static ConfigMap FromString(const std::string& text);

  /// Loads from a file; throws std::runtime_error when unreadable.
  static ConfigMap FromFile(const std::string& path);

  void Set(const std::string& section, const std::string& key,
           const std::string& value);

  bool Has(const std::string& section, const std::string& key) const;

  std::optional<std::string> GetString(const std::string& section,
                                       const std::string& key) const;
  std::string GetStringOr(const std::string& section, const std::string& key,
                          const std::string& fallback) const;

  /// Integer getter; accepts decimal and 0x-hex. Throws on non-numeric value.
  std::int64_t GetIntOr(const std::string& section, const std::string& key,
                        std::int64_t fallback) const;
  double GetDoubleOr(const std::string& section, const std::string& key,
                     double fallback) const;
  /// Accepts true/false/yes/no/on/off/1/0 (case-insensitive).
  bool GetBoolOr(const std::string& section, const std::string& key,
                 bool fallback) const;
  /// Byte-size getter: "64GiB", "16KB" (decimal K treated as 1024), "4096".
  std::uint64_t GetBytesOr(const std::string& section, const std::string& key,
                           std::uint64_t fallback) const;

  /// Serializes back to INI text (sections sorted, keys sorted).
  std::string ToString() const;

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

/// Parses "16KiB"/"4MB"/"64G"/"123" into bytes. K/M/G/T suffixes (with or
/// without "iB"/"B") are all binary multiples. Throws std::invalid_argument.
std::uint64_t ParseByteSize(const std::string& text);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Lower-cases ASCII.
std::string ToLower(const std::string& s);

}  // namespace ctflash::util
