// Request lifecycle phases and stall causes: the vocabulary of end-to-end
// latency attribution.
//
// Every host request moves through submitted -> (admission-paced) ->
// queued -> dispatched -> media-busy -> (retried) -> completed.  The
// tracer (obs/tracer.h) measures the three durations that tile the
// end-to-end latency exactly:
//
//   paced   = admit - submit      host-side admission wait (token-bucket
//                                 pacing or full-queue backpressure);
//   queued  = dispatch - admit    ready-set wait of the request's
//                                 critical (last-completing) transaction;
//   media   = complete - dispatch device time of the critical transaction,
//                                 including waiting for its target die.
//
// paced + queued + media == completion - submit for every traced request
// (the conservation property obs_tracer_test locks in).  Each phase can be
// attributed to a StallCause: who the request was waiting FOR, not just
// how long.  PhaseBreakdown aggregates the durations and the attributed
// stall time; everything merges, like every aggregate in this tree.
#pragma once

#include <array>
#include <cstdint>

#include "util/stats.h"
#include "util/types.h"

namespace ctflash::obs {

/// Lifecycle phases of a traced request / transaction.
enum class Phase : std::uint8_t {
  kSubmitted = 0,  ///< entered the host interface
  kPaced,          ///< waiting host-side for admission
  kQueued,         ///< in the scheduler ready set
  kMediaBusy,      ///< executing on the device (incl. die wait)
  kRetried,        ///< extra read-retry senses inside the media phase
  kCompleted,      ///< finished
};

inline const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kSubmitted:
      return "submitted";
    case Phase::kPaced:
      return "paced";
    case Phase::kQueued:
      return "queued";
    case Phase::kMediaBusy:
      return "media-busy";
    case Phase::kRetried:
      return "retried";
    case Phase::kCompleted:
      return "completed";
  }
  return "?";
}

/// What a phase's time was spent waiting for.
enum class StallCause : std::uint8_t {
  kNone = 0,        ///< no attributable stall
  kTokenBucket,     ///< paced: tenant rate-limit admission
  kBackpressure,    ///< paced: all submission queues full
  kDieBusyGc,       ///< media: target die occupied by in-flight GC work
  kDieBusyHost,     ///< media: target die occupied by other host work
  kWriteHold,       ///< queued: write held by the GC admission guard
  kDeadDevice,      ///< charged the SLA timeout (die/device loss)
};

inline constexpr int kStallCauseCount = 7;

inline const char* StallCauseName(StallCause cause) {
  switch (cause) {
    case StallCause::kNone:
      return "none";
    case StallCause::kTokenBucket:
      return "token-bucket";
    case StallCause::kBackpressure:
      return "backpressure";
    case StallCause::kDieBusyGc:
      return "die-busy-gc";
    case StallCause::kDieBusyHost:
      return "die-busy-host";
    case StallCause::kWriteHold:
      return "write-hold";
    case StallCause::kDeadDevice:
      return "dead-device";
  }
  return "?";
}

/// Phase-duration aggregate over one request class (reads or writes).
/// Every completed request adds one sample to each of the four series
/// (zeros included), so mean(paced) + mean(queued) + mean(media) ==
/// mean(total) and the counts agree — the merge-safe form of the
/// conservation property.
struct PhaseBreakdown {
  util::LatencyStats total;   ///< end-to-end latency
  util::LatencyStats paced;   ///< admission wait
  util::LatencyStats queued;  ///< ready-set wait (critical transaction)
  util::LatencyStats media;   ///< device time (critical transaction)
  /// Attributed stall time / event counts, indexed by StallCause.
  std::array<std::uint64_t, kStallCauseCount> stall_us{};
  std::array<std::uint64_t, kStallCauseCount> stall_events{};

  void Add(Us paced_us, Us queued_us, Us media_us) {
    total.Add(paced_us + queued_us + media_us);
    paced.Add(paced_us);
    queued.Add(queued_us);
    media.Add(media_us);
  }

  void Attribute(StallCause cause, Us us) {
    if (cause == StallCause::kNone || us <= 0) return;
    stall_us[static_cast<std::size_t>(cause)] += static_cast<std::uint64_t>(us);
    stall_events[static_cast<std::size_t>(cause)]++;
  }

  void Merge(const PhaseBreakdown& other) {
    total.Merge(other.total);
    paced.Merge(other.paced);
    queued.Merge(other.queued);
    media.Merge(other.media);
    for (int c = 0; c < kStallCauseCount; ++c) {
      stall_us[c] += other.stall_us[c];
      stall_events[c] += other.stall_events[c];
    }
  }
};

/// Read/write pair of breakdowns: the per-arm / per-epoch unit the
/// campaign and cluster reports carry.
struct PhaseStats {
  PhaseBreakdown read;
  PhaseBreakdown write;

  /// A request charged the SLA timeout (dead device): the whole duration
  /// is media time attributed to kDeadDevice.
  void AddTimeout(bool is_read, Us charged_us) {
    PhaseBreakdown& b = is_read ? read : write;
    b.Add(0, 0, charged_us);
    b.Attribute(StallCause::kDeadDevice, charged_us);
  }

  void Merge(const PhaseStats& other) {
    read.Merge(other.read);
    write.Merge(other.write);
  }
};

}  // namespace ctflash::obs
