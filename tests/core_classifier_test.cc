#include "core/classifier.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::core {
namespace {

TEST(SizeCheck, HotIffSmallerThanThreshold) {
  const SizeCheckClassifier c(16 * 1024);
  EXPECT_TRUE(c.IsHotWrite(0, 4096));
  EXPECT_TRUE(c.IsHotWrite(0, 16 * 1024 - 1));
  EXPECT_FALSE(c.IsHotWrite(0, 16 * 1024));  // strictly smaller only
  EXPECT_FALSE(c.IsHotWrite(0, 1 << 20));
}

TEST(SizeCheck, OffsetIrrelevant) {
  const SizeCheckClassifier c(8192);
  EXPECT_EQ(c.IsHotWrite(0, 4096), c.IsHotWrite(1 << 30, 4096));
}

TEST(SizeCheck, ZeroThresholdRejected) {
  EXPECT_THROW(SizeCheckClassifier(0), std::invalid_argument);
}

TEST(SizeCheck, NameMentionsThreshold) {
  const SizeCheckClassifier c(16384);
  EXPECT_NE(c.Name().find("16384"), std::string::npos);
}

TEST(SizeCheck, FactoryBuildsPolymorphicInstance) {
  const auto c = MakeSizeCheckClassifier(4096);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->IsHotWrite(0, 100));
  EXPECT_FALSE(c->IsHotWrite(0, 5000));
}

TEST(ConstantClassifier, AlwaysHotOrCold) {
  const ConstantClassifier hot(true), cold(false);
  for (std::uint64_t size : {1ull, 4096ull, 1ull << 20}) {
    EXPECT_TRUE(hot.IsHotWrite(0, size));
    EXPECT_FALSE(cold.IsHotWrite(0, size));
  }
  EXPECT_EQ(hot.Name(), "always-hot");
  EXPECT_EQ(cold.Name(), "always-cold");
}

}  // namespace
}  // namespace ctflash::core
