// ReplayEngine integration tests: direct-mode parity with the seed
// open-loop replay (the golden check for the ExperimentRunner rebase),
// host-mode conservation, windowed telemetry, per-tenant attribution, CDF
// extraction, and the sample-CSV two-tenant mixed replay smoke.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "host/host_interface.h"
#include "replay/latency_cdf.h"
#include "replay/replay_engine.h"
#include "replay/replay_plan.h"
#include "replay/trace_source.h"
#include "ssd/experiment.h"
#include "trace/synthetic.h"

namespace ctflash::replay {
namespace {

ssd::SsdConfig DeviceConfig(ftl::TimingMode mode) {
  auto cfg =
      ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28, 16 * 1024, 2.0);
  cfg.timing_mode = mode;
  return cfg;
}

std::vector<trace::TraceRecord> WebRecords(std::uint64_t n,
                                           std::uint64_t footprint) {
  const auto cfg = trace::WebServerWorkload(footprint, n);
  return trace::SyntheticTraceGenerator(cfg).Generate();
}

// The seed ExperimentRunner::ReplayOpenLoop loop, verbatim: one event per
// record, synchronous issue with wrap-clipping.  The rebased runner must
// reproduce it exactly.
struct SeedOpenLoopResult {
  util::LatencyStats read_latency;
  util::LatencyStats write_latency;
  std::uint64_t erases = 0;
};

SeedOpenLoopResult SeedOpenLoop(ssd::Ssd& ssd,
                                const std::vector<trace::TraceRecord>& records,
                                Us base) {
  SeedOpenLoopResult result;
  sim::EventQueue queue;
  for (const auto& rec : records) {
    queue.ScheduleAt(base + rec.timestamp_us, [&ssd, &rec, &result](Us now) {
      std::uint64_t offset = rec.offset_bytes;
      std::uint64_t size = rec.size_bytes;
      const std::uint64_t logical = ssd.LogicalBytes();
      if (offset >= logical) offset %= logical;
      if (offset + size > logical) size = logical - offset;
      if (size == 0) return;
      if (rec.op == trace::OpType::kRead) {
        result.read_latency.Add(ssd.Read(offset, size, now).LatencyUs());
      } else {
        result.write_latency.Add(ssd.Write(offset, size, now).LatencyUs());
      }
    });
  }
  queue.RunToCompletion();
  result.erases = ssd.ftl().stats().gc_erases;
  return result;
}

TEST(DirectMode, RebasedReplayOpenLoopMatchesSeedLoopExactly) {
  for (const auto mode :
       {ftl::TimingMode::kServiceTime, ftl::TimingMode::kQueued}) {
    const auto records = WebRecords(4000, (1ull << 28) / 2);

    ssd::Ssd seed_ssd(DeviceConfig(mode));
    ssd::ExperimentRunner seed_runner(seed_ssd);
    const Us base = seed_runner.Prefill(seed_ssd.LogicalBytes() / 2);
    const auto seed = SeedOpenLoop(seed_ssd, records, base);

    ssd::Ssd ssd(DeviceConfig(mode));
    ssd::ExperimentRunner runner(ssd);
    runner.Prefill(ssd.LogicalBytes() / 2);
    const auto rebased = runner.ReplayOpenLoop(records, "web");

    EXPECT_DOUBLE_EQ(rebased.read_latency.total_us(),
                     seed.read_latency.total_us());
    EXPECT_DOUBLE_EQ(rebased.write_latency.total_us(),
                     seed.write_latency.total_us());
    EXPECT_EQ(rebased.read_latency.count(), seed.read_latency.count());
    EXPECT_EQ(rebased.write_latency.count(), seed.write_latency.count());
    EXPECT_DOUBLE_EQ(rebased.read_latency.p99_us(), seed.read_latency.p99_us());
    EXPECT_EQ(rebased.erase_count, seed.erases);
  }
}

TEST(DirectMode, ConservationAndWindows) {
  ssd::Ssd ssd(DeviceConfig(ftl::TimingMode::kServiceTime));
  ReplayEngineConfig config;
  config.window_us = 10'000;
  ReplayEngine engine(ssd, config);
  // 100 reads every 1 ms: 10 windows of 10 each.
  std::vector<trace::TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({i * 1000, trace::OpType::kRead,
                       static_cast<std::uint64_t>(i) * 16 * 1024, 16 * 1024});
  }
  // Map before reading (reads of unmapped pages still time, but write
  // first so the stream is realistic).
  ssd.Write(0, 100 * 16 * 1024, 0);
  VectorTraceSource source(records);
  const ReplayResult result = engine.Run(source);

  EXPECT_EQ(result.pulled, 100u);
  EXPECT_EQ(result.submitted, 100u);
  EXPECT_EQ(result.completed, 100u);
  EXPECT_EQ(result.dropped, 0u);
  ASSERT_GE(result.windows.size(), 9u);
  std::uint64_t window_completions = 0;
  for (const auto& w : result.windows) {
    EXPECT_EQ(w.end_us - w.start_us >= 0, true);
    window_completions += w.completions;
  }
  EXPECT_EQ(window_completions, result.completed);
  EXPECT_GT(result.Iops(), 0.0);
}

TEST(HostMode, SingleStreamConservation) {
  ssd::Ssd ssd(DeviceConfig(ftl::TimingMode::kQueued));
  host::HostConfig host_cfg;
  host::HostInterface host(ssd, host_cfg);
  ReplayEngineConfig config;
  config.window_us = 50'000;
  ReplayEngine engine(host, config);

  const auto records = WebRecords(3000, (1ull << 28) / 2);
  VectorTraceSource source(records);
  const ReplayResult result = engine.Run(source);

  EXPECT_EQ(result.pulled, records.size());
  EXPECT_EQ(result.submitted, records.size());
  EXPECT_EQ(result.completed, records.size());
  EXPECT_EQ(result.read_latency.count() + result.write_latency.count(),
            records.size());
  EXPECT_EQ(host.Outstanding(), 0u);
  EXPECT_GT(result.MakespanUs(), 0);
  // Windowed telemetry covers every completion.
  std::uint64_t windowed = 0;
  for (const auto& w : result.windows) windowed += w.completions;
  EXPECT_EQ(windowed, result.completed);
}

TEST(HostMode, DeterministicAcrossRuns) {
  auto run = []() {
    ssd::Ssd ssd(DeviceConfig(ftl::TimingMode::kQueued));
    host::HostConfig host_cfg;
    host::HostInterface host(ssd, host_cfg);
    ReplayEngine engine(host, ReplayEngineConfig{});
    const auto records = WebRecords(2000, (1ull << 28) / 2);
    VectorTraceSource source(records);
    const ReplayResult r = engine.Run(source);
    return std::make_pair(r.read_latency.total_us(), r.end_us);
  };
  EXPECT_EQ(run(), run());
}

qos::QosConfig TwoTenants() {
  qos::QosConfig qos;
  qos.tenants.resize(2);
  qos.tenants[0].name = "media";
  qos.tenants[0].weight = 8;
  qos.tenants[0].queues = {0, 1};
  qos.tenants[1].name = "web";
  qos.tenants[1].weight = 1;
  qos.tenants[1].queues = {2, 3};
  return qos;
}

TEST(HostMode, TenantTaggedMergeAttributesPerTenant) {
  ssd::Ssd ssd(DeviceConfig(ftl::TimingMode::kQueued));
  host::HostConfig host_cfg;
  host_cfg.qos = TwoTenants();
  host::HostInterface host(ssd, host_cfg);
  ReplayEngine engine(host, ReplayEngineConfig{});

  const std::uint64_t logical = ssd.LogicalBytes();
  ReplayPlan plan;
  SourceOptions media;
  media.name = "media";
  media.tenant = 0;
  media.remap.policy = RemapPolicy::kWrap;
  media.remap.footprint_bytes = logical / 2;
  plan.AddSource(std::make_unique<VectorTraceSource>(WebRecords(800, 4 * logical)),
                 media);
  SourceOptions web;
  web.name = "web";
  web.tenant = 1;
  web.remap.policy = RemapPolicy::kHashScatter;
  web.remap.footprint_bytes = logical / 2;
  web.remap.base_bytes = logical / 2;
  plan.AddSource(
      std::make_unique<VectorTraceSource>(WebRecords(600, 4 * logical)), web);

  const ReplayResult result = engine.Run(plan);
  ASSERT_EQ(result.sources.size(), 2u);
  ASSERT_EQ(result.tenants.size(), 2u);

  const std::uint64_t emitted =
      result.sources[0].emitted + result.sources[1].emitted;
  EXPECT_EQ(result.pulled, emitted);
  EXPECT_EQ(result.completed, emitted);
  EXPECT_EQ(result.tenants[0].name, "media");
  EXPECT_EQ(result.tenants[0].completed, result.sources[0].emitted);
  EXPECT_EQ(result.tenants[1].completed, result.sources[1].emitted);
  for (const auto& tenant : result.tenants) {
    EXPECT_GT(tenant.completed, 0u);
    EXPECT_GE(tenant.last_completion_us, tenant.first_submit_us);
    EXPECT_GT(tenant.Iops(), 0.0);
    EXPECT_EQ(tenant.read_latency.count() + tenant.write_latency.count(),
              tenant.completed);
  }
}

TEST(HostMode, SampleCsvTwoTenantMixedReplayConserves) {
  const std::string path =
      std::string(CTFLASH_TEST_DATA_DIR) + "/sample_msr.csv";
  ssd::Ssd ssd(DeviceConfig(ftl::TimingMode::kQueued));
  host::HostConfig host_cfg;
  host_cfg.qos = TwoTenants();
  host::HostInterface host(ssd, host_cfg);
  ReplayEngine engine(host, ReplayEngineConfig{});

  const std::uint64_t logical = ssd.LogicalBytes();
  ReplayPlan plan;
  StreamingMsrCsvSource::Options media_opts;
  media_opts.hostname_filter = "mds0";
  SourceOptions media;
  media.name = "mds0";
  media.tenant = 0;
  media.remap.policy = RemapPolicy::kWrap;
  media.remap.footprint_bytes = logical / 2;
  plan.AddSource(std::make_unique<StreamingMsrCsvSource>(path, media_opts),
                 media);
  StreamingMsrCsvSource::Options web_opts;
  web_opts.hostname_filter = "web0";
  SourceOptions web;
  web.name = "web0";
  web.tenant = 1;
  web.remap.policy = RemapPolicy::kWrap;
  web.remap.footprint_bytes = logical / 2;
  web.remap.base_bytes = logical / 2;
  web.warp.acceleration = 2.0;
  plan.AddSource(std::make_unique<StreamingMsrCsvSource>(path, web_opts), web);

  const ReplayResult result = engine.Run(plan);
  // Conservation: all 200 sample records split 100/100, every emitted
  // record submitted and completed.
  EXPECT_EQ(result.sources[0].pulled, 100u);
  EXPECT_EQ(result.sources[1].pulled, 100u);
  EXPECT_EQ(result.pulled,
            result.sources[0].emitted + result.sources[1].emitted);
  EXPECT_EQ(result.completed, result.pulled);
  EXPECT_EQ(result.tenants[0].completed, result.sources[0].emitted);
  EXPECT_EQ(result.tenants[1].completed, result.sources[1].emitted);
  EXPECT_EQ(host.Outstanding(), 0u);
}

TEST(LatencyCdfExtraction, StaircaseIsMonotoneAndComplete) {
  util::LatencyStats stats;
  for (int i = 0; i < 900; ++i) stats.Add(100);
  for (int i = 0; i < 100; ++i) stats.Add(1000 + i * 90);
  const auto cdf = LatencyCdf(stats);
  ASSERT_GE(cdf.size(), 3u);
  double prev_cum = 0.0;
  double prev_lat = 0.0;
  std::uint64_t total = 0;
  for (const auto& point : cdf) {
    EXPECT_GT(point.cum_fraction, prev_cum);
    EXPECT_GT(point.latency_us, prev_lat);
    prev_cum = point.cum_fraction;
    prev_lat = point.latency_us;
    total += point.count;
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
  EXPECT_EQ(total, stats.count());

  // The knee sits where the tail takes off: at/after the 100 us mode.
  const std::size_t knee = KneeIndex(cdf);
  ASSERT_LT(knee, cdf.size());
  EXPECT_GE(cdf[knee].cum_fraction, 0.8);
}

TEST(LatencyCdfExtraction, EmptyAndTinyInputs) {
  util::LatencyStats empty;
  EXPECT_TRUE(LatencyCdf(empty).empty());
  util::LatencyStats one;
  one.Add(50);
  const auto cdf = LatencyCdf(one);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].cum_fraction, 1.0);
  EXPECT_EQ(KneeIndex(cdf), cdf.size());  // no interior to bend
}

}  // namespace
}  // namespace ctflash::replay
