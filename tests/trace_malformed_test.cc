// Hostile-input coverage for the MSR CSV parser: corrupt enterprise traces
// must fail loudly with a line number, never wrap into bogus requests.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/trace.h"
#include "util/random.h"

namespace ctflash::trace {
namespace {

std::string ParseError(const std::string& text) {
  std::istringstream in(text);
  try {
    ParseMsrCsv(in);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(MsrCsvMalformed, NegativeOffsetRejectedWithLineNumber) {
  // std::stoull would silently wrap "-4096" to ~2^64; the parser must not.
  const std::string err = ParseError(
      "100,h,0,Read,0,512,0\n"
      "200,h,0,Read,-4096,512,0\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(MsrCsvMalformed, NegativeSizeRejectedWithLineNumber) {
  const std::string err = ParseError("100,h,0,Write,0,-1,0\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("size"), std::string::npos) << err;
}

TEST(MsrCsvMalformed, OverflowingFieldsRejected) {
  // > 2^64: out_of_range from stoull must surface as a line-numbered
  // invalid_argument, not escape as a different exception type.
  EXPECT_NE(ParseError("100,h,0,Read,99999999999999999999999,512,0\n")
                .find("line 1"),
            std::string::npos);
  EXPECT_NE(ParseError("100,h,0,Read,0,18446744073709551617,0\n")
                .find("line 1"),
            std::string::npos);
  // Timestamp overflow (int64) as well.
  EXPECT_NE(ParseError("999999999999999999999999,h,0,Read,0,512,0\n")
                .find("line 1"),
            std::string::npos);
}

TEST(MsrCsvMalformed, OffsetPlusSizeWrapRejected) {
  // Each field fits in uint64 but their sum wraps past 2^64 — downstream
  // clipping arithmetic would silently misbehave.
  const std::string err =
      ParseError("100,h,0,Read,18446744073709551615,2,0\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("overflow"), std::string::npos) << err;
}

TEST(MsrCsvMalformed, NegativeTimestampRejected) {
  EXPECT_NE(ParseError("-100,h,0,Read,0,512,0\n").find("line 1"),
            std::string::npos);
}

TEST(MsrCsvMalformed, GarbageNumericFieldsRejected) {
  EXPECT_FALSE(ParseError("100,h,0,Read,12abc,512,0\n").empty());
  EXPECT_FALSE(ParseError("100,h,0,Read,0x1000,512,0\n").empty());
  EXPECT_FALSE(ParseError("100,h,0,Read,,512,0\n").empty());
  EXPECT_FALSE(ParseError("100,h,0,Read,4096,5 12,0\n").empty());
  EXPECT_FALSE(ParseError("100,h,0,Read,4096,+512,0\n").empty());
}

TEST(MsrCsvMalformed, WellFormedLinesStillParseAfterHardening) {
  std::istringstream in(
      "  100 ,h,0, Read , 4096 , 512 ,0\n"  // whitespace tolerated
      "200,h,0,w,8192,1024,0\n");
  const auto recs = ParseMsrCsv(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].offset_bytes, 4096u);
  EXPECT_EQ(recs[0].size_bytes, 512u);
  EXPECT_EQ(recs[1].op, OpType::kWrite);
}

TEST(MsrCsvMalformed, FuzzedMutationsNeverCrashOrWrap) {
  // Deterministic fuzz: mutate a valid line with random byte edits; every
  // outcome must be either a clean parse with sane fields or an
  // invalid_argument naming a line — nothing else escapes.
  const std::string valid = "128166372003061629,web,0,Read,8192,4096,151";
  util::Xoshiro256StarStar rng(0xF00D);
  const std::string charset = "0123456789,-+abcRW .x";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string line = valid;
    const int edits = 1 + static_cast<int>(rng.UniformBelow(4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = rng.UniformBelow(line.size());
      switch (rng.UniformBelow(3)) {
        case 0:  // replace
          line[pos] = charset[rng.UniformBelow(charset.size())];
          break;
        case 1:  // insert
          line.insert(pos, 1, charset[rng.UniformBelow(charset.size())]);
          break;
        default:  // delete
          line.erase(pos, 1);
          break;
      }
    }
    std::istringstream in(line + "\n");
    try {
      const auto recs = ParseMsrCsv(in);
      for (const auto& r : recs) {
        // No wrapped negatives: offset+size must not overflow.
        EXPECT_LE(r.size_bytes,
                  std::numeric_limits<std::uint64_t>::max() - r.offset_bytes)
            << "wrapping record from: " << line;
        EXPECT_GE(r.timestamp_us, 0) << line;
      }
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << "unlabelled error for: " << line;
    }
    // Any other exception type propagates and fails the test.
  }
}

}  // namespace
}  // namespace ctflash::trace
