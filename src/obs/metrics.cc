#include "obs/metrics.h"

#include <algorithm>

namespace ctflash::obs {

void MetricsRegistry::AddCounter(const std::string& name,
                                 std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

util::LatencyStats& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_[name];
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].Merge(hist);
  }
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

campaign::Json MetricsRegistry::ToJson() const {
  campaign::Json out;
  campaign::Json counters;
  for (const auto& [name, value] : counters_) counters[name] = value;
  campaign::Json gauges;
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  campaign::Json histograms;
  for (const auto& [name, hist] : histograms_) {
    campaign::Json h;
    h["count"] = hist.count();
    h["mean_us"] = hist.mean_us();
    h["p50_us"] = hist.p50_us();
    h["p99_us"] = hist.p99_us();
    h["max_us"] = hist.max_us();
    histograms[name] = std::move(h);
  }
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace ctflash::obs
