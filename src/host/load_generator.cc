#include "host/load_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace ctflash::host {

UtilizationProbe::UtilizationProbe(const ftl::FlashTarget& target)
    : target_(target),
      die_busy_0_(target.dies().TotalBusyTime()),
      channel_busy_0_(target.channels().TotalBusyTime()),
      chip_busy_0_(target.chips().TotalBusyTime()) {}

void UtilizationProbe::Finish(LoadStats& stats) const {
  const Us makespan = stats.MakespanUs();
  if (makespan <= 0) return;
  const auto share = [makespan](Us busy, std::size_t members) {
    return static_cast<double>(busy) /
           (static_cast<double>(makespan) * static_cast<double>(members));
  };
  stats.die_utilization =
      share(target_.dies().TotalBusyTime() - die_busy_0_,
            target_.dies().Count());
  stats.channel_utilization =
      share(target_.channels().TotalBusyTime() - channel_busy_0_,
            target_.channels().Count());
  stats.chip_utilization =
      share(target_.chips().TotalBusyTime() - chip_busy_0_,
            target_.chips().Count());
}

void ClosedLoopGenerator::Config::Validate() const {
  if (queue_depth == 0) {
    throw std::invalid_argument("ClosedLoopGenerator: queue_depth must be > 0");
  }
  if (total_requests == 0) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: total_requests must be > 0");
  }
  if (request_bytes == 0) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: request_bytes must be > 0");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: read_fraction must be in [0, 1]");
  }
}

ClosedLoopGenerator::ClosedLoopGenerator(HostInterface& host,
                                         const Config& config)
    : host_(host), config_(config), rng_(config.seed) {
  config_.Validate();
  if (config_.footprint_bytes == 0 ||
      config_.footprint_bytes > host_.ssd().LogicalBytes()) {
    config_.footprint_bytes = host_.ssd().LogicalBytes();
  }
  if (config_.footprint_bytes < config_.request_bytes) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: footprint smaller than one request");
  }
}

void ClosedLoopGenerator::SubmitNext() {
  if (issued_count_ >= config_.total_requests) return;
  issued_count_++;
  const trace::OpType op = rng_.Bernoulli(config_.read_fraction)
                               ? trace::OpType::kRead
                               : trace::OpType::kWrite;
  const std::uint64_t slots =
      config_.footprint_bytes / config_.request_bytes;
  const std::uint64_t offset =
      rng_.UniformBelow(slots) * config_.request_bytes;
  issued_.push_back(
      {host_.queue().Now(), op, offset, config_.request_bytes});
  host_.Submit(op, offset, config_.request_bytes,
               [this](const HostCompletion&) { SubmitNext(); });
}

LoadStats ClosedLoopGenerator::Run() {
  if (host_.Outstanding() != 0) {
    throw std::logic_error("ClosedLoopGenerator: host interface not idle");
  }
  host_.ResetStats();
  issued_count_ = 0;
  issued_.clear();
  LoadStats stats;
  stats.start_us = host_.queue().Now();
  UtilizationProbe probe(host_.ssd().target());

  const std::uint64_t initial =
      std::min<std::uint64_t>(config_.queue_depth, config_.total_requests);
  for (std::uint64_t i = 0; i < initial; ++i) SubmitNext();
  host_.Run();

  stats.end_us = host_.queue().Now();
  stats.requests = host_.stats().completed;
  stats.read_latency = host_.stats().read_latency;
  stats.write_latency = host_.stats().write_latency;
  probe.Finish(stats);
  return stats;
}

void TenantWorkload::Validate() const {
  if (total_requests == 0) {
    throw std::invalid_argument("TenantWorkload: total_requests must be > 0");
  }
  if (request_bytes == 0) {
    throw std::invalid_argument("TenantWorkload: request_bytes must be > 0");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    throw std::invalid_argument(
        "TenantWorkload: read_fraction must be in [0, 1]");
  }
  if (interarrival_us == 0 && queue_depth == 0) {
    throw std::invalid_argument(
        "TenantWorkload: closed loop needs queue_depth > 0");
  }
}

MultiTenantGenerator::MultiTenantGenerator(HostInterface& host,
                                           std::vector<TenantWorkload> workloads)
    : host_(host) {
  if (workloads.empty()) {
    throw std::invalid_argument("MultiTenantGenerator: no workloads");
  }
  if (host_.tenants() == nullptr) {
    throw std::logic_error(
        "MultiTenantGenerator: host interface has no tenants configured");
  }
  const std::uint64_t logical = host_.ssd().LogicalBytes();
  for (auto& workload : workloads) {
    workload.Validate();
    if (workload.tenant >= host_.tenants()->TenantCount()) {
      throw std::out_of_range("MultiTenantGenerator: unknown tenant " +
                              std::to_string(workload.tenant));
    }
    if (workload.footprint_base_bytes >= logical) {
      throw std::invalid_argument(
          "MultiTenantGenerator: working set starts beyond the device");
    }
    const std::uint64_t cap = logical - workload.footprint_base_bytes;
    if (workload.footprint_bytes == 0 || workload.footprint_bytes > cap) {
      workload.footprint_bytes = cap;
    }
    if (workload.footprint_bytes < workload.request_bytes) {
      throw std::invalid_argument(
          "MultiTenantGenerator: working set smaller than one request");
    }
    runs_.push_back(TenantRun{workload,
                              util::Xoshiro256StarStar(workload.seed),
                              0,
                              0,
                              0,
                              0,
                              {},
                              {}});
  }
}

trace::TraceRecord MultiTenantGenerator::NextRecord(TenantRun& run) {
  const TenantWorkload& w = run.workload;
  const trace::OpType op = run.rng.Bernoulli(w.read_fraction)
                               ? trace::OpType::kRead
                               : trace::OpType::kWrite;
  const std::uint64_t slots = w.footprint_bytes / w.request_bytes;
  const std::uint64_t offset =
      w.footprint_base_bytes + run.rng.UniformBelow(slots) * w.request_bytes;
  return {host_.queue().Now(), op, offset, w.request_bytes};
}

void MultiTenantGenerator::OnComplete(std::size_t idx,
                                      const HostCompletion& completion) {
  TenantRun& run = runs_[idx];
  run.completed++;
  if (completion.completion_us > run.last_completion_us) {
    run.last_completion_us = completion.completion_us;
  }
  const Us latency = completion.LatencyUs();
  if (completion.request.op == trace::OpType::kRead) {
    run.read_latency.Add(latency);
  } else {
    run.write_latency.Add(latency);
  }
  if (run.workload.interarrival_us == 0) SubmitNext(idx);
}

void MultiTenantGenerator::SubmitNext(std::size_t idx) {
  TenantRun& run = runs_[idx];
  if (run.issued >= run.workload.total_requests) return;
  run.issued++;
  const trace::TraceRecord record = NextRecord(run);
  host_.SubmitAs(run.workload.tenant, record.op, record.offset_bytes,
                 record.size_bytes, [this, idx](const HostCompletion& c) {
                   OnComplete(idx, c);
                 });
}

std::vector<TenantLoadStats> MultiTenantGenerator::Run() {
  if (host_.Outstanding() != 0) {
    throw std::logic_error("MultiTenantGenerator: host interface not idle");
  }
  host_.ResetStats();
  const Us start = host_.queue().Now();
  for (std::size_t idx = 0; idx < runs_.size(); ++idx) {
    TenantRun& run = runs_[idx];
    run.issued = 0;
    run.completed = 0;
    run.first_submit_us = start;
    run.last_completion_us = start;
    run.read_latency.Reset();
    run.write_latency.Reset();
    const TenantWorkload& w = run.workload;
    if (w.interarrival_us == 0) {
      const std::uint64_t initial =
          std::min<std::uint64_t>(w.queue_depth, w.total_requests);
      for (std::uint64_t i = 0; i < initial; ++i) SubmitNext(idx);
    } else {
      // Paced open loop: every arrival is scheduled up front at its fixed
      // cadence; the record stream is drawn here, in arrival order, so the
      // run stays deterministic.
      for (std::uint64_t i = 0; i < w.total_requests; ++i) {
        const trace::TraceRecord record = NextRecord(run);
        run.issued++;
        host_.SubmitAtAs(start + static_cast<Us>(i) * w.interarrival_us,
                         w.tenant, record.op, record.offset_bytes,
                         record.size_bytes, [this, idx](const HostCompletion& c) {
                           OnComplete(idx, c);
                         });
      }
    }
  }
  host_.Run();

  std::vector<TenantLoadStats> results;
  results.reserve(runs_.size());
  for (const TenantRun& run : runs_) {
    TenantLoadStats out;
    out.tenant = run.workload.tenant;
    out.load.requests = run.completed;
    out.load.start_us = run.first_submit_us;
    out.load.end_us = run.last_completion_us;
    out.load.read_latency = run.read_latency;
    out.load.write_latency = run.write_latency;
    // Utilization is a device-wide quantity and does not decompose per
    // tenant; read it off the host interface / a UtilizationProbe instead.
    results.push_back(std::move(out));
  }
  return results;
}

OpenLoopGenerator::OpenLoopGenerator(HostInterface& host,
                                     std::vector<trace::TraceRecord> records,
                                     double time_scale)
    : host_(host), records_(std::move(records)), time_scale_(time_scale) {
  if (time_scale_ <= 0.0) {
    throw std::invalid_argument("OpenLoopGenerator: time_scale must be > 0");
  }
}

LoadStats OpenLoopGenerator::Run() {
  if (host_.Outstanding() != 0) {
    throw std::logic_error("OpenLoopGenerator: host interface not idle");
  }
  host_.ResetStats();
  LoadStats stats;
  stats.start_us = host_.queue().Now();
  UtilizationProbe probe(host_.ssd().target());

  for (const auto& record : records_) {
    // Clamp hand-built records with negative timestamps to "now" — the
    // event queue (rightly) refuses to schedule in the past.
    const Us at = std::max(
        stats.start_us +
            static_cast<Us>(std::llround(
                static_cast<double>(record.timestamp_us) * time_scale_)),
        host_.queue().Now());
    host_.SubmitAt(at, record.op, record.offset_bytes, record.size_bytes);
  }
  host_.Run();

  stats.end_us = host_.queue().Now();
  stats.requests = host_.stats().completed;
  stats.read_latency = host_.stats().read_latency;
  stats.write_latency = host_.stats().write_latency;
  probe.Finish(stats);
  return stats;
}

}  // namespace ctflash::host
