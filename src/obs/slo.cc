#include "obs/slo.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace ctflash::obs {

void SloConfig::Validate() const {
  if (quantile <= 0.0 || quantile >= 1.0) {
    throw std::runtime_error("slo: quantile must be in (0, 1)");
  }
  if (burn_windows == 0) {
    throw std::runtime_error("slo: burn_windows must be >= 1");
  }
  if (burn_threshold <= 0.0 || burn_threshold > 1.0) {
    throw std::runtime_error("slo: burn_threshold must be in (0, 1]");
  }
}

SloMonitor::SloMonitor(const SloConfig& config) : config_(config) {
  config_.Validate();
}

void SloMonitor::ObserveWindow(const util::QuantileEstimator& window) {
  Judge(window.bins());
}

void SloMonitor::ObserveCumulative(const util::QuantileEstimator& cumulative) {
  const std::vector<std::uint64_t>& bins = cumulative.bins();
  if (prev_bins_.empty()) prev_bins_.assign(bins.size(), 0);
  std::vector<std::uint64_t> delta(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    delta[i] = bins[i] - prev_bins_[i];
  }
  prev_bins_ = bins;
  Judge(delta);
}

void SloMonitor::Judge(const std::vector<std::uint64_t>& window_bins) {
  std::uint64_t count = 0;
  for (const std::uint64_t n : window_bins) count += n;
  last_quantile_us_ =
      count == 0 ? 0.0 : QuantileFromBins(window_bins, config_.quantile);
  quantile_series_.push_back(last_quantile_us_);
  // Low-sample windows never judge: they contribute "no breach" to the
  // burn rate, the conservative reading of an idle window.
  const bool breach = config_.enabled() && count >= config_.min_samples &&
                      last_quantile_us_ >
                          static_cast<double>(config_.target_us);
  breach_log_.push_back(breach);
  if (breach) ++breaches_;
  ++windows_;
}

double SloMonitor::burn_rate() const {
  if (breach_log_.empty()) return 0.0;
  const std::size_t span =
      std::min<std::size_t>(breach_log_.size(), config_.burn_windows);
  std::size_t hits = 0;
  for (std::size_t i = breach_log_.size() - span; i < breach_log_.size();
       ++i) {
    if (breach_log_[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(span);
}

bool SloMonitor::alerting() const {
  return config_.enabled() && windows_ > 0 &&
         burn_rate() >= config_.burn_threshold;
}

campaign::Json SloMonitor::ToJson() const {
  campaign::Json out;
  out["target_us"] = static_cast<std::uint64_t>(config_.target_us);
  out["windows"] = windows_;
  out["breaches"] = breaches_;
  out["burn_rate"] = burn_rate();
  out["alerting"] = alerting();
  out["last_p_us"] = last_quantile_us_;
  return out;
}

}  // namespace ctflash::obs
