// Health/SLO monitor unit tests plus the contracts the cluster's
// observation-driven control loop stands on:
//   * HealthMonitor state transitions are one-way (monotone) under a
//     monotone signal ramp — the property that makes predictive drains
//     stable instead of flapping;
//   * the signal cap lets the EWMA actually cross the failing threshold
//     (an EWMA of values clipped AT 1.0 converges from below forever);
//   * the program-verify signal fires on the FIRST sick window, before
//     any spare-pool burn — the early-warning path the on_observed
//     policy drains on;
//   * QuantileFromBins / MetricsRegistry::HistogramQuantiles agree with
//     util::QuantileEstimator::Quantile EXACTLY (bit-for-bit) on random
//     streams, including windowed bin deltas — the SLO monitor's
//     windowing depends on that identity;
//   * the scheduler observer seam: every attached observer sees the
//     identical DispatchContext stream, and detaching while transactions
//     are in flight stops events cleanly without disturbing the run.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "sched/observer.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"
#include "util/stats.h"

namespace ctflash::obs {
namespace {

// --- HealthMonitor ---------------------------------------------------------

HealthSample BaseSample() {
  HealthSample s;
  s.free_blocks = 64;
  s.retired_blocks = 0;
  s.total_blocks = 1024;
  s.gc_floor_blocks = 8;
  s.total_erases = 0;
  s.endurance_pe_cycles = 3000;
  return s;
}

TEST(HealthMonitor, FreshMonitorIsHealthy) {
  HealthMonitor mon;
  EXPECT_EQ(mon.windows(), 0u);
  EXPECT_DOUBLE_EQ(mon.score(), 0.0);
  EXPECT_EQ(mon.state(), HealthState::kHealthy);
  const std::string dump = mon.ToJson().Dump();
  EXPECT_NE(dump.find("\"state\""), std::string::npos);
  EXPECT_NE(dump.find("healthy"), std::string::npos);
  EXPECT_NE(dump.find("\"program\""), std::string::npos);
}

TEST(HealthMonitor, AgedBaselineDoesNotStartSick) {
  // A device restored from an aged snapshot arrives with retirement and
  // error history on the clock.  Baseline-relative signals (spare) and
  // rate signals (media) measure against the FIRST sample, so the monitor
  // must still read healthy.  Wear is the exception by design: it is an
  // absolute odometer (mean P/E vs endurance) — an aged device IS further
  // through its life — so moderate absolute wear scores, mildly.
  HealthSample s = BaseSample();
  s.retired_blocks = 40;
  s.total_erases = 500'000;  // mean P/E ~488 of 3000: real but mild wear
  s.sampled_reads = 1'000'000;
  s.retried_reads = 900'000;

  HealthMonitor mon;
  mon.Observe(s);
  EXPECT_EQ(mon.state(), HealthState::kHealthy)
      << "baseline counters must not score as damage";
  EXPECT_DOUBLE_EQ(mon.signals().spare, 0.0);
  EXPECT_DOUBLE_EQ(mon.signals().media, 0.0);
  EXPECT_GT(mon.signals().wear, 0.0) << "the odometer still reads";
  EXPECT_LT(mon.signals().wear, 1.0);
}

TEST(HealthMonitor, StateTransitionsAreMonotoneUnderARamp) {
  HealthConfig hc;
  hc.ewma_alpha = 0.5;
  hc.spare_fail_frac = 0.5;
  HealthMonitor mon(hc);

  // Monotone spare-pool burn: retire blocks a few at a time until the
  // budget is gone.  Budget = baseline free (64) - floor (8) = 56; the
  // spare signal hits 1.0 at 28 retired (spare_fail_frac 0.5) and keeps
  // climbing to the cap past that.
  std::vector<HealthState> states;
  HealthSample s = BaseSample();
  for (std::uint64_t retired = 0; retired <= 112; retired += 8) {
    s.retired_blocks = retired;
    s.free_blocks = 64 > retired ? 64 - retired : 0;
    mon.Observe(s);
    states.push_back(mon.state());
  }

  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_GE(static_cast<int>(states[i]), static_cast<int>(states[i - 1]))
        << "health state regressed at window " << i
        << " under a monotone ramp";
  }
  EXPECT_EQ(states.front(), HealthState::kHealthy);
  EXPECT_EQ(states.back(), HealthState::kFailing);
  // The smoothed score trail is itself monotone for a monotone raw series.
  const std::vector<double>& series = mon.score_series();
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i], series[i - 1]);
  }
}

TEST(HealthMonitor, SignalOvershootLetsTheEwmaCrossFailing) {
  // A signal exactly AT its threshold scores 1.0 raw; the EWMA of 1.0s
  // converges to 1 from below and never crosses.  Overshoot (capped at 4)
  // is what makes kFailing reachable — lock that in.
  HealthConfig hc;
  hc.ewma_alpha = 0.4;
  hc.program_fail_rate = 0.05;
  HealthMonitor mon(hc);

  HealthSample s = BaseSample();
  mon.Observe(s);  // healthy baseline window
  for (int w = 0; w < 4; ++w) {
    s.program_pages += 1000;
    s.program_failures += 400;  // 8x the failing rate -> capped at 4.0
    mon.Observe(s);
  }
  EXPECT_DOUBLE_EQ(mon.signals().program, 4.0) << "cap should bound at 4";
  EXPECT_GT(mon.score(), 1.0);
  EXPECT_EQ(mon.state(), HealthState::kFailing);
}

TEST(HealthMonitor, ProgramSignalFiresBeforeSpareBurn) {
  // The wear ramp's first symptom: verify-fails on host writes, epochs
  // before any flagged block reaches a GC erase.  With zero retirement
  // the program signal alone must carry the score.
  HealthConfig hc;
  hc.program_fail_rate = 0.025;
  HealthMonitor mon(hc);

  HealthSample s = BaseSample();
  mon.Observe(s);
  s.program_pages += 10'000;
  s.program_failures += 500;  // window rate 0.05 = 2x threshold
  mon.Observe(s);
  EXPECT_DOUBLE_EQ(mon.signals().program, 2.0);
  EXPECT_DOUBLE_EQ(mon.signals().spare, 0.0);
  EXPECT_GT(mon.score(), hc.degraded_frac);
}

TEST(HealthMonitor, UnrecoveredReadPinsMediaAtTheCap) {
  HealthMonitor mon;
  HealthSample s = BaseSample();
  mon.Observe(s);
  s.sampled_reads += 1000;
  s.unrecovered_reads += 1;  // data loss: instant fail, pinned at the cap
  mon.Observe(s);
  EXPECT_DOUBLE_EQ(mon.signals().media, 4.0);
}

TEST(HealthMonitor, FreePoolBelowFloorIsBudgetSpent) {
  HealthConfig hc;
  hc.spare_fail_frac = 0.5;
  HealthMonitor mon(hc);
  HealthSample s = BaseSample();
  mon.Observe(s);
  // However it got there, free < floor means the spendable budget is gone.
  s.free_blocks = s.gc_floor_blocks - 1;
  mon.Observe(s);
  EXPECT_DOUBLE_EQ(mon.signals().spare, 2.0);  // 1.0 used / 0.5 frac
}

TEST(HealthMonitor, ValidateRejectsBadConfig) {
  HealthConfig hc;
  hc.ewma_alpha = 0.0;
  EXPECT_THROW(HealthMonitor{hc}, std::runtime_error);
  hc = HealthConfig{};
  hc.degraded_frac = 1.0;
  EXPECT_THROW(HealthMonitor{hc}, std::runtime_error);
  hc = HealthConfig{};
  hc.program_fail_rate = 1.5;
  EXPECT_THROW(HealthMonitor{hc}, std::runtime_error);
}

// --- SloMonitor ------------------------------------------------------------

util::QuantileEstimator WindowOf(const std::vector<std::uint64_t>& vals) {
  util::QuantileEstimator q;
  for (const std::uint64_t v : vals) q.Add(v);
  return q;
}

TEST(SloMonitor, BelowTargetNeverBreaches) {
  SloConfig sc;
  sc.target_us = 1000;
  sc.min_samples = 4;
  SloMonitor mon(sc);
  for (int w = 0; w < 6; ++w) {
    mon.ObserveWindow(WindowOf({100, 200, 300, 400, 500}));
  }
  EXPECT_EQ(mon.windows(), 6u);
  EXPECT_EQ(mon.breaches(), 0u);
  EXPECT_FALSE(mon.alerting());
}

TEST(SloMonitor, LowSampleWindowsNeverJudge) {
  SloConfig sc;
  sc.target_us = 10;
  sc.min_samples = 16;
  SloMonitor mon(sc);
  // Two requests at 100x the target: a two-request window has no p99.
  mon.ObserveWindow(WindowOf({1000, 1000}));
  EXPECT_EQ(mon.breaches(), 0u);
  EXPECT_FALSE(mon.last_window_breached());
}

TEST(SloMonitor, OneNoisyWindowDoesNotPageASustainedBurnDoes) {
  SloConfig sc;
  sc.target_us = 500;
  sc.min_samples = 4;
  sc.burn_windows = 4;
  sc.burn_threshold = 0.5;
  SloMonitor mon(sc);

  const auto good = std::vector<std::uint64_t>{100, 120, 140, 160, 180};
  const auto bad = std::vector<std::uint64_t>{2000, 2100, 2200, 2300, 2400};

  for (int w = 0; w < 3; ++w) mon.ObserveWindow(WindowOf(good));
  mon.ObserveWindow(WindowOf(bad));  // one noisy window: 1/4 < 0.5
  EXPECT_TRUE(mon.last_window_breached());
  EXPECT_FALSE(mon.alerting()) << "a single bad window must not page";

  mon.ObserveWindow(WindowOf(bad));  // sustained: 2/4 >= 0.5 trips it
  EXPECT_TRUE(mon.alerting());
  EXPECT_DOUBLE_EQ(mon.burn_rate(), 0.5);

  const std::string dump = mon.ToJson().Dump();
  EXPECT_NE(dump.find("\"alerting\":true"), std::string::npos);
}

TEST(SloMonitor, DisabledTargetJudgesNothing) {
  SloMonitor mon;  // target_us = 0: off
  mon.ObserveWindow(WindowOf({1000000, 2000000, 3000000, 4000000}));
  EXPECT_EQ(mon.breaches(), 0u);
  EXPECT_FALSE(mon.alerting());
}

TEST(SloMonitor, CumulativeWindowingMatchesPerWindowFeeds) {
  // Feeding the stream's cumulative estimator must be indistinguishable
  // from feeding each window's own histogram: same quantiles, same
  // breach log, window by window.
  SloConfig sc;
  sc.target_us = 700;
  sc.min_samples = 2;
  SloMonitor windowed(sc);
  SloMonitor cumulative(sc);

  util::QuantileEstimator running;
  std::uint64_t x = 12345;
  for (int w = 0; w < 8; ++w) {
    util::QuantileEstimator window;
    for (int i = 0; i < 200; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t v = (x >> 33) % (w < 4 ? 600 : 3000);
      window.Add(v);
      running.Add(v);
    }
    windowed.ObserveWindow(window);
    cumulative.ObserveCumulative(running);
    ASSERT_DOUBLE_EQ(cumulative.last_quantile_us(),
                     windowed.last_quantile_us())
        << "windowed-delta quantile diverged at window " << w;
    ASSERT_EQ(cumulative.last_window_breached(),
              windowed.last_window_breached());
  }
  EXPECT_EQ(cumulative.breaches(), windowed.breaches());
  EXPECT_GT(cumulative.breaches(), 0u);
  EXPECT_DOUBLE_EQ(cumulative.burn_rate(), windowed.burn_rate());
}

// --- Quantile extraction: exact agreement with the estimator ---------------

TEST(ObsQuantiles, QuantileFromBinsMatchesEstimatorExactly) {
  // Property: for ANY stream and ANY q, quantiling the estimator's raw
  // bins reproduces QuantileEstimator::Quantile bit-for-bit.  Random
  // streams spanning many octaves, deterministic LCG seed.
  std::uint64_t x = 9876543210123ull;
  for (int round = 0; round < 5; ++round) {
    util::QuantileEstimator est;
    const int n = 100 + round * 777;
    for (int i = 0; i < n; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      // Log-uniform-ish spread: shift by a pseudo-random octave so the
      // stream crosses sub-bin boundaries in every range.
      est.Add((x >> 40) << (x % 24));
    }
    for (const double q :
         {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      ASSERT_DOUBLE_EQ(QuantileFromBins(est.bins(), q), est.Quantile(q))
          << "round " << round << " q " << q;
    }
  }
  EXPECT_THROW(QuantileFromBins({1, 2, 3}, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(QuantileFromBins({}, 0.5), 0.0);
}

TEST(ObsQuantiles, HistogramQuantilesMatchesEstimatorExactly) {
  MetricsRegistry reg;
  util::QuantileEstimator shadow;
  std::uint64_t x = 55555;
  for (int i = 0; i < 4000; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;
    const std::uint64_t v = (x >> 35) % 1'000'000;
    reg.Histogram("host.read.latency").Add(v);
    shadow.Add(v);
  }
  const BinQuantiles bq = reg.HistogramQuantiles("host.read.latency");
  EXPECT_EQ(bq.count, shadow.count());
  EXPECT_DOUBLE_EQ(bq.p50_us, shadow.Quantile(0.50));
  EXPECT_DOUBLE_EQ(bq.p99_us, shadow.Quantile(0.99));
  EXPECT_DOUBLE_EQ(bq.p999_us, shadow.Quantile(0.999));

  const BinQuantiles missing = reg.HistogramQuantiles("no.such.histogram");
  EXPECT_EQ(missing.count, 0u);
  EXPECT_DOUBLE_EQ(missing.p99_us, 0.0);
}

TEST(ObsQuantiles, WindowedBinDeltaMatchesAFreshEstimator) {
  // The SLO monitor windows a cumulative stream by bin subtraction; the
  // delta's quantiles must equal those of an estimator fed ONLY the
  // window's samples.
  util::QuantileEstimator cumulative;
  std::uint64_t x = 424242;
  for (int i = 0; i < 1000; ++i) {  // epoch 1
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    cumulative.Add((x >> 33) % 5000);
  }
  const std::vector<std::uint64_t> snap = cumulative.bins();
  util::QuantileEstimator window_only;
  for (int i = 0; i < 1500; ++i) {  // epoch 2
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t v = (x >> 33) % 90000;
    cumulative.Add(v);
    window_only.Add(v);
  }
  std::vector<std::uint64_t> delta = cumulative.bins();
  for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= snap[i];
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(QuantileFromBins(delta, q), window_only.Quantile(q));
  }
}

// --- Scheduler observer seam ----------------------------------------------

/// Records every event with enough context to compare streams.
class RecordingObserver : public sched::SchedulerObserver {
 public:
  struct Dispatch {
    std::uint64_t request_id;
    std::uint64_t seq;
    Us dispatch_us;
    Us enqueue_us;
    std::uint32_t die;
    Us die_free_at;
    bool write_held;

    bool operator==(const Dispatch&) const = default;
  };

  void OnDispatch(const sched::FlashTransaction& txn,
                  const sched::DispatchContext& c) override {
    dispatches.push_back({txn.request_id, txn.seq, c.dispatch_us,
                          c.enqueue_us, c.die, c.die_free_at, c.write_held});
  }
  void OnTxnExecuted(const sched::FlashTransaction&, Us, Us) override {
    ++executed;
  }

  std::vector<Dispatch> dispatches;
  std::uint64_t executed = 0;
};

ssd::SsdConfig SmallQueuedConfig() {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 64ull << 20,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  return cfg;
}

TEST(SchedulerObserver, EveryObserverSeesIdenticalDispatchContexts) {
  ssd::Ssd ssd(SmallQueuedConfig());
  ssd::ExperimentRunner runner(ssd);
  const Us prefill_end = runner.Prefill(ssd.LogicalBytes() / 2);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  RecordingObserver a;
  RecordingObserver b;
  host.scheduler().AttachObserver(&a);
  host.scheduler().AttachObserver(&b);

  host::ClosedLoopGenerator::Config gen;
  gen.queue_depth = 8;
  gen.total_requests = 2000;
  gen.read_fraction = 0.5;
  gen.footprint_bytes = ssd.LogicalBytes() / 2;
  gen.seed = 11;
  host::ClosedLoopGenerator(host, gen).Run();

  ASSERT_FALSE(a.dispatches.empty());
  EXPECT_EQ(a.dispatches, b.dispatches)
      << "all observers must see one dispatch stream with one context";
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_GT(a.executed, 0u);
}

TEST(SchedulerObserver, DetachWhileTxnsInFlightStopsEventsCleanly) {
  ssd::Ssd ssd(SmallQueuedConfig());
  ssd::ExperimentRunner runner(ssd);
  const Us prefill_end = runner.Prefill(ssd.LogicalBytes() / 2);
  host::HostInterface host(ssd, host::HostConfig{});
  host.AdvanceTo(prefill_end);

  RecordingObserver transient;
  RecordingObserver persistent;
  host.scheduler().AttachObserver(&transient);
  host.scheduler().AttachObserver(&persistent);

  // Fill the device queue, then advance only partway so transactions are
  // genuinely in flight (dispatched, not yet executed) at detach time.
  for (int i = 0; i < 64; ++i) {
    host.Submit(trace::OpType::kRead, (i * 16384ull) % ssd.LogicalBytes(),
                16384);
  }
  host.AdvanceTo(prefill_end + 50);
  ASSERT_GT(host.scheduler().InFlight(), 0u)
      << "test needs in-flight transactions at the detach point";
  ASSERT_GT(transient.dispatches.size(), 0u);
  const std::size_t dispatched_at_detach = transient.dispatches.size();
  const std::uint64_t executed_at_detach = transient.executed;
  host.scheduler().DetachObserver(&transient);

  host.AdvanceTo(prefill_end + 10'000'000);
  EXPECT_EQ(host.scheduler().InFlight(), 0u);

  // The detached observer is frozen — no dispatches, and crucially no
  // executions for transactions that were in flight when it left.
  EXPECT_EQ(transient.dispatches.size(), dispatched_at_detach);
  EXPECT_EQ(transient.executed, executed_at_detach);
  // The surviving observer kept receiving everything.
  EXPECT_EQ(persistent.dispatches.size(), 64u);
  EXPECT_EQ(persistent.executed, 64u);

  // Re-attach after the fact: the stream resumes for new work.
  host.scheduler().AttachObserver(&transient);
  host.Submit(trace::OpType::kRead, 0, 16384);
  host.AdvanceTo(prefill_end + 20'000'000);
  EXPECT_EQ(transient.dispatches.size(), dispatched_at_detach + 1);
}

}  // namespace
}  // namespace ctflash::obs
