#include "nand/fault_plan.h"

#include <stdexcept>
#include <string>

namespace ctflash::nand {

void FaultPlanConfig::Validate() const {
  if (program_fail_prob < 0.0 || program_fail_prob >= 1.0) {
    throw std::invalid_argument(
        "FaultPlanConfig: program_fail_prob must be in [0,1)");
  }
  if (erase_fail_prob < 0.0 || erase_fail_prob >= 1.0) {
    throw std::invalid_argument(
        "FaultPlanConfig: erase_fail_prob must be in [0,1)");
  }
  if (read_disturb_per_read < 0.0) {
    throw std::invalid_argument(
        "FaultPlanConfig: read_disturb_per_read must be >= 0");
  }
  if (retention_rber_multiplier < 1.0) {
    throw std::invalid_argument(
        "FaultPlanConfig: retention_rber_multiplier must be >= 1");
  }
}

FaultInjector::FaultInjector(const NandGeometry& geometry,
                             const FaultPlanConfig& config, std::uint64_t seed)
    : geometry_(geometry),
      config_(config),
      rng_(seed),
      reads_since_erase_(geometry.TotalBlocks(), 0),
      die_lost_(geometry.TotalDies(), false) {
  geometry_.Validate();
  config_.Validate();
  for (const std::uint64_t die : config_.fail_dies) {
    if (die >= geometry_.TotalDies()) {
      throw std::invalid_argument("FaultPlanConfig: fail_dies entry " +
                                  std::to_string(die) + " out of range");
    }
    die_lost_[die] = true;
  }
  const std::uint32_t dies_per_channel =
      geometry_.chips_per_channel * geometry_.dies_per_chip;
  for (const std::uint32_t ch : config_.fail_channels) {
    if (ch >= geometry_.channels) {
      throw std::invalid_argument("FaultPlanConfig: fail_channels entry " +
                                  std::to_string(ch) + " out of range");
    }
    for (std::uint32_t d = 0; d < dies_per_channel; ++d) {
      die_lost_[static_cast<std::uint64_t>(ch) * dies_per_channel + d] = true;
    }
  }
}

bool FaultInjector::Unreachable(BlockId block, Us now) const {
  if (now < config_.fail_at_us) return false;
  return die_lost_[geometry_.DieOfBlock(block)];
}

double FaultInjector::RberScale(BlockId block) const {
  return config_.retention_rber_multiplier *
         (1.0 + config_.read_disturb_per_read *
                    static_cast<double>(reads_since_erase_[block]));
}

void FaultInjector::OnRead(BlockId block) {
  if (config_.read_disturb_per_read > 0.0) reads_since_erase_[block]++;
}

void FaultInjector::OnErase(BlockId block) { reads_since_erase_[block] = 0; }

void FaultInjector::SaveState(util::StateWriter& w) const {
  w.Tag("FLTI");
  w.PutDouble(config_.program_fail_prob);
  w.PutDouble(config_.erase_fail_prob);
  w.PutDouble(config_.read_disturb_per_read);
  w.PutDouble(config_.retention_rber_multiplier);
  w.PutU64Seq(config_.fail_dies);
  w.PutU64Seq(config_.fail_channels);
  w.PutI64(config_.fail_at_us);
  rng_.SaveState(w);
  w.PutU64Seq(reads_since_erase_);
}

void FaultInjector::LoadState(util::StateReader& r) {
  r.ExpectTag("FLTI");
  FaultPlanConfig cfg;
  cfg.program_fail_prob = r.GetDouble();
  cfg.erase_fail_prob = r.GetDouble();
  cfg.read_disturb_per_read = r.GetDouble();
  cfg.retention_rber_multiplier = r.GetDouble();
  cfg.fail_dies = r.GetU64Seq();
  cfg.fail_channels.clear();
  for (const std::uint64_t ch : r.GetU64Seq()) {
    cfg.fail_channels.push_back(static_cast<std::uint32_t>(ch));
  }
  cfg.fail_at_us = r.GetI64();
  // Rebuild through the constructor so die_lost_ and validation track the
  // serialized config, then overwrite the stochastic state.
  *this = FaultInjector(geometry_, cfg, /*seed=*/0);
  rng_.LoadState(r);
  const std::vector<std::uint64_t> reads = r.GetU64Seq();
  if (reads.size() != reads_since_erase_.size()) {
    throw std::runtime_error("snapshot: fault injector block count mismatch");
  }
  reads_since_erase_ = reads;
}

}  // namespace ctflash::nand
