// Figure 14 — Web Server Trace: Read Latency Comparison.
//
// Cumulative read latency of conventional FTL vs FTL+PPB across speed
// differences 2x-5x on the web/SQL trace (the paper's strongest case).
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Figure 14: Web Server Trace - Read Latency", "Figure 14",
                     options);

  util::TablePrinter table({"Speed Difference", "Conventional FTL (s)",
                            "FTL with PPB (s)", "Enhancement"});
  for (const double ratio : {2.0, 3.0, 4.0, 5.0}) {
    const auto cmp = bench::RunComparison(bench::Workload::kWebServer,
                                          16 * 1024, ratio, options);
    table.AddRow({util::TablePrinter::FormatDouble(ratio, 0) + "x",
                  util::TablePrinter::FormatScientific(
                      cmp.conventional.TotalReadSeconds()),
                  util::TablePrinter::FormatScientific(
                      cmp.ppb.TotalReadSeconds()),
                  util::TablePrinter::FormatPercent(cmp.ReadEnhancement())});
  }
  table.Print();
  std::cout << "\nPaper shape: PPB < conventional for every ratio (paper:\n"
               "~10% average across 2x-5x); gap widens with the ratio.\n";
  return 0;
}
