// The paper's four-level data hotness taxonomy (Section 3.2).
//
//   iron-hot : frequently read AND updated (file-system metadata) -> fast
//              pages of hot blocks;
//   hot      : frequently updated, rarely read (temp/cache files)  -> slow
//              pages of hot blocks;
//   cold     : write-once-read-many (videos, pictures)             -> fast
//              pages of cold blocks;
//   icy-cold : write-once-read-few (backups)                       -> slow
//              pages of cold blocks.
//
// Hot vs cold is decided by a pluggable first-stage classifier (size check
// by default); the second level (iron-hot vs hot, cold vs icy-cold) is
// decided by re-access frequency inside the hot/cold areas.
#pragma once

#include <cstdint>

namespace ctflash::core {

enum class HotnessLevel : std::uint8_t {
  kIronHot = 0,
  kHot = 1,
  kCold = 2,
  kIcyCold = 3,
};

/// Which of the two data areas a level belongs to.
enum class Area : std::uint8_t { kNone = 0, kHot = 1, kCold = 2 };

constexpr Area AreaOf(HotnessLevel level) {
  return (level == HotnessLevel::kIronHot || level == HotnessLevel::kHot)
             ? Area::kHot
             : Area::kCold;
}

/// True when the level is served by the fast (bottom-layer) virtual block of
/// its area: iron-hot data and cold (write-once-read-MANY) data.
constexpr bool WantsFastPages(HotnessLevel level) {
  return level == HotnessLevel::kIronHot || level == HotnessLevel::kCold;
}

constexpr const char* HotnessName(HotnessLevel level) {
  switch (level) {
    case HotnessLevel::kIronHot:
      return "iron-hot";
    case HotnessLevel::kHot:
      return "hot";
    case HotnessLevel::kCold:
      return "cold";
    case HotnessLevel::kIcyCold:
      return "icy-cold";
  }
  return "?";
}

constexpr const char* AreaName(Area area) {
  switch (area) {
    case Area::kNone:
      return "none";
    case Area::kHot:
      return "hot";
    case Area::kCold:
      return "cold";
  }
  return "?";
}

}  // namespace ctflash::core
