#include "ftl/mapping_table.h"

#include <stdexcept>
#include <string>

namespace ctflash::ftl {

MappingTable::MappingTable(std::uint64_t logical_pages,
                           std::uint64_t physical_pages)
    : forward_(logical_pages, kInvalidPpn), reverse_(physical_pages, kInvalidLpn) {
  if (logical_pages == 0 || physical_pages == 0) {
    throw std::invalid_argument("MappingTable: zero-sized table");
  }
  if (logical_pages > physical_pages) {
    throw std::invalid_argument(
        "MappingTable: logical space exceeds physical space");
  }
}

Ppn MappingTable::Lookup(Lpn lpn) const {
  if (lpn >= forward_.size()) throw std::out_of_range("MappingTable::Lookup");
  return forward_[lpn];
}

Lpn MappingTable::LpnOf(Ppn ppn) const {
  if (ppn >= reverse_.size()) throw std::out_of_range("MappingTable::LpnOf");
  return reverse_[ppn];
}

Ppn MappingTable::Update(Lpn lpn, Ppn ppn) {
  if (lpn >= forward_.size()) throw std::out_of_range("MappingTable::Update lpn");
  if (ppn >= reverse_.size()) throw std::out_of_range("MappingTable::Update ppn");
  if (reverse_[ppn] != kInvalidLpn) {
    throw std::logic_error("MappingTable::Update: ppn already owned");
  }
  const Ppn old = forward_[lpn];
  if (old != kInvalidPpn) {
    reverse_[old] = kInvalidLpn;
  } else {
    ++mapped_;
  }
  forward_[lpn] = ppn;
  reverse_[ppn] = lpn;
  return old;
}

Ppn MappingTable::Unmap(Lpn lpn) {
  if (lpn >= forward_.size()) throw std::out_of_range("MappingTable::Unmap");
  const Ppn old = forward_[lpn];
  if (old != kInvalidPpn) {
    reverse_[old] = kInvalidLpn;
    forward_[lpn] = kInvalidPpn;
    --mapped_;
  }
  return old;
}

void MappingTable::ReleasePpn(Ppn ppn) {
  if (ppn >= reverse_.size()) throw std::out_of_range("MappingTable::ReleasePpn");
  reverse_[ppn] = kInvalidLpn;
}

bool MappingTable::CheckConsistent() const {
  std::uint64_t mapped = 0;
  for (Lpn lpn = 0; lpn < forward_.size(); ++lpn) {
    const Ppn ppn = forward_[lpn];
    if (ppn == kInvalidPpn) continue;
    ++mapped;
    if (ppn >= reverse_.size()) return false;
    if (reverse_[ppn] != lpn) return false;
  }
  if (mapped != mapped_) return false;
  for (Ppn ppn = 0; ppn < reverse_.size(); ++ppn) {
    const Lpn lpn = reverse_[ppn];
    if (lpn == kInvalidLpn) continue;
    if (lpn >= forward_.size()) return false;
    if (forward_[lpn] != ppn) return false;
  }
  return true;
}


void MappingTable::SaveState(util::StateWriter& w) const {
  w.Tag("MAPT");
  w.PutU64Seq(forward_);
  w.PutU64Seq(reverse_);
  w.PutU64(mapped_);
}

void MappingTable::LoadState(util::StateReader& r) {
  r.ExpectTag("MAPT");
  const std::vector<std::uint64_t> fwd = r.GetU64Seq();
  const std::vector<std::uint64_t> rev = r.GetU64Seq();
  if (fwd.size() != forward_.size() || rev.size() != reverse_.size()) {
    throw std::runtime_error("snapshot: mapping table size mismatch (have " +
                             std::to_string(forward_.size()) + "/" +
                             std::to_string(reverse_.size()) + ", state " +
                             std::to_string(fwd.size()) + "/" +
                             std::to_string(rev.size()) + ")");
  }
  forward_.assign(fwd.begin(), fwd.end());
  reverse_.assign(rev.begin(), rev.end());
  mapped_ = r.GetU64();
}

}  // namespace ctflash::ftl
