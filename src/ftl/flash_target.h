// FlashTarget: the NAND array plus its timing fabric.
//
// Combines the behavioural NandDevice (state + constraint checks) with
// channel/chip occupancy timelines so every operation yields a completion
// time.  Operation pipelines:
//   read    : cell sense on the chip, then data-out transfer on the channel;
//   program : data-in transfer on the channel, then cell program on the chip;
//   erase   : chip-only.
// All FTL variants issue their NAND traffic through this class, so baseline
// and PPB see identical timing rules.
//
// Two timing modes are supported:
//  * kServiceTime (default): per-operation latency is the pure service time
//    (cell op + bus transfer) independent of other in-flight requests.  This
//    matches the paper's additive trace-driven accounting, where cumulative
//    latency is the sum of per-request device times.
//  * kQueued: operations additionally queue on the die and channel
//    occupancy timelines, exposing contention (the host interface and
//    queueing studies run in this mode).  The die is the unit of cell-op
//    exclusivity — two dies on one chip interleave freely, which is what
//    lets the host scheduler extract intra-chip parallelism; the chip
//    timelines are kept as pure busy-time accounting in both modes.
#pragma once

#include <cstdint>
#include <memory>

#include "nand/device.h"
#include "nand/error_model.h"
#include "sim/resource.h"
#include "util/random.h"
#include "util/types.h"

namespace ctflash::ftl {

enum class TimingMode { kServiceTime = 0, kQueued = 1 };

/// Aggregate reliability counters (populated when an error model is armed).
struct ReadErrorStats {
  std::uint64_t sampled_reads = 0;
  std::uint64_t total_bit_errors = 0;
  std::uint64_t uncorrectable_reads = 0;

  double MeanBitErrorsPerRead() const {
    return sampled_reads == 0
               ? 0.0
               : static_cast<double>(total_bit_errors) /
                     static_cast<double>(sampled_reads);
  }
};

class FlashTarget {
 public:
  FlashTarget(const nand::NandGeometry& geometry, const nand::NandTiming& timing,
              std::uint32_t endurance_pe_cycles = 1'000'000,
              TimingMode mode = TimingMode::kServiceTime);

  /// Reads a programmed page; returns the completion time of the data-out
  /// transfer.  `transfer_bytes` is how much of the page crosses the bus
  /// (sub-page host reads move only the requested bytes); 0 means the whole
  /// page.  Aborts on NAND protocol violations (FTL bugs).
  Us ReadPage(Ppn ppn, Us earliest, std::uint64_t transfer_bytes = 0);

  /// Programs the next page of a block (ppn must respect sequential order);
  /// returns cell-program completion time.
  Us ProgramPage(Ppn ppn, Us earliest);

  /// Erases a block; returns completion time.
  Us EraseBlock(BlockId block, Us earliest);

  /// Internal GC copy (read then program, no host transfer across the bus is
  /// saved because planes lack copy-back here): returns program completion.
  Us CopyPage(Ppn from, Ppn to, Us earliest);

  nand::NandDevice& nand() { return nand_; }
  const nand::NandDevice& nand() const { return nand_; }
  const nand::NandGeometry& geometry() const { return nand_.geometry(); }
  const nand::LatencyModel& latency_model() const {
    return nand_.latency_model();
  }

  const sim::ResourcePool& chips() const { return chips_; }
  const sim::ResourcePool& channels() const { return channels_; }
  const sim::ResourcePool& dies() const { return dies_; }
  /// First time the die serving `block` can start a new cell operation.
  /// The host scheduler uses this for conflict-aware dispatch ordering.
  Us DieFreeAt(BlockId block) const;
  TimingMode mode() const { return mode_; }

  /// Arms the synthetic layer error model: every subsequent page read
  /// samples bit errors at the page's layer/wear and checks the ECC budget.
  /// Uncorrectable reads are counted, not failed — the FTL study is about
  /// performance; reliability consumers inspect read_error_stats().
  void ArmErrorModel(const nand::ErrorModelConfig& config,
                     std::uint64_t seed = 0x5EED);

  bool ErrorModelArmed() const { return error_model_ != nullptr; }
  const ReadErrorStats& read_error_stats() const { return error_stats_; }

  /// Serializes the NAND array, occupancy timelines, error RNG stream and
  /// error counters.  Construction-derived values (transfer time, mode,
  /// error-model config) are not serialized; LoadState assumes a target
  /// built from the same configuration.
  void SaveState(util::StateWriter& w) const {
    w.Tag("FTGT");
    nand_.SaveState(w);
    chips_.SaveState(w);
    channels_.SaveState(w);
    dies_.SaveState(w);
    error_rng_.SaveState(w);
    w.PutU64(error_stats_.sampled_reads);
    w.PutU64(error_stats_.total_bit_errors);
    w.PutU64(error_stats_.uncorrectable_reads);
  }
  void LoadState(util::StateReader& r) {
    r.ExpectTag("FTGT");
    nand_.LoadState(r);
    chips_.LoadState(r);
    channels_.LoadState(r);
    dies_.LoadState(r);
    error_rng_.LoadState(r);
    error_stats_.sampled_reads = r.GetU64();
    error_stats_.total_bit_errors = r.GetU64();
    error_stats_.uncorrectable_reads = r.GetU64();
  }

 private:
  nand::NandDevice nand_;
  sim::ResourcePool chips_;
  sim::ResourcePool channels_;
  sim::ResourcePool dies_;
  Us page_transfer_us_;
  TimingMode mode_;
  std::unique_ptr<nand::LayerErrorModel> error_model_;
  util::Xoshiro256StarStar error_rng_;
  ReadErrorStats error_stats_;
};

}  // namespace ctflash::ftl
