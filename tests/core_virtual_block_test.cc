#include "core/virtual_block.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/random.h"

namespace ctflash::core {
namespace {

constexpr std::uint32_t kPages = 16;  // 2 slices of 8 for split = 2

struct Fixture {
  explicit Fixture(std::uint64_t blocks = 8, std::uint32_t split = 2,
                   std::uint32_t max_fast = 4)
      : bm(blocks, kPages), vbm(bm, kPages, split, max_fast) {}
  ftl::BlockManager bm;
  VirtualBlockManager vbm;
};

TEST(HotnessHelpers, AreaAndSpeedMapping) {
  EXPECT_EQ(AreaOf(HotnessLevel::kIronHot), Area::kHot);
  EXPECT_EQ(AreaOf(HotnessLevel::kHot), Area::kHot);
  EXPECT_EQ(AreaOf(HotnessLevel::kCold), Area::kCold);
  EXPECT_EQ(AreaOf(HotnessLevel::kIcyCold), Area::kCold);
  EXPECT_TRUE(WantsFastPages(HotnessLevel::kIronHot));
  EXPECT_FALSE(WantsFastPages(HotnessLevel::kHot));
  EXPECT_TRUE(WantsFastPages(HotnessLevel::kCold));
  EXPECT_FALSE(WantsFastPages(HotnessLevel::kIcyCold));
  EXPECT_STREQ(HotnessName(HotnessLevel::kIcyCold), "icy-cold");
  EXPECT_STREQ(AreaName(Area::kHot), "hot");
}

TEST(VirtualBlockManager, ConstructionValidation) {
  ftl::BlockManager bm(4, kPages);
  EXPECT_THROW(VirtualBlockManager(bm, kPages, 3), std::invalid_argument);
  EXPECT_THROW(VirtualBlockManager(bm, kPages, 0), std::invalid_argument);
  EXPECT_THROW(VirtualBlockManager(bm, kPages, 6), std::invalid_argument);
  EXPECT_THROW(VirtualBlockManager(bm, 8, 2), std::invalid_argument);  // geo mismatch
}

TEST(VirtualBlockManager, SliceClassMath) {
  Fixture f;
  EXPECT_EQ(f.vbm.pages_per_slice(), 8u);
  EXPECT_EQ(f.vbm.SliceOfPage(0), 0u);
  EXPECT_EQ(f.vbm.SliceOfPage(7), 0u);
  EXPECT_EQ(f.vbm.SliceOfPage(8), 1u);
  EXPECT_FALSE(f.vbm.IsFastClassPage(0));
  EXPECT_TRUE(f.vbm.IsFastClassPage(8));
}

TEST(VirtualBlockManager, SlowRequestFillsSlowSliceFirst) {
  Fixture f;
  const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->ppn, 0u);
  EXPECT_EQ(a->slice, 0u);
  EXPECT_FALSE(a->fast_class);
  EXPECT_FALSE(a->diverted);
  EXPECT_TRUE(a->new_block);
  EXPECT_EQ(f.vbm.AreaOfBlock(0), Area::kHot);
}

TEST(VirtualBlockManager, FastSliceOnlyAfterSlowFull) {
  Fixture f;
  // First iron-hot request with nothing open: rule III diverts it to a new
  // block's slow slice (pages must be written in order).
  const auto first = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kIronHot);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->diverted);
  EXPECT_FALSE(first->fast_class);
  // Fill the rest of slice 0.
  for (std::uint32_t i = 1; i < 8; ++i) {
    const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(a->fast_class);
  }
  // Now the fast sibling VB is open: iron-hot lands there undiverted.
  const auto fast = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kIronHot);
  ASSERT_TRUE(fast.has_value());
  EXPECT_FALSE(fast->diverted);
  EXPECT_TRUE(fast->fast_class);
  EXPECT_EQ(fast->ppn, 8u);
}

TEST(VirtualBlockManager, PairingInvariantAcrossAreas) {
  Fixture f;
  // Open one block per area; both VBs of a block stay in its area.
  auto hot = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  auto cold = f.vbm.AllocatePage(Area::kCold, HotnessLevel::kIcyCold);
  ASSERT_TRUE(hot && cold);
  const BlockId hb = hot->ppn / kPages, cb = cold->ppn / kPages;
  EXPECT_NE(hb, cb);
  EXPECT_EQ(f.vbm.AreaOfBlock(hb), Area::kHot);
  EXPECT_EQ(f.vbm.AreaOfBlock(cb), Area::kCold);
  // Fill hot block fully: every page of it must belong to the hot area.
  for (int i = 0; i < 15; ++i) {
    const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
    ASSERT_TRUE(a.has_value());
  }
  EXPECT_EQ(f.vbm.AreaOfBlock(hb), Area::kHot);
  EXPECT_TRUE(f.vbm.CheckInvariants());
}

TEST(VirtualBlockManager, SlowPreferenceOpensNewBlockWithinFastBound) {
  Fixture f(/*blocks=*/8, /*split=*/2, /*max_fast=*/4);
  // Fill block 0's slow slice with hot data -> fast VB of block 0 opens.
  for (int i = 0; i < 8; ++i) f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  // Next slow-preference write claims a NEW block instead of polluting the
  // open fast VB (Fig. 8 reading).
  const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->new_block);
  EXPECT_FALSE(a->diverted);
  EXPECT_EQ(a->ppn / kPages, 1u);
}

TEST(VirtualBlockManager, StrictModeDivertsInsteadOfOpening) {
  Fixture f(/*blocks=*/8, /*split=*/2, /*max_fast=*/0);  // Algorithm-1 literal
  for (int i = 0; i < 8; ++i) f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  // Strict rule I: hot write diverted into the open fast VB.
  const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->diverted);
  EXPECT_TRUE(a->fast_class);
  EXPECT_EQ(a->ppn / kPages, 0u);
}

TEST(VirtualBlockManager, FastBoundLimitsOpenBlocks) {
  Fixture f(/*blocks=*/16, /*split=*/2, /*max_fast=*/2);
  // Drive slow-demand only: blocks open until 2 fast VBs are pending, after
  // which slow writes divert into them.
  int new_blocks = 0, diverted = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
    ASSERT_TRUE(a.has_value());
    new_blocks += a->new_block ? 1 : 0;
    diverted += a->diverted ? 1 : 0;
  }
  EXPECT_GT(diverted, 0);  // bound forces diversions
  EXPECT_LE(f.vbm.OpenBlockCount(Area::kHot), 3u);
  EXPECT_TRUE(f.vbm.CheckInvariants());
}

TEST(VirtualBlockManager, ExhaustionReturnsNullopt) {
  Fixture f(/*blocks=*/1);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot).has_value());
  }
  EXPECT_FALSE(f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot).has_value());
  EXPECT_FALSE(f.vbm.AllocatePage(Area::kCold, HotnessLevel::kCold).has_value());
  // The filled block is now a GC candidate.
  EXPECT_EQ(f.bm.UseOf(0), ftl::BlockUse::kFull);
}

TEST(VirtualBlockManager, EraseResetsBlockState) {
  // Strict mode so 16 slow-preference writes fill block 0 completely
  // instead of opening a second block.
  Fixture f(/*blocks=*/2, /*split=*/2, /*max_fast=*/0);
  for (int i = 0; i < 16; ++i) f.vbm.AllocatePage(Area::kCold, HotnessLevel::kIcyCold);
  ASSERT_EQ(f.bm.UseOf(0), ftl::BlockUse::kFull);
  f.bm.Release(0);
  f.vbm.OnBlockErased(0);
  EXPECT_EQ(f.vbm.AreaOfBlock(0), Area::kNone);
  EXPECT_EQ(f.vbm.FillOf(0), 0u);
  // Block 0 is reusable, and for either area.
  const auto a = f.vbm.AllocatePage(Area::kHot, HotnessLevel::kHot);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->ppn / kPages, 0u);
  EXPECT_EQ(f.vbm.AreaOfBlock(0), Area::kHot);
}

TEST(VirtualBlockManager, MismatchedAreaLevelThrows) {
  Fixture f;
  EXPECT_THROW(f.vbm.AllocatePage(Area::kHot, HotnessLevel::kCold),
               std::invalid_argument);
  EXPECT_THROW(f.vbm.AllocatePage(Area::kNone, HotnessLevel::kHot),
               std::invalid_argument);
  EXPECT_THROW(f.vbm.AreaOfBlock(99), std::out_of_range);
  EXPECT_THROW(f.vbm.FillOf(99), std::out_of_range);
  EXPECT_THROW(f.vbm.OnBlockErased(99), std::out_of_range);
}

TEST(VirtualBlockManager, GcStreamUsesSeparateSlowBlocks) {
  Fixture f(/*blocks=*/8);
  const auto host = f.vbm.AllocatePage(Area::kCold, HotnessLevel::kIcyCold,
                                       /*gc_stream=*/false);
  const auto gc = f.vbm.AllocatePage(Area::kCold, HotnessLevel::kIcyCold,
                                     /*gc_stream=*/true);
  ASSERT_TRUE(host && gc);
  EXPECT_NE(host->ppn / kPages, gc->ppn / kPages);
  // Both blocks belong to the cold area (pairing preserved).
  EXPECT_EQ(f.vbm.AreaOfBlock(host->ppn / kPages), Area::kCold);
  EXPECT_EQ(f.vbm.AreaOfBlock(gc->ppn / kPages), Area::kCold);
  EXPECT_TRUE(f.vbm.CheckInvariants());
}

TEST(VirtualBlockManager, FastListSharedBetweenStreams) {
  Fixture f(/*blocks=*/8);
  // Host stream fills a slow slice -> fast VB opens.
  for (int i = 0; i < 8; ++i) {
    f.vbm.AllocatePage(Area::kCold, HotnessLevel::kIcyCold, false);
  }
  // A GC-stream fast-class request can use that fast VB (shared pool).
  const auto gc_fast =
      f.vbm.AllocatePage(Area::kCold, HotnessLevel::kCold, /*gc_stream=*/true);
  ASSERT_TRUE(gc_fast.has_value());
  EXPECT_TRUE(gc_fast->fast_class);
  EXPECT_FALSE(gc_fast->diverted);
  EXPECT_EQ(gc_fast->ppn / kPages, 0u);
}

/// Property: under any mix of levels/areas/streams, program order within each
/// block is sequential, pairing holds, and invariants stay green.
class VbmRandomSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VbmRandomSweep, SequentialOrderAndInvariants) {
  const std::uint32_t split = GetParam();
  ftl::BlockManager bm(32, kPages);
  VirtualBlockManager vbm(bm, kPages, split);
  util::Xoshiro256StarStar rng(split * 1000 + 17);
  std::vector<std::uint32_t> next_page(32, 0);
  for (int i = 0; i < 400; ++i) {
    const auto level = static_cast<HotnessLevel>(rng.UniformBelow(4));
    const bool gc = rng.Bernoulli(0.3);
    const auto a = vbm.AllocatePage(AreaOf(level), level, gc);
    if (!a) break;  // device full
    const BlockId b = a->ppn / kPages;
    const std::uint32_t page = a->ppn % kPages;
    ASSERT_EQ(page, next_page[b]) << "in-block sequential order violated";
    next_page[b]++;
    ASSERT_EQ(vbm.IsFastClassPage(page), a->fast_class);
    if (i % 50 == 0) {
      ASSERT_TRUE(vbm.CheckInvariants());
    }
  }
  EXPECT_TRUE(vbm.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Splits, VbmRandomSweep, ::testing::Values(2u, 4u, 8u));

}  // namespace
}  // namespace ctflash::core
