#include "core/virtual_block.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/logging.h"

namespace ctflash::core {

VirtualBlockManager::VirtualBlockManager(ftl::BlockManager& blocks,
                                         std::uint32_t pages_per_block,
                                         std::uint32_t split_count,
                                         std::uint32_t max_open_fast_vbs,
                                         VbStripingConfig striping)
    : blocks_(blocks),
      pages_per_block_(pages_per_block),
      split_count_(split_count),
      pages_per_slice_(split_count == 0 ? 0 : pages_per_block / split_count),
      max_open_fast_vbs_(max_open_fast_vbs),
      striping_(std::move(striping)),
      area_of_block_(blocks.total_blocks(), Area::kNone),
      fill_(blocks.total_blocks(), 0),
      slow_home_(blocks.total_blocks(), 0) {
  if (split_count < 2 || split_count % 2 != 0) {
    throw std::invalid_argument(
        "VirtualBlockManager: split_count must be an even number >= 2");
  }
  if (pages_per_block % split_count != 0) {
    throw std::invalid_argument(
        "VirtualBlockManager: pages_per_block must be divisible by split_count");
  }
  if (pages_per_block != blocks.pages_per_block()) {
    throw std::invalid_argument(
        "VirtualBlockManager: geometry disagrees with BlockManager");
  }
  striping_.alloc.Validate();
  if (Striping()) {
    if (!striping_.die_of || !striping_.die_free_at) {
      throw std::invalid_argument(
          "VirtualBlockManager: striping requires die_of and die_free_at");
    }
    for (std::size_t i = 0; i < kStriperCount; ++i) {
      stripers_.emplace_back(striping_.die_of, striping_.die_free_at,
                             striping_.alloc.stripe_policy);
    }
  }
}

std::size_t VirtualBlockManager::SlowListIndex(Area area, bool gc_stream) {
  if (area == Area::kNone) {
    throw std::invalid_argument("VirtualBlockManager: area must be hot or cold");
  }
  return (area == Area::kHot ? 0u : 1u) + (gc_stream ? 2u : 0u);
}

std::size_t VirtualBlockManager::AreaIndex(Area area) {
  if (area == Area::kNone) {
    throw std::invalid_argument("VirtualBlockManager: area must be hot or cold");
  }
  return area == Area::kHot ? 0u : 1u;
}

std::optional<BlockId> VirtualBlockManager::ClaimNewBlock(
    Area area, std::size_t slow_list, bool uncovered_die_only) {
  // Dual-pool wear leveling (active only when the FTL installed a wear
  // provider): the hot area takes young blocks, the cold area parks its
  // stable data on worn ones.
  const ftl::AllocPolicy policy =
      !blocks_.HasWearProvider() ? ftl::AllocPolicy::kById
      : area == Area::kHot       ? ftl::AllocPolicy::kLeastWorn
                                 : ftl::AllocPolicy::kMostWorn;
  std::function<bool(BlockId)> accept;
  if (uncovered_die_only) {
    // Frontier growth lands on a die the list does not cover yet (the
    // one-open-block-per-die-per-stream rule); when every free block sits
    // on a covered die the list simply doesn't grow.
    accept =
        ftl::UncoveredDieFilter(striping_.die_of, slow_lists_[slow_list]);
  }
  const auto fresh = blocks_.AllocateBlock(policy, accept);
  if (!fresh) return std::nullopt;
  CTFLASH_CHECK(area_of_block_[*fresh] == Area::kNone);
  CTFLASH_CHECK(fill_[*fresh] == 0);
  area_of_block_[*fresh] = area;
  slow_home_[*fresh] = static_cast<std::uint8_t>(slow_list);
  slow_lists_[slow_list].push_back(*fresh);
  return fresh;
}

void VirtualBlockManager::AdvanceFill(BlockId block,
                                      std::deque<BlockId>& current_list) {
  fill_[block]++;
  if (fill_[block] % pages_per_slice_ != 0) return;
  // Slice boundary: the block leaves its current list.  With striping the
  // block can sit anywhere in the list; without it, it is the front.
  const auto it =
      std::find(current_list.begin(), current_list.end(), block);
  CTFLASH_CHECK(it != current_list.end());
  current_list.erase(it);
  // The block's home slow list just changed membership (leaving for the
  // fast list, rejoining, or filling up), so its covered-die set — and a
  // memoized growth failure — may be stale.
  growth_fail_gen_[slow_home_[block]] = kNoGrowthFailure;
  if (fill_[block] == pages_per_block_) {
    blocks_.MarkFull(block);
    return;
  }
  const std::uint32_t next_slice = fill_[block] / pages_per_slice_;
  if (IsFastClassSlice(next_slice)) {
    fast_lists_[AreaIndex(area_of_block_[block])].push_back(block);
  } else {
    slow_lists_[slow_home_[block]].push_back(block);
  }
}

std::optional<VbAllocation> VirtualBlockManager::AllocatePage(
    Area area, HotnessLevel level, bool gc_stream) {
  if (AreaOf(level) != area) {
    throw std::invalid_argument("AllocatePage: level does not belong to area");
  }
  const std::size_t slow_idx = SlowListIndex(area, gc_stream);
  std::deque<BlockId>& slow = slow_lists_[slow_idx];
  std::deque<BlockId>& fast = fast_lists_[AreaIndex(area)];
  const bool want_fast = WantsFastPages(level);

  VbAllocation out;
  std::deque<BlockId>* chosen = nullptr;
  std::size_t striper = slow_idx;
  if (want_fast) {
    if (!fast.empty()) {
      chosen = &fast;  // the area's iron-hot / cold VB list has space
      striper = kSlowListCount + AreaIndex(area);
    } else if (!slow.empty()) {
      // Rule II: fast list out of space -> demote the write to a slow VB.
      chosen = &slow;
      out.diverted = true;
    } else {
      // Rule III: both lists out of space -> claim a new physical block;
      // its slice 0 (slow class) is the only writable slice.
      if (!ClaimNewBlock(area, slow_idx)) return std::nullopt;
      chosen = &slow;
      out.diverted = true;
      out.new_block = true;
    }
  } else {
    if (!slow.empty()) {
      chosen = &slow;  // the hot / icy-cold VB list has space
    } else {
      const std::size_t open_fast = fast.size();
      if (open_fast < max_open_fast_vbs_ && ClaimNewBlock(area, slow_idx)) {
        // Fig. 8 reading: start the next physical block instead of polluting
        // an open fast VB with slow-class data.
        chosen = &slow;
        out.new_block = true;
      } else if (!fast.empty()) {
        // Rule I: slow list out of space -> promote the write to a fast VB.
        chosen = &fast;
        striper = kSlowListCount + AreaIndex(area);
        out.diverted = true;
      } else {
        if (!ClaimNewBlock(area, slow_idx)) return std::nullopt;
        chosen = &slow;
        out.new_block = true;
      }
    }
  }

  // Die-striped frontier growth: a slow list writes in parallel across up
  // to min(write_frontiers, total_dies) dies, growing opportunistically
  // while the free pool stays above the stream's reserve and the open
  // population under the livelock cap (see VbStripingConfig).
  const std::uint64_t reserve = gc_stream ? striping_.gc_claim_reserve_blocks
                                          : striping_.claim_reserve_blocks;
  if (Striping() && chosen == &slow && slow.size() < EffectiveFrontiers() &&
      blocks_.FreeCount() > reserve &&
      (striping_.max_open_blocks == 0 ||
       OpenBlockCount(Area::kHot) + OpenBlockCount(Area::kCold) <
           striping_.max_open_blocks) &&
      !(growth_fail_gen_[slow_idx] == blocks_.FreeListGeneration() &&
        growth_fail_size_[slow_idx] == slow.size())) {
    if (ClaimNewBlock(area, slow_idx, /*uncovered_die_only=*/true)) {
      out.new_block = true;
      growth_fail_gen_[slow_idx] = kNoGrowthFailure;
    } else {
      growth_fail_gen_[slow_idx] = blocks_.FreeListGeneration();
      growth_fail_size_[slow_idx] = slow.size();
    }
  }

  const BlockId block = (*chosen)[PickIndex(striper, *chosen)];
  const std::uint32_t page = fill_[block];
  CTFLASH_CHECK(page < pages_per_block_);
  out.ppn = static_cast<Ppn>(block) * pages_per_block_ + page;
  out.slice = SliceOfPage(page);
  out.fast_class = IsFastClassSlice(out.slice);
  if (gc_stream && striping_.die_of) {
    gc_dies_.insert(striping_.die_of(block));
  }
  AdvanceFill(block, *chosen);
  return out;
}

std::size_t VirtualBlockManager::PickIndex(std::size_t striper,
                                           const std::deque<BlockId>& list) {
  if (!Striping() || list.size() == 1) return 0;
  return stripers_[striper].Pick(list);
}

std::optional<Us> VirtualBlockManager::EarliestHostFrontierFreeAt() const {
  if (!striping_.die_free_at) return std::nullopt;
  // While the free pool has claim headroom, report "startable now": the
  // write's area/class is unknown before dispatch, and most list states can
  // absorb it immediately (empty lists first-claim via rule III).  This is
  // optimistic when every host list sits at its frontier cap on busy dies,
  // but never worse than the pre-frontier scheduler, which keyed all writes
  // startable unconditionally.  Only a depleted pool gates the write behind
  // the open frontier dies.
  if (blocks_.FreeCount() > striping_.claim_reserve_blocks) {
    return std::nullopt;
  }
  std::optional<Us> earliest;
  auto fold = [&](const std::deque<BlockId>& list) {
    for (const BlockId b : list) {
      const Us free = striping_.die_free_at(b);
      if (!earliest || free < *earliest) earliest = free;
    }
  };
  fold(slow_lists_[SlowListIndex(Area::kHot, /*gc_stream=*/false)]);
  fold(slow_lists_[SlowListIndex(Area::kCold, /*gc_stream=*/false)]);
  fold(fast_lists_[AreaIndex(Area::kHot)]);
  fold(fast_lists_[AreaIndex(Area::kCold)]);
  return earliest;
}

void VirtualBlockManager::OnBlockErased(BlockId block) {
  if (block >= area_of_block_.size()) {
    throw std::out_of_range("OnBlockErased: block out of range");
  }
  // Only full (list-free) blocks are ever erased by the FTL.
  CTFLASH_CHECK(fill_[block] == pages_per_block_ || fill_[block] == 0);
  area_of_block_[block] = Area::kNone;
  fill_[block] = 0;
}

Area VirtualBlockManager::AreaOfBlock(BlockId block) const {
  if (block >= area_of_block_.size()) {
    throw std::out_of_range("AreaOfBlock: block out of range");
  }
  return area_of_block_[block];
}

std::uint32_t VirtualBlockManager::FillOf(BlockId block) const {
  if (block >= fill_.size()) {
    throw std::out_of_range("FillOf: block out of range");
  }
  return fill_[block];
}

std::size_t VirtualBlockManager::OpenBlockCount(Area area) const {
  return slow_lists_[SlowListIndex(area, false)].size() +
         slow_lists_[SlowListIndex(area, true)].size() +
         fast_lists_[AreaIndex(area)].size();
}

bool VirtualBlockManager::CheckInvariants() const {
  auto check_list = [&](const std::deque<BlockId>& list, Area area,
                        bool fast_list) {
    for (const BlockId b : list) {
      if (b >= area_of_block_.size()) return false;
      if (area_of_block_[b] != area) return false;
      const std::uint32_t f = fill_[b];
      if (f >= pages_per_block_) return false;  // full blocks leave lists
      if (IsFastClassSlice(SliceOfPage(f)) != fast_list) return false;
      if (blocks_.UseOf(b) != ftl::BlockUse::kOpen) return false;
    }
    return true;
  };
  const Area slow_area[kSlowListCount] = {Area::kHot, Area::kCold, Area::kHot,
                                          Area::kCold};
  for (std::size_t i = 0; i < kSlowListCount; ++i) {
    if (!check_list(slow_lists_[i], slow_area[i], /*fast_list=*/false)) {
      return false;
    }
  }
  if (!check_list(fast_lists_[0], Area::kHot, /*fast_list=*/true)) return false;
  if (!check_list(fast_lists_[1], Area::kCold, /*fast_list=*/true)) return false;
  for (BlockId b = 0; b < area_of_block_.size(); ++b) {
    if (area_of_block_[b] == Area::kNone && fill_[b] != 0) return false;
    if (fill_[b] != 0 && blocks_.UseOf(b) == ftl::BlockUse::kFree) return false;
  }
  return true;
}

void VirtualBlockManager::SaveState(util::StateWriter& w) const {
  w.Tag("VBMG");
  w.PutU64(area_of_block_.size());
  for (std::size_t i = 0; i < area_of_block_.size(); ++i) {
    w.PutU8(static_cast<std::uint8_t>(area_of_block_[i]));
    w.PutU32(fill_[i]);
    w.PutU8(slow_home_[i]);
  }
  for (const auto& list : slow_lists_) w.PutU64Seq(list);
  for (const auto& list : fast_lists_) w.PutU64Seq(list);
  for (std::size_t i = 0; i < kSlowListCount; ++i) {
    w.PutU64(growth_fail_gen_[i]);
    w.PutU64(growth_fail_size_[i]);
  }
  w.PutU64Seq(gc_dies_);
  w.PutU64(stripers_.size());
  for (const auto& striper : stripers_) striper.SaveState(w);
}

void VirtualBlockManager::LoadState(util::StateReader& r) {
  r.ExpectTag("VBMG");
  const std::uint64_t n = r.GetU64();
  if (n != area_of_block_.size()) {
    throw std::runtime_error("snapshot: virtual block count mismatch (have " +
                             std::to_string(area_of_block_.size()) +
                             ", state " + std::to_string(n) + ")");
  }
  for (std::size_t i = 0; i < area_of_block_.size(); ++i) {
    const std::uint8_t area = r.GetU8();
    if (area > static_cast<std::uint8_t>(Area::kCold)) {
      throw std::runtime_error("snapshot: invalid area tag " +
                               std::to_string(area));
    }
    area_of_block_[i] = static_cast<Area>(area);
    fill_[i] = r.GetU32();
    slow_home_[i] = r.GetU8();
  }
  for (auto& list : slow_lists_) {
    const std::vector<std::uint64_t> v = r.GetU64Seq();
    list.assign(v.begin(), v.end());
  }
  for (auto& list : fast_lists_) {
    const std::vector<std::uint64_t> v = r.GetU64Seq();
    list.assign(v.begin(), v.end());
  }
  for (std::size_t i = 0; i < kSlowListCount; ++i) {
    growth_fail_gen_[i] = r.GetU64();
    growth_fail_size_[i] = static_cast<std::size_t>(r.GetU64());
  }
  const std::vector<std::uint64_t> dies = r.GetU64Seq();
  gc_dies_.clear();
  gc_dies_.insert(dies.begin(), dies.end());
  const std::uint64_t nstripers = r.GetU64();
  if (nstripers != stripers_.size()) {
    throw std::runtime_error("snapshot: striper count mismatch (have " +
                             std::to_string(stripers_.size()) + ", state " +
                             std::to_string(nstripers) + ")");
  }
  for (auto& striper : stripers_) striper.LoadState(r);
}

}  // namespace ctflash::core
