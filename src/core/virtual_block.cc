#include "core/virtual_block.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"

namespace ctflash::core {

VirtualBlockManager::VirtualBlockManager(ftl::BlockManager& blocks,
                                         std::uint32_t pages_per_block,
                                         std::uint32_t split_count,
                                         std::uint32_t max_open_fast_vbs)
    : blocks_(blocks),
      pages_per_block_(pages_per_block),
      split_count_(split_count),
      pages_per_slice_(split_count == 0 ? 0 : pages_per_block / split_count),
      max_open_fast_vbs_(max_open_fast_vbs),
      area_of_block_(blocks.total_blocks(), Area::kNone),
      fill_(blocks.total_blocks(), 0),
      slow_home_(blocks.total_blocks(), 0) {
  if (split_count < 2 || split_count % 2 != 0) {
    throw std::invalid_argument(
        "VirtualBlockManager: split_count must be an even number >= 2");
  }
  if (pages_per_block % split_count != 0) {
    throw std::invalid_argument(
        "VirtualBlockManager: pages_per_block must be divisible by split_count");
  }
  if (pages_per_block != blocks.pages_per_block()) {
    throw std::invalid_argument(
        "VirtualBlockManager: geometry disagrees with BlockManager");
  }
}

std::size_t VirtualBlockManager::SlowListIndex(Area area, bool gc_stream) {
  if (area == Area::kNone) {
    throw std::invalid_argument("VirtualBlockManager: area must be hot or cold");
  }
  return (area == Area::kHot ? 0u : 1u) + (gc_stream ? 2u : 0u);
}

std::size_t VirtualBlockManager::AreaIndex(Area area) {
  if (area == Area::kNone) {
    throw std::invalid_argument("VirtualBlockManager: area must be hot or cold");
  }
  return area == Area::kHot ? 0u : 1u;
}

std::optional<BlockId> VirtualBlockManager::ClaimNewBlock(
    Area area, std::size_t slow_list) {
  // Dual-pool wear leveling (active only when the FTL installed a wear
  // provider): the hot area takes young blocks, the cold area parks its
  // stable data on worn ones.
  const ftl::AllocPolicy policy =
      !blocks_.HasWearProvider() ? ftl::AllocPolicy::kById
      : area == Area::kHot       ? ftl::AllocPolicy::kLeastWorn
                                 : ftl::AllocPolicy::kMostWorn;
  const auto fresh = blocks_.AllocateBlock(policy);
  if (!fresh) return std::nullopt;
  CTFLASH_CHECK(area_of_block_[*fresh] == Area::kNone);
  CTFLASH_CHECK(fill_[*fresh] == 0);
  area_of_block_[*fresh] = area;
  slow_home_[*fresh] = static_cast<std::uint8_t>(slow_list);
  slow_lists_[slow_list].push_back(*fresh);
  return fresh;
}

void VirtualBlockManager::AdvanceFill(BlockId block,
                                      std::deque<BlockId>& current_list) {
  fill_[block]++;
  if (fill_[block] % pages_per_slice_ != 0) return;
  // Slice boundary: the block leaves its current list.
  CTFLASH_CHECK(!current_list.empty() && current_list.front() == block);
  current_list.pop_front();
  if (fill_[block] == pages_per_block_) {
    blocks_.MarkFull(block);
    return;
  }
  const std::uint32_t next_slice = fill_[block] / pages_per_slice_;
  if (IsFastClassSlice(next_slice)) {
    fast_lists_[AreaIndex(area_of_block_[block])].push_back(block);
  } else {
    slow_lists_[slow_home_[block]].push_back(block);
  }
}

std::optional<VbAllocation> VirtualBlockManager::AllocatePage(
    Area area, HotnessLevel level, bool gc_stream) {
  if (AreaOf(level) != area) {
    throw std::invalid_argument("AllocatePage: level does not belong to area");
  }
  const std::size_t slow_idx = SlowListIndex(area, gc_stream);
  std::deque<BlockId>& slow = slow_lists_[slow_idx];
  std::deque<BlockId>& fast = fast_lists_[AreaIndex(area)];
  const bool want_fast = WantsFastPages(level);

  VbAllocation out;
  std::deque<BlockId>* chosen = nullptr;
  if (want_fast) {
    if (!fast.empty()) {
      chosen = &fast;  // the area's iron-hot / cold VB list has space
    } else if (!slow.empty()) {
      // Rule II: fast list out of space -> demote the write to a slow VB.
      chosen = &slow;
      out.diverted = true;
    } else {
      // Rule III: both lists out of space -> claim a new physical block;
      // its slice 0 (slow class) is the only writable slice.
      if (!ClaimNewBlock(area, slow_idx)) return std::nullopt;
      chosen = &slow;
      out.diverted = true;
      out.new_block = true;
    }
  } else {
    if (!slow.empty()) {
      chosen = &slow;  // the hot / icy-cold VB list has space
    } else {
      const std::size_t open_fast = fast.size();
      if (open_fast < max_open_fast_vbs_ && ClaimNewBlock(area, slow_idx)) {
        // Fig. 8 reading: start the next physical block instead of polluting
        // an open fast VB with slow-class data.
        chosen = &slow;
        out.new_block = true;
      } else if (!fast.empty()) {
        // Rule I: slow list out of space -> promote the write to a fast VB.
        chosen = &fast;
        out.diverted = true;
      } else {
        if (!ClaimNewBlock(area, slow_idx)) return std::nullopt;
        chosen = &slow;
        out.new_block = true;
      }
    }
  }

  const BlockId block = chosen->front();
  const std::uint32_t page = fill_[block];
  CTFLASH_CHECK(page < pages_per_block_);
  out.ppn = static_cast<Ppn>(block) * pages_per_block_ + page;
  out.slice = SliceOfPage(page);
  out.fast_class = IsFastClassSlice(out.slice);
  AdvanceFill(block, *chosen);
  return out;
}

void VirtualBlockManager::OnBlockErased(BlockId block) {
  if (block >= area_of_block_.size()) {
    throw std::out_of_range("OnBlockErased: block out of range");
  }
  // Only full (list-free) blocks are ever erased by the FTL.
  CTFLASH_CHECK(fill_[block] == pages_per_block_ || fill_[block] == 0);
  area_of_block_[block] = Area::kNone;
  fill_[block] = 0;
}

Area VirtualBlockManager::AreaOfBlock(BlockId block) const {
  if (block >= area_of_block_.size()) {
    throw std::out_of_range("AreaOfBlock: block out of range");
  }
  return area_of_block_[block];
}

std::uint32_t VirtualBlockManager::FillOf(BlockId block) const {
  if (block >= fill_.size()) {
    throw std::out_of_range("FillOf: block out of range");
  }
  return fill_[block];
}

std::size_t VirtualBlockManager::OpenBlockCount(Area area) const {
  return slow_lists_[SlowListIndex(area, false)].size() +
         slow_lists_[SlowListIndex(area, true)].size() +
         fast_lists_[AreaIndex(area)].size();
}

bool VirtualBlockManager::CheckInvariants() const {
  auto check_list = [&](const std::deque<BlockId>& list, Area area,
                        bool fast_list) {
    for (const BlockId b : list) {
      if (b >= area_of_block_.size()) return false;
      if (area_of_block_[b] != area) return false;
      const std::uint32_t f = fill_[b];
      if (f >= pages_per_block_) return false;  // full blocks leave lists
      if (IsFastClassSlice(SliceOfPage(f)) != fast_list) return false;
      if (blocks_.UseOf(b) != ftl::BlockUse::kOpen) return false;
    }
    return true;
  };
  const Area slow_area[kSlowListCount] = {Area::kHot, Area::kCold, Area::kHot,
                                          Area::kCold};
  for (std::size_t i = 0; i < kSlowListCount; ++i) {
    if (!check_list(slow_lists_[i], slow_area[i], /*fast_list=*/false)) {
      return false;
    }
  }
  if (!check_list(fast_lists_[0], Area::kHot, /*fast_list=*/true)) return false;
  if (!check_list(fast_lists_[1], Area::kCold, /*fast_list=*/true)) return false;
  for (BlockId b = 0; b < area_of_block_.size(); ++b) {
    if (area_of_block_[b] == Area::kNone && fill_[b] != 0) return false;
    if (fill_[b] != 0 && blocks_.UseOf(b) == ftl::BlockUse::kFree) return false;
  }
  return true;
}

}  // namespace ctflash::core
