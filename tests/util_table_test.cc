#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::util {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  const auto s = t.ToString();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  // Every line has the same length (alignment).
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TablePrinter, Validation) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatPercent(0.1856), "18.56%");
  EXPECT_EQ(TablePrinter::FormatPercent(-0.0002, 2), "-0.02%");
  EXPECT_EQ(TablePrinter::FormatScientific(3.0e6), "3.00E+06");
  EXPECT_EQ(TablePrinter::FormatScientific(0.0), "0.00E+00");
}

TEST(TablePrinter, EmptyTableStillRendersHeader) {
  TablePrinter t({"col"});
  const auto s = t.ToString();
  EXPECT_NE(s.find("col"), std::string::npos);
}

}  // namespace
}  // namespace ctflash::util
