#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ctflash::util {

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::uint64_t ParseByteSize(const std::string& text) {
  const std::string t = Trim(text);
  if (t.empty()) throw std::invalid_argument("ParseByteSize: empty string");
  std::size_t pos = 0;
  while (pos < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[pos])) || t[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) throw std::invalid_argument("ParseByteSize: no digits in '" + t + "'");
  const double value = std::stod(t.substr(0, pos));
  std::string suffix = ToLower(Trim(t.substr(pos)));
  // Strip optional "ib"/"b".
  if (suffix.size() >= 2 && suffix.substr(suffix.size() - 2) == "ib") {
    suffix = suffix.substr(0, suffix.size() - 2);
  } else if (!suffix.empty() && suffix.back() == 'b') {
    suffix = suffix.substr(0, suffix.size() - 1);
  }
  double mult = 1.0;
  if (suffix == "") {
    mult = 1.0;
  } else if (suffix == "k") {
    mult = 1024.0;
  } else if (suffix == "m") {
    mult = 1024.0 * 1024.0;
  } else if (suffix == "g") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "t") {
    mult = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    throw std::invalid_argument("ParseByteSize: bad suffix in '" + t + "'");
  }
  return static_cast<std::uint64_t>(value * mult);
}

ConfigMap ConfigMap::FromString(const std::string& text) {
  ConfigMap cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = Trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        throw std::invalid_argument("ConfigMap: unterminated section at line " +
                                    std::to_string(lineno));
      }
      section = Trim(t.substr(1, t.size() - 2));
      continue;
    }
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("ConfigMap: missing '=' at line " +
                                  std::to_string(lineno));
    }
    // Strip inline comments from the value.
    std::string value = t.substr(eq + 1);
    const std::size_t comment = value.find_first_of("#;");
    if (comment != std::string::npos) value = value.substr(0, comment);
    cfg.Set(section, Trim(t.substr(0, eq)), Trim(value));
  }
  return cfg;
}

ConfigMap ConfigMap::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ConfigMap: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return FromString(ss.str());
}

void ConfigMap::Set(const std::string& section, const std::string& key,
                    const std::string& value) {
  sections_[section][key] = value;
}

bool ConfigMap::Has(const std::string& section, const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return false;
  return sit->second.count(key) > 0;
}

std::optional<std::string> ConfigMap::GetString(const std::string& section,
                                                const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::string ConfigMap::GetStringOr(const std::string& section,
                                   const std::string& key,
                                   const std::string& fallback) const {
  return GetString(section, key).value_or(fallback);
}

std::int64_t ConfigMap::GetIntOr(const std::string& section,
                                 const std::string& key,
                                 std::int64_t fallback) const {
  const auto v = GetString(section, key);
  if (!v) return fallback;
  return std::stoll(*v, nullptr, 0);
}

double ConfigMap::GetDoubleOr(const std::string& section, const std::string& key,
                              double fallback) const {
  const auto v = GetString(section, key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool ConfigMap::GetBoolOr(const std::string& section, const std::string& key,
                          bool fallback) const {
  const auto v = GetString(section, key);
  if (!v) return fallback;
  const std::string low = ToLower(Trim(*v));
  if (low == "true" || low == "yes" || low == "on" || low == "1") return true;
  if (low == "false" || low == "no" || low == "off" || low == "0") return false;
  throw std::invalid_argument("ConfigMap: bad bool value '" + *v + "'");
}

std::uint64_t ConfigMap::GetBytesOr(const std::string& section,
                                    const std::string& key,
                                    std::uint64_t fallback) const {
  const auto v = GetString(section, key);
  if (!v) return fallback;
  return ParseByteSize(*v);
}

std::string ConfigMap::ToString() const {
  std::ostringstream os;
  for (const auto& [section, kv] : sections_) {
    os << "[" << section << "]\n";
    for (const auto& [k, v] : kv) os << k << " = " << v << "\n";
    os << "\n";
  }
  return os.str();
}

}  // namespace ctflash::util
