#include "obs/export.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ctflash::obs {

namespace {

/// Chrome thread ids by track kind: queues, dies, and tenants get disjoint
/// tid ranges so each renders as its own named track group.
std::uint32_t TidOf(TraceSpan::TrackKind kind, std::uint32_t id) {
  switch (kind) {
    case TraceSpan::TrackKind::kQueue:
      return 100 + id;
    case TraceSpan::TrackKind::kDie:
      return 200 + id;
    case TraceSpan::TrackKind::kTenant:
      return 300 + id;
  }
  return id;
}

const char* TrackKindName(TraceSpan::TrackKind kind) {
  switch (kind) {
    case TraceSpan::TrackKind::kQueue:
      return "queue";
    case TraceSpan::TrackKind::kDie:
      return "die";
    case TraceSpan::TrackKind::kTenant:
      return "tenant";
  }
  return "?";
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

void AppendMeta(std::string& out, std::uint32_t pid, std::uint32_t tid,
                const char* what, const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  out += what;
  out += "\",\"args\":{\"name\":\"";
  AppendEscaped(out, name);
  out += "\"}},\n";
}

void AppendCounterSeries(std::string& out, const Tracer& tracer,
                         std::uint32_t pid,
                         const std::vector<CounterSeries>& series) {
  const Us epoch_us = tracer.config().metrics_epoch_us;
  if (epoch_us <= 0) return;
  const Us base = tracer.config().epoch_base_us;
  for (const CounterSeries& s : series) {
    for (std::size_t e = 0; e < s.values.size(); ++e) {
      out += "{\"ph\":\"C\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":0,\"ts\":";
      out += std::to_string(base + static_cast<Us>(e) * epoch_us);
      out += ",\"name\":\"";
      AppendEscaped(out, s.name);
      out += "\",\"args\":{\"";
      AppendEscaped(out, s.key);
      out += "\":";
      out += std::to_string(s.values[e]);
      out += "}},\n";
    }
  }
}

void AppendDevice(std::string& out, const Tracer& tracer, std::uint32_t pid,
                  const std::string& process_name) {
  AppendMeta(out, pid, 0, "process_name", process_name);

  // Name every track that carries at least one span, in deterministic
  // (kind, id) order.
  std::map<std::pair<std::uint8_t, std::uint32_t>, TraceSpan::TrackKind>
      tracks;
  for (const TraceSpan& span : tracer.spans()) {
    tracks.emplace(
        std::make_pair(static_cast<std::uint8_t>(span.track), span.track_id),
        span.track);
  }
  for (const auto& [key, kind] : tracks) {
    AppendMeta(out, pid, TidOf(kind, key.second), "thread_name",
               std::string(TrackKindName(kind)) + " " +
                   std::to_string(key.second));
  }

  for (const TraceSpan& span : tracer.spans()) {
    out += "{\"ph\":\"X\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(TidOf(span.track, span.track_id));
    out += ",\"ts\":";
    out += std::to_string(span.start_us);
    out += ",\"dur\":";
    out += std::to_string(span.dur_us);
    out += ",\"cat\":\"";
    out += TrackKindName(span.track);
    out += "\",\"name\":\"";
    out += span.name;
    out += "\",\"args\":{\"req\":";
    out += std::to_string(span.request_id);
    if (span.cause != StallCause::kNone) {
      out += ",\"cause\":\"";
      out += StallCauseName(span.cause);
      out += "\",\"stall_us\":";
      out += std::to_string(span.stall_us);
    }
    if (span.detail != 0) {
      out += ",\"detail\":";
      out += std::to_string(span.detail);
    }
    out += "}},\n";
  }

  // Counter tracks, one sample per metrics epoch.
  const Us epoch_us = tracer.config().metrics_epoch_us;
  if (epoch_us > 0) {
    const Us base = tracer.config().epoch_base_us;
    const auto& counters = tracer.epoch_counters();
    for (std::size_t e = 0; e < counters.size(); ++e) {
      const EpochCounters& c = counters[e];
      const Us ts = base + static_cast<Us>(e) * epoch_us;
      const auto counter = [&](const char* name, const std::string& args) {
        out += "{\"ph\":\"C\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":0,\"ts\":";
        out += std::to_string(ts);
        out += ",\"name\":\"";
        out += name;
        out += "\",\"args\":{";
        out += args;
        out += "}},\n";
      };
      counter("completions",
              "\"read\":" + std::to_string(c.reads_completed) +
                  ",\"write\":" + std::to_string(c.writes_completed));
      counter("gc", "\"copies\":" + std::to_string(c.gc_copies) +
                        ",\"erases\":" + std::to_string(c.gc_erases));
      if (c.retry_rungs != 0) {
        counter("retry_rungs", "\"rungs\":" + std::to_string(c.retry_rungs));
      }
      if (c.timeouts != 0) {
        counter("timeouts", "\"count\":" + std::to_string(c.timeouts));
      }
    }
  }
}

campaign::Json LatencyJson(const util::LatencyStats& s) {
  campaign::Json out;
  out["count"] = s.count();
  out["total_us"] = s.total_us();
  out["mean_us"] = s.mean_us();
  out["p50_us"] = s.p50_us();
  out["p99_us"] = s.p99_us();
  out["max_us"] = s.max_us();
  return out;
}

campaign::Json BreakdownJson(const PhaseBreakdown& b) {
  campaign::Json out;
  out["count"] = b.total.count();
  out["total"] = LatencyJson(b.total);
  out["paced"] = LatencyJson(b.paced);
  out["queued"] = LatencyJson(b.queued);
  out["media"] = LatencyJson(b.media);
  campaign::Json stalls;
  for (int c = 1; c < kStallCauseCount; ++c) {
    campaign::Json entry;
    entry["us"] = b.stall_us[c];
    entry["events"] = b.stall_events[c];
    stalls[StallCauseName(static_cast<StallCause>(c))] = std::move(entry);
  }
  out["stalls"] = std::move(stalls);
  return out;
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer,
                            const TraceExportOptions& options) {
  std::string out = "{\"traceEvents\":[\n";
  AppendDevice(out, tracer, options.pid, options.process_name);
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);  // trailing comma before the closing ]
  }
  out += "]}\n";
  return out;
}

std::string ChromeTraceJson(
    const std::vector<std::pair<std::string, const Tracer*>>& devices) {
  std::vector<FleetDeviceExport> fleet(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    fleet[d].name = devices[d].first;
    fleet[d].tracer = devices[d].second;
  }
  return ChromeTraceJson(fleet);
}

std::string ChromeTraceJson(const std::vector<FleetDeviceExport>& devices) {
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t d = 0; d < devices.size(); ++d) {
    if (devices[d].tracer == nullptr) continue;
    const auto pid = static_cast<std::uint32_t>(d + 1);
    AppendDevice(out, *devices[d].tracer, pid, devices[d].name);
    AppendCounterSeries(out, *devices[d].tracer, pid, devices[d].counters);
  }
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

campaign::Json PhaseStatsJson(const PhaseStats& stats) {
  campaign::Json out;
  out["read"] = BreakdownJson(stats.read);
  out["write"] = BreakdownJson(stats.write);
  return out;
}

campaign::Json TracerJson(const Tracer& tracer) {
  campaign::Json out;
  out["phases"] = PhaseStatsJson(tracer.phases());
  if (!tracer.epoch_phases().empty()) {
    campaign::JsonArray epochs;
    for (const PhaseStats& e : tracer.epoch_phases()) {
      epochs.push_back(PhaseStatsJson(e));
    }
    out["epoch_phases"] = campaign::Json(std::move(epochs));
  }
  if (!tracer.epoch_counters().empty()) {
    campaign::JsonArray rows;
    for (const EpochCounters& c : tracer.epoch_counters()) {
      campaign::Json row;
      row["reads_completed"] = c.reads_completed;
      row["writes_completed"] = c.writes_completed;
      row["gc_copies"] = c.gc_copies;
      row["gc_erases"] = c.gc_erases;
      row["retry_rungs"] = c.retry_rungs;
      row["timeouts"] = c.timeouts;
      rows.push_back(std::move(row));
    }
    out["epoch_counters"] = campaign::Json(std::move(rows));
  }
  out["spans"] = static_cast<std::uint64_t>(tracer.spans().size());
  out["dropped_spans"] = tracer.dropped_spans();
  return out;
}

void ExportPhaseStats(const PhaseStats& stats, const std::string& prefix,
                      MetricsRegistry& registry) {
  const auto side = [&](const PhaseBreakdown& b, const std::string& name) {
    const std::string base = prefix + "." + name;
    registry.Histogram(base + ".total").Merge(b.total);
    registry.Histogram(base + ".paced").Merge(b.paced);
    registry.Histogram(base + ".queued").Merge(b.queued);
    registry.Histogram(base + ".media").Merge(b.media);
    for (int c = 1; c < kStallCauseCount; ++c) {
      const std::string cause =
          base + ".stall." + StallCauseName(static_cast<StallCause>(c));
      registry.AddCounter(cause + ".us", b.stall_us[c]);
      registry.AddCounter(cause + ".events", b.stall_events[c]);
    }
  };
  side(stats.read, "read");
  side(stats.write, "write");
}

std::uint64_t TraceDigest(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace ctflash::obs
