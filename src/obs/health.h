// HealthMonitor: SMART-style per-device health telemetry.
//
// One monitor watches one device.  Once per window (the cluster feeds it
// every epoch from the serial director step) it receives a HealthSample of
// CUMULATIVE counters the device already maintains — spare-pool state from
// the BlockManager, wear from the NAND erase tally, media-error trend from
// the read-retry ladder, GC pressure from the tracer's die-busy-gc stall
// attribution — and folds them into one score (normalized so 1.0 means "a
// failing threshold is hit"; overshoot past 1 is kept, capped at 4) with
// typed degradation states:
//
//   healthy   score <  degraded_frac
//   degraded  score in [degraded_frac, 1)
//   failing   score >= 1
//
// Each signal is normalized against its own configured failing threshold
// ("retired blocks ate spare_fail_frac of the spare budget", "retry rate
// hit retry_fail_rate", ...), the worst signal wins, and an EWMA smooths
// window-to-window jitter.  The spare signal is measured against the
// FIRST sample's baseline, so an aged prefill does not start a device off
// sick; rate signals (retries, verify fails, GC stall share) are
// per-window deltas.  Wear alone is an absolute odometer (mean P/E vs the
// endurance budget) — an aged device genuinely IS further through its
// life.  Everything is integer-counter arithmetic in a fixed order —
// byte-deterministic for any worker count, like every aggregate here.
//
// The score EWMA of a monotone signal ramp is itself monotone (the EWMA is
// a convex combination of past raw scores, so it trails the max), which is
// what makes healthy -> degraded -> failing transitions one-way under a
// wear/fault ramp — the property obs_health_test locks in and the cluster
// director's predictive drain relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"

namespace ctflash::obs {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded,
  kFailing,
};

inline const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kFailing:
      return "failing";
  }
  return "?";
}

struct HealthConfig {
  /// EWMA weight of the newest window's raw score.
  double ewma_alpha = 0.4;
  /// Score fraction at which healthy tips into degraded.
  double degraded_frac = 0.5;
  /// Spare signal fails when retirement has consumed this fraction of the
  /// spare budget (baseline free blocks above the GC floor).
  double spare_fail_frac = 0.5;
  /// Wear signal fails at this fraction of the endurance P/E budget.
  double wear_fail_frac = 0.9;
  /// Media signal fails at this per-window read-retry rate
  /// (retried / sampled); any unrecovered read fails it outright.
  double retry_fail_rate = 0.25;
  /// Program signal (SMART "program fail count" trend) fails at this
  /// per-window verify-fail rate (failures / page programs).  Programs
  /// fail from the very first write on a sick device — long before the
  /// failing blocks reach a GC erase and show up as spare-pool burn — so
  /// this is the earliest wear-ramp discriminator the monitor has.
  double program_fail_rate = 0.05;
  /// GC signal fails when die-busy-gc stall reaches this share of the
  /// window's read media time.
  double gc_stall_fail_share = 0.5;

  void Validate() const;
};

/// Cumulative device counters, sampled once per window.  The collector
/// (cluster director, campaign runner, tests) fills whatever it has;
/// signals whose inputs stay zero simply score zero.
struct HealthSample {
  // Spare pool (BlockManager).
  std::uint64_t free_blocks = 0;
  std::uint64_t retired_blocks = 0;
  std::uint64_t total_blocks = 0;
  std::uint64_t gc_floor_blocks = 0;  ///< FtlConfig::gc_threshold_low
  // Wear (NAND erase tally vs the endurance budget).
  std::uint64_t total_erases = 0;
  std::uint64_t endurance_pe_cycles = 0;
  // Media-error trend (host + GC ReadErrorStats, FaultStats).
  std::uint64_t sampled_reads = 0;
  std::uint64_t retried_reads = 0;
  std::uint64_t unrecovered_reads = 0;
  std::uint64_t lost_pages = 0;
  // Program-verify trend (FtlStats page programs, FaultStats failures).
  std::uint64_t program_pages = 0;
  std::uint64_t program_failures = 0;
  // GC pressure (tracer: cumulative read die-busy-gc stall vs media time).
  std::uint64_t read_stall_gc_us = 0;
  std::uint64_t read_media_us = 0;
};

/// Latest per-signal raw scores: 1.0 == that signal's failing threshold is
/// exactly hit, values above 1 (capped at 4) mean it is exceeded — the
/// overshoot is what lets the smoothed score actually cross 1.0.
struct HealthSignals {
  double spare = 0.0;
  double wear = 0.0;
  double media = 0.0;
  double gc = 0.0;
  double program = 0.0;

  double Worst() const;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config = HealthConfig{});

  /// Feeds one window's cumulative sample.  The first call fixes the
  /// baseline (and scores from it); later calls score deltas against the
  /// baseline / previous window.
  void Observe(const HealthSample& cumulative);

  std::uint64_t windows() const { return windows_; }
  /// EWMA-smoothed score; >= 1 means failing.
  double score() const { return score_; }
  HealthState state() const;
  const HealthSignals& signals() const { return signals_; }
  /// Per-window smoothed score (exporter counter tracks).
  const std::vector<double>& score_series() const { return score_series_; }

  /// Deterministic snapshot: {"state", "score", "windows", "signals":
  /// {"spare", "wear", "media", "gc", "program"}}.
  campaign::Json ToJson() const;

 private:
  HealthConfig config_;
  std::uint64_t windows_ = 0;
  double score_ = 0.0;
  HealthSignals signals_;
  std::vector<double> score_series_;
  HealthSample baseline_;
  HealthSample prev_;
};

}  // namespace ctflash::obs
