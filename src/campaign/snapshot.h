// Device-state snapshots: pay a prefill once per device shape, clone it per
// campaign arm.
//
// A DeviceState is the complete serialized state of one simulated device —
// mapping table, block manager + free-list order, write-frontier sets, PPB
// virtual-block/hotness structures, wear and error counters, resource
// timeline clocks, and RNG streams — everything that determines how the
// simulation evolves from here.  Restoring it into a freshly constructed
// Ssd of the same SHAPE (see SnapshotShapeKey) is bit-identical to having
// run the producing history on that instance directly; the campaign bench
// asserts this property end to end.
//
// The serialized envelope is versioned (magic + format version) and
// CRC-protected so corrupt or mismatched snapshots are rejected with a
// clear error instead of silently mis-restoring a device.
//
// Deliberately NOT part of the shape key: FtlConfig::gc_routing.  The GC
// routing only changes behaviour once a scheduler attaches a GC sink, which
// never happens during a synchronous prefill — so inline- and
// scheduled-routing arms of one campaign share a single prefill snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace ctflash::ssd {
struct SsdConfig;
}

namespace ctflash::campaign {

struct DeviceState {
  /// Bump on any change to the payload encoding or the envelope layout.
  /// v2: block-manager retirement fields, FTL fault counters, host/GC read
  /// error stat split, optional fault-injector section.
  static constexpr std::uint32_t kFormatVersion = 2;

  /// Canonical description of the producing device's configuration; Restore
  /// refuses state whose shape key differs from the target device's.
  std::string shape_key;

  /// Simulated time at which the snapshot was taken (e.g. the prefill-end
  /// clock).  Consumers advance their event queue here before continuing so
  /// restored runs and straight-through runs share a time base.
  Us clock_us = 0;

  /// Component state bytes (util::StateWriter encoding).
  std::vector<std::uint8_t> payload;

  /// Envelope encoding: magic, format version, shape key, clock, payload,
  /// CRC-32 trailer.
  std::vector<std::uint8_t> Serialize() const;

  /// Parses and validates an envelope.  Throws std::runtime_error naming
  /// the failure (bad magic, unsupported version, CRC mismatch, truncation).
  static DeviceState Deserialize(const std::vector<std::uint8_t>& bytes);

  std::size_t PayloadBytes() const { return payload.size(); }
};

/// Canonical string over every SsdConfig field that affects how device
/// state evolves: geometry, timing, timing mode, endurance, error model,
/// FTL knobs, FTL kind and (for PPB) the PPB knobs.  Excludes gc_routing —
/// see file header.  Two configs with equal keys produce interchangeable
/// snapshots.
std::string SnapshotShapeKey(const ssd::SsdConfig& config);

}  // namespace ctflash::campaign
