// Trace replay engine — streaming scale + mixed-tenant QoS replay.
//
// Three arms, all self-asserting (std::runtime_error on violation, the
// bench error idiom):
//
//  1. Streaming scale: generates a >= 1M-record web/SQL trace, round-trips
//     it through an MSR CSV file, and streams it back through a
//     ReplayPlan (hash-scatter remap) with a 4096-record decode window.
//     Asserts every record arrives AND the peak resident record count
//     stays <= the window — O(window), not O(trace) — then runs the
//     streaming WorkloadProfiler over the same file and checks it
//     recovers the configured read fraction.
//
//  2. Mixed-tenant replay: a media-server trace (tenant "media", DRR
//     weight 8, rate-targeted to 1k IOPS of large streaming reads) and a
//     web/SQL trace time-warped to a saturating 30k IOPS (tenant "web",
//     weight 1) merge onto one device through the multi-queue host
//     interface with scheduler-visible GC.  Asserts conservation (every
//     merged record completes), that 8:1 weights bound the media tenant's
//     read p99 to <= 2x its solo baseline, and — the contrast arm — that
//     the same mix with the weights inverted (media 1, web 8) blows the
//     media p99 out by >= 4x (observed ~5000x): the isolation comes from
//     the weights, not from slack capacity.  Exports full latency CDFs
//     (solo + per-tenant mixed) with detected knees.
//
//  3. Sample smoke (--trace-file <csv>, CI): splits the checked-in
//     two-host sample CSV into per-host tenant streams
//     (--tenant-trace <t>=<csv>@<host> overrides) and replays the mix,
//     asserting conservation end-to-end.
//
// Writes BENCH_trace_replay.json (--json overrides).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness.h"
#include "host/host_interface.h"
#include "replay/latency_cdf.h"
#include "replay/replay_engine.h"
#include "replay/replay_plan.h"
#include "replay/trace_source.h"
#include "replay/workload_profile.h"
#include "util/table_printer.h"

namespace {

using namespace ctflash;

constexpr std::uint64_t kStreamRecords = 1'000'000;

// The three mixed-replay arms (solo / weighted / inverted) share one device
// shape and 80 % prefill; the snapshot cache prefills once and restores
// twice (bit-identical state, asserted by bench_campaign).
bench::PrefillSnapshotCache g_prefills;
constexpr std::size_t kStreamWindow = 4096;
constexpr double kIsolationBound = 2.0;  ///< mixed media p99 <= bound * solo
/// Inverted-weights contrast: with the flood holding weight 8 instead, the
/// media tenant's p99 must blow out by at least this factor over the
/// correctly-weighted mix (observed ~5000x; the floor is deliberately slack).
constexpr double kContrastFloor = 4.0;
/// The media trace replays rate-targeted at 1k IOPS (~10k page-ops/s of
/// large streaming reads, comfortably inside the tenant's 8/9 weighted
/// share of the device) while the web trace is warped to a saturating 30k.
constexpr double kMediaTargetIops = 1'000.0;
constexpr double kWebTargetIops = 30'000.0;

struct StreamArmResult {
  std::uint64_t records = 0;
  std::size_t peak_resident = 0;
  std::uint64_t emitted = 0;
  std::uint64_t clipped = 0;
  double profiled_read_fraction = 0.0;
};

/// Arm 1: 1M-record CSV stream with bounded resident window.
StreamArmResult RunStreamArm() {
  const std::string csv_path = "bench_trace_replay_stream.csv";
  const auto workload = trace::WebServerWorkload(8ull << 30, kStreamRecords);
  {
    // Write the CSV incrementally — the generator side is O(1) resident too.
    std::ofstream out(csv_path);
    if (!out) throw std::runtime_error("cannot write " + csv_path);
    trace::SyntheticTraceGenerator generator(workload);
    std::vector<trace::TraceRecord> chunk;
    for (std::uint64_t i = 0; i < kStreamRecords; ++i) {
      chunk.push_back(generator.Next());
      if (chunk.size() == kStreamWindow || i + 1 == kStreamRecords) {
        trace::WriteMsrCsv(chunk, out);
        chunk.clear();
      }
    }
  }

  replay::StreamingMsrCsvSource::Options source_opts;
  source_opts.window_records = kStreamWindow;
  auto source = std::make_unique<replay::StreamingMsrCsvSource>(csv_path,
                                                                source_opts);
  replay::StreamingMsrCsvSource* source_view = source.get();

  replay::ReplayPlan plan;
  replay::SourceOptions opts;
  opts.name = "stream";
  opts.remap.policy = replay::RemapPolicy::kHashScatter;
  opts.remap.footprint_bytes = 256 * kMiB;
  plan.AddSource(std::move(source), opts);

  StreamArmResult result;
  while (auto record = plan.Next()) result.records++;
  result.peak_resident = source_view->PeakResidentRecords();
  result.emitted = plan.CountersOf(0).emitted;
  result.clipped = plan.CountersOf(0).clipped;

  std::ostringstream os;
  if (plan.CountersOf(0).pulled != kStreamRecords) {
    os << "stream arm lost records: pulled " << plan.CountersOf(0).pulled
       << " of " << kStreamRecords;
    throw std::runtime_error(os.str());
  }
  if (result.records != result.emitted) {
    throw std::runtime_error("stream arm: merged count != emitted count");
  }
  // The bounded-memory claim: O(window), not O(trace).
  if (result.peak_resident > kStreamWindow ||
      result.peak_resident * 100 > kStreamRecords) {
    os << "stream arm resident window not bounded: peak "
       << result.peak_resident << " records (window " << kStreamWindow
       << ", trace " << kStreamRecords << ")";
    throw std::runtime_error(os.str());
  }

  // Second pass: the streaming characterizer over the same file.
  replay::StreamingMsrCsvSource profile_source(csv_path, source_opts);
  const auto profile = replay::Characterize(profile_source);
  result.profiled_read_fraction = profile.ReadFraction();
  if (profile.requests != kStreamRecords) {
    throw std::runtime_error("profiler lost records");
  }
  if (result.profiled_read_fraction < workload.read_fraction - 0.02 ||
      result.profiled_read_fraction > workload.read_fraction + 0.02) {
    os << "profiled read fraction " << result.profiled_read_fraction
       << " far from configured " << workload.read_fraction;
    throw std::runtime_error(os.str());
  }
  std::cout << "\n--- streamed profile (1M-record CSV, window "
            << kStreamWindow << ") ---\n"
            << replay::ProfileSummary(profile) << "\n";
  std::remove(csv_path.c_str());
  return result;
}

// --- arm 2: mixed-tenant media vs web replay -------------------------------

qos::QosConfig MixedTenants(std::uint32_t media_weight,
                            std::uint32_t web_weight) {
  qos::QosConfig qos;
  qos.tenants.resize(2);
  qos.tenants[0].name = "media";
  qos.tenants[0].weight = media_weight;
  qos.tenants[0].queues = {0, 1};
  qos.tenants[1].name = "web";
  qos.tenants[1].weight = web_weight;
  qos.tenants[1].queues = {2, 3};
  return qos;
}

struct MixedArmResult {
  double solo_p99_us = 0.0;
  double mixed_media_p99_us = 0.0;
  double mixed_web_p99_us = 0.0;
  double inverted_media_p99_us = 0.0;
  double media_iops = 0.0;
  double web_iops = 0.0;
  std::uint64_t merged_records = 0;
  std::vector<replay::CdfPoint> solo_cdf;
  std::vector<replay::CdfPoint> media_cdf;
  std::vector<replay::CdfPoint> web_cdf;
  std::vector<replay::ReplayWindow> windows;
};

/// Media source (tenant 0) remapped into the lower device half and
/// rate-targeted to kMediaTargetIops; when `with_web`, the web source
/// (tenant 1) joins, hash-scattered into the upper half and time-warped to
/// `web_target_iops`.
replay::ReplayResult RunMixedReplay(std::uint64_t device_bytes,
                                    std::uint64_t media_requests,
                                    std::uint64_t web_requests,
                                    bool with_web, double web_target_iops,
                                    std::uint32_t media_weight,
                                    std::uint32_t web_weight, Us window_us) {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, device_bytes,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  // The web flood is write-heavy: GC must be scheduler-visible (preemptible
  // by tenant reads) or inline GC bursts would stall the media tenant no
  // matter how the DRR weights are set.
  cfg.ftl.gc_routing = ftl::GcRouting::kScheduled;
  ssd::Ssd ssd(cfg);
  const Us prefill_end =
      g_prefills.Prefill(ssd, ssd.LogicalBytes() / 100 * 80);

  host::HostConfig host_cfg;
  host_cfg.qos = MixedTenants(media_weight, web_weight);
  host_cfg.device_slots = 4;
  host::HostInterface host(ssd, host_cfg);
  host.AdvanceTo(prefill_end);

  const std::uint64_t logical = ssd.LogicalBytes();
  replay::ReplayPlan plan;

  const auto media_cfg = trace::MediaServerWorkload(4ull << 30, media_requests,
                                                    /*seed=*/31);
  replay::SourceOptions media;
  media.name = "media";
  media.tenant = 0;
  media.remap.policy = replay::RemapPolicy::kWrap;
  media.remap.footprint_bytes = logical / 2;
  media.warp.target_iops = kMediaTargetIops;
  {
    // Resolve the rate target from the source's native rate (profile pass).
    replay::SyntheticTraceSource probe(media_cfg);
    const auto profile = replay::Characterize(probe);
    media.warp.ResolveRateTarget(profile.requests, profile.duration_us);
  }
  plan.AddSource(std::make_unique<replay::SyntheticTraceSource>(media_cfg),
                 media);

  if (with_web) {
    const auto web_cfg = trace::WebServerWorkload(4ull << 30, web_requests,
                                                  /*seed=*/32);
    replay::SourceOptions web;
    web.name = "web";
    web.tenant = 1;
    web.remap.policy = replay::RemapPolicy::kHashScatter;
    web.remap.footprint_bytes = logical / 2;
    web.remap.base_bytes = logical / 2;
    web.warp.target_iops = web_target_iops;
    // Resolve the rate target from the source's native rate (profile pass).
    replay::SyntheticTraceSource probe(web_cfg);
    const auto profile = replay::Characterize(probe);
    web.warp.ResolveRateTarget(profile.requests, profile.duration_us);
    plan.AddSource(std::make_unique<replay::SyntheticTraceSource>(web_cfg),
                   web);
  }

  replay::ReplayEngineConfig engine_cfg;
  engine_cfg.window_us = window_us;
  replay::ReplayEngine engine(host, engine_cfg);
  const auto result = engine.Run(plan);

  // Conservation: every record the plan emitted was submitted and completed.
  std::uint64_t emitted = 0;
  for (const auto& counters : result.sources) emitted += counters.emitted;
  if (result.pulled != emitted || result.submitted != emitted ||
      result.completed != emitted || host.Outstanding() != 0) {
    std::ostringstream os;
    os << "mixed replay conservation violated: emitted " << emitted
       << ", pulled " << result.pulled << ", submitted " << result.submitted
       << ", completed " << result.completed;
    throw std::runtime_error(os.str());
  }
  return result;
}

MixedArmResult RunMixedArm(std::uint64_t device_bytes,
                           std::uint64_t media_requests,
                           std::uint64_t web_requests,
                           double web_target_iops) {
  MixedArmResult arm;
  const Us window_us = 250'000;

  const auto solo = RunMixedReplay(device_bytes, media_requests, web_requests,
                                   /*with_web=*/false, 0.0, /*media_weight=*/8,
                                   /*web_weight=*/1, window_us);
  arm.solo_p99_us = solo.tenants[0].read_latency.p99_us();
  arm.solo_cdf = replay::LatencyCdf(solo.tenants[0].read_latency);

  const auto mixed = RunMixedReplay(device_bytes, media_requests, web_requests,
                                    /*with_web=*/true, web_target_iops,
                                    /*media_weight=*/8, /*web_weight=*/1,
                                    window_us);
  arm.mixed_media_p99_us = mixed.tenants[0].read_latency.p99_us();
  arm.mixed_web_p99_us = mixed.tenants[1].read_latency.p99_us();
  arm.media_iops = mixed.tenants[0].Iops();
  arm.web_iops = mixed.tenants[1].Iops();
  arm.merged_records = mixed.completed;
  arm.media_cdf = replay::LatencyCdf(mixed.tenants[0].read_latency);
  arm.web_cdf = replay::LatencyCdf(mixed.tenants[1].read_latency);
  arm.windows = mixed.windows;

  // Contrast arm: identical traces, weights inverted — the flood now holds
  // weight 8, so the media tenant's share falls below its offered load and
  // its queue grows without bound.  This is what makes the 8:1 result a
  // property of the weights, not of slack capacity.
  const auto inverted = RunMixedReplay(device_bytes, media_requests,
                                       web_requests, /*with_web=*/true,
                                       web_target_iops, /*media_weight=*/1,
                                       /*web_weight=*/8, window_us);
  arm.inverted_media_p99_us = inverted.tenants[0].read_latency.p99_us();

  std::ostringstream os;
  if (!(arm.mixed_media_p99_us <= kIsolationBound * arm.solo_p99_us)) {
    os << "8:1 weights fail the isolation bound: media p99 "
       << arm.mixed_media_p99_us << " us mixed vs " << arm.solo_p99_us
       << " us solo (bound " << kIsolationBound << "x)";
    throw std::runtime_error(os.str());
  }
  if (!(arm.inverted_media_p99_us >=
        kContrastFloor * arm.mixed_media_p99_us)) {
    os << "inverted weights show no contrast: media p99 "
       << arm.inverted_media_p99_us << " us at 1:8 vs "
       << arm.mixed_media_p99_us << " us at 8:1 (floor " << kContrastFloor
       << "x)";
    throw std::runtime_error(os.str());
  }
  return arm;
}

// --- arm 3: sample-CSV smoke ------------------------------------------------

struct SampleArmResult {
  std::string path;
  std::uint64_t records = 0;
  std::uint64_t completed = 0;
  std::vector<replay::SourceCounters> sources;
};

SampleArmResult RunSampleArm(const ctflash::bench::BenchOptions& options) {
  SampleArmResult arm;
  std::vector<ctflash::bench::TenantTraceOption> specs = options.tenant_traces;
  if (specs.empty()) {
    // Default split of the checked-in sample: its two well-known hosts.
    specs.push_back({0, options.trace_file, "mds0"});
    specs.push_back({1, options.trace_file, "web0"});
  }
  arm.path = specs.front().path;

  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 256ull << 20,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  ssd::Ssd ssd(cfg);

  host::HostConfig host_cfg;
  host_cfg.qos = MixedTenants(/*media_weight=*/8, /*web_weight=*/1);
  host::HostInterface host(ssd, host_cfg);

  replay::ReplayPlan plan;
  ctflash::bench::AddTenantTraceSources(plan, specs, ssd.LogicalBytes(),
                                        host_cfg.qos.tenants.size());

  replay::ReplayEngine engine(host, replay::ReplayEngineConfig{});
  const auto result = engine.Run(plan);
  std::uint64_t emitted = 0;
  for (const auto& counters : result.sources) {
    arm.sources.push_back(counters);
    emitted += counters.emitted;
    arm.records += counters.pulled;
  }
  arm.completed = result.completed;
  if (arm.records == 0 || result.completed != emitted ||
      host.Outstanding() != 0) {
    std::ostringstream os;
    os << "sample smoke conservation violated: pulled " << arm.records
       << ", emitted " << emitted << ", completed " << result.completed;
    throw std::runtime_error(os.str());
  }
  return arm;
}

// --- reporting --------------------------------------------------------------

void PrintWindows(const std::vector<replay::ReplayWindow>& windows) {
  util::TablePrinter table({"t (ms)", "arrivals", "done", "IOPS", "read p50",
                            "read p99", "QD"});
  const std::size_t step = windows.size() > 12 ? windows.size() / 12 : 1;
  for (std::size_t i = 0; i < windows.size(); i += step) {
    const auto& w = windows[i];
    table.AddRow({util::TablePrinter::FormatDouble(
                      static_cast<double>(w.start_us) / 1000.0, 0),
                  std::to_string(w.arrivals), std::to_string(w.completions),
                  util::TablePrinter::FormatDouble(w.iops, 0),
                  util::TablePrinter::FormatDouble(w.read_p50_us, 1),
                  util::TablePrinter::FormatDouble(w.read_p99_us, 1),
                  std::to_string(w.outstanding_end)});
  }
  table.Print();
}

void WriteJson(const std::string& path, const StreamArmResult& stream,
               const MixedArmResult& mixed, const SampleArmResult* sample) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n"
      << "  \"bench\": \"trace_replay\",\n"
      << "  \"stream\": {\"records\": " << stream.records
      << ", \"window_records\": " << kStreamWindow
      << ", \"peak_resident_records\": " << stream.peak_resident
      << ", \"clipped\": " << stream.clipped
      << ", \"profiled_read_fraction\": " << stream.profiled_read_fraction
      << "},\n"
      << "  \"mixed\": {\n"
      << "    \"media_solo_read_p99_us\": " << mixed.solo_p99_us << ",\n"
      << "    \"media_mixed_read_p99_us\": " << mixed.mixed_media_p99_us
      << ",\n"
      << "    \"media_inverted_read_p99_us\": " << mixed.inverted_media_p99_us
      << ",\n"
      << "    \"web_mixed_read_p99_us\": " << mixed.mixed_web_p99_us << ",\n"
      << "    \"media_iops\": " << mixed.media_iops << ",\n"
      << "    \"web_iops\": " << mixed.web_iops << ",\n"
      << "    \"merged_records\": " << mixed.merged_records << ",\n"
      << "    \"isolation_bound\": " << kIsolationBound << ",\n"
      << "    \"contrast_floor\": " << kContrastFloor << ",\n";
  const auto knee = [](const std::vector<replay::CdfPoint>& cdf) {
    const std::size_t k = replay::KneeIndex(cdf);
    return k < cdf.size() ? cdf[k].latency_us : 0.0;
  };
  out << "    \"media_solo_knee_us\": " << knee(mixed.solo_cdf) << ",\n"
      << "    \"media_mixed_knee_us\": " << knee(mixed.media_cdf) << ",\n"
      << "    \"media_solo_read_cdf\": ";
  replay::WriteCdfJson(out, mixed.solo_cdf);
  out << ",\n    \"media_mixed_read_cdf\": ";
  replay::WriteCdfJson(out, mixed.media_cdf);
  out << ",\n    \"web_mixed_read_cdf\": ";
  replay::WriteCdfJson(out, mixed.web_cdf);
  out << "\n  }";
  if (sample != nullptr) {
    out << ",\n  \"sample_smoke\": {\"path\": \"" << sample->path
        << "\", \"records\": " << sample->records
        << ", \"completed\": " << sample->completed << "}";
  }
  out << ",\n  \"prefill\": " << g_prefills.JsonObject();
  out << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using ctflash::bench::BenchOptions;
  auto options = BenchOptions::FromArgs(argc, argv);
  bool user_device = false;
  bool user_requests = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--device") user_device = true;
    if (arg == "--qd-requests") user_requests = true;
  }
  if (!user_device) options.device_bytes = 256ull << 20;
  const std::uint64_t web_requests = user_requests ? options.qd_requests
                                                   : 40'000;
  const std::uint64_t media_requests =
      std::max<std::uint64_t>(500, web_requests / 8);
  const std::string json_path =
      options.json_path.empty() ? "BENCH_trace_replay.json" : options.json_path;

  std::cout << "=== Trace replay: streaming ingest + mixed-tenant QoS ===\n"
            << "Arm 1: 1M-record MSR CSV streamed through a "
            << kStreamWindow << "-record window (bounded-memory assert).\n"
            << "Arm 2: media trace (weight 8, " << kMediaTargetIops
            << " IOPS) vs web trace rate-warped to " << kWebTargetIops
            << " IOPS (weight 1)\nmerged onto one "
            << (options.device_bytes >> 20)
            << " MiB device; media read p99 bound to " << kIsolationBound
            << "x solo, inverted\nweights must blow it out "
            << kContrastFloor << "x.\n";

  const StreamArmResult stream = RunStreamArm();
  std::cout << "\nstreamed " << stream.records << " records, peak resident "
            << stream.peak_resident << " (window " << kStreamWindow << ", "
            << stream.clipped << " clipped)\n";

  const MixedArmResult mixed = RunMixedArm(options.device_bytes,
                                           media_requests, web_requests,
                                           kWebTargetIops);

  std::cout << "\n--- mixed-tenant replay (media " << media_requests
            << " reqs @ " << kMediaTargetIops << " IOPS vs web "
            << web_requests << " reqs @ " << kWebTargetIops << " IOPS) ---\n";
  ctflash::util::TablePrinter table(
      {"tenant", "arm", "read p99 (us)", "IOPS"});
  table.AddRow({"media", "solo",
                ctflash::util::TablePrinter::FormatDouble(mixed.solo_p99_us),
                "-"});
  table.AddRow(
      {"media", "mixed 8:1",
       ctflash::util::TablePrinter::FormatDouble(mixed.mixed_media_p99_us),
       ctflash::util::TablePrinter::FormatDouble(mixed.media_iops, 0)});
  table.AddRow(
      {"web", "mixed 8:1",
       ctflash::util::TablePrinter::FormatDouble(mixed.mixed_web_p99_us),
       ctflash::util::TablePrinter::FormatDouble(mixed.web_iops, 0)});
  table.AddRow(
      {"media", "mixed 1:8",
       ctflash::util::TablePrinter::FormatDouble(mixed.inverted_media_p99_us),
       "-"});
  table.Print();
  std::cout << "\nWindowed telemetry (mixed arm):\n";
  PrintWindows(mixed.windows);

  const bool run_sample =
      !options.trace_file.empty() || !options.tenant_traces.empty();
  SampleArmResult sample;
  if (run_sample) {
    sample = RunSampleArm(options);
    std::cout << "\nsample smoke: " << sample.records << " records from "
              << sample.path << " -> " << sample.completed
              << " completed across " << sample.sources.size()
              << " tenant streams\n";
  }

  std::cout << "\nmedia read p99: " << mixed.mixed_media_p99_us
            << " us mixed vs " << mixed.solo_p99_us << " us solo (bound "
            << kIsolationBound << "x); inverted weights: "
            << mixed.inverted_media_p99_us << " us (contrast floor "
            << kContrastFloor << "x)\n"
            << "prefill snapshots: " << g_prefills.distinct_prefills()
            << " prefills, " << g_prefills.restores() << " restores, ~"
            << g_prefills.saved_wall_ms() << " ms saved\n"
            << "\nAll assertions passed; JSON written to " << json_path
            << "\n";
  WriteJson(json_path, stream, mixed, run_sample ? &sample : nullptr);
  return 0;
}
