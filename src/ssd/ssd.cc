#include "ssd/ssd.h"

#include <stdexcept>

namespace ctflash::ssd {

const char* FtlKindName(FtlKind kind) {
  switch (kind) {
    case FtlKind::kConventional:
      return "conventional";
    case FtlKind::kPpb:
      return "ppb";
  }
  return "?";
}

void SsdConfig::Validate() const {
  geometry.Validate();
  timing.Validate();
  ftl.Validate();
  ppb.Validate();
  if (model_read_errors) error_model.Validate();
  if (endurance_pe_cycles == 0) {
    throw std::invalid_argument("SsdConfig: endurance must be > 0");
  }
  if (ftl.gc_routing == ftl::GcRouting::kScheduled &&
      timing_mode != ftl::TimingMode::kQueued) {
    // Scheduled GC arbitrates against die occupancy; without queued
    // timelines the conflict keys and erase serialization are meaningless
    // and every reported latency would silently be garbage.
    throw std::invalid_argument(
        "SsdConfig: gc_routing = kScheduled requires TimingMode::kQueued");
  }
}

SsdConfig Table1Config(FtlKind kind) {
  SsdConfig cfg;  // geometry/timing defaults are Table 1 already
  cfg.kind = kind;
  return cfg;
}

SsdConfig ScaledConfig(FtlKind kind, std::uint64_t device_bytes,
                       std::uint32_t page_size_bytes, double speed_ratio) {
  return ScaledConfig(kind, device_bytes, page_size_bytes, speed_ratio,
                      nand::NandGeometry{});
}

SsdConfig ScaledConfig(FtlKind kind, std::uint64_t device_bytes,
                       std::uint32_t page_size_bytes, double speed_ratio,
                       const nand::NandGeometry& base_shape) {
  SsdConfig cfg;
  cfg.kind = kind;
  cfg.geometry = base_shape;
  cfg.geometry.page_size_bytes = page_size_bytes;
  cfg.geometry = nand::ScaledGeometry(cfg.geometry, device_bytes);
  cfg.timing.speed_ratio = speed_ratio;
  // Small scaled devices have few blocks; guarantee the over-provisioned
  // spare pool still covers the GC thresholds plus open blocks.
  const double min_spare_blocks =
      static_cast<double>(cfg.ftl.gc_threshold_high) + 16.0;
  const double min_op =
      min_spare_blocks / static_cast<double>(cfg.geometry.TotalBlocks());
  if (min_op > cfg.ftl.op_ratio) cfg.ftl.op_ratio = min_op;
  cfg.Validate();
  return cfg;
}

Ssd::Ssd(const SsdConfig& config) : config_(config) {
  config_.Validate();
  target_ = std::make_unique<ftl::FlashTarget>(config_.geometry, config_.timing,
                                               config_.endurance_pe_cycles,
                                               config_.timing_mode);
  if (config_.model_read_errors) {
    target_->ArmErrorModel(config_.error_model, config_.error_model_seed);
  }
  switch (config_.kind) {
    case FtlKind::kConventional:
      ftl_ = std::make_unique<ftl::ConventionalFtl>(*target_, config_.ftl);
      break;
    case FtlKind::kPpb: {
      auto ppb = std::make_unique<core::PpbFtl>(*target_, config_.ftl,
                                                config_.ppb);
      ppb_ = ppb.get();
      ftl_ = std::move(ppb);
      break;
    }
  }
}

ftl::RequestResult Ssd::Read(std::uint64_t offset_bytes,
                             std::uint64_t size_bytes, Us arrival_us) {
  return ftl_->Read(offset_bytes, size_bytes, arrival_us);
}

ftl::RequestResult Ssd::Write(std::uint64_t offset_bytes,
                              std::uint64_t size_bytes, Us arrival_us) {
  return ftl_->Write(offset_bytes, size_bytes, arrival_us);
}

void Ssd::SubmitRead(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                     sim::EventQueue& queue, CompletionCallback cb) {
  const auto r = ftl_->Read(offset_bytes, size_bytes, queue.Now());
  queue.ScheduleAt(r.completion_us,
                   [cb = std::move(cb), r](Us) { cb(r); });
}

void Ssd::SubmitWrite(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                      sim::EventQueue& queue, CompletionCallback cb) {
  const auto r = ftl_->Write(offset_bytes, size_bytes, queue.Now());
  queue.ScheduleAt(r.completion_us,
                   [cb = std::move(cb), r](Us) { cb(r); });
}

void Ssd::SubmitGc(const sched::FlashTransaction& txn, sim::EventQueue& queue,
                   CompletionCallback cb) {
  ftl::RequestResult r;
  r.arrival_us = queue.Now();
  r.pages = 1;
  r.completion_us = ftl_->ExecuteGcTransaction(txn, r.arrival_us);
  if (r.completion_us < r.arrival_us) r.completion_us = r.arrival_us;
  queue.ScheduleAt(r.completion_us,
                   [cb = std::move(cb), r](Us) { cb(r); });
}

}  // namespace ctflash::ssd
