#include "core/two_level_lru.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/random.h"

namespace ctflash::core {
namespace {

using Tier = TwoLevelLru::Tier;

TEST(TwoLevelLru, ZeroCapacityRejected) {
  EXPECT_THROW(TwoLevelLru(0, 1), std::invalid_argument);
  EXPECT_THROW(TwoLevelLru(1, 0), std::invalid_argument);
}

TEST(TwoLevelLru, NewWriteEntersHotList) {
  TwoLevelLru lru(4, 4);
  const auto out = lru.OnWrite(10);
  EXPECT_EQ(out.tier, Tier::kHot);
  EXPECT_FALSE(out.demoted_to_cold.has_value());
  EXPECT_EQ(lru.TierOf(10), Tier::kHot);
  EXPECT_EQ(lru.HotSize(), 1u);
}

TEST(TwoLevelLru, ReadPromotesHotToIron) {
  TwoLevelLru lru(4, 4);
  lru.OnWrite(10);
  const auto out = lru.OnRead(10);
  EXPECT_EQ(out.tier, Tier::kIronHot);
  EXPECT_EQ(lru.TierOf(10), Tier::kIronHot);
  EXPECT_EQ(lru.HotSize(), 0u);
  EXPECT_EQ(lru.IronSize(), 1u);
}

TEST(TwoLevelLru, ReadOfUnknownLpnDoesNothing) {
  TwoLevelLru lru(4, 4);
  const auto out = lru.OnRead(99);
  EXPECT_EQ(out.tier, Tier::kNone);
  EXPECT_FALSE(out.demoted_to_cold.has_value());
  EXPECT_EQ(lru.HotSize() + lru.IronSize(), 0u);
}

TEST(TwoLevelLru, IronWriteStaysIron) {
  TwoLevelLru lru(4, 4);
  lru.OnWrite(10);
  lru.OnRead(10);
  const auto out = lru.OnWrite(10);  // Algorithm 1: dedup + reinsert as iron
  EXPECT_EQ(out.tier, Tier::kIronHot);
  EXPECT_EQ(lru.IronSize(), 1u);
  EXPECT_EQ(lru.HotSize(), 0u);
}

TEST(TwoLevelLru, HotOverflowDemotesLruTailToCold) {
  TwoLevelLru lru(2, 2);
  lru.OnWrite(1);
  lru.OnWrite(2);
  const auto out = lru.OnWrite(3);  // hot = {3, 2}, 1 falls out
  ASSERT_TRUE(out.demoted_to_cold.has_value());
  EXPECT_EQ(*out.demoted_to_cold, 1u);
  EXPECT_EQ(lru.TierOf(1), Tier::kNone);
  EXPECT_EQ(lru.HotSize(), 2u);
}

TEST(TwoLevelLru, IronOverflowCascadesThroughHot) {
  TwoLevelLru lru(1, 1);
  lru.OnWrite(1);
  lru.OnRead(1);  // iron = {1}
  lru.OnWrite(2);  // hot = {2}
  const auto out = lru.OnRead(2);  // 2 -> iron, 1 -> hot head; hot empty now
  EXPECT_FALSE(out.demoted_to_cold.has_value());
  EXPECT_EQ(lru.TierOf(2), Tier::kIronHot);
  EXPECT_EQ(lru.TierOf(1), Tier::kHot);
  // One more promotion: 1 -> iron pushes 2 -> hot.
  lru.OnWrite(3);  // hot = {3, 1(overflow)} -> capacity 1: 1 demoted to cold
  EXPECT_EQ(lru.TierOf(3), Tier::kHot);
  EXPECT_EQ(lru.TierOf(1), Tier::kNone);
}

TEST(TwoLevelLru, RewriteRefreshesRecency) {
  TwoLevelLru lru(2, 2);
  lru.OnWrite(1);
  lru.OnWrite(2);
  lru.OnWrite(1);  // 1 becomes MRU again
  const auto out = lru.OnWrite(3);
  ASSERT_TRUE(out.demoted_to_cold.has_value());
  EXPECT_EQ(*out.demoted_to_cold, 2u);  // 2 was LRU, not 1
}

TEST(TwoLevelLru, EraseRemovesEntry) {
  TwoLevelLru lru(4, 4);
  lru.OnWrite(1);
  lru.OnRead(1);
  lru.Erase(1);
  EXPECT_EQ(lru.TierOf(1), Tier::kNone);
  EXPECT_EQ(lru.IronSize(), 0u);
  lru.Erase(1);  // no-op on absent
}

TEST(TwoLevelLru, TailAccessors) {
  TwoLevelLru lru(4, 4);
  EXPECT_FALSE(lru.HotTail().has_value());
  EXPECT_FALSE(lru.IronTail().has_value());
  lru.OnWrite(1);
  lru.OnWrite(2);
  EXPECT_EQ(lru.HotTail().value(), 1u);
  lru.OnRead(1);
  EXPECT_EQ(lru.IronTail().value(), 1u);
}

TEST(TwoLevelLru, InvariantsUnderRandomOps) {
  TwoLevelLru lru(16, 8);
  util::Xoshiro256StarStar rng(77);
  for (int i = 0; i < 20000; ++i) {
    const Lpn lpn = rng.UniformBelow(64);
    const auto action = rng.UniformBelow(3);
    if (action == 0) {
      lru.OnWrite(lpn);
    } else if (action == 1) {
      lru.OnRead(lpn);
    } else {
      lru.Erase(lpn);
    }
    ASSERT_LE(lru.HotSize(), 16u);
    ASSERT_LE(lru.IronSize(), 8u);
    if (i % 1000 == 0) {
      ASSERT_TRUE(lru.CheckInvariants()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(lru.CheckInvariants());
}

/// Parameterized capacity sweep: the structure never exceeds its budgets and
/// at most one entry leaves per operation.
class LruCapacitySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LruCapacitySweep, BoundedAndLossless) {
  const auto [hot_cap, iron_cap] = GetParam();
  TwoLevelLru lru(hot_cap, iron_cap);
  util::Xoshiro256StarStar rng(hot_cap * 31 + iron_cap);
  std::size_t inserted = 0, demoted = 0;
  for (int i = 0; i < 5000; ++i) {
    const Lpn lpn = rng.UniformBelow(256);
    const bool was_tracked = lru.Contains(lpn);
    const auto out =
        rng.Bernoulli(0.5) ? lru.OnWrite(lpn) : lru.OnRead(lpn);
    if (!was_tracked && out.tier != Tier::kNone) ++inserted;
    if (out.demoted_to_cold) ++demoted;
    ASSERT_LE(lru.HotSize(), hot_cap);
    ASSERT_LE(lru.IronSize(), iron_cap);
  }
  // Conservation: tracked + demoted == inserted.
  EXPECT_EQ(lru.HotSize() + lru.IronSize() + demoted, inserted);
  EXPECT_TRUE(lru.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, LruCapacitySweep,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(4, 2),
                      std::make_pair<std::size_t, std::size_t>(32, 16),
                      std::make_pair<std::size_t, std::size_t>(100, 500)));

}  // namespace
}  // namespace ctflash::core
