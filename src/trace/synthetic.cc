#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ctflash::trace {

void SyntheticWorkloadConfig::Validate() const {
  if (num_requests == 0) {
    throw std::invalid_argument("SyntheticWorkloadConfig: num_requests == 0");
  }
  if (footprint_bytes == 0 || region_bytes == 0) {
    throw std::invalid_argument("SyntheticWorkloadConfig: zero footprint/region");
  }
  if (region_bytes > footprint_bytes) {
    throw std::invalid_argument(
        "SyntheticWorkloadConfig: region larger than footprint");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    throw std::invalid_argument("SyntheticWorkloadConfig: bad read_fraction");
  }
  if (sequential_read_fraction < 0.0 || sequential_read_fraction > 1.0) {
    throw std::invalid_argument(
        "SyntheticWorkloadConfig: bad sequential_read_fraction");
  }
  if (read_sizes.empty() || write_sizes.empty()) {
    throw std::invalid_argument("SyntheticWorkloadConfig: empty size dist");
  }
  for (const auto& sw : read_sizes) {
    if (sw.bytes == 0 || sw.weight < 0.0) {
      throw std::invalid_argument("SyntheticWorkloadConfig: bad read size entry");
    }
  }
  for (const auto& sw : write_sizes) {
    if (sw.bytes == 0 || sw.weight < 0.0) {
      throw std::invalid_argument("SyntheticWorkloadConfig: bad write size entry");
    }
  }
  if (alignment_bytes == 0) {
    throw std::invalid_argument("SyntheticWorkloadConfig: zero alignment");
  }
  if (mean_interarrival_us < 0) {
    throw std::invalid_argument("SyntheticWorkloadConfig: negative interarrival");
  }
}

namespace {
std::uint64_t NumRegions(const SyntheticWorkloadConfig& c) {
  return std::max<std::uint64_t>(1, c.footprint_bytes / c.region_bytes);
}

double TotalWeight(const std::vector<SizeWeight>& dist) {
  double sum = 0.0;
  for (const auto& sw : dist) sum += sw.weight;
  if (sum <= 0.0) {
    throw std::invalid_argument("SyntheticTraceGenerator: zero total weight");
  }
  return sum;
}
}  // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const SyntheticWorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      read_zipf_(NumRegions(config), config.read_zipf_theta),
      write_zipf_(NumRegions(config), config.write_zipf_theta),
      hot_write_zipf_(NumRegions(config), config.hot_write_zipf_theta) {
  config_.Validate();
  read_size_weight_ = TotalWeight(config_.read_sizes);
  write_size_weight_ = TotalWeight(config_.write_sizes);
  if (config_.rw_popularity_correlation < 0.0 ||
      config_.rw_popularity_correlation > 1.0) {
    throw std::invalid_argument(
        "SyntheticWorkloadConfig: rw_popularity_correlation outside [0,1]");
  }
  // Deterministic scatter of popularity ranks across the footprint; reads
  // and writes get independent scatters, blended by the correlation knob.
  auto shuffle = [](std::vector<std::uint64_t>& perm, std::uint64_t seed) {
    std::iota(perm.begin(), perm.end(), 0);
    util::Xoshiro256StarStar perm_rng(seed);
    for (std::uint64_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[perm_rng.UniformBelow(i)]);
    }
  };
  region_perm_.resize(NumRegions(config_));
  write_perm_.resize(NumRegions(config_));
  shuffle(region_perm_, config_.seed ^ 0xA5A5A5A5A5A5A5A5ull);
  shuffle(write_perm_, config_.seed ^ 0x5A5A5A5A5A5A5A5Aull);
}

std::uint64_t SyntheticTraceGenerator::SampleSize(
    const std::vector<SizeWeight>& dist, double total_weight) {
  double u = rng_.UniformDouble() * total_weight;
  for (const auto& sw : dist) {
    if (u < sw.weight) return sw.bytes;
    u -= sw.weight;
  }
  return dist.back().bytes;
}

std::uint64_t SyntheticTraceGenerator::RegionOffset(
    const util::ZipfSampler& zipf, const std::vector<std::uint64_t>& perm) {
  const std::uint64_t rank = zipf.Sample(rng_);
  const std::uint64_t region = perm[rank];
  const std::uint64_t base = region * config_.region_bytes;
  const std::uint64_t slots =
      std::max<std::uint64_t>(1, config_.region_bytes / config_.alignment_bytes);
  return base + rng_.UniformBelow(slots) * config_.alignment_bytes;
}

TraceRecord SyntheticTraceGenerator::Next() {
  TraceRecord r;
  // Exponential inter-arrival gaps.
  if (config_.mean_interarrival_us > 0) {
    const double u = rng_.UniformDouble();
    const double gap =
        -std::log(1.0 - u) * static_cast<double>(config_.mean_interarrival_us);
    clock_us_ += static_cast<Us>(std::llround(gap));
  }
  r.timestamp_us = clock_us_;

  const bool is_read = rng_.Bernoulli(config_.read_fraction);
  if (is_read) {
    r.op = OpType::kRead;
    r.size_bytes = SampleSize(config_.read_sizes, read_size_weight_);
    if (have_prev_read_ && rng_.Bernoulli(config_.sequential_read_fraction) &&
        next_sequential_offset_ + r.size_bytes <= config_.footprint_bytes) {
      r.offset_bytes = next_sequential_offset_;
    } else {
      r.offset_bytes = RegionOffset(read_zipf_, region_perm_);
    }
    next_sequential_offset_ = r.offset_bytes + r.size_bytes;
    have_prev_read_ = true;
  } else {
    r.op = OpType::kWrite;
    if (rng_.Bernoulli(config_.metadata_fraction)) {
      // Metadata update: small, and on the READ-popular end of the space
      // (metadata is both read and written).
      r.size_bytes = config_.metadata_size_bytes;
      r.offset_bytes = RegionOffset(hot_write_zipf_, region_perm_);
    } else {
      r.size_bytes = SampleSize(config_.write_sizes, write_size_weight_);
      const bool shared_rank =
          rng_.Bernoulli(config_.rw_popularity_correlation);
      r.offset_bytes = RegionOffset(
          write_zipf_, shared_rank ? region_perm_ : write_perm_);
    }
  }
  // Clip to footprint.
  if (r.offset_bytes >= config_.footprint_bytes) {
    r.offset_bytes = config_.footprint_bytes - config_.alignment_bytes;
  }
  if (r.offset_bytes + r.size_bytes > config_.footprint_bytes) {
    r.size_bytes = config_.footprint_bytes - r.offset_bytes;
  }
  return r;
}

std::vector<TraceRecord> SyntheticTraceGenerator::Generate() {
  std::vector<TraceRecord> out;
  out.reserve(config_.num_requests);
  for (std::uint64_t i = 0; i < config_.num_requests; ++i) out.push_back(Next());
  return out;
}

SyntheticWorkloadConfig MediaServerWorkload(std::uint64_t footprint_bytes,
                                            std::uint64_t num_requests,
                                            std::uint64_t seed) {
  SyntheticWorkloadConfig c;
  c.name = "media-server";
  c.num_requests = num_requests;
  c.footprint_bytes = footprint_bytes;
  c.region_bytes = std::min<std::uint64_t>(4 * kMiB, footprint_bytes);
  c.read_fraction = 0.90;
  c.read_zipf_theta = 1.10;   // popular titles get streamed repeatedly
  c.write_zipf_theta = 0.20;  // ingest spreads across the library
  c.hot_write_zipf_theta = 1.20;
  c.rw_popularity_correlation = 0.10;  // ingest targets rarely-read space
  c.sequential_read_fraction = 0.70;
  c.read_sizes = {{64 * kKiB, 0.45}, {128 * kKiB, 0.35}, {256 * kKiB, 0.20}};
  c.write_sizes = {{128 * kKiB, 0.60}, {256 * kKiB, 0.40}};  // bulk ingest
  c.metadata_fraction = 0.25;  // directory/index updates per ingest batch
  c.mean_interarrival_us = 500;
  c.seed = seed;
  return c;
}

SyntheticWorkloadConfig WebServerWorkload(std::uint64_t footprint_bytes,
                                          std::uint64_t num_requests,
                                          std::uint64_t seed) {
  SyntheticWorkloadConfig c;
  c.name = "web-sql-server";
  c.num_requests = num_requests;
  c.footprint_bytes = footprint_bytes;
  // Fine-grained popularity: hot objects are individual pages/rows, not
  // whole extents, so the region granularity stays near the page scale.
  c.region_bytes = std::min<std::uint64_t>(64 * kKiB, footprint_bytes);
  c.read_fraction = 0.60;
  c.read_zipf_theta = 1.05;  // strongly skewed hot set
  c.write_zipf_theta = 0.95; // frequent overwrites of the same rows/objects
  c.hot_write_zipf_theta = 1.20;
  // Logs/session state (write-hot, rarely read) vs content/index (read-hot):
  // only part of the write popularity coincides with the read popularity.
  c.rw_popularity_correlation = 0.35;
  c.sequential_read_fraction = 0.05;
  c.read_sizes = {{4 * kKiB, 0.50}, {8 * kKiB, 0.30}, {16 * kKiB, 0.20}};
  c.write_sizes = {{4 * kKiB, 0.45}, {8 * kKiB, 0.35}, {16 * kKiB, 0.20}};
  c.metadata_fraction = 0.15;  // index/metadata pages: read-hot and rewritten
  c.mean_interarrival_us = 100;
  c.seed = seed;
  return c;
}

}  // namespace ctflash::trace
