#include "ftl/block_manager.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ctflash::ftl {

BlockManager::BlockManager(std::uint64_t total_blocks,
                           std::uint32_t pages_per_block)
    : info_(total_blocks), pages_per_block_(pages_per_block) {
  if (total_blocks == 0 || pages_per_block == 0) {
    throw std::invalid_argument("BlockManager: zero-sized device");
  }
  for (BlockId b = 0; b < total_blocks; ++b) free_list_.push_back(b);
  min_free_ = free_list_.size();
}

void BlockManager::CheckId(BlockId block) const {
  if (block >= info_.size()) {
    throw std::out_of_range("BlockManager: block id out of range");
  }
}

std::optional<BlockId> BlockManager::AllocateBlock(
    AllocPolicy policy, const std::function<bool(BlockId)>& accept) {
  auto chosen = free_list_.end();
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (accept && !accept(*it)) continue;
    if (chosen == free_list_.end()) {
      chosen = it;
      // kById (or no wear provider): first accepted id wins — the list is
      // id-ordered, so this matches the seed's pop-lowest behavior.
      if (policy == AllocPolicy::kById || !wear_provider_) break;
      continue;
    }
    const std::uint32_t wear = wear_provider_(*it);
    const std::uint32_t best = wear_provider_(*chosen);
    if (policy == AllocPolicy::kLeastWorn ? wear < best : wear > best) {
      chosen = it;
    }
  }
  if (chosen == free_list_.end()) return std::nullopt;
  const BlockId b = *chosen;
  free_list_.erase(chosen);
  generation_++;
  if (free_list_.size() < min_free_) min_free_ = free_list_.size();
  info_[b].use = BlockUse::kOpen;
  return b;
}

void BlockManager::MarkFull(BlockId block) {
  CheckId(block);
  if (info_[block].use != BlockUse::kOpen) {
    throw std::logic_error("BlockManager::MarkFull: block not open");
  }
  info_[block].use = BlockUse::kFull;
}

void BlockManager::Release(BlockId block) {
  CheckId(block);
  if (info_[block].use == BlockUse::kFree) {
    throw std::logic_error("BlockManager::Release: block already free");
  }
  if (info_[block].valid != 0) {
    throw std::logic_error("BlockManager::Release: block still has valid pages");
  }
  info_[block].use = BlockUse::kFree;
  // Keep the free list ordered by id so allocation order is deterministic
  // and matches "arranged according to their original physical block number".
  const auto pos = std::lower_bound(free_list_.begin(), free_list_.end(), block);
  free_list_.insert(pos, block);
  generation_++;
}

void BlockManager::FlagForRetirement(BlockId block) {
  CheckId(block);
  info_[block].retire_pending = true;
}

bool BlockManager::RetirePending(BlockId block) const {
  CheckId(block);
  return info_[block].retire_pending;
}

void BlockManager::Retire(BlockId block) {
  CheckId(block);
  Info& i = info_[block];
  if (i.use == BlockUse::kRetired) return;
  if (i.valid != 0) {
    throw std::logic_error("BlockManager::Retire: block still has valid pages");
  }
  if (i.use == BlockUse::kFree) {
    const auto pos =
        std::lower_bound(free_list_.begin(), free_list_.end(), block);
    if (pos == free_list_.end() || *pos != block) {
      throw std::logic_error("BlockManager::Retire: free block not in list");
    }
    free_list_.erase(pos);
    generation_++;
    if (free_list_.size() < min_free_) min_free_ = free_list_.size();
  }
  i.use = BlockUse::kRetired;
  i.retire_pending = false;
  retired_count_++;
}

std::uint64_t BlockManager::RetireFreeIf(
    const std::function<bool(BlockId)>& pred) {
  std::vector<BlockId> doomed;
  for (const BlockId b : free_list_) {
    if (pred(b)) doomed.push_back(b);
  }
  for (const BlockId b : doomed) Retire(b);
  return doomed.size();
}

void BlockManager::AddValid(BlockId block) {
  CheckId(block);
  if (info_[block].valid >= pages_per_block_) {
    throw std::logic_error("BlockManager::AddValid: counter overflow");
  }
  info_[block].valid++;
}

void BlockManager::RemoveValid(BlockId block) {
  CheckId(block);
  if (info_[block].valid == 0) {
    throw std::logic_error("BlockManager::RemoveValid: counter underflow");
  }
  info_[block].valid--;
}

std::uint32_t BlockManager::ValidCount(BlockId block) const {
  CheckId(block);
  return info_[block].valid;
}

BlockUse BlockManager::UseOf(BlockId block) const {
  CheckId(block);
  return info_[block].use;
}

std::optional<BlockId> BlockManager::PickGcVictim(
    const std::vector<std::uint32_t>& pe_hint) const {
  std::optional<BlockId> best;
  for (BlockId b = 0; b < info_.size(); ++b) {
    if (info_[b].use != BlockUse::kFull) continue;
    if (!best) {
      best = b;
      continue;
    }
    const std::uint32_t v = info_[b].valid;
    const std::uint32_t bv = info_[*best].valid;
    if (v < bv) {
      best = b;
    } else if (v == bv && !pe_hint.empty() && pe_hint[b] < pe_hint[*best]) {
      best = b;
    }
  }
  return best;
}

std::uint64_t BlockManager::TotalValid() const {
  std::uint64_t total = 0;
  for (const auto& i : info_) total += i.valid;
  return total;
}

void BlockManager::SaveState(util::StateWriter& w) const {
  w.Tag("BLKM");
  w.PutU64(info_.size());
  for (const Info& i : info_) {
    w.PutU32(i.valid);
    w.PutU8(static_cast<std::uint8_t>(i.use));
    w.PutBool(i.retire_pending);
  }
  w.PutU64Seq(free_list_);
  w.PutU64(generation_);
  w.PutU64(min_free_);
  w.PutU64(retired_count_);
}

void BlockManager::LoadState(util::StateReader& r) {
  r.ExpectTag("BLKM");
  const std::uint64_t n = r.GetU64();
  if (n != info_.size()) {
    throw std::runtime_error("snapshot: block manager size mismatch (have " +
                             std::to_string(info_.size()) + ", state " +
                             std::to_string(n) + ")");
  }
  for (Info& i : info_) {
    i.valid = r.GetU32();
    const std::uint8_t use = r.GetU8();
    if (use > static_cast<std::uint8_t>(BlockUse::kRetired)) {
      throw std::runtime_error("snapshot: invalid block use value " +
                               std::to_string(use));
    }
    i.use = static_cast<BlockUse>(use);
    i.retire_pending = r.GetBool();
  }
  const std::vector<std::uint64_t> fl = r.GetU64Seq();
  free_list_.assign(fl.begin(), fl.end());
  generation_ = r.GetU64();
  min_free_ = r.GetU64();
  retired_count_ = r.GetU64();
}

}  // namespace ctflash::ftl
