#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::util {
namespace {

TEST(RunningMoments, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 0.0);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(RunningMoments, BasicMoments) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_NEAR(m.variance(), 4.0, 1e-12);  // classic example set
  EXPECT_NEAR(m.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(RunningMoments, SingleSampleVarianceZero) {
  RunningMoments m;
  m.Add(3.5);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.5);
  EXPECT_DOUBLE_EQ(m.min(), 3.5);
  EXPECT_DOUBLE_EQ(m.max(), 3.5);
}

TEST(RunningMoments, MergeMatchesSequential) {
  RunningMoments all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningMoments, MergeWithEmptySides) {
  RunningMoments a, b;
  a.Add(1.0);
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningMoments, ResetClears) {
  RunningMoments m;
  m.Add(5.0);
  m.Reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h;
  for (std::uint64_t i = 0; i < 1000; ++i) h.Add(100);  // all in [64,128)
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
}

TEST(LogHistogram, QuantileOrdering) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 10; ++i) h.Add(v);
  }
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(1.0));
}

TEST(LogHistogram, ZeroGoesToFirstBucket) {
  LogHistogram h;
  h.Add(0);
  h.Add(1);
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(LogHistogram, BadQuantileThrows) {
  LogHistogram h;
  h.Add(5);
  EXPECT_THROW(h.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.Quantile(1.1), std::invalid_argument);
}

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.Add(10);
  b.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LatencyStats, TotalsAndUnits) {
  LatencyStats s;
  s.Add(1'000'000);  // 1 second
  s.Add(2'000'000);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.total_us(), 3e6);
  EXPECT_DOUBLE_EQ(s.total_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_us(), 1.5e6);
  EXPECT_DOUBLE_EQ(s.max_us(), 2e6);
  EXPECT_DOUBLE_EQ(s.min_us(), 1e6);
}

TEST(LatencyStats, NegativeLatencyClampsHistogramOnly) {
  LatencyStats s;
  s.Add(-5);  // defensive: moments keep the value, histogram clamps at 0
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.total_us(), -5.0);
}

TEST(LatencyStats, SummaryMentionsLabelAndCount) {
  LatencyStats s;
  s.Add(42);
  const std::string text = s.Summary("reads");
  EXPECT_NE(text.find("reads"), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(LatencyStats, MergeAndReset) {
  LatencyStats a, b;
  a.Add(10);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_us(), 20.0);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(LatencyStats, PercentilesRoughlyOrdered) {
  LatencyStats s;
  for (Us v = 1; v <= 1000; ++v) s.Add(v);
  EXPECT_LE(s.p50_us(), s.p95_us());
  EXPECT_LE(s.p95_us(), s.p99_us());
}

}  // namespace
}  // namespace ctflash::util
