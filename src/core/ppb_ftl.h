// The Progressive Performance Booster FTL (the paper's contribution).
//
// Write path: the first-stage classifier (size check by default) routes the
// request to the hot or cold area.  Hot-area placement follows the two-level
// LRU (iron-hot updates go to fast VBs), cold-area placement follows the
// access-frequency table (read-popular data goes to fast VBs).  Placement is
// PROGRESSIVE: metadata promotions take effect physically only when data is
// rewritten by the host or relocated by GC — the strategy itself never adds
// copy traffic, which is why write latency and erase counts stay at the
// conventional baseline (paper Figures 15-18).
//
// Read path: lookup + NAND read; bookkeeping promotes hot->iron-hot
// (two-level LRU) or bumps the cold-area frequency counter.
//
// GC: greedy min-valid victim among FULL physical blocks; each valid page is
// relocated to the virtual block matching its CURRENT hotness level — this
// is the "conduct during GC" migration edge of Figure 6.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/access_frequency_table.h"
#include "core/classifier.h"
#include "core/hotness.h"
#include "core/two_level_lru.h"
#include "core/virtual_block.h"
#include "ftl/block_manager.h"
#include "ftl/ftl_base.h"
#include "ftl/mapping_table.h"

namespace ctflash::core {

struct PpbConfig {
  /// Virtual blocks per physical block (even, >= 2; paper uses 2).
  std::uint32_t vb_split = 2;
  /// Entry budgets for the hot-area LRU lists; 0 = auto-size from the
  /// logical capacity (hot 8 %, iron-hot 4 % of logical pages).
  std::uint64_t hot_lru_capacity = 0;
  std::uint64_t iron_lru_capacity = 0;
  /// Cold-area frequency table: reads needed to rank as cold
  /// (write-once-read-many), and the table's entry budget (0 = auto 25 %).
  std::uint32_t cold_promote_threshold = 2;
  std::uint64_t freq_table_capacity = 0;
  /// First-stage size-check threshold; 0 = one page (the paper's setting).
  std::uint64_t hot_size_threshold_bytes = 0;
  /// Per-area bound on open fast-class VBs (see VirtualBlockManager); 0 is
  /// the strict Algorithm-1 literal mode (ablation).
  std::uint32_t max_open_fast_vbs = 4;
  /// Ablation knobs: apply hotness-aware placement on host updates / GC.
  bool migrate_on_update = true;
  bool migrate_on_gc = true;

  void Validate() const;
};

/// PPB-specific counters (on top of ftl::FtlStats).
struct PpbStats {
  std::uint64_t hot_area_writes = 0;   ///< pages routed hot/iron-hot
  std::uint64_t cold_area_writes = 0;  ///< pages routed cold/icy-cold
  std::uint64_t iron_promotions = 0;   ///< hot -> iron-hot (on read)
  std::uint64_t cold_demotions = 0;    ///< evicted from hot area to cold area
  std::uint64_t diverted_writes = 0;   ///< Algorithm 1 rule I/II diversions
  std::uint64_t fast_class_writes = 0; ///< pages physically placed in fast VBs
  std::uint64_t slow_class_writes = 0;
  std::uint64_t gc_migrations = 0;     ///< GC relocations that changed class
  std::uint64_t fast_reads = 0;        ///< host reads served from fast VBs
  std::uint64_t slow_reads = 0;

  /// Per-hotness-level read diagnostics: page counts and accumulated layer
  /// speed factors (1.0 = slowest top layer), indexed by HotnessLevel.
  std::uint64_t reads_at_level[4] = {0, 0, 0, 0};
  double read_factor_sum[4] = {0.0, 0.0, 0.0, 0.0};

  /// GC victim diagnostics, indexed by Area (kNone unused).
  std::uint64_t gc_victims_by_area[3] = {0, 0, 0};
  std::uint64_t gc_victim_valid_by_area[3] = {0, 0, 0};

  double MeanReadFactor(HotnessLevel level) const {
    const auto i = static_cast<std::size_t>(level);
    return reads_at_level[i] == 0 ? 0.0
                                  : read_factor_sum[i] / reads_at_level[i];
  }
};

class PpbFtl : public ftl::FtlBase {
 public:
  PpbFtl(ftl::FlashTarget& target, const ftl::FtlConfig& ftl_config,
         const PpbConfig& ppb_config,
         std::unique_ptr<FirstStageClassifier> classifier = nullptr);

  std::string Name() const override { return "ppb-ftl"; }

  std::optional<Us> ProbeWriteFreeAt() const override {
    return vbm_.EarliestHostFrontierFreeAt();
  }

  const PpbConfig& ppb_config() const { return ppb_config_; }
  const PpbStats& ppb_stats() const { return ppb_stats_; }
  void ResetPpbStats() { ppb_stats_ = PpbStats{}; }

  const VirtualBlockManager& vbm() const { return vbm_; }
  const TwoLevelLru& hot_area() const { return lru_; }
  const AccessFrequencyTable& cold_area() const { return freq_; }
  const FirstStageClassifier& classifier() const { return *classifier_; }

  /// Current metadata hotness of an lpn (what GC relocation would use).
  HotnessLevel LevelOf(Lpn lpn) const;

  /// Scheduled-GC write-admission lead: one victim's relocations fan out
  /// across up to four lists (hot/cold area x fast/GC-slow class), each of
  /// which may have to claim up to `write_frontiers` fresh blocks
  /// mid-relocation, plus one fill-up claim of slack — wider than the
  /// conventional single-stream lead, so the pool still bottoms out at the
  /// GC trigger.
  std::uint64_t GcScheduleLead() const override {
    return 4ull * config().write_frontiers + 1;
  }

  /// Deep structural check across mapping, block accounting and VB lists.
  bool CheckInvariants() const;

 protected:
  Us DoRead(Lpn lpn_first, std::uint32_t pages, std::uint64_t offset_bytes,
            std::uint64_t size_bytes, Us earliest) override;
  Us DoWrite(Lpn lpn_first, std::uint32_t pages, std::uint64_t request_bytes,
             Us earliest) override;

  /// One GC relocation (dual-use: each iteration of the base inline loop,
  /// and each scheduled kGcCopy transaction): hotness re-ranking +
  /// placement with progressive migration preserved.
  Us RelocatePageForGc(Lpn lpn, Ppn src, BlockId victim, Us earliest) override;
  void OnGcVictimChosen(BlockId victim) override;
  void OnGcBlockErased(BlockId victim) override { vbm_.OnBlockErased(victim); }

  void SaveVariantState(util::StateWriter& w) const override;
  void LoadVariantState(util::StateReader& r) override;

 private:
  /// Places one logical page at `level`, running GC first when the free
  /// pool is exhausted.  Returns program completion time.
  Us PlacePage(Lpn lpn, HotnessLevel level, Us earliest);

  /// Programs `ppn` (already allocated at area/level), re-allocating on
  /// program failure until a program verifies (bounded by
  /// FlashTarget::MaxProgramAttempts; throws MediaError on exhaustion).
  /// Returns the page that finally took the data and its completion time.
  struct ProgramOutcome {
    Ppn ppn;
    Us done;
  };
  ProgramOutcome ProgramWithRetry(Ppn ppn, Area area, HotnessLevel level,
                                  bool gc_stream, Us earliest);

  /// Metadata updates for a host write; returns the placement level.
  HotnessLevel ClassifyWrite(Lpn lpn, std::uint64_t request_bytes);

  /// Placement level for a page relocated by GC.  Hot-area survivors were
  /// not modified since they were written, so they are demoted out of the
  /// hot area (Fig. 6 "demote if not modified", conducted during GC):
  /// read-popular iron-hot survivors become cold (stay on fast pages),
  /// everything else becomes icy-cold; cold-area survivors are re-ranked by
  /// the frequency table (the GC-time icy-cold -> cold promotion).
  HotnessLevel RelocationLevel(Lpn lpn, Area src_area);

  VirtualBlockManager vbm_;
  TwoLevelLru lru_;
  AccessFrequencyTable freq_;
  std::unique_ptr<FirstStageClassifier> classifier_;
  PpbConfig ppb_config_;
  PpbStats ppb_stats_;
};

}  // namespace ctflash::core
