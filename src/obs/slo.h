// SloMonitor: streaming windowed tail-latency tracking against an SLO
// target, with burn-rate-style breach detection.
//
// One monitor watches one latency stream (a device's reads, a tenant's
// requests).  Each window it receives either that window's own
// QuantileEstimator or the stream's CUMULATIVE estimator — in the latter
// case it subtracts the previous window's bin snapshot and quantiles the
// delta through obs::QuantileFromBins, which reproduces the estimator's
// own walk exactly.  A window breaches when its tail quantile exceeds
// `target_us` (windows with fewer than `min_samples` samples never judge —
// a two-request window has no p99).  The alert is burn-rate style: the
// breach fraction over the trailing `burn_windows` windows crossing
// `burn_threshold` trips it, so one noisy window does not page and a
// sustained burn does — exactly the error-budget framing SRE burn alerts
// use, discretized onto the simulation's deterministic epoch grid.
//
// Deterministic across worker counts: the monitor only ever sees merged
// per-device histograms from the serial director phase.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/json.h"
#include "util/stats.h"

namespace ctflash::obs {

struct SloConfig {
  double quantile = 0.99;        ///< tail quantile tracked per window
  Us target_us = 0;              ///< SLO bound on that quantile; 0 disables
  std::uint64_t min_samples = 16;  ///< windows below this never judge
  std::uint32_t burn_windows = 4;  ///< trailing span of the burn rate
  double burn_threshold = 0.5;   ///< breach fraction that trips the alert

  bool enabled() const { return target_us > 0; }
  void Validate() const;
};

class SloMonitor {
 public:
  explicit SloMonitor(const SloConfig& config = SloConfig{});

  /// Feeds one window's own histogram.
  void ObserveWindow(const util::QuantileEstimator& window);
  /// Feeds the stream's cumulative histogram; the monitor windows it by
  /// bin subtraction against the previous call's snapshot.
  void ObserveCumulative(const util::QuantileEstimator& cumulative);

  std::uint64_t windows() const { return windows_; }
  std::uint64_t breaches() const { return breaches_; }
  /// Tail quantile of the most recent window (0 when it had no samples).
  double last_quantile_us() const { return last_quantile_us_; }
  /// Breach fraction over the trailing burn_windows windows.
  double burn_rate() const;
  /// True when the burn rate has crossed burn_threshold.
  bool alerting() const;
  /// Whether the most recent window breached.
  bool last_window_breached() const {
    return !breach_log_.empty() && breach_log_.back();
  }
  /// Per-window tail quantile (exporter counter tracks).
  const std::vector<double>& quantile_series() const {
    return quantile_series_;
  }

  /// Deterministic snapshot: {"target_us", "windows", "breaches",
  /// "burn_rate", "alerting", "last_p_us"}.
  campaign::Json ToJson() const;

 private:
  void Judge(const std::vector<std::uint64_t>& window_bins);

  SloConfig config_;
  std::uint64_t windows_ = 0;
  std::uint64_t breaches_ = 0;
  double last_quantile_us_ = 0.0;
  std::vector<bool> breach_log_;       ///< one flag per window
  std::vector<double> quantile_series_;
  std::vector<std::uint64_t> prev_bins_;  ///< cumulative-mode snapshot
};

}  // namespace ctflash::obs
