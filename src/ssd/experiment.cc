#include "ssd/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "replay/replay_engine.h"
#include "replay/trace_source.h"

namespace ctflash::ssd {

double Enhancement(double base_total, double ours_total) {
  if (base_total <= 0.0) return 0.0;
  return (base_total - ours_total) / base_total;
}

ExperimentRunner::ExperimentRunner(Ssd& ssd, bool closed_loop)
    : ssd_(ssd), closed_loop_(closed_loop) {}

Us ExperimentRunner::Prefill(std::uint64_t bytes, std::uint64_t chunk_bytes) {
  if (chunk_bytes == 0) {
    throw std::invalid_argument("Prefill: chunk_bytes must be > 0");
  }
  const std::uint64_t limit = std::min(bytes, ssd_.LogicalBytes());
  const Us start = clock_us_;
  std::uint64_t offset = 0;
  while (offset < limit) {
    const std::uint64_t len = std::min(chunk_bytes, limit - offset);
    const auto r = ssd_.Write(offset, len, clock_us_);
    clock_us_ = r.completion_us;
    offset += len;
  }
  ssd_.ftl().ResetStats();
  ssd_.target().nand().ResetCounters();
  if (ssd_.ppb() != nullptr) ssd_.ppb()->ResetPpbStats();
  return clock_us_ - start;
}

bool ExperimentRunner::IssueRecord(const trace::TraceRecord& rec, Us arrival,
                                   ExperimentResult& result) {
  // Clip to the exported logical space.
  std::uint64_t offset = rec.offset_bytes;
  std::uint64_t size = rec.size_bytes;
  const std::uint64_t logical = ssd_.LogicalBytes();
  if (offset >= logical) offset %= logical;
  if (offset + size > logical) size = logical - offset;
  if (size == 0) return false;

  if (rec.op == trace::OpType::kRead) {
    const auto r = ssd_.Read(offset, size, arrival);
    result.read_latency.Add(r.LatencyUs());
    clock_us_ = std::max(clock_us_, r.completion_us);
  } else {
    const auto r = ssd_.Write(offset, size, arrival);
    result.write_latency.Add(r.LatencyUs());
    clock_us_ = std::max(clock_us_, r.completion_us);
  }
  return true;
}

void ExperimentRunner::FinalizeResult(ExperimentResult& result,
                                      const std::string& workload_name) const {
  result.ftl_name = ssd_.FtlName();
  result.workload_name = workload_name;
  const auto& stats = ssd_.ftl().stats();
  result.erase_count = stats.gc_erases;
  result.gc_page_copies = stats.gc_page_copies;
  result.host_read_pages = stats.host_read_pages;
  result.host_write_pages = stats.host_write_pages;
  result.waf = stats.Waf();
  result.sim_end_us = clock_us_;
}

ExperimentResult ExperimentRunner::Replay(
    const std::vector<trace::TraceRecord>& records,
    const std::string& workload_name) {
  ExperimentResult result;
  const Us base = clock_us_;
  for (const auto& rec : records) {
    const Us ts = base + rec.timestamp_us;
    const Us arrival = closed_loop_ ? std::max(ts, clock_us_) : ts;
    IssueRecord(rec, arrival, result);
  }
  FinalizeResult(result, workload_name);
  return result;
}

ExperimentResult ExperimentRunner::ReplayOpenLoop(
    const std::vector<trace::TraceRecord>& records,
    const std::string& workload_name) {
  // Rebased onto the replay engine's direct mode (streaming chained
  // arrivals, O(1) pending events instead of one per record).  For
  // monotone traces the issue order and times — and therefore every
  // latency sample and FTL counter — are identical to the seed
  // event-per-record loop; out-of-order arrivals are clamped to the
  // current simulated time in record order.
  replay::ReplayEngineConfig cfg;
  cfg.start_us = clock_us_;
  replay::ReplayEngine engine(ssd_, cfg);
  replay::VectorTraceSource source(records);
  const replay::ReplayResult replayed = engine.Run(source);

  ExperimentResult result;
  result.read_latency = replayed.read_latency;
  result.write_latency = replayed.write_latency;
  clock_us_ = std::max(clock_us_, replayed.max_completion_us);
  FinalizeResult(result, workload_name);
  return result;
}

ExperimentResult RunExperiment(const SsdConfig& config,
                               const std::vector<trace::TraceRecord>& records,
                               std::uint64_t footprint_bytes,
                               const std::string& workload_name) {
  Ssd ssd(config);
  ExperimentRunner runner(ssd);
  runner.Prefill(footprint_bytes);
  return runner.Replay(records, workload_name);
}

std::vector<QdSweepPoint> RunQdSweep(const SsdConfig& config,
                                     const QdSweepOptions& options) {
  if (options.prefill_pct > 100) {
    throw std::invalid_argument("RunQdSweep: prefill_pct must be <= 100");
  }
  std::vector<QdSweepPoint> points;
  for (const std::uint32_t qd : options.queue_depths) {
    SsdConfig cfg = config;
    cfg.timing_mode = ftl::TimingMode::kQueued;
    Ssd ssd(cfg);
    ExperimentRunner runner(ssd);
    const Us prefill_end =
        runner.Prefill(ssd.LogicalBytes() / 100 * options.prefill_pct);

    host::HostConfig host_cfg;
    host_cfg.device_slots = options.device_slots;
    host_cfg.queue_capacity =
        std::max<std::uint32_t>(host_cfg.queue_capacity, qd);
    host::HostInterface host(ssd, host_cfg);
    host.AdvanceTo(prefill_end);  // flash timelines are booked to here

    host::ClosedLoopGenerator::Config gen_cfg;
    gen_cfg.queue_depth = qd;
    gen_cfg.total_requests = options.requests_per_point;
    gen_cfg.read_fraction = options.read_fraction;
    gen_cfg.request_bytes = options.request_bytes;
    gen_cfg.footprint_bytes = ssd.LogicalBytes() / 100 * options.prefill_pct;
    gen_cfg.seed = options.seed;
    host::ClosedLoopGenerator generator(host, gen_cfg);
    const host::LoadStats load = generator.Run();

    QdSweepPoint point;
    point.queue_depth = qd;
    point.requests = load.requests;
    point.iops = load.Iops();
    const util::LatencyStats all = load.AllLatency();
    point.mean_us = all.mean_us();
    point.p50_us = all.p50_us();
    point.p95_us = all.p95_us();
    point.p99_us = all.p99_us();
    point.p999_us = all.p999_us();
    point.die_utilization = load.die_utilization;
    point.channel_utilization = load.channel_utilization;
    point.makespan_us = load.MakespanUs();
    points.push_back(point);
  }
  return points;
}

std::vector<TenantSweepPoint> RunTenantQdSweep(
    const SsdConfig& config, const TenantSweepOptions& options) {
  if (options.prefill_pct > 100) {
    throw std::invalid_argument("RunTenantQdSweep: prefill_pct must be <= 100");
  }
  if (!options.host.qos.Enabled()) {
    throw std::invalid_argument(
        "RunTenantQdSweep: HostConfig::qos must configure tenants");
  }
  std::vector<TenantSweepPoint> points;
  for (const std::uint32_t qd : options.queue_depths) {
    SsdConfig cfg = config;
    cfg.timing_mode = ftl::TimingMode::kQueued;
    Ssd ssd(cfg);
    ExperimentRunner runner(ssd);
    const Us prefill_end =
        runner.Prefill(ssd.LogicalBytes() / 100 * options.prefill_pct);

    host::HostConfig host_cfg = options.host;
    host_cfg.queue_capacity =
        std::max<std::uint32_t>(host_cfg.queue_capacity, qd);
    host::HostInterface host(ssd, host_cfg);
    host.AdvanceTo(prefill_end);

    std::vector<host::TenantWorkload> workloads = options.workloads;
    for (auto& w : workloads) {
      if (w.interarrival_us == 0) w.queue_depth = qd;
    }
    const auto results = host::MultiTenantGenerator(host, workloads).Run();

    const qos::TenantTable& table = *host.tenants();
    for (const auto& result : results) {
      TenantSweepPoint point;
      point.queue_depth = qd;
      point.tenant = result.tenant;
      point.requests = result.load.requests;
      point.iops = result.load.Iops();
      const util::LatencyStats all = result.load.AllLatency();
      point.mean_us = all.mean_us();
      point.p50_us = all.p50_us();
      point.p99_us = all.p99_us();
      point.p999_us = all.p999_us();
      const auto& tstats = table.StatsOf(result.tenant);
      point.throttled = tstats.throttled;
      point.throttle_wait_us = tstats.throttle_wait_us;
      point.read_dispatches = tstats.read_dispatches;
      point.write_dispatches = tstats.write_dispatches;
      point.read_deficit = table.DeficitOf(qos::ArbClass::kRead, result.tenant);
      point.write_deficit =
          table.DeficitOf(qos::ArbClass::kWrite, result.tenant);
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace ctflash::ssd
