#include "ftl/conventional_ftl.h"

#include <stdexcept>

#include "util/logging.h"

namespace ctflash::ftl {

ConventionalFtl::ConventionalFtl(FlashTarget& target, const FtlConfig& config)
    : FtlBase(target, config),
      walloc_(blocks_, target.geometry().pages_per_block,
              [this](BlockId b) { return target_.geometry().DieOfBlock(b); },
              [this](BlockId b) { return target_.DieFreeAt(b); },
              target.geometry().TotalDies(),
              WriteAllocatorConfig{config.write_frontiers,
                                   config.stripe_policy},
              // Host reserve at the GC trigger: growth never brings GC
              // forward, and a reserve at gc_threshold_high (which the pool
              // never revisits in GC steady state) would permanently
              // disable striping after the first pool drain.
              /*num_streams=*/2, /*claim_reserve=*/config.gc_threshold_low) {
  // The GC stream allocates only while GC drains the pool to its minimum,
  // so it needs a smaller cushion or it could never stripe; its claims are
  // repaid by the victim erase, and the FtlBase spare sizing keeps invalid
  // pages in FULL blocks, so GC always nets free space.
  walloc_.SetStreamReserve(kGcStream, 2);
  if (config_.wear.Enabled()) {
    blocks_.SetWearProvider(
        [this](BlockId b) { return target_.nand().PeCycles(b); });
  }
}

Us ConventionalFtl::DoRead(Lpn lpn_first, std::uint32_t pages,
                           std::uint64_t offset_bytes, std::uint64_t size_bytes,
                           Us earliest) {
  Us completion = earliest;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const Lpn lpn = lpn_first + i;
    const Ppn ppn = map_.Lookup(lpn);
    if (ppn == kInvalidPpn) continue;  // never-written data: no flash work
    const MediaReadResult rr = target_.ReadPageChecked(
        ppn, earliest, TransferBytesFor(lpn, offset_bytes, size_bytes));
    if (rr.DataLost()) OnHostReadLost(lpn);
    if (rr.done > completion) completion = rr.done;
  }
  return completion;
}

Ppn ConventionalFtl::AllocatePage(bool for_gc) {
  // Dual-pool wear leveling: hot host writes take young blocks, GC
  // survivors (cold) park on worn ones.
  const AllocPolicy policy = !blocks_.HasWearProvider() ? AllocPolicy::kById
                             : for_gc ? AllocPolicy::kMostWorn
                                      : AllocPolicy::kLeastWorn;
  const auto a =
      walloc_.AllocatePage(for_gc ? kGcStream : kHostStream, policy);
  if (!a.has_value()) {
    // The GC thresholds guarantee spare blocks in the fault-free device;
    // running dry means retirement ate the spare pool (e.g. a lost die).
    throw MediaError("ConventionalFtl: spare pool exhausted on " +
                     std::string(for_gc ? "GC" : "host") + " write stream");
  }
  return a->ppn;
}

ConventionalFtl::ProgramOutcome ConventionalFtl::ProgramWithRetry(
    Ppn ppn, bool for_gc, Us earliest) {
  MediaOpResult pr = target_.ProgramPageChecked(ppn, earliest);
  for (std::uint32_t attempt = 1; pr.failed; ++attempt) {
    OnProgramFailure(ppn, pr.die_lost);
    if (attempt >= target_.MaxProgramAttempts()) {
      throw MediaError("ConventionalFtl: page program failed " +
                       std::to_string(attempt) + " times");
    }
    ppn = AllocatePage(for_gc);
    pr = target_.ProgramPageChecked(ppn, pr.done);
  }
  return {ppn, pr.done};
}

Us ConventionalFtl::WriteOnePage(Lpn lpn, Us earliest) {
  const ProgramOutcome out =
      ProgramWithRetry(AllocatePage(/*for_gc=*/false), /*for_gc=*/false,
                       earliest);
  const Ppn old = map_.Update(lpn, out.ppn);
  if (old != kInvalidPpn) blocks_.RemoveValid(target_.geometry().BlockOf(old));
  blocks_.AddValid(target_.geometry().BlockOf(out.ppn));
  return out.done;
}

Us ConventionalFtl::RelocatePageForGc(Lpn lpn, Ppn src, BlockId victim,
                                      Us earliest) {
  // Destination allocation stays BEFORE the source read: the die striper
  // consults die availability, which the read booking would shift.
  const Ppn dst = AllocatePage(/*for_gc=*/true);
  const MediaReadResult rr =
      target_.ReadPageChecked(src, earliest, 0, ReadKind::kGc);
  // The destination page is programmed even when the source read failed:
  // the allocator already advanced the frontier and NAND forbids holes in
  // the program order.  A lost source just relocates garbage.
  const ProgramOutcome out = ProgramWithRetry(dst, /*for_gc=*/true, rr.done);
  if (rr.DataLost()) {
    OnGcReadLost(lpn, victim);
  } else {
    map_.ReleasePpn(src);
    map_.Update(lpn, out.ppn);
    blocks_.RemoveValid(victim);
    blocks_.AddValid(target_.geometry().BlockOf(out.ppn));
  }
  stats_.gc_page_copies++;
  return out.done;
}

Us ConventionalFtl::DoWrite(Lpn lpn_first, std::uint32_t pages,
                            std::uint64_t /*request_bytes*/, Us earliest) {
  const Us gc_done = MaybeRunGc(earliest);
  const Us start = config_.charge_gc_to_write ? gc_done : earliest;
  Us completion = start;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const Us done = WriteOnePage(lpn_first + i, start);
    if (done > completion) completion = done;
  }
  return completion;
}

bool ConventionalFtl::CheckInvariants() const {
  if (!map_.CheckConsistent()) return false;
  const auto& geo = target_.geometry();
  // Valid counters must equal the number of mapped pages per block.
  std::vector<std::uint32_t> valid(geo.TotalBlocks(), 0);
  for (Lpn lpn = 0; lpn < map_.logical_pages(); ++lpn) {
    const Ppn ppn = map_.Lookup(lpn);
    if (ppn == kInvalidPpn) continue;
    if (!target_.nand().IsPageProgrammed(ppn)) return false;
    valid[geo.BlockOf(ppn)]++;
  }
  for (BlockId b = 0; b < geo.TotalBlocks(); ++b) {
    if (valid[b] != blocks_.ValidCount(b)) return false;
    if (blocks_.UseOf(b) == BlockUse::kFree && !target_.nand().IsBlockErased(b)) {
      return false;
    }
  }
  return true;
}

}  // namespace ctflash::ftl
