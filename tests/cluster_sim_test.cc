// ClusterSim integration: a tiny fleet end to end.  Verifies worker-count
// determinism (the epoch-lockstep contract), healthy-cluster traffic flow,
// and the failure -> detection -> rebalance -> rebuild pipeline against the
// un-rebalanced control.  Full-scale arms live in bench_cluster.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "cluster/spec.h"

namespace ctflash::cluster {
namespace {

// Small but real: 4 devices + spare, 32 MiB each, ~4 epochs of traffic.
constexpr const char* kHealthy = R"({
  "cluster": "unit-healthy",
  "fleet": {"devices": 4, "spares": 1},
  "router": {"shards": 64, "vnodes": 32},
  "device": {"device_bytes": "32MiB", "prefill_pct": 60,
             "prefill_chunk": "256KiB"},
  "users": {"count": 20000, "zipf_theta": 0.9},
  "workload": {"rate_iops": 4000, "read_fraction": 0.8,
               "request_bytes": "16KiB", "epochs": 4, "epoch_us": 50000},
  "seed": 5
})";

std::string WithFault(const char* base, const std::string& policy) {
  Json root = Json::Parse(base);
  Json fault;
  fault["device"] = static_cast<std::uint64_t>(1);
  fault["kind"] = std::string("device");
  fault["at_us"] = static_cast<std::uint64_t>(60'000);  // inside epoch 1
  campaign::JsonArray faults;
  faults.push_back(std::move(fault));
  root["faults"] = Json(std::move(faults));
  root["rebalance"]["policy"] = policy;
  root["cluster"] = std::string("unit-fault-") + policy;
  return root.Dump();
}

TEST(ClusterSim, DeterministicAcrossWorkerCounts) {
  const ClusterSpec spec = ClusterSpec::Parse(WithFault(kHealthy, "on_failure"));
  const ClusterResult serial = ClusterSim(spec).Run(1);
  const ClusterResult parallel = ClusterSim(spec).Run(4);
  EXPECT_EQ(serial.DeterministicJson().Dump(2),
            parallel.DeterministicJson().Dump(2));
  // Wall-clock is the only thing Report() may add.
  Json a = serial.Report();
  Json b = parallel.Report();
  a.AsObject().erase("wall_ms");
  b.AsObject().erase("wall_ms");
  EXPECT_EQ(a.Dump(), b.Dump());
}

TEST(ClusterSim, HealthyClusterServesEverything) {
  const ClusterSpec spec = ClusterSpec::Parse(kHealthy);
  const ClusterResult result = ClusterSim(spec).Run(2);
  ASSERT_EQ(result.epochs.size(), 4u);
  ASSERT_EQ(result.devices.size(), 5u);  // 4 + spare
  EXPECT_EQ(result.devices_failed, 0u);
  EXPECT_EQ(result.shards_moved, 0u);
  EXPECT_TRUE(result.events.empty());
  std::uint64_t arrivals = 0, completed = 0;
  for (const EpochSummary& e : result.epochs) {
    arrivals += e.arrivals;
    EXPECT_EQ(e.timeouts, 0u);
  }
  for (const DeviceSummary& d : result.devices) {
    EXPECT_TRUE(d.alive);
    EXPECT_FALSE(d.fatal);
    EXPECT_EQ(d.rebuild_reads + d.rebuild_writes, 0u);
    completed += d.completed;
  }
  EXPECT_GT(arrivals, 0u);
  EXPECT_EQ(completed, arrivals);
  // The spare idles outside the ring.
  EXPECT_EQ(result.devices[4].completed, 0u);
  EXPECT_EQ(result.devices[4].primary_shards, 0u);
}

TEST(ClusterSim, RebalanceAdoptsSpareAndRebuilds) {
  const ClusterSpec spec = ClusterSpec::Parse(WithFault(kHealthy, "on_failure"));
  const ClusterResult result = ClusterSim(spec).Run(2);
  EXPECT_EQ(result.devices_failed, 1u);
  EXPECT_EQ(result.spares_used, 1u);
  EXPECT_GT(result.shards_moved, 0u);
  EXPECT_EQ(result.unrecoverable_shards, 0u);  // replicas=2 covers one loss
  EXPECT_GT(result.migration_ops, 0u);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].GetUintOr("device", 99), 1u);
  EXPECT_EQ(result.events[0].GetStringOr("action", ""), "rebalanced");
  // The failed device left the ring; the spare took its shards and now
  // serves + absorbs rebuild writes through the rebuild tenant.
  EXPECT_FALSE(result.devices[1].alive);
  EXPECT_GT(result.devices[4].primary_shards, 0u);
  std::uint64_t rebuild = 0;
  for (const DeviceSummary& d : result.devices) {
    rebuild += d.rebuild_reads + d.rebuild_writes;
  }
  EXPECT_GT(rebuild, 0u);
  // After the detection epoch the cluster stops burning timeouts.
  EXPECT_EQ(result.epochs.back().timeouts, 0u);
}

TEST(ClusterSim, ControlPolicyKeepsTimingOut) {
  const ClusterSpec spec = ClusterSpec::Parse(WithFault(kHealthy, "none"));
  const ClusterResult result = ClusterSim(spec).Run(2);
  EXPECT_EQ(result.devices_failed, 1u);
  EXPECT_EQ(result.shards_moved, 0u);
  EXPECT_EQ(result.migration_ops, 0u);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].GetStringOr("action", ""), "none");
  // Traffic keeps routing to the dead primary: timeouts persist to the end
  // and drag the cluster read tail to the SLA timeout.
  EXPECT_GT(result.epochs.back().timeouts, 0u);
  EXPECT_GE(result.epochs.back().read.max_us(),
            static_cast<double>(spec.timeout_us));
}

TEST(ClusterSim, CsvHasOneRowPerEpoch) {
  const ClusterSpec spec = ClusterSpec::Parse(kHealthy);
  const ClusterResult result = ClusterSim(spec).Run(2);
  const std::string csv = result.Csv();
  std::size_t rows = 0;
  for (const char c : csv) rows += c == '\n';
  EXPECT_EQ(rows, 1u + result.epochs.size());  // header + epochs
  EXPECT_NE(csv.find("unit-healthy,0,"), std::string::npos);
}

}  // namespace
}  // namespace ctflash::cluster
