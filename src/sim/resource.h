// Resource occupancy timelines.
//
// A ResourceTimeline models an exclusive FCFS resource (a NAND die, a channel
// bus): Reserve(earliest, duration) books the first slot starting at or after
// both `earliest` and the resource's current free time, and returns the
// [start, end) interval.  This captures queueing delay without a full event
// per busy period.
//
// ResourcePool is a fixed-size collection addressed by index (one timeline
// per channel / per chip).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/serial.h"
#include "util/types.h"

namespace ctflash::sim {

struct Interval {
  Us start = 0;
  Us end = 0;
  Us Duration() const { return end - start; }
};

class ResourceTimeline {
 public:
  /// Books the resource for `duration` starting no earlier than `earliest`.
  Interval Reserve(Us earliest, Us duration);

  /// First time the resource is free.
  Us FreeAt() const { return free_at_; }

  /// Total time the resource has been busy.
  Us BusyTime() const { return busy_time_; }

  /// Number of reservations made.
  std::uint64_t ReservationCount() const { return reservations_; }

  void Reset();

  void SaveState(util::StateWriter& w) const {
    w.PutI64(free_at_);
    w.PutI64(busy_time_);
    w.PutU64(reservations_);
  }
  void LoadState(util::StateReader& r) {
    free_at_ = r.GetI64();
    busy_time_ = r.GetI64();
    reservations_ = r.GetU64();
  }

 private:
  Us free_at_ = 0;
  Us busy_time_ = 0;
  std::uint64_t reservations_ = 0;
};

class ResourcePool {
 public:
  explicit ResourcePool(std::size_t count) : timelines_(count) {
    if (count == 0) {
      throw std::invalid_argument("ResourcePool: count must be > 0");
    }
  }

  ResourceTimeline& At(std::size_t index) {
    if (index >= timelines_.size()) {
      throw std::out_of_range("ResourcePool::At: index out of range");
    }
    return timelines_[index];
  }
  const ResourceTimeline& At(std::size_t index) const {
    if (index >= timelines_.size()) {
      throw std::out_of_range("ResourcePool::At: index out of range");
    }
    return timelines_[index];
  }

  std::size_t Count() const { return timelines_.size(); }

  /// Aggregate busy time across all members.
  Us TotalBusyTime() const;

  void Reset();

  void SaveState(util::StateWriter& w) const {
    w.Tag("RPOL");
    w.PutU64(timelines_.size());
    for (const auto& t : timelines_) t.SaveState(w);
  }
  /// Throws when the serialized pool size differs from this pool's.
  void LoadState(util::StateReader& r) {
    r.ExpectTag("RPOL");
    const std::uint64_t n = r.GetU64();
    if (n != timelines_.size()) {
      throw std::runtime_error("snapshot: resource pool size mismatch (have " +
                               std::to_string(timelines_.size()) + ", state " +
                               std::to_string(n) + ")");
    }
    for (auto& t : timelines_) t.LoadState(r);
  }

 private:
  std::vector<ResourceTimeline> timelines_;
};

}  // namespace ctflash::sim
