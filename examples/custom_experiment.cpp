// INI-driven experiment runner: configure the device, FTL, PPB knobs and the
// workload from a config file (no recompilation) and print the conventional
// vs PPB comparison.  With no argument a built-in sample configuration is
// used and printed, serving as living documentation of every key.
//
//   ./custom_experiment [experiment.ini]
#include <iostream>
#include <string>

#include "ssd/experiment.h"
#include "trace/synthetic.h"
#include "util/config.h"
#include "util/table_printer.h"

namespace {

constexpr const char* kSampleIni = R"(# ctflash experiment configuration (all keys optional; defaults shown)
[device]
capacity     = 2GiB      # scaled array, Table 1 block shape
page_size    = 16KiB     # 8KiB / 16KiB in the paper
speed_ratio  = 2.0       # top/bottom latency ratio R (paper: 2x..5x)
timing_mode  = service   # service | queued (chip/channel contention)
model_read_errors = false

[ftl]
op_ratio           = 0.15
gc_threshold_low   = 6
gc_threshold_high  = 10
charge_gc_to_write = false
wear_delta         = 0   # >0 enables static wear leveling

[ppb]
vb_split               = 2
cold_promote_threshold = 2
max_open_fast_vbs      = 4
migrate_on_update      = true
migrate_on_gc          = true

[workload]
kind       = web        # web | media
requests   = 300000
footprint  = 0          # 0 = 80% of logical capacity
seed       = 2
)";

ctflash::ssd::SsdConfig BuildConfig(const ctflash::util::ConfigMap& ini,
                                    ctflash::ssd::FtlKind kind) {
  using namespace ctflash;
  auto cfg = ssd::ScaledConfig(
      kind, ini.GetBytesOr("device", "capacity", 2ull << 30),
      static_cast<std::uint32_t>(ini.GetBytesOr("device", "page_size", 16384)),
      ini.GetDoubleOr("device", "speed_ratio", 2.0));
  const std::string mode =
      util::ToLower(ini.GetStringOr("device", "timing_mode", "service"));
  if (mode == "queued") {
    cfg.timing_mode = ftl::TimingMode::kQueued;
  } else if (mode != "service") {
    throw std::invalid_argument("timing_mode must be service or queued");
  }
  cfg.model_read_errors = ini.GetBoolOr("device", "model_read_errors", false);

  cfg.ftl.op_ratio = ini.GetDoubleOr("ftl", "op_ratio", cfg.ftl.op_ratio);
  cfg.ftl.gc_threshold_low = static_cast<std::uint64_t>(
      ini.GetIntOr("ftl", "gc_threshold_low", cfg.ftl.gc_threshold_low));
  cfg.ftl.gc_threshold_high = static_cast<std::uint64_t>(
      ini.GetIntOr("ftl", "gc_threshold_high", cfg.ftl.gc_threshold_high));
  cfg.ftl.charge_gc_to_write =
      ini.GetBoolOr("ftl", "charge_gc_to_write", false);
  cfg.ftl.wear.delta_threshold =
      static_cast<std::uint32_t>(ini.GetIntOr("ftl", "wear_delta", 0));

  cfg.ppb.vb_split =
      static_cast<std::uint32_t>(ini.GetIntOr("ppb", "vb_split", 2));
  cfg.ppb.cold_promote_threshold = static_cast<std::uint32_t>(
      ini.GetIntOr("ppb", "cold_promote_threshold", 2));
  cfg.ppb.max_open_fast_vbs =
      static_cast<std::uint32_t>(ini.GetIntOr("ppb", "max_open_fast_vbs", 4));
  cfg.ppb.migrate_on_update = ini.GetBoolOr("ppb", "migrate_on_update", true);
  cfg.ppb.migrate_on_gc = ini.GetBoolOr("ppb", "migrate_on_gc", true);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ctflash;

  util::ConfigMap ini;
  if (argc > 1) {
    ini = util::ConfigMap::FromFile(argv[1]);
    std::cout << "Configuration: " << argv[1] << "\n\n";
  } else {
    ini = util::ConfigMap::FromString(kSampleIni);
    std::cout << "No config given; using the built-in sample:\n\n"
              << kSampleIni << "\n";
  }

  // Build the workload once (identical trace for both FTLs).
  const auto probe_cfg = BuildConfig(ini, ssd::FtlKind::kConventional);
  ssd::Ssd probe(probe_cfg);
  std::uint64_t footprint = ini.GetBytesOr("workload", "footprint", 0);
  if (footprint == 0) footprint = probe.LogicalBytes() / 10 * 8;
  const std::uint64_t requests = static_cast<std::uint64_t>(
      ini.GetIntOr("workload", "requests", 300'000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(ini.GetIntOr("workload", "seed", 2));
  const std::string kind =
      util::ToLower(ini.GetStringOr("workload", "kind", "web"));
  trace::SyntheticWorkloadConfig wl;
  if (kind == "web") {
    wl = trace::WebServerWorkload(footprint, requests, seed);
  } else if (kind == "media") {
    wl = trace::MediaServerWorkload(footprint, requests, seed);
  } else {
    throw std::invalid_argument("workload kind must be web or media");
  }
  const auto records = trace::SyntheticTraceGenerator(wl).Generate();

  util::TablePrinter table({"metric", "conventional FTL", "FTL + PPB"});
  ssd::ExperimentResult conv, ppb;
  for (const auto k : {ssd::FtlKind::kConventional, ssd::FtlKind::kPpb}) {
    const auto res =
        ssd::RunExperiment(BuildConfig(ini, k), records, footprint, wl.name);
    (k == ssd::FtlKind::kConventional ? conv : ppb) = res;
  }
  table.AddRow({"total read latency (s)",
                util::TablePrinter::FormatDouble(conv.TotalReadSeconds()),
                util::TablePrinter::FormatDouble(ppb.TotalReadSeconds())});
  table.AddRow({"total write latency (s)",
                util::TablePrinter::FormatDouble(conv.TotalWriteSeconds()),
                util::TablePrinter::FormatDouble(ppb.TotalWriteSeconds())});
  table.AddRow({"erased blocks", std::to_string(conv.erase_count),
                std::to_string(ppb.erase_count)});
  table.AddRow({"write amplification",
                util::TablePrinter::FormatDouble(conv.waf),
                util::TablePrinter::FormatDouble(ppb.waf)});
  table.Print();
  std::cout << "\nRead enhancement: "
            << util::TablePrinter::FormatPercent(ssd::Enhancement(
                   conv.TotalReadSeconds(), ppb.TotalReadSeconds()))
            << ", write delta: "
            << util::TablePrinter::FormatPercent(
                   ssd::Enhancement(conv.TotalWriteSeconds(),
                                    ppb.TotalWriteSeconds()),
                   4)
            << "\n";
  return 0;
}
