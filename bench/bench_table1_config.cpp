// Table 1 — Experimental Parameters.
//
// Prints the simulated device's parameters next to the paper's Table 1 rows
// so the configuration reproduction is auditable at a glance.
#include <iostream>

#include "harness.h"
#include "ssd/ssd.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Table 1: Experimental Parameters", "Table 1", options);

  const auto cfg = ssd::Table1Config();
  const auto& g = cfg.geometry;
  const auto& t = cfg.timing;

  util::TablePrinter table({"Item", "Paper (Table 1)", "This build"});
  table.AddRow({"Flash size", "64GBs",
                util::TablePrinter::FormatDouble(
                    static_cast<double>(g.TotalBytes()) / (1ull << 30), 1) +
                    " GiB"});
  table.AddRow({"Page size", "16KBs",
                std::to_string(g.page_size_bytes / 1024) + " KiB"});
  table.AddRow({"Number of pages per block", "384",
                std::to_string(g.pages_per_block)});
  table.AddRow({"Page write latency (us)", "600",
                std::to_string(t.page_program_us)});
  table.AddRow({"Page read latency (us)", "49",
                std::to_string(t.page_read_us)});
  table.AddRow({"Data transfer rate", "533Mbps",
                util::TablePrinter::FormatDouble(t.transfer_mb_per_s, 0) +
                    " MB/s (533 Mbps/pin, x8 bus)"});
  table.AddRow({"Block erase time (ms)", "4",
                util::TablePrinter::FormatDouble(
                    static_cast<double>(t.block_erase_us) / 1000.0, 0)});
  table.AddRow({"Gate-stack layers", "(64-layer V-NAND)",
                std::to_string(g.num_layers)});
  table.AddRow({"Speed ratio (footnote 1)", "2x-5x (64-layer: within 2x)",
                util::TablePrinter::FormatDouble(t.speed_ratio, 1) +
                    "x default, swept 2x-5x in the figure benches"});
  table.Print();

  std::cout << "\nScaled experiment device: "
            << ssd::ScaledConfig(ssd::FtlKind::kPpb, options.device_bytes,
                                 16 * 1024, 2.0)
                   .geometry.ToString()
            << "\n";
  return 0;
}
