#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ctflash::util {

void RunningMoments::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningMoments::Reset() { *this = RunningMoments{}; }

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

namespace {
int BucketOf(std::uint64_t value) {
  if (value == 0) return 0;
  return std::bit_width(value) - 1;
}
}  // namespace

void LogHistogram::Add(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(BucketOf(value))]++;
  ++count_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

void LogHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
}

double LogHistogram::Quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Quantile: q outside [0,1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double n = static_cast<double>(buckets_[b]);
    if (cum + n >= target && n > 0) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b);
      const double hi = std::ldexp(1.0, b + 1);
      const double frac = n == 0.0 ? 0.0 : (target - cum) / n;
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  return std::ldexp(1.0, kBuckets);  // unreachable in practice
}

int QuantileEstimator::BinOf(std::uint64_t value) {
  if (value < kSubBins) return static_cast<int>(value);
  const int octave = std::bit_width(value) - 1;  // >= kSubBits
  const int sub = static_cast<int>((value - (std::uint64_t{1} << octave)) >>
                                   (octave - kSubBits));
  return kSubBins + (octave - kSubBits) * kSubBins + sub;
}

std::uint64_t QuantileEstimator::BinLow(int index) {
  if (index < kSubBins) return static_cast<std::uint64_t>(index);
  const int octave = kSubBits + (index - kSubBins) / kSubBins;
  const int sub = (index - kSubBins) % kSubBins;
  return (std::uint64_t{1} << octave) +
         (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
}

std::uint64_t QuantileEstimator::BinHigh(int index) {
  // The very last bin's upper bound is 2^64; saturate instead of wrapping.
  if (index >= kBins - 1) return std::numeric_limits<std::uint64_t>::max();
  if (index < kSubBins) return static_cast<std::uint64_t>(index) + 1;
  const int octave = kSubBits + (index - kSubBins) / kSubBins;
  return BinLow(index) + (std::uint64_t{1} << (octave - kSubBits));
}

void QuantileEstimator::Add(std::uint64_t value) {
  bins_[static_cast<std::size_t>(BinOf(value))]++;
  ++count_;
}

void QuantileEstimator::Merge(const QuantileEstimator& other) {
  for (int i = 0; i < kBins; ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
}

void QuantileEstimator::Reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  count_ = 0;
}

double QuantileEstimator::Quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Quantile: q outside [0,1]");
  }
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int b = 0; b < kBins; ++b) {
    const double n = static_cast<double>(bins_[b]);
    if (cum + n >= target && n > 0) {
      const double lo = static_cast<double>(BinLow(b));
      const double hi = static_cast<double>(BinHigh(b));
      const double frac = (target - cum) / n;
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  return static_cast<double>(BinHigh(kBins - 1));  // unreachable in practice
}

void LatencyStats::Add(Us latency_us) {
  moments_.Add(static_cast<double>(latency_us));
  hist_.Add(latency_us < 0 ? 0u : static_cast<std::uint64_t>(latency_us));
}

void LatencyStats::Merge(const LatencyStats& other) {
  moments_.Merge(other.moments_);
  hist_.Merge(other.hist_);
}

void LatencyStats::Reset() {
  moments_.Reset();
  hist_.Reset();
}

std::string LatencyStats::Summary(const std::string& label) const {
  std::ostringstream os;
  os << label << ": n=" << count() << " total=" << total_seconds() << "s"
     << " mean=" << mean_us() << "us"
     << " p50=" << p50_us() << "us"
     << " p99=" << p99_us() << "us"
     << " p99.9=" << p999_us() << "us"
     << " max=" << max_us() << "us";
  return os.str();
}

}  // namespace ctflash::util
