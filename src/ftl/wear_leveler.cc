#include "ftl/wear_leveler.h"

#include <algorithm>

namespace ctflash::ftl {

std::uint32_t WearLeveler::WearSpread(const nand::NandDevice& nand) {
  std::uint32_t min_pe = ~0u;
  std::uint32_t max_pe = 0;
  for (BlockId b = 0; b < nand.TotalBlocks(); ++b) {
    if (nand.IsBlockBad(b)) continue;
    const std::uint32_t pe = nand.PeCycles(b);
    min_pe = std::min(min_pe, pe);
    max_pe = std::max(max_pe, pe);
  }
  if (min_pe == ~0u) return 0;
  return max_pe - min_pe;
}

std::optional<BlockId> WearLeveler::MaybeOverrideVictim(
    const BlockManager& blocks, const nand::NandDevice& nand) {
  if (!config_.Enabled()) return std::nullopt;
  if (overrides_ > 0 &&
      erases_ - last_override_erase_ < config_.cooldown_erases) {
    return std::nullopt;
  }
  if (WearSpread(nand) <= config_.delta_threshold) return std::nullopt;
  // Pick the least-worn FULL block (coldest resting data).
  std::optional<BlockId> best;
  for (BlockId b = 0; b < blocks.total_blocks(); ++b) {
    if (blocks.UseOf(b) != BlockUse::kFull) continue;
    if (nand.IsBlockBad(b)) continue;
    if (!best || nand.PeCycles(b) < nand.PeCycles(*best)) best = b;
  }
  if (best) {
    ++overrides_;
    last_override_erase_ = erases_;
  }
  return best;
}

}  // namespace ctflash::ftl
