// ReplayPlan transform properties: alignment-preserving address remapping
// with footprint clipping (all three policies), time warping, filtering,
// and deterministic K-way tenant merge with ties broken by source index.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "replay/replay_plan.h"
#include "replay/trace_source.h"
#include "trace/synthetic.h"
#include "util/random.h"

namespace ctflash::replay {
namespace {

constexpr std::uint64_t kFootprint = 64 * kMiB;

std::vector<trace::TraceRecord> RandomRecords(std::uint64_t seed, int n,
                                              std::uint64_t span,
                                              std::uint64_t align) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<trace::TraceRecord> records;
  Us t = 0;
  for (int i = 0; i < n; ++i) {
    trace::TraceRecord r;
    r.timestamp_us = t;
    t += static_cast<Us>(rng.UniformBelow(1000));
    r.op = rng.Bernoulli(0.5) ? trace::OpType::kRead : trace::OpType::kWrite;
    r.offset_bytes = rng.UniformBelow(span / align) * align +
                     (rng.Bernoulli(0.25) ? 512 : 0);  // some sub-aligned
    r.size_bytes = align * (1 + rng.UniformBelow(16));
    records.push_back(r);
  }
  return records;
}

RemapConfig Remap(RemapPolicy policy, std::uint64_t base = 0) {
  RemapConfig config;
  config.policy = policy;
  config.footprint_bytes = kFootprint;
  config.base_bytes = base;
  config.alignment_bytes = 4096;
  config.source_span_bytes = 8ull << 30;  // for kLinearScale
  return config;
}

const RemapPolicy kAllPolicies[] = {RemapPolicy::kWrap,
                                    RemapPolicy::kLinearScale,
                                    RemapPolicy::kHashScatter};

TEST(Remap, PreservesAlignmentResidueAcrossAllPolicies) {
  const auto records = RandomRecords(3, 2000, 8ull << 30, 4096);
  for (const RemapPolicy policy : kAllPolicies) {
    const RemapConfig config = Remap(policy);
    for (const auto& original : records) {
      trace::TraceRecord r = original;
      if (!RemapRecord(config, r)) continue;
      EXPECT_EQ(r.offset_bytes % 4096, original.offset_bytes % 4096)
          << RemapPolicyName(policy);
    }
  }
}

TEST(Remap, ClipsEveryRecordIntoTheTargetFootprint) {
  const auto records = RandomRecords(4, 2000, 16ull << 30, 4096);
  const std::uint64_t base = 128 * kMiB;
  for (const RemapPolicy policy : kAllPolicies) {
    RemapConfig config = Remap(policy, base);
    config.source_span_bytes = 16ull << 30;
    for (const auto& original : records) {
      trace::TraceRecord r = original;
      if (!RemapRecord(config, r)) continue;
      EXPECT_GE(r.offset_bytes, base) << RemapPolicyName(policy);
      EXPECT_LE(r.offset_bytes + r.size_bytes, base + kFootprint)
          << RemapPolicyName(policy);
      EXPECT_GT(r.size_bytes, 0u);
    }
  }
}

TEST(Remap, IsDeterministic) {
  const auto records = RandomRecords(5, 500, 8ull << 30, 4096);
  for (const RemapPolicy policy : kAllPolicies) {
    const RemapConfig config = Remap(policy);
    for (const auto& original : records) {
      trace::TraceRecord a = original;
      trace::TraceRecord b = original;
      const bool ka = RemapRecord(config, a);
      const bool kb = RemapRecord(config, b);
      EXPECT_EQ(ka, kb);
      if (ka) EXPECT_EQ(a, b);
    }
  }
}

TEST(Remap, WrapPreservesSequentialRuns) {
  // Two 4 KiB requests adjacent in the source stay adjacent after a wrap
  // (unless they straddle the fold): locality preservation.
  const RemapConfig config = Remap(RemapPolicy::kWrap);
  trace::TraceRecord a{0, trace::OpType::kRead, kFootprint + 4096, 4096};
  trace::TraceRecord b{1, trace::OpType::kRead, kFootprint + 8192, 4096};
  ASSERT_TRUE(RemapRecord(config, a));
  ASSERT_TRUE(RemapRecord(config, b));
  EXPECT_EQ(a.offset_bytes + a.size_bytes, b.offset_bytes);
}

TEST(Remap, HashScatterSpreadsAndWrapFolds) {
  // The same dense source region maps to one dense target region under
  // wrap but scatters under hash: count distinct MiB-granularity bins.
  auto bins = [](RemapPolicy policy) {
    const RemapConfig config = Remap(policy);
    std::vector<bool> seen(kFootprint / kMiB, false);
    int distinct = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
      trace::TraceRecord r{0, trace::OpType::kRead, i * 4096, 4096};
      if (!RemapRecord(config, r)) continue;
      const std::size_t bin = r.offset_bytes / kMiB;
      if (!seen[bin]) {
        seen[bin] = true;
        distinct++;
      }
    }
    return distinct;
  };
  EXPECT_LE(bins(RemapPolicy::kWrap), 2);
  EXPECT_GT(bins(RemapPolicy::kHashScatter), 16);
}

TEST(Remap, LinearScaleRequiresSourceSpanAndPreservesOrder) {
  RemapConfig config = Remap(RemapPolicy::kLinearScale);
  config.source_span_bytes = 0;
  trace::TraceRecord r{0, trace::OpType::kRead, 4096, 4096};
  EXPECT_THROW(RemapRecord(config, r), std::invalid_argument);

  config.source_span_bytes = 8ull << 30;
  // Monotone source offsets stay monotone (shape preservation).
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    trace::TraceRecord rec{0, trace::OpType::kRead,
                           i * ((8ull << 30) / 100), 4096};
    ASSERT_TRUE(RemapRecord(config, rec));
    EXPECT_GE(rec.offset_bytes, prev);
    prev = rec.offset_bytes;
  }
}

TEST(TimeWarp, AccelerationCompressesGaps) {
  TimeWarpConfig warp;
  warp.acceleration = 4.0;
  EXPECT_EQ(warp.Warp(0), 0);
  EXPECT_EQ(warp.Warp(1000), 250);
  warp.start_offset_us = 10;
  EXPECT_EQ(warp.Warp(1000), 260);
}

TEST(TimeWarp, RateTargetResolvesFromNativeRate) {
  TimeWarpConfig warp;
  warp.target_iops = 20'000.0;
  // 1000 records over 1 s = 1000 native IOPS -> 20x acceleration.
  warp.ResolveRateTarget(1000, 1'000'000);
  EXPECT_DOUBLE_EQ(warp.acceleration, 20.0);
  EXPECT_EQ(warp.target_iops, 0.0);  // resolved
  EXPECT_EQ(warp.Warp(1'000'000), 50'000);
}

TEST(TimeWarp, UnresolvedRateTargetThrowsAtPull) {
  ReplayPlan plan;
  SourceOptions options;
  options.warp.target_iops = 1000.0;
  plan.AddSource(std::make_unique<VectorTraceSource>(
                     std::vector<trace::TraceRecord>{
                         {0, trace::OpType::kRead, 0, 4096}}),
                 options);
  EXPECT_THROW(plan.Next(), std::logic_error);
}

TEST(Filter, DropsByOpSizeAndTime) {
  FilterConfig filter;
  filter.keep_writes = false;
  filter.min_size_bytes = 8192;
  filter.max_time_us = 500;
  EXPECT_TRUE(filter.Accepts({100, trace::OpType::kRead, 0, 8192}));
  EXPECT_FALSE(filter.Accepts({100, trace::OpType::kWrite, 0, 8192}));
  EXPECT_FALSE(filter.Accepts({100, trace::OpType::kRead, 0, 4096}));
  EXPECT_FALSE(filter.Accepts({501, trace::OpType::kRead, 0, 8192}));
}

TEST(Merge, OrdersByWarpedTimestampWithTiesBySourceIndex) {
  // Source 1 runs 2x accelerated, so its records interleave; exact ties
  // must come out in source-index order.
  std::vector<trace::TraceRecord> a = {
      {0, trace::OpType::kRead, 0, 4096},
      {100, trace::OpType::kRead, 4096, 4096},
      {200, trace::OpType::kRead, 8192, 4096},
  };
  std::vector<trace::TraceRecord> b = {
      {0, trace::OpType::kWrite, 0, 4096},
      {200, trace::OpType::kWrite, 4096, 4096},   // warps to 100
      {400, trace::OpType::kWrite, 8192, 4096},   // warps to 200
  };
  ReplayPlan plan;
  SourceOptions oa;
  oa.tenant = 0;
  plan.AddSource(std::make_unique<VectorTraceSource>(a), oa);
  SourceOptions ob;
  ob.tenant = 1;
  ob.warp.acceleration = 2.0;
  plan.AddSource(std::make_unique<VectorTraceSource>(b), ob);

  std::vector<TaggedRecord> merged;
  while (auto r = plan.Next()) merged.push_back(*r);
  ASSERT_EQ(merged.size(), 6u);
  Us prev = 0;
  for (const auto& r : merged) {
    EXPECT_GE(r.record.timestamp_us, prev);
    prev = r.record.timestamp_us;
  }
  // Ties at t=0, 100, 200: source 0 first every time.
  for (std::size_t i = 0; i + 1 < merged.size(); i += 2) {
    EXPECT_EQ(merged[i].record.timestamp_us,
              merged[i + 1].record.timestamp_us);
    EXPECT_EQ(merged[i].source_index, 0u);
    EXPECT_EQ(merged[i + 1].source_index, 1u);
    EXPECT_EQ(merged[i].tenant, 0u);
    EXPECT_EQ(merged[i + 1].tenant, 1u);
  }
}

TEST(Merge, CountersConserveRecordsAndResetRestores) {
  const auto cfg = trace::WebServerWorkload(256 * kMiB, 400);
  ReplayPlan plan;
  SourceOptions options;
  options.filter.keep_writes = false;
  options.remap = Remap(RemapPolicy::kWrap);
  plan.AddSource(std::make_unique<SyntheticTraceSource>(cfg), options);

  std::vector<TaggedRecord> first;
  while (auto r = plan.Next()) first.push_back(*r);
  const auto& counters = plan.CountersOf(0);
  EXPECT_EQ(counters.pulled, 400u);
  EXPECT_EQ(counters.emitted, first.size());
  EXPECT_EQ(counters.pulled,
            counters.emitted + counters.filtered + counters.clipped);
  EXPECT_GT(counters.filtered, 0u);  // the dropped writes

  plan.Reset();
  std::vector<TaggedRecord> second;
  while (auto r = plan.Next()) second.push_back(*r);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].record, first[i].record) << i;
  }
}

TEST(Merge, MaxRecordsStopsPullingEarly) {
  const auto cfg = trace::WebServerWorkload(256 * kMiB, 1000);
  ReplayPlan plan;
  SourceOptions options;
  options.filter.max_records = 50;
  plan.AddSource(std::make_unique<SyntheticTraceSource>(cfg), options);
  std::uint64_t n = 0;
  while (plan.Next()) n++;
  EXPECT_EQ(n, 50u);
  // Stops pulling once satisfied instead of draining the source.
  EXPECT_LE(plan.CountersOf(0).pulled, 51u);
}

}  // namespace
}  // namespace ctflash::replay
