#include "cluster/spec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/config.h"

namespace ctflash::cluster {

namespace {

/// Byte sizes may be JSON numbers or strings like "64MiB".
std::uint64_t BytesOf(const Json& parent, const std::string& key,
                      std::uint64_t fallback) {
  const Json* v = parent.Get(key);
  if (v == nullptr || v->IsNull()) return fallback;
  if (v->IsNumber()) return v->AsUint();
  return util::ParseByteSize(v->AsString());
}

RebalancePolicy ParsePolicy(const std::string& s) {
  if (s == "on_failure") return RebalancePolicy::kOnFailure;
  if (s == "none") return RebalancePolicy::kNone;
  if (s == "on_observed") return RebalancePolicy::kOnObserved;
  throw std::runtime_error(
      "cluster: unknown rebalance policy \"" + s +
      "\" (expected \"on_failure\", \"on_observed\" or \"none\")");
}

/// The fleet-wide two-tenant QoS table: user traffic on all but the last
/// queue, rebuild traffic alone on the last so migration never starves
/// serving I/O of submission slots.
qos::QosConfig DefaultQos(std::uint32_t num_queues, std::uint32_t user_weight,
                          std::uint32_t rebuild_weight) {
  if (num_queues < 2) {
    throw std::runtime_error(
        "cluster: device host.num_queues must be >= 2 (user + rebuild "
        "tenants need disjoint queues)");
  }
  qos::QosConfig qos;
  qos::TenantConfig users;
  users.name = "users";
  users.weight = user_weight;
  for (std::uint32_t q = 0; q + 1 < num_queues; ++q) users.queues.push_back(q);
  qos::TenantConfig rebuild;
  rebuild.name = "rebuild";
  rebuild.weight = rebuild_weight;
  rebuild.queues.push_back(num_queues - 1);
  qos.tenants.push_back(std::move(users));
  qos.tenants.push_back(std::move(rebuild));
  return qos;
}

}  // namespace

const char* RebalancePolicyName(RebalancePolicy policy) {
  switch (policy) {
    case RebalancePolicy::kOnFailure:
      return "on_failure";
    case RebalancePolicy::kNone:
      return "none";
    case RebalancePolicy::kOnObserved:
      return "on_observed";
  }
  return "?";
}

ClusterSpec ClusterSpec::Parse(const std::string& json_text) {
  return Parse(Json::Parse(json_text));
}

ClusterSpec ClusterSpec::Parse(const Json& root) {
  if (!root.IsObject()) {
    throw std::runtime_error("cluster: spec must be a JSON object");
  }
  ClusterSpec spec;
  spec.name = root.GetStringOr("cluster", "cluster");
  spec.workers = static_cast<std::uint32_t>(root.GetUintOr("workers", 1));
  spec.seed = root.GetUintOr("seed", 1);

  if (const Json* fleet = root.Get("fleet"); fleet != nullptr) {
    spec.router.num_devices =
        static_cast<std::uint32_t>(fleet->GetUintOr("devices", 8));
    spec.router.spare_devices =
        static_cast<std::uint32_t>(fleet->GetUintOr("spares", 0));
  }
  if (const Json* r = root.Get("router"); r != nullptr) {
    spec.router.num_shards =
        static_cast<std::uint32_t>(r->GetUintOr("shards", 256));
    spec.router.replicas =
        static_cast<std::uint32_t>(r->GetUintOr("replicas", 2));
    spec.router.vnodes = static_cast<std::uint32_t>(r->GetUintOr("vnodes", 64));
    spec.router.seed = r->GetUintOr("seed", spec.seed);
  } else {
    spec.router.seed = spec.seed;
  }

  // Device template (campaign-style section shared by the whole fleet).
  spec.device_json = Json(campaign::JsonObject{});
  if (const Json* d = root.Get("device"); d != nullptr && !d->IsNull()) {
    if (!d->IsObject()) {
      throw std::runtime_error("cluster: device must be an object");
    }
    spec.device_json = *d;
  }
  spec.device = campaign::ResolveDeviceSection(spec.device_json);

  std::uint32_t user_weight = 8;
  std::uint32_t rebuild_weight = 1;
  if (const Json* q = root.Get("qos"); q != nullptr) {
    user_weight = static_cast<std::uint32_t>(q->GetUintOr("user_weight", 8));
    rebuild_weight =
        static_cast<std::uint32_t>(q->GetUintOr("rebuild_weight", 1));
  }
  spec.user_weight = user_weight;
  spec.rebuild_weight = rebuild_weight;
  // A qos list inside the device template wins; otherwise install the
  // standard users/rebuild split.
  if (spec.device.host.qos.tenants.empty()) {
    spec.device.host.qos =
        DefaultQos(spec.device.host.num_queues, user_weight, rebuild_weight);
    spec.device.host.Validate();
  } else if (spec.device.host.qos.tenants.size() < 2) {
    throw std::runtime_error(
        "cluster: a device-template qos list needs >= 2 tenants "
        "(user + rebuild)");
  }

  if (const Json* u = root.Get("users"); u != nullptr) {
    spec.user_count = u->GetUintOr("count", 1'000'000);
    spec.zipf_theta = u->GetDoubleOr("zipf_theta", 0.9);
  }
  if (const Json* w = root.Get("workload"); w != nullptr) {
    spec.rate_iops = w->GetDoubleOr("rate_iops", 20'000.0);
    spec.read_fraction = w->GetDoubleOr("read_fraction", 0.9);
    spec.request_bytes = BytesOf(*w, "request_bytes", 16 * kKiB);
    spec.epochs = static_cast<std::uint32_t>(w->GetUintOr("epochs", 6));
    spec.epoch_us = static_cast<Us>(w->GetUintOr("epoch_us", 250'000));
    spec.timeout_us = static_cast<Us>(w->GetUintOr("timeout_us", 1'000'000));
  }
  if (const Json* r = root.Get("rebalance"); r != nullptr) {
    spec.policy = ParsePolicy(r->GetStringOr("policy", "on_failure"));
    spec.fail_on_lost_pages = r->GetUintOr("fail_on_lost_pages", 1);
    spec.migration_chunk_bytes = BytesOf(*r, "migration_chunk", 64 * kKiB);
    spec.rebuild_epochs =
        static_cast<std::uint32_t>(r->GetUintOr("rebuild_epochs", 0));
    spec.rebuild_bytes_per_sec = r->GetDoubleOr("rebuild_bytes_per_sec", 0.0);
    if (spec.rebuild_bytes_per_sec < 0.0) {
      throw std::runtime_error(
          "cluster: rebalance.rebuild_bytes_per_sec must be >= 0");
    }
    if (spec.rebuild_bytes_per_sec > 0.0) {
      spec.device.host.qos.tenants[kRebuildTenant].bytes_per_sec_limit =
          spec.rebuild_bytes_per_sec;
    }
    if (const Json* sb = r->Get("shard_bytes");
        sb != nullptr && !(sb->IsString() && sb->AsString() == "auto")) {
      spec.shard_bytes = BytesOf(*r, "shard_bytes", 0);
    }
    if (const Json* h = r->Get("health"); h != nullptr && !h->IsNull()) {
      spec.health.ewma_alpha =
          h->GetDoubleOr("ewma_alpha", spec.health.ewma_alpha);
      spec.health.degraded_frac =
          h->GetDoubleOr("degraded_frac", spec.health.degraded_frac);
      spec.health.spare_fail_frac =
          h->GetDoubleOr("spare_fail_frac", spec.health.spare_fail_frac);
      spec.health.wear_fail_frac =
          h->GetDoubleOr("wear_fail_frac", spec.health.wear_fail_frac);
      spec.health.retry_fail_rate =
          h->GetDoubleOr("retry_fail_rate", spec.health.retry_fail_rate);
      spec.health.program_fail_rate =
          h->GetDoubleOr("program_fail_rate", spec.health.program_fail_rate);
      spec.health.gc_stall_fail_share = h->GetDoubleOr(
          "gc_stall_fail_share", spec.health.gc_stall_fail_share);
    }
    if (const Json* s = r->Get("slo"); s != nullptr && !s->IsNull()) {
      spec.slo.target_us =
          static_cast<Us>(s->GetUintOr("read_p99_target_us", 0));
      spec.slo.quantile = s->GetDoubleOr("quantile", spec.slo.quantile);
      spec.slo.min_samples =
          s->GetUintOr("min_samples", spec.slo.min_samples);
      spec.slo.burn_windows = static_cast<std::uint32_t>(
          s->GetUintOr("burn_windows", spec.slo.burn_windows));
      spec.slo.burn_threshold =
          s->GetDoubleOr("burn_threshold", spec.slo.burn_threshold);
    }
  }
  if (const Json* o = root.Get("observability");
      o != nullptr && !o->IsNull()) {
    spec.trace_phases = o->GetBoolOr("phases", false);
  }
  // The observed policy reads the tracer's die-busy-gc attribution; the
  // per-epoch phase rows come along for free.
  if (spec.policy == RebalancePolicy::kOnObserved) spec.trace_phases = true;
  if (const Json* faults = root.Get("faults"); faults != nullptr &&
                                               !faults->IsNull()) {
    for (const Json& f : faults->AsArray()) {
      DeviceFaultSpec fault;
      fault.device = static_cast<DeviceId>(f.GetUintOr("device", 0));
      fault.kind = f.GetStringOr("kind", "channel");
      fault.at_us = static_cast<Us>(f.GetUintOr("at_us", 0));
      if (fault.kind == "wear") {
        fault.program_fail_prob = f.GetDoubleOr("program_fail_prob", 0.0);
        fault.erase_fail_prob = f.GetDoubleOr("erase_fail_prob", 0.0);
        fault.read_disturb_per_read =
            f.GetDoubleOr("read_disturb_per_read", 0.0);
        fault.retention_rber_multiplier =
            f.GetDoubleOr("retention_rber_multiplier", 1.0);
        if (fault.program_fail_prob == 0.0 && fault.erase_fail_prob == 0.0 &&
            fault.read_disturb_per_read == 0.0 &&
            fault.retention_rber_multiplier <= 1.0) {
          throw std::runtime_error(
              "cluster: a wear fault needs at least one ramp knob "
              "(program_fail_prob / erase_fail_prob / "
              "read_disturb_per_read / retention_rber_multiplier)");
        }
      } else if (fault.kind != "die" && fault.kind != "channel" &&
                 fault.kind != "device") {
        throw std::runtime_error("cluster: unknown fault kind \"" +
                                 fault.kind +
                                 "\" (expected die/channel/device/wear)");
      }
      spec.faults.push_back(std::move(fault));
    }
  }
  spec.Validate();
  return spec;
}

void ClusterSpec::Validate() const {
  router.Validate();
  if (workers == 0) throw std::runtime_error("cluster: workers must be >= 1");
  if (user_count == 0) {
    throw std::runtime_error("cluster: users.count must be >= 1");
  }
  if (zipf_theta < 0.0) {
    throw std::runtime_error("cluster: users.zipf_theta must be >= 0");
  }
  if (rate_iops <= 0.0) {
    throw std::runtime_error("cluster: workload.rate_iops must be > 0");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    throw std::runtime_error(
        "cluster: workload.read_fraction must be in [0, 1]");
  }
  if (request_bytes == 0) {
    throw std::runtime_error("cluster: workload.request_bytes must be > 0");
  }
  if (epochs == 0) throw std::runtime_error("cluster: epochs must be >= 1");
  if (epoch_us <= 0) throw std::runtime_error("cluster: epoch_us must be > 0");
  if (timeout_us <= 0) {
    throw std::runtime_error("cluster: timeout_us must be > 0");
  }
  health.Validate();
  slo.Validate();
  for (const DeviceFaultSpec& f : faults) {
    if (f.device >= router.TotalDevices()) {
      throw std::runtime_error("cluster: fault device " +
                               std::to_string(f.device) +
                               " outside the fleet");
    }
  }
}

nand::FaultPlanConfig ClusterSpec::FaultPlanFor(DeviceId device,
                                                Us run_start_us) const {
  nand::FaultPlanConfig plan;
  bool any = false;
  for (const DeviceFaultSpec& f : faults) {
    if (f.device != device) continue;
    if (f.kind == "wear") {
      // A progressive ramp, active from the run's start (at_us is the
      // hard-loss schedule and does not apply here).
      plan.program_fail_prob =
          std::max(plan.program_fail_prob, f.program_fail_prob);
      plan.erase_fail_prob = std::max(plan.erase_fail_prob, f.erase_fail_prob);
      plan.read_disturb_per_read =
          std::max(plan.read_disturb_per_read, f.read_disturb_per_read);
      plan.retention_rber_multiplier = std::max(
          plan.retention_rber_multiplier, f.retention_rber_multiplier);
      continue;
    }
    if (f.kind == "die") {
      plan.fail_dies.push_back(0);
    } else if (f.kind == "channel") {
      plan.fail_channels.push_back(0);
    } else {  // "device": every channel goes dark
      for (std::uint32_t c = 0; c < this->device.device.geometry.channels;
           ++c) {
        plan.fail_channels.push_back(c);
      }
    }
    // One schedule per injector: overlapping faults hit at the earliest.
    const Us at = run_start_us + f.at_us;
    plan.fail_at_us = any ? std::min(plan.fail_at_us, at) : at;
    any = true;
  }
  if (plan.Armed()) plan.Validate();
  return plan;
}

Json ClusterSpec::ConfigSummary() const {
  Json summary;
  summary["cluster"] = name;
  summary["devices"] = static_cast<std::uint64_t>(router.num_devices);
  summary["spares"] = static_cast<std::uint64_t>(router.spare_devices);
  summary["shards"] = static_cast<std::uint64_t>(router.num_shards);
  summary["replicas"] = static_cast<std::uint64_t>(router.replicas);
  summary["vnodes"] = static_cast<std::uint64_t>(router.vnodes);
  summary["seed"] = seed;
  summary["users"] = user_count;
  summary["zipf_theta"] = zipf_theta;
  summary["rate_iops"] = rate_iops;
  summary["read_fraction"] = read_fraction;
  summary["request_bytes"] = request_bytes;
  summary["epochs"] = static_cast<std::uint64_t>(epochs);
  summary["epoch_us"] = static_cast<std::uint64_t>(epoch_us);
  summary["timeout_us"] = static_cast<std::uint64_t>(timeout_us);
  summary["policy"] = std::string(RebalancePolicyName(policy));
  if (policy == RebalancePolicy::kOnObserved) {
    Json h;
    h["ewma_alpha"] = health.ewma_alpha;
    h["degraded_frac"] = health.degraded_frac;
    h["spare_fail_frac"] = health.spare_fail_frac;
    h["wear_fail_frac"] = health.wear_fail_frac;
    h["retry_fail_rate"] = health.retry_fail_rate;
    h["gc_stall_fail_share"] = health.gc_stall_fail_share;
    summary["health"] = std::move(h);
    if (slo.enabled()) {
      Json s;
      s["read_p99_target_us"] = static_cast<std::uint64_t>(slo.target_us);
      s["quantile"] = slo.quantile;
      s["min_samples"] = slo.min_samples;
      s["burn_windows"] = static_cast<std::uint64_t>(slo.burn_windows);
      s["burn_threshold"] = slo.burn_threshold;
      summary["slo"] = std::move(s);
    }
  }
  summary["user_weight"] = static_cast<std::uint64_t>(user_weight);
  summary["rebuild_weight"] = static_cast<std::uint64_t>(rebuild_weight);
  summary["device"] = device_json;
  if (trace_phases) summary["trace_phases"] = true;
  if (!faults.empty()) {
    campaign::JsonArray list;
    for (const DeviceFaultSpec& f : faults) {
      Json entry;
      entry["device"] = static_cast<std::uint64_t>(f.device);
      entry["kind"] = f.kind;
      entry["at_us"] = static_cast<std::uint64_t>(f.at_us);
      if (f.kind == "wear") {
        if (f.program_fail_prob > 0.0) {
          entry["program_fail_prob"] = f.program_fail_prob;
        }
        if (f.erase_fail_prob > 0.0) {
          entry["erase_fail_prob"] = f.erase_fail_prob;
        }
        if (f.read_disturb_per_read > 0.0) {
          entry["read_disturb_per_read"] = f.read_disturb_per_read;
        }
        if (f.retention_rber_multiplier > 1.0) {
          entry["retention_rber_multiplier"] = f.retention_rber_multiplier;
        }
      }
      list.push_back(std::move(entry));
    }
    summary["faults"] = Json(std::move(list));
  }
  return summary;
}

}  // namespace ctflash::cluster
