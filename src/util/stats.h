// Streaming statistics and latency histograms.
//
// LatencyStats keeps O(1) running moments plus a log-scaled histogram so
// percentile summaries never require storing per-sample data, matching how
// long trace replays (millions of requests) are aggregated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace ctflash::util {

/// Running mean / min / max / variance (Welford) over double samples.
class RunningMoments {
 public:
  void Add(double x);
  void Merge(const RunningMoments& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log2-bucketed histogram over non-negative integer samples (e.g. latency
/// in microseconds).  Bucket b holds samples in [2^b, 2^(b+1)); bucket 0 also
/// holds 0.  Percentile estimates interpolate linearly inside a bucket.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Add(std::uint64_t value);
  void Merge(const LogHistogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  /// Estimated value at quantile q in [0,1].
  double Quantile(double q) const;
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t count_ = 0;
};

/// Streaming quantile estimator over non-negative integer samples: a
/// fixed-size log-scaled histogram where every power-of-two octave is split
/// into kSubBins linear sub-bins (HdrHistogram-style), bounding the
/// relative quantile error at 1/kSubBins (~6 %) regardless of sample count
/// or range.  O(1) insert, O(bins) quantile, mergeable — built for
/// tail-latency extraction (p99.9 of millions of requests) where the plain
/// power-of-two LogHistogram above is too coarse.
class QuantileEstimator {
 public:
  static constexpr int kSubBits = 4;             ///< log2(sub-bins per octave)
  static constexpr int kSubBins = 1 << kSubBits; // 16
  /// Bins 0..15 hold values 0..15 exactly; octaves [2^o, 2^(o+1)) for
  /// o in [kSubBits, 63] each contribute kSubBins bins.
  static constexpr int kBins = kSubBins + (64 - kSubBits) * kSubBins;

  void Add(std::uint64_t value);
  void Merge(const QuantileEstimator& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  /// Estimated value at quantile q in [0,1]; linear interpolation inside
  /// the matched bin.  Throws std::invalid_argument for q outside [0,1].
  double Quantile(double q) const;

  /// Inclusive lower / exclusive upper value bound of bin `index`.
  static std::uint64_t BinLow(int index);
  static std::uint64_t BinHigh(int index);
  static int BinOf(std::uint64_t value);

  /// Raw bin counts (CDF export: replay::LatencyCdf walks these).
  const std::vector<std::uint64_t>& bins() const { return bins_; }

 private:
  std::vector<std::uint64_t> bins_ = std::vector<std::uint64_t>(kBins, 0);
  std::uint64_t count_ = 0;
};

/// Composite latency aggregate: moments + streaming quantiles, in
/// microseconds.
class LatencyStats {
 public:
  void Add(Us latency_us);
  void Merge(const LatencyStats& other);
  void Reset();

  std::uint64_t count() const { return moments_.count(); }
  double total_us() const { return moments_.sum(); }
  double total_seconds() const { return moments_.sum() / 1e6; }
  double mean_us() const { return moments_.mean(); }
  double max_us() const { return moments_.max(); }
  double min_us() const { return moments_.min(); }
  double stddev_us() const { return moments_.stddev(); }
  double p50_us() const { return hist_.Quantile(0.50); }
  double p95_us() const { return hist_.Quantile(0.95); }
  double p99_us() const { return hist_.Quantile(0.99); }
  double p999_us() const { return hist_.Quantile(0.999); }

  /// One-line human-readable summary.
  std::string Summary(const std::string& label) const;

  /// The underlying histogram (full-CDF export, see replay::LatencyCdf).
  const QuantileEstimator& quantiles() const { return hist_; }

 private:
  RunningMoments moments_;
  QuantileEstimator hist_;
};

}  // namespace ctflash::util
