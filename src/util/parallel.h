// Deterministic work sharding over a thread pool.
//
// ParallelFor runs `fn(i)` for every i in [0, count) on up to `workers`
// threads pulling indices from a shared atomic counter.  Callers that need
// bit-identical results for any worker count must keep each fn(i) free of
// shared mutable state (write only to slot i of pre-sized result vectors)
// — the campaign runner and the cluster simulator both follow that rule.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace ctflash::util {

/// Shards [0, count) over up to `workers` threads.  `fn(i)` must not throw
/// (capture exceptions inside and surface them from slot state); workers of
/// 0 or 1 run inline on the calling thread.
inline void ParallelFor(std::size_t count, std::uint32_t workers,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t n_threads =
      std::min<std::size_t>(workers == 0 ? 1 : workers, count);
  if (n_threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace ctflash::util
