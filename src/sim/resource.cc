#include "sim/resource.h"

namespace ctflash::sim {

Interval ResourceTimeline::Reserve(Us earliest, Us duration) {
  if (duration < 0) {
    throw std::invalid_argument("ResourceTimeline::Reserve: negative duration");
  }
  const Us start = earliest > free_at_ ? earliest : free_at_;
  const Us end = start + duration;
  free_at_ = end;
  busy_time_ += duration;
  ++reservations_;
  return Interval{start, end};
}

void ResourceTimeline::Reset() { *this = ResourceTimeline{}; }

Us ResourcePool::TotalBusyTime() const {
  Us total = 0;
  for (const auto& t : timelines_) total += t.BusyTime();
  return total;
}

void ResourcePool::Reset() {
  for (auto& t : timelines_) t.Reset();
}

}  // namespace ctflash::sim
