#include "trace/trace.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/config.h"

namespace ctflash::trace {

TraceStats ComputeStats(const std::vector<TraceRecord>& records) {
  TraceStats s;
  for (const auto& r : records) {
    s.total_requests++;
    if (r.op == OpType::kRead) {
      s.read_requests++;
      s.read_bytes += r.size_bytes;
      s.read_size.Add(static_cast<double>(r.size_bytes));
    } else {
      s.write_requests++;
      s.write_bytes += r.size_bytes;
      s.write_size.Add(static_cast<double>(r.size_bytes));
    }
    s.max_offset_bytes = std::max(s.max_offset_bytes, r.offset_bytes + r.size_bytes);
  }
  return s;
}

namespace {
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// Strict non-negative integer field parser.  std::stoull silently accepts
/// a leading '-' (wrapping to a huge value), which would turn a corrupt
/// trace line into a petabyte-range request; reject anything but digits
/// and catch overflow explicitly.
std::uint64_t ParseUnsigned(const std::string& raw, const char* what) {
  const std::string field = util::Trim(raw);
  if (field.empty()) {
    throw std::invalid_argument(std::string("empty ") + what);
  }
  for (char c : field) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(std::string("non-numeric ") + what + " '" +
                                  field + "'");
    }
  }
  try {
    return std::stoull(field);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument(std::string("overflowing ") + what + " '" +
                                field + "'");
  }
}
}  // namespace

void MsrCsvParser::Reset() {
  lineno_ = 0;
  base_filetime_ = -1;
}

bool MsrCsvParser::ParseLine(const std::string& line, TraceRecord& out,
                             std::string* hostname) {
  ++lineno_;
  const std::string trimmed = util::Trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return false;
  const auto fields = SplitCsv(trimmed);
  if (fields.size() < 6) {
    throw std::invalid_argument("ParseMsrCsv: too few fields at line " +
                                std::to_string(lineno_));
  }
  try {
    TraceRecord r;
    const std::int64_t filetime = std::stoll(fields[0]);
    if (filetime < 0) throw std::invalid_argument("negative timestamp");
    if (base_filetime_ < 0) base_filetime_ = filetime;
    // FILETIME is in 100 ns ticks; 10 ticks per microsecond.
    r.timestamp_us = (filetime - base_filetime_) / 10;
    if (r.timestamp_us < 0) r.timestamp_us = 0;  // out-of-order arrivals
    const std::string type = util::ToLower(util::Trim(fields[3]));
    if (type == "read" || type == "r") {
      r.op = OpType::kRead;
    } else if (type == "write" || type == "w") {
      r.op = OpType::kWrite;
    } else {
      throw std::invalid_argument("bad op '" + fields[3] + "'");
    }
    r.offset_bytes = ParseUnsigned(fields[4], "offset");
    r.size_bytes = ParseUnsigned(fields[5], "size");
    if (r.size_bytes >
        std::numeric_limits<std::uint64_t>::max() - r.offset_bytes) {
      throw std::invalid_argument("offset+size overflows");
    }
    if (r.size_bytes == 0) return false;  // zero-length ops carry no work
    if (hostname != nullptr) *hostname = util::Trim(fields[1]);
    out = r;
    return true;
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("ParseMsrCsv: malformed line " +
                                std::to_string(lineno_) + " (" + e.what() +
                                "): " + trimmed);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("ParseMsrCsv: overflowing field at line " +
                                std::to_string(lineno_) + ": " + trimmed);
  }
}

std::vector<TraceRecord> ParseMsrCsv(std::istream& in) {
  std::vector<TraceRecord> records;
  MsrCsvParser parser;
  std::string line;
  TraceRecord r;
  while (std::getline(in, line)) {
    if (parser.ParseLine(line, r)) records.push_back(r);
  }
  return records;
}

std::vector<TraceRecord> ParseMsrCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ParseMsrCsvFile: cannot open " + path);
  return ParseMsrCsv(in);
}

void WriteMsrCsv(const std::vector<TraceRecord>& records, std::ostream& out,
                 const std::string& hostname) {
  for (const auto& r : records) {
    out << r.timestamp_us * 10 << "," << hostname << ",0,"
        << (r.op == OpType::kRead ? "Read" : "Write") << "," << r.offset_bytes
        << "," << r.size_bytes << ",0\n";
  }
}

}  // namespace ctflash::trace
