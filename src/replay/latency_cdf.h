// Latency-CDF extraction: the curve the paper's Figures 13/14 plot.
//
// A LatencyStats aggregate carries an HdrHistogram-style quantile
// estimator; LatencyCdf() walks its occupied bins into an explicit
// (latency, cumulative fraction) staircase suitable for plotting or
// diffing, and KneeIndex() locates the saturation knee — the point of
// maximum distance from the chord between the curve's endpoints (the
// "kneedle" construction, computed on the log-latency curve so the knee is
// scale-free).  Both are deterministic functions of the histogram.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"

namespace ctflash::replay {

struct CdfPoint {
  double latency_us = 0.0;       ///< upper edge of the histogram bin
  double cum_fraction = 0.0;     ///< P(latency <= latency_us)
  std::uint64_t count = 0;       ///< samples in this bin
};

/// Occupied-bin staircase of `stats`; empty when the aggregate is empty.
/// The final point always has cum_fraction == 1.
std::vector<CdfPoint> LatencyCdf(const util::LatencyStats& stats);

/// Index into `cdf` of the saturation knee, or cdf.size() when the curve
/// has fewer than 3 points (no interior to bend).
std::size_t KneeIndex(const std::vector<CdfPoint>& cdf);

/// Serializes the CDF as a JSON array of {"us": ..., "cum": ...} objects
/// (one line per point when `indent` >= 0, compact otherwise).
void WriteCdfJson(std::ostream& out, const std::vector<CdfPoint>& cdf,
                  int indent = -1);

}  // namespace ctflash::replay
