// Adapters that flatten the stack's per-layer stat structs (FtlStats,
// FaultStats, ReadErrorStats, HostStats, per-tenant TenantStats) into one
// MetricsRegistry, so every counter and latency series in the stack is
// enumerable through a single hierarchical namespace:
//
//   ftl.host_write_pages          ftl.waf (gauge)
//   faults.program_failures       media.retry_rungs
//   host.read_latency (histogram) host.queue.2.dispatched
//   tenant.1.throttle_wait_us     tenant.1.read_latency
//
// All adapters ACCUMULATE into the registry (counters add, histograms
// merge), so exporting several devices under distinct prefixes — or the
// same prefix, to aggregate a fleet — both work.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace ctflash::ftl {
struct FtlStats;
struct FaultStats;
struct ReadErrorStats;
}  // namespace ctflash::ftl
namespace ctflash::host {
struct HostStats;
}
namespace ctflash::qos {
class TenantTable;
}

namespace ctflash::obs {

void ExportFtlStats(const ftl::FtlStats& stats, const std::string& prefix,
                    MetricsRegistry& registry);
void ExportFaultStats(const ftl::FaultStats& stats, const std::string& prefix,
                      MetricsRegistry& registry);
void ExportReadErrorStats(const ftl::ReadErrorStats& stats,
                          const std::string& prefix,
                          MetricsRegistry& registry);
void ExportHostStats(const host::HostStats& stats, const std::string& prefix,
                     MetricsRegistry& registry);
/// One sub-tree per registered tenant: "<prefix>.<tenant-name>.*".
void ExportTenantStats(const qos::TenantTable& tenants,
                       const std::string& prefix, MetricsRegistry& registry);

}  // namespace ctflash::obs
