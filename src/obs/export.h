// Exporters: Chrome/Perfetto trace-event JSON for timelines, deterministic
// JSON for phase breakdowns, and a stable digest for byte-determinism
// assertions.
//
// The trace format is the Chrome trace-event JSON ui.perfetto.dev loads
// directly: {"traceEvents": [...]} with complete ("X") duration events,
// metadata ("M") events naming one track per die / submission queue /
// tenant, and counter ("C") tracks sampled per metrics epoch.  Timestamps
// are simulated microseconds, so the timeline reads in device time.
// Serialization is hand-rolled integer/string formatting — no float
// printing, no pointer ordering — so the bytes are identical for any
// worker count, which TraceDigest() makes cheap to assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/tracer.h"

namespace ctflash::obs {

struct TraceExportOptions {
  std::uint32_t pid = 1;              ///< Chrome process id for this device
  std::string process_name = "device";
};

/// One device's timeline as Chrome trace-event JSON.
std::string ChromeTraceJson(const Tracer& tracer,
                            const TraceExportOptions& options = {});

/// A fleet: every device becomes its own Chrome process (pid = index + 1,
/// named by the pair's first element).  Null tracers are skipped.
std::string ChromeTraceJson(
    const std::vector<std::pair<std::string, const Tracer*>>& devices);

/// One extra counter track on a device's timeline, sampled on the
/// tracer's metrics-epoch grid (value index == epoch).  Values are
/// integers — the exporter never prints floats — so fractional series
/// (health scores) are exported in fixed-point (e.g. per-mille).
struct CounterSeries {
  std::string name;         ///< counter track name ("health")
  std::string key = "value";  ///< args key inside the counter sample
  std::vector<std::uint64_t> values;
};

/// A fleet device plus its extra counter tracks (health score, SLO window
/// p99, ...).  Null tracers are skipped, like the pair overload.
struct FleetDeviceExport {
  std::string name;
  const Tracer* tracer = nullptr;
  std::vector<CounterSeries> counters;
};

/// Fleet export with per-device extra counter tracks alongside the
/// tracer's own spans and counters.
std::string ChromeTraceJson(const std::vector<FleetDeviceExport>& devices);

/// Deterministic phase-breakdown JSON: {"read": {...}, "write": {...}}
/// with count/mean/p50/p99/max per phase and the attributed stall table.
campaign::Json PhaseStatsJson(const PhaseStats& stats);

/// The tracer's aggregates as one deterministic JSON object: phases,
/// per-epoch phase rows, epoch counters, span accounting.
campaign::Json TracerJson(const Tracer& tracer);

/// Dumps the whole-run phase aggregate into a metrics registry under
/// `prefix` ("obs" -> "obs.read.media.p99_us", "obs.read.stall.die-busy-gc.us").
void ExportPhaseStats(const PhaseStats& stats, const std::string& prefix,
                      MetricsRegistry& registry);

/// FNV-1a over the bytes (trace/report byte-determinism assertions).
std::uint64_t TraceDigest(const std::string& bytes);

}  // namespace ctflash::obs
