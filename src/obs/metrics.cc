#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace ctflash::obs {

double QuantileFromBins(const std::vector<std::uint64_t>& bins, double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("QuantileFromBins: q outside [0,1]");
  }
  using QE = util::QuantileEstimator;
  std::uint64_t count = 0;
  const int limit = static_cast<int>(
      std::min<std::size_t>(bins.size(), static_cast<std::size_t>(QE::kBins)));
  for (int b = 0; b < limit; ++b) count += bins[static_cast<std::size_t>(b)];
  if (count == 0) return 0.0;
  // Mirror QuantileEstimator::Quantile exactly: same target, same
  // accumulation order, same interpolation arithmetic.
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (int b = 0; b < limit; ++b) {
    const double n = static_cast<double>(bins[static_cast<std::size_t>(b)]);
    if (cum + n >= target && n > 0) {
      const double lo = static_cast<double>(QE::BinLow(b));
      const double hi = static_cast<double>(QE::BinHigh(b));
      const double frac = (target - cum) / n;
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  return static_cast<double>(QE::BinHigh(QE::kBins - 1));
}

BinQuantiles SummarizeBins(const std::vector<std::uint64_t>& bins) {
  BinQuantiles out;
  for (const std::uint64_t n : bins) out.count += n;
  if (out.count == 0) return out;
  out.p50_us = QuantileFromBins(bins, 0.50);
  out.p99_us = QuantileFromBins(bins, 0.99);
  out.p999_us = QuantileFromBins(bins, 0.999);
  return out;
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

util::LatencyStats& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_[name];
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

BinQuantiles MetricsRegistry::HistogramQuantiles(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return BinQuantiles{};
  return SummarizeBins(it->second.quantiles().bins());
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].Merge(hist);
  }
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

campaign::Json MetricsRegistry::ToJson() const {
  campaign::Json out;
  campaign::Json counters;
  for (const auto& [name, value] : counters_) counters[name] = value;
  campaign::Json gauges;
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  campaign::Json histograms;
  for (const auto& [name, hist] : histograms_) {
    campaign::Json h;
    h["count"] = hist.count();
    h["mean_us"] = hist.mean_us();
    h["p50_us"] = hist.p50_us();
    h["p99_us"] = hist.p99_us();
    h["p999_us"] = hist.p999_us();
    h["max_us"] = hist.max_us();
    histograms[name] = std::move(h);
  }
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace ctflash::obs
