#include "core/ppb_ftl.h"

#include <stdexcept>

#include "util/logging.h"

namespace ctflash::core {

void PpbConfig::Validate() const {
  if (vb_split < 2 || vb_split % 2 != 0) {
    throw std::invalid_argument("PpbConfig: vb_split must be even and >= 2");
  }
  if (cold_promote_threshold == 0) {
    throw std::invalid_argument("PpbConfig: cold_promote_threshold must be > 0");
  }
}

namespace {
std::uint64_t AutoSize(std::uint64_t configured, std::uint64_t logical_pages,
                       double fraction) {
  if (configured != 0) return configured;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(logical_pages) * fraction);
  return v == 0 ? 1 : v;
}

/// Livelock guard for striped list growth (VbStripingConfig::max_open_blocks):
/// open blocks must never absorb the whole spare pool, or FULL blocks end up
/// 100 % valid and GC cannot reclaim anything.  Cap the population at
/// spare - gc_threshold_low - 2 (1, i.e. effectively no growth, on devices
/// too small to afford it).
std::uint64_t OpenBlockCap(std::uint64_t total_blocks,
                           std::uint64_t logical_pages,
                           std::uint32_t pages_per_block,
                           const ftl::FtlConfig& cfg) {
  const std::uint64_t logical_blocks =
      (logical_pages + pages_per_block - 1) / pages_per_block;
  const std::uint64_t spare = total_blocks - logical_blocks;
  const std::uint64_t floor = cfg.gc_threshold_low + 2;
  return spare > floor + 1 ? spare - floor : 1;
}
}  // namespace

PpbFtl::PpbFtl(ftl::FlashTarget& target, const ftl::FtlConfig& ftl_config,
               const PpbConfig& ppb_config,
               std::unique_ptr<FirstStageClassifier> classifier)
    : FtlBase(target, ftl_config),
      vbm_(blocks_, target.geometry().pages_per_block, ppb_config.vb_split,
           ppb_config.max_open_fast_vbs,
           VbStripingConfig{
               ftl::WriteAllocatorConfig{ftl_config.write_frontiers,
                                         ftl_config.stripe_policy},
               [this](BlockId b) { return target_.geometry().DieOfBlock(b); },
               [this](BlockId b) { return target_.DieFreeAt(b); },
               target.geometry().TotalDies(),
               ftl_config.gc_threshold_low,
               /*gc_claim_reserve_blocks=*/2,
               OpenBlockCap(target.geometry().TotalBlocks(), logical_pages_,
                            target.geometry().pages_per_block, ftl_config)}),
      lru_(AutoSize(ppb_config.hot_lru_capacity, logical_pages_, 0.08),
           AutoSize(ppb_config.iron_lru_capacity, logical_pages_, 0.04)),
      freq_(ppb_config.cold_promote_threshold,
            AutoSize(ppb_config.freq_table_capacity, logical_pages_, 0.25)),
      classifier_(std::move(classifier)),
      ppb_config_(ppb_config) {
  ppb_config_.Validate();
  if (config_.wear.Enabled()) {
    blocks_.SetWearProvider(
        [this](BlockId b) { return target_.nand().PeCycles(b); });
  }
  if (!classifier_) {
    const std::uint64_t threshold =
        ppb_config_.hot_size_threshold_bytes != 0
            ? ppb_config_.hot_size_threshold_bytes
            : target.geometry().page_size_bytes;
    classifier_ = MakeSizeCheckClassifier(threshold);
  }
}

HotnessLevel PpbFtl::LevelOf(Lpn lpn) const {
  switch (lru_.TierOf(lpn)) {
    case TwoLevelLru::Tier::kIronHot:
      return HotnessLevel::kIronHot;
    case TwoLevelLru::Tier::kHot:
      return HotnessLevel::kHot;
    case TwoLevelLru::Tier::kNone:
      break;
  }
  return freq_.IsCold(lpn) ? HotnessLevel::kCold : HotnessLevel::kIcyCold;
}

HotnessLevel PpbFtl::ClassifyWrite(Lpn lpn, std::uint64_t request_bytes) {
  const std::uint64_t offset = lpn * PageSize();
  if (classifier_->IsHotWrite(offset, request_bytes)) {
    // Hot area: two-level LRU decides iron-hot vs hot.
    freq_.Erase(lpn);  // leaving the cold area
    const auto out = lru_.OnWrite(lpn);
    if (out.demoted_to_cold) {
      freq_.OnWrite(*out.demoted_to_cold);
      ppb_stats_.cold_demotions++;
    }
    if (!ppb_config_.migrate_on_update) return HotnessLevel::kHot;
    return out.tier == TwoLevelLru::Tier::kIronHot ? HotnessLevel::kIronHot
                                                   : HotnessLevel::kHot;
  }
  // Cold area: fresh content, popularity unknown again -> icy-cold; reads
  // promote it to cold progressively (Figure 6 "promote if read").
  if (lru_.Contains(lpn)) {
    lru_.Erase(lpn);
    ppb_stats_.cold_demotions++;
  }
  freq_.OnWrite(lpn);
  return HotnessLevel::kIcyCold;
}

HotnessLevel PpbFtl::RelocationLevel(Lpn lpn, Area src_area) {
  if (src_area == Area::kHot) {
    switch (lru_.TierOf(lpn)) {
      case TwoLevelLru::Tier::kIronHot:
        // Still in the iron-hot LRU -> actively read; GC moves it onto the
        // fast pages of the hot area (progressive migration, Fig. 6).
        return HotnessLevel::kIronHot;
      case TwoLevelLru::Tier::kHot:
        // Survived a full GC cycle without modification -> not hot after
        // all; "demote if not modified" sends it to the icy-cold area.
        lru_.Erase(lpn);
        ppb_stats_.cold_demotions++;
        freq_.OnWrite(lpn);
        return HotnessLevel::kIcyCold;
      case TwoLevelLru::Tier::kNone:
        break;  // already LRU-evicted; fall through to the frequency table
    }
  }
  // Cold-area re-ranking: the GC-time icy-cold <-> cold movement.
  return freq_.IsCold(lpn) ? HotnessLevel::kCold : HotnessLevel::kIcyCold;
}

PpbFtl::ProgramOutcome PpbFtl::ProgramWithRetry(Ppn ppn, Area area,
                                                HotnessLevel level,
                                                bool gc_stream, Us earliest) {
  ftl::MediaOpResult pr = target_.ProgramPageChecked(ppn, earliest);
  for (std::uint32_t attempt = 1; pr.failed; ++attempt) {
    OnProgramFailure(ppn, pr.die_lost);
    if (attempt >= target_.MaxProgramAttempts()) {
      throw ftl::MediaError("PpbFtl: page program failed " +
                            std::to_string(attempt) + " times");
    }
    auto alloc = vbm_.AllocatePage(area, level, gc_stream);
    if (!alloc.has_value()) {
      throw ftl::MediaError(
          "PpbFtl: spare pool exhausted while retrying a failed program");
    }
    if (alloc->diverted) ppb_stats_.diverted_writes++;
    if (alloc->fast_class) {
      ppb_stats_.fast_class_writes++;
    } else {
      ppb_stats_.slow_class_writes++;
    }
    ppn = alloc->ppn;
    pr = target_.ProgramPageChecked(ppn, pr.done);
  }
  return {ppn, pr.done};
}

Us PpbFtl::PlacePage(Lpn lpn, HotnessLevel level, Us earliest) {
  const Area area = AreaOf(level);
  auto alloc = vbm_.AllocatePage(area, level);
  if (!alloc.has_value()) {
    // GC thresholds keep the free pool alive in the fault-free device;
    // running dry means retirement ate the spare pool (e.g. a lost die).
    throw ftl::MediaError("PpbFtl: spare pool exhausted on host write");
  }
  if (alloc->diverted) ppb_stats_.diverted_writes++;
  if (alloc->fast_class) {
    ppb_stats_.fast_class_writes++;
  } else {
    ppb_stats_.slow_class_writes++;
  }
  const ProgramOutcome out =
      ProgramWithRetry(alloc->ppn, area, level, /*gc_stream=*/false, earliest);
  const Ppn old = map_.Update(lpn, out.ppn);
  if (old != kInvalidPpn) blocks_.RemoveValid(target_.geometry().BlockOf(old));
  blocks_.AddValid(target_.geometry().BlockOf(out.ppn));
  return out.done;
}

void PpbFtl::OnGcVictimChosen(BlockId victim) {
  const auto area_idx = static_cast<std::size_t>(vbm_.AreaOfBlock(victim));
  ppb_stats_.gc_victims_by_area[area_idx]++;
  ppb_stats_.gc_victim_valid_by_area[area_idx] += blocks_.ValidCount(victim);
}

Us PpbFtl::RelocatePageForGc(Lpn lpn, Ppn src, BlockId victim, Us earliest) {
  const auto& geo = target_.geometry();
  const std::uint32_t p = geo.PageOf(src);
  HotnessLevel level;
  if (ppb_config_.migrate_on_gc) {
    level = RelocationLevel(lpn, vbm_.AreaOfBlock(victim));
  } else {
    const Area src_area = vbm_.AreaOfBlock(victim);
    const bool src_fast = vbm_.IsFastClassPage(p);
    level = src_area == Area::kHot
                ? (src_fast ? HotnessLevel::kIronHot : HotnessLevel::kHot)
                : (src_fast ? HotnessLevel::kCold : HotnessLevel::kIcyCold);
  }
  auto alloc = vbm_.AllocatePage(AreaOf(level), level, /*gc_stream=*/true);
  if (!alloc.has_value()) {
    throw ftl::MediaError("PpbFtl: spare pool exhausted on GC relocation");
  }
  const bool class_changed = alloc->fast_class != vbm_.IsFastClassPage(p) ||
                             AreaOf(level) != vbm_.AreaOfBlock(victim);
  if (class_changed) ppb_stats_.gc_migrations++;
  if (alloc->fast_class) {
    ppb_stats_.fast_class_writes++;
  } else {
    ppb_stats_.slow_class_writes++;
  }
  const ftl::MediaReadResult rr =
      target_.ReadPageChecked(src, earliest, 0, ftl::ReadKind::kGc);
  // The destination page is programmed even when the source read failed:
  // the VB fill pointer already advanced and NAND forbids holes in the
  // program order.  A lost source just relocates garbage.
  const ProgramOutcome out =
      ProgramWithRetry(alloc->ppn, AreaOf(level), level, /*gc_stream=*/true,
                       rr.done);
  if (rr.DataLost()) {
    OnGcReadLost(lpn, victim);
  } else {
    map_.ReleasePpn(src);
    map_.Update(lpn, out.ppn);
    blocks_.RemoveValid(victim);
    blocks_.AddValid(geo.BlockOf(out.ppn));
  }
  stats_.gc_page_copies++;
  return out.done;
}

Us PpbFtl::DoWrite(Lpn lpn_first, std::uint32_t pages,
                   std::uint64_t request_bytes, Us earliest) {
  const Us gc_done = MaybeRunGc(earliest);
  const Us start = config_.charge_gc_to_write ? gc_done : earliest;
  Us completion = start;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const Lpn lpn = lpn_first + i;
    const HotnessLevel level = ClassifyWrite(lpn, request_bytes);
    if (AreaOf(level) == Area::kHot) {
      ppb_stats_.hot_area_writes++;
    } else {
      ppb_stats_.cold_area_writes++;
    }
    const Us done = PlacePage(lpn, level, start);
    if (done > completion) completion = done;
  }
  return completion;
}

Us PpbFtl::DoRead(Lpn lpn_first, std::uint32_t pages,
                  std::uint64_t offset_bytes, std::uint64_t size_bytes,
                  Us earliest) {
  Us completion = earliest;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const Lpn lpn = lpn_first + i;
    const Ppn ppn = map_.Lookup(lpn);
    if (ppn == kInvalidPpn) continue;
    const std::uint32_t page_in_block = target_.geometry().PageOf(ppn);
    if (vbm_.IsFastClassPage(page_in_block)) {
      ppb_stats_.fast_reads++;
    } else {
      ppb_stats_.slow_reads++;
    }
    const auto level_idx = static_cast<std::size_t>(LevelOf(lpn));
    ppb_stats_.reads_at_level[level_idx]++;
    ppb_stats_.read_factor_sum[level_idx] +=
        target_.latency_model().SpeedFactor(page_in_block);
    const ftl::MediaReadResult rr = target_.ReadPageChecked(
        ppn, earliest, TransferBytesFor(lpn, offset_bytes, size_bytes));
    if (rr.DataLost()) OnHostReadLost(lpn);
    if (rr.done > completion) completion = rr.done;

    // Progressive bookkeeping (no physical movement here).
    const auto tier_before = lru_.TierOf(lpn);
    if (tier_before != TwoLevelLru::Tier::kNone) {
      const auto out = lru_.OnRead(lpn);
      if (tier_before == TwoLevelLru::Tier::kHot) ppb_stats_.iron_promotions++;
      if (out.demoted_to_cold) {
        freq_.OnWrite(*out.demoted_to_cold);
        ppb_stats_.cold_demotions++;
      }
    } else {
      freq_.OnRead(lpn);
    }
  }
  return completion;
}

bool PpbFtl::CheckInvariants() const {
  if (!map_.CheckConsistent()) return false;
  if (!vbm_.CheckInvariants()) return false;
  const auto& geo = target_.geometry();
  std::vector<std::uint32_t> valid(geo.TotalBlocks(), 0);
  for (Lpn lpn = 0; lpn < map_.logical_pages(); ++lpn) {
    const Ppn ppn = map_.Lookup(lpn);
    if (ppn == kInvalidPpn) continue;
    if (!target_.nand().IsPageProgrammed(ppn)) return false;
    valid[geo.BlockOf(ppn)]++;
  }
  for (BlockId b = 0; b < geo.TotalBlocks(); ++b) {
    if (valid[b] != blocks_.ValidCount(b)) return false;
    // The VBM fill pointer must agree with the NAND program pointer.
    if (vbm_.FillOf(b) != target_.nand().NextProgramPage(b)) return false;
    // Pairing invariant: any block holding data belongs to exactly one area.
    if (vbm_.FillOf(b) > 0 && vbm_.AreaOfBlock(b) == Area::kNone) return false;
  }
  return true;
}

void PpbFtl::SaveVariantState(util::StateWriter& w) const {
  w.Tag("PPBF");
  vbm_.SaveState(w);
  lru_.SaveState(w);
  freq_.SaveState(w);
  w.PutU64(ppb_stats_.hot_area_writes);
  w.PutU64(ppb_stats_.cold_area_writes);
  w.PutU64(ppb_stats_.iron_promotions);
  w.PutU64(ppb_stats_.cold_demotions);
  w.PutU64(ppb_stats_.diverted_writes);
  w.PutU64(ppb_stats_.fast_class_writes);
  w.PutU64(ppb_stats_.slow_class_writes);
  w.PutU64(ppb_stats_.gc_migrations);
  w.PutU64(ppb_stats_.fast_reads);
  w.PutU64(ppb_stats_.slow_reads);
  for (std::uint64_t v : ppb_stats_.reads_at_level) w.PutU64(v);
  for (double v : ppb_stats_.read_factor_sum) w.PutDouble(v);
  for (std::uint64_t v : ppb_stats_.gc_victims_by_area) w.PutU64(v);
  for (std::uint64_t v : ppb_stats_.gc_victim_valid_by_area) w.PutU64(v);
}

void PpbFtl::LoadVariantState(util::StateReader& r) {
  r.ExpectTag("PPBF");
  vbm_.LoadState(r);
  lru_.LoadState(r);
  freq_.LoadState(r);
  ppb_stats_.hot_area_writes = r.GetU64();
  ppb_stats_.cold_area_writes = r.GetU64();
  ppb_stats_.iron_promotions = r.GetU64();
  ppb_stats_.cold_demotions = r.GetU64();
  ppb_stats_.diverted_writes = r.GetU64();
  ppb_stats_.fast_class_writes = r.GetU64();
  ppb_stats_.slow_class_writes = r.GetU64();
  ppb_stats_.gc_migrations = r.GetU64();
  ppb_stats_.fast_reads = r.GetU64();
  ppb_stats_.slow_reads = r.GetU64();
  for (std::uint64_t& v : ppb_stats_.reads_at_level) v = r.GetU64();
  for (double& v : ppb_stats_.read_factor_sum) v = r.GetDouble();
  for (std::uint64_t& v : ppb_stats_.gc_victims_by_area) v = r.GetU64();
  for (std::uint64_t& v : ppb_stats_.gc_victim_valid_by_area) v = r.GetU64();
}

}  // namespace ctflash::core
