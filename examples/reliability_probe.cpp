// Reliability probe: the other face of the asymmetric feature process size.
//
// The same field concentration that makes bottom layers FAST also raises
// their raw bit error rate.  This example tabulates the synthetic layer
// error model (per-layer RBER, analytic endurance) and Monte-Carlo-checks
// ECC correctability across wear, demonstrating the reliability/performance
// trade-off a layer-aware FTL could additionally exploit.
//
//   ./reliability_probe [pe_cycles]
#include <cstdint>
#include <iostream>
#include <string>

#include "nand/error_model.h"
#include "nand/latency_model.h"
#include "util/random.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;

  std::uint32_t probe_pe = 2000;
  if (argc > 1) probe_pe = static_cast<std::uint32_t>(std::stoul(argv[1]));

  nand::NandGeometry geometry;  // Table 1 device
  nand::NandTiming timing;
  timing.speed_ratio = 2.0;
  const nand::LatencyModel latency(geometry, timing);
  const nand::LayerErrorModel errors(geometry, nand::ErrorModelConfig{});

  std::cout << "Layer profile of the Table 1 device (" << geometry.num_layers
            << " layers, speed ratio " << timing.speed_ratio << "x):\n\n";

  util::TablePrinter table({"layer", "read (us)", "fresh RBER",
                            "RBER @" + std::to_string(probe_pe) + " P/E",
                            "analytic endurance (P/E)"});
  const std::uint32_t pages_per_layer =
      geometry.pages_per_block / geometry.num_layers;
  for (const std::uint32_t layer : {0u, 15u, 31u, 47u, 63u}) {
    const std::uint32_t page = layer * pages_per_layer;
    table.AddRow(
        {std::to_string(layer) + (layer == 0 ? " (top)" : layer == 63 ? " (bottom)" : ""),
         std::to_string(latency.ReadUs(page)),
         util::TablePrinter::FormatScientific(errors.Rber(page, 0)),
         util::TablePrinter::FormatScientific(errors.Rber(page, probe_pe)),
         util::TablePrinter::FormatDouble(errors.EnduranceEstimate(page), 0)});
  }
  table.Print();

  std::cout << "\nMonte-Carlo ECC check (10000 page reads per cell):\n\n";
  util::TablePrinter mc({"P/E cycles", "top-layer uncorrectable",
                         "bottom-layer uncorrectable"});
  util::Xoshiro256StarStar rng(2026);
  // Sample around the analytic endurance of the bottom layer (~13k P/E) so
  // the correctability cliff is visible.
  for (const std::uint32_t pe : {4000u, 10000u, 12000u, 13000u, 14000u, 16000u}) {
    int fail_top = 0, fail_bottom = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
      if (!errors.Correctable(errors.SampleBitErrors(0, pe, rng))) ++fail_top;
      if (!errors.Correctable(errors.SampleBitErrors(
              geometry.pages_per_block - 1, pe, rng))) {
        ++fail_bottom;
      }
    }
    mc.AddRow({std::to_string(pe),
               util::TablePrinter::FormatPercent(
                   static_cast<double>(fail_top) / trials),
               util::TablePrinter::FormatPercent(
                   static_cast<double>(fail_bottom) / trials)});
  }
  mc.Print();

  std::cout << "\nTake-away: bottom layers are ~" << timing.speed_ratio
            << "x faster to read but wear out first; a layer-aware FTL could\n"
               "combine PPB placement with wear-aware retirement per layer.\n";
  return 0;
}
