// Fundamental scalar type aliases used across the ctflash libraries.
//
// All simulated time is carried in microseconds as a double-free integral
// count (ctflash::Us).  All byte quantities are 64-bit.  Logical/physical
// page numbers are 64-bit so a 64 GiB device with 4 KiB pages is far below
// the representable range.
#pragma once

#include <cstdint>
#include <limits>

namespace ctflash {

/// Simulated time in microseconds (integral; 2^63 us ~ 292k years).
using Us = std::int64_t;

/// Logical block address in units of 512-byte sectors (host view).
using Lba = std::uint64_t;

/// Logical page number (device page granularity).
using Lpn = std::uint64_t;

/// Physical page number (flat index across the whole device).
using Ppn = std::uint64_t;

/// Flat physical block index across the whole device.
using BlockId = std::uint64_t;

/// Virtual-block index (BlockId * split_count + slice).
using VbId = std::uint64_t;

/// Sentinel for "no page / unmapped".
inline constexpr Ppn kInvalidPpn = std::numeric_limits<Ppn>::max();
inline constexpr Lpn kInvalidLpn = std::numeric_limits<Lpn>::max();
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();
inline constexpr VbId kInvalidVb = std::numeric_limits<VbId>::max();

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

}  // namespace ctflash
