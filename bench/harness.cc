#include "harness.h"

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "replay/trace_source.h"
#include "util/config.h"
#include "util/table_printer.h"

namespace ctflash::bench {

Us PrefillSnapshotCache::Prefill(ssd::Ssd& ssd, std::uint64_t bytes,
                                 std::uint64_t chunk_bytes) {
  const std::string key = campaign::SnapshotShapeKey(ssd.config()) +
                          "|bytes=" + std::to_string(bytes) +
                          "|chunk=" + std::to_string(chunk_bytes);
  const auto t0 = std::chrono::steady_clock::now();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ssd.Restore(it->second.state);
    const double restore_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ++restores_;
    saved_wall_ms_ += it->second.wall_ms - restore_ms;
    return static_cast<Us>(it->second.state.clock_us);
  }
  ssd::ExperimentRunner runner(ssd);
  const Us end = runner.Prefill(bytes, chunk_bytes);
  Entry entry{ssd.Snapshot(end), 0.0};
  entry.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  prefill_wall_ms_ += entry.wall_ms;
  ++distinct_prefills_;
  cache_.emplace(key, std::move(entry));
  return end;
}

std::string PrefillSnapshotCache::JsonObject() const {
  std::ostringstream os;
  os << "{\"distinct_prefills\": " << distinct_prefills_
     << ", \"restores\": " << restores_
     << ", \"prefill_wall_ms\": " << prefill_wall_ms_
     << ", \"saved_wall_ms\": " << saved_wall_ms_ << "}";
  return os.str();
}

std::vector<std::string> AddTenantTraceSources(
    replay::ReplayPlan& plan, const std::vector<TenantTraceOption>& specs,
    std::uint64_t logical_bytes, std::size_t tenant_count) {
  std::vector<std::string> names;
  const std::uint64_t slice = logical_bytes / specs.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    if (spec.tenant >= tenant_count) {
      throw std::runtime_error("--tenant-trace: unknown tenant " +
                               std::to_string(spec.tenant));
    }
    replay::StreamingMsrCsvSource::Options source_opts;
    source_opts.hostname_filter = spec.hostname;
    replay::SourceOptions opts;
    opts.name = spec.hostname.empty() ? "tenant" + std::to_string(spec.tenant)
                                      : spec.hostname;
    opts.tenant = spec.tenant;
    opts.remap.policy = replay::RemapPolicy::kWrap;
    opts.remap.footprint_bytes = slice;
    opts.remap.base_bytes = slice * i;
    plan.AddSource(std::make_unique<replay::StreamingMsrCsvSource>(spec.path,
                                                                   source_opts),
                   opts);
    names.push_back(opts.name);
  }
  return names;
}

BenchOptions BenchOptions::FromArgs(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--device") {
      o.device_bytes = util::ParseByteSize(next());
    } else if (arg == "--requests") {
      const std::uint64_t n = std::stoull(next());
      o.web_requests = n;
      o.media_requests = n;
    } else if (arg == "--quick") {
      o.web_requests /= 10;
      o.media_requests /= 10;
    } else if (arg == "--media-trace") {
      o.media_trace_path = next();
    } else if (arg == "--web-trace") {
      o.web_trace_path = next();
    } else if (arg == "--trace-file") {
      o.trace_file = next();
      o.media_trace_path = o.trace_file;
      o.web_trace_path = o.trace_file;
    } else if (arg == "--tenant-trace") {
      // <tenant>=<csv>[@hostname]
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        throw std::invalid_argument(
            "--tenant-trace: expected <tenant>=<csv>[@hostname], got '" +
            spec + "'");
      }
      const std::string tenant = util::Trim(spec.substr(0, eq));
      if (tenant.empty() ||
          tenant.find_first_not_of("0123456789") != std::string::npos ||
          tenant.size() > 6) {
        throw std::invalid_argument("--tenant-trace: bad tenant id '" +
                                    tenant + "'");
      }
      TenantTraceOption opt;
      opt.tenant = static_cast<std::uint32_t>(std::stoul(tenant));
      std::string rest = spec.substr(eq + 1);
      // The hostname separator is an '@' in the final path component only,
      // so directory names containing '@' don't silently truncate the path.
      const auto at = rest.rfind('@');
      const auto slash = rest.rfind('/');
      if (at != std::string::npos && at + 1 < rest.size() &&
          (slash == std::string::npos || at > slash)) {
        opt.hostname = rest.substr(at + 1);
        rest = rest.substr(0, at);
      }
      if (rest.empty()) {
        throw std::invalid_argument("--tenant-trace: empty CSV path in '" +
                                    spec + "'");
      }
      opt.path = rest;
      o.tenant_traces.push_back(opt);
    } else if (arg == "--qd-list") {
      o.qd_list.clear();
      std::istringstream list(next());
      std::string item;
      while (std::getline(list, item, ',')) {
        // Digits only: stoul would silently wrap "-1" and accept "8x".
        const std::string depth = util::Trim(item);
        const bool numeric =
            !depth.empty() &&
            depth.find_first_not_of("0123456789") == std::string::npos;
        if (!numeric || depth.size() > 9) {
          throw std::invalid_argument("--qd-list: bad queue depth '" + item +
                                      "'");
        }
        o.qd_list.push_back(static_cast<std::uint32_t>(std::stoul(depth)));
      }
      if (o.qd_list.empty()) {
        throw std::invalid_argument("--qd-list: no queue depths given");
      }
    } else if (arg == "--qd-requests") {
      o.qd_requests = std::stoull(next());
    } else if (arg == "--frontiers") {
      o.write_frontiers = static_cast<std::uint32_t>(std::stoul(next()));
      if (o.write_frontiers == 0) {
        throw std::invalid_argument("--frontiers must be >= 1");
      }
    } else if (arg == "--json") {
      o.json_path = next();
    } else if (arg == "--trace-out") {
      o.trace_out_path = next();
    } else if (arg == "--metrics-out") {
      o.metrics_out_path = next();
    } else if (arg == "--metrics-epoch-us") {
      o.metrics_epoch_us = static_cast<Us>(std::stoll(next()));
      if (o.metrics_epoch_us < 0) {
        throw std::invalid_argument("--metrics-epoch-us must be >= 0");
      }
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

const char* WorkloadName(Workload w) {
  return w == Workload::kMediaServer ? "Media Server" : "Web SQL";
}

ssd::ExperimentResult RunOne(ssd::FtlKind kind, Workload workload,
                             std::uint32_t page_size_bytes, double speed_ratio,
                             const BenchOptions& options,
                             const std::optional<core::PpbConfig>& ppb_override) {
  auto cfg = ssd::ScaledConfig(kind, options.device_bytes, page_size_bytes,
                               speed_ratio);
  if (ppb_override && kind == ssd::FtlKind::kPpb) cfg.ppb = *ppb_override;
  ssd::Ssd probe(cfg);
  const std::uint64_t footprint = probe.LogicalBytes() / 10 * 8;
  const std::string& real_path = workload == Workload::kMediaServer
                                     ? options.media_trace_path
                                     : options.web_trace_path;
  if (!real_path.empty()) {
    const auto records = trace::ParseMsrCsvFile(real_path);
    return ssd::RunExperiment(cfg, records, footprint, real_path);
  }
  const auto wl = workload == Workload::kMediaServer
                      ? trace::MediaServerWorkload(footprint,
                                                   options.media_requests)
                      : trace::WebServerWorkload(footprint,
                                                 options.web_requests);
  const auto records = trace::SyntheticTraceGenerator(wl).Generate();
  return ssd::RunExperiment(cfg, records, footprint, wl.name);
}

ComparisonResult RunComparison(
    Workload workload, std::uint32_t page_size_bytes, double speed_ratio,
    const BenchOptions& options,
    const std::optional<core::PpbConfig>& ppb_override) {
  ComparisonResult out;
  out.conventional = RunOne(ssd::FtlKind::kConventional, workload,
                            page_size_bytes, speed_ratio, options);
  out.ppb = RunOne(ssd::FtlKind::kPpb, workload, page_size_bytes, speed_ratio,
                   options, ppb_override);
  return out;
}

ssd::SsdConfig QdDeviceConfig(std::uint32_t channels,
                              const BenchOptions& options) {
  nand::NandGeometry shape;  // Table 1
  shape.channels = channels;
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional,
                               options.device_bytes, 16 * 1024,
                               /*speed_ratio=*/2.0, shape);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  return cfg;
}

ssd::SsdConfig WriteDeviceConfig(std::uint32_t channels,
                                 std::uint32_t write_frontiers,
                                 const BenchOptions& options) {
  auto cfg = QdDeviceConfig(channels, options);
  cfg.ftl.write_frontiers = write_frontiers;
  // FtlBase requires spares for gc_threshold_high + one frontier set per
  // stream; keep a few extra so GC has reclaimable victims under churn.
  const double min_spare =
      static_cast<double>(cfg.ftl.gc_threshold_high) + 2.0 * write_frontiers +
      8.0;
  const double min_op =
      min_spare / static_cast<double>(cfg.geometry.TotalBlocks());
  if (min_op > cfg.ftl.op_ratio) cfg.ftl.op_ratio = min_op;
  return cfg;
}

std::vector<ssd::QdSweepPoint> RunQdSweep(const ssd::SsdConfig& config,
                                          const BenchOptions& options) {
  ssd::QdSweepOptions sweep;
  sweep.queue_depths = options.qd_list;
  sweep.requests_per_point = options.qd_requests;
  return ssd::RunQdSweep(config, sweep);
}

void PrintQdSweep(const std::string& label,
                  const std::vector<ssd::QdSweepPoint>& points) {
  std::cout << "--- " << label << " ---\n";
  util::TablePrinter table({"QD", "IOPS", "mean us", "p50 us", "p95 us",
                            "p99 us", "p99.9 us", "die util", "chan util"});
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.queue_depth),
                  util::TablePrinter::FormatDouble(p.iops, 0),
                  util::TablePrinter::FormatDouble(p.mean_us, 1),
                  util::TablePrinter::FormatDouble(p.p50_us, 1),
                  util::TablePrinter::FormatDouble(p.p95_us, 1),
                  util::TablePrinter::FormatDouble(p.p99_us, 1),
                  util::TablePrinter::FormatDouble(p.p999_us, 1),
                  util::TablePrinter::FormatPercent(p.die_utilization),
                  util::TablePrinter::FormatPercent(p.channel_utilization)});
  }
  table.Print();
  std::cout << "\n";
}

void PrintHeader(const std::string& title, const std::string& paper_ref,
                 const BenchOptions& options) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Reproduces: " << paper_ref
            << " (Chen et al., DAC'17, PPB strategy)\n";
  std::cout << "Device: " << (options.device_bytes >> 20)
            << " MiB scaled array, Table 1 timing/shape; traces: media="
            << options.media_requests << " reqs, web=" << options.web_requests
            << " reqs\n\n";
}

}  // namespace ctflash::bench
