// TraceSource property tests: bounded streaming windows, reset determinism,
// and adapter equivalence with the materializing paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "replay/trace_source.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

namespace ctflash::replay {
namespace {

std::vector<trace::TraceRecord> Drain(TraceSource& source) {
  std::vector<trace::TraceRecord> out;
  while (auto r = source.Next()) out.push_back(*r);
  return out;
}

class TempCsv {
 public:
  explicit TempCsv(const std::vector<trace::TraceRecord>& records) {
    path_ = testing::TempDir() + "replay_source_test.csv";
    std::ofstream out(path_);
    trace::WriteMsrCsv(records, out);
  }
  ~TempCsv() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<trace::TraceRecord> WebRecords(std::uint64_t n) {
  const auto cfg = trace::WebServerWorkload(256 * kMiB, n);
  return trace::SyntheticTraceGenerator(cfg).Generate();
}

TEST(VectorTraceSource, YieldsAllRecordsAndResets) {
  const auto records = WebRecords(500);
  VectorTraceSource source(records);
  EXPECT_EQ(source.SizeHint(), records.size());
  EXPECT_EQ(Drain(source), records);
  EXPECT_FALSE(source.Next().has_value());
  source.Reset();
  EXPECT_EQ(Drain(source), records);
}

TEST(SyntheticTraceSource, MatchesMaterializedGenerator) {
  const auto cfg = trace::WebServerWorkload(256 * kMiB, 1000);
  SyntheticTraceSource source(cfg);
  const auto streamed = Drain(source);
  EXPECT_EQ(streamed, trace::SyntheticTraceGenerator(cfg).Generate());
  // Reset replays the identical stream (reseeded, not resumed).
  source.Reset();
  EXPECT_EQ(Drain(source), streamed);
}

TEST(StreamingMsrCsvSource, MatchesBatchParser) {
  const auto records = WebRecords(2000);
  TempCsv csv(records);
  StreamingMsrCsvSource source(csv.path());
  EXPECT_EQ(Drain(source), trace::ParseMsrCsvFile(csv.path()));
}

TEST(StreamingMsrCsvSource, ResidentWindowStaysBounded) {
  const auto records = WebRecords(10'000);
  TempCsv csv(records);
  StreamingMsrCsvSource::Options options;
  options.window_records = 64;
  StreamingMsrCsvSource source(csv.path(), options);
  const auto streamed = Drain(source);
  EXPECT_EQ(streamed.size(), records.size());
  // O(window), not O(trace): 10'000 records never more than 64 resident.
  EXPECT_LE(source.PeakResidentRecords(), options.window_records);
  EXPECT_GT(source.PeakResidentRecords(), 0u);
}

TEST(StreamingMsrCsvSource, ResetRestartsFromTheTop) {
  const auto records = WebRecords(300);
  TempCsv csv(records);
  StreamingMsrCsvSource source(csv.path());
  // Consume a prefix, then Reset: the full stream must come back.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(source.Next().has_value());
  source.Reset();
  EXPECT_EQ(Drain(source).size(), records.size());
}

TEST(StreamingMsrCsvSource, RejectsMissingFileAndZeroWindow) {
  EXPECT_THROW(StreamingMsrCsvSource("/nonexistent/trace.csv"),
               std::runtime_error);
  const auto records = WebRecords(10);
  TempCsv csv(records);
  StreamingMsrCsvSource::Options options;
  options.window_records = 0;
  EXPECT_THROW(StreamingMsrCsvSource(csv.path(), options),
               std::invalid_argument);
}

TEST(StreamingMsrCsvSource, PropagatesParserErrorsWithLineNumbers) {
  const std::string path = testing::TempDir() + "replay_source_bad.csv";
  {
    std::ofstream out(path);
    out << "0,host,0,Read,0,4096,0\n";
    out << "10,host,0,Read,-5,4096,0\n";  // negative offset
  }
  StreamingMsrCsvSource source(path);
  EXPECT_THROW(Drain(source), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctflash::replay
