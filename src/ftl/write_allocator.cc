#include "ftl/write_allocator.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/logging.h"

namespace ctflash::ftl {

const char* StripePolicyName(StripePolicy policy) {
  switch (policy) {
    case StripePolicy::kRoundRobin:
      return "round-robin";
    case StripePolicy::kLeastBusy:
      return "least-busy";
  }
  return "?";
}

void WriteAllocatorConfig::Validate() const {
  if (write_frontiers == 0) {
    throw std::invalid_argument(
        "WriteAllocatorConfig: write_frontiers must be >= 1");
  }
}

DieStriper::DieStriper(std::function<std::uint64_t(BlockId)> die_of,
                       std::function<Us(BlockId)> die_free_at,
                       StripePolicy policy)
    : die_of_(std::move(die_of)),
      die_free_at_(std::move(die_free_at)),
      policy_(policy) {}

std::size_t DieStriper::Pick(const std::deque<BlockId>& candidates) {
  CTFLASH_CHECK(!candidates.empty());
  // Rotation key: dies strictly after the anchor come first (in ascending
  // die order), then wrap-around — i.e. the next die in a fixed cyclic
  // order.  kRoundRobin ranks by (rotation, free-at, index); kLeastBusy by
  // (free-at, rotation, index).  Index last keeps ties deterministic.
  constexpr std::uint64_t kWrap = 1ull << 32;
  std::size_t best = 0;
  std::uint64_t best_rot = 0;
  Us best_free = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::uint64_t die = die_of_(candidates[i]);
    const std::uint64_t rot = die > last_die_ ? die : die + kWrap;
    const Us free = die_free_at_(candidates[i]);
    bool better;
    if (policy_ == StripePolicy::kRoundRobin) {
      better = rot < best_rot || (rot == best_rot && free < best_free);
    } else {
      better = free < best_free || (free == best_free && rot < best_rot);
    }
    if (i == 0 || better) {
      best = i;
      best_rot = rot;
      best_free = free;
    }
  }
  last_die_ = die_of_(candidates[best]);
  return best;
}

WriteAllocator::WriteAllocator(BlockManager& blocks,
                               std::uint32_t pages_per_block,
                               std::function<std::uint64_t(BlockId)> die_of,
                               std::function<Us(BlockId)> die_free_at,
                               std::uint64_t total_dies,
                               const WriteAllocatorConfig& config,
                               std::uint32_t num_streams,
                               std::uint64_t claim_reserve_blocks)
    : blocks_(blocks),
      pages_per_block_(pages_per_block),
      die_of_(std::move(die_of)),
      die_free_at_(std::move(die_free_at)),
      config_(config),
      effective_frontiers_(static_cast<std::uint32_t>(
          std::min<std::uint64_t>(config.write_frontiers,
                                  total_dies == 0 ? 1 : total_dies))),
      fill_(blocks.total_blocks(), 0) {
  config_.Validate();
  if (num_streams == 0) {
    throw std::invalid_argument("WriteAllocator: num_streams must be >= 1");
  }
  if (pages_per_block != blocks.pages_per_block()) {
    throw std::invalid_argument(
        "WriteAllocator: geometry disagrees with BlockManager");
  }
  streams_.reserve(num_streams);
  for (std::uint32_t s = 0; s < num_streams; ++s) {
    streams_.push_back(Stream{{},
                              DieStriper(die_of_, die_free_at_,
                                         config_.stripe_policy),
                              {},
                              claim_reserve_blocks});
  }
}

void WriteAllocator::SetStreamReserve(std::uint32_t stream,
                                      std::uint64_t blocks) {
  if (stream >= streams_.size()) {
    throw std::out_of_range("WriteAllocator: stream out of range");
  }
  streams_[stream].reserve = blocks;
}

void WriteAllocator::SweepFull(Stream& s) {
  // Lazy MarkFull, exactly like the seed's active-block check at the head
  // of AllocatePage: an exhausted block stays kOpen (GC-invisible) until
  // the stream next asks for a page.
  for (auto it = s.frontiers.begin(); it != s.frontiers.end();) {
    if (fill_[*it] >= pages_per_block_) {
      blocks_.MarkFull(*it);
      it = s.frontiers.erase(it);
    } else {
      ++it;
    }
  }
}

std::function<bool(BlockId)> UncoveredDieFilter(
    const std::function<std::uint64_t(BlockId)>& die_of,
    const std::deque<BlockId>& open) {
  return [&die_of, &open](BlockId b) {
    const std::uint64_t die = die_of(b);
    for (const BlockId frontier : open) {
      if (die_of(frontier) == die) return false;
    }
    return true;
  };
}

bool WriteAllocator::TryClaim(Stream& s, AllocPolicy policy, bool first) {
  std::optional<BlockId> fresh;
  if (first) {
    // Seed semantics: the stream's first block may always claim (the GC
    // thresholds guarantee a spare) and takes the policy's top pick.
    fresh = blocks_.AllocateBlock(policy);
  } else {
    if (blocks_.FreeCount() <= s.reserve) return false;
    if (blocks_.FreeListGeneration() == s.growth_fail_generation &&
        s.frontiers.size() == s.growth_fail_frontiers) {
      return false;  // nothing changed since the last failed scan
    }
    // Growth beyond the first frontier must land on a die the stream does
    // not already cover (the one-open-block-per-die-per-stream invariant);
    // when every free block sits on a covered die, simply don't grow.
    fresh = blocks_.AllocateBlock(policy,
                                  UncoveredDieFilter(die_of_, s.frontiers));
    if (!fresh) {
      s.growth_fail_generation = blocks_.FreeListGeneration();
      s.growth_fail_frontiers = s.frontiers.size();
      return false;
    }
  }
  if (!fresh) return false;
  s.growth_fail_generation = kNoGrowthFailure;
  fill_[*fresh] = 0;  // blocks come off the free list erased
  s.frontiers.push_back(*fresh);
  return true;
}

std::optional<PageAllocation> WriteAllocator::AllocatePage(std::uint32_t stream,
                                                           AllocPolicy policy) {
  if (stream >= streams_.size()) {
    throw std::out_of_range("WriteAllocator: stream out of range");
  }
  Stream& s = streams_[stream];
  SweepFull(s);

  PageAllocation out;
  if (s.frontiers.empty()) {
    if (!TryClaim(s, policy, /*first=*/true)) return std::nullopt;
    out.new_block = true;
  } else if (s.frontiers.size() < effective_frontiers_) {
    out.new_block = TryClaim(s, policy, /*first=*/false);
  }

  const std::size_t idx = s.striper.Pick(s.frontiers);
  const BlockId block = s.frontiers[idx];
  const std::uint32_t page = fill_[block]++;
  CTFLASH_CHECK(page < pages_per_block_);
  out.block = block;
  out.die = die_of_(block);
  out.ppn = static_cast<Ppn>(block) * pages_per_block_ + page;
  s.dies_touched.insert(out.die);
  return out;
}

const std::deque<BlockId>& WriteAllocator::Frontiers(
    std::uint32_t stream) const {
  if (stream >= streams_.size()) {
    throw std::out_of_range("WriteAllocator: stream out of range");
  }
  return streams_[stream].frontiers;
}

std::optional<Us> WriteAllocator::EarliestFrontierFreeAt(
    std::uint32_t stream) const {
  if (stream >= streams_.size()) {
    throw std::out_of_range("WriteAllocator: stream out of range");
  }
  std::optional<Us> earliest;
  for (const BlockId b : streams_[stream].frontiers) {
    if (fill_[b] >= pages_per_block_) continue;  // exhausted, sweeps next call
    const Us free = die_free_at_(b);
    if (!earliest || free < *earliest) earliest = free;
  }
  return earliest;
}

bool WriteAllocator::CanGrow(std::uint32_t stream) const {
  if (stream >= streams_.size()) {
    throw std::out_of_range("WriteAllocator: stream out of range");
  }
  const Stream& s = streams_[stream];
  if (s.frontiers.empty()) return true;  // first claim is always allowed
  return s.frontiers.size() < effective_frontiers_ &&
         blocks_.FreeCount() > s.reserve;
}

std::size_t WriteAllocator::DiesTouched(std::uint32_t stream) const {
  if (stream >= streams_.size()) {
    throw std::out_of_range("WriteAllocator: stream out of range");
  }
  return streams_[stream].dies_touched.size();
}

std::uint32_t WriteAllocator::FillOf(BlockId block) const {
  if (block >= fill_.size()) {
    throw std::out_of_range("WriteAllocator: block out of range");
  }
  return fill_[block];
}

bool WriteAllocator::CheckInvariants() const {
  for (const Stream& s : streams_) {
    if (s.frontiers.size() > config_.write_frontiers) return false;
    std::set<std::uint64_t> dies;
    for (const BlockId b : s.frontiers) {
      if (b >= fill_.size()) return false;
      if (blocks_.UseOf(b) != BlockUse::kOpen) return false;
      if (fill_[b] > pages_per_block_) return false;
      // At most one open block per (die, stream).  Exhausted-but-unswept
      // frontiers keep their die slot until the next allocation.
      if (!dies.insert(die_of_(b)).second) return false;
    }
  }
  return true;
}

void WriteAllocator::SaveState(util::StateWriter& w) const {
  w.Tag("WALC");
  w.PutU64(fill_.size());
  for (std::uint32_t f : fill_) w.PutU32(f);
  w.PutU64(streams_.size());
  for (const Stream& s : streams_) {
    w.PutU64Seq(s.frontiers);
    w.PutU64Seq(s.dies_touched);
    w.PutU64(s.reserve);
    w.PutU64(s.growth_fail_generation);
    w.PutU64(s.growth_fail_frontiers);
    s.striper.SaveState(w);
  }
}

void WriteAllocator::LoadState(util::StateReader& r) {
  r.ExpectTag("WALC");
  const std::uint64_t nfill = r.GetU64();
  if (nfill != fill_.size()) {
    throw std::runtime_error("snapshot: write allocator fill size mismatch (have " +
                             std::to_string(fill_.size()) + ", state " +
                             std::to_string(nfill) + ")");
  }
  for (std::uint32_t& f : fill_) f = r.GetU32();
  const std::uint64_t nstreams = r.GetU64();
  if (nstreams != streams_.size()) {
    throw std::runtime_error("snapshot: write allocator stream count mismatch (have " +
                             std::to_string(streams_.size()) + ", state " +
                             std::to_string(nstreams) + ")");
  }
  for (Stream& s : streams_) {
    const std::vector<std::uint64_t> fr = r.GetU64Seq();
    s.frontiers.assign(fr.begin(), fr.end());
    const std::vector<std::uint64_t> dies = r.GetU64Seq();
    s.dies_touched.clear();
    s.dies_touched.insert(dies.begin(), dies.end());
    s.reserve = r.GetU64();
    s.growth_fail_generation = r.GetU64();
    s.growth_fail_frontiers = static_cast<std::size_t>(r.GetU64());
    s.striper.LoadState(r);
  }
}

}  // namespace ctflash::ftl
