// Per-block bookkeeping: valid-page counters, free-block FIFO, and greedy
// victim selection for garbage collection.
//
// The free list is ordered by block id (deterministic allocation — the same
// rule the paper's free VB list uses).  Victim selection is greedy minimum
// valid count with lowest-P/E tie-break, restricted to FULL blocks so open
// (partially written) blocks are never collected mid-fill.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "util/serial.h"
#include "util/types.h"

namespace ctflash::ftl {

enum class BlockUse : std::uint8_t {
  kFree = 0,   ///< erased, in the free list
  kOpen,       ///< taken by an allocator, still has unwritten pages
  kFull,       ///< every page programmed; GC candidate
  kRetired,    ///< grown-bad: out of the free list and the victim pool
};

/// Free-block selection policy.  kById is the deterministic default ("free
/// virtual blocks arranged according to their original physical block
/// number").  The wear-aware policies implement dual-pool wear leveling:
/// hot write streams take the LEAST worn free block, cold/GC streams take
/// the MOST worn one so stable data parks on tired blocks.  They require a
/// wear provider (SetWearProvider); without one they fall back to kById.
enum class AllocPolicy : std::uint8_t { kById = 0, kLeastWorn, kMostWorn };

class BlockManager {
 public:
  BlockManager(std::uint64_t total_blocks, std::uint32_t pages_per_block);

  std::uint64_t total_blocks() const { return info_.size(); }
  std::uint32_t pages_per_block() const { return pages_per_block_; }

  std::uint64_t FreeCount() const { return free_list_.size(); }

  /// Lowest FreeCount() observed since the last ResetFreeWatermark() —
  /// captures transient dips between allocation and release that samplers
  /// driven by the event queue cannot see.  The GC/QoS property tests use
  /// it to assert the no-starvation floor.
  std::uint64_t MinFreeWatermark() const { return min_free_; }
  void ResetFreeWatermark() { min_free_ = free_list_.size(); }

  /// Bumped on every free-list mutation (allocation or release).  Lets the
  /// write-frontier allocators memoize a failed free-list scan exactly: the
  /// same scan cannot succeed until the generation changes.
  std::uint64_t FreeListGeneration() const { return generation_; }

  /// Pops a free block per `policy` and marks it kOpen.  `accept` (optional)
  /// restricts the choice to blocks it approves — the write-frontier
  /// allocator uses it to claim blocks on dies a stream does not cover yet.
  /// Returns std::nullopt when no free block remains (or none is accepted).
  std::optional<BlockId> AllocateBlock(
      AllocPolicy policy = AllocPolicy::kById,
      const std::function<bool(BlockId)>& accept = {});

  /// Installs the per-block wear accessor (P/E cycles) used by the
  /// wear-aware allocation policies.
  void SetWearProvider(std::function<std::uint32_t(BlockId)> provider) {
    wear_provider_ = std::move(provider);
  }
  bool HasWearProvider() const { return static_cast<bool>(wear_provider_); }

  /// Marks an open block full (all pages programmed).
  void MarkFull(BlockId block);

  /// Returns an erased block to the free list (caller must have erased it).
  void Release(BlockId block);

  // --- bad-block retirement (fault handling) ------------------------------

  /// Flags a block so the GC erase path retires it instead of releasing it
  /// (set when a page program in the block fails verify).
  void FlagForRetirement(BlockId block);
  bool RetirePending(BlockId block) const;

  /// Permanently removes a block from service: any state -> kRetired.  The
  /// block must hold no valid pages; a free block is unlinked from the free
  /// list (spare-pool shrink counts against MinFreeWatermark).
  void Retire(BlockId block);

  /// Retires every FREE block `pred` approves (e.g. all spares on a lost
  /// die); returns how many were retired.
  std::uint64_t RetireFreeIf(const std::function<bool(BlockId)>& pred);

  std::uint64_t RetiredCount() const { return retired_count_; }

  /// Valid-page accounting: one page of this block now holds live data.
  void AddValid(BlockId block);
  /// One page of this block was invalidated (update or trim).
  void RemoveValid(BlockId block);

  std::uint32_t ValidCount(BlockId block) const;
  BlockUse UseOf(BlockId block) const;

  /// Greedy GC victim: the FULL block with the fewest valid pages; ties
  /// break toward lower `pe_hint` (wear-aware) then lower id.  `pe_hint`
  /// may be empty, in which case ties break by id only.
  std::optional<BlockId> PickGcVictim(
      const std::vector<std::uint32_t>& pe_hint = {}) const;

  /// Total valid pages across all blocks (O(n), for invariant checks).
  std::uint64_t TotalValid() const;

  /// Serializes per-block info and the ordered free list (free-list order is
  /// allocation order and therefore state).  The wear provider is runtime
  /// wiring and is not serialized.  LoadState throws on size mismatch.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  struct Info {
    std::uint32_t valid = 0;
    BlockUse use = BlockUse::kFree;
    bool retire_pending = false;
  };

  void CheckId(BlockId block) const;

  std::vector<Info> info_;
  std::deque<BlockId> free_list_;
  std::uint32_t pages_per_block_;
  std::uint64_t generation_ = 0;
  std::uint64_t min_free_ = 0;  ///< see MinFreeWatermark (set in ctor)
  std::uint64_t retired_count_ = 0;
  std::function<std::uint32_t(BlockId)> wear_provider_;
};

}  // namespace ctflash::ftl
