// Figure 13 — Media Server Trace: Read Latency Comparison.
//
// Cumulative read latency (seconds, summed over all trace requests) of the
// conventional FTL vs FTL+PPB across page-access speed differences 2x-5x.
// Paper shape: PPB below conventional at every ratio, gap widening with R
// (~10 % average across ratios).
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Figure 13: Media Server Trace - Read Latency",
                     "Figure 13", options);

  util::TablePrinter table({"Speed Difference", "Conventional FTL (s)",
                            "FTL with PPB (s)", "Enhancement"});
  for (const double ratio : {2.0, 3.0, 4.0, 5.0}) {
    const auto cmp = bench::RunComparison(bench::Workload::kMediaServer,
                                          16 * 1024, ratio, options);
    table.AddRow({util::TablePrinter::FormatDouble(ratio, 0) + "x",
                  util::TablePrinter::FormatScientific(
                      cmp.conventional.TotalReadSeconds()),
                  util::TablePrinter::FormatScientific(
                      cmp.ppb.TotalReadSeconds()),
                  util::TablePrinter::FormatPercent(cmp.ReadEnhancement())});
  }
  table.Print();
  std::cout << "\nPaper shape: PPB < conventional for every ratio; the gap\n"
               "grows from 2x to 5x.\n";
  return 0;
}
