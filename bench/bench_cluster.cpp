// Storage-cluster scenario bench: a shard router over a simulated device
// fleet, with failure-driven rebalancing.  Three arms over the same fleet
// shape, all fed by the same Zipf-skewed million-user population:
//
//   healthy    no faults — reports cluster p50/p99 vs the per-device p99
//              spread under skew and checks placement keeps load bounded;
//   rebalance  one device dies mid-run, the director detects it, a spare
//              adopts its shards, and rebuild traffic re-replicates them
//              through the low-weight rebuild tenant;
//   control    same failure, policy "none" — the router keeps routing to
//              the corpse and every such request burns the SLA timeout.
//
// SELF-ASSERTS the cluster subsystem's core claims:
//
//   1. Determinism — the deterministic report is byte-identical across
//      worker counts (epoch-lockstep contract).
//   2. Balance — under Zipf skew, no ring device serves more than
//      --imbalance x the fair share of completed requests.
//   3. Healthy service — the fault-free arm completes every arrival with
//      zero timeouts.
//   4. Bounded failover — with rebalancing, cluster read p99 over the
//      epochs after detection stays within --p99-factor (default 3x) of
//      the pre-failure epoch's p99, and the rebuild is not vacuous
//      (spare adopted, shards moved, rebuild tenant dispatched real I/O).
//   5. Control blowout — without rebalancing the final epoch's read p99
//      exceeds the same bound (the timeouts dominate the tail).
//
// Options:
//   --devices <n>     ring devices                  (default 8)
//   --device <sz>     device bytes                  (default 64 MiB)
//   --rate <iops>     cluster arrival rate          (default 40000)
//   --epochs <n>      epochs per arm                (default 8)
//   --epoch-us <us>   epoch length                  (default 250000)
//   --users <n>       user population               (default 1000000)
//   --theta <t>       Zipf skew                     (default 0.9)
//   --workers <n>     worker count                  (default min(8, hw))
//   --p99-factor <x>  failover tail bound           (default 3.0)
//   --imbalance <x>   per-device load bound         (default 2.5)
//   --quick           4 devices, 32 MiB, 6 x 100 ms epochs, 100k users
//   --json <path>     result file (default BENCH_cluster.json)
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.h"
#include "cluster/cluster_sim.h"
#include "cluster/spec.h"
#include "util/config.h"

namespace {

using ctflash::campaign::Json;
using ctflash::campaign::JsonArray;
using ctflash::cluster::ClusterResult;
using ctflash::cluster::ClusterSim;
using ctflash::cluster::ClusterSpec;
using ctflash::cluster::DeviceSummary;
using ctflash::cluster::EpochSummary;

struct Options {
  std::uint64_t devices = 8;
  std::uint64_t device_bytes = 64ull << 20;
  double rate_iops = 40'000.0;
  std::uint64_t epochs = 8;
  std::uint64_t epoch_us = 250'000;
  std::uint64_t users = 1'000'000;
  double theta = 0.9;
  std::uint32_t workers = 0;  // 0 = min(8, hw_concurrency)
  double p99_factor = 3.0;
  double imbalance = 2.5;
  std::string json_path = "BENCH_cluster.json";
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--devices") {
      o.devices = std::stoull(next());
      if (o.devices < 3) throw std::invalid_argument("--devices must be >= 3");
    } else if (arg == "--device") {
      o.device_bytes = ctflash::util::ParseByteSize(next());
    } else if (arg == "--rate") {
      o.rate_iops = std::stod(next());
    } else if (arg == "--epochs") {
      o.epochs = std::stoull(next());
      if (o.epochs < 4) throw std::invalid_argument("--epochs must be >= 4");
    } else if (arg == "--epoch-us") {
      o.epoch_us = std::stoull(next());
    } else if (arg == "--users") {
      o.users = std::stoull(next());
    } else if (arg == "--theta") {
      o.theta = std::stod(next());
    } else if (arg == "--workers") {
      o.workers = static_cast<std::uint32_t>(std::stoul(next()));
      if (o.workers == 0) throw std::invalid_argument("--workers must be >= 1");
    } else if (arg == "--p99-factor") {
      o.p99_factor = std::stod(next());
    } else if (arg == "--imbalance") {
      o.imbalance = std::stod(next());
    } else if (arg == "--quick") {
      o.devices = 4;
      o.device_bytes = 32ull << 20;
      o.rate_iops = 8'000.0;
      o.epochs = 6;
      o.epoch_us = 100'000;
      o.users = 100'000;
    } else if (arg == "--json") {
      o.json_path = next();
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

/// The shared fleet scenario; the fault + policy differ per arm.
Json BaseSpec(const Options& o, const std::string& name) {
  Json spec;
  spec["cluster"] = name;
  spec["seed"] = std::uint64_t{17};
  Json fleet;
  fleet["devices"] = o.devices;
  fleet["spares"] = std::uint64_t{1};
  spec["fleet"] = fleet;
  Json router;
  router["shards"] = std::uint64_t{16} * o.devices;
  router["replicas"] = std::uint64_t{2};
  router["vnodes"] = std::uint64_t{64};
  spec["router"] = router;
  Json device;
  device["device_bytes"] = o.device_bytes;
  device["prefill_pct"] = std::uint64_t{75};
  spec["device"] = device;
  Json users;
  users["count"] = o.users;
  users["zipf_theta"] = o.theta;
  spec["users"] = users;
  Json workload;
  workload["rate_iops"] = o.rate_iops;
  workload["read_fraction"] = 0.9;
  workload["request_bytes"] = std::uint64_t{16} * 1024;
  workload["epochs"] = o.epochs;
  workload["epoch_us"] = o.epoch_us;
  workload["timeout_us"] = std::uint64_t{1'000'000};
  spec["workload"] = workload;
  return spec;
}

/// Kill one mid-ring device a bit into epoch 1 (epoch 0 stays the clean
/// pre-failure baseline).
Json WithDeviceLoss(Json spec, const Options& o, const std::string& policy) {
  Json fault;
  fault["device"] = std::uint64_t{1};
  fault["kind"] = "device";
  fault["at_us"] = o.epoch_us + o.epoch_us / 5;
  JsonArray faults;
  faults.push_back(std::move(fault));
  spec["faults"] = Json(std::move(faults));
  Json rebalance;
  rebalance["policy"] = policy;
  // Small chunks avoid head-of-line blocking behind multi-page rebuild
  // transactions; the byte cap keeps rebuild-driven GC on the adopting
  // spare from owning the serving tail.
  rebalance["migration_chunk"] = std::uint64_t{16} * 1024;
  rebalance["rebuild_bytes_per_sec"] =
      static_cast<double>(o.device_bytes) / 8.0;
  spec["rebalance"] = rebalance;
  return spec;
}

int Fail(const std::string& what) {
  std::cerr << "SELF-ASSERT FAILED: " << what << "\n";
  return 1;
}

ClusterResult RunArm(const Json& spec_json, std::uint32_t workers) {
  ClusterSim sim(ClusterSpec::Parse(spec_json));
  return sim.Run(workers);
}

/// Epoch the director logged the (first) failure in; -1 when none.
std::int64_t DetectionEpoch(const ClusterResult& r) {
  if (r.events.empty()) return -1;
  return static_cast<std::int64_t>(r.events[0].GetUintOr("epoch", 0));
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t workers =
      options.workers != 0 ? options.workers : std::min(8u, hw);

  std::cout << "=== Cluster scenario: shard router over a device fleet ===\n";
  std::cout << "fleet: " << options.devices << " devices + 1 spare x "
            << (options.device_bytes >> 20) << " MiB, "
            << options.users << " users (zipf " << options.theta << "), "
            << options.rate_iops << " IOPS, " << options.epochs << " x "
            << options.epoch_us << " us epochs, " << workers << " workers\n";

  // Assert 1: worker count must not change a single report byte.  The
  // failure arm exercises every code path (faults, director, migration).
  {
    const Json det_spec =
        WithDeviceLoss(BaseSpec(options, "cluster-det"), options, "on_failure");
    const std::string one = RunArm(det_spec, 1).DeterministicJson().Dump(2);
    const std::string many =
        RunArm(det_spec, std::max(2u, std::min(4u, hw)))
            .DeterministicJson()
            .Dump(2);
    std::cout << "deterministic report across worker counts: "
              << (one == many ? "IDENTICAL" : "DIFFER") << " (" << one.size()
              << " bytes)\n";
    if (one != many) {
      return Fail("worker count changed the deterministic cluster report");
    }
  }

  // --- healthy arm ---------------------------------------------------------
  const ClusterResult healthy =
      RunArm(BaseSpec(options, "cluster-healthy"), workers);
  std::uint64_t arrivals = 0, timeouts = 0;
  for (const EpochSummary& e : healthy.epochs) {
    arrivals += e.arrivals;
    timeouts += e.timeouts;
  }
  std::uint64_t completed = 0, ring_devices = 0, max_load = 0;
  double worst_device_p99 = 0.0;
  for (const DeviceSummary& d : healthy.devices) {
    completed += d.completed;
    if (d.primary_shards == 0) continue;  // idle spare
    ++ring_devices;
    max_load = std::max(max_load, d.completed);
    worst_device_p99 = std::max(worst_device_p99, d.read.p99_us());
  }
  const double cluster_p50 = healthy.epochs[0].read.p50_us();
  const double cluster_p99 = healthy.epochs[0].read.p99_us();
  const double mean_load =
      static_cast<double>(completed) / static_cast<double>(ring_devices);
  std::cout << "\nhealthy: " << arrivals << " arrivals, " << completed
            << " completed, cluster read p50/p99 " << cluster_p50 << "/"
            << cluster_p99 << " us, worst device p99 " << worst_device_p99
            << " us, load max/mean " << (static_cast<double>(max_load) /
                                         mean_load)
            << "\n";
  if (healthy.devices_failed != 0 || timeouts != 0) {
    return Fail("healthy arm saw failures/timeouts");
  }
  if (completed != arrivals) {
    return Fail("healthy arm dropped requests: " + std::to_string(arrivals) +
                " arrivals vs " + std::to_string(completed) + " completed");
  }
  if (cluster_p99 <= 0.0) return Fail("healthy cluster read p99 is zero");
  // Assert 2: placement keeps Zipf load bounded across the ring.
  if (static_cast<double>(max_load) > options.imbalance * mean_load) {
    return Fail("device load imbalance " +
                std::to_string(static_cast<double>(max_load) / mean_load) +
                " exceeds bound " + std::to_string(options.imbalance));
  }

  // --- device-loss arms ----------------------------------------------------
  const ClusterResult rebalanced = RunArm(
      WithDeviceLoss(BaseSpec(options, "cluster-rebalance"), options,
                     "on_failure"),
      workers);
  const ClusterResult control = RunArm(
      WithDeviceLoss(BaseSpec(options, "cluster-control"), options, "none"),
      workers);

  auto epoch_tails = [](const ClusterResult& r) {
    std::string line;
    for (const EpochSummary& e : r.epochs) {
      if (!line.empty()) line += " ";
      line += std::to_string(static_cast<std::uint64_t>(e.read.p99_us()));
    }
    return line;
  };
  std::cout << "per-epoch read p99 (us): rebalance [" << epoch_tails(rebalanced)
            << "], control [" << epoch_tails(control) << "]\n";

  const std::int64_t detect = DetectionEpoch(rebalanced);
  if (detect < 0) return Fail("rebalance arm never detected the failure");
  const double pre_p99 = rebalanced.epochs[0].read.p99_us();
  if (pre_p99 <= 0.0) return Fail("pre-failure read p99 is zero");
  double post_p99 = 0.0;
  for (std::size_t e = static_cast<std::size_t>(detect) + 1;
       e < rebalanced.epochs.size(); ++e) {
    post_p99 = std::max(post_p99, rebalanced.epochs[e].read.p99_us());
  }
  std::uint64_t rebuild_io = 0;
  for (const DeviceSummary& d : rebalanced.devices) {
    rebuild_io += d.rebuild_reads + d.rebuild_writes;
  }
  const double bound = options.p99_factor * pre_p99;
  std::cout << "rebalance: detected epoch " << detect << ", "
            << rebalanced.shards_moved << " shards -> spare, "
            << rebalanced.migration_bytes << " rebuild bytes ("
            << rebuild_io << " rebuild dispatches), post-failover read p99 "
            << post_p99 << " us (bound " << bound << " = "
            << options.p99_factor << "x pre-failure " << pre_p99 << ")\n";

  // Assert 4: rebalancing restores the tail and actually did work.
  if (rebalanced.devices_failed != 1 || rebalanced.spares_used != 1) {
    return Fail("rebalance arm did not fail+adopt exactly one device");
  }
  if (rebalanced.shards_moved == 0 || rebalanced.migration_ops == 0 ||
      rebuild_io == 0) {
    return Fail("rebalance arm moved no shards / issued no rebuild I/O");
  }
  if (post_p99 > bound) {
    return Fail("post-failover read p99 " + std::to_string(post_p99) +
                " us exceeds " + std::to_string(bound) + " us");
  }

  // Assert 5: the un-rebalanced control blows through the same bound.
  const double control_final_p99 = control.epochs.back().read.p99_us();
  std::uint64_t control_timeouts = 0;
  for (const EpochSummary& e : control.epochs) control_timeouts += e.timeouts;
  std::cout << "control: " << control_timeouts
            << " timeouts, final-epoch read p99 " << control_final_p99
            << " us\n";
  if (control.shards_moved != 0 || control.migration_ops != 0) {
    return Fail("control arm must not rebalance");
  }
  if (control_timeouts == 0) {
    return Fail("control arm never timed out (device loss vacuous?)");
  }
  if (control_final_p99 <= bound) {
    return Fail("control final read p99 " + std::to_string(control_final_p99) +
                " us did not exceed the bound " + std::to_string(bound) +
                " us — the failure arm is not stressing the router");
  }

  Json report;
  report["bench"] = std::string("cluster");
  report["healthy"] = healthy.Report();
  report["rebalance"] = rebalanced.Report();
  report["control"] = control.Report();
  Json checks;
  checks["arrivals"] = arrivals;
  checks["completed"] = completed;
  checks["cluster_read_p50_us"] = cluster_p50;
  checks["cluster_read_p99_us"] = cluster_p99;
  checks["worst_device_read_p99_us"] = worst_device_p99;
  checks["load_max_over_mean"] = static_cast<double>(max_load) / mean_load;
  checks["imbalance_bound"] = options.imbalance;
  checks["detect_epoch"] = static_cast<std::uint64_t>(detect);
  checks["pre_failure_read_p99_us"] = pre_p99;
  checks["post_failover_read_p99_us"] = post_p99;
  checks["p99_factor_bound"] = options.p99_factor;
  checks["shards_moved"] = rebalanced.shards_moved;
  checks["rebuild_dispatches"] = rebuild_io;
  checks["rebuild_bytes"] = rebalanced.migration_bytes;
  checks["control_timeouts"] = control_timeouts;
  checks["control_final_read_p99_us"] = control_final_p99;
  report["self_check"] = checks;
  std::ofstream out(options.json_path);
  out << report.Dump(2) << "\n";
  std::cout << "\nall self-asserts passed; wrote " << options.json_path
            << "\n";
  return 0;
}
