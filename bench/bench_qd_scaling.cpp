// Queue-depth scaling — the host-interface bench.
//
// Closed-loop random page reads through the multi-queue host interface at
// increasing queue depth, on a 1-channel and a 4-channel device with
// identical capacity, block shape and timing.  Expected shape:
//   * IOPS grows monotonically with QD until the device saturates (die or
//     channel utilization approaching 100 %), then flattens;
//   * the 4-channel device sustains measurably higher saturated throughput
//     than the 1-channel device at QD >= 8 (the whole point of dispatching
//     page transactions out-of-order across channels/chips/dies);
//   * runs are bit-for-bit deterministic (seeded generator + event queue).
#include <cstdint>
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Queue-Depth Scaling (host interface, closed loop)",
                     "Section 5 setup, Table 1 device", options);

  double one_ch_peak = 0.0;
  double four_ch_peak = 0.0;
  for (const std::uint32_t channels : {1u, 4u}) {
    const auto cfg = bench::QdDeviceConfig(channels, options);
    const auto points = bench::RunQdSweep(cfg, options);
    bench::PrintQdSweep(std::to_string(channels) + "-channel device, " +
                            std::to_string(options.qd_requests) +
                            " random 16 KiB reads per point",
                        points);
    double peak = 0.0;
    for (const auto& p : points) {
      if (p.iops > peak) peak = p.iops;
    }
    (channels == 1 ? one_ch_peak : four_ch_peak) = peak;
  }

  std::cout << "Peak IOPS: 1-channel=" << static_cast<std::uint64_t>(one_ch_peak)
            << "  4-channel=" << static_cast<std::uint64_t>(four_ch_peak)
            << "  (x" << (one_ch_peak > 0 ? four_ch_peak / one_ch_peak : 0.0)
            << ")\n";
  std::cout << "Expected shape: IOPS rises with QD to saturation; 4-channel\n"
               "device clearly out-throughputs 1-channel at QD >= 8.\n";
  return 0;
}
