#include "replay/latency_cdf.h"

#include <cmath>

namespace ctflash::replay {

std::vector<CdfPoint> LatencyCdf(const util::LatencyStats& stats) {
  std::vector<CdfPoint> cdf;
  const util::QuantileEstimator& hist = stats.quantiles();
  const std::uint64_t total = hist.count();
  if (total == 0) return cdf;
  std::uint64_t running = 0;
  const auto& bins = hist.bins();
  for (int i = 0; i < util::QuantileEstimator::kBins; ++i) {
    if (bins[i] == 0) continue;
    running += bins[i];
    CdfPoint point;
    point.latency_us =
        static_cast<double>(util::QuantileEstimator::BinHigh(i));
    point.cum_fraction =
        static_cast<double>(running) / static_cast<double>(total);
    point.count = bins[i];
    cdf.push_back(point);
  }
  return cdf;
}

std::size_t KneeIndex(const std::vector<CdfPoint>& cdf) {
  if (cdf.size() < 3) return cdf.size();
  // Normalize (cum_fraction, log latency) to the unit square and find the
  // interior point farthest from the first->last chord.
  const double x0 = cdf.front().cum_fraction;
  const double x1 = cdf.back().cum_fraction;
  const double y0 = std::log(cdf.front().latency_us + 1.0);
  const double y1 = std::log(cdf.back().latency_us + 1.0);
  const double xspan = x1 - x0;
  const double yspan = y1 - y0;
  if (xspan <= 0.0 || yspan <= 0.0) return cdf.size();
  std::size_t best = cdf.size();
  double best_dist = 0.0;
  for (std::size_t i = 1; i + 1 < cdf.size(); ++i) {
    const double x = (cdf[i].cum_fraction - x0) / xspan;
    const double y = (std::log(cdf[i].latency_us + 1.0) - y0) / yspan;
    // Distance from (x, y) to the chord y = x (unit square diagonal): a
    // knee sits where latency has not yet risen relative to quantile mass,
    // i.e. x - y is maximal.
    const double dist = x - y;
    if (dist > best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best == cdf.size() ? cdf.size() - 1 : best;
}

void WriteCdfJson(std::ostream& out, const std::vector<CdfPoint>& cdf,
                  int indent) {
  const std::string pad =
      indent >= 0 ? "\n" + std::string(static_cast<std::size_t>(indent), ' ')
                  : "";
  out << "[";
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    out << pad << "{\"us\": " << cdf[i].latency_us
        << ", \"cum\": " << cdf[i].cum_fraction
        << ", \"n\": " << cdf[i].count << "}"
        << (i + 1 < cdf.size() ? "," : "");
  }
  if (indent >= 0 && !cdf.empty()) out << "\n";
  out << "]";
}

}  // namespace ctflash::replay
