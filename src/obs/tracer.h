// Lifecycle tracer: phase-tagged end-to-end latency attribution for every
// host request and background transaction in the stack.
//
// The tracer plugs into three seams:
//   * host::HostInterface calls the On{Submit,Throttled,Backlogged,Admit,
//     RequestComplete} hooks (AttachTracer wires all three seams at once);
//   * the IoScheduler publishes dispatches and executions through
//     sched::SchedulerObserver (which this class implements);
//   * ftl::FlashTarget reports read-retry ladders and dead-die accesses
//     through obs::MediaHook.
//
// From those events it derives, per completed request, the exact phase
// decomposition documented in obs/phase.h (paced + queued + media ==
// end-to-end, conservation holds sample-by-sample) and attributes stall
// time to causes: token-bucket pacing vs backpressure for the paced phase,
// the GC write-admission guard for the queued phase, and die-busy-on-GC vs
// die-busy-on-host for the media phase (the tracer tracks in-flight GC per
// die, so it knows WHO held the die the critical transaction waited for).
//
// Everything is deterministic: the tracer only transforms the simulation's
// own deterministic event stream, holds no clocks of its own, and its
// aggregates/spans serialize byte-identically for any campaign/cluster
// worker count (each device's tracer is touched only by that device's
// worker).
//
// Cost model: compiled-in, off by default.  A host interface without an
// attached tracer pays one null-pointer check per hook site; the scheduler
// with no observers skips all context computation.  With phases-only
// tracing (record_spans = false) the per-request cost is O(1) map traffic
// and a few LatencyStats adds — cheap enough for whole campaigns.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/media_hook.h"
#include "obs/phase.h"
#include "sched/observer.h"
#include "util/types.h"

namespace ctflash::obs {

struct TracerConfig {
  /// Keep per-event timeline spans for Chrome/Perfetto export.  Off,
  /// the tracer aggregates phases only (campaign mode).
  bool record_spans = true;
  /// Span cap; events beyond it are counted in dropped_spans, not stored.
  std::size_t max_spans = 1u << 20;
  /// Keep one PhaseRecord per completed request (property tests and
  /// outlier drill-down).  Subject to max_spans as well.
  bool record_requests = false;
  /// Epoch length for time-series sampling (per-epoch PhaseStats rows and
  /// exporter counter tracks); 0 disables the series.
  Us metrics_epoch_us = 0;
  /// Simulated time of epoch 0's start (typically the prefill end).
  Us epoch_base_us = 0;
  /// Epoch index clamp (events past the end land in the last epoch, the
  /// cluster convention); 0 = unbounded.
  std::uint32_t max_epochs = 0;
};

/// One timeline slice for the Chrome trace export.  `name` points at a
/// string literal chosen at record time.
struct TraceSpan {
  enum class TrackKind : std::uint8_t { kDie = 0, kQueue, kTenant };

  Us start_us = 0;
  Us dur_us = 0;
  TrackKind track = TrackKind::kDie;
  std::uint32_t track_id = 0;
  const char* name = "";
  std::uint64_t request_id = 0;
  StallCause cause = StallCause::kNone;
  Us stall_us = 0;      ///< attributed stall inside this span
  std::uint64_t detail = 0;  ///< retry rungs / pages / phase-specific
};

/// Full phase decomposition of one completed request.
struct PhaseRecord {
  std::uint64_t request_id = 0;
  bool is_read = true;
  std::uint32_t tenant = ~0u;
  Us submit_us = 0;
  Us admit_us = 0;
  Us dispatch_us = 0;  ///< critical (last-completing) transaction
  Us completion_us = 0;
  StallCause pace_cause = StallCause::kNone;
  StallCause queue_cause = StallCause::kNone;
  StallCause media_cause = StallCause::kNone;
  Us media_stall_us = 0;  ///< die wait inside the media phase

  Us PacedUs() const { return admit_us - submit_us; }
  Us QueuedUs() const { return dispatch_us - admit_us; }
  Us MediaUs() const { return completion_us - dispatch_us; }
  Us TotalUs() const { return completion_us - submit_us; }
};

/// Per-epoch activity counters (exported as Chrome counter tracks).
struct EpochCounters {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t gc_copies = 0;
  std::uint64_t gc_erases = 0;
  std::uint64_t retry_rungs = 0;
  std::uint64_t timeouts = 0;
};

class Tracer : public sched::SchedulerObserver, public MediaHook {
 public:
  explicit Tracer(const TracerConfig& config = TracerConfig{});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TracerConfig& config() const { return config_; }

  // --- host interface hooks ------------------------------------------------
  void OnSubmit(std::uint64_t request_id, bool is_read, std::uint32_t tenant,
                Us submit_us);
  /// The submission was deferred by the tenant's token buckets.
  void OnThrottled(std::uint64_t request_id);
  /// The submission found every eligible queue full (host-side backlog).
  void OnBacklogged(std::uint64_t request_id);
  /// The request entered submission queue `queue` at `admit_us`.
  void OnAdmit(std::uint64_t request_id, std::uint32_t queue, Us admit_us);
  void OnRequestComplete(std::uint64_t request_id, Us completion_us);
  /// Cluster SLA accounting: the device died with `reads`+`writes` user
  /// requests unfinished; each is charged `charged_us` at `at_us`.  Clears
  /// all in-flight tracer state for the device.
  void ChargeDeadDevice(std::uint64_t reads, std::uint64_t writes,
                        Us charged_us, Us at_us);

  // --- sched::SchedulerObserver --------------------------------------------
  void OnDispatch(const sched::FlashTransaction& txn,
                  const sched::DispatchContext& context) override;
  void OnTxnExecuted(const sched::FlashTransaction& txn, Us dispatch_us,
                     Us completion_us) override;

  // --- obs::MediaHook ------------------------------------------------------
  void OnReadRetry(std::uint32_t die, Us start_us, Us dur_us,
                   std::uint32_t rungs, bool recovered) override;
  void OnUnreachable(std::uint32_t die, Us now_us) override;

  // --- results -------------------------------------------------------------
  const PhaseStats& phases() const { return phases_; }
  /// Per-epoch phase rows (empty unless metrics_epoch_us > 0); index ==
  /// epoch number, rows exist up to the last epoch that saw a completion.
  const std::vector<PhaseStats>& epoch_phases() const { return epoch_phases_; }
  const std::vector<EpochCounters>& epoch_counters() const {
    return epoch_counters_;
  }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<PhaseRecord>& requests() const { return requests_; }
  std::uint64_t dropped_spans() const { return dropped_spans_; }
  /// Requests submitted but not yet completed (should be 0 after a full
  /// drain; nonzero means the device died with work in flight).
  std::size_t PendingRequests() const { return pending_.size(); }

  void Reset();

 private:
  struct PendingRequest {
    Us submit_us = 0;
    bool is_read = true;
    std::uint32_t tenant = ~0u;
    std::uint32_t queue = ~0u;
    StallCause pace_cause = StallCause::kNone;
    Us admit_us = -1;
    // Critical-path candidate: the latest-completing transaction seen.
    Us crit_completion_us = -1;
    Us crit_dispatch_us = 0;
    StallCause crit_queue_cause = StallCause::kNone;
    StallCause crit_media_cause = StallCause::kNone;
    Us crit_media_stall_us = 0;
  };

  /// Dispatch-time facts held until the transaction executes.
  struct InflightTxn {
    std::uint32_t die = ~0u;
    Us die_stall_us = 0;
    StallCause media_cause = StallCause::kNone;
    StallCause queue_cause = StallCause::kNone;
  };

  std::size_t EpochOf(Us at_us) const;
  PhaseStats& EpochRow(Us at_us);
  EpochCounters& EpochRowCounters(Us at_us);
  void RecordSpan(const TraceSpan& span);

  TracerConfig config_;
  PhaseStats phases_;
  std::vector<PhaseStats> epoch_phases_;
  std::vector<EpochCounters> epoch_counters_;
  std::vector<TraceSpan> spans_;
  std::vector<PhaseRecord> requests_;
  std::uint64_t dropped_spans_ = 0;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::unordered_map<std::uint64_t, InflightTxn> inflight_;  ///< by txn seq
  /// In-flight GC transactions per die (die-busy attribution).
  std::unordered_map<std::uint32_t, std::uint32_t> gc_on_die_;
};

}  // namespace ctflash::obs
