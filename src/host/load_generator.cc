#include "host/load_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ctflash::host {

UtilizationProbe::UtilizationProbe(const ftl::FlashTarget& target)
    : target_(target),
      die_busy_0_(target.dies().TotalBusyTime()),
      channel_busy_0_(target.channels().TotalBusyTime()),
      chip_busy_0_(target.chips().TotalBusyTime()) {}

void UtilizationProbe::Finish(LoadStats& stats) const {
  const Us makespan = stats.MakespanUs();
  if (makespan <= 0) return;
  const auto share = [makespan](Us busy, std::size_t members) {
    return static_cast<double>(busy) /
           (static_cast<double>(makespan) * static_cast<double>(members));
  };
  stats.die_utilization =
      share(target_.dies().TotalBusyTime() - die_busy_0_,
            target_.dies().Count());
  stats.channel_utilization =
      share(target_.channels().TotalBusyTime() - channel_busy_0_,
            target_.channels().Count());
  stats.chip_utilization =
      share(target_.chips().TotalBusyTime() - chip_busy_0_,
            target_.chips().Count());
}

void ClosedLoopGenerator::Config::Validate() const {
  if (queue_depth == 0) {
    throw std::invalid_argument("ClosedLoopGenerator: queue_depth must be > 0");
  }
  if (total_requests == 0) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: total_requests must be > 0");
  }
  if (request_bytes == 0) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: request_bytes must be > 0");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: read_fraction must be in [0, 1]");
  }
}

ClosedLoopGenerator::ClosedLoopGenerator(HostInterface& host,
                                         const Config& config)
    : host_(host), config_(config), rng_(config.seed) {
  config_.Validate();
  if (config_.footprint_bytes == 0 ||
      config_.footprint_bytes > host_.ssd().LogicalBytes()) {
    config_.footprint_bytes = host_.ssd().LogicalBytes();
  }
  if (config_.footprint_bytes < config_.request_bytes) {
    throw std::invalid_argument(
        "ClosedLoopGenerator: footprint smaller than one request");
  }
}

void ClosedLoopGenerator::SubmitNext() {
  if (issued_count_ >= config_.total_requests) return;
  issued_count_++;
  const trace::OpType op = rng_.Bernoulli(config_.read_fraction)
                               ? trace::OpType::kRead
                               : trace::OpType::kWrite;
  const std::uint64_t slots =
      config_.footprint_bytes / config_.request_bytes;
  const std::uint64_t offset =
      rng_.UniformBelow(slots) * config_.request_bytes;
  issued_.push_back(
      {host_.queue().Now(), op, offset, config_.request_bytes});
  host_.Submit(op, offset, config_.request_bytes,
               [this](const HostCompletion&) { SubmitNext(); });
}

LoadStats ClosedLoopGenerator::Run() {
  if (host_.Outstanding() != 0) {
    throw std::logic_error("ClosedLoopGenerator: host interface not idle");
  }
  host_.ResetStats();
  issued_count_ = 0;
  issued_.clear();
  LoadStats stats;
  stats.start_us = host_.queue().Now();
  UtilizationProbe probe(host_.ssd().target());

  const std::uint64_t initial =
      std::min<std::uint64_t>(config_.queue_depth, config_.total_requests);
  for (std::uint64_t i = 0; i < initial; ++i) SubmitNext();
  host_.Run();

  stats.end_us = host_.queue().Now();
  stats.requests = host_.stats().completed;
  stats.read_latency = host_.stats().read_latency;
  stats.write_latency = host_.stats().write_latency;
  probe.Finish(stats);
  return stats;
}

OpenLoopGenerator::OpenLoopGenerator(HostInterface& host,
                                     std::vector<trace::TraceRecord> records,
                                     double time_scale)
    : host_(host), records_(std::move(records)), time_scale_(time_scale) {
  if (time_scale_ <= 0.0) {
    throw std::invalid_argument("OpenLoopGenerator: time_scale must be > 0");
  }
}

LoadStats OpenLoopGenerator::Run() {
  if (host_.Outstanding() != 0) {
    throw std::logic_error("OpenLoopGenerator: host interface not idle");
  }
  host_.ResetStats();
  LoadStats stats;
  stats.start_us = host_.queue().Now();
  UtilizationProbe probe(host_.ssd().target());

  for (const auto& record : records_) {
    // Clamp hand-built records with negative timestamps to "now" — the
    // event queue (rightly) refuses to schedule in the past.
    const Us at = std::max(
        stats.start_us +
            static_cast<Us>(std::llround(
                static_cast<double>(record.timestamp_us) * time_scale_)),
        host_.queue().Now());
    host_.SubmitAt(at, record.op, record.offset_bytes, record.size_bytes);
  }
  host_.Run();

  stats.end_us = host_.queue().Now();
  stats.requests = host_.stats().completed;
  stats.read_latency = host_.stats().read_latency;
  stats.write_latency = host_.stats().write_latency;
  probe.Finish(stats);
  return stats;
}

}  // namespace ctflash::host
