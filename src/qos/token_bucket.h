// Token-bucket rate limiter over simulated time.
//
// The bucket holds up to `burst` tokens and refills continuously at
// `rate_per_sec` tokens per second of simulated time.  Admission control
// asks when a cost could be paid (EarliestAt) and pays it (Consume); both
// are O(1) and purely a function of (state, now), so runs stay
// deterministic.
//
// Oversize costs — a single request larger than the burst — are admitted
// once the bucket is FULL and charged in full, driving the token count
// negative; the debt repays at the refill rate before anything else is
// admitted.  This keeps long-run conservation exact (admitted cost over any
// window [t0, t1] <= burst + rate * (t1 - t0) + one oversize remainder)
// without rejecting legal large requests outright.
#pragma once

#include "util/types.h"

namespace ctflash::qos {

class TokenBucket {
 public:
  /// An unlimited bucket: EarliestAt is always `now`, Consume is a no-op.
  TokenBucket() = default;

  /// Starts full.  `rate_per_sec` must be > 0, `burst` > 0.
  TokenBucket(double rate_per_sec, double burst, Us now = 0);

  bool limited() const { return rate_per_us_ > 0.0; }

  /// Earliest simulated time >= now at which `cost` tokens can be paid
  /// (min(cost, burst) available — see the oversize rule above).
  Us EarliestAt(Us now, double cost) const;

  /// Pays `cost` at `now`.  Callers admit at EarliestAt, so the balance
  /// only goes negative through the oversize rule.
  void Consume(Us now, double cost);

  /// Balance after refilling to `now` (capped at the burst size).
  double TokensAt(Us now) const;

 private:
  double rate_per_us_ = 0.0;  ///< 0 = unlimited
  double capacity_ = 0.0;
  double tokens_ = 0.0;
  Us last_refill_ = 0;
};

}  // namespace ctflash::qos
