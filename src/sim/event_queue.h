// Discrete-event simulation core.
//
// EventQueue is a classic calendar: callbacks scheduled at absolute
// microsecond timestamps, executed in (time, sequence) order so same-time
// events fire in scheduling order (deterministic replay).  The SSD model uses
// it to drive trace arrivals; resource contention is modeled by the
// ResourceTimeline in resource.h.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.h"

namespace ctflash::sim {

using EventCallback = std::function<void(Us now)>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Current simulated time (time of the most recently fired event).
  Us Now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (must be >= Now()).
  /// Returns a handle usable with Cancel().
  std::uint64_t ScheduleAt(Us at, EventCallback cb);

  /// Schedules `cb` `delay` microseconds from now.
  std::uint64_t ScheduleAfter(Us delay, EventCallback cb);

  /// Cancels a pending event; returns false if already fired/cancelled.
  bool Cancel(std::uint64_t handle);

  /// Fires the next event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t RunToCompletion();

  /// Runs events with time <= deadline. Time advances to at most deadline.
  std::uint64_t RunUntil(Us deadline);

  bool Empty() const { return live_events_ == 0; }
  std::size_t PendingCount() const { return live_events_; }

 private:
  struct Entry {
    Us at;
    std::uint64_t seq;
    std::uint64_t handle;
    EventCallback cb;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted-insert not needed; small
  Us now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_handle_ = 1;
  std::size_t live_events_ = 0;

  bool IsCancelled(std::uint64_t handle) const;
};

}  // namespace ctflash::sim
