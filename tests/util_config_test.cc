#include "util/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::util {
namespace {

TEST(ParseByteSize, PlainNumbers) {
  EXPECT_EQ(ParseByteSize("0"), 0u);
  EXPECT_EQ(ParseByteSize("4096"), 4096u);
  EXPECT_EQ(ParseByteSize(" 123 "), 123u);
}

TEST(ParseByteSize, BinarySuffixes) {
  EXPECT_EQ(ParseByteSize("1K"), 1024u);
  EXPECT_EQ(ParseByteSize("16KiB"), 16u * 1024);
  EXPECT_EQ(ParseByteSize("16KB"), 16u * 1024);
  EXPECT_EQ(ParseByteSize("4M"), 4u * 1024 * 1024);
  EXPECT_EQ(ParseByteSize("2GiB"), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(ParseByteSize("1T"), 1ull << 40);
  EXPECT_EQ(ParseByteSize("64g"), 64ull << 30);
}

TEST(ParseByteSize, FractionalValues) {
  EXPECT_EQ(ParseByteSize("1.5K"), 1536u);
  EXPECT_EQ(ParseByteSize("0.5GiB"), 512ull * 1024 * 1024);
}

TEST(ParseByteSize, PlainByteSuffix) {
  EXPECT_EQ(ParseByteSize("512B"), 512u);
}

TEST(ParseByteSize, Errors) {
  EXPECT_THROW(ParseByteSize(""), std::invalid_argument);
  EXPECT_THROW(ParseByteSize("KiB"), std::invalid_argument);
  EXPECT_THROW(ParseByteSize("12XB"), std::invalid_argument);
  EXPECT_THROW(ParseByteSize("abc"), std::invalid_argument);
}

TEST(Trim, Basics) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
}

TEST(ToLower, Basics) { EXPECT_EQ(ToLower("AbC"), "abc"); }

TEST(ConfigMap, ParsesSectionsAndKeys) {
  const auto cfg = ConfigMap::FromString(R"(
# comment
[device]
page_size = 16KiB
channels = 4
; another comment
[ftl]
op_ratio = 0.15
enabled = true
name = ppb
)");
  EXPECT_TRUE(cfg.Has("device", "page_size"));
  EXPECT_FALSE(cfg.Has("device", "missing"));
  EXPECT_EQ(cfg.GetBytesOr("device", "page_size", 0), 16384u);
  EXPECT_EQ(cfg.GetIntOr("device", "channels", 0), 4);
  EXPECT_DOUBLE_EQ(cfg.GetDoubleOr("ftl", "op_ratio", 0.0), 0.15);
  EXPECT_TRUE(cfg.GetBoolOr("ftl", "enabled", false));
  EXPECT_EQ(cfg.GetStringOr("ftl", "name", ""), "ppb");
}

TEST(ConfigMap, FallbacksWhenMissing) {
  const ConfigMap cfg;
  EXPECT_EQ(cfg.GetIntOr("a", "b", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.GetDoubleOr("a", "b", 1.5), 1.5);
  EXPECT_TRUE(cfg.GetBoolOr("a", "b", true));
  EXPECT_EQ(cfg.GetBytesOr("a", "b", 7), 7u);
  EXPECT_EQ(cfg.GetStringOr("a", "b", "x"), "x");
  EXPECT_FALSE(cfg.GetString("a", "b").has_value());
}

TEST(ConfigMap, BoolVariants) {
  auto cfg = ConfigMap::FromString(
      "[s]\na=yes\nb=No\nc=ON\nd=off\ne=1\nf=0\n");
  EXPECT_TRUE(cfg.GetBoolOr("s", "a", false));
  EXPECT_FALSE(cfg.GetBoolOr("s", "b", true));
  EXPECT_TRUE(cfg.GetBoolOr("s", "c", false));
  EXPECT_FALSE(cfg.GetBoolOr("s", "d", true));
  EXPECT_TRUE(cfg.GetBoolOr("s", "e", false));
  EXPECT_FALSE(cfg.GetBoolOr("s", "f", true));
}

TEST(ConfigMap, BadBoolThrows) {
  auto cfg = ConfigMap::FromString("[s]\na=maybe\n");
  EXPECT_THROW(cfg.GetBoolOr("s", "a", false), std::invalid_argument);
}

TEST(ConfigMap, MalformedLinesThrow) {
  EXPECT_THROW(ConfigMap::FromString("[unterminated\n"), std::invalid_argument);
  EXPECT_THROW(ConfigMap::FromString("key_without_equals\n"),
               std::invalid_argument);
}

TEST(ConfigMap, KeysBeforeAnySectionGoToEmptySection) {
  auto cfg = ConfigMap::FromString("top = 1\n[s]\nk = 2\n");
  EXPECT_EQ(cfg.GetIntOr("", "top", 0), 1);
  EXPECT_EQ(cfg.GetIntOr("s", "k", 0), 2);
}

TEST(ConfigMap, SetAndRoundtrip) {
  ConfigMap cfg;
  cfg.Set("dev", "size", "64GiB");
  cfg.Set("dev", "pages", "384");
  const auto round = ConfigMap::FromString(cfg.ToString());
  EXPECT_EQ(round.GetBytesOr("dev", "size", 0), 64ull << 30);
  EXPECT_EQ(round.GetIntOr("dev", "pages", 0), 384);
}

TEST(ConfigMap, MissingFileThrows) {
  EXPECT_THROW(ConfigMap::FromFile("/nonexistent/path/cfg.ini"),
               std::runtime_error);
}

TEST(ConfigMap, InlineCommentsStripped) {
  auto cfg = ConfigMap::FromString(
      "[s]\nsize = 16KiB  # page size\nmode = fast ; note\n");
  EXPECT_EQ(cfg.GetBytesOr("s", "size", 0), 16384u);
  EXPECT_EQ(cfg.GetStringOr("s", "mode", ""), "fast");
}

TEST(ConfigMap, HexIntegers) {
  auto cfg = ConfigMap::FromString("[s]\nmask = 0xff\n");
  EXPECT_EQ(cfg.GetIntOr("s", "mask", 0), 255);
}

}  // namespace
}  // namespace ctflash::util
