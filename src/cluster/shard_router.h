// ShardRouter: deterministic user -> shard -> device placement over a
// simulated device fleet.
//
// Users (millions of opaque 64-bit ids) hash onto a fixed set of shards;
// shards place onto devices through a consistent-hash ring (every active
// device contributes `vnodes` seeded points).  Each shard's placement is
// the first `replicas` DISTINCT devices clockwise from the shard's own ring
// position: placement[0] is the primary that serves the shard's traffic,
// the rest are standby copies used as rebuild sources when the primary
// fails.  Everything derives from one seed, so two routers built from the
// same RouterConfig agree on every placement bit-for-bit.
//
// Failure handling (MarkFailed) preserves the consistent-hashing
// minimal-disruption property: only shards whose placement involved the
// failed device move.
//
//  * With a spare available (devices [num_devices, num_devices +
//    spare_devices) start outside the ring), the spare ADOPTS the failed
//    device's ring points, so exactly the failed device's placement slots
//    transfer to the spare and nothing else changes.
//  * With no spare left, the failed device's points leave the ring and each
//    affected shard replaces it with the next distinct alive device
//    clockwise — other placements again stay untouched.
//
// MarkFailed reports the moved shards with their rebuild source (a
// surviving placement member), which the ClusterDirector turns into real
// migration traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctflash::cluster {

using DeviceId = std::uint32_t;
using ShardId = std::uint32_t;

inline constexpr DeviceId kNoDevice = static_cast<DeviceId>(-1);

struct RouterConfig {
  std::uint32_t num_devices = 8;    ///< ring-active devices at t=0
  std::uint32_t spare_devices = 0;  ///< standby devices (join on failure)
  std::uint32_t num_shards = 256;
  std::uint32_t replicas = 2;       ///< placement width (primary + standbys)
  std::uint32_t vnodes = 64;        ///< ring points per device
  std::uint64_t seed = 1;

  std::uint32_t TotalDevices() const { return num_devices + spare_devices; }

  /// Throws std::invalid_argument on nonsensical shapes (no devices, zero
  /// shards/vnodes, replicas exceeding the device count).
  void Validate() const;
};

/// One shard displaced by a device failure: placement slot `slot` moved
/// from `from` to `to`; `source` is a surviving member of the old placement
/// to rebuild from (kNoDevice when the shard had no surviving copy —
/// unrecoverable without external redundancy).
struct ShardMove {
  ShardId shard = 0;
  std::uint32_t slot = 0;
  DeviceId from = kNoDevice;
  DeviceId to = kNoDevice;
  DeviceId source = kNoDevice;
};

class ShardRouter {
 public:
  explicit ShardRouter(const RouterConfig& config);

  const RouterConfig& config() const { return config_; }

  /// User -> shard hash; stable under the config seed.
  ShardId ShardOfUser(std::uint64_t user) const;

  /// The shard's current placement (size replicas, distinct devices).
  const std::vector<DeviceId>& PlacementOf(ShardId shard) const {
    return placements_[shard];
  }
  /// The device serving the shard's traffic (placement slot 0).
  DeviceId PrimaryOf(ShardId shard) const { return placements_[shard][0]; }
  /// Convenience: PrimaryOf(ShardOfUser(user)).
  DeviceId DeviceOfUser(std::uint64_t user) const {
    return PrimaryOf(ShardOfUser(user));
  }

  bool IsAlive(DeviceId device) const { return alive_[device]; }
  /// Devices currently holding ring points (spares join on adoption).
  std::uint32_t RingDevices() const;
  /// Unused spares remaining.
  std::uint32_t SparesLeft() const;
  /// Shards whose primary is `device`.
  std::uint64_t PrimaryShardsOn(DeviceId device) const;
  /// Placement slots (any replica rank) on `device`.
  std::uint64_t PlacementSlotsOn(DeviceId device) const;

  /// Fails `device`: removes it from the ring (or hands its ring points to
  /// the next unused spare) and repairs every placement that contained it.
  /// Returns the displaced shards with rebuild sources, in shard order.
  /// Failing an already-failed device returns an empty list.  Throws
  /// std::runtime_error when no alive replacement device exists.
  std::vector<ShardMove> MarkFailed(DeviceId device);

 private:
  /// First `replicas` distinct alive devices clockwise from the shard's
  /// ring position, skipping devices in `exclude` (repair keeps surviving
  /// members and fills the hole).
  std::vector<DeviceId> PlaceShard(ShardId shard) const;
  DeviceId NextAliveOnRing(std::uint64_t from_hash,
                           const std::vector<DeviceId>& exclude) const;

  RouterConfig config_;
  /// Sorted (hash, device) ring over ring-active devices.
  std::vector<std::pair<std::uint64_t, DeviceId>> ring_;
  std::vector<std::uint64_t> shard_hash_;      ///< ring position per shard
  std::vector<std::vector<DeviceId>> placements_;
  std::vector<bool> alive_;
  std::vector<bool> in_ring_;
  std::uint32_t next_spare_ = 0;  ///< next unused spare (absolute id offset)
};

}  // namespace ctflash::cluster
