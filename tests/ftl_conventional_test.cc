#include "ftl/conventional_ftl.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/random.h"

namespace ctflash::ftl {
namespace {

nand::NandGeometry Geo(std::uint64_t blocks_per_plane = 16) {
  nand::NandGeometry g;
  g.channels = 2;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 2;
  g.blocks_per_plane = blocks_per_plane;
  g.pages_per_block = 16;
  g.page_size_bytes = 4096;
  g.num_layers = 16;
  return g;
}

FtlConfig Config() {
  FtlConfig c;
  c.op_ratio = 0.25;
  c.gc_threshold_low = 3;
  c.gc_threshold_high = 5;
  return c;
}

class ConventionalFtlTest : public ::testing::Test {
 protected:
  ConventionalFtlTest() : target_(Geo(), nand::NandTiming{}), ftl_(target_, Config()) {}
  FlashTarget target_;
  ConventionalFtl ftl_;
};

TEST_F(ConventionalFtlTest, LogicalCapacityReflectsOverProvisioning) {
  const std::uint64_t physical = Geo().TotalPages();
  EXPECT_EQ(ftl_.LogicalPages(),
            static_cast<std::uint64_t>(physical * 0.75));
  EXPECT_EQ(ftl_.PageSize(), 4096u);
}

TEST_F(ConventionalFtlTest, RequestValidation) {
  EXPECT_THROW(ftl_.Write(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(ftl_.Read(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(ftl_.Write(ftl_.LogicalBytes(), 4096, 0), std::invalid_argument);
  EXPECT_THROW(ftl_.Read(ftl_.LogicalBytes() - 100, 4096, 0),
               std::invalid_argument);
}

TEST_F(ConventionalFtlTest, WriteThenReadHitsMappedPage) {
  const auto w = ftl_.Write(0, 4096, 100);
  EXPECT_EQ(w.pages, 1u);
  EXPECT_GT(w.LatencyUs(), 0);
  EXPECT_TRUE(ftl_.mapping().IsMapped(0));
  const auto r = ftl_.Read(0, 4096, w.completion_us);
  EXPECT_GT(r.LatencyUs(), 0);
  EXPECT_EQ(ftl_.stats().host_read_pages, 1u);
  EXPECT_EQ(ftl_.stats().host_write_pages, 1u);
}

TEST_F(ConventionalFtlTest, UnmappedReadCompletesInstantly) {
  const auto r = ftl_.Read(4096, 4096, 50);
  EXPECT_EQ(r.LatencyUs(), 0);
  EXPECT_EQ(r.completion_us, 50);
}

TEST_F(ConventionalFtlTest, MultiPageRequestSpansPages) {
  // 10 KiB starting mid-page covers 4 pages (offset 2 KiB into page 0).
  const auto w = ftl_.Write(2048, 10240, 0);
  EXPECT_EQ(w.pages, 3u);
  for (Lpn l = 0; l < 3; ++l) EXPECT_TRUE(ftl_.mapping().IsMapped(l));
}

TEST_F(ConventionalFtlTest, OverwriteInvalidatesOldPage) {
  ftl_.Write(0, 4096, 0);
  const Ppn first = ftl_.mapping().Lookup(0);
  ftl_.Write(0, 4096, 1000);
  const Ppn second = ftl_.mapping().Lookup(0);
  EXPECT_NE(first, second);  // out-of-place update
  EXPECT_EQ(ftl_.mapping().LpnOf(first), kInvalidLpn);  // old page orphaned
  // Exactly one live page remains in the system.
  EXPECT_EQ(ftl_.blocks().TotalValid(), 1u);
  EXPECT_TRUE(ftl_.CheckInvariants());
}

TEST_F(ConventionalFtlTest, PagesFillSequentiallyWithinBlock) {
  for (int i = 0; i < 16; ++i) ftl_.Write(i * 4096ull, 4096, i);
  // First block must be completely and sequentially filled.
  EXPECT_TRUE(target_.nand().IsBlockFull(ftl_.mapping().Lookup(0) /
                                         target_.geometry().pages_per_block));
}

TEST_F(ConventionalFtlTest, GcReclaimsInvalidatedSpace) {
  // Random overwrites leave GC victims partially valid (a sequential rewrite
  // wavefront would invalidate whole blocks and keep WAF at exactly 1).
  const std::uint64_t span_pages = 500;
  util::Xoshiro256StarStar rng(11);
  Us now = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t p = rng.UniformBelow(span_pages);
    const auto r = ftl_.Write(p * 4096, 4096, now);
    now = r.completion_us;
  }
  EXPECT_GT(ftl_.stats().gc_erases, 0u);
  EXPECT_GT(ftl_.stats().gc_page_copies, 0u);
  EXPECT_GE(ftl_.blocks().FreeCount(), Config().gc_threshold_low);
  EXPECT_GT(ftl_.stats().Waf(), 1.0);
  EXPECT_TRUE(ftl_.CheckInvariants());
}

TEST_F(ConventionalFtlTest, GcTimeNotChargedByDefault) {
  Us now = 0;
  Us max_write_latency = 0;
  for (int round = 0; round < 60; ++round) {
    for (std::uint64_t p = 0; p < 64; ++p) {
      const auto r = ftl_.Write(p * 4096, 4096, now);
      now = r.completion_us;
      max_write_latency = std::max(max_write_latency, r.LatencyUs());
    }
  }
  ASSERT_GT(ftl_.stats().gc_erases, 0u);
  // Background GC: even writes that triggered GC see only service time.
  EXPECT_LT(max_write_latency, 2000);
  EXPECT_GT(ftl_.stats().gc_time_us, 0);
}

TEST(ConventionalFtlForegroundGc, ChargesTriggeringWrite) {
  FlashTarget target(Geo(), nand::NandTiming{});
  auto cfg = Config();
  cfg.charge_gc_to_write = true;
  ConventionalFtl ftl(target, cfg);
  Us now = 0;
  Us max_latency = 0;
  for (int round = 0; round < 60; ++round) {
    for (std::uint64_t p = 0; p < 64; ++p) {
      const auto r = ftl.Write(p * 4096, 4096, now);
      now = r.completion_us;
      max_latency = std::max(max_latency, r.LatencyUs());
    }
  }
  ASSERT_GT(ftl.stats().gc_erases, 0u);
  EXPECT_GT(max_latency, 4000);  // at least one erase stall visible
}

TEST_F(ConventionalFtlTest, StatsResetKeepsState) {
  ftl_.Write(0, 4096, 0);
  ftl_.ResetStats();
  EXPECT_EQ(ftl_.stats().host_write_pages, 0u);
  EXPECT_TRUE(ftl_.mapping().IsMapped(0));  // data survives
}

TEST_F(ConventionalFtlTest, RandomWorkloadPreservesInvariants) {
  util::Xoshiro256StarStar rng(321);
  Us now = 0;
  const std::uint64_t logical = ftl_.LogicalBytes();
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t page = rng.UniformBelow(logical / 4096);
    const std::uint64_t pages = 1 + rng.UniformBelow(4);
    const std::uint64_t size =
        std::min(pages * 4096, logical - page * 4096);
    if (rng.Bernoulli(0.5)) {
      const auto r = ftl_.Write(page * 4096, size, now);
      now = r.completion_us;
    } else {
      const auto r = ftl_.Read(page * 4096, size, now);
      now = r.completion_us;
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(ftl_.CheckInvariants()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(ftl_.CheckInvariants());
  // Mapping count equals distinct pages ever written.
  EXPECT_EQ(ftl_.mapping().mapped_count(), ftl_.blocks().TotalValid());
}

TEST(ConventionalFtlStriping, SequentialWritesAlternateDies) {
  // Geo() has two dies; with two write frontiers the pages of one large
  // write must not pile up on a single die.
  FlashTarget target(Geo(), nand::NandTiming{});
  auto cfg = Config();
  cfg.write_frontiers = 2;
  ConventionalFtl ftl(target, cfg);
  const auto& geo = target.geometry();
  ftl.Write(0, 8 * 4096, 0);  // 8 pages
  std::set<std::uint64_t> dies;
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    const Ppn ppn = ftl.ProbePpn(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    dies.insert(geo.DieOfBlock(geo.BlockOf(ppn)));
  }
  EXPECT_EQ(dies.size(), 2u) << "pages of one write serialized on one die";
  EXPECT_TRUE(ftl.CheckInvariants());
}

TEST(ConventionalFtlStriping, GcRelocationStreamStripesAcrossDies) {
  // The seed serialized all GC programs behind one gc_active_block_; the
  // GC stream now books relocations on multiple dies.
  FlashTarget target(Geo(), nand::NandTiming{});
  auto cfg = Config();
  cfg.write_frontiers = 2;
  ConventionalFtl ftl(target, cfg);
  util::Xoshiro256StarStar rng(11);
  Us now = 0;
  std::size_t max_gc_frontiers = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t p = rng.UniformBelow(500);
    now = ftl.Write(p * 4096, 4096, now).completion_us;
    max_gc_frontiers = std::max(
        max_gc_frontiers,
        ftl.write_allocator().Frontiers(ConventionalFtl::kGcStream).size());
  }
  ASSERT_GT(ftl.stats().gc_erases, 0u);
  ASSERT_GT(ftl.stats().gc_page_copies, 0u);
  EXPECT_GE(ftl.write_allocator().DiesTouched(ConventionalFtl::kGcStream), 2u)
      << "GC-heavy workload must book programs on >= 2 distinct dies";
  // Striping must be CONCURRENT, not successive single frontiers: the GC
  // stream held two open blocks (two dies) at once at some point.
  EXPECT_GE(max_gc_frontiers, 2u)
      << "GC relocation stream never held two frontiers concurrently";
  EXPECT_TRUE(ftl.CheckInvariants());
}

TEST(ConventionalFtlStriping, RandomWorkloadPreservesInvariants) {
  FlashTarget target(Geo(), nand::NandTiming{});
  auto cfg = Config();
  cfg.write_frontiers = 2;
  cfg.stripe_policy = StripePolicy::kLeastBusy;
  ConventionalFtl ftl(target, cfg);
  util::Xoshiro256StarStar rng(321);
  Us now = 0;
  const std::uint64_t logical = ftl.LogicalBytes();
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t page = rng.UniformBelow(logical / 4096);
    const std::uint64_t pages = 1 + rng.UniformBelow(4);
    const std::uint64_t size = std::min(pages * 4096, logical - page * 4096);
    if (rng.Bernoulli(0.5)) {
      now = ftl.Write(page * 4096, size, now).completion_us;
    } else {
      now = ftl.Read(page * 4096, size, now).completion_us;
    }
    if (i % 500 == 0) ASSERT_TRUE(ftl.CheckInvariants()) << "iteration " << i;
  }
  EXPECT_TRUE(ftl.CheckInvariants());
  EXPECT_TRUE(ftl.write_allocator().CheckInvariants());
  EXPECT_EQ(ftl.mapping().mapped_count(), ftl.blocks().TotalValid());
}

TEST(ConventionalFtlConfig, ValidationErrors) {
  FlashTarget target(Geo(), nand::NandTiming{});
  FtlConfig c;
  c.op_ratio = 0.0;
  EXPECT_THROW(ConventionalFtl(target, c), std::invalid_argument);
  c = FtlConfig{};
  c.gc_threshold_low = 1;
  EXPECT_THROW(ConventionalFtl(target, c), std::invalid_argument);
  c = FtlConfig{};
  c.gc_threshold_high = c.gc_threshold_low;
  EXPECT_THROW(ConventionalFtl(target, c), std::invalid_argument);
}

TEST(ConventionalFtlConfig, TinyDeviceRejected) {
  // 4 blocks total cannot satisfy thresholds + logical space.
  FlashTarget target(Geo(/*blocks_per_plane=*/1), nand::NandTiming{});
  EXPECT_THROW(ConventionalFtl(target, Config()), std::invalid_argument);
}

}  // namespace
}  // namespace ctflash::ftl
