// Host interface behaviour: the QD=1 sync-path equivalence, request
// splitting/clipping, backpressure, and open-loop arrival handling.
#include "host/host_interface.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "host/load_generator.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"

namespace ctflash::host {
namespace {

ssd::SsdConfig SmallConfig() {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  return cfg;
}

/// Builds a device and prefills `fraction_pct` of its logical space;
/// returns the prefill end time.
Us Prefill(ssd::Ssd& ssd, std::uint32_t fraction_pct) {
  ssd::ExperimentRunner runner(ssd);
  return runner.Prefill(ssd.LogicalBytes() / 100 * fraction_pct);
}

TEST(HostInterface, ClosedLoopQd1MatchesSynchronousPath) {
  // The async submit/completion path at QD=1 is the synchronous Read/Write
  // special case: identical request streams must produce identical
  // latency totals and end times.
  const auto cfg = SmallConfig();

  ssd::Ssd ssd_a(cfg);
  const Us prefill_end = Prefill(ssd_a, 50);
  HostInterface host(ssd_a, HostConfig{});
  host.AdvanceTo(prefill_end);
  ClosedLoopGenerator::Config gen_cfg;
  gen_cfg.queue_depth = 1;
  gen_cfg.total_requests = 400;
  gen_cfg.read_fraction = 0.7;
  gen_cfg.request_bytes = 16 * 1024;  // one page: no splitting ambiguity
  gen_cfg.footprint_bytes = ssd_a.LogicalBytes() / 2;
  gen_cfg.seed = 7;
  ClosedLoopGenerator generator(host, gen_cfg);
  const LoadStats load = generator.Run();

  ssd::Ssd ssd_b(cfg);
  const Us prefill_end_b = Prefill(ssd_b, 50);
  ASSERT_EQ(prefill_end, prefill_end_b);
  Us clock = prefill_end_b;
  double total_us = 0.0;
  for (const auto& rec : generator.issued()) {
    const auto r = rec.op == trace::OpType::kRead
                       ? ssd_b.Read(rec.offset_bytes, rec.size_bytes, clock)
                       : ssd_b.Write(rec.offset_bytes, rec.size_bytes, clock);
    total_us += static_cast<double>(r.LatencyUs());
    clock = r.completion_us;
  }

  EXPECT_EQ(load.requests, 400u);
  EXPECT_DOUBLE_EQ(load.read_latency.total_us() +
                       load.write_latency.total_us(),
                   total_us);
  EXPECT_EQ(load.end_us, clock);
}

TEST(HostInterface, MultiPageRequestCompletesWhenLastPageDoes) {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 50);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);

  HostCompletion seen;
  host.Submit(trace::OpType::kRead, 0, 4 * 16 * 1024,
              [&](const HostCompletion& c) { seen = c; });
  host.Run();

  EXPECT_EQ(seen.pages, 4u);
  EXPECT_GT(seen.completion_us, prefill_end);
  EXPECT_GT(seen.LatencyUs(), 0);
  EXPECT_EQ(host.stats().transactions_completed, 4u);
}

TEST(HostInterface, ZeroSizeCompletesInstantlyWithNoPages) {
  ssd::Ssd ssd(SmallConfig());
  HostInterface host(ssd, HostConfig{});
  HostCompletion seen;
  bool fired = false;
  host.Submit(trace::OpType::kRead, 0, 0, [&](const HostCompletion& c) {
    seen = c;
    fired = true;
  });
  host.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(seen.pages, 0u);
  EXPECT_EQ(seen.LatencyUs(), 0);
}

TEST(HostInterface, UnmappedReadCarriesNoFlashWork) {
  ssd::Ssd ssd(SmallConfig());  // no prefill: nothing mapped
  HostInterface host(ssd, HostConfig{});
  HostCompletion seen;
  host.Submit(trace::OpType::kRead, 0, 16 * 1024,
              [&](const HostCompletion& c) { seen = c; });
  host.Run();
  EXPECT_EQ(seen.pages, 1u);
  EXPECT_EQ(seen.LatencyUs(), 0);
}

TEST(HostInterface, OffsetsWrapAndClipLikeTheReplayHarness) {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 100);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  const std::uint64_t logical = ssd.LogicalBytes();

  HostCompletion wrapped;
  host.Submit(trace::OpType::kRead, logical + 4096, 4096,
              [&](const HostCompletion& c) { wrapped = c; });
  HostCompletion clipped;
  host.Submit(trace::OpType::kRead, logical - 4096, 64 * 1024,
              [&](const HostCompletion& c) { clipped = c; });
  host.Run();

  EXPECT_EQ(wrapped.pages, 1u);  // wrapped to offset 4096
  EXPECT_EQ(clipped.pages, 1u);  // clipped to the last 4 KiB
  EXPECT_EQ(host.stats().completed, 2u);
}

TEST(HostInterface, BackpressureNeverDropsRequests) {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 50);
  HostConfig cfg;
  cfg.num_queues = 2;
  cfg.queue_capacity = 2;
  cfg.device_slots = 2;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  std::map<std::uint64_t, int> completions;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t id =
        host.Submit(trace::OpType::kRead,
                    static_cast<std::uint64_t>(i) * 16 * 1024, 16 * 1024,
                    [&completions](const HostCompletion& c) {
                      completions[c.request.id]++;
                    });
    EXPECT_GT(id, 0u);
  }
  EXPECT_GT(host.BacklogDepth(), 0u);  // 64 > 2 queues x 2 slots
  EXPECT_GT(host.stats().backlogged, 0u);
  host.Run();

  EXPECT_EQ(host.stats().submitted, 64u);
  EXPECT_EQ(host.stats().completed, 64u);
  EXPECT_EQ(host.Outstanding(), 0u);
  EXPECT_EQ(host.BacklogDepth(), 0u);
  EXPECT_EQ(completions.size(), 64u);
  for (const auto& [id, count] : completions) EXPECT_EQ(count, 1) << id;
  // Device-slot cap respected throughout.
  EXPECT_LE(host.PeakDeviceInFlight(), cfg.device_slots);
}

TEST(HostInterface, OpenLoopArrivalsHonorTimestamps) {
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 50);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);

  std::vector<trace::TraceRecord> records = {
      {0, trace::OpType::kRead, 0, 16 * 1024},
      {1'000'000, trace::OpType::kRead, 16 * 1024, 16 * 1024},
  };
  OpenLoopGenerator generator(host, records);
  const LoadStats load = generator.Run();

  EXPECT_EQ(load.requests, 2u);
  // 1 s apart on an idle device: neither request queues behind the other,
  // so both see bare service time (well under a millisecond)...
  EXPECT_LT(load.read_latency.max_us(), 1000.0);
  // ...and the run ends shortly after the second arrival, not before.
  EXPECT_GE(load.end_us, prefill_end + 1'000'000);
  EXPECT_LT(load.end_us, prefill_end + 1'001'000);
}

TEST(HostCompletion, LatencyNeverUnderflows) {
  HostCompletion done;
  done.request.submit_us = 100;
  done.completion_us = 250;
  EXPECT_EQ(done.LatencyUs(), 150);
  done.completion_us = 100;  // zero-latency edge is legal
  EXPECT_EQ(done.LatencyUs(), 0);

  // An inverted clock must never book a wrapped (huge) latency.  Debug
  // builds assert on the inversion; release builds clamp to zero.
  HostCompletion inverted;
  inverted.request.submit_us = 500;
  inverted.completion_us = 400;
#ifdef NDEBUG
  EXPECT_EQ(inverted.LatencyUs(), 0);
#else
  EXPECT_DEATH(inverted.LatencyUs(), "completion_us >= request.submit_us");
#endif
}

TEST(HostConfigValidate, RejectsZeroedKnobs) {
  ssd::Ssd ssd(SmallConfig());
  HostConfig cfg;
  cfg.num_queues = 0;
  EXPECT_THROW(HostInterface(ssd, cfg), std::invalid_argument);
  cfg = HostConfig{};
  cfg.queue_capacity = 0;
  EXPECT_THROW(HostInterface(ssd, cfg), std::invalid_argument);
  cfg = HostConfig{};
  cfg.device_slots = 0;
  EXPECT_THROW(HostInterface(ssd, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ctflash::host
