// FaultInjector unit tests: config validation, seeded determinism, RNG
// discipline for disabled fault classes, die/channel loss schedules,
// read-disturb/retention RBER scaling, and snapshot round-trips.
#include "nand/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/serial.h"

namespace ctflash::nand {
namespace {

// 2 channels x 2 chips x 2 dies = 8 dies, 4 per channel.
NandGeometry Geo() {
  NandGeometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.dies_per_chip = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 16;
  g.page_size_bytes = 4096;
  g.num_layers = 16;
  return g;
}

TEST(FaultPlanConfig, Validation) {
  FaultPlanConfig c;
  c.Validate();  // defaults are a no-fault plan
  c.program_fail_prob = 1.0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = FaultPlanConfig{};
  c.program_fail_prob = -0.1;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = FaultPlanConfig{};
  c.erase_fail_prob = 1.0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = FaultPlanConfig{};
  c.read_disturb_per_read = -1e-6;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = FaultPlanConfig{};
  c.retention_rber_multiplier = 0.5;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
}

TEST(FaultInjector, RejectsOutOfRangeTargets) {
  FaultPlanConfig c;
  c.fail_dies = {8};  // only dies 0..7 exist
  EXPECT_THROW(FaultInjector(Geo(), c, 1), std::invalid_argument);
  c = FaultPlanConfig{};
  c.fail_channels = {2};  // only channels 0..1 exist
  EXPECT_THROW(FaultInjector(Geo(), c, 1), std::invalid_argument);
}

TEST(FaultInjector, DeterministicForSeed) {
  FaultPlanConfig c;
  c.program_fail_prob = 0.3;
  c.erase_fail_prob = 0.2;
  FaultInjector a(Geo(), c, 42), b(Geo(), c, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.DrawProgramFail(), b.DrawProgramFail());
    EXPECT_EQ(a.DrawEraseFail(), b.DrawEraseFail());
  }
}

TEST(FaultInjector, ProgramFailFrequencyMatchesProbability) {
  FaultPlanConfig c;
  c.program_fail_prob = 0.1;
  FaultInjector inj(Geo(), c, 7);
  const int n = 20000;
  int fails = 0;
  for (int i = 0; i < n; ++i) fails += inj.DrawProgramFail() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.1, 0.01);
}

TEST(FaultInjector, DisabledClassesConsumeNoRng) {
  // With erase faults off, interleaving DrawEraseFail must not perturb the
  // program-fail draw sequence — otherwise toggling one fault class would
  // silently reshuffle every other class's schedule.
  FaultPlanConfig c;
  c.program_fail_prob = 0.25;
  FaultInjector with_noise(Geo(), c, 11), clean(Geo(), c, 11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(with_noise.DrawEraseFail());  // disabled: free and false
    EXPECT_EQ(with_noise.DrawProgramFail(), clean.DrawProgramFail());
  }
}

TEST(FaultInjector, DieLossRespectsSchedule) {
  FaultPlanConfig c;
  c.fail_dies = {3};
  c.fail_at_us = 1000;
  const NandGeometry g = Geo();
  FaultInjector inj(g, c, 1);
  // Find one block on die 3 and one elsewhere.
  BlockId on_die = kInvalidPpn, off_die = kInvalidPpn;
  for (BlockId b = 0; b < g.TotalBlocks(); ++b) {
    (g.DieOfBlock(b) == 3 ? on_die : off_die) = b;
  }
  ASSERT_NE(on_die, kInvalidPpn);
  ASSERT_NE(off_die, kInvalidPpn);
  EXPECT_FALSE(inj.Unreachable(on_die, 999));   // before the failure time
  EXPECT_TRUE(inj.Unreachable(on_die, 1000));   // from fail_at_us onward
  EXPECT_TRUE(inj.Unreachable(on_die, 50000));
  EXPECT_FALSE(inj.Unreachable(off_die, 50000));
}

TEST(FaultInjector, ChannelLossCoversEveryDieOfTheChannel) {
  FaultPlanConfig c;
  c.fail_channels = {1};
  c.fail_at_us = 0;
  const NandGeometry g = Geo();
  FaultInjector inj(g, c, 1);
  for (BlockId b = 0; b < g.TotalBlocks(); ++b) {
    EXPECT_EQ(inj.Unreachable(b, 5), g.ChannelOfBlock(b) == 1u);
  }
}

TEST(FaultInjector, RberScaleAccumulatesDisturbOnRetentionFloor) {
  FaultPlanConfig c;
  c.retention_rber_multiplier = 2.0;
  c.read_disturb_per_read = 0.01;
  FaultInjector inj(Geo(), c, 1);
  EXPECT_DOUBLE_EQ(inj.RberScale(0), 2.0);
  for (int i = 0; i < 10; ++i) inj.OnRead(0);
  EXPECT_EQ(inj.ReadsSinceErase(0), 10u);
  EXPECT_DOUBLE_EQ(inj.RberScale(0), 2.0 * 1.1);
  EXPECT_DOUBLE_EQ(inj.RberScale(1), 2.0);  // per-block accounting
  inj.OnErase(0);
  EXPECT_EQ(inj.ReadsSinceErase(0), 0u);
  EXPECT_DOUBLE_EQ(inj.RberScale(0), 2.0);
}

TEST(FaultInjector, OnReadFreeWhenDisturbDisabled) {
  FaultPlanConfig c;  // read_disturb_per_read == 0
  FaultInjector inj(Geo(), c, 1);
  for (int i = 0; i < 5; ++i) inj.OnRead(0);
  EXPECT_EQ(inj.ReadsSinceErase(0), 0u);
  EXPECT_DOUBLE_EQ(inj.RberScale(0), 1.0);
}

TEST(FaultInjector, StateRoundTripResumesSchedule) {
  FaultPlanConfig c;
  c.program_fail_prob = 0.3;
  c.erase_fail_prob = 0.1;
  c.read_disturb_per_read = 0.001;
  c.retention_rber_multiplier = 1.5;
  c.fail_dies = {5};
  c.fail_channels = {0};
  c.fail_at_us = 777;
  FaultInjector orig(Geo(), c, 99);
  // Advance the stochastic state, then snapshot.
  for (int i = 0; i < 57; ++i) (void)orig.DrawProgramFail();
  for (int i = 0; i < 9; ++i) orig.OnRead(2);
  util::StateWriter w;
  orig.SaveState(w);
  // Restore into an injector built with a *different* plan: the serialized
  // config must fully replace it.
  FaultInjector restored(Geo(), FaultPlanConfig{}, 0);
  util::StateReader r(w.bytes());
  restored.LoadState(r);
  EXPECT_EQ(restored.config().fail_at_us, 777);
  EXPECT_EQ(restored.ReadsSinceErase(2), 9u);
  EXPECT_TRUE(restored.Unreachable(0, 777));  // channel 0 loss restored
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(restored.DrawProgramFail(), orig.DrawProgramFail());
    EXPECT_EQ(restored.DrawEraseFail(), orig.DrawEraseFail());
  }
}

}  // namespace
}  // namespace ctflash::nand
