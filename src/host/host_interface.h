// NVMe-flavored multi-queue host interface: the traffic-serving front end
// of the simulated device.
//
// Byte-range requests enter one of `num_queues` bounded submission queues
// (round-robin placement, as a multi-core driver would distribute them),
// are split into page-level flash transactions, and dispatch out-of-order
// across channels/chips/dies through the IoScheduler.  A request's queue
// slot stays occupied until its last page completes (the completion-queue
// entry), so num_queues * queue_capacity bounds outstanding requests;
// submissions beyond that wait in a host-side backlog — a blocked
// submitter, never dropped work.
//
// Offsets are clipped into the exported logical space the same way the
// trace-replay harness clips them (wrapped traces), so any TraceRecord can
// be submitted directly.
//
// All progress is driven by the owned sim::EventQueue: Submit() computes
// flash timing through the resource timelines and completions fire as
// events, which makes runs bit-for-bit deterministic.  Construct the Ssd
// with TimingMode::kQueued — with pure service-time accounting there is no
// contention and queue depth cannot matter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "host/io_scheduler.h"
#include "host/request.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash::host {

struct HostConfig {
  std::uint32_t num_queues = 4;      ///< submission/completion queue pairs
  std::uint32_t queue_capacity = 64; ///< outstanding requests per queue
  std::uint32_t device_slots = 32;   ///< in-flight page transactions
  SchedPolicy policy = SchedPolicy::kOutOfOrder;
  /// Scheduled-GC aging bound: a waiting GC transaction overtaken by this
  /// many host dispatches is boosted above host writes (see io_scheduler.h).
  std::uint32_t gc_aging_limit = 64;

  void Validate() const;
};

class HostInterface {
 public:
  using CompletionCallback = std::function<void(const HostCompletion&)>;

  HostInterface(ssd::Ssd& ssd, const HostConfig& config);

  HostInterface(const HostInterface&) = delete;
  HostInterface& operator=(const HostInterface&) = delete;

  /// Submits a request at the current simulated time; returns its id.
  /// `cb` (optional) fires when the last page transaction completes.
  std::uint64_t Submit(trace::OpType op, std::uint64_t offset_bytes,
                       std::uint64_t size_bytes,
                       CompletionCallback cb = nullptr);

  /// Schedules a submission at absolute simulated time `at` (open-loop
  /// arrivals from trace timestamps).
  void SubmitAt(Us at, trace::OpType op, std::uint64_t offset_bytes,
                std::uint64_t size_bytes, CompletionCallback cb = nullptr);

  /// Runs the event queue until all submitted work has completed.
  void Run() { queue_.RunToCompletion(); }

  /// Advances simulated time without submitting (e.g. past the end of a
  /// synchronous prefill, whose flash work already booked the timelines).
  void AdvanceTo(Us at) { queue_.RunUntil(at); }

  sim::EventQueue& queue() { return queue_; }
  ssd::Ssd& ssd() { return ssd_; }
  const HostConfig& config() const { return config_; }
  const HostStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HostStats{}; }

  /// Admitted-but-incomplete requests across all queues.
  std::uint32_t Outstanding() const { return outstanding_; }
  std::size_t BacklogDepth() const { return backlog_.size(); }
  std::uint64_t TxnsDispatched() const { return scheduler_.DispatchedCount(); }
  std::uint32_t PeakDeviceInFlight() const {
    return scheduler_.PeakInFlight();
  }

  /// Direct scheduler access (GC-routing counters, test dispatch hooks).
  IoScheduler& scheduler() { return scheduler_; }
  const IoScheduler& scheduler() const { return scheduler_; }

 private:
  struct Pending {
    HostRequest request;
    std::uint32_t qid = 0;
    std::uint32_t pages = 0;
    std::uint32_t pages_left = 0;
    Us completion_us = 0;
    CompletionCallback cb;
  };

  /// Places the request in submission queue `qid` and hands its page
  /// transactions to the scheduler.
  void Admit(HostRequest request, std::uint32_t qid, CompletionCallback cb);
  void OnTxnComplete(const FlashTransaction& txn,
                     const ftl::RequestResult& result);
  /// Retires a fully completed request: stats, queue slot, backlog pull,
  /// completion callback.
  void FinalizeRequest(std::uint64_t id);

  ssd::Ssd& ssd_;
  HostConfig config_;
  sim::EventQueue queue_;
  IoScheduler scheduler_;
  HostStats stats_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<std::uint32_t> queue_fill_;  ///< occupancy per submission queue
  std::deque<std::pair<HostRequest, CompletionCallback>> backlog_;
  std::uint64_t next_id_ = 1;
  std::uint32_t rr_next_queue_ = 0;
  std::uint32_t outstanding_ = 0;
};

}  // namespace ctflash::host
