// ClusterSpec parsing: defaults, the campaign-style device template, QoS
// tenant synthesis, fault schedules, and validation errors.
#include <gtest/gtest.h>

#include "cluster/spec.h"

namespace ctflash::cluster {
namespace {

TEST(ClusterSpec, DefaultsAreSane) {
  const ClusterSpec spec = ClusterSpec::Parse(R"({})");
  EXPECT_EQ(spec.name, "cluster");
  EXPECT_EQ(spec.router.num_devices, 8u);
  EXPECT_EQ(spec.router.spare_devices, 0u);
  EXPECT_EQ(spec.router.num_shards, 256u);
  EXPECT_EQ(spec.router.replicas, 2u);
  EXPECT_EQ(spec.router.seed, spec.seed);
  EXPECT_EQ(spec.user_count, 1'000'000u);
  EXPECT_EQ(spec.policy, RebalancePolicy::kOnFailure);
  // The synthesized QoS table: users on all but the last queue, rebuild on
  // the last, weights 8:1.
  ASSERT_EQ(spec.device.host.qos.tenants.size(), 2u);
  EXPECT_EQ(spec.device.host.qos.tenants[0].name, "users");
  EXPECT_EQ(spec.device.host.qos.tenants[0].weight, 8u);
  EXPECT_EQ(spec.device.host.qos.tenants[1].name, "rebuild");
  EXPECT_EQ(spec.device.host.qos.tenants[1].weight, 1u);
  EXPECT_EQ(spec.device.host.qos.tenants[1].queues.size(), 1u);
  EXPECT_EQ(spec.device.host.qos.tenants[1].queues[0],
            spec.device.host.num_queues - 1);
}

TEST(ClusterSpec, ParsesFullSpec) {
  const ClusterSpec spec = ClusterSpec::Parse(R"({
    "cluster": "loss-drill",
    "workers": 4,
    "seed": 7,
    "fleet": {"devices": 4, "spares": 2},
    "router": {"shards": 64, "replicas": 3, "vnodes": 16, "seed": 99},
    "device": {"device_bytes": "32MiB", "ftl": "ppb", "prefill_pct": 70},
    "users": {"count": 5000, "zipf_theta": 1.1},
    "workload": {"rate_iops": 12000, "read_fraction": 0.8,
                 "request_bytes": "32KiB", "epochs": 4, "epoch_us": 100000,
                 "timeout_us": 500000},
    "qos": {"user_weight": 6, "rebuild_weight": 2},
    "rebalance": {"policy": "none", "fail_on_lost_pages": 5,
                  "migration_chunk": "128KiB", "shard_bytes": "512KiB",
                  "rebuild_epochs": 3, "rebuild_bytes_per_sec": 4194304},
    "faults": [{"device": 1, "kind": "die", "at_us": 2000},
               {"device": 3, "kind": "device", "at_us": 4000}]
  })");
  EXPECT_EQ(spec.name, "loss-drill");
  EXPECT_EQ(spec.workers, 4u);
  EXPECT_EQ(spec.router.num_devices, 4u);
  EXPECT_EQ(spec.router.spare_devices, 2u);
  EXPECT_EQ(spec.router.num_shards, 64u);
  EXPECT_EQ(spec.router.replicas, 3u);
  EXPECT_EQ(spec.router.seed, 99u);
  EXPECT_EQ(spec.device.prefill_pct, 70u);
  EXPECT_EQ(spec.user_count, 5000u);
  EXPECT_DOUBLE_EQ(spec.zipf_theta, 1.1);
  EXPECT_DOUBLE_EQ(spec.rate_iops, 12000.0);
  EXPECT_EQ(spec.request_bytes, 32u * 1024);
  EXPECT_EQ(spec.epochs, 4u);
  EXPECT_EQ(spec.epoch_us, 100'000);
  EXPECT_EQ(spec.timeout_us, 500'000);
  EXPECT_EQ(spec.policy, RebalancePolicy::kNone);
  EXPECT_EQ(spec.fail_on_lost_pages, 5u);
  EXPECT_EQ(spec.migration_chunk_bytes, 128u * 1024);
  EXPECT_EQ(spec.shard_bytes, 512u * 1024);
  EXPECT_EQ(spec.rebuild_epochs, 3u);
  EXPECT_DOUBLE_EQ(spec.rebuild_bytes_per_sec, 4194304.0);
  // The admission cap lands on the rebuild tenant's token bucket.
  EXPECT_DOUBLE_EQ(spec.device.host.qos.tenants[1].bytes_per_sec_limit,
                   4194304.0);
  EXPECT_EQ(spec.device.host.qos.tenants[0].weight, 6u);
  EXPECT_EQ(spec.device.host.qos.tenants[1].weight, 2u);
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_EQ(spec.faults[0].device, 1u);
  EXPECT_EQ(spec.faults[0].kind, "die");
  EXPECT_EQ(spec.faults[1].at_us, 4000);
}

TEST(ClusterSpec, FaultPlansTargetTheRightHardware) {
  const ClusterSpec spec = ClusterSpec::Parse(R"({
    "fleet": {"devices": 4},
    "device": {"device_bytes": "32MiB"},
    "faults": [{"device": 1, "kind": "die", "at_us": 2000},
               {"device": 2, "kind": "channel", "at_us": 3000},
               {"device": 3, "kind": "device", "at_us": 4000}]
  })");
  const Us start = 1'000'000;
  const nand::FaultPlanConfig clean = spec.FaultPlanFor(0, start);
  EXPECT_TRUE(clean.fail_dies.empty());
  EXPECT_TRUE(clean.fail_channels.empty());

  const nand::FaultPlanConfig die = spec.FaultPlanFor(1, start);
  ASSERT_EQ(die.fail_dies.size(), 1u);
  EXPECT_EQ(die.fail_at_us, start + 2000);

  const nand::FaultPlanConfig chan = spec.FaultPlanFor(2, start);
  ASSERT_EQ(chan.fail_channels.size(), 1u);

  // "device" darkens every channel of the template geometry.
  const nand::FaultPlanConfig dead = spec.FaultPlanFor(3, start);
  EXPECT_EQ(dead.fail_channels.size(),
            spec.device.device.geometry.channels);
  EXPECT_EQ(dead.fail_at_us, start + 4000);
}

TEST(ClusterSpec, ParsesObservedPolicyMonitorsAndWearFaults) {
  const ClusterSpec spec = ClusterSpec::Parse(R"({
    "fleet": {"devices": 4},
    "device": {"device_bytes": "32MiB"},
    "rebalance": {"policy": "on_observed",
                  "health": {"ewma_alpha": 0.6, "degraded_frac": 0.4,
                             "spare_fail_frac": 0.3,
                             "program_fail_rate": 0.025,
                             "retry_fail_rate": 0.9,
                             "gc_stall_fail_share": 0.95},
                  "slo": {"read_p99_target_us": 900000, "quantile": 0.95,
                          "min_samples": 32, "burn_windows": 3,
                          "burn_threshold": 0.67}},
    "faults": [{"device": 1, "kind": "wear", "at_us": 0,
                "erase_fail_prob": 0.15, "program_fail_prob": 0.02}]
  })");
  EXPECT_EQ(spec.policy, RebalancePolicy::kOnObserved);
  // The health monitor's GC signal reads the tracer, so on_observed
  // forces phase tracing on even when "observability" is absent.
  EXPECT_TRUE(spec.trace_phases);
  EXPECT_DOUBLE_EQ(spec.health.ewma_alpha, 0.6);
  EXPECT_DOUBLE_EQ(spec.health.degraded_frac, 0.4);
  EXPECT_DOUBLE_EQ(spec.health.spare_fail_frac, 0.3);
  EXPECT_DOUBLE_EQ(spec.health.program_fail_rate, 0.025);
  EXPECT_DOUBLE_EQ(spec.health.retry_fail_rate, 0.9);
  EXPECT_DOUBLE_EQ(spec.health.gc_stall_fail_share, 0.95);
  EXPECT_EQ(spec.slo.target_us, 900'000);
  EXPECT_DOUBLE_EQ(spec.slo.quantile, 0.95);
  EXPECT_EQ(spec.slo.min_samples, 32u);
  EXPECT_EQ(spec.slo.burn_windows, 3u);
  EXPECT_DOUBLE_EQ(spec.slo.burn_threshold, 0.67);

  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_EQ(spec.faults[0].kind, "wear");
  EXPECT_DOUBLE_EQ(spec.faults[0].erase_fail_prob, 0.15);
  EXPECT_DOUBLE_EQ(spec.faults[0].program_fail_prob, 0.02);
  // A wear ramp arms verify-fail probabilities, not hard loss.
  const nand::FaultPlanConfig plan = spec.FaultPlanFor(1, 0);
  EXPECT_TRUE(plan.fail_dies.empty());
  EXPECT_TRUE(plan.fail_channels.empty());
  EXPECT_DOUBLE_EQ(plan.erase_fail_prob, 0.15);
  EXPECT_DOUBLE_EQ(plan.program_fail_prob, 0.02);

  EXPECT_EQ(spec.ConfigSummary().GetStringOr("policy", ""), "on_observed");
}

TEST(ClusterSpec, DeviceTemplateAcceptsPagesPerBlock) {
  // Wear scenarios shrink the block so retirement moves the needle on a
  // scaled device; the knob must reshape the template geometry and keep
  // the layer map legal (layers <= pages per block).
  const ClusterSpec spec = ClusterSpec::Parse(R"({
    "fleet": {"devices": 2},
    "device": {"device_bytes": "32MiB", "pages_per_block": 32}
  })");
  EXPECT_EQ(spec.device.device.geometry.pages_per_block, 32u);
  EXPECT_LE(spec.device.device.geometry.num_layers, 32u);
}

TEST(ClusterSpec, RejectsBadSpecs) {
  EXPECT_THROW(ClusterSpec::Parse(R"({"workers": 0})"), std::runtime_error);
  EXPECT_THROW(ClusterSpec::Parse(R"({"rebalance": {"policy": "maybe"}})"),
               std::runtime_error);
  EXPECT_THROW(
      ClusterSpec::Parse(R"({"workload": {"read_fraction": 1.5}})"),
      std::runtime_error);
  EXPECT_THROW(
      ClusterSpec::Parse(R"({"faults": [{"device": 99, "kind": "die"}]})"),
      std::runtime_error);
  EXPECT_THROW(
      ClusterSpec::Parse(R"({"faults": [{"device": 0, "kind": "gremlin"}]})"),
      std::runtime_error);
  EXPECT_THROW(
      ClusterSpec::Parse(R"({"fleet": {"devices": 2},
                             "router": {"replicas": 3}})"),
      std::invalid_argument);
  // Rebuild needs its own queue.
  EXPECT_THROW(
      ClusterSpec::Parse(R"({"device": {"host": {"num_queues": 1}}})"),
      std::runtime_error);
  EXPECT_THROW(
      ClusterSpec::Parse(
          R"({"rebalance": {"rebuild_bytes_per_sec": -1.0}})"),
      std::runtime_error);
  // A wear fault with every ramp knob at its no-op value does nothing.
  EXPECT_THROW(
      ClusterSpec::Parse(R"({"faults": [{"device": 0, "kind": "wear"}]})"),
      std::runtime_error);
  // Monitor knobs are validated at parse time, not first observation.
  EXPECT_THROW(ClusterSpec::Parse(
                   R"({"rebalance": {"policy": "on_observed",
                                     "health": {"program_fail_rate": 2.0}}})"),
               std::runtime_error);
  EXPECT_THROW(ClusterSpec::Parse(
                   R"({"rebalance": {"policy": "on_observed",
                                     "slo": {"read_p99_target_us": 1000,
                                             "burn_windows": 0}}})"),
               std::runtime_error);
}

TEST(ClusterSpec, ConfigSummaryEchoesTheScenario) {
  const ClusterSpec spec = ClusterSpec::Parse(R"({
    "cluster": "echo",
    "fleet": {"devices": 3, "spares": 1},
    "device": {"device_bytes": "32MiB"},
    "faults": [{"device": 2, "kind": "channel", "at_us": 1000}]
  })");
  const Json summary = spec.ConfigSummary();
  EXPECT_EQ(summary.GetStringOr("cluster", ""), "echo");
  EXPECT_EQ(summary.GetUintOr("devices", 0), 3u);
  EXPECT_EQ(summary.GetUintOr("spares", 0), 1u);
  EXPECT_EQ(summary.GetStringOr("policy", ""), "on_failure");
  ASSERT_NE(summary.Get("faults"), nullptr);
  EXPECT_EQ(summary.Get("faults")->AsArray().size(), 1u);
  // The echo is deterministic (sorted keys, stable numbers).
  EXPECT_EQ(summary.Dump(), spec.ConfigSummary().Dump());
}

}  // namespace
}  // namespace ctflash::cluster
