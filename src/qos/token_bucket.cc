#include "qos/token_bucket.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ctflash::qos {

TokenBucket::TokenBucket(double rate_per_sec, double burst, Us now)
    : rate_per_us_(rate_per_sec / 1e6),
      capacity_(burst),
      tokens_(burst),
      last_refill_(now) {
  if (rate_per_sec <= 0.0) {
    throw std::invalid_argument("TokenBucket: rate_per_sec must be > 0");
  }
  if (burst <= 0.0) {
    throw std::invalid_argument("TokenBucket: burst must be > 0");
  }
}

double TokenBucket::TokensAt(Us now) const {
  if (!limited()) return 0.0;
  const Us dt = now > last_refill_ ? now - last_refill_ : 0;
  return std::min(capacity_,
                  tokens_ + static_cast<double>(dt) * rate_per_us_);
}

Us TokenBucket::EarliestAt(Us now, double cost) const {
  if (!limited() || cost <= 0.0) return now;
  const double need = std::min(cost, capacity_);
  const double have = TokensAt(now);
  if (have >= need) return now;
  const double wait_us = (need - have) / rate_per_us_;
  return now + static_cast<Us>(std::ceil(wait_us));
}

void TokenBucket::Consume(Us now, double cost) {
  if (!limited()) return;
  tokens_ = TokensAt(now) - cost;
  last_refill_ = std::max(last_refill_, now);
}

}  // namespace ctflash::qos
