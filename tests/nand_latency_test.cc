#include "nand/latency_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::nand {
namespace {

NandGeometry Geo() {
  NandGeometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 64;
  g.page_size_bytes = 16 * 1024;
  g.num_layers = 64;
  return g;
}

TEST(NandTiming, ValidationErrors) {
  NandTiming t;
  t.page_read_us = 0;
  EXPECT_THROW(t.Validate(), std::invalid_argument);
  t = NandTiming{};
  t.transfer_mb_per_s = 0;
  EXPECT_THROW(t.Validate(), std::invalid_argument);
  t = NandTiming{};
  t.speed_ratio = 0.5;
  EXPECT_THROW(t.Validate(), std::invalid_argument);
}

TEST(LatencyModel, TopPageRunsAtBaseLatency) {
  NandTiming t;
  t.speed_ratio = 4.0;
  const LatencyModel m(Geo(), t);
  EXPECT_DOUBLE_EQ(m.SpeedFactor(0), 1.0);
  EXPECT_EQ(m.ReadUs(0), t.page_read_us);
}

TEST(LatencyModel, BottomPageRunsAtBaseOverR) {
  NandTiming t;
  t.speed_ratio = 2.0;
  const LatencyModel m(Geo(), t);
  EXPECT_DOUBLE_EQ(m.SpeedFactor(63), 0.5);
  EXPECT_EQ(m.ReadUs(63), 25);  // round(49 * 0.5)
}

TEST(LatencyModel, FactorMonotoneDecreasingWithDepth) {
  NandTiming t;
  t.speed_ratio = 5.0;
  const LatencyModel m(Geo(), t);
  for (std::uint32_t p = 1; p < 64; ++p) {
    EXPECT_LT(m.SpeedFactor(p), m.SpeedFactor(p - 1));
  }
}

TEST(LatencyModel, RatioOneMeansUniform) {
  NandTiming t;
  t.speed_ratio = 1.0;
  const LatencyModel m(Geo(), t);
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_DOUBLE_EQ(m.SpeedFactor(p), 1.0);
    EXPECT_EQ(m.ReadUs(p), t.page_read_us);
  }
}

TEST(LatencyModel, ProgramLayerIndependentByDefault) {
  NandTiming t;
  t.speed_ratio = 5.0;
  const LatencyModel m(Geo(), t);
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_EQ(m.ProgramUs(p), t.page_program_us);
  }
}

TEST(LatencyModel, ProgramLayerDependentWhenEnabled) {
  NandTiming t;
  t.speed_ratio = 2.0;
  t.program_layer_dependent = true;
  const LatencyModel m(Geo(), t);
  EXPECT_EQ(m.ProgramUs(0), 600);
  EXPECT_EQ(m.ProgramUs(63), 300);
}

TEST(LatencyModel, EraseIsConstant) {
  const LatencyModel m(Geo(), NandTiming{});
  EXPECT_EQ(m.EraseUs(), 4000);
}

TEST(LatencyModel, TransferMatchesBusRate) {
  const LatencyModel m(Geo(), NandTiming{});
  // 16 KiB at 533 MB/s ~ 30.7 us.
  EXPECT_NEAR(static_cast<double>(m.TransferUs(16 * 1024)), 30.7, 1.0);
  // Proportional to bytes.
  EXPECT_NEAR(static_cast<double>(m.TransferUs(4 * 1024)),
              static_cast<double>(m.TransferUs(16 * 1024)) / 4.0, 1.0);
  // Never zero.
  EXPECT_GE(m.TransferUs(1), 1);
}

TEST(LatencyModel, MeanReadBetweenExtremes) {
  NandTiming t;
  t.speed_ratio = 2.0;
  const LatencyModel m(Geo(), t);
  const double mean = m.MeanReadUs();
  EXPECT_GT(mean, static_cast<double>(m.ReadUs(63)));
  EXPECT_LT(mean, static_cast<double>(m.ReadUs(0)));
  // Linear model: mean factor = (1 + 1/R)/2 = 0.75.
  EXPECT_NEAR(mean, 0.75 * 49.0, 1.0);
}

TEST(LatencyModel, SingleLayerDeviceUsesFastEnd) {
  auto g = Geo();
  g.num_layers = 1;
  NandTiming t;
  t.speed_ratio = 2.0;
  const LatencyModel m(g, t);
  // Degenerate stack: every page at the same (bottom) depth.
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    EXPECT_DOUBLE_EQ(m.SpeedFactor(p), 0.5);
  }
}

TEST(LatencyModel, LatencyNeverBelowOneMicrosecond) {
  NandTiming t;
  t.page_read_us = 1;
  t.speed_ratio = 5.0;
  const LatencyModel m(Geo(), t);
  EXPECT_GE(m.ReadUs(63), 1);
}

/// Paper footnote 1: bottom is 2x-5x faster than top.  For each ratio the
/// end-to-end read latency ratio must equal R.
class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, EndToEndRatioEqualsR) {
  NandTiming t;
  t.speed_ratio = GetParam();
  t.page_read_us = 4900;  // large base to make rounding negligible
  const LatencyModel m(Geo(), t);
  const double ratio = static_cast<double>(m.ReadUs(0)) /
                       static_cast<double>(m.ReadUs(63));
  EXPECT_NEAR(ratio, GetParam(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, RatioSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 5.0));

}  // namespace
}  // namespace ctflash::nand
