// The device-internal unit of work: one page-granular flash transaction,
// shared by the host front end and the FTL's background machinery.
//
// Historically this type lived inside host::IoScheduler and could only
// describe host I/O; GC relocations booked die timelines inline inside the
// FTL where the scheduler could not see, reorder or deprioritize them.
// Promoting the transaction into this shared namespace — with a Source
// class and the page/die identity needed for conflict keys — lets GC
// relocation reads/programs and victim erases flow through the SAME
// dispatch path as host traffic (FtlConfig::gc_routing = kScheduled), so
// the scheduler becomes the single arbiter of device time:
//  * a ready host read overtakes queued GC copies on the same die
//    (priority dispatch with die-level preemption);
//  * an aging bound keeps GC from starving when host load is sustained;
//  * when the free pool runs low, GC outranks host writes so the device
//    can never write itself out of spare blocks.
//
// Priority is the Source ordering: host-read > host-write > gc-copy >
// gc-erase.  PriorityOf() returns that ordering (smaller dispatches
// first); the scheduler derives its dispatch ranks from it, reserving one
// slot between host reads and host writes for GC that was boosted by
// urgency or aging — boosted GC overtakes writes, never reads.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace ctflash::sched {

/// Work classes in descending default dispatch priority.
enum class TxnSource : std::uint8_t {
  kHostRead = 0,   ///< host read of a mapped (or unmapped) logical page
  kHostWrite = 1,  ///< host out-of-place page write
  kGcCopy = 2,     ///< GC relocation (read src + program dst)
  kGcErase = 3,    ///< GC victim erase (after all its copies executed)
};

const char* TxnSourceName(TxnSource source);

/// Priority ordering of a source class; smaller dispatches first.  The
/// scheduler's rank function is derived from this (see file header).
constexpr int PriorityOf(TxnSource source) {
  return static_cast<int>(source);
}

constexpr bool IsGc(TxnSource source) {
  return source == TxnSource::kGcCopy || source == TxnSource::kGcErase;
}

/// One page-granular unit of flash work.
///
/// Host transactions (kHostRead/kHostWrite) are slices of a byte-range
/// request: `request_id` names the host request, `offset_bytes`/`size_bytes`
/// the page-clipped extent, `lpn` the logical page.
///
/// GC transactions (kGcCopy/kGcErase) are emitted by the FTL's scheduled-GC
/// planner (FtlBase::DrainGcTransactions): `request_id` names the GC job
/// (one victim block), `gc_src` the physical source page of a copy and
/// `gc_block` the victim.  The erase of a job must dispatch only after all
/// of the job's copies dispatched — the scheduler tracks that dependency.
struct FlashTransaction {
  std::uint64_t request_id = 0;  ///< host request id, or GC job id
  std::uint64_t seq = 0;  ///< global intake order at the scheduler (FIFO key)
  TxnSource source = TxnSource::kHostRead;
  /// Owning tenant (qos::TenantId) when the host interface runs with a
  /// multi-tenant QosConfig; ~0u (qos::kNoTenant) for GC work and for all
  /// host work when QoS is disabled.
  std::uint32_t tenant = ~0u;

  // --- host identity -------------------------------------------------------
  std::uint64_t offset_bytes = 0;  ///< absolute; spans at most one page
  std::uint64_t size_bytes = 0;
  Lpn lpn = 0;

  // --- GC identity ---------------------------------------------------------
  Ppn gc_src = kInvalidPpn;  ///< source page of a kGcCopy
  BlockId gc_block = 0;      ///< victim block (kGcCopy and kGcErase)
};

}  // namespace ctflash::sched
