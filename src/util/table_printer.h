// Fixed-width console table printer used by the figure-regeneration benches
// so every experiment emits the same row/series layout the paper reports.
#pragma once

#include <string>
#include <vector>

namespace ctflash::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header separator; column widths fit the widest cell.
  std::string ToString() const;

  /// Convenience: prints to stdout.
  void Print() const;

  static std::string FormatDouble(double v, int precision = 3);
  static std::string FormatPercent(double fraction, int precision = 2);
  /// Scientific notation like the paper's axis labels (e.g. "3.00E+06").
  static std::string FormatScientific(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ctflash::util
