// Saturation study: open-loop arrival-rate sweep through the host
// interface.
//
// Replays the web/SQL synthetic trace with its inter-arrival gaps scaled
// by increasing compression factors (offered load up, same address
// pattern).  Below saturation, served IOPS tracks offered IOPS and latency
// sits near the device service time; past the knee, served IOPS clamps at
// device capacity — for this 60/40 read/write mix the binding resource is
// the single host-write stream (one active block serializes programs) —
// and the tail percentiles grow with the backlog.  This is the classic
// open-loop latency/throughput curve the closed-loop figure benches
// cannot show.
//
//   ./example_saturation_study [requests] [device_bytes]
#include <cstdint>
#include <iostream>
#include <string>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"
#include "trace/synthetic.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const std::uint64_t requests = argc > 1 ? std::stoull(argv[1]) : 30'000;
  const std::uint64_t device_bytes =
      argc > 2 ? std::stoull(argv[2]) : (1ull << 30);

  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kPpb, device_bytes, 16 * 1024,
                               /*speed_ratio=*/2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;

  std::cout << "Saturation study: open-loop web/SQL trace, device "
            << cfg.geometry.ToString() << "\n\n";

  util::TablePrinter table({"compression", "offered kIOPS", "served kIOPS",
                            "mean us", "p99 us", "p99.9 us", "die util"});
  for (const double compression : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    // Fresh device per point: each offered load starts from the same
    // prefilled state.
    ssd::Ssd ssd(cfg);
    ssd::ExperimentRunner runner(ssd);
    const std::uint64_t footprint = ssd.LogicalBytes() / 10 * 8;
    const Us prefill_end = runner.Prefill(footprint);

    const auto workload = trace::WebServerWorkload(footprint, requests);
    auto records = trace::SyntheticTraceGenerator(workload).Generate();

    host::HostInterface host(ssd, host::HostConfig{});
    host.AdvanceTo(prefill_end);
    host::OpenLoopGenerator generator(host, records, 1.0 / compression);
    const auto load = generator.Run();

    const auto all = load.AllLatency();
    const double span_s =
        static_cast<double>(records.back().timestamp_us) / compression / 1e6;
    table.AddRow({util::TablePrinter::FormatDouble(compression, 3) + "x",
                  util::TablePrinter::FormatDouble(
                      span_s > 0 ? static_cast<double>(requests) / span_s / 1e3
                                 : 0.0,
                      1),
                  util::TablePrinter::FormatDouble(load.Iops() / 1e3, 1),
                  util::TablePrinter::FormatDouble(all.mean_us(), 1),
                  util::TablePrinter::FormatDouble(all.p99_us(), 1),
                  util::TablePrinter::FormatDouble(all.p999_us(), 1),
                  util::TablePrinter::FormatPercent(load.die_utilization)});
  }
  table.Print();
  std::cout << "\nReading the knee: below saturation served kIOPS == offered\n"
               "kIOPS and latency stays near service time; past it, served\n"
               "clamps at device capacity (here bound by the serialized\n"
               "write stream) and the tail percentiles grow with backlog.\n";
  return 0;
}
