// Cross-configuration property suite: the full stack must hold its
// invariants and the paper's headline relationships for every combination of
// page size, virtual-block split and speed ratio — not just the Table 1
// defaults the other tests use.
#include <gtest/gtest.h>

#include <tuple>

#include "ssd/experiment.h"
#include "trace/synthetic.h"
#include "util/random.h"

namespace ctflash {
namespace {

struct Combo {
  std::uint32_t page_size;
  std::uint32_t vb_split;
  double speed_ratio;
};

class CrossConfig : public ::testing::TestWithParam<Combo> {};

TEST_P(CrossConfig, PpbSurvivesChurnWithInvariants) {
  const auto [page_size, split, ratio] = GetParam();
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kPpb, 256ull << 20, page_size,
                               ratio);
  cfg.ppb.vb_split = split;
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner runner(ssd);
  const std::uint64_t footprint = ssd.LogicalBytes() / 10 * 8;
  runner.Prefill(footprint);

  auto wl = trace::WebServerWorkload(footprint, 30000, /*seed=*/split);
  const auto records = trace::SyntheticTraceGenerator(wl).Generate();
  const auto res = runner.Replay(records, wl.name);

  EXPECT_GT(res.read_latency.count(), 0u);
  EXPECT_GT(res.write_latency.count(), 0u);
  EXPECT_GE(res.waf, 1.0);
  ASSERT_NE(ssd.ppb(), nullptr);
  EXPECT_TRUE(ssd.ppb()->CheckInvariants())
      << "page=" << page_size << " split=" << split << " R=" << ratio;
}

TEST_P(CrossConfig, LatencyBoundsRespectSpeedRatio) {
  const auto [page_size, split, ratio] = GetParam();
  auto cfg =
      ssd::ScaledConfig(ssd::FtlKind::kPpb, 256ull << 20, page_size, ratio);
  cfg.ppb.vb_split = split;
  ssd::Ssd ssd(cfg);
  // Sequentially fill one block's worth and read pages back: every read
  // latency must sit between the fast-page and slow-page service bounds.
  const auto& timing = cfg.timing;
  Us now = 0;
  const std::uint32_t pages = cfg.geometry.pages_per_block;
  for (std::uint32_t p = 0; p < pages; ++p) {
    now = ssd.Write(static_cast<std::uint64_t>(p) * page_size, page_size, now)
              .completion_us;
  }
  const Us min_cell = static_cast<Us>(timing.page_read_us / ratio) - 1;
  const Us max_cell = timing.page_read_us + 1;
  for (std::uint32_t p = 0; p < pages; p += 7) {
    const auto r =
        ssd.Read(static_cast<std::uint64_t>(p) * page_size, page_size, now);
    now = r.completion_us;
    const Us transfer = static_cast<Us>(
        static_cast<double>(page_size) / (timing.transfer_mb_per_s * 1e6) *
        1e6);
    EXPECT_GE(r.LatencyUs(), min_cell + transfer - 2);
    EXPECT_LE(r.LatencyUs(), max_cell + transfer + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossConfig,
    ::testing::Values(Combo{8 * 1024, 2, 2.0}, Combo{8 * 1024, 4, 5.0},
                      Combo{16 * 1024, 2, 2.0}, Combo{16 * 1024, 2, 5.0},
                      Combo{16 * 1024, 4, 3.0}, Combo{16 * 1024, 8, 2.0},
                      Combo{4 * 1024, 2, 4.0}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.page_size / 1024) + "k_s" +
             std::to_string(info.param.vb_split) + "_r" +
             std::to_string(static_cast<int>(info.param.speed_ratio));
    });

/// Determinism across the whole matrix: identical configs give identical
/// results bit for bit.
TEST(CrossConfigDeterminism, FullStackReproducible) {
  auto run = [] {
    auto cfg = ssd::ScaledConfig(ssd::FtlKind::kPpb, 256ull << 20, 16 * 1024,
                                 3.0);
    ssd::Ssd ssd(cfg);
    ssd::ExperimentRunner runner(ssd);
    const std::uint64_t footprint = ssd.LogicalBytes() / 2;
    runner.Prefill(footprint);
    auto wl = trace::MediaServerWorkload(footprint, 20000);
    const auto records = trace::SyntheticTraceGenerator(wl).Generate();
    const auto res = runner.Replay(records, wl.name);
    return std::make_tuple(res.read_latency.total_us(),
                           res.write_latency.total_us(), res.erase_count,
                           res.gc_page_copies);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ctflash
