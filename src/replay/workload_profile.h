// WorkloadProfile: one-pass streaming characterization of a block trace.
//
// Answers "what is this trace?" with the first-order properties the paper's
// analysis (Section 3) ties PPB's benefit to — read/write mix, request-size
// distributions, sequentiality, region-popularity skew — plus
// working-set-over-time, and can FIT a trace::SyntheticWorkloadConfig to
// the measurements, closing the loop between real MSR traces and the
// shipped synthetic stand-ins: profile the real trace once, then generate
// arbitrarily long synthetic traffic with matching shape.
//
// The profiler is strictly streaming: O(regions + distinct sizes) state,
// never O(records), so it runs ahead of a multi-GB replay as a cheap first
// pass (TraceSources are Reset()-able for exactly this).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "replay/trace_source.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::replay {

struct WorkloadProfileConfig {
  /// Popularity granularity (matches SyntheticWorkloadConfig::region_bytes).
  std::uint64_t region_bytes = kMiB;
  /// Working-set-over-time sampling interval.
  Us window_us = 1'000'000;
  /// Distinct request sizes tracked exactly for distribution fitting;
  /// overflow still lands in the log histograms.
  std::size_t max_distinct_sizes = 1024;

  void Validate() const;
};

struct WorkloadProfile {
  WorkloadProfileConfig config;

  // Mix and volume.
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t max_offset_bytes = 0;  ///< highest offset+size (footprint)
  /// OR of every record's offset and size; its lowest set bit is the
  /// largest power of two dividing all of them (FitSynthetic's alignment).
  std::uint64_t alignment_or = 0;
  Us duration_us = 0;                  ///< last arrival timestamp
  double ReadFraction() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(reads) /
                               static_cast<double>(requests);
  }
  double NativeIops() const {
    return duration_us <= 0 ? 0.0
                            : static_cast<double>(requests) * 1e6 /
                                  static_cast<double>(duration_us);
  }

  // Request sizes: log2 histograms always; exact counts for the most
  // common sizes (capped at config.max_distinct_sizes).
  util::LogHistogram read_size_hist;
  util::LogHistogram write_size_hist;
  std::unordered_map<std::uint64_t, std::uint64_t> read_size_counts;
  std::unordered_map<std::uint64_t, std::uint64_t> write_size_counts;

  // Sequentiality: a read/write is sequential when it starts exactly where
  // the previous request of the same op class ended.
  std::uint64_t sequential_reads = 0;
  std::uint64_t sequential_writes = 0;
  /// Lengths (in requests) of maximal sequential read runs.
  util::RunningMoments read_run_length;
  double SequentialReadFraction() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(sequential_reads) /
                            static_cast<double>(reads);
  }

  // Region popularity (touch counts per region_bytes-sized region).
  std::unordered_map<std::uint64_t, std::uint64_t> read_region_touches;
  std::unordered_map<std::uint64_t, std::uint64_t> write_region_touches;
  /// Fitted Zipf skew of the region-popularity distributions (log-log
  /// rank/frequency regression; 0 = uniform).
  double read_zipf_theta = 0.0;
  double write_zipf_theta = 0.0;
  /// Share of touches landing in the most popular 1 % / 10 % of touched
  /// regions (reads + writes combined).
  double top1pct_share = 0.0;
  double top10pct_share = 0.0;
  /// Overlap of the read-hot and write-hot top-decile region sets, in
  /// [0, 1]: 1 = the most-written regions are the most-read ones.
  double rw_popularity_overlap = 0.0;

  // Working set over time: distinct regions touched per window_us, plus
  // the overall distinct count.
  std::vector<std::uint64_t> working_set_regions;
  std::uint64_t distinct_regions = 0;

  /// Fits a synthetic generator config with matching first-order shape
  /// (mix, sizes, skew, sequentiality, arrival rate, footprint).
  trace::SyntheticWorkloadConfig FitSynthetic(
      const std::string& name, std::uint64_t num_requests = 0) const;
};

class WorkloadProfiler {
 public:
  explicit WorkloadProfiler(const WorkloadProfileConfig& config = {});

  void Add(const trace::TraceRecord& record);

  /// Closes runs/windows and computes the derived metrics.  The profiler
  /// may keep accepting Add()s afterwards (Finish is idempotent-ish but
  /// cheap enough to call once at the end).
  WorkloadProfile Finish() const;

 private:
  WorkloadProfileConfig config_;
  WorkloadProfile profile_;
  // Run tracking.
  std::uint64_t prev_read_end_ = 0;
  std::uint64_t prev_write_end_ = 0;
  bool have_read_ = false;
  bool have_write_ = false;
  std::uint64_t current_read_run_ = 0;
  mutable util::RunningMoments run_length_;  // folded at Finish
  // Working set tracking.
  std::unordered_set<std::uint64_t> window_regions_;
  std::unordered_set<std::uint64_t> all_regions_;
  std::size_t window_index_ = 0;
};

/// One-shot: Reset `source`, stream it through a profiler, return the
/// profile (the source is left exhausted; Reset it before replaying).
WorkloadProfile Characterize(TraceSource& source,
                             const WorkloadProfileConfig& config = {});

/// Human-readable multi-line summary (benches and examples print this).
std::string ProfileSummary(const WorkloadProfile& profile);

}  // namespace ctflash::replay
