// First-stage hot/cold classifiers.
//
// The PPB strategy deliberately reuses existing identification work
// ("preserve the decades worth of work on data hotness identification",
// Section 3.1): any predicate over (offset, size) can serve as the first
// stage.  The paper's case study is the request-size check [1]: writes
// smaller than one page are metadata-like and hot.  Additional classifiers
// are provided for ablations and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace ctflash::core {

class FirstStageClassifier {
 public:
  virtual ~FirstStageClassifier() = default;

  /// True when a write request of `size_bytes` at `offset_bytes` should be
  /// routed to the hot data area.
  virtual bool IsHotWrite(std::uint64_t offset_bytes,
                          std::uint64_t size_bytes) const = 0;

  virtual std::string Name() const = 0;
};

/// The paper's case study: hot iff size < threshold (one page by default).
class SizeCheckClassifier : public FirstStageClassifier {
 public:
  explicit SizeCheckClassifier(std::uint64_t threshold_bytes);

  bool IsHotWrite(std::uint64_t offset_bytes,
                  std::uint64_t size_bytes) const override;
  std::string Name() const override;

  std::uint64_t threshold_bytes() const { return threshold_bytes_; }

 private:
  std::uint64_t threshold_bytes_;
};

/// Routes everything to one area; used by ablation benches to isolate the
/// contribution of the first stage.
class ConstantClassifier : public FirstStageClassifier {
 public:
  explicit ConstantClassifier(bool always_hot) : always_hot_(always_hot) {}

  bool IsHotWrite(std::uint64_t, std::uint64_t) const override {
    return always_hot_;
  }
  std::string Name() const override {
    return always_hot_ ? "always-hot" : "always-cold";
  }

 private:
  bool always_hot_;
};

std::unique_ptr<FirstStageClassifier> MakeSizeCheckClassifier(
    std::uint64_t threshold_bytes);

}  // namespace ctflash::core
