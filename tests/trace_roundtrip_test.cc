// MSR CSV codec lock-in: WriteMsrCsv -> ParseMsrCsv round-trip property
// tests plus the checked-in two-host sample trace (tests/data/
// sample_msr.csv), so the codec stays pinned without the
// non-redistributable SNIA originals.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "replay/trace_source.h"
#include "trace/trace.h"
#include "util/random.h"

namespace ctflash::trace {
namespace {

std::string SampleCsvPath() {
  return std::string(CTFLASH_TEST_DATA_DIR) + "/sample_msr.csv";
}

std::vector<TraceRecord> RandomRecords(std::uint64_t seed, int n) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<TraceRecord> records;
  Us t = 0;  // first record at t=0 so the parse-side rebase is the identity
  for (int i = 0; i < n; ++i) {
    TraceRecord r;
    r.timestamp_us = t;
    t += static_cast<Us>(rng.UniformBelow(50'000));
    r.op = rng.Bernoulli(0.6) ? OpType::kRead : OpType::kWrite;
    r.offset_bytes = rng.UniformBelow(1ull << 40);
    r.size_bytes = 512 * (1 + rng.UniformBelow(1024));
    records.push_back(r);
  }
  return records;
}

TEST(MsrCsvRoundTrip, RandomRecordsSurviveExactly) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto records = RandomRecords(seed, 500);
    std::stringstream csv;
    WriteMsrCsv(records, csv);
    const auto parsed = ParseMsrCsv(csv);
    ASSERT_EQ(parsed.size(), records.size()) << "seed " << seed;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(parsed[i], records[i]) << "seed " << seed << " record " << i;
    }
  }
}

TEST(MsrCsvRoundTrip, FirstTimestampIsRebasedToZero) {
  std::vector<TraceRecord> records = {
      {5'000, OpType::kRead, 0, 4096},
      {7'500, OpType::kWrite, 4096, 4096},
  };
  std::stringstream csv;
  WriteMsrCsv(records, csv);
  const auto parsed = ParseMsrCsv(csv);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].timestamp_us, 0);
  EXPECT_EQ(parsed[1].timestamp_us, 2'500);
}

TEST(MsrCsvRoundTrip, ZeroSizedRecordsAreDropped) {
  std::vector<TraceRecord> records = {
      {0, OpType::kRead, 0, 4096},
      {10, OpType::kWrite, 8192, 0},  // no work
      {20, OpType::kRead, 16384, 512},
  };
  std::stringstream csv;
  WriteMsrCsv(records, csv);
  const auto parsed = ParseMsrCsv(csv);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].offset_bytes, 0u);
  EXPECT_EQ(parsed[1].offset_bytes, 16384u);
}

TEST(MsrCsvRoundTrip, IncrementalParserMatchesBatch) {
  const auto records = RandomRecords(99, 200);
  std::stringstream csv;
  WriteMsrCsv(records, csv);
  const std::string text = csv.str();

  MsrCsvParser parser;
  std::vector<TraceRecord> incremental;
  std::istringstream in(text);
  std::string line;
  TraceRecord r;
  while (std::getline(in, line)) {
    if (parser.ParseLine(line, r)) incremental.push_back(r);
  }
  std::istringstream in2(text);
  EXPECT_EQ(incremental, ParseMsrCsv(in2));
}

TEST(SampleTrace, ParsesWithExpectedShape) {
  const auto records = ParseMsrCsvFile(SampleCsvPath());
  ASSERT_EQ(records.size(), 200u);
  const auto stats = ComputeStats(records);
  EXPECT_EQ(stats.total_requests, 200u);
  EXPECT_GT(stats.read_requests, stats.write_requests);  // read-dominated mix
  EXPECT_EQ(records.front().timestamp_us, 0);            // rebased
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].timestamp_us, records[i - 1].timestamp_us);
  }
}

TEST(SampleTrace, HostnameFilterSplitsTheTwoServers) {
  replay::StreamingMsrCsvSource::Options media_opts;
  media_opts.hostname_filter = "mds0";
  replay::StreamingMsrCsvSource media(SampleCsvPath(), media_opts);
  std::uint64_t media_count = 0;
  std::uint64_t media_bytes = 0;
  while (auto r = media.Next()) {
    media_count++;
    media_bytes += r->size_bytes;
    EXPECT_GE(r->size_bytes, 64ull * 1024) << "media requests are large";
  }
  EXPECT_EQ(media_count, 100u);

  replay::StreamingMsrCsvSource::Options web_opts;
  web_opts.hostname_filter = "web0";
  replay::StreamingMsrCsvSource web(SampleCsvPath(), web_opts);
  std::uint64_t web_count = 0;
  while (auto r = web.Next()) {
    web_count++;
    EXPECT_LE(r->size_bytes, 16ull * 1024) << "web requests are small";
  }
  EXPECT_EQ(web_count, 100u);
  EXPECT_GT(media_bytes, 0u);
}

TEST(SampleTrace, RoundTripsThroughTheCodec) {
  const auto records = ParseMsrCsvFile(SampleCsvPath());
  std::stringstream csv;
  WriteMsrCsv(records, csv);
  EXPECT_EQ(ParseMsrCsv(csv), records);
}

}  // namespace
}  // namespace ctflash::trace
