// Two-level LRU for the hot data area (paper Fig. 10(a), Algorithm 1).
//
// New hot writes enter the head of the HOT list.  A read of a hot-list entry
// promotes it to the head of the IRON-HOT list (its data will be moved to a
// fast virtual block progressively, on the next update or GC).  Overflow
// demotes: the iron-hot LRU tail falls back to the hot head; the hot LRU
// tail leaves the hot area entirely (demoted to the cold area).  Duplicate
// LBAs are collapsed on every write (Algorithm 1 lines 2-5).
//
// At most one entry can cascade out of the structure per operation, so every
// mutator returns an optional demoted LPN instead of a vector.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "util/serial.h"
#include "util/types.h"

namespace ctflash::core {

class TwoLevelLru {
 public:
  enum class Tier : std::uint8_t { kNone = 0, kHot = 1, kIronHot = 2 };

  /// Capacities are entry counts (> 0).
  TwoLevelLru(std::size_t hot_capacity, std::size_t iron_capacity);

  Tier TierOf(Lpn lpn) const;
  bool Contains(Lpn lpn) const { return TierOf(lpn) != Tier::kNone; }

  struct Outcome {
    /// Tier the caller should place the data in (kHot or kIronHot); kNone
    /// from OnRead means the lpn is not tracked by the hot area.
    Tier tier = Tier::kNone;
    /// Entry pushed out of the hot area (goes to the cold area), if any.
    std::optional<Lpn> demoted_to_cold;
  };

  /// Registers a host write.  Re-writes of an iron-hot entry stay iron-hot
  /// (the VB-list divert rules may still redirect the physical placement);
  /// everything else (re)enters the hot list head.
  Outcome OnWrite(Lpn lpn);

  /// Registers a host read.  Hot entries are promoted to iron-hot; iron-hot
  /// entries are refreshed.  Unknown lpns return tier kNone and no demotion.
  Outcome OnRead(Lpn lpn);

  /// Removes an entry (data reclassified cold by the first stage, or
  /// trimmed).  No-op when absent.
  void Erase(Lpn lpn);

  std::size_t HotSize() const { return hot_.size(); }
  std::size_t IronSize() const { return iron_.size(); }
  std::size_t hot_capacity() const { return hot_capacity_; }
  std::size_t iron_capacity() const { return iron_capacity_; }

  /// Least-recently-used entries (tails), for tests.
  std::optional<Lpn> HotTail() const;
  std::optional<Lpn> IronTail() const;

  /// O(n) structural check: map entries and list nodes agree, sizes within
  /// capacity.
  bool CheckInvariants() const;

  /// Serializes both recency lists in MRU->LRU order; the index is rebuilt
  /// on load.  LoadState throws when a list exceeds this instance's capacity.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  struct Node {
    std::list<Lpn>::iterator it;
    Tier tier;
  };

  /// Inserts at the head of `tier`'s list, cascading demotions.
  std::optional<Lpn> InsertHead(Lpn lpn, Tier tier);
  void Detach(Lpn lpn);

  std::size_t hot_capacity_;
  std::size_t iron_capacity_;
  std::list<Lpn> hot_;   // front = MRU
  std::list<Lpn> iron_;  // front = MRU
  std::unordered_map<Lpn, Node> index_;
};

}  // namespace ctflash::core
