// Host-level request and completion types for the multi-queue host
// interface (src/host/host_interface.h).
//
// A HostRequest is a byte-range command as a host driver would post it to
// an NVMe submission queue; the host interface splits it into page-level
// flash transactions (io_scheduler.h) and reports a HostCompletion when the
// last page finishes.  Latency is end-to-end: submission (including any
// host-side blocking on full queues) to last-page completion.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::host {

/// One host byte-range I/O command.
struct HostRequest {
  std::uint64_t id = 0;
  trace::OpType op = trace::OpType::kRead;
  std::uint64_t offset_bytes = 0;
  std::uint64_t size_bytes = 0;
  Us submit_us = 0;
};

/// Completion record delivered to the submitter's callback.
struct HostCompletion {
  HostRequest request;
  Us completion_us = 0;     ///< last page transaction finished
  std::uint32_t pages = 0;  ///< flash transactions the request split into

  /// End-to-end latency.  A completion cannot precede its submission; the
  /// assert catches a clock inversion in debug builds and the clamp keeps
  /// release-mode stats from booking an underflowed (huge) latency.
  Us LatencyUs() const {
    assert(completion_us >= request.submit_us);
    return completion_us >= request.submit_us
               ? completion_us - request.submit_us
               : 0;
  }
};

/// Per-submission-queue slice of the aggregates: the breakdown the benches
/// print to show how load and latency spread across the queue pairs (and,
/// with tenants configured, across each tenant's queues).
struct QueueStats {
  std::uint64_t admitted = 0;  ///< requests that entered this queue
  std::uint64_t completed = 0;
  std::uint64_t bytes_completed = 0;
  util::LatencyStats read_latency;  ///< end-to-end, per request
  util::LatencyStats write_latency;
};

/// Aggregates the host interface maintains over its lifetime (reset with
/// HostInterface::ResetStats before a measured run).
struct HostStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Submissions that found their queue full and waited host-side.
  std::uint64_t backlogged = 0;
  std::uint64_t transactions_completed = 0;
  util::LatencyStats read_latency;   ///< end-to-end, per request
  util::LatencyStats write_latency;
  /// One slice per submission queue (sized by the host interface).
  std::vector<QueueStats> per_queue;
};

}  // namespace ctflash::host
