// TenantTable: the runtime state of the multi-tenant QoS engine.
//
// Owns, per tenant: the queue -> tenant mapping, the admission token
// buckets (IOPS and bytes/s), the weighted deficit-round-robin arbitration
// state per priority class, the minimum-share dispatch window, and the
// telemetry every bench and test reads back.
//
// The table splits the engine across the two host layers:
//  * host::HostInterface consults AdmissionAt/ChargeAdmission before a
//    request may enter its submission queue (rate limiting, host-side
//    pacing queues);
//  * host::IoScheduler calls PickTenant when several tenants have eligible
//    transactions in the winning priority class (weighted DRR + min-share
//    floor), and NoteDispatch on every host dispatch (share window,
//    per-tenant dispatch counters).
//
// All state advances only from those deterministic call sites, so
// multi-tenant runs stay bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "qos/tenant.h"
#include "qos/token_bucket.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::qos {

/// Host priority classes with independent DRR state.  Aged host writes
/// boosted into the read class arbitrate with the read-class state — DRR
/// state belongs to the rank pool being served, not to the op code.
enum class ArbClass : std::uint32_t { kRead = 0, kWrite = 1 };
inline constexpr std::uint32_t kArbClasses = 2;

/// Weighted deficit round robin over tenants for one priority class, in
/// units of one page transaction (cost 1, quantum = weight).  A tenant's
/// turn serves `weight` transactions, then the cursor moves on; tenants
/// with no eligible work forfeit their remaining deficit (no credit
/// hoarding), so under saturation dispatch counts converge to the weight
/// proportion.
class DrrArbiter {
 public:
  explicit DrrArbiter(std::vector<std::uint32_t> weights);

  /// Picks the tenant to serve among those with eligible work
  /// (`active[t]`), charging one unit of its deficit.  Returns kNoTenant
  /// when nothing is active.
  TenantId Pick(const std::vector<bool>& active);

  std::uint64_t DeficitOf(TenantId tenant) const { return deficit_[tenant]; }

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::uint64_t> deficit_;
  std::uint32_t cursor_ = 0;
};

class TenantTable {
 public:
  /// Validates `config` against `num_queues` (throws std::invalid_argument).
  TenantTable(const QosConfig& config, std::uint32_t num_queues);

  std::uint32_t TenantCount() const {
    return static_cast<std::uint32_t>(tenants_.size());
  }
  const TenantConfig& ConfigOf(TenantId tenant) const {
    return tenants_[tenant];
  }
  TenantId TenantOfQueue(std::uint32_t qid) const {
    return queue_tenant_[qid];
  }

  // --- admission (token-bucket rate limiting) ------------------------------
  bool Limited(TenantId tenant) const { return tenants_[tenant].Limited(); }
  /// Earliest time >= now a request of `bytes` may be admitted under the
  /// tenant's IOPS and bytes/s buckets.
  Us AdmissionAt(TenantId tenant, Us now, std::uint64_t bytes) const;
  /// Pays for one admitted request of `bytes` at `now`.
  void ChargeAdmission(TenantId tenant, Us now, std::uint64_t bytes);

  // --- arbitration (scheduler side) ----------------------------------------
  /// DRR pick within `cls` among active tenants, after the min-share floor:
  /// an active tenant whose recent dispatch share sits below its
  /// reservation is served first (most-deficient wins, lowest id breaks
  /// ties) before the DRR rotation proceeds.
  TenantId PickTenant(ArbClass cls, const std::vector<bool>& active);
  /// Records a host dispatch for `tenant` (share window + counters).
  void NoteDispatch(TenantId tenant, ArbClass cls);

  /// Current DRR deficit (telemetry; the QD-sweep and benches report it).
  std::uint64_t DeficitOf(ArbClass cls, TenantId tenant) const {
    return drr_[static_cast<std::uint32_t>(cls)].DeficitOf(tenant);
  }
  /// Tenant's share of the min-share dispatch window (0 when empty).
  double WindowShareOf(TenantId tenant) const;

  // --- telemetry ------------------------------------------------------------
  struct TenantStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t bytes_completed = 0;
    /// Submissions the rate limiter deferred into the pacing queue.
    std::uint64_t throttled = 0;
    /// Total host-side pacing delay across throttled submissions.
    Us throttle_wait_us = 0;
    std::uint64_t read_dispatches = 0;
    std::uint64_t write_dispatches = 0;
    util::LatencyStats read_latency;  ///< end-to-end, per request
    util::LatencyStats write_latency;
    /// Active-span attribution since the last ResetStats: first submission
    /// and last completion, so per-tenant throughput can be computed over
    /// the tenant's own span rather than the device makespan (trace
    /// replays where tenants enter and leave at different times — see
    /// replay::TenantReplayResult::Iops).  first_submit_us is -1 until the
    /// tenant submits.
    Us first_submit_us = -1;
    Us last_completion_us = 0;
  };
  TenantStats& StatsOf(TenantId tenant) { return stats_[tenant]; }
  const TenantStats& StatsOf(TenantId tenant) const { return stats_[tenant]; }
  void ResetStats();

 private:
  /// Dispatches counted toward min-share before the window halves.  Halving
  /// (instead of a ring buffer) keeps the share responsive to phase changes
  /// at O(tenants) cost, deterministically.
  static constexpr std::uint64_t kShareWindow = 1024;

  std::vector<TenantConfig> tenants_;
  std::vector<TenantId> queue_tenant_;       ///< qid -> owner
  std::vector<TokenBucket> iops_buckets_;    ///< unlimited when no cap
  std::vector<TokenBucket> bytes_buckets_;
  std::vector<DrrArbiter> drr_;              ///< one per ArbClass
  bool any_min_share_ = false;
  std::vector<std::uint64_t> window_dispatches_;
  std::uint64_t window_total_ = 0;
  std::vector<TenantStats> stats_;
};

}  // namespace ctflash::qos
