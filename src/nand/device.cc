#include "nand/device.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ctflash::nand {

const char* NandStatusName(NandStatus status) {
  switch (status) {
    case NandStatus::kOk:
      return "kOk";
    case NandStatus::kInvalidAddress:
      return "kInvalidAddress";
    case NandStatus::kProgramOutOfOrder:
      return "kProgramOutOfOrder";
    case NandStatus::kProgramPageNotFree:
      return "kProgramPageNotFree";
    case NandStatus::kReadFreePage:
      return "kReadFreePage";
    case NandStatus::kBlockBad:
      return "kBlockBad";
  }
  return "?";
}

NandDevice::NandDevice(const NandGeometry& geometry, const NandTiming& timing,
                       std::uint32_t endurance_pe_cycles)
    : latency_(geometry, timing),
      endurance_(endurance_pe_cycles),
      blocks_(geometry.TotalBlocks()) {}

NandStatus NandDevice::Program(Ppn ppn, Us* op_us) {
  if (!ValidPpn(ppn)) return NandStatus::kInvalidAddress;
  const BlockId block = geometry().BlockOf(ppn);
  const std::uint32_t page = geometry().PageOf(ppn);
  BlockState& st = blocks_[block];
  if (st.bad) return NandStatus::kBlockBad;
  if (page < st.next_page) return NandStatus::kProgramPageNotFree;
  if (page > st.next_page) return NandStatus::kProgramOutOfOrder;
  st.next_page = page + 1;
  const Us t = latency_.ProgramUs(page);
  counters_.programs++;
  counters_.program_time_us += t;
  if (op_us != nullptr) *op_us = t;
  return NandStatus::kOk;
}

NandStatus NandDevice::Read(Ppn ppn, Us* op_us) const {
  if (!ValidPpn(ppn)) return NandStatus::kInvalidAddress;
  const BlockId block = geometry().BlockOf(ppn);
  const std::uint32_t page = geometry().PageOf(ppn);
  const BlockState& st = blocks_[block];
  if (st.bad) return NandStatus::kBlockBad;
  if (page >= st.next_page) return NandStatus::kReadFreePage;
  const Us t = latency_.ReadUs(page);
  counters_.reads++;
  counters_.read_time_us += t;
  if (op_us != nullptr) *op_us = t;
  return NandStatus::kOk;
}

NandStatus NandDevice::Erase(BlockId block, Us* op_us) {
  if (!ValidBlock(block)) return NandStatus::kInvalidAddress;
  BlockState& st = blocks_[block];
  if (st.bad) return NandStatus::kBlockBad;
  st.next_page = 0;
  st.pe_cycles++;
  if (st.pe_cycles >= endurance_) st.bad = true;
  const Us t = latency_.EraseUs();
  counters_.erases++;
  counters_.erase_time_us += t;
  if (op_us != nullptr) *op_us = t;
  return NandStatus::kOk;
}

void NandDevice::MarkBad(BlockId block) {
  if (!ValidBlock(block)) throw std::out_of_range("MarkBad: block out of range");
  blocks_[block].bad = true;
}

std::uint32_t NandDevice::NextProgramPage(BlockId block) const {
  if (!ValidBlock(block)) {
    throw std::out_of_range("NextProgramPage: block out of range");
  }
  return blocks_[block].next_page;
}

bool NandDevice::IsBlockFull(BlockId block) const {
  return NextProgramPage(block) == geometry().pages_per_block;
}

bool NandDevice::IsBlockErased(BlockId block) const {
  return NextProgramPage(block) == 0;
}

bool NandDevice::IsPageProgrammed(Ppn ppn) const {
  if (!ValidPpn(ppn)) throw std::out_of_range("IsPageProgrammed: bad ppn");
  return geometry().PageOf(ppn) < blocks_[geometry().BlockOf(ppn)].next_page;
}

std::uint32_t NandDevice::PeCycles(BlockId block) const {
  if (!ValidBlock(block)) throw std::out_of_range("PeCycles: block out of range");
  return blocks_[block].pe_cycles;
}

bool NandDevice::IsBlockBad(BlockId block) const {
  if (!ValidBlock(block)) throw std::out_of_range("IsBlockBad: block out of range");
  return blocks_[block].bad;
}

WearSummary NandDevice::Wear() const {
  WearSummary wear;
  for (const BlockState& b : blocks_) {
    wear.total_erases += b.pe_cycles;
    wear.max_pe_cycles = std::max(wear.max_pe_cycles, b.pe_cycles);
    if (b.bad) ++wear.bad_blocks;
  }
  return wear;
}

void NandDevice::SaveState(util::StateWriter& w) const {
  w.Tag("NAND");
  w.PutU64(blocks_.size());
  for (const BlockState& b : blocks_) {
    w.PutU32(b.next_page);
    w.PutU32(b.pe_cycles);
    w.PutBool(b.bad);
  }
  w.PutU64(counters_.reads);
  w.PutU64(counters_.programs);
  w.PutU64(counters_.erases);
  w.PutI64(counters_.read_time_us);
  w.PutI64(counters_.program_time_us);
  w.PutI64(counters_.erase_time_us);
}

void NandDevice::LoadState(util::StateReader& r) {
  r.ExpectTag("NAND");
  const std::uint64_t n = r.GetU64();
  if (n != blocks_.size()) {
    throw std::runtime_error("snapshot: NAND block count mismatch (have " +
                             std::to_string(blocks_.size()) + ", state " +
                             std::to_string(n) + ")");
  }
  for (BlockState& b : blocks_) {
    b.next_page = r.GetU32();
    b.pe_cycles = r.GetU32();
    b.bad = r.GetBool();
  }
  counters_.reads = r.GetU64();
  counters_.programs = r.GetU64();
  counters_.erases = r.GetU64();
  counters_.read_time_us = r.GetI64();
  counters_.program_time_us = r.GetI64();
  counters_.erase_time_us = r.GetI64();
}

}  // namespace ctflash::nand
