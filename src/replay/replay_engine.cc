#include "replay/replay_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ctflash::replay {

void ReplayEngineConfig::Validate() const {
  if (window_us < 0) {
    throw std::invalid_argument("ReplayEngineConfig: window_us must be >= 0");
  }
  if (start_us < 0) {
    throw std::invalid_argument("ReplayEngineConfig: start_us must be >= 0");
  }
}

ReplayEngine::ReplayEngine(host::HostInterface& host,
                           const ReplayEngineConfig& config)
    : host_(&host), config_(config) {
  config_.Validate();
}

ReplayEngine::ReplayEngine(ssd::Ssd& ssd, const ReplayEngineConfig& config)
    : ssd_(&ssd), config_(config) {
  config_.Validate();
}

ReplayResult ReplayEngine::Run(ReplayPlan& plan) {
  plan.Reset();
  ReplayResult result = RunPuller([&plan]() { return plan.Next(); });
  for (std::uint32_t i = 0; i < plan.SourceCount(); ++i) {
    result.sources.push_back(plan.CountersOf(i));
  }
  return result;
}

ReplayResult ReplayEngine::Run(TraceSource& source) {
  source.Reset();
  return RunPuller([&source]() -> std::optional<TaggedRecord> {
    auto record = source.Next();
    if (!record) return std::nullopt;
    return TaggedRecord{*record, qos::kNoTenant, 0};
  });
}

ReplayResult ReplayEngine::RunPuller(const Puller& pull) {
  sim::EventQueue& queue = host_ != nullptr ? host_->queue() : direct_queue_;
  if (host_ != nullptr) {
    if (host_->Outstanding() != 0) {
      throw std::logic_error("ReplayEngine: host interface not idle");
    }
    host_->ResetStats();
  }

  pull_ = pull;
  result_ = ReplayResult{};
  result_.start_us = host_ != nullptr ? queue.Now() : config_.start_us;
  result_.end_us = result_.start_us;
  result_.max_completion_us = result_.start_us;
  window_read_.Reset();
  window_write_.Reset();
  window_arrivals_ = 0;
  window_completions_ = 0;
  window_start_ = result_.start_us;

  staged_ = pull_();
  if (staged_) {
    result_.pulled++;
    const Us at = std::max(result_.start_us + staged_->record.timestamp_us,
                           queue.Now());
    queue.ScheduleAt(at, [this](Us now) { OnArrival(now); });
    if (host_ != nullptr) {
      host_->Run();
    } else {
      direct_queue_.RunToCompletion();
    }
  }

  result_.end_us = std::max(queue.Now(), result_.max_completion_us);
  if (config_.window_us > 0 &&
      (window_arrivals_ > 0 || window_completions_ > 0)) {
    FlushWindow(std::max(result_.end_us, window_start_ + 1));
  }

  if (host_ != nullptr && host_->tenants() != nullptr) {
    const qos::TenantTable& table = *host_->tenants();
    for (qos::TenantId t = 0; t < table.TenantCount(); ++t) {
      const auto& stats = table.StatsOf(t);
      TenantReplayResult tenant;
      tenant.tenant = t;
      tenant.name = table.ConfigOf(t).name;
      tenant.submitted = stats.submitted;
      tenant.completed = stats.completed;
      tenant.throttled = stats.throttled;
      tenant.read_latency = stats.read_latency;
      tenant.write_latency = stats.write_latency;
      tenant.first_submit_us = std::max<Us>(stats.first_submit_us, 0);
      tenant.last_completion_us = stats.last_completion_us;
      result_.tenants.push_back(tenant);
    }
  }
  pull_ = nullptr;
  staged_.reset();
  return result_;
}

void ReplayEngine::OnArrival(Us now) {
  WindowAdvance(now);
  window_arrivals_++;
  const TaggedRecord record = *staged_;

  // Pull and chain the next arrival BEFORE submitting: in direct mode the
  // submission is synchronous and must not reorder ahead of the chain.
  staged_ = pull_();
  if (staged_) {
    result_.pulled++;
    sim::EventQueue& queue = host_ != nullptr ? host_->queue() : direct_queue_;
    const Us at =
        std::max(result_.start_us + staged_->record.timestamp_us, now);
    queue.ScheduleAt(at, [this](Us t) { OnArrival(t); });
  }

  Submit(record, now);
}

void ReplayEngine::Submit(const TaggedRecord& record, Us now) {
  const trace::TraceRecord& r = record.record;
  if (host_ != nullptr) {
    result_.submitted++;
    auto cb = [this, record](const host::HostCompletion& c) {
      OnComplete(record, c.LatencyUs(), c.completion_us);
    };
    if (host_->tenants() != nullptr && record.tenant != qos::kNoTenant) {
      host_->SubmitAs(record.tenant, r.op, r.offset_bytes, r.size_bytes,
                      std::move(cb));
    } else {
      host_->Submit(r.op, r.offset_bytes, r.size_bytes, std::move(cb));
    }
    return;
  }

  // Direct mode: the seed harness clip (wrap into the logical space, drop
  // zero-length remainders) followed by a synchronous FTL issue.
  const std::uint64_t logical = ssd_->LogicalBytes();
  std::uint64_t offset = r.offset_bytes;
  std::uint64_t size = r.size_bytes;
  if (offset >= logical) offset %= logical;
  if (offset + size > logical) size = logical - offset;
  if (size == 0) {
    result_.dropped++;
    return;
  }
  result_.submitted++;
  const ftl::RequestResult res = r.op == trace::OpType::kRead
                                     ? ssd_->Read(offset, size, now)
                                     : ssd_->Write(offset, size, now);
  OnComplete(record, res.LatencyUs(), res.completion_us);
}

void ReplayEngine::OnComplete(const TaggedRecord& record, Us latency_us,
                              Us completion_us) {
  // Host-mode completions fire as events at completion_us, so the window
  // cursor advances with them; direct-mode completions book into the
  // arrival's window (the seed accounting).
  if (host_ != nullptr) WindowAdvance(completion_us);
  result_.completed++;
  if (completion_us > result_.max_completion_us) {
    result_.max_completion_us = completion_us;
  }
  window_completions_++;
  if (record.record.op == trace::OpType::kRead) {
    result_.read_latency.Add(latency_us);
    window_read_.Add(latency_us);
  } else {
    result_.write_latency.Add(latency_us);
    window_write_.Add(latency_us);
  }
}

void ReplayEngine::WindowAdvance(Us now) {
  if (config_.window_us <= 0) return;
  while (now >= window_start_ + config_.window_us) {
    if (window_arrivals_ == 0 && window_completions_ == 0) {
      // Idle gap: jump straight to the window containing `now` instead of
      // materializing one empty ReplayWindow per interval — telemetry
      // memory stays bounded by ACTIVE intervals, not by the makespan
      // (a week-long sparse trace must not allocate millions of rows).
      const Us span = now - window_start_;
      window_start_ += span / config_.window_us * config_.window_us;
      break;
    }
    FlushWindow(window_start_ + config_.window_us);
  }
}

void ReplayEngine::FlushWindow(Us close_time) {
  ReplayWindow window;
  window.start_us = window_start_;
  window.end_us = close_time;
  window.arrivals = window_arrivals_;
  window.completions = window_completions_;
  const Us span = close_time - window_start_;
  window.iops = span <= 0 ? 0.0
                          : static_cast<double>(window_completions_) * 1e6 /
                                static_cast<double>(span);
  window.read_p50_us = window_read_.p50_us();
  window.read_p99_us = window_read_.p99_us();
  window.write_p50_us = window_write_.p50_us();
  window.write_p99_us = window_write_.p99_us();
  window.outstanding_end = host_ != nullptr ? host_->Outstanding() : 0;
  result_.windows.push_back(window);

  window_start_ = close_time;
  window_arrivals_ = 0;
  window_completions_ = 0;
  window_read_.Reset();
  window_write_.Reset();
}

}  // namespace ctflash::replay
