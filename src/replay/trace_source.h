// TraceSource: the pull-iterator every replay component consumes.
//
// The trace replay engine (replay_engine.h) never sees a materialized
// std::vector of records — it pulls one TraceRecord at a time, so a
// multi-GB MSR-Cambridge CSV streams through the device model with a
// bounded resident window while the same code path accepts an in-memory
// vector or a synthetic generator.  Sources are Reset()-able so a
// characterization pass (workload_profile.h) can precede the replay pass
// over the same source.
//
//  * VectorTraceSource      — adapter over a materialized record vector;
//  * SyntheticTraceSource   — streams trace::SyntheticTraceGenerator output
//                             without materializing it (Reset reseeds, so
//                             both passes see the identical stream);
//  * StreamingMsrCsvSource  — bounded-memory MSR CSV reader: decodes the
//                             file in chunks of `window_records`, keeps at
//                             most one chunk resident (O(window), not
//                             O(trace)), and reports the peak resident
//                             count so tests and benches can assert the
//                             bound.  An optional hostname filter splits a
//                             combined multi-server CSV into per-host
//                             streams (the shape MSR distributes).
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/synthetic.h"
#include "trace/trace.h"

namespace ctflash::replay {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Pulls the next record; std::nullopt at end of stream.
  virtual std::optional<trace::TraceRecord> Next() = 0;

  /// Rewinds to the first record.  Sources are deterministic: every pass
  /// yields the identical stream.
  virtual void Reset() = 0;

  /// Total records if cheaply known, 0 otherwise (streams don't count
  /// ahead).
  virtual std::uint64_t SizeHint() const { return 0; }
};

class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<trace::TraceRecord> records)
      : records_(std::move(records)) {}

  std::optional<trace::TraceRecord> Next() override {
    if (next_ >= records_.size()) return std::nullopt;
    return records_[next_++];
  }
  void Reset() override { next_ = 0; }
  std::uint64_t SizeHint() const override { return records_.size(); }

 private:
  std::vector<trace::TraceRecord> records_;
  std::size_t next_ = 0;
};

class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(const trace::SyntheticWorkloadConfig& config);

  std::optional<trace::TraceRecord> Next() override;
  void Reset() override;
  std::uint64_t SizeHint() const override { return config_.num_requests; }

 private:
  trace::SyntheticWorkloadConfig config_;
  std::unique_ptr<trace::SyntheticTraceGenerator> generator_;
  std::uint64_t emitted_ = 0;
};

class StreamingMsrCsvSource final : public TraceSource {
 public:
  struct Options {
    /// Records decoded per refill; the resident-memory bound.
    std::size_t window_records = 4096;
    /// Keep only lines whose Hostname field matches; "" keeps all.
    std::string hostname_filter;
  };

  explicit StreamingMsrCsvSource(const std::string& path)
      : StreamingMsrCsvSource(path, Options()) {}
  StreamingMsrCsvSource(const std::string& path, const Options& options);

  std::optional<trace::TraceRecord> Next() override;
  void Reset() override;

  /// High-water mark of simultaneously resident decoded records across the
  /// source's whole lifetime — the O(window) bound tests assert.
  std::size_t PeakResidentRecords() const { return peak_resident_; }
  /// CSV lines consumed so far (parser position, diagnostics).
  std::uint64_t LinesConsumed() const { return parser_.LineCount(); }

 private:
  void Refill();

  std::string path_;
  Options options_;
  std::ifstream in_;
  trace::MsrCsvParser parser_;
  std::deque<trace::TraceRecord> window_;
  std::size_t peak_resident_ = 0;
  bool exhausted_ = false;
};

}  // namespace ctflash::replay
