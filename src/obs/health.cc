#include "obs/health.h"

#include <algorithm>
#include <stdexcept>

namespace ctflash::obs {

namespace {

/// Signals may exceed their failing threshold (score > 1) so the EWMA can
/// actually cross 1.0 under a sustained ramp — an EWMA of values capped AT
/// 1 converges to 1 from below and never reaches it.  The cap bounds how
/// hard one wild window can yank the smoothed score.
constexpr double kSignalCap = 4.0;

/// Value scaled so that hitting `fail_at` scores 1.0; capped at kSignalCap.
double Normalized(double value, double fail_at) {
  if (fail_at <= 0.0) return 0.0;
  return std::min(kSignalCap, std::max(0.0, value / fail_at));
}

}  // namespace

void HealthConfig::Validate() const {
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    throw std::runtime_error("health: ewma_alpha must be in (0, 1]");
  }
  if (degraded_frac <= 0.0 || degraded_frac >= 1.0) {
    throw std::runtime_error("health: degraded_frac must be in (0, 1)");
  }
  if (spare_fail_frac <= 0.0 || spare_fail_frac > 1.0) {
    throw std::runtime_error("health: spare_fail_frac must be in (0, 1]");
  }
  if (wear_fail_frac <= 0.0 || wear_fail_frac > 1.0) {
    throw std::runtime_error("health: wear_fail_frac must be in (0, 1]");
  }
  if (retry_fail_rate <= 0.0 || retry_fail_rate > 1.0) {
    throw std::runtime_error("health: retry_fail_rate must be in (0, 1]");
  }
  if (program_fail_rate <= 0.0 || program_fail_rate > 1.0) {
    throw std::runtime_error("health: program_fail_rate must be in (0, 1]");
  }
  if (gc_stall_fail_share <= 0.0 || gc_stall_fail_share > 1.0) {
    throw std::runtime_error("health: gc_stall_fail_share must be in (0, 1]");
  }
}

double HealthSignals::Worst() const {
  return std::max(std::max(std::max(spare, wear), std::max(media, gc)),
                  program);
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  config_.Validate();
}

HealthState HealthMonitor::state() const {
  if (score_ >= 1.0) return HealthState::kFailing;
  if (score_ >= config_.degraded_frac) return HealthState::kDegraded;
  return HealthState::kHealthy;
}

void HealthMonitor::Observe(const HealthSample& s) {
  if (windows_ == 0) baseline_ = s;

  // Spare pool: the device needs its data blocks plus the GC floor to keep
  // operating, so the spendable spare budget is the baseline free count
  // above the floor.  Every block retired since baseline burns one unit.
  const std::uint64_t budget =
      baseline_.free_blocks > s.gc_floor_blocks
          ? baseline_.free_blocks - s.gc_floor_blocks
          : 1;
  const std::uint64_t retired_delta =
      s.retired_blocks > baseline_.retired_blocks
          ? s.retired_blocks - baseline_.retired_blocks
          : 0;
  // A free pool already squeezed below the floor is the budget fully spent
  // regardless of how it got there.
  double spare_used = static_cast<double>(retired_delta) /
                      static_cast<double>(std::max<std::uint64_t>(budget, 1));
  if (s.free_blocks < s.gc_floor_blocks) spare_used = 1.0;
  signals_.spare = Normalized(spare_used, config_.spare_fail_frac);

  // Wear: mean P/E consumed vs the endurance budget.
  if (s.endurance_pe_cycles > 0 && s.total_blocks > 0) {
    const double mean_pe =
        static_cast<double>(s.total_erases) /
        static_cast<double>(s.total_blocks);
    signals_.wear = Normalized(
        mean_pe / static_cast<double>(s.endurance_pe_cycles),
        config_.wear_fail_frac);
  }

  // Media trend: this window's retry rate; any unrecovered read or lost
  // page is an instant fail for the signal.
  const HealthSample& ref = windows_ == 0 ? baseline_ : prev_;
  const std::uint64_t dsampled = s.sampled_reads - ref.sampled_reads;
  const std::uint64_t dretried = s.retried_reads - ref.retried_reads;
  double media = 0.0;
  if (dsampled > 0) {
    media = Normalized(
        static_cast<double>(dretried) / static_cast<double>(dsampled),
        config_.retry_fail_rate);
  }
  if (s.unrecovered_reads > ref.unrecovered_reads ||
      s.lost_pages > ref.lost_pages) {
    // Data loss is an instant fail: pin the signal at the cap so the EWMA
    // crosses 1.0 within a window or two even from a healthy score.
    media = kSignalCap;
  }
  signals_.media = media;

  // Program-verify trend: this window's verify-fail rate.  Failing
  // programs are the wear ramp's earliest symptom — they show up on the
  // first sick write, epochs before the flagged blocks reach a GC erase
  // and register as spare-pool burn.
  const std::uint64_t dprog = s.program_pages - ref.program_pages;
  const std::uint64_t dpfail = s.program_failures - ref.program_failures;
  signals_.program =
      dprog == 0 ? 0.0
                 : Normalized(static_cast<double>(dpfail) /
                                  static_cast<double>(dprog),
                              config_.program_fail_rate);

  // GC pressure: die-busy-gc stall share of this window's read media time.
  const std::uint64_t dmedia = s.read_media_us - ref.read_media_us;
  const std::uint64_t dstall = s.read_stall_gc_us - ref.read_stall_gc_us;
  signals_.gc =
      dmedia == 0
          ? 0.0
          : Normalized(static_cast<double>(dstall) /
                           static_cast<double>(dmedia),
                       config_.gc_stall_fail_share);

  const double raw = signals_.Worst();
  score_ = windows_ == 0
               ? raw
               : config_.ewma_alpha * raw +
                     (1.0 - config_.ewma_alpha) * score_;
  score_series_.push_back(score_);
  prev_ = s;
  ++windows_;
}

campaign::Json HealthMonitor::ToJson() const {
  campaign::Json out;
  out["state"] = std::string(HealthStateName(state()));
  out["score"] = score_;
  out["windows"] = windows_;
  campaign::Json sig;
  sig["spare"] = signals_.spare;
  sig["wear"] = signals_.wear;
  sig["media"] = signals_.media;
  sig["gc"] = signals_.gc;
  sig["program"] = signals_.program;
  out["signals"] = std::move(sig);
  return out;
}

}  // namespace ctflash::obs
