// IoScheduler properties the ROADMAP's scaling work leans on: transaction
// conservation, die exclusivity, FIFO-vs-out-of-order latency ordering,
// and bit-for-bit determinism of closed-loop runs.
#include "host/io_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"

namespace ctflash::host {
namespace {

ssd::SsdConfig SmallConfig() {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28,
                               16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  return cfg;
}

Us Prefill(ssd::Ssd& ssd, std::uint32_t fraction_pct) {
  ssd::ExperimentRunner runner(ssd);
  return runner.Prefill(ssd.LogicalBytes() / 100 * fraction_pct);
}

/// Mapped lpns currently living on (predicate true) / off the given die.
std::vector<Lpn> LpnsOnDie(ssd::Ssd& ssd, std::uint64_t die, bool on,
                           std::size_t count) {
  const auto& geo = ssd.config().geometry;
  std::vector<Lpn> out;
  const Lpn logical_pages = ssd.LogicalBytes() / geo.page_size_bytes;
  for (Lpn lpn = 0; lpn < logical_pages && out.size() < count; ++lpn) {
    const Ppn ppn = ssd.ftl().ProbePpn(lpn);
    if (ppn == kInvalidPpn) continue;
    const bool here = geo.DieOfBlock(geo.BlockOf(ppn)) == die;
    if (here == on) out.push_back(lpn);
  }
  return out;
}

TEST(IoScheduler, TransactionConservation) {
  // Every submitted page dispatches and completes exactly once, across
  // multi-page requests, sub-page requests and wrapped offsets.
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 60);
  HostConfig cfg;
  cfg.device_slots = 8;
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  std::map<std::uint64_t, int> completions;
  std::uint64_t pages_reported = 0;
  const std::uint64_t logical = ssd.LogicalBytes();
  const std::uint64_t sizes[] = {4096, 16 * 1024, 48 * 1024, 128 * 1024};
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t size = sizes[i % 4];
    const std::uint64_t offset = (static_cast<std::uint64_t>(i) * 37 * 16 *
                                  1024) % (logical + 64 * 1024);  // some wrap
    const trace::OpType op =
        i % 3 == 0 ? trace::OpType::kWrite : trace::OpType::kRead;
    host.Submit(op, offset, size, [&](const HostCompletion& c) {
      completions[c.request.id]++;
      pages_reported += c.pages;
    });
  }
  host.Run();

  EXPECT_EQ(host.stats().submitted, static_cast<std::uint64_t>(n));
  EXPECT_EQ(host.stats().completed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(completions.size(), static_cast<std::size_t>(n));
  for (const auto& [id, count] : completions) EXPECT_EQ(count, 1) << id;
  // Dispatched == completed == sum of per-request page counts.
  EXPECT_EQ(host.TxnsDispatched(), host.stats().transactions_completed);
  EXPECT_EQ(host.stats().transactions_completed, pages_reported);
  EXPECT_EQ(host.Outstanding(), 0u);
}

TEST(IoScheduler, DieExclusivityNoOverlappingReservations) {
  // A die's added busy time can never exceed the span it had available —
  // overlapping reservations on one die would violate this.
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 60);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  const auto& dies = ssd.target().dies();
  std::vector<Us> busy_before(dies.Count());
  for (std::size_t i = 0; i < dies.Count(); ++i) {
    busy_before[i] = dies.At(i).BusyTime();
    ASSERT_LE(dies.At(i).FreeAt(), prefill_end);
  }
  const Us run_start = host.queue().Now();

  ClosedLoopGenerator::Config gen_cfg;
  gen_cfg.queue_depth = 16;
  gen_cfg.total_requests = 3000;
  gen_cfg.read_fraction = 0.8;
  gen_cfg.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  ClosedLoopGenerator generator(host, gen_cfg);
  generator.Run();

  std::size_t active_dies = 0;
  for (std::size_t i = 0; i < dies.Count(); ++i) {
    const Us busy_delta = dies.At(i).BusyTime() - busy_before[i];
    if (busy_delta == 0) continue;  // die saw no traffic this run
    ++active_dies;
    const Us span = dies.At(i).FreeAt() - run_start;
    EXPECT_LE(busy_delta, span) << "die " << i << " reservations overlap";
  }
  EXPECT_GT(active_dies, 1u) << "run was expected to exercise many dies";
}

TEST(FlashTargetDies, QueuedCellOpsSerializePerDieNotPerChip) {
  // Two dies on one chip interleave cell ops (the parallelism the host
  // scheduler exploits); two ops on one die strictly serialize.
  nand::NandGeometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = 2;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.num_layers = 8;
  nand::NandTiming t;
  ftl::FlashTarget ft(g, t, 1000, ftl::TimingMode::kQueued);
  // Blocks stripe plane-major: block 0 -> die 0, block 1 -> die 1.
  ASSERT_EQ(g.DieOfBlock(0), 0u);
  ASSERT_EQ(g.DieOfBlock(1), 1u);
  ft.ProgramPage(g.PpnOf(0, 0), 0);
  ft.ProgramPage(g.PpnOf(1, 0), 0);

  const Us same_a = ft.ReadPage(g.PpnOf(0, 0), 10000);
  const Us same_b = ft.ReadPage(g.PpnOf(0, 0), 10000);  // same die: queues
  EXPECT_GT(same_b, same_a);

  ftl::FlashTarget ft2(g, t, 1000, ftl::TimingMode::kQueued);
  ft2.ProgramPage(g.PpnOf(0, 0), 0);
  ft2.ProgramPage(g.PpnOf(1, 0), 0);
  const Us cross_a = ft2.ReadPage(g.PpnOf(0, 0), 10000);
  const Us cross_b = ft2.ReadPage(g.PpnOf(1, 0), 10000);  // other die
  // Cell sensing overlaps; only the shared channel serializes, so the
  // second read beats the same-die case.
  EXPECT_LT(cross_b, same_b);
  EXPECT_GE(cross_a, 10000);
}

TEST(IoScheduler, OutOfOrderBeatsFifoOnDieSkewedLoad) {
  // A burst against one hot die followed by reads to idle dies: FIFO holds
  // the idle-die reads behind the burst (head-of-line blocking), while
  // out-of-order dispatch overtakes.  Same device state, same request
  // order, only the policy differs.
  auto run = [](SchedPolicy policy) {
    ssd::Ssd ssd(SmallConfig());
    const Us prefill_end = Prefill(ssd, 60);
    HostConfig cfg;
    cfg.policy = policy;
    cfg.device_slots = 2;  // small device queue: ready set really queues
    HostInterface host(ssd, cfg);
    host.AdvanceTo(prefill_end);

    const auto hot = LpnsOnDie(ssd, 0, true, 24);
    const auto cold = LpnsOnDie(ssd, 0, false, 8);
    EXPECT_GE(hot.size(), 24u);
    EXPECT_GE(cold.size(), 8u);
    const std::uint32_t page = ssd.config().geometry.page_size_bytes;
    for (const Lpn lpn : hot) {
      host.Submit(trace::OpType::kRead, lpn * page, page);
    }
    for (const Lpn lpn : cold) {
      host.Submit(trace::OpType::kRead, lpn * page, page);
    }
    host.Run();
    return host.stats().read_latency.total_us();
  };

  const double fifo = run(SchedPolicy::kFifo);
  const double ooo = run(SchedPolicy::kOutOfOrder);
  EXPECT_LT(ooo, fifo);
}

TEST(IoScheduler, UnmappedReadDoesNotLeapfrogMappedIdleDieRead) {
  // Regression for the KeyOf neutral-key fix: unmapped reads used to key as
  // {0, 0} — "startable now on plane 0" — which let them jump dies they
  // will never use, overtaking mapped reads that are equally startable on
  // a real idle die.  With the neutral key (startable now, worst plane)
  // the mapped read must dispatch first; the unmapped read, which carries
  // no flash work, loses the tie it had no stake in.
  ssd::Ssd ssd(SmallConfig());
  const Us prefill_end = Prefill(ssd, 60);
  HostConfig cfg;
  cfg.device_slots = 1;  // serialize picks: the ready set really queues
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  const auto& geo = ssd.config().geometry;
  const std::uint32_t page = geo.page_size_bytes;
  // A mapped blocker, a mapped read on a DIFFERENT die (idle, startable
  // now), and an unmapped probe (prefill maps lpns from 0 upward, so the
  // top of the logical space is untouched).
  const auto blocker = LpnsOnDie(ssd, 0, true, 1);
  const auto mapped = LpnsOnDie(ssd, 0, false, 1);
  ASSERT_EQ(blocker.size(), 1u);
  ASSERT_EQ(mapped.size(), 1u);
  const Lpn unmapped = ssd.LogicalBytes() / page - 1;
  ASSERT_EQ(ssd.ftl().ProbePpn(unmapped), kInvalidPpn);

  std::vector<Lpn> dispatch_order;
  host.scheduler().OnDispatch(
      [&](const FlashTransaction& txn) { dispatch_order.push_back(txn.lpn); });

  host.Submit(trace::OpType::kRead, blocker[0] * page, page);
  host.Submit(trace::OpType::kRead, unmapped * page, page);
  host.Submit(trace::OpType::kRead, mapped[0] * page, page);
  host.Run();

  ASSERT_EQ(dispatch_order.size(), 3u);
  EXPECT_EQ(dispatch_order[0], blocker[0]);  // took the only slot instantly
  EXPECT_EQ(dispatch_order[1], mapped[0])
      << "mapped idle-die read must beat the unmapped read's neutral key";
  EXPECT_EQ(dispatch_order[2], unmapped);
}

TEST(IoScheduler, ClosedLoopQd8DeterministicAcrossRuns) {
  auto run = [] {
    ssd::Ssd ssd(SmallConfig());
    const Us prefill_end = Prefill(ssd, 60);
    HostInterface host(ssd, HostConfig{});
    host.AdvanceTo(prefill_end);
    ClosedLoopGenerator::Config gen_cfg;
    gen_cfg.queue_depth = 8;
    gen_cfg.total_requests = 2000;
    gen_cfg.read_fraction = 0.75;
    gen_cfg.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
    gen_cfg.seed = 42;
    ClosedLoopGenerator generator(host, gen_cfg);
    const LoadStats load = generator.Run();
    return std::tuple{generator.issued(), load.requests, load.end_us,
                      load.read_latency.total_us(),
                      load.write_latency.total_us(),
                      load.read_latency.p99_us(), load.Iops()};
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));  // identical request streams
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_DOUBLE_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_DOUBLE_EQ(std::get<4>(a), std::get<4>(b));
  EXPECT_DOUBLE_EQ(std::get<5>(a), std::get<5>(b));
  EXPECT_DOUBLE_EQ(std::get<6>(a), std::get<6>(b));
}

TEST(IoScheduler, QdSweepIopsMonotoneToSaturation) {
  // The acceptance shape of the subsystem, in miniature: closed-loop IOPS
  // never regresses as QD grows (within a small tolerance near
  // saturation), and a deeper queue beats QD=1 outright.
  auto cfg = SmallConfig();
  ssd::QdSweepOptions sweep;
  sweep.queue_depths = {1, 2, 4, 8, 16};
  sweep.requests_per_point = 3000;
  const auto points = ssd::RunQdSweep(cfg, sweep);
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].iops, points[i - 1].iops * 0.98)
        << "QD " << points[i].queue_depth << " regressed";
  }
  EXPECT_GT(points.back().iops, points.front().iops * 2.0);
}

}  // namespace
}  // namespace ctflash::host
