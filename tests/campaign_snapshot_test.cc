// Device-state snapshot tests: byte-exact round trips across FTL variants,
// GC routings, and active QoS pacing, plus rejection of corrupt, truncated,
// wrong-version, and wrong-shape snapshots.
//
// The core property is CONTINUATION EQUIVALENCE: running a workload on a
// device, then snapshotting (path A), must produce byte-identical state to
// snapshotting first, restoring into a FRESH device, and running the same
// workload there (path B).  That is the contract the campaign runner's
// shared prefill rests on.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/snapshot.h"
#include "host/host_interface.h"
#include "host/load_generator.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash {
namespace {

ssd::SsdConfig SmallConfig(ssd::FtlKind kind, ftl::GcRouting routing) {
  auto cfg = ssd::ScaledConfig(kind, 32ull << 20, 16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  cfg.ftl.gc_routing = routing;
  return cfg;
}

/// GC-churning closed-loop burst: 50 % writes over a 60 % footprint.
void RunBurst(ssd::Ssd& ssd, Us start_us, const qos::QosConfig& qos) {
  host::HostConfig host_cfg;
  host_cfg.qos = qos;
  host::HostInterface host(ssd, host_cfg);
  host.AdvanceTo(start_us);
  if (qos.tenants.empty()) {
    host::ClosedLoopGenerator::Config gen;
    gen.queue_depth = 8;
    gen.total_requests = 3'000;
    gen.read_fraction = 0.5;
    gen.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
    gen.seed = 5;
    host::ClosedLoopGenerator(host, gen).Run();
  } else {
    // Two tenants, the second IOPS-capped so pacing queues engage.
    std::vector<host::TenantWorkload> workloads(2);
    workloads[0].tenant = 0;
    workloads[0].queue_depth = 8;
    workloads[0].total_requests = 1'500;
    workloads[0].read_fraction = 0.5;
    workloads[0].footprint_bytes = ssd.LogicalBytes() / 100 * 30;
    workloads[0].seed = 5;
    workloads[1].tenant = 1;
    workloads[1].queue_depth = 8;
    workloads[1].total_requests = 1'500;
    workloads[1].read_fraction = 0.5;
    workloads[1].footprint_base_bytes = ssd.LogicalBytes() / 100 * 30;
    workloads[1].footprint_bytes = ssd.LogicalBytes() / 100 * 30;
    workloads[1].seed = 6;
    host::MultiTenantGenerator(host, workloads).Run();
  }
}

qos::QosConfig PacingQos() {
  qos::QosConfig qos;
  qos.tenants.resize(2);
  qos.tenants[0].name = "a";
  qos.tenants[0].weight = 4;
  qos.tenants[0].queues = {0, 1};
  qos.tenants[1].name = "b";
  qos.tenants[1].weight = 1;
  qos.tenants[1].queues = {2, 3};
  qos.tenants[1].iops_limit = 5'000.0;
  return qos;
}

/// Paths A and B of the continuation-equivalence property; returns the two
/// final snapshots' serialized bytes.
void ExpectContinuationEquivalence(ssd::FtlKind kind, ftl::GcRouting routing,
                                   const qos::QosConfig& qos) {
  const auto cfg = SmallConfig(kind, routing);

  // Path A: prefill, burst, snapshot.
  ssd::Ssd a(cfg);
  ssd::ExperimentRunner prefill_a(a);
  const Us end_a = prefill_a.Prefill(a.LogicalBytes() / 100 * 85);
  RunBurst(a, end_a, qos);
  const auto final_a = a.Snapshot(0).Serialize();

  // Path B: prefill, snapshot, restore into a fresh device, same burst.
  ssd::Ssd b0(cfg);
  ssd::ExperimentRunner prefill_b(b0);
  const Us end_b = prefill_b.Prefill(b0.LogicalBytes() / 100 * 85);
  ASSERT_EQ(end_a, end_b);
  const campaign::DeviceState mid = b0.Snapshot(end_b);

  ssd::Ssd b(cfg);
  b.Restore(mid);
  RunBurst(b, static_cast<Us>(mid.clock_us), qos);
  const auto final_b = b.Snapshot(0).Serialize();

  EXPECT_EQ(final_a, final_b)
      << ssd::FtlKindName(kind) << "/" << ftl::GcRoutingName(routing)
      << ": continuation after restore diverged from straight-through";
}

TEST(CampaignSnapshot, ContinuationConventionalInline) {
  ExpectContinuationEquivalence(ssd::FtlKind::kConventional,
                                ftl::GcRouting::kInline, {});
}

TEST(CampaignSnapshot, ContinuationConventionalScheduled) {
  ExpectContinuationEquivalence(ssd::FtlKind::kConventional,
                                ftl::GcRouting::kScheduled, {});
}

TEST(CampaignSnapshot, ContinuationPpbInline) {
  ExpectContinuationEquivalence(ssd::FtlKind::kPpb, ftl::GcRouting::kInline,
                                {});
}

TEST(CampaignSnapshot, ContinuationPpbScheduled) {
  ExpectContinuationEquivalence(ssd::FtlKind::kPpb, ftl::GcRouting::kScheduled,
                                {});
}

TEST(CampaignSnapshot, ContinuationUnderQosPacing) {
  ExpectContinuationEquivalence(ssd::FtlKind::kConventional,
                                ftl::GcRouting::kScheduled, PacingQos());
  ExpectContinuationEquivalence(ssd::FtlKind::kPpb, ftl::GcRouting::kInline,
                                PacingQos());
}

TEST(CampaignSnapshot, SerializeRoundTrip) {
  const auto cfg = SmallConfig(ssd::FtlKind::kConventional,
                               ftl::GcRouting::kInline);
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner prefill(ssd);
  const Us end = prefill.Prefill(ssd.LogicalBytes() / 2);
  const campaign::DeviceState state = ssd.Snapshot(end);

  const auto bytes = state.Serialize();
  const campaign::DeviceState back = campaign::DeviceState::Deserialize(bytes);
  EXPECT_EQ(back.shape_key, state.shape_key);
  EXPECT_EQ(back.clock_us, state.clock_us);
  EXPECT_EQ(back.payload, state.payload);
  EXPECT_EQ(back.Serialize(), bytes);
}

TEST(CampaignSnapshot, CorruptPayloadRejected) {
  const auto cfg = SmallConfig(ssd::FtlKind::kConventional,
                               ftl::GcRouting::kInline);
  ssd::Ssd ssd(cfg);
  auto bytes = ssd.Snapshot(0).Serialize();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  try {
    campaign::DeviceState::Deserialize(bytes);
    FAIL() << "corrupt snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << "error should name the CRC mismatch: " << e.what();
  }
}

TEST(CampaignSnapshot, TruncatedSnapshotRejected) {
  const auto cfg = SmallConfig(ssd::FtlKind::kConventional,
                               ftl::GcRouting::kInline);
  ssd::Ssd ssd(cfg);
  auto bytes = ssd.Snapshot(0).Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(campaign::DeviceState::Deserialize(bytes), std::runtime_error);
  bytes.resize(8);  // below the minimum envelope
  EXPECT_THROW(campaign::DeviceState::Deserialize(bytes), std::runtime_error);
}

TEST(CampaignSnapshot, BadMagicRejected) {
  const auto cfg = SmallConfig(ssd::FtlKind::kConventional,
                               ftl::GcRouting::kInline);
  ssd::Ssd ssd(cfg);
  auto bytes = ssd.Snapshot(0).Serialize();
  bytes[0] = 'X';
  try {
    campaign::DeviceState::Deserialize(bytes);
    FAIL() << "bad magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(CampaignSnapshot, WrongVersionRejected) {
  const auto cfg = SmallConfig(ssd::FtlKind::kConventional,
                               ftl::GcRouting::kInline);
  ssd::Ssd ssd(cfg);
  auto bytes = ssd.Snapshot(0).Serialize();
  // Bump the little-endian version word (offset 4) and re-seal the CRC so
  // only the version check can fire.
  bytes[4] = static_cast<std::uint8_t>(campaign::DeviceState::kFormatVersion +
                                       1);
  const std::uint32_t crc =
      util::Crc32(bytes.data() + 4, bytes.size() - 8);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  try {
    campaign::DeviceState::Deserialize(bytes);
    FAIL() << "wrong-version snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(CampaignSnapshot, ShapeMismatchRejected) {
  const auto small = SmallConfig(ssd::FtlKind::kConventional,
                                 ftl::GcRouting::kInline);
  ssd::Ssd source(small);
  const campaign::DeviceState state = source.Snapshot(0);

  // A different page size changes the geometry; a different device_bytes
  // alone may not (ScaledGeometry rounds the block count up to at least 1,
  // so small targets collapse onto the same shape).
  auto other = ssd::ScaledConfig(ssd::FtlKind::kConventional, 32ull << 20,
                                 8 * 1024, 2.0);
  other.timing_mode = ftl::TimingMode::kQueued;
  ssd::Ssd target(other);
  try {
    target.Restore(state);
    FAIL() << "shape-mismatched snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shape"), std::string::npos);
  }
}

TEST(CampaignSnapshot, GcRoutingSharesShapeKey) {
  // Prefilled state is routing-independent (the GC sink is not attached
  // during synchronous prefill), so the shape key deliberately excludes
  // gc_routing: an inline-prefilled snapshot restores into a scheduled arm.
  const auto inline_cfg = SmallConfig(ssd::FtlKind::kConventional,
                                      ftl::GcRouting::kInline);
  const auto sched_cfg = SmallConfig(ssd::FtlKind::kConventional,
                                     ftl::GcRouting::kScheduled);
  EXPECT_EQ(campaign::SnapshotShapeKey(inline_cfg),
            campaign::SnapshotShapeKey(sched_cfg));

  ssd::Ssd source(inline_cfg);
  ssd::ExperimentRunner prefill(source);
  const Us end = prefill.Prefill(source.LogicalBytes() / 2);
  ssd::Ssd target(sched_cfg);
  EXPECT_NO_THROW(target.Restore(source.Snapshot(end)));
}

TEST(CampaignSnapshot, ArmErrorModelAfterRestoreRejected) {
  // Arming the error model reseeds the RNG and zeroes the error stats — on
  // a restored device that would silently discard the snapshot's restored
  // state, so it must be rejected loudly.
  const auto cfg = SmallConfig(ssd::FtlKind::kConventional,
                               ftl::GcRouting::kInline);
  ssd::Ssd source(cfg);
  const campaign::DeviceState state = source.Snapshot(0);
  ssd::Ssd target(cfg);
  target.Restore(state);
  EXPECT_THROW(target.target().ArmErrorModel(nand::ErrorModelConfig{}),
               std::logic_error);
}

TEST(CampaignSnapshot, ContinuationWithFaultsArmedAfterRestore) {
  // The fault-campaign protocol: prefill fault-free, snapshot, restore,
  // THEN arm the per-arm fault plan.  Continuation equivalence must hold
  // with the error model sampling and the injector drawing throughout the
  // burst (both round-trip through the snapshot).
  auto cfg = SmallConfig(ssd::FtlKind::kPpb, ftl::GcRouting::kInline);
  cfg.model_read_errors = true;
  cfg.error_model.base_rber = 1e-3;  // skew-8 bottom layers enter the ladder
  nand::FaultPlanConfig plan;
  plan.program_fail_prob = 0.002;
  plan.erase_fail_prob = 0.001;
  plan.read_disturb_per_read = 1e-4;

  ssd::Ssd a(cfg);
  ssd::ExperimentRunner prefill_a(a);
  const Us end_a = prefill_a.Prefill(a.LogicalBytes() / 100 * 85);
  a.target().ArmFaults(plan, ftl::FaultHandlingConfig{}, 77);
  RunBurst(a, end_a, {});
  const auto final_a = a.Snapshot(0).Serialize();

  ssd::Ssd b0(cfg);
  ssd::ExperimentRunner prefill_b(b0);
  const Us end_b = prefill_b.Prefill(b0.LogicalBytes() / 100 * 85);
  ASSERT_EQ(end_a, end_b);
  const campaign::DeviceState mid = b0.Snapshot(end_b);

  ssd::Ssd b(cfg);
  b.Restore(mid);
  b.target().ArmFaults(plan, ftl::FaultHandlingConfig{}, 77);
  RunBurst(b, static_cast<Us>(mid.clock_us), {});
  EXPECT_EQ(final_a, b.Snapshot(0).Serialize())
      << "fault-armed continuation after restore diverged";
}

TEST(CampaignSnapshot, DistinctFtlKindsGetDistinctKeys) {
  EXPECT_NE(campaign::SnapshotShapeKey(SmallConfig(ssd::FtlKind::kConventional,
                                                   ftl::GcRouting::kInline)),
            campaign::SnapshotShapeKey(
                SmallConfig(ssd::FtlKind::kPpb, ftl::GcRouting::kInline)));
}

}  // namespace
}  // namespace ctflash
