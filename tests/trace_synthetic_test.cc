#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace ctflash::trace {
namespace {

SyntheticWorkloadConfig SmallConfig() {
  SyntheticWorkloadConfig c;
  c.num_requests = 20000;
  c.footprint_bytes = 64 * kMiB;
  c.region_bytes = kMiB;
  c.seed = 7;
  return c;
}

TEST(SyntheticConfig, Validation) {
  auto c = SmallConfig();
  c.num_requests = 0;
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.read_fraction = 1.5;
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.region_bytes = c.footprint_bytes * 2;
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.read_sizes.clear();
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.write_sizes = {{0, 1.0}};
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.alignment_bytes = 0;
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.rw_popularity_correlation = 1.2;
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
  c = SmallConfig();
  c.sequential_read_fraction = -0.1;
  EXPECT_THROW(SyntheticTraceGenerator{c}, std::invalid_argument);
}

TEST(Synthetic, DeterministicForSeed) {
  const auto a = SyntheticTraceGenerator(SmallConfig()).Generate();
  const auto b = SyntheticTraceGenerator(SmallConfig()).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto cfg = SmallConfig();
  const auto a = SyntheticTraceGenerator(cfg).Generate();
  cfg.seed = 8;
  const auto b = SyntheticTraceGenerator(cfg).Generate();
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] == b[i] ? 0 : 1;
  EXPECT_GT(diff, static_cast<int>(a.size()) / 2);
}

TEST(Synthetic, RequestsStayInFootprintAndAligned) {
  const auto cfg = SmallConfig();
  for (const auto& r : SyntheticTraceGenerator(cfg).Generate()) {
    EXPECT_GT(r.size_bytes, 0u);
    EXPECT_LE(r.offset_bytes + r.size_bytes, cfg.footprint_bytes);
    EXPECT_EQ(r.offset_bytes % cfg.alignment_bytes, 0u);
  }
}

TEST(Synthetic, ReadFractionApproximatelyHonored) {
  auto cfg = SmallConfig();
  cfg.read_fraction = 0.7;
  const auto stats = ComputeStats(SyntheticTraceGenerator(cfg).Generate());
  EXPECT_NEAR(stats.ReadFraction(), 0.7, 0.02);
}

TEST(Synthetic, TimestampsMonotoneNonDecreasing) {
  const auto recs = SyntheticTraceGenerator(SmallConfig()).Generate();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].timestamp_us, recs[i - 1].timestamp_us);
  }
  EXPECT_GT(recs.back().timestamp_us, 0);
}

TEST(Synthetic, ZeroInterarrivalKeepsClockAtZero) {
  auto cfg = SmallConfig();
  cfg.mean_interarrival_us = 0;
  const auto recs = SyntheticTraceGenerator(cfg).Generate();
  for (const auto& r : recs) EXPECT_EQ(r.timestamp_us, 0);
}

TEST(Synthetic, SizesComeFromDistribution) {
  auto cfg = SmallConfig();
  cfg.metadata_fraction = 0.0;
  cfg.read_sizes = {{4096, 1.0}};
  cfg.write_sizes = {{8192, 0.5}, {16384, 0.5}};
  std::map<std::uint64_t, int> write_sizes;
  for (const auto& r : SyntheticTraceGenerator(cfg).Generate()) {
    if (r.op == OpType::kRead) {
      EXPECT_EQ(r.size_bytes, 4096u);
    } else {
      write_sizes[r.size_bytes]++;
    }
  }
  ASSERT_EQ(write_sizes.size(), 2u);
  EXPECT_GT(write_sizes[8192], 0);
  EXPECT_GT(write_sizes[16384], 0);
}

TEST(Synthetic, MetadataFractionProducesSmallHotWrites) {
  auto cfg = SmallConfig();
  cfg.read_fraction = 0.0;
  cfg.metadata_fraction = 1.0;
  cfg.metadata_size_bytes = 4096;
  cfg.write_sizes = {{65536, 1.0}};  // would be used only for non-metadata
  for (const auto& r : SyntheticTraceGenerator(cfg).Generate()) {
    EXPECT_EQ(r.size_bytes, 4096u);
  }
}

TEST(Synthetic, ZipfSkewConcentratesReads) {
  auto cfg = SmallConfig();
  cfg.read_fraction = 1.0;
  cfg.read_zipf_theta = 1.2;
  std::map<std::uint64_t, int> region_hits;
  for (const auto& r : SyntheticTraceGenerator(cfg).Generate()) {
    region_hits[r.offset_bytes / cfg.region_bytes]++;
  }
  // The most popular region should far exceed the mean.
  int max_hits = 0;
  for (const auto& [region, hits] : region_hits) max_hits = std::max(max_hits, hits);
  const double mean_hits =
      static_cast<double>(cfg.num_requests) /
      static_cast<double>(cfg.footprint_bytes / cfg.region_bytes);
  EXPECT_GT(max_hits, 5.0 * mean_hits);
}

TEST(Synthetic, SequentialReadsFollowPrevious) {
  auto cfg = SmallConfig();
  cfg.read_fraction = 1.0;
  cfg.sequential_read_fraction = 1.0;
  cfg.read_sizes = {{4096, 1.0}};
  const auto recs = SyntheticTraceGenerator(cfg).Generate();
  int sequential = 0;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    if (recs[i].offset_bytes == recs[i - 1].offset_bytes + recs[i - 1].size_bytes) {
      ++sequential;
    }
  }
  // All reads continue sequentially except footprint-boundary restarts.
  EXPECT_GT(sequential, static_cast<int>(recs.size()) * 9 / 10);
}

TEST(Synthetic, DecorrelatedWritesUseDifferentHotRegions) {
  auto cfg = SmallConfig();
  cfg.read_fraction = 0.5;
  cfg.metadata_fraction = 0.0;
  cfg.read_zipf_theta = 1.3;
  cfg.write_zipf_theta = 1.3;
  cfg.rw_popularity_correlation = 0.0;
  cfg.num_requests = 50000;
  std::map<std::uint64_t, int> read_hits, write_hits;
  for (const auto& r : SyntheticTraceGenerator(cfg).Generate()) {
    (r.op == OpType::kRead ? read_hits : write_hits)
        [r.offset_bytes / cfg.region_bytes]++;
  }
  auto top_region = [](const std::map<std::uint64_t, int>& m) {
    std::uint64_t best = 0;
    int best_hits = -1;
    for (const auto& [region, hits] : m) {
      if (hits > best_hits) {
        best = region;
        best_hits = hits;
      }
    }
    return best;
  };
  // With independent rankings the hottest read and write regions almost
  // surely differ (64 regions, scattered independently).
  EXPECT_NE(top_region(read_hits), top_region(write_hits));
}

/// Both packaged workloads must produce their advertised first-order shape.
class WorkloadFactories : public ::testing::TestWithParam<bool> {};

TEST_P(WorkloadFactories, ShapeMatchesDescription) {
  const bool web = GetParam();
  const std::uint64_t footprint = 128 * kMiB;
  const auto cfg = web ? WebServerWorkload(footprint, 30000)
                       : MediaServerWorkload(footprint, 30000);
  const auto recs = SyntheticTraceGenerator(cfg).Generate();
  const auto stats = ComputeStats(recs);
  if (web) {
    EXPECT_NEAR(stats.ReadFraction(), 0.60, 0.02);
    EXPECT_LE(stats.read_size.max(), 16.0 * 1024);
  } else {
    EXPECT_NEAR(stats.ReadFraction(), 0.90, 0.02);
    EXPECT_GE(stats.read_size.mean(), 64.0 * 1024);
    // Sub-page metadata updates present among large ingests.
    EXPECT_EQ(stats.write_size.min(), 4096.0);
    EXPECT_GE(stats.write_size.max(), 128.0 * 1024);
  }
  EXPECT_EQ(stats.total_requests, 30000u);
  EXPECT_LE(stats.max_offset_bytes, footprint);
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadFactories, ::testing::Bool());

}  // namespace
}  // namespace ctflash::trace
