// Lightweight leveled logger + assertion macro.
//
// The simulator is single-threaded by design (a discrete-event model), so the
// logger keeps no locks.  CTFLASH_CHECK is an always-on invariant check used
// at module boundaries; internal hot paths use plain assert().
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace ctflash::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

/// Builds one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ctflash::util

#define CTFLASH_LOG(level)                                               \
  if (static_cast<int>(level) < static_cast<int>(::ctflash::util::GetLogLevel())) \
    ;                                                                    \
  else                                                                   \
    ::ctflash::util::LogMessage(level, __FILE__, __LINE__)

#define LOG_DEBUG CTFLASH_LOG(::ctflash::util::LogLevel::kDebug)
#define LOG_INFO CTFLASH_LOG(::ctflash::util::LogLevel::kInfo)
#define LOG_WARN CTFLASH_LOG(::ctflash::util::LogLevel::kWarn)
#define LOG_ERROR CTFLASH_LOG(::ctflash::util::LogLevel::kError)

/// Always-on invariant check (terminates with a message on failure).
#define CTFLASH_CHECK(cond)                                                   \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::ctflash::util::LogMessage(::ctflash::util::LogLevel::kError, __FILE__, \
                                  __LINE__)                                   \
          << "CHECK failed: " #cond;                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (false)
