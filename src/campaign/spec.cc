#include "campaign/spec.h"

#include <stdexcept>
#include <utility>

#include "util/config.h"

namespace ctflash::campaign {

namespace {

/// Byte sizes may be JSON numbers or strings like "256MiB".
std::uint64_t BytesOf(const Json& parent, const std::string& key,
                      std::uint64_t fallback) {
  const Json* v = parent.Get(key);
  if (v == nullptr || v->IsNull()) return fallback;
  if (v->IsNumber()) return v->AsUint();
  return util::ParseByteSize(v->AsString());
}

ssd::FtlKind ParseFtlKind(const std::string& s) {
  if (s == "conventional") return ssd::FtlKind::kConventional;
  if (s == "ppb") return ssd::FtlKind::kPpb;
  throw std::runtime_error("campaign: unknown ftl kind \"" + s +
                           "\" (expected \"conventional\" or \"ppb\")");
}

ftl::GcRouting ParseGcRouting(const std::string& s) {
  if (s == "inline") return ftl::GcRouting::kInline;
  if (s == "scheduled") return ftl::GcRouting::kScheduled;
  throw std::runtime_error("campaign: unknown gc_routing \"" + s +
                           "\" (expected \"inline\" or \"scheduled\")");
}

ftl::TimingMode ParseTimingMode(const std::string& s) {
  if (s == "queued") return ftl::TimingMode::kQueued;
  if (s == "service_time") return ftl::TimingMode::kServiceTime;
  throw std::runtime_error("campaign: unknown timing_mode \"" + s +
                           "\" (expected \"queued\" or \"service_time\")");
}

ftl::StripePolicy ParseStripePolicy(const std::string& s) {
  if (s == "round_robin") return ftl::StripePolicy::kRoundRobin;
  if (s == "least_busy") return ftl::StripePolicy::kLeastBusy;
  throw std::runtime_error("campaign: unknown stripe_policy \"" + s +
                           "\" (expected \"round_robin\" or \"least_busy\")");
}

qos::QosConfig ParseQos(const Json& arm) {
  qos::QosConfig qos;
  const Json* list = arm.Get("qos");
  if (list == nullptr || list->IsNull()) return qos;
  for (const Json& t : list->AsArray()) {
    qos::TenantConfig tenant;
    tenant.name = t.GetStringOr("name", "tenant" + std::to_string(qos.tenants.size()));
    tenant.weight = static_cast<std::uint32_t>(t.GetUintOr("weight", 1));
    if (const Json* queues = t.Get("queues")) {
      for (const Json& q : queues->AsArray()) {
        tenant.queues.push_back(static_cast<std::uint32_t>(q.AsUint()));
      }
    }
    tenant.iops_limit = t.GetDoubleOr("iops_limit", 0.0);
    tenant.iops_burst = t.GetDoubleOr("iops_burst", 0.0);
    tenant.bytes_per_sec_limit = t.GetDoubleOr("bytes_per_sec_limit", 0.0);
    tenant.bytes_burst = t.GetDoubleOr("bytes_burst", 0.0);
    tenant.min_share = t.GetDoubleOr("min_share", 0.0);
    qos.tenants.push_back(std::move(tenant));
  }
  return qos;
}

ArmSpec ResolveArm(const Json& merged, std::uint64_t index,
                   const std::string& name, std::uint64_t default_seed,
                   bool seed_overridden) {
  ArmSpec arm;
  arm.name = name;
  arm.index = index;
  arm.merged = merged;

  DeviceSectionSpec section = ResolveDeviceSection(merged);
  arm.device = std::move(section.device);
  arm.host = std::move(section.host);
  arm.prefill_pct = section.prefill_pct;
  arm.prefill_chunk_bytes = section.prefill_chunk_bytes;
  arm.seed = seed_overridden ? merged.GetUintOr("seed", default_seed)
                             : default_seed + index;

  // Per-arm fault-injection plan + handling policy (armed after restore;
  // NOT part of the snapshot shape key, unlike "error_model" above).
  if (const Json* f = merged.Get("faults"); f != nullptr && !f->IsNull()) {
    arm.inject_faults = true;
    nand::FaultPlanConfig& p = arm.fault_plan;
    p.program_fail_prob = f->GetDoubleOr("program_fail_prob", 0.0);
    p.erase_fail_prob = f->GetDoubleOr("erase_fail_prob", 0.0);
    p.read_disturb_per_read = f->GetDoubleOr("read_disturb_per_read", 0.0);
    p.retention_rber_multiplier =
        f->GetDoubleOr("retention_rber_multiplier", 1.0);
    if (const Json* dies = f->Get("fail_dies"); dies != nullptr) {
      for (const Json& d : dies->AsArray()) p.fail_dies.push_back(d.AsUint());
    }
    if (const Json* chans = f->Get("fail_channels"); chans != nullptr) {
      for (const Json& c : chans->AsArray()) {
        p.fail_channels.push_back(static_cast<std::uint32_t>(c.AsUint()));
      }
    }
    p.fail_at_us = static_cast<Us>(f->GetUintOr("fail_at_us", 0));
    p.Validate();
    ftl::FaultHandlingConfig& h = arm.fault_handling;
    h.max_read_retries = static_cast<std::uint32_t>(
        f->GetUintOr("max_read_retries", h.max_read_retries));
    h.retry_rber_scale = f->GetDoubleOr("retry_rber_scale", h.retry_rber_scale);
    h.max_program_retries = static_cast<std::uint32_t>(
        f->GetUintOr("max_program_retries", h.max_program_retries));
    h.Validate();
    // Golden-ratio mix keeps replica arms (seed + index) on well-separated
    // fault streams even though their seeds differ by 1.
    arm.fault_seed =
        f->GetUintOr("seed", arm.seed * 0x9E3779B97F4A7C15ull + 0xFA17ull);
  }

  // Observability: phase tracing is an overlay on the measured run, not
  // device configuration — like faults it never affects the snapshot key.
  if (const Json* o = merged.Get("observability");
      o != nullptr && !o->IsNull()) {
    arm.trace_phases = o->GetBoolOr("phases", false);
    arm.metrics_epoch_us = static_cast<Us>(o->GetUintOr("metrics_epoch_us", 0));
    // "health": true enables the default thresholds; an object enables and
    // overrides them.
    if (const Json* h = o->Get("health"); h != nullptr && !h->IsNull()) {
      if (h->IsObject()) {
        arm.eval_health = true;
        obs::HealthConfig& hc = arm.health;
        hc.ewma_alpha = h->GetDoubleOr("ewma_alpha", hc.ewma_alpha);
        hc.degraded_frac = h->GetDoubleOr("degraded_frac", hc.degraded_frac);
        hc.spare_fail_frac =
            h->GetDoubleOr("spare_fail_frac", hc.spare_fail_frac);
        hc.wear_fail_frac = h->GetDoubleOr("wear_fail_frac", hc.wear_fail_frac);
        hc.retry_fail_rate =
            h->GetDoubleOr("retry_fail_rate", hc.retry_fail_rate);
        hc.program_fail_rate =
            h->GetDoubleOr("program_fail_rate", hc.program_fail_rate);
        hc.gc_stall_fail_share =
            h->GetDoubleOr("gc_stall_fail_share", hc.gc_stall_fail_share);
      } else {
        arm.eval_health = h->AsBool();
      }
      arm.health.Validate();
    }
  }

  const Json* workload = merged.Get("workload");
  if (workload == nullptr || !workload->IsObject()) {
    throw std::runtime_error("campaign: arm \"" + name +
                             "\" has no workload object");
  }
  return arm;
}

}  // namespace

DeviceSectionSpec ResolveDeviceSection(const Json& merged) {
  DeviceSectionSpec out;

  const std::uint64_t device_bytes = BytesOf(merged, "device_bytes", 256 * kMiB);
  const auto page_size =
      static_cast<std::uint32_t>(BytesOf(merged, "page_size", 16 * kKiB));
  const double speed_ratio = merged.GetDoubleOr("speed_ratio", 2.0);
  const auto channels =
      static_cast<std::uint32_t>(merged.GetUintOr("channels", 0));
  // Shorter blocks shrink the GC/retirement granularity without touching
  // per-page program cost — wear scenarios use this to make small scaled
  // devices churn like big ones.
  const auto pages_per_block =
      static_cast<std::uint32_t>(merged.GetUintOr("pages_per_block", 0));

  nand::NandGeometry base_shape;  // defaults = the paper's Table 1 shape
  if (channels != 0) base_shape.channels = channels;
  if (pages_per_block != 0) {
    base_shape.pages_per_block = pages_per_block;
    // Every gate-stack layer must hold at least one page.
    if (base_shape.num_layers > pages_per_block) {
      base_shape.num_layers = pages_per_block;
    }
  }
  const ssd::FtlKind kind = ParseFtlKind(merged.GetStringOr("ftl", "conventional"));
  out.device = ssd::ScaledConfig(kind, device_bytes, page_size, speed_ratio,
                                 base_shape);
  out.device.timing_mode =
      ParseTimingMode(merged.GetStringOr("timing_mode", "queued"));
  out.device.ftl.gc_routing =
      ParseGcRouting(merged.GetStringOr("gc_routing", "inline"));
  out.device.ftl.write_frontiers =
      static_cast<std::uint32_t>(merged.GetUintOr("write_frontiers", 1));
  out.device.ftl.stripe_policy =
      ParseStripePolicy(merged.GetStringOr("stripe_policy", "round_robin"));
  if (const Json* ppb = merged.Get("ppb")) {
    out.device.ppb.vb_split =
        static_cast<std::uint32_t>(ppb->GetUintOr("vb_split", out.device.ppb.vb_split));
    out.device.ppb.max_open_fast_vbs = static_cast<std::uint32_t>(
        ppb->GetUintOr("max_open_fast_vbs", out.device.ppb.max_open_fast_vbs));
    out.device.ppb.migrate_on_update =
        ppb->GetBoolOr("migrate_on_update", out.device.ppb.migrate_on_update);
    out.device.ppb.migrate_on_gc =
        ppb->GetBoolOr("migrate_on_gc", out.device.ppb.migrate_on_gc);
  }
  out.device.Validate();

  if (const Json* h = merged.Get("host")) {
    out.host.num_queues =
        static_cast<std::uint32_t>(h->GetUintOr("num_queues", out.host.num_queues));
    out.host.queue_capacity = static_cast<std::uint32_t>(
        h->GetUintOr("queue_capacity", out.host.queue_capacity));
    out.host.device_slots = static_cast<std::uint32_t>(
        h->GetUintOr("device_slots", out.host.device_slots));
    out.host.gc_aging_limit = static_cast<std::uint32_t>(
        h->GetUintOr("gc_aging_limit", out.host.gc_aging_limit));
    out.host.write_aging_limit = static_cast<std::uint32_t>(
        h->GetUintOr("write_aging_limit", out.host.write_aging_limit));
  }
  out.host.qos = ParseQos(merged);
  out.host.Validate();

  const std::uint64_t prefill_pct = merged.GetUintOr("prefill_pct", 85);
  if (prefill_pct > 100) {
    throw std::runtime_error("campaign: prefill_pct must be <= 100, got " +
                             std::to_string(prefill_pct));
  }
  out.prefill_pct = static_cast<std::uint32_t>(prefill_pct);
  out.prefill_chunk_bytes = BytesOf(merged, "prefill_chunk", 256 * kKiB);

  // "error_model" arms the synthetic layer error model on the device
  // (device configuration: part of the snapshot shape key).
  if (const Json* em = merged.Get("error_model"); em != nullptr && !em->IsNull()) {
    out.device.model_read_errors = true;
    nand::ErrorModelConfig& m = out.device.error_model;
    m.base_rber = em->GetDoubleOr("base_rber", m.base_rber);
    m.layer_skew = em->GetDoubleOr("layer_skew", m.layer_skew);
    m.pe_scale = em->GetDoubleOr("pe_scale", m.pe_scale);
    m.codeword_bytes = static_cast<std::uint32_t>(
        em->GetUintOr("codeword_bytes", m.codeword_bytes));
    m.correctable_bits_per_codeword = static_cast<std::uint32_t>(
        em->GetUintOr("correctable_bits_per_codeword",
                      m.correctable_bits_per_codeword));
    m.Validate();
    out.device.error_model_seed =
        em->GetUintOr("seed", out.device.error_model_seed);
  }
  return out;
}

Json ArmSpec::ConfigSummary() const {
  Json summary;
  summary["name"] = name;
  summary["ftl"] = merged.GetStringOr("ftl", "conventional");
  summary["gc_routing"] = merged.GetStringOr("gc_routing", "inline");
  summary["timing_mode"] = merged.GetStringOr("timing_mode", "queued");
  summary["device_bytes"] = BytesOf(merged, "device_bytes", 256 * kMiB);
  summary["page_size"] = BytesOf(merged, "page_size", 16 * kKiB);
  summary["write_frontiers"] = merged.GetUintOr("write_frontiers", 1);
  summary["seed"] = seed;
  if (const Json* w = merged.Get("workload")) {
    summary["workload"] = *w;
  }
  if (const Json* em = merged.Get("error_model"); em != nullptr && !em->IsNull()) {
    summary["error_model"] = *em;
  }
  if (const Json* f = merged.Get("faults"); f != nullptr && !f->IsNull()) {
    summary["faults"] = *f;
    // As a string: the derived seed is a full 64-bit mix, beyond the 2^53
    // integers Json numbers (doubles) represent exactly.
    summary["fault_seed"] = std::to_string(fault_seed);
  }
  if (const Json* o = merged.Get("observability");
      o != nullptr && !o->IsNull()) {
    summary["observability"] = *o;
  }
  return summary;
}

Json MergePatch(const Json& base, const Json& patch) {
  if (!patch.IsObject() || !base.IsObject()) return patch;
  Json out = base;
  for (const auto& [key, value] : patch.AsObject()) {
    if (value.IsNull()) {
      out.AsObject().erase(key);
    } else if (const Json* existing = out.Get(key)) {
      Json merged = MergePatch(*existing, value);
      out.AsObject()[key] = std::move(merged);
    } else {
      out.AsObject()[key] = value;
    }
  }
  return out;
}

void SetJsonPath(Json& root, const std::string& path, const Json& value) {
  Json* node = &root;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string part = path.substr(start, dot - start);
    if (part.empty()) {
      throw std::runtime_error("campaign: empty segment in path \"" + path + "\"");
    }
    if (dot == std::string::npos) {
      (*node)[part] = value;
      return;
    }
    node = &(*node)[part];
    start = dot + 1;
  }
}

std::string JsonValueLabel(const Json& value) {
  if (value.IsString()) return value.AsString();
  return value.Dump();
}

CampaignSpec CampaignSpec::Parse(const std::string& json_text) {
  return Parse(Json::Parse(json_text));
}

CampaignSpec CampaignSpec::Parse(const Json& root) {
  if (!root.IsObject()) {
    throw std::runtime_error("campaign: spec must be a JSON object");
  }
  CampaignSpec spec;
  spec.name = root.GetStringOr("campaign", "campaign");
  spec.workers = static_cast<std::uint32_t>(root.GetUintOr("workers", 1));
  if (spec.workers == 0) {
    throw std::runtime_error("campaign: workers must be >= 1");
  }
  spec.share_prefill = root.GetBoolOr("share_prefill", true);

  Json defaults;
  if (const Json* d = root.Get("defaults")) {
    if (!d->IsObject()) {
      throw std::runtime_error("campaign: defaults must be an object");
    }
    defaults = *d;
  } else {
    defaults = Json(JsonObject{});
  }
  const std::uint64_t default_seed = defaults.GetUintOr("seed", 1);

  // Expand the grid into (path, value) assignment lists, cartesian product
  // in sorted-key odometer order (first key varies slowest).
  struct Axis {
    std::string path;
    JsonArray values;
  };
  std::vector<Axis> axes;
  if (const Json* grid = root.Get("grid")) {
    for (const auto& [path, values] : grid->AsObject()) {
      if (!values.IsArray() || values.AsArray().empty()) {
        throw std::runtime_error("campaign: grid axis \"" + path +
                                 "\" must be a non-empty array");
      }
      axes.push_back(Axis{path, values.AsArray()});
    }
  }

  std::vector<Json> explicit_arms;
  if (const Json* arms = root.Get("arms")) {
    for (const Json& a : arms->AsArray()) {
      if (!a.IsObject()) {
        throw std::runtime_error("campaign: every arms[] entry must be an object");
      }
      explicit_arms.push_back(a);
    }
  }
  if (explicit_arms.empty()) explicit_arms.emplace_back(JsonObject{});

  std::vector<std::size_t> odometer(axes.size(), 0);
  std::uint64_t index = 0;
  while (true) {
    // One grid combination: apply the axis assignments over the defaults.
    Json grid_patch = Json(JsonObject{});
    std::string grid_label;
    for (std::size_t i = 0; i < axes.size(); ++i) {
      SetJsonPath(grid_patch, axes[i].path, axes[i].values[odometer[i]]);
      if (!grid_label.empty()) grid_label += ",";
      grid_label += axes[i].path + "=" + JsonValueLabel(axes[i].values[odometer[i]]);
    }
    for (const Json& arm_patch : explicit_arms) {
      Json merged = MergePatch(defaults, grid_patch);
      merged = MergePatch(merged, arm_patch);
      std::string name = arm_patch.GetStringOr("name", "");
      if (!name.empty() && !grid_label.empty()) {
        name += ":" + grid_label;
      } else if (name.empty()) {
        name = grid_label.empty() ? "arm" + std::to_string(index) : grid_label;
      }
      // A seed set anywhere in the overrides pins the arm; otherwise arms
      // decorrelate via defaults.seed + index.
      const bool seed_overridden =
          grid_patch.Get("seed") != nullptr || arm_patch.Get("seed") != nullptr;
      spec.arms.push_back(
          ResolveArm(merged, index, name, default_seed, seed_overridden));
      ++index;
    }
    // Advance the odometer (last axis fastest).
    std::size_t pos = axes.size();
    while (pos > 0) {
      --pos;
      if (++odometer[pos] < axes[pos].values.size()) break;
      odometer[pos] = 0;
      if (pos == 0) return spec;
    }
    if (axes.empty()) return spec;
  }
}

}  // namespace ctflash::campaign
