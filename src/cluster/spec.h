// ClusterSpec: a JSON-declared storage-cluster scenario.
//
// The spec reads like a campaign spec (campaign/spec.h) with the device
// template in `device` resolved through the same machinery, plus the
// cluster-level sections:
//
//   {
//     "cluster": "device-loss-rebalance",
//     "workers": 4,
//     "fleet": {"devices": 8, "spares": 1},
//     "router": {"shards": 128, "replicas": 2, "vnodes": 64},
//     "device": {"device_bytes": "64MiB", "ftl": "conventional",
//                "prefill_pct": 80},
//     "users": {"count": 1000000, "zipf_theta": 0.9},
//     "workload": {"rate_iops": 30000, "read_fraction": 0.9,
//                  "request_bytes": "16KiB", "epochs": 6,
//                  "epoch_us": 250000, "timeout_us": 1000000},
//     "qos": {"user_weight": 8, "rebuild_weight": 1},
//     "rebalance": {"policy": "on_failure", "fail_on_lost_pages": 1,
//                   "migration_chunk": "64KiB", "shard_bytes": "auto",
//                   "rebuild_epochs": 0, "rebuild_bytes_per_sec": 4194304},
//     "faults": [{"device": 3, "kind": "channel", "at_us": 500000}],
//     "seed": 7
//   }
//
// Every device in the fleet shares one shape, so the whole fleet restores
// from a single aged prefill snapshot.  `faults` arms nand::FaultInjector
// schedules on individual devices (kinds: "die" = first die, "channel" =
// first channel, "device" = every channel); `at_us` is relative to the
// measured run's start (the prefill-end clock).  The rebalance policy
// "none" is the experimental control: the router never reacts to failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "campaign/spec.h"
#include "cluster/shard_router.h"
#include "ftl/flash_target.h"
#include "host/host_interface.h"
#include "nand/fault_plan.h"
#include "obs/health.h"
#include "obs/slo.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash::cluster {

using campaign::Json;

/// QoS tenant ids every fleet device is configured with: user traffic
/// outweighs rebuild traffic so migration rides along without trampling
/// serving latency.
inline constexpr qos::TenantId kUserTenant = 0;
inline constexpr qos::TenantId kRebuildTenant = 1;

/// One scheduled device failure or degradation.  Kinds "die", "channel"
/// and "device" schedule hard loss at `at_us`; kind "wear" arms a
/// progressive media ramp (verify-fail probabilities retire blocks until
/// the spare pool is gone, RBER knobs inflate the retry ladder) — the
/// scenario the on_observed policy evacuates BEFORE the eventual death.
struct DeviceFaultSpec {
  DeviceId device = 0;
  std::string kind = "channel";  ///< "die" | "channel" | "device" | "wear"
  Us at_us = 0;                  ///< relative to the measured run's start
  // "wear" ramp knobs (nand::FaultPlanConfig passthrough).
  double program_fail_prob = 0.0;
  double erase_fail_prob = 0.0;
  double read_disturb_per_read = 0.0;
  double retention_rber_multiplier = 1.0;
};

enum class RebalancePolicy {
  kOnFailure = 0,   ///< director remaps + rebuilds on detected failure
  kNone = 1,        ///< control: router never reacts
  kOnObserved = 2,  ///< on_failure + predictive drain on health/SLO signals
};

const char* RebalancePolicyName(RebalancePolicy policy);

struct ClusterSpec {
  std::string name = "cluster";
  std::uint32_t workers = 1;
  std::uint64_t seed = 1;

  RouterConfig router;  ///< num_devices/spare_devices filled from "fleet"

  /// Shared device template (campaign-style device section).
  campaign::DeviceSectionSpec device;
  Json device_json;  ///< the raw "device" object, echoed in reports

  // Users and traffic.
  std::uint64_t user_count = 1'000'000;
  double zipf_theta = 0.9;         ///< user-popularity skew; 0 = uniform
  double rate_iops = 20'000.0;     ///< cluster-wide open-loop arrival rate
  double read_fraction = 0.9;
  std::uint64_t request_bytes = 16 * kKiB;
  std::uint32_t epochs = 6;
  Us epoch_us = 250'000;
  /// Latency charged to a request routed at (or stranded on) a dead
  /// device: the cluster-level SLA timeout.
  Us timeout_us = 1'000'000;

  // Per-device QoS weights (tenant tables on every fleet member).
  std::uint32_t user_weight = 8;
  std::uint32_t rebuild_weight = 1;

  // Rebalancing.
  RebalancePolicy policy = RebalancePolicy::kOnFailure;
  /// Mark a device failed once its run-relative lost-page count reaches
  /// this (or it dies on an unrecoverable media error).
  std::uint64_t fail_on_lost_pages = 1;
  /// Bytes re-replicated per displaced shard; 0 = auto (the device's
  /// prefilled bytes / num_shards, i.e. the shard's fair share).
  std::uint64_t shard_bytes = 0;
  std::uint64_t migration_chunk_bytes = 64 * kKiB;
  /// Epochs the rebuild is paced over (rebuild I/O swamping the fleet in
  /// one epoch would trade the SLA for repair speed).  0 = every epoch
  /// left after detection.
  std::uint32_t rebuild_epochs = 0;
  /// Token-bucket throughput cap on the rebuild tenant (bytes/s; applied
  /// per device at admission).  0 = uncapped.  Scheduling weight alone
  /// cannot protect the serving tail from rebuild-driven GC on the
  /// adopting device — capping admission can.
  double rebuild_bytes_per_sec = 0.0;

  /// Observed-policy thresholds ({"rebalance": {"health": {...},
  /// "slo": {...}}}): the director feeds every device's counters into an
  /// obs::HealthMonitor each epoch and drains a device once it reports
  /// failing — or once its per-epoch read tail burns through the SLO.
  obs::HealthConfig health;
  obs::SloConfig slo;  ///< slo.target_us == 0 leaves the SLO leg off

  std::vector<DeviceFaultSpec> faults;

  /// Observability ({"observability": {"phases": true}}): every fleet
  /// device gets an aggregate-only obs::Tracer and the result carries
  /// per-epoch phase breakdowns merged across the fleet.  Forced on by
  /// policy on_observed (the health monitor's GC-stall signal reads the
  /// tracer).
  bool trace_phases = false;

  static ClusterSpec Parse(const std::string& json_text);
  static ClusterSpec Parse(const Json& root);
  static ClusterSpec Parse(const char* json_text) {
    return Parse(std::string(json_text));
  }

  /// Deterministic config echo for reports.
  Json ConfigSummary() const;

  /// The fault plan for one device (empty plans for unlisted devices) and
  /// the shared handling policy.
  nand::FaultPlanConfig FaultPlanFor(DeviceId device, Us run_start_us) const;
  ftl::FaultHandlingConfig fault_handling;

  void Validate() const;
};

}  // namespace ctflash::cluster
