// The conventional page-mapping FTL baseline (the paper's comparator).
//
// Active blocks are filled page-by-page in sequential order regardless of
// data hotness — pages of different layer speeds are handed out blindly,
// which is exactly the behaviour the paper's Section 2.2 motivates against.
// Host writes and GC relocations run as two independent write streams
// through the die-striped WriteAllocator: with `write_frontiers = 1` each
// stream fills one globally active block (the seed behavior, bit-for-bit);
// with more frontiers consecutive pages stripe across dies and overlap
// their program times under TimingMode::kQueued.
#pragma once

#include <cstdint>
#include <optional>

#include "ftl/block_manager.h"
#include "ftl/ftl_base.h"
#include "ftl/mapping_table.h"
#include "ftl/write_allocator.h"

namespace ctflash::ftl {

class ConventionalFtl : public FtlBase {
 public:
  ConventionalFtl(FlashTarget& target, const FtlConfig& config);

  std::string Name() const override { return "conventional-ftl"; }

  std::optional<Us> ProbeWriteFreeAt() const override {
    // A growable stream can open a frontier on a fresh die, so the write is
    // startable now (nullopt); only a maxed-out stream is gated by its
    // frontier dies.  Keeps reads from starving queued writes when the
    // allocator could serve them immediately.
    if (walloc_.CanGrow(kHostStream)) return std::nullopt;
    return walloc_.EarliestFrontierFreeAt(kHostStream);
  }

  /// WriteAllocator stream ids of the two write contexts.
  static constexpr std::uint32_t kHostStream = 0;
  static constexpr std::uint32_t kGcStream = 1;

  const WriteAllocator& write_allocator() const { return walloc_; }

  /// Invariant probe for property tests: every mapped lpn points at a
  /// programmed page, valid counters match the mapping, free counts agree.
  bool CheckInvariants() const;

 protected:
  Us DoRead(Lpn lpn_first, std::uint32_t pages, std::uint64_t offset_bytes,
            std::uint64_t size_bytes, Us earliest) override;
  Us DoWrite(Lpn lpn_first, std::uint32_t pages, std::uint64_t request_bytes,
             Us earliest) override;

  /// One GC relocation (dual-use: each iteration of the base inline loop,
  /// and each scheduled kGcCopy transaction): GC-stream allocation, mapping
  /// update, CopyPage timing.
  Us RelocatePageForGc(Lpn lpn, Ppn src, BlockId victim, Us earliest) override;

  void SaveVariantState(util::StateWriter& w) const override {
    w.Tag("CFTL");
    walloc_.SaveState(w);
  }
  void LoadVariantState(util::StateReader& r) override {
    r.ExpectTag("CFTL");
    walloc_.LoadState(r);
  }

 private:
  /// Next programmable ppn on the host or GC write stream, opening new
  /// frontier blocks when needed.  Never runs GC.  Host and GC traffic use
  /// separate streams (standard dual-stream design); this also prevents the
  /// GC-burst/host-write phasing from accidentally sorting cold data into
  /// top-layer pages.
  Ppn AllocatePage(bool for_gc);

  /// Programs `ppn` (already allocated on the matching stream),
  /// re-allocating on program failure until a program verifies (bounded by
  /// FlashTarget::MaxProgramAttempts; throws MediaError on exhaustion).
  /// Returns the page that finally took the data and its completion time.
  struct ProgramOutcome {
    Ppn ppn;
    Us done;
  };
  ProgramOutcome ProgramWithRetry(Ppn ppn, bool for_gc, Us earliest);

  /// Writes one logical page (mapping update + program).
  Us WriteOnePage(Lpn lpn, Us earliest);

  WriteAllocator walloc_;  ///< streams: {kHostStream, kGcStream}
};

}  // namespace ctflash::ftl
