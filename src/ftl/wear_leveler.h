// Static wear leveling.
//
// The paper scopes endurance out ("many excellent wear-leveling designs can
// be easily integrated"); this module is that integration point.  Classic
// threshold-triggered static wear leveling: when the P/E spread between the
// most- and least-worn eligible blocks exceeds `delta_threshold`, the GC
// victim is overridden to the least-worn FULL block (which holds the
// longest-resting, coldest data), forcing its content to rotate onto younger
// blocks.  Both FTL variants consult the same policy, so wear behaviour does
// not confound the PPB comparison.
#pragma once

#include <cstdint>
#include <optional>

#include "ftl/block_manager.h"
#include "nand/device.h"
#include "util/types.h"

namespace ctflash::ftl {

struct WearLevelerConfig {
  /// 0 disables static wear leveling (the paper's configuration).
  std::uint32_t delta_threshold = 0;
  /// Erases between two override swaps.  Without a cooldown the override
  /// would fire on every GC pass while the spread is high, turning GC into
  /// full-valid cold-block recycling and inflating write amplification.
  std::uint32_t cooldown_erases = 8;

  bool Enabled() const { return delta_threshold > 0; }
};

class WearLeveler {
 public:
  explicit WearLeveler(const WearLevelerConfig& config) : config_(config) {}

  /// Returns the least-worn FULL block when the device's P/E spread exceeds
  /// the threshold and the cooldown has elapsed, std::nullopt otherwise
  /// (caller falls back to greedy victim selection).
  std::optional<BlockId> MaybeOverrideVictim(const BlockManager& blocks,
                                             const nand::NandDevice& nand);

  /// Must be called once per block erase so the cooldown advances.
  void OnErase() { ++erases_; }

  /// Max P/E minus min P/E across all non-bad blocks.
  static std::uint32_t WearSpread(const nand::NandDevice& nand);

  const WearLevelerConfig& config() const { return config_; }
  std::uint64_t override_count() const { return overrides_; }

  void SaveState(util::StateWriter& w) const {
    w.Tag("WEAR");
    w.PutU64(overrides_);
    w.PutU64(erases_);
    w.PutU64(last_override_erase_);
  }
  void LoadState(util::StateReader& r) {
    r.ExpectTag("WEAR");
    overrides_ = r.GetU64();
    erases_ = r.GetU64();
    last_override_erase_ = r.GetU64();
  }

 private:
  WearLevelerConfig config_;
  std::uint64_t overrides_ = 0;
  std::uint64_t erases_ = 0;
  std::uint64_t last_override_erase_ = 0;
};

}  // namespace ctflash::ftl
