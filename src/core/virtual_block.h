// Virtual blocks: splitting each physical block into speed-graded slices
// (paper Sections 3.3.1-3.3.3, Figures 7-9, Algorithm 1).
//
// A physical block of P pages is cut into `split_count` slices of P/S
// consecutive pages.  Because page index tracks gate-stack depth, slice 0
// (pages [0, P/S)) holds the slowest pages and slice S-1 the fastest.
// Slices [0, S/2) form the SLOW class, [S/2, S) the FAST class; for the
// paper's S = 2 this is exactly {VB 2n slow, VB 2n+1 fast}.
//
// Rules enforced here:
//  * pairing     — all slices of one physical block serve the same area
//                  (hot or cold), so GC victims are never mixed-hotness;
//  * write order — slice i+1 becomes allocatable only after slice i is
//                  full (NAND in-block sequential programming);
//  * allocation  — when the preferred class list has no free space the
//                  write is DIVERTED to the other class (Fig. 10(b)/11(b)
//                  rules I/II, Algorithm 1) so physical blocks never end up
//                  half-full/half-empty; a new physical block is claimed
//                  when neither list can serve the write (rule III), or —
//                  bounded by `max_open_fast_vbs` — when slow-class demand
//                  would otherwise pollute an open fast VB (the Fig. 8
//                  reading, where VB2 joins the hot list while VB1 is still
//                  filling).
//
// Each area owns ONE fast-class VB list (exactly the paper's iron-hot/cold
// VB lists).  Slow-class VB lists are kept per write stream — host writes
// and GC relocations fill separate physical blocks — because survivors and
// fresh data age differently (the conventional baseline enjoys the same
// separation from its dual-stream design).  A block opened by either stream
// still belongs to one area only, so the pairing invariant is untouched.
//
// Die striping (VbStripingConfig): each (area, class, stream) list is a
// write-frontier set in the ftl::WriteAllocator sense — up to
// `write_frontiers` open blocks, slow-list growth restricted to dies the
// list does not cover yet, and the next page taken from the list member the
// shared DieStriper policy picks.  Hotness-directed placement is untouched
// (the list a write goes to is decided exactly as before); only WHICH open
// block of that list programs next changes, so consecutive pages of one
// stream overlap their program times across dies.  `write_frontiers = 1`
// (the default) reproduces the seed front-of-list behavior bit-for-bit.
//
// The manager owns no NAND state; it hands out PPNs in program order and the
// caller (PpbFtl) programs them immediately.  BlockManager supplies the free
// physical block list ("arranged according to their original physical block
// number") and receives MarkFull notifications for GC.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "core/hotness.h"
#include "ftl/block_manager.h"
#include "ftl/write_allocator.h"
#include "util/types.h"

namespace ctflash::core {

/// Die-striping knobs for the virtual-block lists.  The callbacks are
/// required when write_frontiers > 1 (they come from NandGeometry::DieOfBlock
/// and FlashTarget::DieFreeAt); the defaults disable striping.
struct VbStripingConfig {
  ftl::WriteAllocatorConfig alloc;
  std::function<std::uint64_t(BlockId)> die_of;
  std::function<Us(BlockId)> die_free_at;
  /// Device die count; caps list growth (beyond it every die is covered
  /// and growth attempts would only rescan the free list).
  std::uint64_t total_dies = 0;
  /// Free blocks kept in reserve by HOST-list growth: lists grow beyond
  /// their first open block only while the free pool exceeds this.  The
  /// FTL passes gc_threshold_low — the GC trigger — so growth never brings
  /// GC forward yet still works in GC steady state (GC stops reclaiming as
  /// soon as the pool climbs past the trigger, so any reserve above it
  /// would shut striping off for good after the first pool drain).
  std::uint64_t claim_reserve_blocks = 0;
  /// Reserve for the GC-relocation lists: they allocate only while GC is
  /// draining the pool to its minimum, so they need a smaller cushion
  /// (their claims are repaid by the victim erase).
  std::uint64_t gc_claim_reserve_blocks = 2;
  /// Hard cap on the total open-block population (all lists, both areas)
  /// for GROWTH claims; 0 = no cap.  PPB parks many open blocks (4 slow
  /// lists x frontiers + the fast lists), and on a small over-provisioned
  /// pool an unchecked population can absorb the entire spare space: every
  /// FULL block is then 100 % valid and GC livelocks relocating data in
  /// circles.  The FTL passes spare_blocks - gc_threshold_low - 2 so FULL
  /// blocks always hold invalid pages for GC to harvest.
  std::uint64_t max_open_blocks = 0;
};

struct VbAllocation {
  Ppn ppn = kInvalidPpn;
  /// Slice the page belongs to.
  std::uint32_t slice = 0;
  /// True when the page is in the fast class ([S/2, S)).
  bool fast_class = false;
  /// True when the write was diverted away from the requested class.
  bool diverted = false;
  /// True when a fresh physical block had to be claimed (rule III).
  bool new_block = false;
};

class VirtualBlockManager {
 public:
  /// `pages_per_block` must be divisible by `split_count`; `split_count`
  /// must be an even number >= 2 so both speed classes exist.
  /// `max_open_fast_vbs` bounds the open fast-class pool per area (see file
  /// header); 0 recovers the strict Algorithm-1 literal reading, which
  /// degenerates to round-robin placement under demand imbalance — kept for
  /// ablation.
  VirtualBlockManager(ftl::BlockManager& blocks, std::uint32_t pages_per_block,
                      std::uint32_t split_count,
                      std::uint32_t max_open_fast_vbs = 4,
                      VbStripingConfig striping = {});

  /// Hands out the next programmable page for `area` with the class
  /// preference of `level` (WantsFastPages), applying divert rules.
  /// `gc_stream` selects the area's GC-relocation slow list (see file
  /// header).  Returns std::nullopt when a new block is needed but the free
  /// list is empty (caller must garbage-collect first).
  std::optional<VbAllocation> AllocatePage(Area area, HotnessLevel level,
                                           bool gc_stream = false);

  /// Must be called when a block was erased (after GC) so its area tag and
  /// fill pointer reset.  The BlockManager free list is maintained by the
  /// caller via BlockManager::Release.
  void OnBlockErased(BlockId block);

  // --- queries -------------------------------------------------------------
  Area AreaOfBlock(BlockId block) const;
  /// Pages already handed out in this block (== P when full).
  std::uint32_t FillOf(BlockId block) const;
  std::uint32_t split_count() const { return split_count_; }
  std::uint32_t pages_per_slice() const { return pages_per_slice_; }
  std::uint32_t SliceOfPage(std::uint32_t page_in_block) const {
    return page_in_block / pages_per_slice_;
  }
  bool IsFastClassSlice(std::uint32_t slice) const {
    return slice >= split_count_ / 2;
  }
  bool IsFastClassPage(std::uint32_t page_in_block) const {
    return IsFastClassSlice(SliceOfPage(page_in_block));
  }

  /// Number of open (partially filled) blocks currently parked in the lists
  /// of an area (host + GC slow lists + the shared fast list).
  std::size_t OpenBlockCount(Area area) const;

  /// Earliest die availability across the HOST-stream frontier blocks (both
  /// areas' slow lists plus the shared fast lists) — the write dispatch
  /// hint behind PpbFtl::ProbeWriteFreeAt.  std::nullopt when no host
  /// frontier is open or striping callbacks were not configured.
  std::optional<Us> EarliestHostFrontierFreeAt() const;

  /// Distinct dies the GC-relocation stream has ever programmed.
  std::size_t GcDiesTouched() const { return gc_dies_.size(); }

  /// Open blocks currently in one slow list (striping probes: a striped
  /// stream should hold several concurrently, not one at a time).
  std::size_t SlowListSize(Area area, bool gc_stream) const {
    return slow_lists_[SlowListIndex(area, gc_stream)].size();
  }

  /// Structural invariants: list members are open blocks of the right area
  /// whose current fill slice matches the list's class; fill pointers are
  /// consistent.  O(blocks).
  bool CheckInvariants() const;

  /// Serializes per-block area/fill/home tags, every VB list's order, the
  /// growth memos, GC die coverage, and the striper rotation anchors.
  /// LoadState throws when the block count mismatches.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  /// Slow-list index: {hot-host, cold-host, hot-gc, cold-gc}.
  static constexpr std::size_t kSlowListCount = 4;
  /// Striper index space: slow lists 0..3, then the two fast lists.
  static constexpr std::size_t kStriperCount = kSlowListCount + 2;
  static std::size_t SlowListIndex(Area area, bool gc_stream);
  static std::size_t AreaIndex(Area area);

  bool Striping() const { return striping_.alloc.write_frontiers > 1; }

  /// Per-list growth cap: min(write_frontiers, total_dies).
  std::size_t EffectiveFrontiers() const {
    const std::uint64_t dies =
        striping_.total_dies == 0 ? 1 : striping_.total_dies;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(striping_.alloc.write_frontiers, dies));
  }

  /// Claims a fresh block for (area, stream); returns nullopt if none free.
  /// `uncovered_die_only` restricts the claim to dies the target slow list
  /// does not cover yet (frontier growth; never set on the must-claim
  /// rule III path).
  std::optional<BlockId> ClaimNewBlock(Area area, std::size_t slow_list,
                                       bool uncovered_die_only = false);

  /// Which member of `list` programs next: front() without striping, the
  /// DieStriper's pick with it.
  std::size_t PickIndex(std::size_t striper, const std::deque<BlockId>& list);

  /// Post-write bookkeeping: advances the fill pointer, moves the block
  /// between lists at slice boundaries, marks it full at the end.
  void AdvanceFill(BlockId block, std::deque<BlockId>& current_list);

  ftl::BlockManager& blocks_;
  std::uint32_t pages_per_block_;
  std::uint32_t split_count_;
  std::uint32_t pages_per_slice_;
  std::uint32_t max_open_fast_vbs_;
  VbStripingConfig striping_;
  std::vector<ftl::DieStriper> stripers_;  ///< kStriperCount when striping
  std::set<std::uint64_t> gc_dies_;        ///< dies the GC stream programmed
  /// Growth-failure memo per slow list: a failed uncovered-die scan would
  /// fail identically until the free list or the list changes — skip the
  /// rescan (keyed on BlockManager::FreeListGeneration, exact).
  static constexpr std::uint64_t kNoGrowthFailure = ~0ull;
  std::uint64_t growth_fail_gen_[kSlowListCount] = {
      kNoGrowthFailure, kNoGrowthFailure, kNoGrowthFailure, kNoGrowthFailure};
  std::size_t growth_fail_size_[kSlowListCount] = {0, 0, 0, 0};
  std::vector<Area> area_of_block_;
  std::vector<std::uint32_t> fill_;       ///< next page index per block
  std::vector<std::uint8_t> slow_home_;   ///< slow-list index a block returns to
  std::deque<BlockId> slow_lists_[kSlowListCount];
  std::deque<BlockId> fast_lists_[2];     ///< shared per area: {hot, cold}
};

}  // namespace ctflash::core
