// Byte-level state serialization for device snapshots.
//
// StateWriter/StateReader implement a tiny fixed-width little-endian codec
// with four-character section tags.  Every state-bearing component exposes
// `SaveState(StateWriter&) const` / `LoadState(StateReader&)`; the snapshot
// envelope (campaign/snapshot.h) adds versioning and a CRC on top.  The
// format is deliberately dumb: no varints, no back-references — snapshots
// are ephemeral experiment artifacts, and byte-for-byte determinism of the
// encoding is itself a tested property (identical device state must always
// produce identical bytes).
//
// Readers throw std::runtime_error with a "snapshot:" prefix on underrun,
// tag mismatch, or trailing bytes so corrupt inputs fail loudly instead of
// silently mis-restoring a device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctflash::util {

class StateWriter {
 public:
  /// Appends a four-character section tag (e.g. "MAPT").
  void Tag(const char (&tag)[5]);

  void PutU8(std::uint8_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v);
  /// IEEE-754 bit pattern; exact round-trip.
  void PutDouble(double v);
  void PutBool(bool v);
  /// Length-prefixed (u64) raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const void* data, std::size_t n);

  /// Length-prefixed u64 sequence (vector/deque/array of uint64-convertible).
  template <typename Container>
  void PutU64Seq(const Container& c) {
    PutU64(static_cast<std::uint64_t>(c.size()));
    for (const auto& v : c) PutU64(static_cast<std::uint64_t>(v));
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class StateReader {
 public:
  StateReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit StateReader(const std::vector<std::uint8_t>& bytes)
      : StateReader(bytes.data(), bytes.size()) {}

  /// Consumes and checks a section tag; throws on mismatch naming both the
  /// expected and found tag.
  void ExpectTag(const char (&tag)[5]);

  std::uint8_t GetU8();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  std::int64_t GetI64();
  double GetDouble();
  bool GetBool();
  std::string GetString();
  void GetBytes(void* out, std::size_t n);

  /// Reads a u64 count followed by that many u64 values.
  std::vector<std::uint64_t> GetU64Seq();

  /// Reads the count of a length-prefixed sequence, validating it against
  /// the number of u64 payload bytes remaining (cheap sanity bound).
  std::uint64_t GetCount();

  std::size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// Throws when trailing bytes remain (truncation/corruption guard).
  void ExpectEnd() const;

 private:
  void Need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t Crc32(const std::uint8_t* data, std::size_t n);

}  // namespace ctflash::util
