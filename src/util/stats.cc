#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ctflash::util {

void RunningMoments::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningMoments::Reset() { *this = RunningMoments{}; }

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

namespace {
int BucketOf(std::uint64_t value) {
  if (value == 0) return 0;
  return std::bit_width(value) - 1;
}
}  // namespace

void LogHistogram::Add(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(BucketOf(value))]++;
  ++count_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

void LogHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
}

double LogHistogram::Quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Quantile: q outside [0,1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double n = static_cast<double>(buckets_[b]);
    if (cum + n >= target && n > 0) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b);
      const double hi = std::ldexp(1.0, b + 1);
      const double frac = n == 0.0 ? 0.0 : (target - cum) / n;
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  return std::ldexp(1.0, kBuckets);  // unreachable in practice
}

void LatencyStats::Add(Us latency_us) {
  moments_.Add(static_cast<double>(latency_us));
  hist_.Add(latency_us < 0 ? 0u : static_cast<std::uint64_t>(latency_us));
}

void LatencyStats::Merge(const LatencyStats& other) {
  moments_.Merge(other.moments_);
  hist_.Merge(other.hist_);
}

void LatencyStats::Reset() {
  moments_.Reset();
  hist_.Reset();
}

std::string LatencyStats::Summary(const std::string& label) const {
  std::ostringstream os;
  os << label << ": n=" << count() << " total=" << total_seconds() << "s"
     << " mean=" << mean_us() << "us"
     << " p50=" << p50_us() << "us"
     << " p99=" << p99_us() << "us"
     << " max=" << max_us() << "us";
  return os.str();
}

}  // namespace ctflash::util
