#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace ctflash::sim {

std::uint64_t EventQueue::ScheduleAt(Us at, EventCallback cb) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue::ScheduleAt: time in the past");
  }
  if (!cb) throw std::invalid_argument("EventQueue::ScheduleAt: null callback");
  const std::uint64_t handle = next_handle_++;
  heap_.push(Entry{at, next_seq_++, handle, std::move(cb)});
  ++live_events_;
  return handle;
}

std::uint64_t EventQueue::ScheduleAfter(Us delay, EventCallback cb) {
  if (delay < 0) {
    throw std::invalid_argument("EventQueue::ScheduleAfter: negative delay");
  }
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool EventQueue::Cancel(std::uint64_t handle) {
  if (handle == 0 || handle >= next_handle_) return false;
  if (IsCancelled(handle)) return false;
  // We cannot remove from the heap lazily-free; mark and skip on pop.
  cancelled_.push_back(handle);
  if (live_events_ == 0) return false;
  --live_events_;
  return true;
}

bool EventQueue::IsCancelled(std::uint64_t handle) const {
  return std::find(cancelled_.begin(), cancelled_.end(), handle) !=
         cancelled_.end();
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    // Move the entry out instead of copying: the std::function payload owns
    // heap storage, and this pop is the hottest line of the simulator.
    // Mutating top() is safe because pop() immediately discards the slot.
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (IsCancelled(top.handle)) {
      cancelled_.erase(
          std::find(cancelled_.begin(), cancelled_.end(), top.handle));
      continue;
    }
    now_ = top.at;
    --live_events_;
    top.cb(now_);
    return true;
  }
  return false;
}

std::uint64_t EventQueue::RunToCompletion() {
  std::uint64_t fired = 0;
  while (Step()) ++fired;
  return fired;
}

std::uint64_t EventQueue::RunUntil(Us deadline) {
  std::uint64_t fired = 0;
  while (!heap_.empty()) {
    if (heap_.top().at > deadline) break;
    if (Step()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace ctflash::sim
