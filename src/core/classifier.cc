#include "core/classifier.h"

#include <stdexcept>

namespace ctflash::core {

SizeCheckClassifier::SizeCheckClassifier(std::uint64_t threshold_bytes)
    : threshold_bytes_(threshold_bytes) {
  if (threshold_bytes == 0) {
    throw std::invalid_argument("SizeCheckClassifier: threshold must be > 0");
  }
}

bool SizeCheckClassifier::IsHotWrite(std::uint64_t /*offset_bytes*/,
                                     std::uint64_t size_bytes) const {
  return size_bytes < threshold_bytes_;
}

std::string SizeCheckClassifier::Name() const {
  return "size-check<" + std::to_string(threshold_bytes_) + "B";
}

std::unique_ptr<FirstStageClassifier> MakeSizeCheckClassifier(
    std::uint64_t threshold_bytes) {
  return std::make_unique<SizeCheckClassifier>(threshold_bytes);
}

}  // namespace ctflash::core
