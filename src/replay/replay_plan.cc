#include "replay/replay_plan.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ctflash::replay {

const char* RemapPolicyName(RemapPolicy policy) {
  switch (policy) {
    case RemapPolicy::kNone: return "none";
    case RemapPolicy::kWrap: return "wrap";
    case RemapPolicy::kLinearScale: return "linear-scale";
    case RemapPolicy::kHashScatter: return "hash-scatter";
  }
  return "?";
}

void RemapConfig::Validate() const {
  if (policy == RemapPolicy::kNone) return;
  if (alignment_bytes == 0) {
    throw std::invalid_argument("RemapConfig: alignment_bytes must be > 0");
  }
  if (footprint_bytes < alignment_bytes) {
    throw std::invalid_argument(
        "RemapConfig: footprint_bytes must hold at least one alignment unit");
  }
}

namespace {
/// splitmix64 finalizer: a full-avalanche 64-bit mix, the same primitive
/// util::Xoshiro256StarStar seeds from.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

bool RemapRecord(const RemapConfig& config, trace::TraceRecord& record) {
  if (config.policy == RemapPolicy::kNone) return record.size_bytes > 0;
  const std::uint64_t align = config.alignment_bytes;
  const std::uint64_t units = config.footprint_bytes / align;
  const std::uint64_t unit = record.offset_bytes / align;
  const std::uint64_t intra = record.offset_bytes % align;

  std::uint64_t new_unit = 0;
  switch (config.policy) {
    case RemapPolicy::kWrap:
      new_unit = unit % units;
      break;
    case RemapPolicy::kLinearScale: {
      if (config.source_span_bytes == 0) {
        throw std::invalid_argument(
            "RemapRecord: kLinearScale needs source_span_bytes (profile the "
            "trace or set it explicitly)");
      }
      // Scale in the unit domain with a double (spans can overflow the
      // 64-bit product); clamp into range for offsets at/past the span.
      const std::uint64_t source_units =
          (config.source_span_bytes + align - 1) / align;
      const double scaled = static_cast<double>(unit) *
                            static_cast<double>(units) /
                            static_cast<double>(source_units);
      new_unit = static_cast<std::uint64_t>(scaled);
      if (new_unit >= units) new_unit %= units;
      break;
    }
    case RemapPolicy::kHashScatter:
      new_unit = Mix64(unit ^ config.hash_seed) % units;
      break;
    case RemapPolicy::kNone:
      break;  // unreachable
  }

  record.offset_bytes = config.base_bytes + new_unit * align + intra;
  // Footprint clipping: the request must end inside [base, base+footprint).
  const std::uint64_t end = config.base_bytes + config.footprint_bytes;
  if (record.offset_bytes >= end) return false;
  if (record.offset_bytes + record.size_bytes > end) {
    record.size_bytes = end - record.offset_bytes;
  }
  return record.size_bytes > 0;
}

void TimeWarpConfig::Validate() const {
  if (!(acceleration > 0.0)) {
    throw std::invalid_argument("TimeWarpConfig: acceleration must be > 0");
  }
  if (target_iops < 0.0) {
    throw std::invalid_argument("TimeWarpConfig: target_iops must be >= 0");
  }
  if (start_offset_us < 0) {
    throw std::invalid_argument("TimeWarpConfig: start_offset_us must be >= 0");
  }
}

void TimeWarpConfig::ResolveRateTarget(std::uint64_t records, Us duration_us) {
  if (target_iops <= 0.0) return;
  if (records == 0) {
    throw std::invalid_argument("ResolveRateTarget: empty source");
  }
  // A zero-duration source (all arrivals at t=0) is already infinitely
  // fast; leave it unwarped.
  if (duration_us <= 0) {
    acceleration = 1.0;
  } else {
    const double native_iops = static_cast<double>(records) * 1e6 /
                               static_cast<double>(duration_us);
    acceleration = target_iops / native_iops;
  }
  target_iops = 0.0;  // resolved
}

Us TimeWarpConfig::Warp(Us ts) const {
  return start_offset_us +
         static_cast<Us>(std::llround(static_cast<double>(ts) / acceleration));
}

bool FilterConfig::Accepts(const trace::TraceRecord& record) const {
  if (record.op == trace::OpType::kRead ? !keep_reads : !keep_writes) {
    return false;
  }
  if (record.size_bytes < min_size_bytes ||
      record.size_bytes > max_size_bytes) {
    return false;
  }
  if (record.offset_bytes + record.size_bytes <= offset_lo_bytes ||
      record.offset_bytes >= offset_hi_bytes) {
    return false;
  }
  if (max_time_us > 0 && record.timestamp_us > max_time_us) return false;
  return true;
}

std::uint32_t ReplayPlan::AddSource(std::unique_ptr<TraceSource> source,
                                    const SourceOptions& options) {
  if (source == nullptr) {
    throw std::invalid_argument("ReplayPlan: null source");
  }
  options.remap.Validate();
  options.warp.Validate();
  PlanSource src;
  src.source = std::move(source);
  src.options = options;
  if (src.options.name.empty()) {
    src.options.name = "source" + std::to_string(sources_.size());
  }
  src.counters.name = src.options.name;
  sources_.push_back(std::move(src));
  return static_cast<std::uint32_t>(sources_.size() - 1);
}

void ReplayPlan::Advance(PlanSource& src, std::uint32_t index) {
  src.head.reset();
  auto& counters = src.counters;
  const auto& opt = src.options;
  while (true) {
    if (opt.filter.max_records > 0 &&
        counters.emitted >= opt.filter.max_records) {
      return;
    }
    auto record = src.source->Next();
    if (!record) return;
    counters.pulled++;
    if (!opt.filter.Accepts(*record)) {
      counters.filtered++;
      continue;
    }
    trace::TraceRecord r = *record;
    if (!RemapRecord(opt.remap, r)) {
      counters.clipped++;
      continue;
    }
    if (opt.warp.target_iops > 0.0) {
      throw std::logic_error(
          "ReplayPlan: unresolved rate-targeted warp on " + opt.name +
          " (call TimeWarpConfig::ResolveRateTarget first)");
    }
    r.timestamp_us = opt.warp.Warp(r.timestamp_us);
    counters.emitted++;
    src.head = TaggedRecord{r, opt.tenant, index};
    return;
  }
}

std::optional<TaggedRecord> ReplayPlan::Next() {
  // Prime lazily so warp configs can be resolved between AddSource and the
  // first pull.
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    if (!sources_[i].primed) {
      Advance(sources_[i], i);
      sources_[i].primed = true;
    }
  }
  // K is small (tenants); a linear scan beats a heap and keeps the
  // tie-break (lowest source index) explicit.
  PlanSource* best = nullptr;
  std::uint32_t best_index = 0;
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    PlanSource& src = sources_[i];
    if (!src.head) continue;
    if (best == nullptr ||
        src.head->record.timestamp_us < best->head->record.timestamp_us) {
      best = &src;
      best_index = i;
    }
  }
  if (best == nullptr) return std::nullopt;
  const TaggedRecord out = *best->head;
  Advance(*best, best_index);
  return out;
}

void ReplayPlan::Reset() {
  for (auto& src : sources_) {
    src.source->Reset();
    src.counters = SourceCounters{};
    src.counters.name = src.options.name;
    src.head.reset();
    src.primed = false;
  }
}

}  // namespace ctflash::replay
