#include "nand/device.h"

#include <stdexcept>

namespace ctflash::nand {

const char* NandStatusName(NandStatus status) {
  switch (status) {
    case NandStatus::kOk:
      return "kOk";
    case NandStatus::kInvalidAddress:
      return "kInvalidAddress";
    case NandStatus::kProgramOutOfOrder:
      return "kProgramOutOfOrder";
    case NandStatus::kProgramPageNotFree:
      return "kProgramPageNotFree";
    case NandStatus::kReadFreePage:
      return "kReadFreePage";
    case NandStatus::kBlockBad:
      return "kBlockBad";
  }
  return "?";
}

NandDevice::NandDevice(const NandGeometry& geometry, const NandTiming& timing,
                       std::uint32_t endurance_pe_cycles)
    : latency_(geometry, timing),
      endurance_(endurance_pe_cycles),
      blocks_(geometry.TotalBlocks()) {}

NandStatus NandDevice::Program(Ppn ppn, Us* op_us) {
  if (!ValidPpn(ppn)) return NandStatus::kInvalidAddress;
  const BlockId block = geometry().BlockOf(ppn);
  const std::uint32_t page = geometry().PageOf(ppn);
  BlockState& st = blocks_[block];
  if (st.bad) return NandStatus::kBlockBad;
  if (page < st.next_page) return NandStatus::kProgramPageNotFree;
  if (page > st.next_page) return NandStatus::kProgramOutOfOrder;
  st.next_page = page + 1;
  const Us t = latency_.ProgramUs(page);
  counters_.programs++;
  counters_.program_time_us += t;
  if (op_us != nullptr) *op_us = t;
  return NandStatus::kOk;
}

NandStatus NandDevice::Read(Ppn ppn, Us* op_us) const {
  if (!ValidPpn(ppn)) return NandStatus::kInvalidAddress;
  const BlockId block = geometry().BlockOf(ppn);
  const std::uint32_t page = geometry().PageOf(ppn);
  const BlockState& st = blocks_[block];
  if (st.bad) return NandStatus::kBlockBad;
  if (page >= st.next_page) return NandStatus::kReadFreePage;
  const Us t = latency_.ReadUs(page);
  counters_.reads++;
  counters_.read_time_us += t;
  if (op_us != nullptr) *op_us = t;
  return NandStatus::kOk;
}

NandStatus NandDevice::Erase(BlockId block, Us* op_us) {
  if (!ValidBlock(block)) return NandStatus::kInvalidAddress;
  BlockState& st = blocks_[block];
  if (st.bad) return NandStatus::kBlockBad;
  st.next_page = 0;
  st.pe_cycles++;
  if (st.pe_cycles >= endurance_) st.bad = true;
  const Us t = latency_.EraseUs();
  counters_.erases++;
  counters_.erase_time_us += t;
  if (op_us != nullptr) *op_us = t;
  return NandStatus::kOk;
}

std::uint32_t NandDevice::NextProgramPage(BlockId block) const {
  if (!ValidBlock(block)) {
    throw std::out_of_range("NextProgramPage: block out of range");
  }
  return blocks_[block].next_page;
}

bool NandDevice::IsBlockFull(BlockId block) const {
  return NextProgramPage(block) == geometry().pages_per_block;
}

bool NandDevice::IsBlockErased(BlockId block) const {
  return NextProgramPage(block) == 0;
}

bool NandDevice::IsPageProgrammed(Ppn ppn) const {
  if (!ValidPpn(ppn)) throw std::out_of_range("IsPageProgrammed: bad ppn");
  return geometry().PageOf(ppn) < blocks_[geometry().BlockOf(ppn)].next_page;
}

std::uint32_t NandDevice::PeCycles(BlockId block) const {
  if (!ValidBlock(block)) throw std::out_of_range("PeCycles: block out of range");
  return blocks_[block].pe_cycles;
}

bool NandDevice::IsBlockBad(BlockId block) const {
  if (!ValidBlock(block)) throw std::out_of_range("IsBlockBad: block out of range");
  return blocks_[block].bad;
}

}  // namespace ctflash::nand
