#include "obs/tracer.h"

#include <algorithm>
#include <utility>

namespace ctflash::obs {

Tracer::Tracer(const TracerConfig& config) : config_(config) {}

std::size_t Tracer::EpochOf(Us at_us) const {
  if (config_.metrics_epoch_us <= 0 || at_us <= config_.epoch_base_us) {
    return 0;
  }
  std::size_t idx = static_cast<std::size_t>(
      (at_us - config_.epoch_base_us) / config_.metrics_epoch_us);
  if (config_.max_epochs != 0 && idx >= config_.max_epochs) {
    idx = config_.max_epochs - 1;
  }
  return idx;
}

PhaseStats& Tracer::EpochRow(Us at_us) {
  const std::size_t idx = EpochOf(at_us);
  if (epoch_phases_.size() <= idx) epoch_phases_.resize(idx + 1);
  return epoch_phases_[idx];
}

EpochCounters& Tracer::EpochRowCounters(Us at_us) {
  const std::size_t idx = EpochOf(at_us);
  if (epoch_counters_.size() <= idx) epoch_counters_.resize(idx + 1);
  return epoch_counters_[idx];
}

void Tracer::RecordSpan(const TraceSpan& span) {
  if (spans_.size() >= config_.max_spans) {
    ++dropped_spans_;
    return;
  }
  spans_.push_back(span);
}

void Tracer::OnSubmit(std::uint64_t request_id, bool is_read,
                      std::uint32_t tenant, Us submit_us) {
  PendingRequest req;
  req.submit_us = submit_us;
  req.is_read = is_read;
  req.tenant = tenant;
  pending_[request_id] = req;
}

void Tracer::OnThrottled(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it != pending_.end()) it->second.pace_cause = StallCause::kTokenBucket;
}

void Tracer::OnBacklogged(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  // Token-bucket pacing wins the attribution when both occurred: it acted
  // first and is the configured policy, not a capacity accident.
  if (it != pending_.end() && it->second.pace_cause == StallCause::kNone) {
    it->second.pace_cause = StallCause::kBackpressure;
  }
}

void Tracer::OnAdmit(std::uint64_t request_id, std::uint32_t queue,
                     Us admit_us) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.admit_us = admit_us;
  it->second.queue = queue;
}

void Tracer::OnDispatch(const sched::FlashTransaction& txn,
                        const sched::DispatchContext& context) {
  InflightTxn rec;
  rec.die = context.die;
  rec.die_stall_us = context.die_free_at > context.dispatch_us
                         ? context.die_free_at - context.dispatch_us
                         : 0;
  if (rec.die_stall_us > 0) {
    // Who holds the resource this transaction will wait for?  With a
    // resolvable die, in-flight GC on it decides GC-vs-host attribution;
    // writes stall on the shared write frontier (other host/GC programs).
    bool gc_busy = false;
    if (context.die != sched::kNoDie) {
      const auto it = gc_on_die_.find(context.die);
      gc_busy = it != gc_on_die_.end() && it->second > 0;
    }
    rec.media_cause =
        gc_busy ? StallCause::kDieBusyGc : StallCause::kDieBusyHost;
  }
  if (context.write_held) rec.queue_cause = StallCause::kWriteHold;
  if (sched::IsGc(txn.source) && context.die != sched::kNoDie) {
    gc_on_die_[context.die]++;
  }
  inflight_[txn.seq] = rec;
}

void Tracer::OnTxnExecuted(const sched::FlashTransaction& txn, Us dispatch_us,
                           Us completion_us) {
  InflightTxn rec;
  const auto it = inflight_.find(txn.seq);
  if (it != inflight_.end()) {
    rec = it->second;
    inflight_.erase(it);
  }
  if (sched::IsGc(txn.source)) {
    if (rec.die != sched::kNoDie) {
      const auto g = gc_on_die_.find(rec.die);
      if (g != gc_on_die_.end() && g->second > 0 && --g->second == 0) {
        gc_on_die_.erase(g);
      }
    }
    EpochCounters& ec = EpochRowCounters(completion_us);
    if (txn.source == sched::TxnSource::kGcCopy) {
      ++ec.gc_copies;
    } else {
      ++ec.gc_erases;
    }
    if (config_.record_spans) {
      TraceSpan span;
      span.start_us = dispatch_us;
      span.dur_us = completion_us - dispatch_us;
      span.track = TraceSpan::TrackKind::kDie;
      span.track_id = rec.die == sched::kNoDie ? 0 : rec.die;
      span.name = txn.source == sched::TxnSource::kGcCopy ? "gc-copy"
                                                          : "gc-erase";
      span.request_id = txn.request_id;
      span.cause = rec.media_cause;
      span.stall_us = rec.die_stall_us;
      RecordSpan(span);
    }
    return;
  }

  const auto p = pending_.find(txn.request_id);
  if (p != pending_.end()) {
    PendingRequest& req = p->second;
    // The request's phase decomposition follows its CRITICAL transaction:
    // the one that completes last (its completion IS the request's).
    if (completion_us > req.crit_completion_us) {
      req.crit_completion_us = completion_us;
      req.crit_dispatch_us = dispatch_us;
      req.crit_queue_cause = rec.queue_cause;
      req.crit_media_cause = rec.media_cause;
      req.crit_media_stall_us = rec.die_stall_us;
    }
  }
  if (config_.record_spans) {
    TraceSpan span;
    span.start_us = dispatch_us;
    span.dur_us = completion_us - dispatch_us;
    span.track = TraceSpan::TrackKind::kDie;
    span.track_id = rec.die == sched::kNoDie ? 0 : rec.die;
    span.name =
        txn.source == sched::TxnSource::kHostRead ? "read" : "write";
    span.request_id = txn.request_id;
    span.cause = rec.media_cause;
    span.stall_us = rec.die_stall_us;
    span.detail = txn.lpn;
    RecordSpan(span);
  }
}

void Tracer::OnRequestComplete(std::uint64_t request_id, Us completion_us) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest req = std::move(it->second);
  pending_.erase(it);

  const Us admit = req.admit_us >= 0 ? req.admit_us : req.submit_us;
  // Requests with no flash work (fully clipped) have no critical
  // transaction: they complete at admission, queued == media == 0.
  Us dispatch = req.crit_completion_us >= 0 ? req.crit_dispatch_us : admit;
  if (dispatch < admit) dispatch = admit;
  if (dispatch > completion_us) dispatch = completion_us;
  const Us paced = admit - req.submit_us;
  const Us queued = dispatch - admit;
  const Us media = completion_us - dispatch;
  const Us media_stall = std::min(req.crit_media_stall_us, media);

  const auto book = [&](PhaseStats& stats) {
    PhaseBreakdown& b = req.is_read ? stats.read : stats.write;
    b.Add(paced, queued, media);
    b.Attribute(req.pace_cause, paced);
    b.Attribute(req.crit_queue_cause, queued);
    b.Attribute(req.crit_media_cause, media_stall);
  };
  book(phases_);
  if (config_.metrics_epoch_us > 0) book(EpochRow(completion_us));
  EpochCounters& ec = EpochRowCounters(completion_us);
  if (req.is_read) {
    ++ec.reads_completed;
  } else {
    ++ec.writes_completed;
  }

  if (config_.record_requests && requests_.size() < config_.max_spans) {
    PhaseRecord rec;
    rec.request_id = request_id;
    rec.is_read = req.is_read;
    rec.tenant = req.tenant;
    rec.submit_us = req.submit_us;
    rec.admit_us = admit;
    rec.dispatch_us = dispatch;
    rec.completion_us = completion_us;
    rec.pace_cause = req.pace_cause;
    rec.queue_cause = req.crit_queue_cause;
    rec.media_cause = req.crit_media_cause;
    rec.media_stall_us = media_stall;
    requests_.push_back(rec);
  }

  if (!config_.record_spans) return;
  // Queue track: the request's lifetime as phase segments, so a timeline
  // shows at a glance where each request's time went.
  const std::uint32_t qid = req.queue == ~0u ? 0 : req.queue;
  const char* op = req.is_read ? "read" : "write";
  if (paced > 0) {
    TraceSpan span;
    span.start_us = req.submit_us;
    span.dur_us = paced;
    span.track = TraceSpan::TrackKind::kQueue;
    span.track_id = qid;
    span.name = "paced";
    span.request_id = request_id;
    span.cause = req.pace_cause;
    span.stall_us = paced;
    RecordSpan(span);
  }
  if (queued > 0) {
    TraceSpan span;
    span.start_us = admit;
    span.dur_us = queued;
    span.track = TraceSpan::TrackKind::kQueue;
    span.track_id = qid;
    span.name = "queued";
    span.request_id = request_id;
    span.cause = req.crit_queue_cause;
    RecordSpan(span);
  }
  if (media > 0) {
    TraceSpan span;
    span.start_us = dispatch;
    span.dur_us = media;
    span.track = TraceSpan::TrackKind::kQueue;
    span.track_id = qid;
    span.name = op;
    span.request_id = request_id;
    span.cause = req.crit_media_cause;
    span.stall_us = media_stall;
    RecordSpan(span);
  }
  if (req.tenant != ~0u && completion_us > req.submit_us) {
    TraceSpan span;
    span.start_us = req.submit_us;
    span.dur_us = completion_us - req.submit_us;
    span.track = TraceSpan::TrackKind::kTenant;
    span.track_id = req.tenant;
    span.name = op;
    span.request_id = request_id;
    RecordSpan(span);
  }
}

void Tracer::ChargeDeadDevice(std::uint64_t reads, std::uint64_t writes,
                              Us charged_us, Us at_us) {
  const auto book = [&](bool is_read, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      phases_.AddTimeout(is_read, charged_us);
      if (config_.metrics_epoch_us > 0) {
        EpochRow(at_us).AddTimeout(is_read, charged_us);
      }
    }
  };
  book(true, reads);
  book(false, writes);
  EpochRowCounters(at_us).timeouts += reads + writes;
  pending_.clear();
  inflight_.clear();
  gc_on_die_.clear();
}

void Tracer::OnReadRetry(std::uint32_t die, Us start_us, Us dur_us,
                         std::uint32_t rungs, bool recovered) {
  EpochRowCounters(start_us + dur_us).retry_rungs += rungs;
  if (!config_.record_spans) return;
  TraceSpan span;
  span.start_us = start_us;
  span.dur_us = dur_us;
  span.track = TraceSpan::TrackKind::kDie;
  span.track_id = die;
  span.name = recovered ? "read-retry" : "read-retry-failed";
  span.detail = rungs;
  RecordSpan(span);
}

void Tracer::OnUnreachable(std::uint32_t die, Us now_us) {
  if (!config_.record_spans) return;
  TraceSpan span;
  span.start_us = now_us;
  span.dur_us = 0;
  span.track = TraceSpan::TrackKind::kDie;
  span.track_id = die;
  span.name = "die-lost";
  span.cause = StallCause::kDeadDevice;
  RecordSpan(span);
}

void Tracer::Reset() {
  phases_ = PhaseStats{};
  epoch_phases_.clear();
  epoch_counters_.clear();
  spans_.clear();
  requests_.clear();
  dropped_spans_ = 0;
  pending_.clear();
  inflight_.clear();
  gc_on_die_.clear();
}

}  // namespace ctflash::obs
