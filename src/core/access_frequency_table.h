// Access-frequency table for the cold data area (paper Fig. 11(a)).
//
// Logs per-chunk read counts for data the first stage classified cold.
// Chunks whose read frequency reaches `promote_threshold` are "cold"
// (write-once-read-MANY -> fast pages); the rest are "icy-cold"
// (write-once-read-few -> slow pages).  A write resets the counter — the
// data is new content whose popularity is unknown again.
//
// The table is capacity-bounded.  On overflow all counters are halved and
// zero entries dropped (classic aging), which both bounds memory and lets
// stale popularity decay, standing in for the paper's "sorted by logged
// access frequency" maintenance.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/serial.h"
#include "util/types.h"

namespace ctflash::core {

class AccessFrequencyTable {
 public:
  AccessFrequencyTable(std::uint32_t promote_threshold, std::size_t capacity);

  /// Registers (or re-registers) newly written cold data; counter resets.
  void OnWrite(Lpn lpn);

  /// Registers an entry with an explicit popularity seed (used when data is
  /// demoted from the hot area with known read history).
  void Register(Lpn lpn, std::uint32_t initial_frequency);

  /// Increments and returns the read counter (registering if unknown).
  std::uint32_t OnRead(Lpn lpn);

  /// Current read count (0 when untracked).
  std::uint32_t FrequencyOf(Lpn lpn) const;

  /// Second-level classification: cold (true) vs icy-cold (false).
  bool IsCold(Lpn lpn) const {
    return FrequencyOf(lpn) >= promote_threshold_;
  }

  void Erase(Lpn lpn);

  std::size_t Size() const { return freq_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint32_t promote_threshold() const { return promote_threshold_; }
  std::uint64_t decay_count() const { return decays_; }

  /// Serializes entries sorted by lpn (the map is unordered; sorting makes
  /// the encoding canonical so identical tables produce identical bytes).
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  void MaybeDecay();

  std::uint32_t promote_threshold_;
  std::size_t capacity_;
  std::unordered_map<Lpn, std::uint32_t> freq_;
  std::uint64_t decays_ = 0;
};

}  // namespace ctflash::core
