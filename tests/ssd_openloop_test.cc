// Open-loop (event-driven) replay tests: the DES engine drives arrivals at
// trace timestamps, independent of completions.
#include <gtest/gtest.h>

#include "ssd/experiment.h"
#include "trace/synthetic.h"

namespace ctflash::ssd {
namespace {

SsdConfig Cfg(ftl::TimingMode mode) {
  auto cfg = ScaledConfig(FtlKind::kPpb, 1ull << 28, 16 * 1024, 2.0);
  cfg.timing_mode = mode;
  return cfg;
}

std::vector<trace::TraceRecord> Burst(int n, Us gap) {
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < n; ++i) {
    recs.push_back({i * gap, trace::OpType::kRead,
                    static_cast<std::uint64_t>(i) * 16 * 1024, 16 * 1024});
  }
  return recs;
}

TEST(OpenLoopReplay, MatchesServiceTimeAccounting) {
  // With service-time latency (no contention), open-loop and closed-loop
  // replay of a paced trace produce identical latency totals.
  auto run = [](bool open_loop) {
    Ssd ssd(Cfg(ftl::TimingMode::kServiceTime));
    ExperimentRunner runner(ssd);
    runner.Prefill(ssd.LogicalBytes() / 2);
    const auto recs = Burst(200, /*gap=*/1000);
    return open_loop ? runner.ReplayOpenLoop(recs, "burst").read_latency.total_us()
                     : runner.Replay(recs, "burst").read_latency.total_us();
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

TEST(OpenLoopReplay, QueuedModeExposesBurstQueueing) {
  // All arrivals at t=0 on a queued-timing device: open-loop latencies grow
  // with queue position, so the mean exceeds the single-request service time.
  Ssd ssd(Cfg(ftl::TimingMode::kQueued));
  ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() / 2);
  // Hammer one chip: consecutive lpns within one block region.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 64; ++i) {
    recs.push_back({0, trace::OpType::kRead,
                    static_cast<std::uint64_t>(i % 4) * 16 * 1024, 16 * 1024});
  }
  const auto res = runner.ReplayOpenLoop(recs, "burst");
  EXPECT_GT(res.read_latency.max_us(), 4.0 * res.read_latency.min_us())
      << "queue tail should wait far longer than the head";
}

TEST(OpenLoopReplay, WidelySpacedArrivalsSeeNoQueueing) {
  Ssd ssd(Cfg(ftl::TimingMode::kQueued));
  ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() / 2);
  const auto res = runner.ReplayOpenLoop(Burst(50, /*gap=*/100000), "paced");
  // 100 ms gaps: every request sees an idle device.
  EXPECT_NEAR(res.read_latency.max_us(), res.read_latency.min_us(), 30.0);
}

TEST(OpenLoopReplay, StatsAggregationMatchesClosedLoop) {
  Ssd ssd(Cfg(ftl::TimingMode::kServiceTime));
  ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() / 2);
  const auto wl = trace::WebServerWorkload(ssd.LogicalBytes() / 2, 5000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  const auto res = runner.ReplayOpenLoop(recs, wl.name);
  EXPECT_EQ(res.read_latency.count() + res.write_latency.count(),
            recs.size());
  EXPECT_GE(res.waf, 1.0);
  EXPECT_GT(res.sim_end_us, 0);
}

}  // namespace
}  // namespace ctflash::ssd
