// Figure 12 — Read Performance Enhancement.
//
// PPB read enhancement over the conventional FTL for both traces at 8 KiB
// and 16 KiB page sizes (speed ratio 2x, the paper's 64-layer default).
// Paper result: up to 18.56 % on the web/SQL trace at 16 KiB; larger pages
// enhance more.
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Figure 12: Read Performance Enhancement", "Figure 12",
                     options);

  util::TablePrinter table(
      {"Trace", "8K Page Size", "16K Page Size"});
  for (const auto workload :
       {bench::Workload::kMediaServer, bench::Workload::kWebServer}) {
    std::vector<std::string> row{bench::WorkloadName(workload)};
    for (const std::uint32_t page : {8u * 1024, 16u * 1024}) {
      const auto cmp =
          bench::RunComparison(workload, page, /*speed_ratio=*/2.0, options);
      row.push_back(util::TablePrinter::FormatPercent(cmp.ReadEnhancement()));
    }
    table.AddRow(row);
  }
  table.Print();
  std::cout << "\nPaper shape: positive enhancement everywhere, 16K >= 8K,\n"
               "web/SQL > media server (paper peak: 18.56% web @ 16K).\n";
  return 0;
}
