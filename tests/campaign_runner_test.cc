// Campaign runner tests: determinism across worker counts and prefill
// sharing modes, failed-arm capture, and report/CSV shape.  These use tiny
// devices and short workloads — the full-scale equivalents live in
// bench_campaign.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/runner.h"
#include "campaign/spec.h"

namespace ctflash::campaign {
namespace {

constexpr const char* kSmallGrid = R"({
  "campaign": "unit",
  "defaults": {
    "device_bytes": "32MiB",
    "prefill_pct": 80,
    "seed": 11,
    "workload": {"kind": "closed_loop", "requests": 400,
                  "read_fraction": 0.5, "queue_depth": 4}
  },
  "grid": {
    "ftl": ["conventional", "ppb"],
    "gc_routing": ["inline", "scheduled"]
  }
})";

TEST(CampaignRunner, DeterministicAcrossWorkerCounts) {
  CampaignRunner runner(CampaignSpec::Parse(kSmallGrid));
  const CampaignResult serial = runner.Run(1);
  const CampaignResult parallel = runner.Run(2);
  ASSERT_EQ(serial.arms.size(), 4u);
  for (const auto& arm : serial.arms) {
    EXPECT_TRUE(arm.ok) << arm.name << ": " << arm.error;
  }
  EXPECT_EQ(serial.DeterministicJson().Dump(2),
            parallel.DeterministicJson().Dump(2));
}

TEST(CampaignRunner, SharedPrefillMatchesStraightThrough) {
  const CampaignSpec shared = CampaignSpec::Parse(kSmallGrid);
  CampaignSpec straight = shared;
  straight.share_prefill = false;

  const CampaignResult with = CampaignRunner(shared).Run(1);
  const CampaignResult without = CampaignRunner(straight).Run(1);
  EXPECT_EQ(with.DeterministicJson().Dump(2),
            without.DeterministicJson().Dump(2));

  // Sharing collapses four arms onto two prefills (one per FTL kind; the
  // shape key excludes gc_routing).
  EXPECT_EQ(with.prefill_groups, 2u);
  EXPECT_EQ(with.prefill_restores, 4u);
  EXPECT_EQ(without.prefill_groups, 0u);
  EXPECT_EQ(without.prefill_restores, 0u);
}

TEST(CampaignRunner, FailedArmIsCapturedNotFatal) {
  CampaignRunner runner(CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "workload": {"kind": "closed_loop", "requests": 100}
    },
    "arms": [
      {"name": "good"},
      {"name": "bad", "workload": {"kind": "trace", "path": "/nonexistent.csv"}}
    ]
  })"));
  const CampaignResult result = runner.Run(1);
  ASSERT_EQ(result.arms.size(), 2u);
  EXPECT_TRUE(result.arms[0].ok) << result.arms[0].error;
  EXPECT_FALSE(result.arms[1].ok);
  EXPECT_FALSE(result.arms[1].error.empty());
}

TEST(CampaignRunner, UnknownWorkloadKindIsPerArmError) {
  CampaignRunner runner(CampaignSpec::Parse(R"({
    "defaults": {"device_bytes": "32MiB", "workload": {"kind": "nope"}}
  })"));
  const CampaignResult result = runner.Run(1);
  ASSERT_EQ(result.arms.size(), 1u);
  EXPECT_FALSE(result.arms[0].ok);
  EXPECT_NE(result.arms[0].error.find("unknown workload kind"),
            std::string::npos)
      << result.arms[0].error;
}

TEST(CampaignRunner, ReportAndCsvShape) {
  CampaignRunner runner(CampaignSpec::Parse(kSmallGrid));
  const CampaignResult result = runner.Run(2);

  const Json report = result.Report();
  ASSERT_NE(report.Get("timing"), nullptr);
  EXPECT_NE(report.Get("timing")->Get("total_wall_ms"), nullptr);
  EXPECT_EQ(report.Get("timing")->Get("workers")->AsUint(), 2u);
  ASSERT_NE(report.Get("arms"), nullptr);
  EXPECT_EQ(report.Get("arms")->AsArray().size(), 4u);

  // CSV: header + one data row per arm, all with the header's column count.
  // Arm names are quoted (they contain commas), so count separators after
  // the closing quote.
  std::istringstream csv(result.Csv());
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  const auto columns = std::count(line.begin(), line.end(), ',');
  EXPECT_EQ(line.rfind("arm,", 0), 0u) << line;
  std::size_t rows = 0;
  while (std::getline(csv, line)) {
    if (line.empty()) continue;
    ASSERT_EQ(line.front(), '"') << line;
    const std::size_t name_end = line.find('"', 1);
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_EQ(std::count(line.begin() + static_cast<std::ptrdiff_t>(name_end),
                         line.end(), ','),
              columns)
        << line;
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
}

TEST(CampaignCsv, FieldEncodingFollowsRfc4180) {
  EXPECT_EQ(CsvField("plain"), "plain");
  EXPECT_EQ(CsvField(""), "");
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvField("cr\rhere"), "\"cr\rhere\"");
}

// Regression: an arm name containing quotes, commas, AND a newline must
// come out as one valid RFC 4180 field, not a row that sheds columns.
TEST(CampaignCsv, HostileArmNameStaysOneField) {
  CampaignRunner runner(CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "prefill_pct": 50,
      "workload": {"kind": "closed_loop", "requests": 50}
    },
    "arms": [{"name": "evil\"arm\",\nname"}]
  })"));
  const CampaignResult result = runner.Run(1);
  ASSERT_EQ(result.arms.size(), 1u);
  EXPECT_TRUE(result.arms[0].ok) << result.arms[0].error;
  const std::string csv = result.Csv();
  // The name is quoted, embedded quotes doubled, newline kept verbatim.
  EXPECT_NE(csv.find("\"evil\"\"arm\"\",\nname\","), std::string::npos)
      << csv;
}

}  // namespace
}  // namespace ctflash::campaign
