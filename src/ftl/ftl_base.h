// Common FTL interface and statistics.
//
// Host requests arrive as (byte offset, byte length, arrival time); the base
// class splits them into logical pages and dispatches to the variant's
// per-request hooks.  Per-request latency is the completion of the slowest
// page operation minus arrival (the channel/chip timelines supply queueing).
//
// The base class owns the structures every variant shares — the page-level
// mapping table and the per-block accounting — plus the GC machinery that
// operates on them.  GC work can be routed two ways (FtlConfig::gc_routing):
//
//  * kInline (default): the variant's GC loop books die timelines inline
//    with the triggering write, invisible to the host scheduler.  This is
//    the paper's accounting (GC cost shows up through erase counts) and is
//    bit-for-bit the seed behavior.
//  * kScheduled: the FTL never times GC itself.  When the free pool drops
//    to the trigger, the base-class planner picks a victim and EMITS its
//    relocation copies and the final erase as sched::FlashTransactions
//    (DrainGcTransactions); the host IoScheduler dispatches them alongside
//    host traffic by priority — host reads preempt queued GC on the same
//    die, an aging bound keeps GC from starving, and host writes are held
//    while the pool sits at the trigger so it can never be written empty.
//    Transactions execute (mapping update + timeline booking) at dispatch
//    time via ExecuteGcTransaction; a copy whose source page was
//    invalidated between planning and dispatch completes instantly (the
//    host already rewrote the data — skipping the copy is free WAF).
//    Requires all post-attach writes to flow through the host interface.
//
// `charge_gc_to_write` (kInline only) switches to a foreground-GC device
// that stalls the triggering write.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ftl/block_manager.h"
#include "ftl/flash_target.h"
#include "ftl/mapping_table.h"
#include "ftl/wear_leveler.h"
#include "ftl/write_allocator.h"
#include "sched/transaction.h"
#include "util/types.h"

namespace ctflash::ftl {

/// How GC relocation work reaches the flash fabric; see file header.
enum class GcRouting : std::uint8_t { kInline = 0, kScheduled = 1 };

const char* GcRoutingName(GcRouting routing);

struct FtlConfig {
  /// Fraction of physical capacity hidden from the host (over-provisioning).
  double op_ratio = 0.15;
  /// GC runs when free blocks drop to this count...
  std::uint64_t gc_threshold_low = 6;
  /// ...and keeps collecting until free blocks reach this count.
  std::uint64_t gc_threshold_high = 10;
  /// Charge synchronous GC time to the write that triggered it.  The paper
  /// reports GC cost through the erase-count figure (Fig. 18) while write
  /// latency stays within 0.0001 % (Figs. 15-17), which implies
  /// background/uncharged GC; hence the default is false.  Set true to model
  /// a device that stalls the triggering write (foreground GC).
  bool charge_gc_to_write = false;
  /// Static wear leveling (disabled by default, as in the paper).
  WearLevelerConfig wear;
  /// Write-path parallelism: open blocks per write stream, striped across
  /// dies (see ftl/write_allocator.h).  1 reproduces the seed
  /// single-active-block path bit-for-bit (the paper-figure setting).
  std::uint32_t write_frontiers = 1;
  StripePolicy stripe_policy = StripePolicy::kRoundRobin;
  /// GC work routing (see file header).  kInline is seed-bit-identical;
  /// kScheduled emits GC as priority transactions through the host
  /// IoScheduler and needs TimingMode::kQueued plus the host interface.
  GcRouting gc_routing = GcRouting::kInline;

  void Validate() const;
};

/// Monotonic counters every FTL variant maintains.
struct FtlStats {
  std::uint64_t host_read_pages = 0;
  std::uint64_t host_write_pages = 0;
  std::uint64_t gc_page_copies = 0;
  std::uint64_t gc_erases = 0;
  Us gc_time_us = 0;
  /// Scheduled-GC only: planned copies skipped because the host rewrote the
  /// source page between planning and dispatch (avoided relocation work).
  std::uint64_t gc_stale_copies = 0;

  /// Write amplification factor: (host + GC writes) / host writes.
  double Waf() const {
    return host_write_pages == 0
               ? 1.0
               : static_cast<double>(host_write_pages + gc_page_copies) /
                     static_cast<double>(host_write_pages);
  }
};

/// Media-fault handling counters (advance only when the target has a fault
/// plan armed; see FlashTarget::ArmFaults).  Block retirement totals live in
/// BlockManager::RetiredCount().
struct FaultStats {
  std::uint64_t program_failures = 0;     ///< page programs that failed verify
  std::uint64_t erase_failures = 0;       ///< block erases that failed verify
  std::uint64_t host_unreadable_pages = 0;  ///< host reads whose data is gone
  std::uint64_t gc_lost_pages = 0;        ///< GC relocations whose source died

  std::uint64_t LostPages() const {
    return host_unreadable_pages + gc_lost_pages;
  }
};

struct RequestResult {
  Us arrival_us = 0;
  Us completion_us = 0;
  std::uint32_t pages = 0;
  Us LatencyUs() const { return completion_us - arrival_us; }
};

class FtlBase {
 public:
  FtlBase(FlashTarget& target, const FtlConfig& config);
  virtual ~FtlBase() = default;

  FtlBase(const FtlBase&) = delete;
  FtlBase& operator=(const FtlBase&) = delete;

  /// Host read.  Unmapped pages complete instantly (they carry no flash
  /// work); throws std::invalid_argument when the range leaves the exported
  /// logical space or is empty.
  RequestResult Read(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                     Us arrival_us);

  /// Host write (out-of-place update).
  RequestResult Write(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                      Us arrival_us);

  virtual std::string Name() const = 0;

  /// Scheduling hint for the host layer: the physical page currently
  /// serving `lpn`, or kInvalidPpn when unmapped.  Read-only — it must not
  /// touch hotness metadata (a probe is not an access).
  virtual Ppn ProbePpn(Lpn lpn) const { return map_.Lookup(lpn); }

  /// Scheduling hint for the host layer: earliest die availability across
  /// the host write stream's open frontiers — when the next write could
  /// start its cell program.  std::nullopt when unknown (no open frontier
  /// yet); read-only like ProbePpn.
  virtual std::optional<Us> ProbeWriteFreeAt() const { return std::nullopt; }

  std::uint64_t LogicalPages() const { return logical_pages_; }
  std::uint64_t LogicalBytes() const {
    return logical_pages_ * PageSize();
  }
  std::uint32_t PageSize() const {
    return target_.geometry().page_size_bytes;
  }

  const FtlStats& stats() const { return stats_; }
  const FaultStats& fault_stats() const { return fault_stats_; }
  void ResetStats() { stats_ = FtlStats{}; }

  FlashTarget& target() { return target_; }
  const FtlConfig& config() const { return config_; }
  const WearLeveler& wear_leveler() const { return wear_leveler_; }
  const MappingTable& mapping() const { return map_; }
  const BlockManager& blocks() const { return blocks_; }

  // --- scheduled-GC transaction API (gc_routing = kScheduled) --------------
  //
  // The host IoScheduler is the only intended caller.  Flow per victim:
  // DrainGcTransactions plans a victim when the pool is at the trigger and
  // hands out its copy + erase transactions; the scheduler dispatches each
  // through ExecuteGcTransaction (which performs the mapping/accounting
  // mutation and books the timelines); the next victim is planned only
  // after the previous erase executed, so at most one victim is in flight.

  /// Registers the scheduler as the GC sink.  From this call on, inline GC
  /// is disabled when gc_routing == kScheduled (until then the variant's
  /// inline loop still runs, so synchronous prefill stays safe).  At most
  /// one sink may be attached at a time: a second attach would let one
  /// scheduler's destructor wipe plan state another still depends on.
  void AttachGcScheduler() {
    if (gc_scheduler_attached_) {
      throw std::logic_error("FtlBase: a GC scheduler is already attached");
    }
    gc_scheduler_attached_ = true;
  }

  /// Unregisters the GC sink (the IoScheduler detaches on destruction):
  /// inline GC takes over again and the plan state resets — transactions
  /// the dying scheduler still held are abandoned; their victim is simply
  /// re-planned by whoever collects next (it stays FULL until erased).
  void DetachGcScheduler() {
    gc_scheduler_attached_ = false;
    gc_active_ = false;
    gc_outstanding_ = 0;
  }

  /// True when GC work is routed through the scheduler (kScheduled routing
  /// and a scheduler attached).
  bool ScheduledGcActive() const {
    return gc_scheduler_attached_ && config_.gc_routing == GcRouting::kScheduled;
  }

  std::uint64_t FreeBlockCount() const { return blocks_.FreeCount(); }

  /// Free blocks above the GC trigger — the spendable spare budget.
  /// Retirement (grown-bad blocks under fault injection, endurance
  /// exhaustion) permanently shrinks it; health telemetry watches it
  /// approach zero to evacuate a device BEFORE GC dies of spare
  /// exhaustion.
  std::uint64_t SpareHeadroomBlocks() const {
    const std::uint64_t free = blocks_.FreeCount();
    return free > config_.gc_threshold_low ? free - config_.gc_threshold_low
                                           : 0;
  }

  /// Free pool at/below the GC trigger: the scheduler boosts pending GC
  /// transactions above host writes while this holds.
  bool GcUrgent() const {
    return blocks_.FreeCount() <= config_.gc_threshold_low;
  }

  /// Free pool at/below the host-write admission floor (trigger + lead):
  /// while GC transactions are pending, the scheduler holds host writes so
  /// sustained writes can never starve the pool below the trigger.
  bool GcWritePressure() const {
    return blocks_.FreeCount() <= config_.gc_threshold_low + GcScheduleLead();
  }

  /// Host-write admission lead above gc_threshold_low (see
  /// GcWritePressure): must cover the spare blocks ONE victim's relocation
  /// can claim before its erase repays the pool, so the pool bottoms out
  /// at the trigger instead of below it.  The base default covers a
  /// single-stream GC relocation — up to `write_frontiers` open blocks on
  /// the GC stream plus one fill-up claim of slack; variants with wider GC
  /// fan-out override it.
  virtual std::uint64_t GcScheduleLead() const {
    return config_.write_frontiers + 1;
  }

  /// Plans victims as needed and appends their pending transactions to
  /// `out` (no-op unless ScheduledGcActive()).  Planning keeps the inline
  /// loop's hysteresis: it engages when the pool reaches the admission
  /// floor and victims keep coming until the pool recovers to
  /// gc_threshold_high (or nothing is reclaimable).
  void DrainGcTransactions(std::vector<sched::FlashTransaction>& out);

  /// Executes one drained GC transaction at `earliest`: performs the
  /// mapping/accounting mutation, books the flash timelines, and returns
  /// the completion time.  A kGcErase must only be submitted after all of
  /// its job's copies executed (the scheduler enforces this).
  Us ExecuteGcTransaction(const sched::FlashTransaction& txn, Us earliest);

  /// Drained-but-not-executed GC transactions (conservation probes).
  std::uint64_t GcTransactionsOutstanding() const { return gc_outstanding_; }
  std::uint64_t GcTransactionsEmitted() const { return gc_txns_emitted_; }
  std::uint64_t GcTransactionsExecuted() const { return gc_txns_executed_; }

  /// Restarts the free-pool low-watermark (BlockManager::MinFreeWatermark)
  /// from the current pool size — call at the start of a measured phase so
  /// prefill-era dips don't contaminate a no-starvation assertion.
  void ResetFreePoolWatermark() { blocks_.ResetFreeWatermark(); }

  // --- snapshot ------------------------------------------------------------

  /// Serializes mapping/blocks/stats/wear/GC-planner state plus the
  /// variant's own state (SaveVariantState).  The device must be quiesced:
  /// throws std::logic_error when GC transactions are drained but not yet
  /// executed (the in-flight plan references scheduler-held objects that a
  /// snapshot cannot carry).  Scheduler attachment is runtime wiring and is
  /// NOT serialized — restore, then attach a fresh scheduler.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 protected:
  /// Inline-routed GC (called by the variant's write path before it claims
  /// pages): collects victims through the same variant hooks the scheduled
  /// planner uses — OnGcVictimChosen, RelocatePageForGc per valid page,
  /// OnGcBlockErased after the erase — until free blocks reach
  /// gc_threshold_high.  Returns completion of all GC work (>= earliest).
  /// No-op when ScheduledGcActive() (the scheduler owns GC then).
  Us MaybeRunGc(Us earliest);

  /// Per-request hooks: `lpn_first..lpn_first+pages` is the page span; the
  /// request byte extent is passed through for classifiers (PPB size check)
  /// and sub-page transfer accounting.  Return the completion (>= earliest).
  virtual Us DoRead(Lpn lpn_first, std::uint32_t pages,
                    std::uint64_t offset_bytes, std::uint64_t size_bytes,
                    Us earliest) = 0;
  virtual Us DoWrite(Lpn lpn_first, std::uint32_t pages,
                     std::uint64_t request_bytes, Us earliest) = 0;

  // --- scheduled-GC variant hooks ------------------------------------------

  /// Relocates one still-valid page for GC: allocate a destination on the
  /// variant's GC stream, book the copy on the timelines, update mapping
  /// and valid counters (and variant stats).  Returns program completion.
  virtual Us RelocatePageForGc(Lpn lpn, Ppn src, BlockId victim,
                               Us earliest) = 0;
  /// Victim chosen by the scheduled planner (variant stats hook).
  virtual void OnGcVictimChosen(BlockId /*victim*/) {}
  /// Victim erased by a scheduled kGcErase (e.g. PPB resets its VB state).
  virtual void OnGcBlockErased(BlockId /*victim*/) {}

  /// Variant-owned state appended to / read back from the base snapshot
  /// (write allocators, PPB virtual-block + hotness structures).
  virtual void SaveVariantState(util::StateWriter& w) const = 0;
  virtual void LoadVariantState(util::StateReader& r) = 0;

  /// Bytes of page `lpn` covered by the request [offset, offset+size): the
  /// data-out transfer for a host read of that page.
  std::uint64_t TransferBytesFor(Lpn lpn, std::uint64_t offset_bytes,
                                 std::uint64_t size_bytes) const;

  /// GC victim choice shared by all variants: the wear leveler may override
  /// the greedy pick to rotate cold data off young blocks.  Call
  /// wear_leveler_.OnErase() after each erase so its cooldown advances.
  std::optional<BlockId> PickVictim(const BlockManager& blocks);

  // --- fault handling (variant write/read paths call these) ----------------

  /// One failed page program: counts it and flags the block so its next GC
  /// erase retires it.  On die loss also retires the lost die's remaining
  /// spare blocks so the allocators stop claiming them.
  void OnProgramFailure(Ppn failed_ppn, bool die_lost);

  /// A host read found its data gone (retry ladder exhausted or die lost):
  /// the page is unmapped — the stored copy no longer exists — and counted.
  void OnHostReadLost(Lpn lpn);

  /// A GC relocation read found the source page gone: the mapping is
  /// dropped instead of relocated, and the loss counted.
  void OnGcReadLost(Lpn lpn, BlockId victim);

  FlashTarget& target_;
  FtlConfig config_;
  std::uint64_t logical_pages_;
  MappingTable map_;
  BlockManager blocks_;
  FtlStats stats_;
  FaultStats fault_stats_;
  WearLeveler wear_leveler_;

 private:
  static std::uint64_t ComputeLogicalPages(const FlashTarget& target,
                                           const FtlConfig& config);
  void CheckRange(std::uint64_t offset_bytes, std::uint64_t size_bytes) const;
  /// Appends the next victim's copy + erase transactions to `out`.
  /// Clears gc_active_ when nothing is reclaimable.
  void PlanGcVictim(std::vector<sched::FlashTransaction>& out);

  /// Erase + release a fully-relocated victim (shared tail of the inline
  /// loop and the scheduled kGcErase): books the erase, frees the block —
  /// or retires it as grown-bad when the erase fails verify or a program
  /// failure flagged it — fires OnGcBlockErased, bumps counters.  Returns
  /// erase completion.
  Us EraseGcVictim(BlockId victim, Us earliest);

  /// Adds the [start, done] busy interval to stats_.gc_time_us, merged
  /// against previously counted scheduled-GC intervals (see .cc comment).
  void AccumulateGcTime(Us start, Us done);

  bool in_gc_ = false;  ///< inline-loop reentry guard
  Us gc_busy_until_ = 0;  ///< end of the counted scheduled-GC busy span
  bool gc_scheduler_attached_ = false;
  bool gc_active_ = false;  ///< planner hysteresis (trigger..threshold_high)
  std::uint64_t gc_outstanding_ = 0;  ///< drained, not yet executed
  std::uint64_t gc_txns_emitted_ = 0;
  std::uint64_t gc_txns_executed_ = 0;
  std::uint64_t next_gc_job_ = 1;
};

}  // namespace ctflash::ftl
