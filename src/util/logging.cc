#include "util/logging.h"

namespace ctflash::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace ctflash::util
