// Trace tooling walk-through: generate a synthetic workload, save it in the
// MSR-Cambridge CSV format, parse it back, and print its statistics.  The
// same parser replays real MSR traces when they are available — drop the
// file path in as argv[1].
//
//   ./trace_tools                  # round-trip a generated trace
//   ./trace_tools <msr_trace.csv>  # inspect a real trace file
#include <fstream>
#include <iostream>
#include <sstream>

#include "trace/synthetic.h"
#include "trace/trace.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;

  std::vector<trace::TraceRecord> records;
  std::string source;
  if (argc > 1) {
    source = argv[1];
    records = trace::ParseMsrCsvFile(source);
  } else {
    source = "synthetic web-sql-server (round-tripped through MSR CSV)";
    const auto cfg = trace::WebServerWorkload(512 * kMiB, 50'000);
    const auto generated = trace::SyntheticTraceGenerator(cfg).Generate();
    std::stringstream csv;
    trace::WriteMsrCsv(generated, csv);
    records = trace::ParseMsrCsv(csv);
    if (records.size() != generated.size()) {
      std::cerr << "round-trip record count mismatch!\n";
      return 1;
    }
  }

  const auto stats = trace::ComputeStats(records);
  std::cout << "Trace: " << source << "\n\n";
  util::TablePrinter table({"metric", "value"});
  table.AddRow({"requests", std::to_string(stats.total_requests)});
  table.AddRow({"read fraction",
                util::TablePrinter::FormatPercent(stats.ReadFraction())});
  table.AddRow({"read volume (MiB)",
                util::TablePrinter::FormatDouble(
                    static_cast<double>(stats.read_bytes) / (1 << 20), 1)});
  table.AddRow({"write volume (MiB)",
                util::TablePrinter::FormatDouble(
                    static_cast<double>(stats.write_bytes) / (1 << 20), 1)});
  table.AddRow({"mean read size (KiB)",
                util::TablePrinter::FormatDouble(
                    stats.read_size.mean() / 1024.0, 1)});
  table.AddRow({"mean write size (KiB)",
                util::TablePrinter::FormatDouble(
                    stats.write_size.mean() / 1024.0, 1)});
  table.AddRow({"footprint high-water (MiB)",
                util::TablePrinter::FormatDouble(
                    static_cast<double>(stats.max_offset_bytes) / (1 << 20),
                    1)});
  table.Print();
  return 0;
}
