// Fault-campaign integration tests: spec parsing of the "faults" section,
// end-to-end fault arms that complete without aborting, per-arm outcome
// classification, worker-count determinism, and die-loss arms.  Full-scale
// durability sweeps live in bench_fault_campaign.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "campaign/runner.h"
#include "campaign/spec.h"

namespace ctflash::campaign {
namespace {

// Lower layers of the default skew-8 stack fail first sense at this RBER;
// the retry ladder recovers them, so fault arms exercise the whole path.
constexpr const char* kFaultGrid = R"({
  "campaign": "fault-unit",
  "defaults": {
    "device_bytes": "32MiB",
    "prefill_pct": 80,
    "seed": 11,
    "error_model": {"base_rber": 1e-3, "layer_skew": 8.0},
    "faults": {"program_fail_prob": 0.001, "erase_fail_prob": 0.001,
                "read_disturb_per_read": 1e-4},
    "workload": {"kind": "closed_loop", "requests": 400,
                  "read_fraction": 0.7, "queue_depth": 4}
  },
  "grid": {
    "ftl": ["conventional", "ppb"],
    "faults.program_fail_prob": [0.0005, 0.002]
  }
})";

TEST(FaultCampaignSpec, ParsesFaultSection) {
  const CampaignSpec spec = CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "seed": 7,
      "error_model": {"base_rber": 2e-3, "seed": 99},
      "faults": {"program_fail_prob": 0.01, "erase_fail_prob": 0.02,
                  "read_disturb_per_read": 1e-5,
                  "retention_rber_multiplier": 1.5,
                  "fail_dies": [1], "fail_channels": [0], "fail_at_us": 500,
                  "max_read_retries": 6, "retry_rber_scale": 0.4,
                  "max_program_retries": 3},
      "workload": {"kind": "closed_loop", "requests": 10}
    }
  })");
  ASSERT_EQ(spec.arms.size(), 1u);
  const ArmSpec& arm = spec.arms[0];
  EXPECT_TRUE(arm.inject_faults);
  EXPECT_TRUE(arm.device.model_read_errors);
  EXPECT_DOUBLE_EQ(arm.device.error_model.base_rber, 2e-3);
  EXPECT_EQ(arm.device.error_model_seed, 99u);
  EXPECT_DOUBLE_EQ(arm.fault_plan.program_fail_prob, 0.01);
  EXPECT_DOUBLE_EQ(arm.fault_plan.erase_fail_prob, 0.02);
  EXPECT_DOUBLE_EQ(arm.fault_plan.read_disturb_per_read, 1e-5);
  EXPECT_DOUBLE_EQ(arm.fault_plan.retention_rber_multiplier, 1.5);
  ASSERT_EQ(arm.fault_plan.fail_dies.size(), 1u);
  EXPECT_EQ(arm.fault_plan.fail_dies[0], 1u);
  ASSERT_EQ(arm.fault_plan.fail_channels.size(), 1u);
  EXPECT_EQ(arm.fault_plan.fail_channels[0], 0u);
  EXPECT_EQ(arm.fault_plan.fail_at_us, 500);
  EXPECT_EQ(arm.fault_handling.max_read_retries, 6u);
  EXPECT_DOUBLE_EQ(arm.fault_handling.retry_rber_scale, 0.4);
  EXPECT_EQ(arm.fault_handling.max_program_retries, 3u);
  // Unpinned fault seed: golden-ratio mix of the arm seed (7 + index 0).
  EXPECT_EQ(arm.fault_seed, 7u * 0x9E3779B97F4A7C15ull + 0xFA17ull);
  // The config echo carries the fault block so reports are self-describing.
  const Json summary = arm.ConfigSummary();
  ASSERT_NE(summary.Get("faults"), nullptr);
  ASSERT_NE(summary.Get("fault_seed"), nullptr);
  // Echoed as a string: the 64-bit mix exceeds Json's exact-double range.
  EXPECT_EQ(summary.Get("fault_seed")->AsString(),
            std::to_string(arm.fault_seed));
}

TEST(FaultCampaignSpec, PinnedFaultSeedAndInvalidPlanRejected) {
  const CampaignSpec spec = CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "faults": {"seed": 42},
      "workload": {"kind": "closed_loop", "requests": 10}
    }
  })");
  EXPECT_EQ(spec.arms[0].fault_seed, 42u);
  EXPECT_THROW(CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "faults": {"program_fail_prob": 1.5},
      "workload": {"kind": "closed_loop", "requests": 10}
    }
  })"),
               std::invalid_argument);
}

TEST(FaultCampaign, RunsWithoutAbortingAndClassifiesEveryArm) {
  CampaignRunner runner(CampaignSpec::Parse(kFaultGrid));
  const CampaignResult result = runner.Run(2);
  ASSERT_EQ(result.arms.size(), 4u);
  std::uint64_t recovered_arms = 0;
  for (const ArmResult& arm : result.arms) {
    EXPECT_TRUE(arm.ok) << arm.name << ": " << arm.error;
    // Every fault arm gets a classification.
    ASSERT_FALSE(arm.outcome.empty()) << arm.name;
    EXPECT_TRUE(arm.outcome == "masked" || arm.outcome == "recovered" ||
                arm.outcome == "data-loss")
        << arm.outcome;
    // The fault metrics block is present and internally consistent.
    const Json* faults = arm.metrics.Get("faults");
    ASSERT_NE(faults, nullptr) << arm.name;
    ASSERT_NE(faults->Get("host_reads"), nullptr);
    ASSERT_NE(faults->Get("gc_reads"), nullptr);
    EXPECT_EQ(faults->Get("lost_pages")->AsUint(),
              faults->Get("host_unreadable_pages")->AsUint() +
                  faults->Get("gc_lost_pages")->AsUint());
    if (arm.outcome == "recovered") ++recovered_arms;
  }
  // The skew-8 bottom layers + retry ladder guarantee visible recoveries.
  EXPECT_GT(recovered_arms, 0u);
}

TEST(FaultCampaign, DeterministicAcrossWorkerCounts) {
  CampaignRunner runner(CampaignSpec::Parse(kFaultGrid));
  const CampaignResult serial = runner.Run(1);
  const CampaignResult parallel = runner.Run(3);
  EXPECT_EQ(serial.DeterministicJson().Dump(2),
            parallel.DeterministicJson().Dump(2));
  // The outcome is part of the deterministic report.
  EXPECT_NE(serial.DeterministicJson().Dump(2).find("\"outcome\""),
            std::string::npos);
}

TEST(FaultCampaign, DieLossArmIsDataLoss) {
  CampaignRunner runner(CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "prefill_pct": 80,
      "seed": 5,
      "faults": {"fail_dies": [0], "fail_at_us": 1},
      "workload": {"kind": "closed_loop", "requests": 300,
                    "read_fraction": 0.7, "queue_depth": 4}
    }
  })"));
  const CampaignResult result = runner.Run(1);
  ASSERT_EQ(result.arms.size(), 1u);
  // Whether the arm limps through (reads of die-0 residents lost) or dies
  // on an unrecoverable error, it must classify as data loss — and the
  // campaign itself must not abort.
  EXPECT_EQ(result.arms[0].outcome, "data-loss") << result.arms[0].error;
}

TEST(FaultCampaign, FaultFreeArmsCarryNoFaultState) {
  CampaignRunner runner(CampaignSpec::Parse(R"({
    "defaults": {
      "device_bytes": "32MiB",
      "workload": {"kind": "closed_loop", "requests": 100}
    }
  })"));
  const CampaignResult result = runner.Run(1);
  ASSERT_EQ(result.arms.size(), 1u);
  EXPECT_TRUE(result.arms[0].ok) << result.arms[0].error;
  EXPECT_TRUE(result.arms[0].outcome.empty());
  EXPECT_EQ(result.arms[0].metrics.Get("faults"), nullptr);
  EXPECT_EQ(result.arms[0].config.Get("faults"), nullptr);
}

}  // namespace
}  // namespace ctflash::campaign
