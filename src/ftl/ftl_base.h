// Common FTL interface and statistics.
//
// Host requests arrive as (byte offset, byte length, arrival time); the base
// class splits them into logical pages and dispatches to the variant's
// per-request hooks.  Per-request latency is the completion of the slowest
// page operation minus arrival (the channel/chip timelines supply queueing).
//
// GC runs in the background by default (its cost is visible through erase
// counts, matching the paper's accounting); `charge_gc_to_write` switches to
// a foreground-GC device that stalls the triggering write.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ftl/flash_target.h"
#include "ftl/wear_leveler.h"
#include "ftl/write_allocator.h"
#include "util/types.h"

namespace ctflash::ftl {

struct FtlConfig {
  /// Fraction of physical capacity hidden from the host (over-provisioning).
  double op_ratio = 0.15;
  /// GC runs when free blocks drop to this count...
  std::uint64_t gc_threshold_low = 6;
  /// ...and keeps collecting until free blocks reach this count.
  std::uint64_t gc_threshold_high = 10;
  /// Charge synchronous GC time to the write that triggered it.  The paper
  /// reports GC cost through the erase-count figure (Fig. 18) while write
  /// latency stays within 0.0001 % (Figs. 15-17), which implies
  /// background/uncharged GC; hence the default is false.  Set true to model
  /// a device that stalls the triggering write (foreground GC).
  bool charge_gc_to_write = false;
  /// Static wear leveling (disabled by default, as in the paper).
  WearLevelerConfig wear;
  /// Write-path parallelism: open blocks per write stream, striped across
  /// dies (see ftl/write_allocator.h).  1 reproduces the seed
  /// single-active-block path bit-for-bit (the paper-figure setting).
  std::uint32_t write_frontiers = 1;
  StripePolicy stripe_policy = StripePolicy::kRoundRobin;

  void Validate() const;
};

/// Monotonic counters every FTL variant maintains.
struct FtlStats {
  std::uint64_t host_read_pages = 0;
  std::uint64_t host_write_pages = 0;
  std::uint64_t gc_page_copies = 0;
  std::uint64_t gc_erases = 0;
  Us gc_time_us = 0;

  /// Write amplification factor: (host + GC writes) / host writes.
  double Waf() const {
    return host_write_pages == 0
               ? 1.0
               : static_cast<double>(host_write_pages + gc_page_copies) /
                     static_cast<double>(host_write_pages);
  }
};

struct RequestResult {
  Us arrival_us = 0;
  Us completion_us = 0;
  std::uint32_t pages = 0;
  Us LatencyUs() const { return completion_us - arrival_us; }
};

class FtlBase {
 public:
  FtlBase(FlashTarget& target, const FtlConfig& config);
  virtual ~FtlBase() = default;

  FtlBase(const FtlBase&) = delete;
  FtlBase& operator=(const FtlBase&) = delete;

  /// Host read.  Unmapped pages complete instantly (they carry no flash
  /// work); throws std::invalid_argument when the range leaves the exported
  /// logical space or is empty.
  RequestResult Read(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                     Us arrival_us);

  /// Host write (out-of-place update).
  RequestResult Write(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                      Us arrival_us);

  virtual std::string Name() const = 0;

  /// Scheduling hint for the host layer: the physical page currently
  /// serving `lpn`, or kInvalidPpn when unmapped.  Read-only — it must not
  /// touch hotness metadata (a probe is not an access).
  virtual Ppn ProbePpn(Lpn lpn) const = 0;

  /// Scheduling hint for the host layer: earliest die availability across
  /// the host write stream's open frontiers — when the next write could
  /// start its cell program.  std::nullopt when unknown (no open frontier
  /// yet); read-only like ProbePpn.
  virtual std::optional<Us> ProbeWriteFreeAt() const { return std::nullopt; }

  std::uint64_t LogicalPages() const { return logical_pages_; }
  std::uint64_t LogicalBytes() const {
    return logical_pages_ * PageSize();
  }
  std::uint32_t PageSize() const {
    return target_.geometry().page_size_bytes;
  }

  const FtlStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FtlStats{}; }

  FlashTarget& target() { return target_; }
  const FtlConfig& config() const { return config_; }
  const WearLeveler& wear_leveler() const { return wear_leveler_; }

 protected:
  /// Per-request hooks: `lpn_first..lpn_first+pages` is the page span; the
  /// request byte extent is passed through for classifiers (PPB size check)
  /// and sub-page transfer accounting.  Return the completion (>= earliest).
  virtual Us DoRead(Lpn lpn_first, std::uint32_t pages,
                    std::uint64_t offset_bytes, std::uint64_t size_bytes,
                    Us earliest) = 0;
  virtual Us DoWrite(Lpn lpn_first, std::uint32_t pages,
                     std::uint64_t request_bytes, Us earliest) = 0;

  /// Bytes of page `lpn` covered by the request [offset, offset+size): the
  /// data-out transfer for a host read of that page.
  std::uint64_t TransferBytesFor(Lpn lpn, std::uint64_t offset_bytes,
                                 std::uint64_t size_bytes) const;

  /// GC victim choice shared by all variants: the wear leveler may override
  /// the greedy pick to rotate cold data off young blocks.  Call
  /// wear_leveler_.OnErase() after each erase so its cooldown advances.
  std::optional<BlockId> PickVictim(const BlockManager& blocks);

  FlashTarget& target_;
  FtlConfig config_;
  std::uint64_t logical_pages_;
  FtlStats stats_;
  WearLeveler wear_leveler_;

 private:
  void CheckRange(std::uint64_t offset_bytes, std::uint64_t size_bytes) const;
};

}  // namespace ctflash::ftl
