// Load generators driving the host interface.
//
// ClosedLoopGenerator keeps a fixed number of requests in flight (the
// classic fio/MQSim queue-depth-driven closed loop): every completion
// immediately submits the next request, so measured IOPS tracks what the
// device sustains at that concurrency.  OpenLoopGenerator replays
// trace::TraceRecord arrivals at their timestamps regardless of
// completions — offered load is fixed and latency reveals saturation; a
// time_scale below 1.0 compresses inter-arrival gaps to raise the arrival
// rate without editing the trace.
//
// Both generators expect an idle host interface, reset its stats, and
// report per-run aggregates including per-resource utilization (busy-time
// deltas over the run's makespan).
#pragma once

#include <cstdint>
#include <vector>

#include "host/host_interface.h"
#include "trace/trace.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::host {

/// Aggregates for one generator run.
struct LoadStats {
  std::uint64_t requests = 0;
  Us start_us = 0;
  Us end_us = 0;
  util::LatencyStats read_latency;
  util::LatencyStats write_latency;
  /// Busy-time share of the run's makespan, averaged over pool members.
  double die_utilization = 0.0;
  double channel_utilization = 0.0;
  /// Cell-op duty summed over each chip's dies (the chip timelines are
  /// busy-time accounting): with multiple dies per chip overlapping, this
  /// exceeds 1.0 — it measures die-parallelism extracted per chip, not a
  /// share of the makespan.
  double chip_utilization = 0.0;

  Us MakespanUs() const { return end_us - start_us; }
  double Iops() const {
    return MakespanUs() == 0
               ? 0.0
               : static_cast<double>(requests) * 1e6 /
                     static_cast<double>(MakespanUs());
  }
  /// Read + write latencies merged (percentile reporting).
  util::LatencyStats AllLatency() const {
    util::LatencyStats all = read_latency;
    all.Merge(write_latency);
    return all;
  }
};

class ClosedLoopGenerator {
 public:
  struct Config {
    std::uint32_t queue_depth = 8;
    std::uint64_t total_requests = 10'000;
    double read_fraction = 1.0;
    std::uint64_t request_bytes = 16 * kKiB;
    /// Address span to draw uniform random request-aligned offsets from;
    /// 0 = the device's whole logical space.
    std::uint64_t footprint_bytes = 0;
    std::uint64_t seed = 1;

    void Validate() const;
  };

  ClosedLoopGenerator(HostInterface& host, const Config& config);

  /// Submits `queue_depth` requests, then one per completion until
  /// `total_requests` have been issued; drains and reports.
  LoadStats Run();

  /// The exact request stream issued (for determinism and sync-path
  /// equivalence checks); timestamps are submission times.
  const std::vector<trace::TraceRecord>& issued() const { return issued_; }

 private:
  void SubmitNext();

  HostInterface& host_;
  Config config_;
  util::Xoshiro256StarStar rng_;
  std::uint64_t issued_count_ = 0;
  std::vector<trace::TraceRecord> issued_;
};

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(HostInterface& host,
                    std::vector<trace::TraceRecord> records,
                    double time_scale = 1.0);

  LoadStats Run();

 private:
  HostInterface& host_;
  std::vector<trace::TraceRecord> records_;
  double time_scale_;
};

// --- multi-tenant load ------------------------------------------------------

/// One tenant's arrival process for MultiTenantGenerator: either a closed
/// loop at `queue_depth` (interarrival_us == 0) or paced open-loop arrivals
/// every `interarrival_us` (offered load fixed regardless of completions —
/// the shape that exposes noisy-neighbor interference).  Offsets are drawn
/// request-aligned and uniform from the tenant's own working-set range
/// [footprint_base_bytes, footprint_base_bytes + footprint_bytes), so
/// tenants can be given disjoint (or deliberately overlapping) data.
struct TenantWorkload {
  qos::TenantId tenant = 0;
  std::uint32_t queue_depth = 8;   ///< closed-loop arm
  Us interarrival_us = 0;          ///< > 0: paced open-loop arm
  std::uint64_t total_requests = 1'000;
  double read_fraction = 1.0;
  std::uint64_t request_bytes = 16 * kKiB;
  std::uint64_t footprint_base_bytes = 0;
  std::uint64_t footprint_bytes = 0;  ///< 0 = through end of device
  std::uint64_t seed = 1;

  void Validate() const;
};

/// Per-tenant results of one multi-tenant run; `load` carries the tenant's
/// own request latencies (end-to-end, including any rate-limit pacing) and
/// IOPS over the tenant's first-submission..last-completion span.
struct TenantLoadStats {
  qos::TenantId tenant = 0;
  LoadStats load;
};

/// Drives several tenants' arrival processes concurrently through one
/// multi-tenant host interface (HostConfig::qos configured) and reports
/// per-tenant aggregates.  The device-wide view (utilization, per-queue
/// breakdown, tenant-table telemetry) stays readable on the host interface
/// afterwards.
class MultiTenantGenerator {
 public:
  MultiTenantGenerator(HostInterface& host,
                       std::vector<TenantWorkload> workloads);

  /// Submits every tenant's process from an idle host, drains, reports in
  /// workload order.
  std::vector<TenantLoadStats> Run();

 private:
  struct TenantRun {
    TenantWorkload workload;
    util::Xoshiro256StarStar rng;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    Us first_submit_us = 0;
    Us last_completion_us = 0;
    util::LatencyStats read_latency;
    util::LatencyStats write_latency;
  };

  void SubmitNext(std::size_t idx);         ///< closed-loop chain
  void OnComplete(std::size_t idx, const HostCompletion& completion);
  trace::TraceRecord NextRecord(TenantRun& run);

  HostInterface& host_;
  std::vector<TenantRun> runs_;
};

/// Snapshot/delta helper shared by the generators: utilization of the
/// device's resource pools between two points in simulated time.
struct UtilizationProbe {
  explicit UtilizationProbe(const ftl::FlashTarget& target);

  /// Fills the utilization fields of `stats` for [stats.start_us,
  /// stats.end_us] relative to the construction-time snapshot.
  void Finish(LoadStats& stats) const;

 private:
  const ftl::FlashTarget& target_;
  Us die_busy_0_;
  Us channel_busy_0_;
  Us chip_busy_0_;
};

}  // namespace ctflash::host
