// ReplayEngine: drives a trace (plan or bare source) against the simulated
// device, open-loop, with streaming admission and windowed telemetry.
//
// Two drive modes:
//
//  * Host mode — constructed over a host::HostInterface.  Every record
//    becomes an arrival event at its (warped) timestamp and is submitted
//    through HostInterface::SubmitAs / Submit, so queue backpressure,
//    out-of-order page scheduling, scheduled GC, and the multi-tenant QoS
//    engine all apply.  Tenant-tagged records from a ReplayPlan route to
//    their tenant's submission queues (SubmitAtAs semantics); per-tenant
//    results are read back from the qos::TenantTable attribution.  This is
//    the mode the Figures 13/14 validation and mixed-tenant studies run on.
//
//  * Direct mode — constructed over an ssd::Ssd.  Arrivals issue
//    synchronous FTL requests on the engine's own event queue, reproducing
//    the seed ExperimentRunner::ReplayOpenLoop semantics exactly for
//    monotone traces (ssd::ExperimentRunner is rebased onto this mode).
//
// Either way, arrivals are CHAINED: one pending arrival event at a time,
// pulling the next record only when the previous arrival fires.  Replay
// memory is O(source window), never O(trace) — the event queue does not
// materialize a million arrivals up front.  Records whose timestamps run
// backward (out-of-order MSR arrivals) are clamped to the current simulated
// time, preserving record order.
//
// Telemetry: total and per-window (config.window_us) arrival/completion
// counts, IOPS, read/write p50/p99 and end-of-window queue depth, plus the
// full latency histograms for CDF extraction (latency_cdf.h) and
// conservation counters (pulled == submitted == completed when the run
// drains).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "host/host_interface.h"
#include "replay/replay_plan.h"
#include "replay/trace_source.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::replay {

struct ReplayEngineConfig {
  /// Telemetry interval; 0 disables windowed telemetry.
  Us window_us = 0;
  /// Direct mode only: simulated time of trace t=0 (host mode starts at
  /// the host queue's current time).
  Us start_us = 0;

  void Validate() const;
};

/// One telemetry interval ([start_us, end_us)).
struct ReplayWindow {
  Us start_us = 0;
  Us end_us = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  double iops = 0.0;  ///< completions over the window
  double read_p50_us = 0.0;
  double read_p99_us = 0.0;
  double write_p50_us = 0.0;
  double write_p99_us = 0.0;
  /// Host-mode queue depth (admitted, incomplete) when the window closed.
  std::uint32_t outstanding_end = 0;
};

/// Per-tenant slice of a host-mode replay, read from the QoS engine's
/// attribution (qos::TenantTable::TenantStats).
struct TenantReplayResult {
  qos::TenantId tenant = qos::kNoTenant;
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t throttled = 0;
  util::LatencyStats read_latency;
  util::LatencyStats write_latency;
  Us first_submit_us = 0;
  Us last_completion_us = 0;

  /// Completions per second over the tenant's own active span.
  double Iops() const {
    const Us span = last_completion_us - first_submit_us;
    return span <= 0 ? 0.0
                     : static_cast<double>(completed) * 1e6 /
                           static_cast<double>(span);
  }
};

struct ReplayResult {
  // Conservation: pulled records all submit; a drained run completes all.
  std::uint64_t pulled = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Direct mode: records the seed harness clipped away entirely (no flash
  /// work, not counted in submitted/completed).
  std::uint64_t dropped = 0;

  Us start_us = 0;
  Us end_us = 0;
  Us max_completion_us = 0;
  util::LatencyStats read_latency;
  util::LatencyStats write_latency;
  std::vector<ReplayWindow> windows;
  std::vector<TenantReplayResult> tenants;  ///< host mode with tenants
  std::vector<SourceCounters> sources;      ///< plan runs only

  Us MakespanUs() const { return end_us - start_us; }
  double Iops() const {
    return MakespanUs() <= 0 ? 0.0
                             : static_cast<double>(completed) * 1e6 /
                                   static_cast<double>(MakespanUs());
  }
  util::LatencyStats AllLatency() const {
    util::LatencyStats all = read_latency;
    all.Merge(write_latency);
    return all;
  }
};

class ReplayEngine {
 public:
  /// Host mode; the host interface must be idle at Run().  Run() resets
  /// the host's stats (and tenant stats) like the load generators do.
  ReplayEngine(host::HostInterface& host, const ReplayEngineConfig& config);

  /// Direct mode (synchronous FTL issue; seed open-loop semantics).
  ReplayEngine(ssd::Ssd& ssd, const ReplayEngineConfig& config);

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Replays a merged tenant-tagged plan (resets it first).
  ReplayResult Run(ReplayPlan& plan);

  /// Replays a bare source as a single untagged stream (resets it first).
  ReplayResult Run(TraceSource& source);

 private:
  using Puller = std::function<std::optional<TaggedRecord>()>;

  ReplayResult RunPuller(const Puller& pull);
  /// Arrival event: submit `staged`, pull the next record, chain the next
  /// arrival event.
  void OnArrival(Us now);
  void Submit(const TaggedRecord& record, Us now);
  void OnComplete(const TaggedRecord& record, Us latency_us,
                  Us completion_us);
  /// Closes telemetry windows up to the one containing `now`.
  void WindowAdvance(Us now);
  void FlushWindow(Us close_time);

  host::HostInterface* host_ = nullptr;  ///< null in direct mode
  ssd::Ssd* ssd_ = nullptr;
  ReplayEngineConfig config_;
  sim::EventQueue direct_queue_;  ///< direct mode's arrival clock

  // Per-run state.
  Puller pull_;
  std::optional<TaggedRecord> staged_;
  ReplayResult result_;
  util::LatencyStats window_read_;
  util::LatencyStats window_write_;
  std::uint64_t window_arrivals_ = 0;
  std::uint64_t window_completions_ = 0;
  Us window_start_ = 0;
};

}  // namespace ctflash::replay
