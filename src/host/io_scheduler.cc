#include "host/io_scheduler.h"

#include <stdexcept>

namespace ctflash::host {

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kOutOfOrder:
      return "out-of-order";
  }
  return "?";
}

IoScheduler::IoScheduler(ssd::Ssd& ssd, sim::EventQueue& queue,
                         SchedPolicy policy, std::uint32_t device_slots)
    : ssd_(ssd), queue_(queue), policy_(policy), device_slots_(device_slots) {
  if (device_slots == 0) {
    throw std::invalid_argument("IoScheduler: device_slots must be > 0");
  }
}

void IoScheduler::Enqueue(FlashTransaction txn) {
  ready_.push_back(txn);
  Pump();
}

IoScheduler::DispatchKey IoScheduler::KeyOf(const FlashTransaction& txn,
                                            Us write_free_at) const {
  // A write's die is decided by the FTL's write-frontier allocator at
  // dispatch time; the allocator's earliest frontier die (probed once per
  // PickNext — it is transaction-independent) is the best prediction of
  // when the program could start.  With striped frontiers that minimum is
  // over several dies, so writes stay dispatchable almost always; with a
  // single busy frontier, reads on idle dies overtake.  Unmapped reads
  // carry no flash work: startable now, plane 0.
  if (txn.op != trace::OpType::kRead) return {write_free_at, 0};
  const Ppn ppn = ssd_.ftl().ProbePpn(txn.lpn);
  if (ppn == kInvalidPpn) return {0, 0};
  const auto& geo = ssd_.target().geometry();
  const BlockId block = geo.BlockOf(ppn);
  return {ssd_.target().DieFreeAt(block), geo.PlaneOfBlock(block)};
}

std::size_t IoScheduler::PickNext() const {
  // ready_ stays in submission order: seq is monotonic at push_back and
  // vector erase preserves relative order, so FIFO is simply the front.
  if (policy_ == SchedPolicy::kFifo) return 0;
  // Out-of-order: earliest predicted die availability wins; ties stripe
  // across planes, then fall back to submission order.  Anything startable
  // now (idle die, write, unmapped read) shares the same first key.
  const Us now = queue_.Now();
  const Us write_free_at = ssd_.ftl().ProbeWriteFreeAt().value_or(0);
  std::size_t best = 0;
  DispatchKey best_key{};
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    DispatchKey key = KeyOf(ready_[i], write_free_at);
    key.start = std::max(key.start, now);
    if (i == 0 || key.start < best_key.start ||
        (key.start == best_key.start && key.plane < best_key.plane)) {
      // Equal (start, plane) keeps the earlier index, which is the lower
      // seq — submission order is the final tie-break.
      best = i;
      best_key = key;
    }
  }
  return best;
}

void IoScheduler::Pump() {
  while (in_flight_ < device_slots_ && !ready_.empty()) {
    const std::size_t idx = PickNext();
    const FlashTransaction txn = ready_[idx];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(idx));
    ++in_flight_;
    if (in_flight_ > peak_in_flight_) peak_in_flight_ = in_flight_;
    ++dispatched_;
    // SubmitRead/SubmitWrite service the transaction on the resource
    // timelines immediately and fire `done` as a completion event, so this
    // loop never re-enters itself.
    auto done = [this, txn](const ftl::RequestResult& r) {
      --in_flight_;
      if (on_complete_) on_complete_(txn, r);
      Pump();
    };
    if (txn.op == trace::OpType::kRead) {
      ssd_.SubmitRead(txn.offset_bytes, txn.size_bytes, queue_, done);
    } else {
      ssd_.SubmitWrite(txn.offset_bytes, txn.size_bytes, queue_, done);
    }
  }
}

}  // namespace ctflash::host
