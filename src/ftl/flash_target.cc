#include "ftl/flash_target.h"

#include <string>

#include "obs/media_hook.h"
#include "util/logging.h"

namespace ctflash::ftl {

void FaultHandlingConfig::Validate() const {
  if (retry_rber_scale <= 0.0 || retry_rber_scale >= 1.0) {
    throw std::invalid_argument(
        "FaultHandlingConfig: retry_rber_scale must be in (0,1)");
  }
}

FlashTarget::FlashTarget(const nand::NandGeometry& geometry,
                         const nand::NandTiming& timing,
                         std::uint32_t endurance_pe_cycles, TimingMode mode)
    : nand_(geometry, timing, endurance_pe_cycles),
      chips_(geometry.TotalChips()),
      channels_(geometry.channels),
      dies_(geometry.TotalDies()),
      page_transfer_us_(
          nand_.latency_model().TransferUs(geometry.page_size_bytes)),
      mode_(mode) {}

namespace {

[[noreturn]] void ThrowProtocolViolation(const char* op, std::uint64_t id,
                                         nand::NandStatus st) {
  LOG_ERROR << "FlashTarget::" << op << "(" << id
            << "): " << nand::NandStatusName(st);
  throw MediaError(std::string("FlashTarget::") + op + "(" +
                   std::to_string(id) + "): " + nand::NandStatusName(st));
}

}  // namespace

Us FlashTarget::ReadPage(Ppn ppn, Us earliest, std::uint64_t transfer_bytes) {
  return ReadPageChecked(ppn, earliest, transfer_bytes, ReadKind::kHost).done;
}

MediaReadResult FlashTarget::ReadPageChecked(Ppn ppn, Us earliest,
                                             std::uint64_t transfer_bytes,
                                             ReadKind kind) {
  MediaReadResult out;
  const BlockId block = geometry().BlockOf(ppn);
  if (faults_ != nullptr && faults_->Unreachable(block, earliest)) {
    // The die no longer responds: the command times out without touching
    // the array or the timelines.
    StatsFor(kind).lost_reads++;
    if (media_hook_ != nullptr) {
      media_hook_->OnUnreachable(
          static_cast<std::uint32_t>(geometry().DieOfBlock(block)), earliest);
    }
    out.done = earliest;
    out.die_lost = true;
    return out;
  }
  Us cell_us = 0;
  const nand::NandStatus st = nand_.Read(ppn, &cell_us);
  if (st != nand::NandStatus::kOk) ThrowProtocolViolation("ReadPage", ppn, st);
  const Us xfer_us =
      transfer_bytes == 0 || transfer_bytes >= geometry().page_size_bytes
          ? page_transfer_us_
          : nand_.latency_model().TransferUs(transfer_bytes);
  std::uint32_t extra_senses = 0;
  if (error_model_ != nullptr) {
    ReadErrorStats& stats = StatsFor(kind);
    const std::uint32_t page = geometry().PageOf(ppn);
    const std::uint32_t pe = nand_.PeCycles(block);
    double scale = faults_ != nullptr ? faults_->RberScale(block) : 1.0;
    const std::uint64_t bits = error_model_->SampleBitErrors(
        page, pe, error_rng_, transfer_bytes, scale);
    stats.sampled_reads++;
    stats.total_bit_errors += bits;
    if (!error_model_->Correctable(bits, transfer_bytes)) {
      stats.uncorrectable_reads++;  // first-sense semantics
      if (faults_ != nullptr) {
        // Read-retry ladder: each rung shifts read thresholds (modeled as a
        // reduced RBER) and re-senses at full cell latency.
        stats.retried_reads++;
        bool recovered = false;
        for (std::uint32_t r = 0; r < handling_.max_read_retries; ++r) {
          ++extra_senses;
          stats.retry_rungs++;
          scale *= handling_.retry_rber_scale;
          const std::uint64_t retry_bits = error_model_->SampleBitErrors(
              page, pe, error_rng_, transfer_bytes, scale);
          if (error_model_->Correctable(retry_bits, transfer_bytes)) {
            recovered = true;
            break;
          }
        }
        if (recovered) {
          stats.recovered_reads++;
        } else {
          stats.unrecovered_reads++;
          out.uncorrectable = true;
        }
      }
      // Without fault handling armed the failure is counted, not surfaced
      // (legacy reliability-probe semantics).
    }
  }
  if (faults_ != nullptr) faults_->OnRead(block);
  out.retries = extra_senses;
  const Us total_cell_us = cell_us * static_cast<Us>(1 + extra_senses);
  auto& chip = chips_.At(geometry().ChipOfBlock(block));
  auto& channel = channels_.At(geometry().ChannelOfBlock(block));
  auto& die = dies_.At(geometry().DieOfBlock(block));
  if (mode_ == TimingMode::kServiceTime) {
    chip.Reserve(chip.FreeAt(), total_cell_us);     // busy-time accounting only
    die.Reserve(die.FreeAt(), total_cell_us);
    channel.Reserve(channel.FreeAt(), xfer_us);
    if (media_hook_ != nullptr && extra_senses > 0) {
      // The retry ladder occupies the die after the first sense.
      media_hook_->OnReadRetry(
          static_cast<std::uint32_t>(geometry().DieOfBlock(block)),
          earliest + cell_us, cell_us * static_cast<Us>(extra_senses),
          extra_senses, !out.uncorrectable);
    }
    out.done = earliest + total_cell_us + xfer_us;
    return out;
  }
  const sim::Interval cell = die.Reserve(earliest, total_cell_us);
  chip.Reserve(chip.FreeAt(), total_cell_us);       // busy-time accounting only
  const sim::Interval xfer = channel.Reserve(cell.end, xfer_us);
  if (media_hook_ != nullptr && extra_senses > 0) {
    media_hook_->OnReadRetry(
        static_cast<std::uint32_t>(geometry().DieOfBlock(block)),
        cell.start + cell_us, cell_us * static_cast<Us>(extra_senses),
        extra_senses, !out.uncorrectable);
  }
  out.done = xfer.end;
  return out;
}

Us FlashTarget::ProgramPage(Ppn ppn, Us earliest) {
  return ProgramPageChecked(ppn, earliest).done;
}

MediaOpResult FlashTarget::ProgramPageChecked(Ppn ppn, Us earliest) {
  MediaOpResult out;
  const BlockId block = geometry().BlockOf(ppn);
  const bool unreachable =
      faults_ != nullptr && faults_->Unreachable(block, earliest);
  // The page is consumed even on failure (a failed verify still burns the
  // page; for a lost die we keep the fill bookkeeping consistent so the
  // allocator can burn past its dead frontier blocks).
  Us cell_us = 0;
  const nand::NandStatus st = nand_.Program(ppn, &cell_us);
  if (st != nand::NandStatus::kOk) {
    ThrowProtocolViolation("ProgramPage", ppn, st);
  }
  auto& chip = chips_.At(geometry().ChipOfBlock(block));
  auto& channel = channels_.At(geometry().ChannelOfBlock(block));
  auto& die = dies_.At(geometry().DieOfBlock(block));
  if (mode_ == TimingMode::kServiceTime) {
    channel.Reserve(channel.FreeAt(), page_transfer_us_);
    chip.Reserve(chip.FreeAt(), cell_us);
    die.Reserve(die.FreeAt(), cell_us);
    out.done = earliest + page_transfer_us_ + cell_us;
  } else {
    const sim::Interval xfer = channel.Reserve(earliest, page_transfer_us_);
    const sim::Interval cell = die.Reserve(xfer.end, cell_us);
    chip.Reserve(chip.FreeAt(), cell_us);           // busy-time accounting only
    out.done = cell.end;
  }
  if (unreachable) {
    out.failed = true;
    out.die_lost = true;
  } else if (faults_ != nullptr && faults_->DrawProgramFail()) {
    out.failed = true;
  }
  return out;
}

void FlashTarget::ArmErrorModel(const nand::ErrorModelConfig& config,
                                std::uint64_t seed) {
  if (state_restored_) {
    throw std::logic_error(
        "FlashTarget::ArmErrorModel: called after a state restore; arming "
        "reseeds the error RNG and zeroes the error stats, which would "
        "silently discard the restored state.  Arm before Restore (Ssd arms "
        "at construction).");
  }
  error_model_ = std::make_unique<nand::LayerErrorModel>(geometry(), config);
  error_rng_.Reseed(seed);
  error_stats_ = ReadErrorStats{};
  gc_error_stats_ = ReadErrorStats{};
}

void FlashTarget::ArmFaults(const nand::FaultPlanConfig& plan,
                            const FaultHandlingConfig& handling,
                            std::uint64_t seed) {
  handling.Validate();
  faults_ = std::make_unique<nand::FaultInjector>(geometry(), plan, seed);
  handling_ = handling;
}

std::uint32_t FlashTarget::MaxProgramAttempts() const {
  if (faults_ == nullptr) return 1;
  if (handling_.max_program_retries != 0) {
    return handling_.max_program_retries + 1;
  }
  return geometry().pages_per_block + 16;
}

Us FlashTarget::EraseBlock(BlockId block, Us earliest) {
  return EraseBlockChecked(block, earliest).done;
}

MediaOpResult FlashTarget::EraseBlockChecked(BlockId block, Us earliest) {
  MediaOpResult out;
  const bool unreachable =
      faults_ != nullptr && faults_->Unreachable(block, earliest);
  // Like programs, the erase executes behaviourally even when it then fails
  // verify (or the die is gone): pages reset and P/E bumps, so fill
  // bookkeeping stays consistent; the caller retires the block.
  Us erase_us = 0;
  const nand::NandStatus st = nand_.Erase(block, &erase_us);
  if (st != nand::NandStatus::kOk) {
    ThrowProtocolViolation("EraseBlock", block, st);
  }
  auto& chip = chips_.At(geometry().ChipOfBlock(block));
  auto& die = dies_.At(geometry().DieOfBlock(block));
  if (mode_ == TimingMode::kServiceTime) {
    chip.Reserve(chip.FreeAt(), erase_us);
    die.Reserve(die.FreeAt(), erase_us);
    out.done = earliest + erase_us;
  } else {
    const sim::Interval cell = die.Reserve(earliest, erase_us);
    chip.Reserve(chip.FreeAt(), erase_us);          // busy-time accounting only
    out.done = cell.end;
  }
  if (faults_ != nullptr) {
    faults_->OnErase(block);
    if (unreachable) {
      out.failed = true;
      out.die_lost = true;
    } else if (faults_->DrawEraseFail()) {
      out.failed = true;
    }
  }
  return out;
}

Us FlashTarget::DieFreeAt(BlockId block) const {
  return dies_.At(geometry().DieOfBlock(block)).FreeAt();
}

Us FlashTarget::CopyPage(Ppn from, Ppn to, Us earliest) {
  const Us read_done =
      ReadPageChecked(from, earliest, 0, ReadKind::kGc).done;
  return ProgramPage(to, read_done);
}

void FlashTarget::SaveReadStats(util::StateWriter& w,
                                const ReadErrorStats& s) {
  w.PutU64(s.sampled_reads);
  w.PutU64(s.total_bit_errors);
  w.PutU64(s.uncorrectable_reads);
  w.PutU64(s.retried_reads);
  w.PutU64(s.retry_rungs);
  w.PutU64(s.recovered_reads);
  w.PutU64(s.unrecovered_reads);
  w.PutU64(s.lost_reads);
}

void FlashTarget::LoadReadStats(util::StateReader& r, ReadErrorStats& s) {
  s.sampled_reads = r.GetU64();
  s.total_bit_errors = r.GetU64();
  s.uncorrectable_reads = r.GetU64();
  s.retried_reads = r.GetU64();
  s.retry_rungs = r.GetU64();
  s.recovered_reads = r.GetU64();
  s.unrecovered_reads = r.GetU64();
  s.lost_reads = r.GetU64();
}

void FlashTarget::SaveState(util::StateWriter& w) const {
  w.Tag("FTGT");
  nand_.SaveState(w);
  chips_.SaveState(w);
  channels_.SaveState(w);
  dies_.SaveState(w);
  error_rng_.SaveState(w);
  SaveReadStats(w, error_stats_);
  SaveReadStats(w, gc_error_stats_);
  w.PutBool(faults_ != nullptr);
  if (faults_ != nullptr) {
    w.PutU32(handling_.max_read_retries);
    w.PutDouble(handling_.retry_rber_scale);
    w.PutU32(handling_.max_program_retries);
    faults_->SaveState(w);
  }
}

void FlashTarget::LoadState(util::StateReader& r) {
  r.ExpectTag("FTGT");
  nand_.LoadState(r);
  chips_.LoadState(r);
  channels_.LoadState(r);
  dies_.LoadState(r);
  error_rng_.LoadState(r);
  LoadReadStats(r, error_stats_);
  LoadReadStats(r, gc_error_stats_);
  if (r.GetBool()) {
    handling_.max_read_retries = r.GetU32();
    handling_.retry_rber_scale = r.GetDouble();
    handling_.max_program_retries = r.GetU32();
    handling_.Validate();
    // Rebuild the injector from the serialized plan so a mid-campaign
    // snapshot resumes the same fault schedule.
    faults_ = std::make_unique<nand::FaultInjector>(
        geometry(), nand::FaultPlanConfig{}, /*seed=*/0);
    faults_->LoadState(r);
  } else {
    faults_.reset();
  }
  state_restored_ = true;
}

}  // namespace ctflash::ftl
