#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace ctflash::util {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256StarStar a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro, ReseedRestartsSequence) {
  Xoshiro256StarStar a(42);
  const auto first = a();
  a();
  a.Reseed(42);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro, UniformBelowStaysInRange) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformBelow(17), 17u);
  }
}

TEST(Xoshiro, UniformBelowOneAlwaysZero) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformBelow(1), 0u);
}

TEST(Xoshiro, UniformBelowZeroThrows) {
  Xoshiro256StarStar rng(7);
  EXPECT_THROW(rng.UniformBelow(0), std::invalid_argument);
}

TEST(Xoshiro, UniformBelowCoversAllResidues) {
  Xoshiro256StarStar rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, UniformInRangeInclusive) {
  Xoshiro256StarStar rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, UniformInRangeBadBoundsThrow) {
  Xoshiro256StarStar rng(9);
  EXPECT_THROW(rng.UniformInRange(5, 4), std::invalid_argument);
}

TEST(Xoshiro, UniformDoubleInUnitInterval) {
  Xoshiro256StarStar rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256StarStar rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Xoshiro, BernoulliApproximatesProbability) {
  Xoshiro256StarStar rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(100, 0.99);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 100; ++r) sum += zipf.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfOutOfRangeThrows) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_THROW(zipf.Pmf(10), std::out_of_range);
}

TEST(Zipf, RankZeroIsMostPopular) {
  const ZipfSampler zipf(1000, 1.1);
  for (std::uint64_t r = 1; r < 10; ++r) {
    EXPECT_GT(zipf.Pmf(0), zipf.Pmf(r));
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  const ZipfSampler zipf(50, 0.0);
  for (std::uint64_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, SamplesStayInRange) {
  const ZipfSampler zipf(37, 1.2);
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 37u);
}

TEST(Zipf, EmpiricalFrequencyTracksPmf) {
  const ZipfSampler zipf(20, 1.0);
  Xoshiro256StarStar rng(21);
  std::vector<int> counts(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (std::uint64_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.Pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(Zipf, SingleItemAlwaysRankZero) {
  const ZipfSampler zipf(1, 2.0);
  Xoshiro256StarStar rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

/// Property sweep: for a range of thetas, higher theta concentrates more
/// probability mass on the top rank.
class ZipfThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaSweep, TopRankMassGrowsWithTheta) {
  const double theta = GetParam();
  const ZipfSampler base(200, theta);
  const ZipfSampler steeper(200, theta + 0.3);
  EXPECT_GE(steeper.Pmf(0), base.Pmf(0));
}

TEST_P(ZipfThetaSweep, CdfMonotone) {
  const double theta = GetParam();
  const ZipfSampler zipf(64, theta);
  double cum = 0.0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    const double p = zipf.Pmf(r);
    EXPECT_GE(p, 0.0);
    cum += p;
  }
  EXPECT_NEAR(cum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaSweep,
                         ::testing::Values(0.0, 0.5, 0.9, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace ctflash::util
