// Quickstart: build a scaled 3D charge-trap SSD, run the same synthetic
// web-server workload against the conventional FTL and the PPB FTL, and
// print the side-by-side latency comparison.
//
//   ./quickstart [device_bytes] [requests]
#include <cstdint>
#include <iostream>
#include <string>

#include "ssd/experiment.h"
#include "trace/synthetic.h"
#include "util/config.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;

  std::uint64_t device_bytes = 2 * kGiB;
  std::uint64_t requests = 200'000;
  if (argc > 1) device_bytes = util::ParseByteSize(argv[1]);
  if (argc > 2) requests = std::stoull(argv[2]);

  // A scaled device keeping the paper's Table 1 block shape and timing.
  const auto base =
      ssd::ScaledConfig(ssd::FtlKind::kConventional, device_bytes,
                        /*page_size_bytes=*/16 * 1024, /*speed_ratio=*/2.0);
  std::cout << "Device: " << base.geometry.ToString() << "\n";
  std::cout << "Timing: read " << base.timing.page_read_us << "us, program "
            << base.timing.page_program_us << "us, erase "
            << base.timing.block_erase_us << "us, speed ratio "
            << base.timing.speed_ratio << "x\n\n";

  // Footprint below the exported capacity so GC has headroom.
  ssd::Ssd probe(base);
  const std::uint64_t footprint =
      probe.LogicalBytes() / 10 * 8;  // 80 % of logical space

  const auto workload = trace::WebServerWorkload(footprint, requests);
  const auto records = trace::SyntheticTraceGenerator(workload).Generate();
  const auto stats = trace::ComputeStats(records);
  std::cout << "Workload: " << workload.name << ", " << stats.total_requests
            << " requests, " << util::TablePrinter::FormatPercent(
                                    stats.ReadFraction())
            << " reads\n\n";

  auto conv_cfg = base;
  auto ppb_cfg = base;
  ppb_cfg.kind = ssd::FtlKind::kPpb;

  const auto conv = ssd::RunExperiment(conv_cfg, records, footprint, workload.name);
  const auto ppb = ssd::RunExperiment(ppb_cfg, records, footprint, workload.name);

  util::TablePrinter table({"metric", "conventional FTL", "FTL + PPB", "delta"});
  auto add = [&](const std::string& name, double a, double b, bool pct) {
    table.AddRow({name, util::TablePrinter::FormatDouble(a),
                  util::TablePrinter::FormatDouble(b),
                  pct ? util::TablePrinter::FormatPercent(
                            ssd::Enhancement(a, b))
                      : util::TablePrinter::FormatDouble(b - a)});
  };
  add("total read latency (s)", conv.TotalReadSeconds(), ppb.TotalReadSeconds(),
      true);
  add("mean read latency (us)", conv.read_latency.mean_us(),
      ppb.read_latency.mean_us(), true);
  add("total write latency (s)", conv.TotalWriteSeconds(),
      ppb.TotalWriteSeconds(), true);
  add("mean write latency (us)", conv.write_latency.mean_us(),
      ppb.write_latency.mean_us(), true);
  add("erased blocks", static_cast<double>(conv.erase_count),
      static_cast<double>(ppb.erase_count), false);
  add("WAF", conv.waf, ppb.waf, false);
  table.Print();

  std::cout << "\nRead enhancement: "
            << util::TablePrinter::FormatPercent(ssd::Enhancement(
                   conv.TotalReadSeconds(), ppb.TotalReadSeconds()))
            << " (paper reports up to 18.56% on the web trace)\n";
  return 0;
}
