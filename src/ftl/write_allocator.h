// Die-striped write frontiers: the page-grain allocation stage shared by
// every FTL variant's write path.
//
// The seed design funnelled all host writes through ONE active block, so a
// device with many channels/chips/dies still programmed at single-die
// throughput (write IOPS flat from QD 1 to QD 32 while reads scaled).  The
// WriteAllocator generalizes the active block to a per-stream FRONTIER SET:
// up to `write_frontiers` open blocks per stream, at most one per die, so
// consecutive pages of a large write land on different dies and overlap
// their program times under TimingMode::kQueued.
//
// A STREAM is an independent write context (host vs GC relocation for the
// conventional FTL; PPB additionally separates streams per area/class via
// the VirtualBlockManager, which reuses the DieStriper policy below).
// Invariants the property tests lock in:
//  * no PPN is handed out twice;
//  * a stream holds at most one open block per die;
//  * pages of one block are handed out strictly in program order;
//  * `write_frontiers = 1` reproduces the seed single-active-block path
//    bit-for-bit (lazy MarkFull at the next allocation, identical claim
//    order), so the paper-figure benches stay byte-identical.
//
// Frontier growth is opportunistic: the first block of a stream may always
// be claimed (the GC thresholds guarantee a spare, as in the seed), but
// extra frontiers are claimed only while the free pool stays above the
// stream's claim reserve.  Reserves are PER STREAM (SetStreamReserve)
// because the streams run at very different pool levels:
//  * host streams get gc_threshold_low — growth then never drops the pool
//    below the GC trigger, so GC fires no earlier than it would have.  A
//    reserve at gc_threshold_high would shut host striping off permanently
//    once the device first reaches GC steady state (GC stops reclaiming as
//    soon as the pool climbs past gc_threshold_low, so the pool never
//    revisits gc_threshold_high);
//  * the GC relocation stream gets a small flat cushion — it allocates
//    only while GC is draining the pool to its minimum (a host-level
//    reserve would make GC striping unreachable), and its claims are
//    self-compensating because every victim ends in an erase/release.
// Livelock safety comes from the spare-pool sizing in FtlBase
// (gc_threshold_high + 2 x write_frontiers beyond the logical capacity):
// the open frontier population (<= 2 x write_frontiers) can never absorb
// the whole spare pool, so FULL blocks always hold invalid pages and the
// greedy victim nets free space.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "ftl/block_manager.h"
#include "util/types.h"

namespace ctflash::ftl {

/// Which open frontier (die) receives the next page.
///  * kRoundRobin — rotate over the frontier dies in ascending die order,
///    breaking same-die ties (possible in PPB's shared fast lists) toward
///    the least-busy timeline;
///  * kLeastBusy  — earliest DieFreeAt wins, rotation breaks ties.
/// Both are deterministic.
enum class StripePolicy : std::uint8_t { kRoundRobin = 0, kLeastBusy = 1 };

const char* StripePolicyName(StripePolicy policy);

struct WriteAllocatorConfig {
  /// Max open blocks (= dies written in parallel) per stream; 1 = the seed
  /// single-active-block behavior.
  std::uint32_t write_frontiers = 1;
  StripePolicy stripe_policy = StripePolicy::kRoundRobin;

  void Validate() const;
};

/// Deterministic choice of which open block (die) to program next; one
/// instance per stream/list so each keeps its own rotation anchor.  Shared
/// between the WriteAllocator and PPB's VirtualBlockManager so both FTLs
/// stripe identically.
class DieStriper {
 public:
  DieStriper(std::function<std::uint64_t(BlockId)> die_of,
             std::function<Us(BlockId)> die_free_at, StripePolicy policy);

  /// Index into `candidates` (non-empty) of the block to program next;
  /// advances the rotation anchor to the chosen die.
  std::size_t Pick(const std::deque<BlockId>& candidates);

  void SaveState(util::StateWriter& w) const { w.PutU64(last_die_); }
  void LoadState(util::StateReader& r) { last_die_ = r.GetU64(); }

 private:
  std::function<std::uint64_t(BlockId)> die_of_;
  std::function<Us(BlockId)> die_free_at_;
  StripePolicy policy_;
  std::uint64_t last_die_ = ~0ull;  ///< rotation anchor (~0 = start at die 0)
};

/// Accept-filter for frontier growth, shared by WriteAllocator and PPB's
/// VirtualBlockManager: admits only blocks on dies that `open` (the
/// stream's current frontier blocks) does not cover.  The returned lambda
/// borrows both arguments — use it immediately.
std::function<bool(BlockId)> UncoveredDieFilter(
    const std::function<std::uint64_t(BlockId)>& die_of,
    const std::deque<BlockId>& open);

struct PageAllocation {
  Ppn ppn = kInvalidPpn;
  BlockId block = 0;
  std::uint64_t die = 0;
  /// A fresh physical block was claimed by this allocation.
  bool new_block = false;
};

class WriteAllocator {
 public:
  /// `die_of` maps a block to its global die index (NandGeometry::DieOfBlock)
  /// and `die_free_at` to the die timeline's availability
  /// (FlashTarget::DieFreeAt) for the striping policies.  `total_dies`
  /// (NandGeometry::TotalDies) caps a stream's frontier count — beyond it
  /// every die is covered and growth attempts would only rescan the free
  /// list.  `num_streams` independent write contexts are created;
  /// `claim_reserve_blocks` guards frontier growth beyond the first block
  /// (see file header).
  WriteAllocator(BlockManager& blocks, std::uint32_t pages_per_block,
                 std::function<std::uint64_t(BlockId)> die_of,
                 std::function<Us(BlockId)> die_free_at,
                 std::uint64_t total_dies, const WriteAllocatorConfig& config,
                 std::uint32_t num_streams,
                 std::uint64_t claim_reserve_blocks);

  /// Overrides the growth reserve of one stream (see file header; the
  /// constructor's `claim_reserve_blocks` seeds every stream).
  void SetStreamReserve(std::uint32_t stream, std::uint64_t blocks);

  /// Next programmable PPN on `stream`, claiming/rotating frontiers as
  /// needed.  `policy` picks the free block on a claim (wear-aware streams
  /// pass kLeastWorn/kMostWorn).  Returns std::nullopt when a fresh block is
  /// required but the free list is empty (caller must garbage-collect).
  std::optional<PageAllocation> AllocatePage(std::uint32_t stream,
                                             AllocPolicy policy);

  // --- queries -------------------------------------------------------------
  std::uint32_t num_streams() const {
    return static_cast<std::uint32_t>(streams_.size());
  }
  const WriteAllocatorConfig& config() const { return config_; }

  /// Open frontier blocks of a stream (exhausted ones are swept lazily at
  /// the next AllocatePage, mirroring the seed's active-block lifecycle).
  const std::deque<BlockId>& Frontiers(std::uint32_t stream) const;

  /// Earliest die availability across a stream's open frontiers — the host
  /// scheduler's dispatch hint for writes (FtlBase::ProbeWriteFreeAt).
  /// std::nullopt when the stream has no open frontier yet.
  std::optional<Us> EarliestFrontierFreeAt(std::uint32_t stream) const;

  /// True when the next allocation on `stream` may claim a fresh block (an
  /// empty stream always may; a striped stream needs headroom under its
  /// frontier/die cap and a free pool above the reserve).  Cheap — no free
  /// list scan; the host scheduler uses it to treat writes as startable.
  bool CanGrow(std::uint32_t stream) const;

  /// Distinct dies this stream has ever programmed (GC-striping probes).
  std::size_t DiesTouched(std::uint32_t stream) const;

  /// Pages handed out for `block` so far (== NandDevice::NextProgramPage for
  /// blocks driven through this allocator).
  std::uint32_t FillOf(BlockId block) const;

  /// Structural invariants: frontier blocks are kOpen with in-range fill,
  /// and no stream holds two frontiers on one die.  O(streams * frontiers).
  bool CheckInvariants() const;

  /// Serializes per-block fill counters and every stream's frontier set,
  /// die coverage, reserves, growth memos, and striper rotation anchor.
  /// LoadState throws when block or stream counts mismatch.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  struct Stream {
    std::deque<BlockId> frontiers;
    DieStriper striper;
    std::set<std::uint64_t> dies_touched;
    std::uint64_t reserve = 0;  ///< growth guard (see file header)
    /// Growth-failure memo: when no free block sat on an uncovered die, the
    /// identical free-list scan would fail again until the free list or the
    /// frontier set changes — remember the state it failed at and skip.
    std::uint64_t growth_fail_generation = kNoGrowthFailure;
    std::size_t growth_fail_frontiers = 0;
  };
  static constexpr std::uint64_t kNoGrowthFailure = ~0ull;

  /// MarkFull + drop frontiers whose pages are exhausted.
  void SweepFull(Stream& s);
  /// Claims a fresh block into the stream; `first` bypasses the reserve
  /// guard and the uncovered-die filter (seed claim semantics).
  bool TryClaim(Stream& s, AllocPolicy policy, bool first);

  BlockManager& blocks_;
  std::uint32_t pages_per_block_;
  std::function<std::uint64_t(BlockId)> die_of_;
  std::function<Us(BlockId)> die_free_at_;
  WriteAllocatorConfig config_;
  std::uint32_t effective_frontiers_;  ///< min(write_frontiers, total_dies)
  std::vector<std::uint32_t> fill_;  ///< next page index per block
  std::vector<Stream> streams_;
};

}  // namespace ctflash::ftl
