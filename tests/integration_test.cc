// Cross-module integration tests: the whole stack (trace generator ->
// experiment runner -> SSD -> FTL -> virtual blocks -> NAND timing) exercised
// on both FTLs, checking the paper's headline relationships end to end.
#include <gtest/gtest.h>

#include "ssd/experiment.h"
#include "trace/synthetic.h"

namespace ctflash {
namespace {

using ssd::FtlKind;

ssd::SsdConfig Cfg(FtlKind kind, double speed_ratio = 2.0) {
  return ssd::ScaledConfig(kind, 1ull << 29, 16 * 1024, speed_ratio);  // 512 MiB
}

struct Pair {
  ssd::ExperimentResult conv;
  ssd::ExperimentResult ppb;
};

Pair RunBoth(double speed_ratio, std::uint64_t requests) {
  Pair out;
  for (const auto kind : {FtlKind::kConventional, FtlKind::kPpb}) {
    const auto cfg = Cfg(kind, speed_ratio);
    ssd::Ssd probe(cfg);
    const std::uint64_t footprint = probe.LogicalBytes() / 10 * 8;
    const auto wl = trace::WebServerWorkload(footprint, requests);
    const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
    auto res = ssd::RunExperiment(cfg, recs, footprint, wl.name);
    (kind == FtlKind::kConventional ? out.conv : out.ppb) = std::move(res);
  }
  return out;
}

TEST(Integration, UniformDeviceMakesFtlsEquivalent) {
  // R = 1: no speed asymmetry, so PPB can gain nothing — read and write
  // latency totals must match the conventional FTL exactly (same service
  // times for every op, placement irrelevant).
  const auto p = RunBoth(/*speed_ratio=*/1.0, /*requests=*/40000);
  EXPECT_DOUBLE_EQ(p.conv.TotalReadSeconds(), p.ppb.TotalReadSeconds());
  EXPECT_DOUBLE_EQ(p.conv.TotalWriteSeconds(), p.ppb.TotalWriteSeconds());
}

TEST(Integration, PpbImprovesReadsOnAsymmetricDevice) {
  const auto p = RunBoth(/*speed_ratio=*/3.0, /*requests=*/150000);
  const double enh =
      ssd::Enhancement(p.conv.TotalReadSeconds(), p.ppb.TotalReadSeconds());
  EXPECT_GT(enh, 0.02) << "PPB should clearly beat conventional reads";
}

TEST(Integration, WritePerformancePreserved) {
  // Paper Figs. 15-17: write latency essentially identical.
  const auto p = RunBoth(/*speed_ratio=*/3.0, /*requests=*/150000);
  const double delta =
      ssd::Enhancement(p.conv.TotalWriteSeconds(), p.ppb.TotalWriteSeconds());
  EXPECT_NEAR(delta, 0.0, 0.002);
}

TEST(Integration, EraseCountNotExcessivelyIncreased) {
  // Paper Fig. 18: GC efficiency retained.  PPB keeps a few more blocks open
  // (its class lists), which costs relatively more on very small devices, so
  // this check runs on a 2 GiB array where the open-block overhead is small.
  Pair p;
  for (const auto kind : {FtlKind::kConventional, FtlKind::kPpb}) {
    const auto cfg = ssd::ScaledConfig(kind, 2ull << 30, 16 * 1024, 2.0);
    ssd::Ssd probe(cfg);
    const std::uint64_t footprint = probe.LogicalBytes() / 10 * 8;
    const auto wl = trace::WebServerWorkload(footprint, 150000);
    const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
    auto res = ssd::RunExperiment(cfg, recs, footprint, wl.name);
    (kind == FtlKind::kConventional ? p.conv : p.ppb) = std::move(res);
  }
  ASSERT_GT(p.conv.erase_count, 0u);
  const double ratio = static_cast<double>(p.ppb.erase_count) /
                       static_cast<double>(p.conv.erase_count);
  EXPECT_LT(ratio, 1.10);
  EXPECT_GT(ratio, 0.85);
}

TEST(Integration, EnhancementGrowsWithSpeedRatio) {
  // Paper Figs. 13/14: the PPB gap widens from 2x to 5x.
  const auto p2 = RunBoth(2.0, 100000);
  const auto p5 = RunBoth(5.0, 100000);
  const double e2 =
      ssd::Enhancement(p2.conv.TotalReadSeconds(), p2.ppb.TotalReadSeconds());
  const double e5 =
      ssd::Enhancement(p5.conv.TotalReadSeconds(), p5.ppb.TotalReadSeconds());
  EXPECT_GT(e5, e2);
}

TEST(Integration, PpbServesMoreReadsFromFastPages) {
  const auto cfg = Cfg(FtlKind::kPpb, 2.0);
  ssd::Ssd ssd(cfg);
  const std::uint64_t footprint = ssd.LogicalBytes() / 10 * 8;
  const auto wl = trace::WebServerWorkload(footprint, 150000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(footprint);
  runner.Replay(recs, wl.name);
  const auto& ps = ssd.ppb()->ppb_stats();
  EXPECT_GT(ps.fast_reads, ps.slow_reads)
      << "hotness sorting should route most reads to fast pages";
  // The invariant battery still passes after a full workload.
  EXPECT_TRUE(ssd.ppb()->CheckInvariants());
}

TEST(Integration, HotnessOrderingReflectsPlacement) {
  // Mean read speed factor must be ordered iron-hot < cold < icy-cold and
  // iron-hot < hot (smaller factor = faster pages).
  const auto cfg = Cfg(FtlKind::kPpb, 2.0);
  ssd::Ssd ssd(cfg);
  const std::uint64_t footprint = ssd.LogicalBytes() / 10 * 8;
  const auto wl = trace::WebServerWorkload(footprint, 200000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(footprint);
  runner.Replay(recs, wl.name);
  const auto& ps = ssd.ppb()->ppb_stats();
  const double iron = ps.MeanReadFactor(core::HotnessLevel::kIronHot);
  const double hot = ps.MeanReadFactor(core::HotnessLevel::kHot);
  const double cold = ps.MeanReadFactor(core::HotnessLevel::kCold);
  const double icy = ps.MeanReadFactor(core::HotnessLevel::kIcyCold);
  EXPECT_LT(iron, hot);
  EXPECT_LT(iron, icy);
  EXPECT_LT(cold, icy);
}

TEST(Integration, MediaServerWorkloadRunsCleanly) {
  const auto cfg = Cfg(FtlKind::kPpb, 2.0);
  ssd::Ssd ssd(cfg);
  const std::uint64_t footprint = ssd.LogicalBytes() / 10 * 8;
  const auto wl = trace::MediaServerWorkload(footprint, 50000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(footprint);
  const auto res = runner.Replay(recs, wl.name);
  EXPECT_GT(res.read_latency.count(), 0u);
  EXPECT_GT(res.write_latency.count(), 0u);
  EXPECT_TRUE(ssd.ppb()->CheckInvariants());
}

TEST(Integration, QueuedTimingModeEndToEnd) {
  auto cfg = Cfg(FtlKind::kPpb, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  ssd::Ssd ssd(cfg);
  const std::uint64_t footprint = ssd.LogicalBytes() / 2;
  const auto wl = trace::WebServerWorkload(footprint, 20000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(footprint);
  const auto res = runner.Replay(recs, wl.name);
  // Queued mode sees contention: latencies at least as large as service time.
  EXPECT_GT(res.read_latency.mean_us(), 0.0);
  EXPECT_TRUE(ssd.ppb()->CheckInvariants());
}

}  // namespace
}  // namespace ctflash
