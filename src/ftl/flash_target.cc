#include "ftl/flash_target.h"

#include <cstdlib>

#include "util/logging.h"

namespace ctflash::ftl {

FlashTarget::FlashTarget(const nand::NandGeometry& geometry,
                         const nand::NandTiming& timing,
                         std::uint32_t endurance_pe_cycles, TimingMode mode)
    : nand_(geometry, timing, endurance_pe_cycles),
      chips_(geometry.TotalChips()),
      channels_(geometry.channels),
      dies_(geometry.TotalDies()),
      page_transfer_us_(
          nand_.latency_model().TransferUs(geometry.page_size_bytes)),
      mode_(mode) {}

Us FlashTarget::ReadPage(Ppn ppn, Us earliest, std::uint64_t transfer_bytes) {
  Us cell_us = 0;
  const nand::NandStatus st = nand_.Read(ppn, &cell_us);
  if (st != nand::NandStatus::kOk) {
    LOG_ERROR << "FlashTarget::ReadPage(" << ppn
              << "): " << nand::NandStatusName(st);
    std::abort();
  }
  const Us xfer_us =
      transfer_bytes == 0 || transfer_bytes >= geometry().page_size_bytes
          ? page_transfer_us_
          : nand_.latency_model().TransferUs(transfer_bytes);
  if (error_model_ != nullptr) {
    const BlockId blk = geometry().BlockOf(ppn);
    const std::uint64_t bits = error_model_->SampleBitErrors(
        geometry().PageOf(ppn), nand_.PeCycles(blk), error_rng_);
    error_stats_.sampled_reads++;
    error_stats_.total_bit_errors += bits;
    if (!error_model_->Correctable(bits)) error_stats_.uncorrectable_reads++;
  }
  const BlockId block = geometry().BlockOf(ppn);
  auto& chip = chips_.At(geometry().ChipOfBlock(block));
  auto& channel = channels_.At(geometry().ChannelOfBlock(block));
  auto& die = dies_.At(geometry().DieOfBlock(block));
  if (mode_ == TimingMode::kServiceTime) {
    chip.Reserve(chip.FreeAt(), cell_us);          // busy-time accounting only
    die.Reserve(die.FreeAt(), cell_us);
    channel.Reserve(channel.FreeAt(), xfer_us);
    return earliest + cell_us + xfer_us;
  }
  const sim::Interval cell = die.Reserve(earliest, cell_us);
  chip.Reserve(chip.FreeAt(), cell_us);            // busy-time accounting only
  const sim::Interval xfer = channel.Reserve(cell.end, xfer_us);
  return xfer.end;
}

Us FlashTarget::ProgramPage(Ppn ppn, Us earliest) {
  Us cell_us = 0;
  const nand::NandStatus st = nand_.Program(ppn, &cell_us);
  if (st != nand::NandStatus::kOk) {
    LOG_ERROR << "FlashTarget::ProgramPage(" << ppn
              << "): " << nand::NandStatusName(st);
    std::abort();
  }
  const BlockId block = geometry().BlockOf(ppn);
  auto& chip = chips_.At(geometry().ChipOfBlock(block));
  auto& channel = channels_.At(geometry().ChannelOfBlock(block));
  auto& die = dies_.At(geometry().DieOfBlock(block));
  if (mode_ == TimingMode::kServiceTime) {
    channel.Reserve(channel.FreeAt(), page_transfer_us_);
    chip.Reserve(chip.FreeAt(), cell_us);
    die.Reserve(die.FreeAt(), cell_us);
    return earliest + page_transfer_us_ + cell_us;
  }
  const sim::Interval xfer = channel.Reserve(earliest, page_transfer_us_);
  const sim::Interval cell = die.Reserve(xfer.end, cell_us);
  chip.Reserve(chip.FreeAt(), cell_us);            // busy-time accounting only
  return cell.end;
}

void FlashTarget::ArmErrorModel(const nand::ErrorModelConfig& config,
                                std::uint64_t seed) {
  error_model_ = std::make_unique<nand::LayerErrorModel>(geometry(), config);
  error_rng_.Reseed(seed);
  error_stats_ = ReadErrorStats{};
}

Us FlashTarget::EraseBlock(BlockId block, Us earliest) {
  Us erase_us = 0;
  const nand::NandStatus st = nand_.Erase(block, &erase_us);
  if (st != nand::NandStatus::kOk) {
    LOG_ERROR << "FlashTarget::EraseBlock(" << block
              << "): " << nand::NandStatusName(st);
    std::abort();
  }
  auto& chip = chips_.At(geometry().ChipOfBlock(block));
  auto& die = dies_.At(geometry().DieOfBlock(block));
  if (mode_ == TimingMode::kServiceTime) {
    chip.Reserve(chip.FreeAt(), erase_us);
    die.Reserve(die.FreeAt(), erase_us);
    return earliest + erase_us;
  }
  const sim::Interval cell = die.Reserve(earliest, erase_us);
  chip.Reserve(chip.FreeAt(), erase_us);           // busy-time accounting only
  return cell.end;
}

Us FlashTarget::DieFreeAt(BlockId block) const {
  return dies_.At(geometry().DieOfBlock(block)).FreeAt();
}

Us FlashTarget::CopyPage(Ppn from, Ppn to, Us earliest) {
  const Us read_done = ReadPage(from, earliest);
  return ProgramPage(to, read_done);
}

}  // namespace ctflash::ftl
