// Multi-tenant QoS — the noisy-neighbor bench.
//
// Scenario: a latency-sensitive paced tenant (open-loop reads every 2 ms
// over a private 20 % working-set slice) shares the device with a flooder
// (closed-loop QD 32 reads over the other 40 %).  Four arms per FTL
// variant, identical request streams:
//   * solo          — the paced tenant alone (its baseline p99);
//   * no-qos        — both streams through the tenant-less seed path
//                     (the interference the QoS engine exists to bound);
//   * weights       — tenants at 8:1 DRR weights in the paced tenant's
//                     favor;
//   * weights+limit — same weights plus an IOPS token bucket on the
//                     flooder.
//
// Asserted shape (std::runtime_error on violation, the bench error idiom),
// for BOTH FTL variants:
//   * no-qos degrades the paced tenant's read p99 strictly beyond the
//     weighted arms (the gap the engine closes);
//   * with weights (and with weights+limit) the paced tenant's read p99
//     stays within 2x of its solo baseline — the isolation bound;
//   * a separate two-saturating-tenant run at 2:1 weights serves 2:1
//     within +-10 % (dispatch ratio over the contention window).
//
// Also prints the per-queue latency/throughput breakdown of the weighted
// arm (util::TablePrinter) and writes BENCH_tenant_qos.json (--json
// overrides) so the numbers are diffable across PRs.
//
// With --tenant-trace <t>=<csv>[@host] (repeatable) the synthetic pair is
// replaced by real MSR CSV streams: each spec replays through the replay
// engine as that tenant under 8:1 DRR weights (tenant 0 favored), printing
// per-tenant latency/IOPS and asserting conservation only — a
// user-supplied trace carries no latency bounds.
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness.h"
#include "host/host_interface.h"
#include "host/load_generator.h"
#include "qos/tenant.h"
#include "replay/replay_engine.h"
#include "replay/replay_plan.h"
#include "replay/trace_source.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace ctflash;

constexpr std::uint64_t kRequestBytes = 16 * 1024;

// All arms of one FTL variant share a device shape and an 80 % prefill, so
// the snapshot cache prefills once per variant and restores everywhere
// else (restored state is bit-identical; bench_campaign asserts it).
bench::PrefillSnapshotCache g_prefills;

struct ArmResult {
  std::string ftl;
  std::string arm;
  double paced_p50_us = 0.0;
  double paced_p99_us = 0.0;
  double paced_mean_us = 0.0;
  double flooder_iops = 0.0;
  std::uint64_t flooder_throttled = 0;
};

ssd::SsdConfig DeviceConfig(ssd::FtlKind kind, std::uint64_t device_bytes) {
  auto cfg = ssd::ScaledConfig(kind, device_bytes, kRequestBytes, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  return cfg;
}

qos::QosConfig TwoTenants(std::uint32_t weight_paced,
                          std::uint32_t weight_flooder, double flooder_iops) {
  qos::QosConfig qos;
  qos.tenants.resize(2);
  qos.tenants[0].name = "paced";
  qos.tenants[0].weight = weight_paced;
  qos.tenants[0].queues = {0, 1};
  qos.tenants[1].name = "flooder";
  qos.tenants[1].weight = weight_flooder;
  qos.tenants[1].queues = {2, 3};
  qos.tenants[1].iops_limit = flooder_iops;  // 0 = uncapped
  return qos;
}

host::TenantWorkload PacedWorkload(const ssd::Ssd& ssd,
                                   std::uint64_t requests) {
  host::TenantWorkload paced;
  paced.tenant = 0;
  paced.interarrival_us = 2'000;
  paced.total_requests = requests;
  paced.read_fraction = 1.0;
  paced.request_bytes = kRequestBytes;
  paced.footprint_bytes = ssd.LogicalBytes() / 100 * 20;
  paced.seed = 31;
  return paced;
}

host::TenantWorkload FlooderWorkload(const ssd::Ssd& ssd,
                                     std::uint64_t requests) {
  host::TenantWorkload flooder;
  flooder.tenant = 1;
  flooder.queue_depth = 32;
  flooder.total_requests = requests;
  flooder.read_fraction = 1.0;
  flooder.request_bytes = kRequestBytes;
  flooder.footprint_base_bytes = ssd.LogicalBytes() / 100 * 20;
  flooder.footprint_bytes = ssd.LogicalBytes() / 100 * 40;
  flooder.seed = 32;
  return flooder;
}

/// One multi-tenant arm; `print_queues` dumps the per-queue breakdown.
ArmResult RunTenantArm(ssd::FtlKind kind, const std::string& arm,
                       std::uint64_t device_bytes, const qos::QosConfig& qos,
                       std::uint64_t paced_requests,
                       std::uint64_t flooder_requests, bool print_queues) {
  ssd::Ssd ssd(DeviceConfig(kind, device_bytes));
  const Us prefill_end =
      g_prefills.Prefill(ssd, ssd.LogicalBytes() / 100 * 80);

  host::HostConfig cfg;
  cfg.qos = qos;
  cfg.device_slots = 4;
  host::HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  std::vector<host::TenantWorkload> workloads = {
      PacedWorkload(ssd, paced_requests)};
  if (flooder_requests > 0) {
    workloads.push_back(FlooderWorkload(ssd, flooder_requests));
  }
  const auto results = host::MultiTenantGenerator(host, workloads).Run();

  ArmResult r;
  r.ftl = ssd::FtlKindName(kind);
  r.arm = arm;
  r.paced_p50_us = results[0].load.read_latency.p50_us();
  r.paced_p99_us = results[0].load.read_latency.p99_us();
  r.paced_mean_us = results[0].load.read_latency.mean_us();
  if (results.size() > 1) {
    r.flooder_iops = results[1].load.Iops();
    r.flooder_throttled = host.tenants()->StatsOf(1).throttled;
  }

  if (print_queues) {
    util::TablePrinter table({"queue", "tenant", "admitted", "completed",
                              "read p50", "read p99", "MiB"});
    for (std::size_t qid = 0; qid < host.stats().per_queue.size(); ++qid) {
      const auto& q = host.stats().per_queue[qid];
      table.AddRow(
          {std::to_string(qid),
           host.tenants()
               ->ConfigOf(host.tenants()->TenantOfQueue(
                   static_cast<std::uint32_t>(qid)))
               .name,
           std::to_string(q.admitted), std::to_string(q.completed),
           util::TablePrinter::FormatDouble(q.read_latency.p50_us()),
           util::TablePrinter::FormatDouble(q.read_latency.p99_us()),
           util::TablePrinter::FormatDouble(
               static_cast<double>(q.bytes_completed) / (1 << 20))});
    }
    std::cout << "\nPer-queue breakdown (" << r.ftl << ", " << arm
              << " arm):\n";
    table.Print();
  }
  return r;
}

/// The paced + flooder mix through the tenant-less seed path: the flooder
/// chains closed-loop through Submit, the paced reads arrive open-loop,
/// and nothing arbitrates between them.
ArmResult RunNoQosArm(ssd::FtlKind kind, std::uint64_t device_bytes,
                      std::uint64_t paced_requests,
                      std::uint64_t flooder_requests) {
  ssd::Ssd ssd(DeviceConfig(kind, device_bytes));
  const Us prefill_end =
      g_prefills.Prefill(ssd, ssd.LogicalBytes() / 100 * 80);

  host::HostConfig cfg;
  cfg.device_slots = 4;
  host::HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  const std::uint64_t flood_base = ssd.LogicalBytes() / 100 * 20;
  const std::uint64_t flood_span = ssd.LogicalBytes() / 100 * 40;
  util::Xoshiro256StarStar rng(32);
  std::uint64_t issued = 0;
  std::uint64_t flooder_done = 0;
  Us last_flood_us = 0;
  // The chain closure outlives every pending completion (host.Run()
  // returns drained), so callbacks capture it by plain pointer.
  std::function<void()> submit_flood = [&, self = &submit_flood]() {
    if (issued >= flooder_requests) return;
    ++issued;
    const std::uint64_t offset =
        flood_base +
        rng.UniformBelow(flood_span / kRequestBytes) * kRequestBytes;
    host.Submit(trace::OpType::kRead, offset, kRequestBytes,
                [self, &flooder_done,
                 &last_flood_us](const host::HostCompletion& c) {
                  ++flooder_done;
                  last_flood_us = std::max(last_flood_us, c.completion_us);
                  (*self)();
                });
  };
  const Us t0 = host.queue().Now();
  for (int i = 0; i < 32; ++i) submit_flood();

  util::Xoshiro256StarStar paced_rng(31);
  util::LatencyStats paced;
  const std::uint64_t paced_span = ssd.LogicalBytes() / 100 * 20;
  for (std::uint64_t i = 0; i < paced_requests; ++i) {
    const std::uint64_t offset =
        paced_rng.UniformBelow(paced_span / kRequestBytes) * kRequestBytes;
    host.SubmitAt(t0 + static_cast<Us>(i) * 2'000, trace::OpType::kRead,
                  offset, kRequestBytes,
                  [&paced](const host::HostCompletion& c) {
                    paced.Add(c.LatencyUs());
                  });
  }
  host.Run();

  ArmResult r;
  r.ftl = ssd::FtlKindName(kind);
  r.arm = "no-qos";
  r.paced_p50_us = paced.p50_us();
  r.paced_p99_us = paced.p99_us();
  r.paced_mean_us = paced.mean_us();
  const Us span = last_flood_us - t0;
  r.flooder_iops = span > 0 ? static_cast<double>(flooder_done) * 1e6 /
                                  static_cast<double>(span)
                            : 0.0;
  return r;
}

/// Two identical saturating closed-loop tenants at 2:1 weights; returns
/// the per-tenant dispatch ratio over the contention window.
double RunWeightRatio(ssd::FtlKind kind, std::uint64_t device_bytes,
                      std::uint64_t requests) {
  ssd::Ssd ssd(DeviceConfig(kind, device_bytes));
  const Us prefill_end =
      g_prefills.Prefill(ssd, ssd.LogicalBytes() / 100 * 80);

  host::HostConfig cfg;
  cfg.qos = TwoTenants(2, 1, 0.0);
  cfg.device_slots = 4;
  host::HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  std::uint64_t dispatches[2] = {0, 0};
  bool counting = true;
  host.scheduler().OnDispatch([&](const host::FlashTransaction& txn) {
    if (!counting || txn.tenant == qos::kNoTenant) return;
    dispatches[txn.tenant]++;
    if (dispatches[txn.tenant] >= requests) counting = false;
  });

  host::TenantWorkload base;
  base.queue_depth = 16;
  base.total_requests = requests;
  base.read_fraction = 1.0;
  base.request_bytes = kRequestBytes;
  base.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  std::vector<host::TenantWorkload> workloads(2, base);
  workloads[0].tenant = 0;
  workloads[0].seed = 21;
  workloads[1].tenant = 1;
  workloads[1].seed = 22;
  host::MultiTenantGenerator(host, workloads).Run();

  if (counting || dispatches[1] == 0) {
    throw std::runtime_error("weight-ratio run never reached saturation");
  }
  return static_cast<double>(dispatches[0]) /
         static_cast<double>(dispatches[1]);
}

void CheckArms(const ArmResult& solo, const ArmResult& no_qos,
               const ArmResult& weights, const ArmResult& weights_limit) {
  std::ostringstream os;
  if (!(no_qos.paced_p99_us > weights.paced_p99_us)) {
    os << weights.ftl << ": no-qos paced p99 (" << no_qos.paced_p99_us
       << " us) not above the weighted arm (" << weights.paced_p99_us
       << " us) — no interference to bound?";
    throw std::runtime_error(os.str());
  }
  for (const auto* arm : {&weights, &weights_limit}) {
    if (!(arm->paced_p99_us <= 2.0 * solo.paced_p99_us)) {
      os << arm->ftl << ": " << arm->arm << " paced p99 ("
         << arm->paced_p99_us << " us) breaks the 2x isolation bound (solo "
         << solo.paced_p99_us << " us)";
      throw std::runtime_error(os.str());
    }
  }
}

void WriteJson(const std::string& path, std::uint64_t device_bytes,
               const std::vector<ArmResult>& results,
               const std::vector<std::pair<std::string, double>>& ratios) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n"
      << "  \"bench\": \"tenant_qos\",\n"
      << "  \"workload\": \"paced open-loop reads (2ms, 20% slice) vs "
         "closed-loop QD32 read flooder (40% slice), 80% prefill\",\n"
      << "  \"device_bytes\": " << device_bytes << ",\n"
      << "  \"arms\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"ftl\": \"" << r.ftl << "\", \"arm\": \"" << r.arm
        << "\", \"paced_read_p50_us\": " << r.paced_p50_us
        << ", \"paced_read_p99_us\": " << r.paced_p99_us
        << ", \"paced_read_mean_us\": " << r.paced_mean_us
        << ", \"flooder_iops\": " << r.flooder_iops
        << ", \"flooder_throttled\": " << r.flooder_throttled << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"weighted_dispatch_ratio_2to1\": {";
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    out << "\"" << ratios[i].first << "\": " << ratios[i].second
        << (i + 1 < ratios.size() ? ", " : "");
  }
  out << "},\n  \"prefill\": " << g_prefills.JsonObject() << "\n}\n";
}

/// --tenant-trace mode: replays real MSR CSV streams as the tenants (8:1
/// DRR weights, tenant 0 favored) through the replay engine instead of the
/// synthetic paced/flooder pair.
int RunTenantTraceMode(const bench::BenchOptions& options,
                       const std::string& json_path) {
  const auto& specs = options.tenant_traces;
  auto cfg = DeviceConfig(ssd::FtlKind::kConventional, options.device_bytes);
  cfg.ftl.gc_routing = ftl::GcRouting::kScheduled;
  ssd::Ssd ssd(cfg);

  host::HostConfig host_cfg;
  host_cfg.qos = TwoTenants(8, 1, 0.0);
  for (const auto& spec : specs) {
    if (spec.tenant < host_cfg.qos.tenants.size() && !spec.hostname.empty()) {
      host_cfg.qos.tenants[spec.tenant].name = spec.hostname;
    }
  }
  host_cfg.device_slots = 4;
  host::HostInterface host(ssd, host_cfg);

  replay::ReplayPlan plan;
  const auto source_names = bench::AddTenantTraceSources(
      plan, specs, ssd.LogicalBytes(), host_cfg.qos.tenants.size());
  // Tenant -> its sources (several specs may feed one tenant).
  std::vector<std::string> tenant_sources(host_cfg.qos.tenants.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto& joined = tenant_sources[specs[i].tenant];
    joined += (joined.empty() ? "" : "+") + source_names[i];
  }

  replay::ReplayEngineConfig engine_cfg;
  engine_cfg.window_us = 250'000;
  replay::ReplayEngine engine(host, engine_cfg);
  const auto result = engine.Run(plan);

  std::uint64_t emitted = 0;
  for (const auto& counters : result.sources) emitted += counters.emitted;
  if (result.completed != emitted || host.Outstanding() != 0) {
    std::ostringstream os;
    os << "tenant trace replay conservation violated: emitted " << emitted
       << ", completed " << result.completed;
    throw std::runtime_error(os.str());
  }

  std::cout << "\n--- tenant trace replay (8:1 weights, tenant 0 favored) "
               "---\n";
  util::TablePrinter table({"tenant", "source", "records", "read p50 (us)",
                            "read p99 (us)", "write p99 (us)", "IOPS"});
  for (const auto& tenant : result.tenants) {
    if (tenant.completed == 0) continue;
    table.AddRow(
        {tenant.name,
         tenant_sources[tenant.tenant].empty() ? "-"
                                               : tenant_sources[tenant.tenant],
         std::to_string(tenant.completed),
         util::TablePrinter::FormatDouble(tenant.read_latency.p50_us()),
         util::TablePrinter::FormatDouble(tenant.read_latency.p99_us()),
         util::TablePrinter::FormatDouble(tenant.write_latency.p99_us()),
         util::TablePrinter::FormatDouble(tenant.Iops(), 0)});
  }
  table.Print();

  std::ofstream out(json_path);
  if (!out) throw std::runtime_error("cannot write " + json_path);
  out << "{\n  \"bench\": \"tenant_qos\",\n  \"mode\": \"trace_replay\",\n"
      << "  \"device_bytes\": " << options.device_bytes << ",\n"
      << "  \"tenants\": [\n";
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    const auto& tenant = result.tenants[i];
    out << "    {\"tenant\": " << tenant.tenant << ", \"name\": \""
        << tenant.name << "\", \"completed\": " << tenant.completed
        << ", \"read_p99_us\": " << tenant.read_latency.p99_us()
        << ", \"iops\": " << tenant.Iops() << "}"
        << (i + 1 < result.tenants.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nAll assertions passed; JSON written to " << json_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using ctflash::bench::BenchOptions;
  auto options = BenchOptions::FromArgs(argc, argv);
  bool user_device = false;
  bool user_requests = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--device") user_device = true;
    if (arg == "--qd-requests") user_requests = true;
  }
  if (!user_device) options.device_bytes = 256ull << 20;
  // --qd-requests scales the flooder; the paced tenant keeps its cadence
  // and shares the flooder's active window.
  const std::uint64_t flooder_requests =
      user_requests ? options.qd_requests : 40'000;
  const std::uint64_t paced_requests = 400;
  const std::uint64_t ratio_requests =
      std::max<std::uint64_t>(2'000, flooder_requests / 8);
  const std::string json_path =
      options.json_path.empty() ? "BENCH_tenant_qos.json" : options.json_path;

  if (!options.tenant_traces.empty()) {
    return RunTenantTraceMode(options, json_path);
  }

  std::cout << "=== Multi-tenant QoS: noisy neighbor vs paced tenant ===\n"
            << "Paced open-loop reads (every 2 ms, private 20% slice) vs a\n"
            << "closed-loop QD32 read flooder; weighted DRR + token-bucket\n"
            << "rate limits vs the tenant-less seed path.\n"
            << "Device: " << (options.device_bytes >> 20) << " MiB; flooder "
            << flooder_requests << " requests\n";

  std::vector<ArmResult> results;
  std::vector<std::pair<std::string, double>> ratios;
  for (const auto kind :
       {ctflash::ssd::FtlKind::kConventional, ctflash::ssd::FtlKind::kPpb}) {
    const auto solo =
        RunTenantArm(kind, "solo", options.device_bytes, TwoTenants(8, 1, 0.0),
                     paced_requests, 0, false);
    const auto no_qos = RunNoQosArm(kind, options.device_bytes, paced_requests,
                                    flooder_requests);
    const auto weights =
        RunTenantArm(kind, "weights", options.device_bytes,
                     TwoTenants(8, 1, 0.0), paced_requests, flooder_requests,
                     kind == ctflash::ssd::FtlKind::kConventional);
    const auto weights_limit = RunTenantArm(
        kind, "weights+limit", options.device_bytes,
        TwoTenants(8, 1, 20'000.0), paced_requests, flooder_requests, false);
    CheckArms(solo, no_qos, weights, weights_limit);
    results.push_back(solo);
    results.push_back(no_qos);
    results.push_back(weights);
    results.push_back(weights_limit);

    const double ratio =
        RunWeightRatio(kind, options.device_bytes, ratio_requests);
    if (ratio < 1.8 || ratio > 2.2) {
      std::ostringstream os;
      os << ctflash::ssd::FtlKindName(kind)
         << ": 2:1 weighted dispatch ratio out of tolerance: " << ratio;
      throw std::runtime_error(os.str());
    }
    ratios.emplace_back(ctflash::ssd::FtlKindName(kind), ratio);
  }

  std::cout << "\n";
  ctflash::util::TablePrinter table({"FTL", "arm", "paced p50", "paced p99",
                                     "paced mean", "flooder IOPS",
                                     "throttled"});
  for (const auto& r : results) {
    table.AddRow({r.ftl, r.arm,
                  ctflash::util::TablePrinter::FormatDouble(r.paced_p50_us),
                  ctflash::util::TablePrinter::FormatDouble(r.paced_p99_us),
                  ctflash::util::TablePrinter::FormatDouble(r.paced_mean_us),
                  ctflash::util::TablePrinter::FormatDouble(r.flooder_iops),
                  std::to_string(r.flooder_throttled)});
  }
  table.Print();

  for (std::size_t i = 0; i + 3 < results.size(); i += 4) {
    const auto& solo = results[i];
    const auto& no_qos = results[i + 1];
    const auto& weights = results[i + 2];
    std::cout << "\n" << solo.ftl << ": paced read p99 " << weights.paced_p99_us
              << " us with QoS vs " << no_qos.paced_p99_us
              << " us unarbitrated (solo " << solo.paced_p99_us
              << " us; bound 2x solo)";
  }
  for (const auto& [ftl, ratio] : ratios) {
    std::cout << "\n" << ftl << ": 2:1 weights served at " << ratio << ":1";
  }
  std::cout << "\nprefill snapshots: " << g_prefills.distinct_prefills()
            << " prefills, " << g_prefills.restores() << " restores, ~"
            << g_prefills.saved_wall_ms() << " ms saved";
  std::cout << "\n\nAll assertions passed; JSON written to " << json_path
            << "\n";
  WriteJson(json_path, options.device_bytes, results, ratios);
  return 0;
}
