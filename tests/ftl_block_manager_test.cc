#include "ftl/block_manager.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::ftl {
namespace {

TEST(BlockManager, ConstructionValidation) {
  EXPECT_THROW(BlockManager(0, 8), std::invalid_argument);
  EXPECT_THROW(BlockManager(8, 0), std::invalid_argument);
}

TEST(BlockManager, AllocatesLowestIdFirst) {
  BlockManager bm(4, 8);
  EXPECT_EQ(bm.FreeCount(), 4u);
  EXPECT_EQ(bm.AllocateBlock().value(), 0u);
  EXPECT_EQ(bm.AllocateBlock().value(), 1u);
  EXPECT_EQ(bm.FreeCount(), 2u);
  EXPECT_EQ(bm.UseOf(0), BlockUse::kOpen);
  EXPECT_EQ(bm.UseOf(2), BlockUse::kFree);
}

TEST(BlockManager, ExhaustionReturnsNullopt) {
  BlockManager bm(2, 8);
  EXPECT_TRUE(bm.AllocateBlock().has_value());
  EXPECT_TRUE(bm.AllocateBlock().has_value());
  EXPECT_FALSE(bm.AllocateBlock().has_value());
}

TEST(BlockManager, ReleaseReinsertsSortedById) {
  BlockManager bm(4, 8);
  for (int i = 0; i < 4; ++i) bm.AllocateBlock();
  bm.MarkFull(2);
  bm.MarkFull(0);
  bm.Release(2);
  bm.Release(0);
  // Free list ordered by id: 0 first despite later release.
  EXPECT_EQ(bm.AllocateBlock().value(), 0u);
  EXPECT_EQ(bm.AllocateBlock().value(), 2u);
}

TEST(BlockManager, LifecycleErrors) {
  BlockManager bm(4, 8);
  EXPECT_THROW(bm.MarkFull(0), std::logic_error);  // not open
  bm.AllocateBlock();
  bm.MarkFull(0);
  EXPECT_THROW(bm.MarkFull(0), std::logic_error);  // already full
  bm.AddValid(0);
  EXPECT_THROW(bm.Release(0), std::logic_error);  // still valid data
  bm.RemoveValid(0);
  bm.Release(0);
  EXPECT_THROW(bm.Release(0), std::logic_error);  // already free
}

TEST(BlockManager, ValidCounterBounds) {
  BlockManager bm(2, 2);
  bm.AllocateBlock();
  EXPECT_THROW(bm.RemoveValid(0), std::logic_error);  // underflow
  bm.AddValid(0);
  bm.AddValid(0);
  EXPECT_THROW(bm.AddValid(0), std::logic_error);  // overflow (2 pages)
  EXPECT_EQ(bm.ValidCount(0), 2u);
}

TEST(BlockManager, RangeErrors) {
  BlockManager bm(2, 4);
  EXPECT_THROW(bm.ValidCount(2), std::out_of_range);
  EXPECT_THROW(bm.UseOf(2), std::out_of_range);
  EXPECT_THROW(bm.AddValid(2), std::out_of_range);
}

TEST(BlockManager, VictimPicksMinValidAmongFull) {
  BlockManager bm(4, 8);
  for (int i = 0; i < 3; ++i) bm.AllocateBlock();
  bm.MarkFull(0);
  bm.MarkFull(1);
  // Block 2 stays open: never a victim even with 0 valid.
  for (int i = 0; i < 5; ++i) bm.AddValid(0);
  for (int i = 0; i < 2; ++i) bm.AddValid(1);
  EXPECT_EQ(bm.PickGcVictim().value(), 1u);
}

TEST(BlockManager, VictimNoneWhenNothingFull) {
  BlockManager bm(4, 8);
  bm.AllocateBlock();
  EXPECT_FALSE(bm.PickGcVictim().has_value());
}

TEST(BlockManager, VictimTieBreaksByWearThenId) {
  BlockManager bm(4, 8);
  for (int i = 0; i < 4; ++i) bm.AllocateBlock();
  for (BlockId b = 0; b < 4; ++b) bm.MarkFull(b);
  // All equal valid counts; pe hints favour block 2.
  const std::vector<std::uint32_t> pe = {5, 5, 1, 5};
  EXPECT_EQ(bm.PickGcVictim(pe).value(), 2u);
  // Without hints: lowest id.
  EXPECT_EQ(bm.PickGcVictim().value(), 0u);
}

TEST(BlockManager, FilteredAllocationSkipsRejectedBlocks) {
  BlockManager bm(4, 8);
  // Lowest id passing the filter wins (id order preserved under filtering).
  const auto odd = bm.AllocateBlock(AllocPolicy::kById,
                                    [](BlockId b) { return b % 2 == 1; });
  EXPECT_EQ(odd.value(), 1u);
  const auto any = bm.AllocateBlock(AllocPolicy::kById);
  EXPECT_EQ(any.value(), 0u);
  // Nothing acceptable -> nullopt even though free blocks remain.
  EXPECT_EQ(bm.FreeCount(), 2u);
  EXPECT_FALSE(
      bm.AllocateBlock(AllocPolicy::kById, [](BlockId) { return false; })
          .has_value());
  EXPECT_EQ(bm.FreeCount(), 2u);
}

TEST(BlockManager, FilteredAllocationRespectsWearPolicy) {
  BlockManager bm(4, 8);
  const std::vector<std::uint32_t> wear = {5, 1, 7, 3};
  bm.SetWearProvider([&](BlockId b) { return wear[b]; });
  // Least-worn among the accepted blocks {0, 2, 3} is block 3 (wear 3) —
  // block 1 (wear 1) is filtered out.
  const auto b = bm.AllocateBlock(AllocPolicy::kLeastWorn,
                                  [](BlockId b) { return b != 1; });
  EXPECT_EQ(b.value(), 3u);
  const auto most = bm.AllocateBlock(AllocPolicy::kMostWorn);
  EXPECT_EQ(most.value(), 2u);  // wear 7
}

TEST(BlockManager, TotalValidSumsAllBlocks) {
  BlockManager bm(3, 8);
  bm.AllocateBlock();
  bm.AllocateBlock();
  bm.AddValid(0);
  bm.AddValid(0);
  bm.AddValid(1);
  EXPECT_EQ(bm.TotalValid(), 3u);
}

}  // namespace
}  // namespace ctflash::ftl
