#include "qos/tenant_table.h"

#include <algorithm>

#include "util/logging.h"

namespace ctflash::qos {

DrrArbiter::DrrArbiter(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)), deficit_(weights_.size(), 0) {}

TenantId DrrArbiter::Pick(const std::vector<bool>& active) {
  const std::uint32_t n = static_cast<std::uint32_t>(weights_.size());
  bool any = false;
  for (std::uint32_t t = 0; t < n; ++t) {
    if (active[t]) {
      any = true;
    } else {
      deficit_[t] = 0;  // idle tenants forfeit credit (no hoarding)
    }
  }
  if (!any) return kNoTenant;
  while (!active[cursor_]) cursor_ = (cursor_ + 1) % n;
  if (deficit_[cursor_] == 0) deficit_[cursor_] = weights_[cursor_];
  const TenantId pick = cursor_;
  if (--deficit_[cursor_] == 0) cursor_ = (cursor_ + 1) % n;
  return pick;
}

namespace {

/// Default burst when the config leaves it 0: 10 ms worth of the rate,
/// floored so a burst is never smaller than one sensible request.
double DefaultBurst(double rate_per_sec, double floor) {
  return std::max(rate_per_sec * 0.01, floor);
}

}  // namespace

TenantTable::TenantTable(const QosConfig& config, std::uint32_t num_queues)
    : tenants_(config.tenants),
      queue_tenant_(num_queues, kNoTenant),
      window_dispatches_(config.tenants.size(), 0),
      stats_(config.tenants.size()) {
  config.Validate(num_queues);
  std::vector<std::uint32_t> weights;
  weights.reserve(tenants_.size());
  for (TenantId t = 0; t < TenantCount(); ++t) {
    const TenantConfig& tenant = tenants_[t];
    for (const std::uint32_t qid : tenant.queues) queue_tenant_[qid] = t;
    weights.push_back(tenant.weight);
    iops_buckets_.emplace_back();
    bytes_buckets_.emplace_back();
    if (tenant.iops_limit > 0.0) {
      const double burst = tenant.iops_burst > 0.0
                               ? tenant.iops_burst
                               : DefaultBurst(tenant.iops_limit, 1.0);
      iops_buckets_.back() = TokenBucket(tenant.iops_limit, burst);
    }
    if (tenant.bytes_per_sec_limit > 0.0) {
      const double burst =
          tenant.bytes_burst > 0.0
              ? tenant.bytes_burst
              : DefaultBurst(tenant.bytes_per_sec_limit, 128.0 * 1024.0);
      bytes_buckets_.back() = TokenBucket(tenant.bytes_per_sec_limit, burst);
    }
    if (tenant.min_share > 0.0) any_min_share_ = true;
  }
  for (std::uint32_t c = 0; c < kArbClasses; ++c) {
    drr_.emplace_back(weights);
  }
}

Us TenantTable::AdmissionAt(TenantId tenant, Us now,
                            std::uint64_t bytes) const {
  const Us ops_at = iops_buckets_[tenant].EarliestAt(now, 1.0);
  const Us bytes_at =
      bytes_buckets_[tenant].EarliestAt(now, static_cast<double>(bytes));
  return std::max(ops_at, bytes_at);
}

void TenantTable::ChargeAdmission(TenantId tenant, Us now,
                                  std::uint64_t bytes) {
  iops_buckets_[tenant].Consume(now, 1.0);
  bytes_buckets_[tenant].Consume(now, static_cast<double>(bytes));
}

double TenantTable::WindowShareOf(TenantId tenant) const {
  if (window_total_ == 0) return 0.0;
  return static_cast<double>(window_dispatches_[tenant]) /
         static_cast<double>(window_total_);
}

TenantId TenantTable::PickTenant(ArbClass cls,
                                 const std::vector<bool>& active) {
  CTFLASH_CHECK(active.size() == tenants_.size());
  if (any_min_share_ && window_total_ > 0) {
    // Reservation floor: the most under-served reserved tenant goes first.
    TenantId starved = kNoTenant;
    double worst_gap = 0.0;
    for (TenantId t = 0; t < TenantCount(); ++t) {
      if (!active[t] || tenants_[t].min_share <= 0.0) continue;
      const double gap = tenants_[t].min_share - WindowShareOf(t);
      if (gap > worst_gap) {
        worst_gap = gap;
        starved = t;
      }
    }
    if (starved != kNoTenant) return starved;
  }
  return drr_[static_cast<std::uint32_t>(cls)].Pick(active);
}

void TenantTable::NoteDispatch(TenantId tenant, ArbClass cls) {
  if (cls == ArbClass::kRead) {
    stats_[tenant].read_dispatches++;
  } else {
    stats_[tenant].write_dispatches++;
  }
  if (!any_min_share_) return;  // the window only feeds the reservation
  window_dispatches_[tenant]++;
  if (++window_total_ >= 2 * kShareWindow) {
    // Halve instead of reset: shares decay smoothly, old phases fade.
    window_total_ = 0;
    for (auto& d : window_dispatches_) {
      d /= 2;
      window_total_ += d;
    }
  }
}

void TenantTable::ResetStats() {
  for (auto& s : stats_) s = TenantStats{};
}

}  // namespace ctflash::qos
