// Seed-parity lock-in for the multi-tenant QoS layer.
//
// A default HostConfig — no tenants configured, `write_aging_limit = 0` —
// must reproduce the pre-QoS host dispatch path bit-for-bit: identical
// dispatch order, identical latency totals and identical GC activity, for
// both GC routings and both FTL variants.  The golden fingerprints below
// were captured from the host interface before `src/qos/` existed; if this
// test fails, the QoS layer leaked into the default single-tenant path and
// silently changed every host-driven bench.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"

namespace ctflash {
namespace {

std::uint64_t Fold(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;  // FNV-1a
  }
  return h;
}

std::uint64_t Fold(std::uint64_t h, double v) {
  return Fold(h, std::bit_cast<std::uint64_t>(v));
}

struct Fingerprint {
  std::uint64_t dispatch = 0;  ///< every transaction in dispatch order
  std::uint64_t stats = 0;     ///< run aggregates + FTL counters
};

/// 85 % prefill, then a mixed closed-loop burst (QD 16, 50 % reads) through
/// a default-configured host interface; folds the full dispatch stream and
/// all replay-visible aggregates.
Fingerprint RunScenario(ssd::FtlKind kind, ftl::GcRouting routing) {
  auto cfg = ssd::ScaledConfig(kind, 128ull << 20, 16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  cfg.ftl.gc_routing = routing;
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner runner(ssd);
  const Us prefill_end = runner.Prefill(ssd.LogicalBytes() / 100 * 85);
  ssd.ftl().ResetStats();

  host::HostConfig host_cfg;  // the compatibility setting under test
  host::HostInterface host(ssd, host_cfg);
  host.AdvanceTo(prefill_end);

  Fingerprint fp;
  host.scheduler().OnDispatch([&fp](const host::FlashTransaction& txn) {
    fp.dispatch = Fold(fp.dispatch, static_cast<std::uint64_t>(txn.source));
    fp.dispatch = Fold(fp.dispatch, txn.seq);
    fp.dispatch = Fold(fp.dispatch, txn.lpn);
    fp.dispatch = Fold(fp.dispatch, txn.offset_bytes);
  });

  host::ClosedLoopGenerator::Config gen;
  gen.queue_depth = 16;
  gen.total_requests = 30'000;
  gen.read_fraction = 0.5;
  gen.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  gen.seed = 77;
  const host::LoadStats load = host::ClosedLoopGenerator(host, gen).Run();

  // The burst must be GC-heavy, otherwise the dispatch stream cannot tell
  // the routings (or a QoS leak into the GC arbitration) apart.
  EXPECT_GT(ssd.ftl().stats().gc_erases, 0u)
      << ssd::FtlKindName(kind) << "/" << ftl::GcRoutingName(routing);

  std::uint64_t h = 0;
  h = Fold(h, load.requests);
  h = Fold(h, static_cast<std::uint64_t>(load.end_us));
  h = Fold(h, load.read_latency.total_us());
  h = Fold(h, load.write_latency.total_us());
  h = Fold(h, load.read_latency.p99_us());
  h = Fold(h, load.write_latency.p99_us());
  h = Fold(h, host.TxnsDispatched());
  const auto& s = ssd.ftl().stats();
  h = Fold(h, s.host_read_pages);
  h = Fold(h, s.host_write_pages);
  h = Fold(h, s.gc_page_copies);
  h = Fold(h, s.gc_erases);
  h = Fold(h, s.gc_stale_copies);
  fp.stats = h;
  return fp;
}

// Golden fingerprints captured from the pre-qos host dispatch path.
struct Golden {
  ssd::FtlKind kind;
  ftl::GcRouting routing;
  std::uint64_t dispatch;
  std::uint64_t stats;
};

constexpr Golden kGoldens[] = {
    {ssd::FtlKind::kConventional, ftl::GcRouting::kInline,
     0xb609a8930e2ba90aull, 0x7d16ad52aef82027ull},
    {ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled,
     0x3080e7caff105c60ull, 0x8e3c3ad82017e7d4ull},
    {ssd::FtlKind::kPpb, ftl::GcRouting::kScheduled, 0x6f54ca1b698f7267ull,
     0x0da16ff388026607ull},
};

TEST(HostQosParity, DefaultConfigMatchesPreQosDispatchPath) {
  for (const auto& golden : kGoldens) {
    const auto fp = RunScenario(golden.kind, golden.routing);
    EXPECT_EQ(fp.dispatch, golden.dispatch)
        << ssd::FtlKindName(golden.kind) << "/"
        << ftl::GcRoutingName(golden.routing) << " dispatch fingerprint: 0x"
        << std::hex << fp.dispatch;
    EXPECT_EQ(fp.stats, golden.stats)
        << ssd::FtlKindName(golden.kind) << "/"
        << ftl::GcRoutingName(golden.routing) << " stats fingerprint: 0x"
        << std::hex << fp.stats;
  }
}

}  // namespace
}  // namespace ctflash
