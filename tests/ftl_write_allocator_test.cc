// Property tests for the die-striped write-frontier allocator: page
// conservation, no PPN handed out twice, at most one open block per
// (die, stream), striping really alternating dies, and the seed-compatible
// single-frontier lifecycle (lazy MarkFull, sequential fill).
#include "ftl/write_allocator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/random.h"

namespace ctflash::ftl {
namespace {

constexpr std::uint32_t kPagesPerBlock = 8;

/// Test fixture simulating a die layout without a FlashTarget: block b sits
/// on die b % dies; per-die busy times are poked directly.
struct Rig {
  explicit Rig(std::uint64_t total_blocks, std::uint64_t dies,
               WriteAllocatorConfig config = {}, std::uint32_t streams = 2,
               std::uint64_t reserve = 0)
      : blocks(total_blocks, kPagesPerBlock),
        die_busy(dies, 0),
        alloc(blocks, kPagesPerBlock,
              [dies](BlockId b) { return b % dies; },
              [this, dies](BlockId b) { return die_busy[b % dies]; }, dies,
              config, streams, reserve) {}

  BlockManager blocks;
  std::vector<Us> die_busy;
  WriteAllocator alloc;
};

TEST(WriteAllocator, ConstructionValidation) {
  BlockManager bm(4, kPagesPerBlock);
  auto die_of = [](BlockId b) { return b; };
  auto free_at = [](BlockId) { return Us{0}; };
  EXPECT_THROW(WriteAllocator(bm, kPagesPerBlock, die_of, free_at, 4,
                              WriteAllocatorConfig{0, StripePolicy::kRoundRobin},
                              1, 0),
               std::invalid_argument);
  EXPECT_THROW(
      WriteAllocator(bm, kPagesPerBlock, die_of, free_at, 4, {}, 0, 0),
      std::invalid_argument);
  EXPECT_THROW(
      WriteAllocator(bm, kPagesPerBlock + 1, die_of, free_at, 4, {}, 1, 0),
      std::invalid_argument);
}

TEST(WriteAllocator, FrontierCountCappedByDieCount) {
  // write_frontiers = 8 on a 2-die layout: the stream must stop growing at
  // 2 frontiers (any further claim attempt would only rescan the free list
  // for an uncovered die that cannot exist).
  Rig rig(16, 2, WriteAllocatorConfig{8, StripePolicy::kRoundRobin});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  }
  EXPECT_EQ(rig.alloc.Frontiers(0).size(), 2u);
  EXPECT_FALSE(rig.alloc.CanGrow(0));
  EXPECT_TRUE(rig.alloc.CheckInvariants());
}

TEST(WriteAllocator, CanGrowTracksReserveAndCaps) {
  Rig rig(6, 4, WriteAllocatorConfig{4, StripePolicy::kRoundRobin},
          /*streams=*/1, /*reserve=*/4);
  EXPECT_TRUE(rig.alloc.CanGrow(0));  // empty stream: first claim
  ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  // 5 free <= reserve would be false, 5 > 4 -> may still grow...
  EXPECT_TRUE(rig.alloc.CanGrow(0));
  ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  // ...but at 4 free == reserve growth stops.
  EXPECT_EQ(rig.blocks.FreeCount(), 4u);
  EXPECT_FALSE(rig.alloc.CanGrow(0));
}

TEST(WriteAllocator, SingleFrontierFillsBlocksSequentially) {
  // write_frontiers = 1 is the seed active-block behavior: block 0 fills
  // page-by-page, then block 1, with MarkFull deferred to the allocation
  // that discovers the exhaustion (GC must not see the block early).
  Rig rig(4, 2);
  for (std::uint32_t p = 0; p < kPagesPerBlock; ++p) {
    const auto a = rig.alloc.AllocatePage(0, AllocPolicy::kById);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->block, 0u);
    EXPECT_EQ(a->ppn, static_cast<Ppn>(p));
    EXPECT_EQ(a->new_block, p == 0);
  }
  // Exhausted but not yet swept: still open, invariants hold.
  EXPECT_EQ(rig.blocks.UseOf(0), BlockUse::kOpen);
  EXPECT_TRUE(rig.alloc.CheckInvariants());
  const auto a = rig.alloc.AllocatePage(0, AllocPolicy::kById);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->block, 1u);
  EXPECT_EQ(rig.blocks.UseOf(0), BlockUse::kFull);
}

TEST(WriteAllocator, StripingAlternatesDiesOnSequentialWrites) {
  Rig rig(16, 4, WriteAllocatorConfig{4, StripePolicy::kRoundRobin});
  std::vector<std::uint64_t> dies;
  for (int i = 0; i < 12; ++i) {
    const auto a = rig.alloc.AllocatePage(0, AllocPolicy::kById);
    ASSERT_TRUE(a.has_value());
    dies.push_back(a->die);
  }
  // The first four pages land on four distinct dies...
  EXPECT_EQ(std::set<std::uint64_t>(dies.begin(), dies.begin() + 4).size(), 4u);
  // ...and consecutive pages never share a die (round-robin rotation).
  for (std::size_t i = 1; i < dies.size(); ++i) {
    EXPECT_NE(dies[i], dies[i - 1]) << "page " << i;
  }
  EXPECT_EQ(rig.alloc.DiesTouched(0), 4u);
}

TEST(WriteAllocator, LeastBusyPolicyChasesIdleDies) {
  Rig rig(16, 4, WriteAllocatorConfig{2, StripePolicy::kLeastBusy});
  // Open two frontiers (dies 0 and 1), then make die 0 busy far out.
  ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  rig.die_busy[0] = 10'000;
  for (int i = 0; i < 3; ++i) {
    const auto a = rig.alloc.AllocatePage(0, AllocPolicy::kById);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->die, 1u) << "least-busy must keep hitting the idle die";
  }
  // Round-robin would alternate regardless of the busy timeline.
  Rig rr(16, 4, WriteAllocatorConfig{2, StripePolicy::kRoundRobin});
  ASSERT_TRUE(rr.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  ASSERT_TRUE(rr.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  rr.die_busy[0] = 10'000;
  const auto a1 = rr.alloc.AllocatePage(0, AllocPolicy::kById);
  const auto a2 = rr.alloc.AllocatePage(0, AllocPolicy::kById);
  ASSERT_TRUE(a1 && a2);
  EXPECT_NE(a1->die, a2->die);
}

TEST(WriteAllocator, ReserveGuardBlocksFrontierGrowth) {
  // First claim always succeeds; growth needs FreeCount > reserve.
  Rig rig(4, 4, WriteAllocatorConfig{4, StripePolicy::kRoundRobin},
          /*streams=*/1, /*reserve=*/3);
  for (std::uint32_t p = 0; p < kPagesPerBlock; ++p) {
    const auto a = rig.alloc.AllocatePage(0, AllocPolicy::kById);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->block, 0u) << "reserve must pin the stream to one frontier";
  }
  EXPECT_EQ(rig.alloc.Frontiers(0).size(), 1u);
}

TEST(WriteAllocator, ExhaustionReturnsNullopt) {
  Rig rig(2, 2, WriteAllocatorConfig{2, StripePolicy::kRoundRobin});
  for (std::uint32_t i = 0; i < 2 * kPagesPerBlock; ++i) {
    ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  }
  EXPECT_FALSE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
}

TEST(WriteAllocator, StreamsKeepIndependentFrontiers) {
  // Two streams may cover the same die — the invariant is per (die, stream).
  Rig rig(8, 2, WriteAllocatorConfig{2, StripePolicy::kRoundRobin});
  std::set<std::uint64_t> host_dies, gc_dies;
  std::set<BlockId> blocks_used;
  for (int i = 0; i < 2; ++i) {
    const auto host = rig.alloc.AllocatePage(0, AllocPolicy::kById);
    const auto gc = rig.alloc.AllocatePage(1, AllocPolicy::kById);
    ASSERT_TRUE(host && gc);
    host_dies.insert(host->die);
    gc_dies.insert(gc->die);
    blocks_used.insert(host->block);
    blocks_used.insert(gc->block);
  }
  // Both streams ended up covering both dies with four distinct blocks:
  // same die across streams is fine, same die within a stream is not.
  EXPECT_EQ(host_dies.size(), 2u);
  EXPECT_EQ(gc_dies.size(), 2u);
  EXPECT_EQ(blocks_used.size(), 4u);
  EXPECT_TRUE(rig.alloc.CheckInvariants());
}

TEST(WriteAllocator, EarliestFrontierFreeAtTracksDieTimelines) {
  Rig rig(16, 4, WriteAllocatorConfig{2, StripePolicy::kRoundRobin});
  EXPECT_FALSE(rig.alloc.EarliestFrontierFreeAt(0).has_value());
  ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  ASSERT_TRUE(rig.alloc.AllocatePage(0, AllocPolicy::kById).has_value());
  rig.die_busy[0] = 500;
  rig.die_busy[1] = 200;
  const auto free_at = rig.alloc.EarliestFrontierFreeAt(0);
  ASSERT_TRUE(free_at.has_value());
  EXPECT_EQ(*free_at, 200);
}

TEST(WriteAllocator, PropertyFuzzConservationAndUniqueness) {
  // Randomized allocation across streams and frontier configs: every PPN
  // unique, per-block page accounting consistent, structural invariants
  // (one open block per die per stream) after every step.
  util::Xoshiro256StarStar rng(0xA110C);
  for (const std::uint32_t frontiers : {1u, 2u, 3u, 4u}) {
    Rig rig(32, 4, WriteAllocatorConfig{frontiers, StripePolicy::kRoundRobin},
            /*streams=*/3, /*reserve=*/2);
    std::set<Ppn> seen;
    std::map<BlockId, std::uint32_t> handed;
    for (int step = 0; step < 2000; ++step) {
      const auto stream = static_cast<std::uint32_t>(rng.UniformBelow(3));
      const auto a = rig.alloc.AllocatePage(stream, AllocPolicy::kById);
      if (!a) break;  // free pool exhausted — fine, properties still hold
      EXPECT_TRUE(seen.insert(a->ppn).second)
          << "ppn " << a->ppn << " handed out twice";
      handed[a->block]++;
      ASSERT_TRUE(rig.alloc.CheckInvariants()) << "step " << step;
    }
    for (const auto& [block, count] : handed) {
      EXPECT_LE(count, kPagesPerBlock);
      EXPECT_EQ(count, rig.alloc.FillOf(block));
    }
    // Page conservation against the BlockManager's view: every fully
    // handed-out block is kOpen or kFull, never back on the free list.
    for (const auto& [block, count] : handed) {
      EXPECT_NE(rig.blocks.UseOf(block), BlockUse::kFree);
    }
  }
}

}  // namespace
}  // namespace ctflash::ftl
