// Deterministic pseudo-random utilities.
//
// Everything stochastic in ctflash flows through Xoshiro256StarStar so that
// experiments are reproducible bit-for-bit from a single seed.  The engine
// satisfies std::uniform_random_bit_generator and can be used with <random>
// distributions, but the helpers below avoid libstdc++ distribution objects
// whose sequences are not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/serial.h"
#include "util/types.h"

namespace ctflash::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    Reseed(seed);
  }

  /// Re-initializes the state from `seed` using splitmix64.
  void Reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t UniformBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformInRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  void SaveState(StateWriter& w) const {
    for (std::uint64_t s : state_) w.PutU64(s);
  }
  void LoadState(StateReader& r) {
    for (std::uint64_t& s : state_) s = r.GetU64();
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(theta) sampler over ranks [0, n).  theta = 0 is uniform; larger theta
/// skews mass toward low ranks.  Uses the classic inverse-CDF table for exact
/// sampling; construction is O(n), sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  std::uint64_t Sample(Xoshiro256StarStar& rng) const;

  /// Probability mass of a given rank.
  double Pmf(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace ctflash::util
