#include "obs/stats_export.h"

#include "ftl/flash_target.h"
#include "ftl/ftl_base.h"
#include "host/request.h"
#include "qos/tenant_table.h"

namespace ctflash::obs {

namespace {

void ExportLatency(const util::LatencyStats& stats, const std::string& name,
                   MetricsRegistry& registry) {
  registry.Histogram(name).Merge(stats);
}

}  // namespace

void ExportFtlStats(const ftl::FtlStats& stats, const std::string& prefix,
                    MetricsRegistry& registry) {
  registry.AddCounter(prefix + ".host_read_pages", stats.host_read_pages);
  registry.AddCounter(prefix + ".host_write_pages", stats.host_write_pages);
  registry.AddCounter(prefix + ".gc_page_copies", stats.gc_page_copies);
  registry.AddCounter(prefix + ".gc_erases", stats.gc_erases);
  registry.AddCounter(prefix + ".gc_stale_copies", stats.gc_stale_copies);
  registry.AddCounter(prefix + ".gc_time_us",
                      static_cast<std::uint64_t>(stats.gc_time_us));
  registry.SetGauge(prefix + ".waf", stats.Waf());
}

void ExportFaultStats(const ftl::FaultStats& stats, const std::string& prefix,
                      MetricsRegistry& registry) {
  registry.AddCounter(prefix + ".program_failures", stats.program_failures);
  registry.AddCounter(prefix + ".erase_failures", stats.erase_failures);
  registry.AddCounter(prefix + ".host_unreadable_pages",
                      stats.host_unreadable_pages);
  registry.AddCounter(prefix + ".gc_lost_pages", stats.gc_lost_pages);
}

void ExportReadErrorStats(const ftl::ReadErrorStats& stats,
                          const std::string& prefix,
                          MetricsRegistry& registry) {
  registry.AddCounter(prefix + ".sampled_reads", stats.sampled_reads);
  registry.AddCounter(prefix + ".total_bit_errors", stats.total_bit_errors);
  registry.AddCounter(prefix + ".uncorrectable_reads",
                      stats.uncorrectable_reads);
  registry.AddCounter(prefix + ".retried_reads", stats.retried_reads);
  registry.AddCounter(prefix + ".retry_rungs", stats.retry_rungs);
  registry.AddCounter(prefix + ".recovered_reads", stats.recovered_reads);
  registry.AddCounter(prefix + ".unrecovered_reads", stats.unrecovered_reads);
  registry.AddCounter(prefix + ".lost_reads", stats.lost_reads);
}

void ExportHostStats(const host::HostStats& stats, const std::string& prefix,
                     MetricsRegistry& registry) {
  registry.AddCounter(prefix + ".submitted", stats.submitted);
  registry.AddCounter(prefix + ".completed", stats.completed);
  registry.AddCounter(prefix + ".backlogged", stats.backlogged);
  registry.AddCounter(prefix + ".transactions_completed",
                      stats.transactions_completed);
  ExportLatency(stats.read_latency, prefix + ".read_latency", registry);
  ExportLatency(stats.write_latency, prefix + ".write_latency", registry);
  for (std::size_t q = 0; q < stats.per_queue.size(); ++q) {
    const host::QueueStats& qs = stats.per_queue[q];
    const std::string base = prefix + ".queue." + std::to_string(q);
    registry.AddCounter(base + ".admitted", qs.admitted);
    registry.AddCounter(base + ".completed", qs.completed);
    registry.AddCounter(base + ".bytes_completed", qs.bytes_completed);
    ExportLatency(qs.read_latency, base + ".read_latency", registry);
    ExportLatency(qs.write_latency, base + ".write_latency", registry);
  }
}

void ExportTenantStats(const qos::TenantTable& tenants,
                       const std::string& prefix, MetricsRegistry& registry) {
  for (std::uint32_t t = 0; t < tenants.TenantCount(); ++t) {
    const qos::TenantTable::TenantStats& ts = tenants.StatsOf(t);
    const std::string& name = tenants.ConfigOf(t).name;
    const std::string base =
        prefix + "." + (name.empty() ? std::to_string(t) : name);
    registry.AddCounter(base + ".submitted", ts.submitted);
    registry.AddCounter(base + ".completed", ts.completed);
    registry.AddCounter(base + ".bytes_completed", ts.bytes_completed);
    registry.AddCounter(base + ".throttled", ts.throttled);
    registry.AddCounter(base + ".throttle_wait_us",
                        static_cast<std::uint64_t>(ts.throttle_wait_us));
    registry.AddCounter(base + ".read_dispatches", ts.read_dispatches);
    registry.AddCounter(base + ".write_dispatches", ts.write_dispatches);
    ExportLatency(ts.read_latency, base + ".read_latency", registry);
    ExportLatency(ts.write_latency, base + ".write_latency", registry);
  }
}

}  // namespace ctflash::obs
