// Write-path scaling — the die-striped write-frontier bench.
//
// Closed-loop random 16 KiB WRITES through the multi-queue host interface
// at increasing queue depth, comparing:
//   * 4-channel device, write_frontiers = 1  (the seed single-active-block
//     baseline: IOPS pinned near single-die program throughput);
//   * 4-channel device, striped frontiers    (consecutive pages overlap
//     their program times across dies);
//   * 1-channel device, striped frontiers    (fewer dies -> lower ceiling:
//     the scaling really comes from die count, not from the knob).
//
// Asserted shape (std::runtime_error on violation, the bench error idiom):
//   * each series is monotone in QD up to a small tolerance;
//   * the striped 4-channel device sustains >= 2x the baseline write IOPS
//     at every QD >= 8;
//   * at saturation the striped 4-channel device beats the striped
//     1-channel device (die-count scaling).
//
// Results are also written as JSON (default BENCH_write_scaling.json,
// override with --json) so the numbers are diffable across PRs.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness.h"

namespace {

struct Series {
  std::string label;
  std::uint32_t channels = 0;
  std::uint32_t write_frontiers = 0;
  std::vector<ctflash::ssd::QdSweepPoint> points;

  double IopsAtQd(std::uint32_t qd) const {
    for (const auto& p : points) {
      if (p.queue_depth == qd) return p.iops;
    }
    throw std::runtime_error("no sweep point at QD " + std::to_string(qd));
  }
};

void CheckMonotone(const Series& s) {
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    if (s.points[i].iops < s.points[i - 1].iops * 0.98) {
      std::ostringstream os;
      os << s.label << ": write IOPS regressed at QD "
         << s.points[i].queue_depth << " (" << s.points[i].iops << " < "
         << s.points[i - 1].iops << ")";
      throw std::runtime_error(os.str());
    }
  }
}

void WriteJson(const std::string& path, std::uint64_t device_bytes,
               std::uint64_t requests, const std::vector<Series>& series,
               double scaling_at_qd8) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "{\n"
      << "  \"bench\": \"write_scaling\",\n"
      << "  \"workload\": \"closed-loop random 16KiB writes, 80% prefill\",\n"
      << "  \"device_bytes\": " << device_bytes << ",\n"
      << "  \"requests_per_point\": " << requests << ",\n"
      << "  \"striped_over_baseline_qd8\": " << scaling_at_qd8 << ",\n"
      << "  \"series\": [\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    out << "    {\"label\": \"" << s.label << "\", \"channels\": " << s.channels
        << ", \"write_frontiers\": " << s.write_frontiers
        << ", \"points\": [\n";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      const auto& p = s.points[j];
      out << "      {\"qd\": " << p.queue_depth << ", \"iops\": " << p.iops
          << ", \"mean_us\": " << p.mean_us << ", \"p99_us\": " << p.p99_us
          << ", \"die_util\": " << p.die_utilization
          << ", \"channel_util\": " << p.channel_utilization << "}"
          << (j + 1 < s.points.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < series.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ctflash;
  auto options = bench::BenchOptions::FromArgs(argc, argv);
  // Write sweeps churn GC; the default 64-deep list adds little beyond 32.
  if (options.qd_list == std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64}) {
    options.qd_list = {1, 2, 4, 8, 16, 32};
  }
  bench::PrintHeader("Write-Path Scaling (die-striped frontiers, closed loop)",
                     "ROADMAP write-path parallelism; Table 1 device",
                     options);

  ssd::QdSweepOptions sweep;
  sweep.queue_depths = options.qd_list;
  sweep.requests_per_point = options.qd_requests;
  sweep.read_fraction = 0.0;  // write-only: the path the seed serialized

  std::vector<Series> series = {
      {"4ch-baseline", 4, 1, {}},
      {"4ch-striped", 4, options.write_frontiers, {}},
      {"1ch-striped", 1, options.write_frontiers, {}},
  };
  for (Series& s : series) {
    const auto cfg =
        bench::WriteDeviceConfig(s.channels, s.write_frontiers, options);
    s.points = ssd::RunQdSweep(cfg, sweep);
    bench::PrintQdSweep(s.label + ": " + std::to_string(s.channels) +
                            "-channel device, write_frontiers=" +
                            std::to_string(s.write_frontiers) + ", " +
                            std::to_string(options.qd_requests) +
                            " random 16 KiB writes per point",
                        s.points);
    CheckMonotone(s);
  }

  // Acceptance shape: striping must at least double write IOPS wherever the
  // queue is deep enough to expose die parallelism.
  double scaling_at_qd8 = 0.0;
  for (const auto& p : series[1].points) {
    if (p.queue_depth < 8) continue;
    const double base = series[0].IopsAtQd(p.queue_depth);
    const double scale = base > 0 ? p.iops / base : 0.0;
    if (p.queue_depth == 8) scaling_at_qd8 = scale;
    if (scale < 2.0) {
      std::ostringstream os;
      os << "striped 4-channel write IOPS only " << scale << "x baseline at QD "
         << p.queue_depth << " (expected >= 2x)";
      throw std::runtime_error(os.str());
    }
  }
  const std::uint32_t sat_qd = options.qd_list.back();
  if (series[1].IopsAtQd(sat_qd) <= series[2].IopsAtQd(sat_qd)) {
    throw std::runtime_error(
        "4-channel striped device failed to out-throughput 1-channel at "
        "saturation — die-count scaling is broken");
  }

  const std::string json_path = options.json_path.empty()
                                    ? "BENCH_write_scaling.json"
                                    : options.json_path;
  WriteJson(json_path, options.device_bytes, options.qd_requests, series,
            scaling_at_qd8);

  std::cout << "Striped/baseline write IOPS at QD 8: x" << scaling_at_qd8
            << "  (>= 2x required)\n"
            << "Results written to " << json_path << "\n"
            << "Expected shape: baseline flat near single-die program\n"
               "throughput; striped series scale with die count to "
               "saturation.\n";
  return 0;
}
