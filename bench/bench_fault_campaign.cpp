// Fault-injection campaign bench: media errors the FTL must survive.
//
// Builds a durability grid — program-fail probability x read-disturb rate,
// replicated across `--replicas` decorrelated seeds — over ONE aged prefill
// snapshot, with the synthetic layer error model tuned so bottom-layer reads
// routinely fail their first sense and recover through the read-retry
// ladder.  SELF-ASSERTS the fault subsystem's core claims:
//
//   1. Zero aborts — every arm completes and is classified
//      (masked / recovered / data-loss); an arm that throws is classified
//      data-loss, never a crash.
//   2. Determinism — the deterministic report (fault counters included) is
//      byte-identical across worker counts.
//   3. Durability — at the default ECC budget and retry ladder, >= 99 % of
//      arms finish without data loss, and the injection is not vacuous
//      (program failures and retried reads actually happened).
//   4. Bounded degradation — the worst faulty read p99 stays within
//      --p99-factor (default 3x) of the fault-free baseline arm.
//   5. Die loss — a small kill-one-die sub-campaign completes with every
//      arm classified (lost data is reported, not aborted on).
//
// Options:
//   --replicas <n>    seeds per grid point           (default 500)
//   --workers <n>     worker count for the main run  (default min(8, hw))
//   --device <sz>     device bytes per arm           (default 64 MiB)
//   --requests <n>    closed-loop requests per arm   (default 1500)
//   --p99-factor <x>  tail-latency bound vs baseline (default 3.0)
//   --quick           16 replicas + 1/2-length arms for smoke runs
//   --json <path>     result file (default BENCH_fault_campaign.json)
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "util/config.h"

namespace {

using ctflash::campaign::ArmResult;
using ctflash::campaign::CampaignResult;
using ctflash::campaign::CampaignRunner;
using ctflash::campaign::CampaignSpec;
using ctflash::campaign::Json;
using ctflash::campaign::JsonArray;
using ctflash::campaign::JsonObject;

struct Options {
  std::uint64_t replicas = 500;
  std::uint32_t workers = 0;  // 0 = min(8, hw_concurrency)
  std::uint64_t device_bytes = 64ull << 20;
  std::uint64_t requests = 1'500;
  double p99_factor = 3.0;
  std::string json_path = "BENCH_fault_campaign.json";
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--replicas") {
      o.replicas = std::stoull(next());
      if (o.replicas == 0) throw std::invalid_argument("--replicas must be >= 1");
    } else if (arg == "--workers") {
      o.workers = static_cast<std::uint32_t>(std::stoul(next()));
      if (o.workers == 0) throw std::invalid_argument("--workers must be >= 1");
    } else if (arg == "--device") {
      o.device_bytes = ctflash::util::ParseByteSize(next());
    } else if (arg == "--requests") {
      o.requests = std::stoull(next());
    } else if (arg == "--p99-factor") {
      o.p99_factor = std::stod(next());
    } else if (arg == "--quick") {
      o.replicas = 16;
      o.requests /= 2;
    } else if (arg == "--json") {
      o.json_path = next();
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

/// Shared arm skeleton: device, aged prefill, error model, workload.  The
/// error model is deliberately aggressive (bottom-layer RBER past the ECC
/// budget) so the retry ladder carries real traffic; the fault plan rides on
/// top of it.
Json Defaults(const Options& o) {
  Json defaults;
  defaults["device_bytes"] = o.device_bytes;
  defaults["prefill_pct"] = std::uint64_t{85};
  defaults["seed"] = std::uint64_t{11};
  Json em;
  em["base_rber"] = 7.5e-4;
  em["layer_skew"] = 8.0;
  defaults["error_model"] = em;
  Json workload;
  workload["kind"] = "closed_loop";
  workload["requests"] = o.requests;
  workload["queue_depth"] = std::uint64_t{8};
  workload["read_fraction"] = 0.7;
  defaults["workload"] = workload;
  return defaults;
}

/// The durability grid: program-fail x read-disturb, `replicas` arms per
/// grid point (empty patches; seeds decorrelate via defaults.seed + index,
/// and the fault seed mixes from the arm seed).
std::string DurabilitySpecText(const Options& o, std::uint64_t replicas) {
  Json spec;
  spec["campaign"] = "fault-durability";
  spec["workers"] = std::uint64_t{1};
  Json defaults = Defaults(o);
  Json faults;
  faults["program_fail_prob"] = 0.0;  // grid overrides
  faults["erase_fail_prob"] = 1e-3;
  defaults["faults"] = faults;
  spec["defaults"] = defaults;
  Json grid;
  grid["faults.program_fail_prob"] = Json(JsonArray{Json(1e-4), Json(1e-3)});
  grid["faults.read_disturb_per_read"] =
      Json(JsonArray{Json(0.0), Json(5e-4)});
  spec["grid"] = grid;
  JsonArray arms;
  for (std::uint64_t r = 0; r < replicas; ++r) arms.push_back(Json(JsonObject{}));
  spec["arms"] = Json(std::move(arms));
  return spec.Dump(2);
}

/// Fault-free baseline: same device/error-model/workload, no fault plan.
std::string BaselineSpecText(const Options& o) {
  Json spec;
  spec["campaign"] = "fault-baseline";
  spec["workers"] = std::uint64_t{1};
  spec["defaults"] = Defaults(o);
  return spec.Dump(2);
}

/// Kill-one-die sub-campaign: die 0 drops out mid-workload.
std::string DieLossSpecText(const Options& o, std::uint64_t replicas) {
  Json spec;
  spec["campaign"] = "fault-die-loss";
  spec["workers"] = std::uint64_t{1};
  Json defaults = Defaults(o);
  Json faults;
  faults["fail_dies"] = Json(JsonArray{Json(std::uint64_t{0})});
  faults["fail_at_us"] = std::uint64_t{1};
  defaults["faults"] = faults;
  spec["defaults"] = defaults;
  JsonArray arms;
  for (std::uint64_t r = 0; r < replicas; ++r) arms.push_back(Json(JsonObject{}));
  spec["arms"] = Json(std::move(arms));
  return spec.Dump(2);
}

int Fail(const std::string& what) {
  std::cerr << "SELF-ASSERT FAILED: " << what << "\n";
  return 1;
}

double ReadP99(const Json& metrics) {
  const Json* lat = metrics.Get("read_latency");
  if (lat == nullptr) return 0.0;
  return lat->GetDoubleOr("p99_us", 0.0);
}

std::uint64_t FaultCounter(const Json& metrics, const char* section,
                           const char* key) {
  const Json* faults = metrics.Get("faults");
  if (faults == nullptr) return 0;
  const Json* node = section != nullptr ? faults->Get(section) : faults;
  if (node == nullptr) return 0;
  return node->GetUintOr(key, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t workers =
      options.workers != 0 ? options.workers : std::min(8u, hw);

  std::cout << "=== Fault-injection campaign: durability vs tail latency ===\n";
  const CampaignSpec spec =
      CampaignSpec::Parse(DurabilitySpecText(options, options.replicas));
  std::cout << "Durability grid: " << spec.arms.size() << " arms ("
            << options.replicas << " replicas x 4 grid points), device "
            << (options.device_bytes >> 20) << " MiB, " << options.requests
            << " requests/arm, " << workers << " workers\n";

  // Baseline (fault-free) read p99 for the degradation bound.
  const CampaignSpec baseline_spec =
      CampaignSpec::Parse(BaselineSpecText(options));
  const ArmResult baseline =
      ctflash::campaign::RunCampaignArm(baseline_spec.arms[0], nullptr);
  if (!baseline.ok) {
    return Fail("fault-free baseline arm failed: " + baseline.error);
  }
  if (!baseline.outcome.empty()) {
    return Fail("fault-free baseline arm was classified \"" +
                baseline.outcome + "\" (outcomes are for fault arms only)");
  }
  const double baseline_p99 = ReadP99(baseline.metrics);
  if (baseline_p99 <= 0.0) return Fail("baseline read p99 is zero");
  std::cout << "baseline (fault-free) read p99: " << baseline_p99 << " us\n";

  // Assert 2: worker count must not change a single report byte.  Run a
  // small sub-grid twice rather than the full campaign (same code path).
  {
    const std::uint64_t det_replicas = std::min<std::uint64_t>(
        options.replicas, 8);
    CampaignRunner det(
        CampaignSpec::Parse(DurabilitySpecText(options, det_replicas)));
    const std::string one = det.Run(1).DeterministicJson().Dump(2);
    const std::string many =
        det.Run(std::max(2u, std::min(4u, hw))).DeterministicJson().Dump(2);
    std::cout << "deterministic report across worker counts: "
              << (one == many ? "IDENTICAL" : "DIFFER") << " (" << one.size()
              << " bytes, " << det_replicas * 4 << " arms)\n";
    if (one != many) {
      return Fail("worker count changed the deterministic fault report");
    }
  }

  // The main durability campaign.
  CampaignRunner runner(spec);
  CampaignResult result = runner.Run(workers);

  std::uint64_t masked = 0, recovered = 0, data_loss = 0;
  std::uint64_t failed_arms = 0;
  std::uint64_t total_program_failures = 0, total_retired = 0;
  std::uint64_t total_retried_reads = 0, total_recovered_reads = 0;
  double worst_p99 = 0.0;
  for (const ArmResult& arm : result.arms) {
    if (arm.outcome == "masked") {
      masked++;
    } else if (arm.outcome == "recovered") {
      recovered++;
    } else if (arm.outcome == "data-loss") {
      data_loss++;
    } else {
      return Fail("arm \"" + arm.name + "\" (index " +
                  std::to_string(arm.index) + ") has no outcome class");
    }
    if (!arm.ok) {
      failed_arms++;
      continue;  // no metrics to harvest
    }
    total_program_failures += FaultCounter(arm.metrics, nullptr,
                                           "program_failures");
    total_retired += FaultCounter(arm.metrics, nullptr, "blocks_retired");
    total_retried_reads += FaultCounter(arm.metrics, "host_reads",
                                        "retried_reads");
    total_recovered_reads += FaultCounter(arm.metrics, "host_reads",
                                          "recovered_reads");
    worst_p99 = std::max(worst_p99, ReadP99(arm.metrics));
  }
  const double survive_fraction =
      1.0 - static_cast<double>(data_loss) /
                static_cast<double>(result.arms.size());
  std::cout << "\noutcomes: " << masked << " masked, " << recovered
            << " recovered, " << data_loss << " data-loss (" << failed_arms
            << " arms died mid-run) -> survival "
            << 100.0 * survive_fraction << " %\n";
  std::cout << "recovery activity: " << total_program_failures
            << " program failures, " << total_retired
            << " blocks retired, " << total_retried_reads
            << " retried reads (" << total_recovered_reads
            << " recovered)\n";

  // Assert 3a: the injection must not be vacuous.
  if (total_program_failures == 0) {
    return Fail("no program failures injected across the whole campaign");
  }
  if (total_retried_reads == 0 || total_recovered_reads == 0) {
    return Fail("the read-retry ladder never ran/recovered");
  }
  // Assert 3b: durability at the default ECC budget + retry ladder.
  if (survive_fraction < 0.99) {
    return Fail("survival " + std::to_string(100.0 * survive_fraction) +
                " % below the 99 % durability bar");
  }
  // Assert 4: tail latency bounded even on the worst arm.
  const double p99_bound = options.p99_factor * baseline_p99;
  std::cout << "worst faulty read p99: " << worst_p99 << " us (bound "
            << p99_bound << " us = " << options.p99_factor << "x baseline)\n";
  if (worst_p99 > p99_bound) {
    return Fail("faulty read p99 exceeded the degradation bound");
  }

  // Assert 5: die loss is reported, not aborted on.
  const std::uint64_t die_loss_replicas =
      std::min<std::uint64_t>(options.replicas, 8);
  CampaignRunner die_runner(
      CampaignSpec::Parse(DieLossSpecText(options, die_loss_replicas)));
  CampaignResult die_result = die_runner.Run(workers);
  std::uint64_t die_classified = 0, die_lost = 0;
  for (const ArmResult& arm : die_result.arms) {
    if (arm.outcome.empty()) {
      return Fail("die-loss arm \"" + arm.name + "\" has no outcome class");
    }
    die_classified++;
    if (arm.outcome == "data-loss") die_lost++;
  }
  std::cout << "die-loss sub-campaign: " << die_classified << " arms classified, "
            << die_lost << " reported data loss\n";
  if (die_lost == 0) {
    return Fail("killing a die never cost data (injection vacuous?)");
  }

  Json report = result.Report();
  Json checks;
  checks["grid_arms"] = static_cast<std::uint64_t>(result.arms.size());
  checks["masked"] = masked;
  checks["recovered"] = recovered;
  checks["data_loss"] = data_loss;
  checks["failed_arms"] = failed_arms;
  checks["survival_fraction"] = survive_fraction;
  checks["program_failures"] = total_program_failures;
  checks["blocks_retired"] = total_retired;
  checks["retried_reads"] = total_retried_reads;
  checks["recovered_reads"] = total_recovered_reads;
  checks["baseline_read_p99_us"] = baseline_p99;
  checks["worst_faulty_read_p99_us"] = worst_p99;
  checks["p99_factor_bound"] = options.p99_factor;
  checks["die_loss_arms"] = die_classified;
  checks["die_loss_data_loss"] = die_lost;
  report["self_check"] = checks;
  std::ofstream out(options.json_path);
  out << report.Dump(2) << "\n";
  std::cout << "\nall self-asserts passed; wrote " << options.json_path << "\n";
  return 0;
}
