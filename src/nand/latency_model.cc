#include "nand/latency_model.h"

#include <cmath>
#include <stdexcept>

namespace ctflash::nand {

void NandTiming::Validate() const {
  if (page_read_us <= 0 || page_program_us <= 0 || block_erase_us <= 0) {
    throw std::invalid_argument("NandTiming: latencies must be > 0");
  }
  if (transfer_mb_per_s <= 0.0) {
    throw std::invalid_argument("NandTiming: transfer rate must be > 0");
  }
  if (speed_ratio < 1.0) {
    throw std::invalid_argument("NandTiming: speed_ratio must be >= 1");
  }
}

LatencyModel::LatencyModel(const NandGeometry& geometry,
                           const NandTiming& timing)
    : geometry_(geometry), timing_(timing) {
  geometry_.Validate();
  timing_.Validate();
}

double LatencyModel::SpeedFactor(std::uint32_t page_in_block) const {
  const std::uint32_t layer = geometry_.LayerOfPage(page_in_block);
  const std::uint32_t layers = geometry_.num_layers;
  const double depth =
      layers == 1 ? 1.0
                  : static_cast<double>(layer) / static_cast<double>(layers - 1);
  const double inv_r = 1.0 / timing_.speed_ratio;
  return 1.0 - depth * (1.0 - inv_r);
}

namespace {
Us ScaledUs(Us base, double factor) {
  const double v = static_cast<double>(base) * factor;
  const Us r = static_cast<Us>(std::llround(v));
  return r < 1 ? 1 : r;
}
}  // namespace

Us LatencyModel::ReadUs(std::uint32_t page_in_block) const {
  return ScaledUs(timing_.page_read_us, SpeedFactor(page_in_block));
}

Us LatencyModel::ProgramUs(std::uint32_t page_in_block) const {
  if (!timing_.program_layer_dependent) return timing_.page_program_us;
  return ScaledUs(timing_.page_program_us, SpeedFactor(page_in_block));
}

Us LatencyModel::TransferUs(std::uint64_t bytes) const {
  const double us = static_cast<double>(bytes) /
                    (timing_.transfer_mb_per_s * 1e6) * 1e6;
  const Us r = static_cast<Us>(std::llround(us));
  return r < 1 ? 1 : r;
}

double LatencyModel::MeanReadUs() const {
  double sum = 0.0;
  for (std::uint32_t p = 0; p < geometry_.pages_per_block; ++p) {
    sum += static_cast<double>(ReadUs(p));
  }
  return sum / geometry_.pages_per_block;
}

double LatencyModel::MeanProgramUs() const {
  double sum = 0.0;
  for (std::uint32_t p = 0; p < geometry_.pages_per_block; ++p) {
    sum += static_cast<double>(ProgramUs(p));
  }
  return sum / geometry_.pages_per_block;
}

}  // namespace ctflash::nand
