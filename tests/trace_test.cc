#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace ctflash::trace {
namespace {

TEST(MsrCsv, ParsesWellFormedLines) {
  std::istringstream in(
      "128166372003061629,web,0,Read,8192,4096,151\n"
      "128166372013061629,web,0,Write,16384,8192,220\n");
  const auto recs = ParseMsrCsv(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].timestamp_us, 0);  // rebased to zero
  EXPECT_EQ(recs[0].op, OpType::kRead);
  EXPECT_EQ(recs[0].offset_bytes, 8192u);
  EXPECT_EQ(recs[0].size_bytes, 4096u);
  // 1e7 FILETIME ticks = 1e6 microseconds.
  EXPECT_EQ(recs[1].timestamp_us, 1'000'000);
  EXPECT_EQ(recs[1].op, OpType::kWrite);
}

TEST(MsrCsv, AcceptsShortOpNamesAndCase) {
  std::istringstream in(
      "100,h,0,r,0,512,0\n"
      "110,h,0,W,512,512,0\n"
      "120,h,0,READ,1024,512,0\n");
  const auto recs = ParseMsrCsv(in);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].op, OpType::kRead);
  EXPECT_EQ(recs[1].op, OpType::kWrite);
  EXPECT_EQ(recs[2].op, OpType::kRead);
}

TEST(MsrCsv, SkipsCommentsBlanksAndZeroSizes) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "100,h,0,Read,0,0,0\n"  // zero size: dropped
      "200,h,0,Read,0,512,0\n");
  const auto recs = ParseMsrCsv(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].size_bytes, 512u);
}

TEST(MsrCsv, MalformedLinesThrowWithLineNumber) {
  std::istringstream bad_fields("100,h,0,Read\n");
  EXPECT_THROW(ParseMsrCsv(bad_fields), std::invalid_argument);
  std::istringstream bad_op("100,h,0,Fly,0,512,0\n");
  EXPECT_THROW(ParseMsrCsv(bad_op), std::invalid_argument);
  std::istringstream bad_num("xyz,h,0,Read,0,512,0\n");
  EXPECT_THROW(ParseMsrCsv(bad_num), std::invalid_argument);
}

TEST(MsrCsv, OutOfOrderTimestampsClampToZero) {
  std::istringstream in(
      "1000,h,0,Read,0,512,0\n"
      "900,h,0,Read,0,512,0\n");
  const auto recs = ParseMsrCsv(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].timestamp_us, 0);
}

TEST(MsrCsv, MissingFileThrows) {
  EXPECT_THROW(ParseMsrCsvFile("/no/such/trace.csv"), std::runtime_error);
}

TEST(MsrCsv, WriteReadRoundTrip) {
  std::vector<TraceRecord> recs = {
      {0, OpType::kRead, 4096, 8192},
      {1500, OpType::kWrite, 0, 4096},
      {99'000'000, OpType::kRead, 1 << 20, 65536},
  };
  std::ostringstream out;
  WriteMsrCsv(recs, out);
  std::istringstream in(out.str());
  const auto parsed = ParseMsrCsv(in);
  ASSERT_EQ(parsed.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(parsed[i], recs[i]) << "record " << i;
  }
}

TEST(TraceStats, AggregatesByOp) {
  std::vector<TraceRecord> recs = {
      {0, OpType::kRead, 0, 4096},
      {1, OpType::kRead, 8192, 8192},
      {2, OpType::kWrite, 4096, 16384},
  };
  const auto s = ComputeStats(recs);
  EXPECT_EQ(s.total_requests, 3u);
  EXPECT_EQ(s.read_requests, 2u);
  EXPECT_EQ(s.write_requests, 1u);
  EXPECT_EQ(s.read_bytes, 12288u);
  EXPECT_EQ(s.write_bytes, 16384u);
  EXPECT_EQ(s.max_offset_bytes, 4096u + 16384u);
  EXPECT_NEAR(s.ReadFraction(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.read_size.mean(), 6144.0);
}

TEST(TraceStats, EmptyTrace) {
  const auto s = ComputeStats({});
  EXPECT_EQ(s.total_requests, 0u);
  EXPECT_DOUBLE_EQ(s.ReadFraction(), 0.0);
}

}  // namespace
}  // namespace ctflash::trace
