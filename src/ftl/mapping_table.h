// Page-level logical-to-physical mapping with a reverse map for GC.
//
// Invariant: forward and reverse maps are mutually consistent — if
// Lookup(lpn) == ppn != kInvalidPpn then LpnOf(ppn) == lpn, and every mapped
// ppn has exactly one owner.  CheckConsistent() verifies this in O(n) and is
// exercised by the property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "util/serial.h"
#include "util/types.h"

namespace ctflash::ftl {

class MappingTable {
 public:
  MappingTable(std::uint64_t logical_pages, std::uint64_t physical_pages);

  std::uint64_t logical_pages() const { return forward_.size(); }
  std::uint64_t physical_pages() const { return reverse_.size(); }

  /// Current physical page of `lpn`, or kInvalidPpn when unmapped.
  Ppn Lookup(Lpn lpn) const;

  /// Owner of a physical page, or kInvalidLpn when free/invalidated.
  Lpn LpnOf(Ppn ppn) const;

  bool IsMapped(Lpn lpn) const { return Lookup(lpn) != kInvalidPpn; }

  /// Points `lpn` at `ppn`; returns the previous ppn (kInvalidPpn when the
  /// lpn was unmapped).  The previous physical page's reverse entry is
  /// cleared — the caller is responsible for marking it invalid in the
  /// block accounting.
  Ppn Update(Lpn lpn, Ppn ppn);

  /// Unmaps an lpn (trim); returns the released ppn or kInvalidPpn.
  Ppn Unmap(Lpn lpn);

  /// Clears the reverse entry of a relocated source page (GC move completed
  /// via Update on the destination).
  void ReleasePpn(Ppn ppn);

  std::uint64_t mapped_count() const { return mapped_; }

  /// Full O(n) cross-check of forward/reverse consistency.
  bool CheckConsistent() const;

  /// Serializes forward/reverse maps; LoadState throws on size mismatch.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  std::vector<Ppn> forward_;
  std::vector<Lpn> reverse_;
  std::uint64_t mapped_ = 0;
};

}  // namespace ctflash::ftl
