// Block-level I/O trace representation plus the MSR-Cambridge CSV codec.
//
// The paper drives its evaluation with two enterprise traces collected by
// Microsoft Research Cambridge [13,17] ("media server" and "web/SQL
// server").  Those exact traces are not redistributable, so ctflash ships
// (a) this parser for the published MSR CSV format, usable when the
// originals are available, and (b) synthetic generators with matching
// first-order properties (synthetic.h).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/types.h"

namespace ctflash::trace {

enum class OpType : std::uint8_t { kRead = 0, kWrite = 1 };

struct TraceRecord {
  Us timestamp_us = 0;        ///< arrival time relative to trace start
  OpType op = OpType::kRead;
  std::uint64_t offset_bytes = 0;
  std::uint64_t size_bytes = 0;

  bool operator==(const TraceRecord&) const = default;
};

/// Summary statistics over a trace (used by tests and by the bench headers
/// to document workload shape).
struct TraceStats {
  std::uint64_t total_requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t max_offset_bytes = 0;  ///< highest offset+size seen
  util::RunningMoments read_size;
  util::RunningMoments write_size;

  double ReadFraction() const {
    return total_requests == 0
               ? 0.0
               : static_cast<double>(read_requests) / total_requests;
  }
};

TraceStats ComputeStats(const std::vector<TraceRecord>& records);

/// Incremental MSR-Cambridge SNIA CSV decoder:
///   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
/// Timestamp is a Windows FILETIME (100 ns ticks); it is rebased so the
/// first accepted record starts at t=0.  Feed one line at a time — the
/// parser keeps only the rebase origin and a line counter, so callers that
/// stream a multi-GB trace hold O(1) parser state (the streaming reader in
/// src/replay/trace_source.h builds its bounded window on top of this).
/// Malformed input — too few fields, unknown op, negative or non-numeric or
/// uint64-overflowing offset/size/timestamp, offset+size wrapping past
/// 2^64 — raises std::invalid_argument naming the line number; corrupt
/// traces fail loudly instead of replaying as petabyte-range requests.
class MsrCsvParser {
 public:
  /// Decodes one CSV line.  Returns false for lines that carry no record
  /// (blank, '#' comment, zero-length ops); true fills `out`.  `hostname`
  /// (optional) receives the line's Hostname field, letting callers split a
  /// combined multi-server trace into per-host streams.
  bool ParseLine(const std::string& line, TraceRecord& out,
                 std::string* hostname = nullptr);

  /// Lines consumed so far (error messages are 1-based on this count).
  std::uint64_t LineCount() const { return lineno_; }

  /// Forgets the rebase origin and line count (restart a file).
  void Reset();

 private:
  std::uint64_t lineno_ = 0;
  std::int64_t base_filetime_ = -1;
};

/// One-shot wrappers over MsrCsvParser (whole trace materialized).
std::vector<TraceRecord> ParseMsrCsv(std::istream& in);
std::vector<TraceRecord> ParseMsrCsvFile(const std::string& path);

/// Serializes records back to the MSR CSV format (hostname/disk fixed).
void WriteMsrCsv(const std::vector<TraceRecord>& records, std::ostream& out,
                 const std::string& hostname = "ctflash");

}  // namespace ctflash::trace
