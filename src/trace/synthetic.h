// Synthetic workload generators standing in for the MSR Cambridge traces.
//
// PPB's benefit is driven by three workload properties (Section 3 of the
// paper): the share of sub-page writes (first-stage size-check classifier),
// read re-access skew (promotion of frequently read data into fast pages),
// and the update rate (progressive-migration opportunities).  The generators
// expose exactly those knobs:
//
//  * MediaServerWorkload(): ~90 % reads, large (64-256 KiB) mostly-sequential
//    streaming reads over Zipf-popular content, large write-once ingests,
//    plus a small stream of sub-page metadata updates to a hot region set —
//    write-once-read-many, the paper's "cold/icy-cold"-dominated trace.
//  * WebServerWorkload(): ~60/40 read/write, small (4-16 KiB) random
//    requests, strongly Zipf-skewed hot set with frequent overwrites — the
//    paper's "Web/SQL" trace where PPB gains the most.
//
// Popularity is modelled per fixed-size region.  A seeded permutation maps
// popularity rank -> region index so hot regions are scattered across the
// footprint (real file systems do not place hot data contiguously).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/random.h"
#include "util/types.h"

namespace ctflash::trace {

struct SizeWeight {
  std::uint64_t bytes = 4096;
  double weight = 1.0;
};

struct SyntheticWorkloadConfig {
  std::string name = "synthetic";
  std::uint64_t num_requests = 100'000;
  std::uint64_t footprint_bytes = 256 * kMiB;  ///< logical address span
  std::uint64_t region_bytes = kMiB;           ///< popularity granularity
  double read_fraction = 0.6;

  double read_zipf_theta = 0.99;   ///< popularity skew of reads over regions
  double write_zipf_theta = 0.99;  ///< popularity skew of writes
  /// How much write popularity coincides with read popularity: 1.0 means the
  /// most-written regions are the most-read ones (fully shared ranking);
  /// 0.0 means independent rankings (write-hot data like logs and session
  /// state is disjoint from the read-hot set).  Enterprise traces sit in
  /// between.
  double rw_popularity_correlation = 1.0;
  /// Metadata stream: a `metadata_fraction` share of writes are small
  /// (`metadata_size_bytes`) updates to the read-popular end of the address
  /// space (file-system metadata / index pages are both read and written),
  /// sampled with `hot_write_zipf_theta` skew on the READ ranking.
  double metadata_fraction = 0.0;
  std::uint64_t metadata_size_bytes = 4 * kKiB;
  double hot_write_zipf_theta = 1.2;

  /// Probability that a read continues sequentially after the previous one.
  double sequential_read_fraction = 0.0;

  std::vector<SizeWeight> read_sizes = {{16 * kKiB, 1.0}};
  std::vector<SizeWeight> write_sizes = {{16 * kKiB, 1.0}};

  /// Mean exponential inter-arrival gap.
  Us mean_interarrival_us = 100;
  std::uint64_t seed = 42;
  std::uint64_t alignment_bytes = 4096;

  void Validate() const;
};

/// Streaming generator; deterministic for a given config (seed included).
class SyntheticTraceGenerator {
 public:
  explicit SyntheticTraceGenerator(const SyntheticWorkloadConfig& config);

  /// Produces the next request.  Never returns zero-sized requests; offsets
  /// are aligned and clipped to the footprint.
  TraceRecord Next();

  /// Generates the whole trace (config.num_requests records).
  std::vector<TraceRecord> Generate();

  const SyntheticWorkloadConfig& config() const { return config_; }

 private:
  std::uint64_t SampleSize(const std::vector<SizeWeight>& dist,
                           double total_weight);
  std::uint64_t RegionOffset(const util::ZipfSampler& zipf,
                             const std::vector<std::uint64_t>& perm);

  SyntheticWorkloadConfig config_;
  util::Xoshiro256StarStar rng_;
  util::ZipfSampler read_zipf_;
  util::ZipfSampler write_zipf_;
  util::ZipfSampler hot_write_zipf_;
  std::vector<std::uint64_t> region_perm_;  ///< read popularity rank -> region
  std::vector<std::uint64_t> write_perm_;   ///< independent write ranking
  double read_size_weight_ = 0.0;
  double write_size_weight_ = 0.0;
  Us clock_us_ = 0;
  std::uint64_t next_sequential_offset_ = 0;
  bool have_prev_read_ = false;
};

/// The "media server" stand-in (see file header).  `footprint_bytes` should
/// be sized relative to the simulated device (e.g. ~85 % of exported space).
SyntheticWorkloadConfig MediaServerWorkload(std::uint64_t footprint_bytes,
                                            std::uint64_t num_requests,
                                            std::uint64_t seed = 1);

/// The "web/SQL server" stand-in (see file header).
SyntheticWorkloadConfig WebServerWorkload(std::uint64_t footprint_bytes,
                                          std::uint64_t num_requests,
                                          std::uint64_t seed = 2);

}  // namespace ctflash::trace
