// Media-server study: streaming reads over a write-once-read-many library.
// Shows how the cold area's access-frequency table progressively promotes
// popular content onto fast pages (icy-cold -> cold at GC time), and sweeps
// the speed ratio 2x-5x as in the paper's Figure 13.
//
//   ./media_server_study [device_bytes] [requests]
#include <cstdint>
#include <iostream>
#include <string>

#include "ssd/experiment.h"
#include "trace/synthetic.h"
#include "util/config.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;

  std::uint64_t device_bytes = 2 * kGiB;
  std::uint64_t requests = 400'000;
  if (argc > 1) device_bytes = util::ParseByteSize(argv[1]);
  if (argc > 2) requests = std::stoull(argv[2]);

  std::cout << "Media-server workload: 90% reads, 64-256 KiB streams over a\n"
               "Zipf-popular library, bulk ingest plus sub-page metadata.\n\n";

  util::TablePrinter table({"speed diff", "conv read (s)", "ppb read (s)",
                            "read enh", "ppb cold-level reads",
                            "mean factor (cold)"});
  for (const double ratio : {2.0, 3.0, 4.0, 5.0}) {
    double conv_total = 0.0;
    ssd::ExperimentResult ppb_res;
    const core::PpbFtl* ppb = nullptr;
    ssd::Ssd* keep = nullptr;
    ssd::Ssd conv_ssd(
        ssd::ScaledConfig(ssd::FtlKind::kConventional, device_bytes, 16 * 1024,
                          ratio));
    ssd::Ssd ppb_ssd(
        ssd::ScaledConfig(ssd::FtlKind::kPpb, device_bytes, 16 * 1024, ratio));
    keep = &ppb_ssd;
    const std::uint64_t footprint = conv_ssd.LogicalBytes() / 10 * 8;
    const auto wl = trace::MediaServerWorkload(footprint, requests);
    const auto records = trace::SyntheticTraceGenerator(wl).Generate();
    {
      ssd::ExperimentRunner runner(conv_ssd);
      runner.Prefill(footprint);
      conv_total = runner.Replay(records, wl.name).TotalReadSeconds();
    }
    {
      ssd::ExperimentRunner runner(ppb_ssd);
      runner.Prefill(footprint);
      ppb_res = runner.Replay(records, wl.name);
      ppb = keep->ppb();
    }
    const auto& ps = ppb->ppb_stats();
    table.AddRow(
        {util::TablePrinter::FormatDouble(ratio, 0) + "x",
         util::TablePrinter::FormatDouble(conv_total),
         util::TablePrinter::FormatDouble(ppb_res.TotalReadSeconds()),
         util::TablePrinter::FormatPercent(
             ssd::Enhancement(conv_total, ppb_res.TotalReadSeconds())),
         std::to_string(
             ps.reads_at_level[static_cast<int>(core::HotnessLevel::kCold)]),
         util::TablePrinter::FormatDouble(
             ps.MeanReadFactor(core::HotnessLevel::kCold))});
  }
  table.Print();
  std::cout << "\nThe cold-level mean factor dropping below the uniform\n"
               "average shows popular streams migrating to fast pages at GC\n"
               "(the paper's progressive icy-cold -> cold promotion).\n";
  return 0;
}
