// Figure 15 — Write Performance Enhancement.
//
// PPB write enhancement over the conventional FTL for both traces at 8 KiB
// and 16 KiB page sizes.  Paper result: essentially zero (-0.02% .. +0.08%);
// PPB must not degrade writes because data only moves during updates/GC.
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Figure 15: Write Performance Enhancement", "Figure 15",
                     options);

  util::TablePrinter table({"Trace", "8K Page Size", "16K Page Size"});
  for (const auto workload :
       {bench::Workload::kMediaServer, bench::Workload::kWebServer}) {
    std::vector<std::string> row{bench::WorkloadName(workload)};
    for (const std::uint32_t page : {8u * 1024, 16u * 1024}) {
      const auto cmp =
          bench::RunComparison(workload, page, /*speed_ratio=*/2.0, options);
      row.push_back(
          util::TablePrinter::FormatPercent(cmp.WriteEnhancement(), 4));
    }
    table.AddRow(row);
  }
  table.Print();
  std::cout << "\nPaper shape: write latency essentially identical\n"
               "(paper reports -0.02% .. +0.08%).\n";
  return 0;
}
