#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ctflash::util {
namespace {

TEST(RunningMoments, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 0.0);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(RunningMoments, BasicMoments) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_NEAR(m.variance(), 4.0, 1e-12);  // classic example set
  EXPECT_NEAR(m.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(RunningMoments, SingleSampleVarianceZero) {
  RunningMoments m;
  m.Add(3.5);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.5);
  EXPECT_DOUBLE_EQ(m.min(), 3.5);
  EXPECT_DOUBLE_EQ(m.max(), 3.5);
}

TEST(RunningMoments, MergeMatchesSequential) {
  RunningMoments all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningMoments, MergeWithEmptySides) {
  RunningMoments a, b;
  a.Add(1.0);
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningMoments, ResetClears) {
  RunningMoments m;
  m.Add(5.0);
  m.Reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h;
  for (std::uint64_t i = 0; i < 1000; ++i) h.Add(100);  // all in [64,128)
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
}

TEST(LogHistogram, QuantileOrdering) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 10; ++i) h.Add(v);
  }
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(1.0));
}

TEST(LogHistogram, ZeroGoesToFirstBucket) {
  LogHistogram h;
  h.Add(0);
  h.Add(1);
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(LogHistogram, BadQuantileThrows) {
  LogHistogram h;
  h.Add(5);
  EXPECT_THROW(h.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.Quantile(1.1), std::invalid_argument);
}

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.Add(10);
  b.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LatencyStats, TotalsAndUnits) {
  LatencyStats s;
  s.Add(1'000'000);  // 1 second
  s.Add(2'000'000);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.total_us(), 3e6);
  EXPECT_DOUBLE_EQ(s.total_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_us(), 1.5e6);
  EXPECT_DOUBLE_EQ(s.max_us(), 2e6);
  EXPECT_DOUBLE_EQ(s.min_us(), 1e6);
}

TEST(LatencyStats, NegativeLatencyClampsHistogramOnly) {
  LatencyStats s;
  s.Add(-5);  // defensive: moments keep the value, histogram clamps at 0
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.total_us(), -5.0);
}

TEST(LatencyStats, SummaryMentionsLabelAndCount) {
  LatencyStats s;
  s.Add(42);
  const std::string text = s.Summary("reads");
  EXPECT_NE(text.find("reads"), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(LatencyStats, MergeAndReset) {
  LatencyStats a, b;
  a.Add(10);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_us(), 20.0);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(LatencyStats, PercentilesRoughlyOrdered) {
  LatencyStats s;
  for (Us v = 1; v <= 1000; ++v) s.Add(v);
  EXPECT_LE(s.p50_us(), s.p95_us());
  EXPECT_LE(s.p95_us(), s.p99_us());
  EXPECT_LE(s.p99_us(), s.p999_us());
}

TEST(QuantileEstimator, BinMappingRoundTrips) {
  // Every bin boundary maps back into its own bin, bins tile the value
  // space without gaps, and values land inside their bin's bounds.
  for (int b = 0; b < QuantileEstimator::kBins - 1; ++b) {
    EXPECT_EQ(QuantileEstimator::BinHigh(b), QuantileEstimator::BinLow(b + 1))
        << "gap after bin " << b;
    EXPECT_EQ(QuantileEstimator::BinOf(QuantileEstimator::BinLow(b)), b);
  }
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull,
                          123456789ull, 1ull << 40, ~0ull}) {
    const int b = QuantileEstimator::BinOf(v);
    EXPECT_GE(v, QuantileEstimator::BinLow(b));
    if (b < QuantileEstimator::kBins - 1) {
      EXPECT_LT(v, QuantileEstimator::BinHigh(b));
    }
  }
}

TEST(QuantileEstimator, SmallValuesAreExact) {
  QuantileEstimator e;
  for (std::uint64_t v = 0; v < 16; ++v) e.Add(v);
  // Values below kSubBins get one bin each: quantiles are exact to the bin.
  EXPECT_NEAR(e.Quantile(0.5), 8.0, 1.0);
  EXPECT_NEAR(e.Quantile(1.0), 16.0, 1.0);
}

TEST(QuantileEstimator, BoundedRelativeError) {
  // Uniform 1..100000: every percentile estimate must land within the
  // 1/kSubBins (~6.25 %) design bound of the true value.
  QuantileEstimator e;
  for (std::uint64_t v = 1; v <= 100'000; ++v) e.Add(v);
  for (double q : {0.50, 0.90, 0.95, 0.99, 0.999, 0.9999}) {
    const double truth = q * 100'000.0;
    EXPECT_NEAR(e.Quantile(q), truth, truth / QuantileEstimator::kSubBins + 1)
        << "q=" << q;
  }
}

TEST(QuantileEstimator, ResolvesTailTheCoarseHistogramCannot) {
  // 9990 fast + 10 slow samples inside one power-of-two octave
  // [1024, 2048): the log2 LogHistogram sees a single bucket, while the
  // sub-binned estimator separates p50 from p99.9.
  QuantileEstimator fine;
  LogHistogram coarse;
  for (int i = 0; i < 9990; ++i) {
    fine.Add(1100);
    coarse.Add(1100);
  }
  for (int i = 0; i < 10; ++i) {
    fine.Add(2000);
    coarse.Add(2000);
  }
  EXPECT_NEAR(fine.Quantile(0.5), 1100.0, 1100.0 / 16 + 1);
  EXPECT_NEAR(fine.Quantile(0.9995), 2000.0, 2000.0 / 16 + 1);
  // The coarse histogram can only interpolate across the whole octave, so
  // its median estimate misses the true 1100 by far more than the fine
  // estimator's design bound.
  EXPECT_GT(std::abs(coarse.Quantile(0.5) - 1100.0), 1100.0 / 16);
}

TEST(QuantileEstimator, MergeResetAndEdgeCases) {
  QuantileEstimator a, b;
  a.Add(100);
  b.Add(100);
  b.Add(10'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_THROW(a.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(a.Quantile(1.0001), std::invalid_argument);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 0.0);
}

// Property: recording a sample stream split across K estimators and merging
// them is indistinguishable from recording everything into one estimator —
// identical bins, hence identical quantiles.  This is what lets the cluster
// layer merge per-device histograms into cluster-level percentiles without
// approximation error beyond the estimator's own bin width.
TEST(QuantileEstimator, MergeOfShardsMatchesSingleEstimator) {
  constexpr int kShards = 5;
  QuantileEstimator single;
  QuantileEstimator shards[kShards];
  // Deterministic mixed-magnitude stream: exact small values, mid-range,
  // heavy tail, zeros.
  std::uint64_t x = 12345;
  for (int i = 0; i < 20'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;  // LCG
    const std::uint64_t sample = (x >> 33) % ((i % 7 == 0) ? 13ull
                                              : (i % 3 == 0)
                                                  ? 100'000ull
                                                  : 9'000'000'000ull);
    single.Add(sample);
    shards[(x >> 7) % kShards].Add(sample);
  }
  QuantileEstimator merged;
  for (const QuantileEstimator& s : shards) merged.Merge(s);
  EXPECT_EQ(merged.count(), single.count());
  ASSERT_EQ(merged.bins().size(), single.bins().size());
  for (std::size_t b = 0; b < single.bins().size(); ++b) {
    ASSERT_EQ(merged.bins()[b], single.bins()[b]) << "bin " << b;
  }
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), single.Quantile(q)) << "q=" << q;
  }
  // Merge order cannot matter (bin-wise addition commutes).
  QuantileEstimator reversed;
  for (int s = kShards - 1; s >= 0; --s) reversed.Merge(shards[s]);
  EXPECT_EQ(reversed.bins(), merged.bins());
}

}  // namespace
}  // namespace ctflash::util
