// Physical geometry of a 3D charge-trap NAND device.
//
// The hierarchy is channel > chip > die > plane > block > page.  A block maps
// to a group of vertical channels punched through `num_layers` gate-stack
// layers; a page maps to a channel section at one layer (Section 2.1 of the
// paper).  Page index inside a block therefore determines the layer: pages
// are programmed bottom-up in index order, page 0 sits at the TOP of the
// stack (widest etch opening, weakest field, slowest) and the last page at
// the BOTTOM (narrowest opening, strongest field, fastest).
#pragma once

#include <cstdint>
#include <string>

#include "util/types.h"

namespace ctflash::nand {

struct PhysicalAddress {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   // within channel
  std::uint32_t die = 0;    // within chip
  std::uint32_t plane = 0;  // within die
  std::uint64_t block = 0;  // within plane
  std::uint32_t page = 0;   // within block

  bool operator==(const PhysicalAddress&) const = default;
};

/// Geometry; defaults give the paper's Table 1 device: 64 GiB, 16 KiB pages,
/// 384 pages/block, 64 gate-stack layers.
struct NandGeometry {
  std::uint32_t channels = 4;
  std::uint32_t chips_per_channel = 2;
  std::uint32_t dies_per_chip = 2;
  std::uint32_t planes_per_die = 2;
  std::uint64_t blocks_per_plane = 342;  // 32 planes * 342 * 384 * 16KiB ~ 64.1 GiB
  std::uint32_t pages_per_block = 384;
  std::uint32_t page_size_bytes = 16 * 1024;
  std::uint32_t num_layers = 64;

  /// Validates invariants; throws std::invalid_argument on violation.
  void Validate() const;

  std::uint64_t TotalPlanes() const {
    return static_cast<std::uint64_t>(channels) * chips_per_channel *
           dies_per_chip * planes_per_die;
  }
  std::uint64_t TotalBlocks() const { return TotalPlanes() * blocks_per_plane; }
  std::uint64_t TotalPages() const {
    return TotalBlocks() * pages_per_block;
  }
  std::uint64_t TotalBytes() const {
    return TotalPages() * page_size_bytes;
  }
  std::uint64_t TotalChips() const {
    return static_cast<std::uint64_t>(channels) * chips_per_channel;
  }
  std::uint64_t TotalDies() const { return TotalChips() * dies_per_chip; }

  // --- Flat index conversions -------------------------------------------
  // Blocks are numbered plane-major: block b lives on plane (b %
  // TotalPlanes()), so consecutive block ids stripe across planes/chips/
  // channels, which is how FTL allocators spread load.

  Ppn PpnOf(BlockId block, std::uint32_t page) const {
    return block * pages_per_block + page;
  }
  BlockId BlockOf(Ppn ppn) const { return ppn / pages_per_block; }
  std::uint32_t PageOf(Ppn ppn) const {
    return static_cast<std::uint32_t>(ppn % pages_per_block);
  }

  /// Gate-stack layer of a page (0 = top/slow, num_layers-1 = bottom/fast).
  /// Multiple consecutive pages share one layer when pages_per_block >
  /// num_layers (multi-bit cells / multiple strings per wordline).
  std::uint32_t LayerOfPage(std::uint32_t page_in_block) const;

  /// Decomposes a flat block id into the full physical address (page = 0).
  PhysicalAddress AddressOfBlock(BlockId block) const;
  PhysicalAddress AddressOfPpn(Ppn ppn) const;

  /// Global chip index (channel * chips_per_channel + chip) serving a block.
  std::uint64_t ChipOfBlock(BlockId block) const;
  /// Channel index serving a block.
  std::uint32_t ChannelOfBlock(BlockId block) const;
  /// Global die index serving a block — the unit of NAND operation
  /// exclusivity (one in-flight cell op per die); the host scheduler keys
  /// its conflict detection on this.
  std::uint64_t DieOfBlock(BlockId block) const;
  /// Plane index within the die serving a block (plane-major block
  /// numbering stripes consecutive blocks across planes, then dies).
  std::uint32_t PlaneOfBlock(BlockId block) const;

  std::string ToString() const;

  bool operator==(const NandGeometry&) const = default;
};

/// Builds a proportionally scaled-down geometry with the same block shape
/// (pages/block, page size, layers) but fewer blocks so experiments run in
/// seconds.  `target_bytes` is rounded up to a whole number of blocks per
/// plane.
NandGeometry ScaledGeometry(const NandGeometry& base, std::uint64_t target_bytes);

}  // namespace ctflash::nand
