// Simulator-core throughput microbench.
//
// Two hot paths dominate campaign wall-clock: the discrete-event queue
// (every flash completion is one heap pop + callback) and the I/O
// scheduler's ready-queue scan (every dispatch rescans candidates).  This
// bench drives both and SELF-ASSERTS conservative events/sec floors so a
// regression that slows the core by an order of magnitude fails CI rather
// than silently stretching every campaign:
//
//   1. event queue: chained schedule/fire pairs (pure engine overhead);
//   2. host pipeline: closed-loop random reads through the multi-queue
//      host interface at QD 32 (scheduler scan + timeline booking + event
//      dispatch per page transaction).
//
// The floors are ~20x below the Release-build rates measured on one
// 2025-era core, so slow CI runners and modest regressions pass while a
// complexity regression (accidental O(n^2), per-event allocation storm)
// fails.  Debug/sanitizer builds run 10-50x slower — keep this bench out
// of those legs (CI runs it in the Release smoke job only).
//
// Options:
//   --events <n>     chained events for the engine loop  (default 2M)
//   --requests <n>   closed-loop requests                (default 60k)
//   --quick          1/10th sizes for smoke runs
//   --json <path>    result file (default BENCH_sim_throughput.json)
//   --no-assert      measure and report only (profiling runs)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "campaign/json.h"
#include "host/host_interface.h"
#include "host/load_generator.h"
#include "sim/event_queue.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace {

using ctflash::Us;
using ctflash::campaign::Json;

constexpr double kEventQueueFloorPerSec = 1e6;  // measured ~2e7
constexpr double kHostPipelineFloorPerSec = 2e4;  // measured ~8e5 txns/s

struct Options {
  std::uint64_t events = 2'000'000;
  std::uint64_t requests = 60'000;
  bool assert_floors = true;
  std::string json_path = "BENCH_sim_throughput.json";
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--events") {
      o.events = std::stoull(next());
    } else if (arg == "--requests") {
      o.requests = std::stoull(next());
    } else if (arg == "--quick") {
      o.events /= 10;
      o.requests /= 10;
    } else if (arg == "--no-assert") {
      o.assert_floors = false;
    } else if (arg == "--json") {
      o.json_path = next();
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Chained schedule/fire: each event schedules its successor, so the heap
/// stays shallow and the measurement isolates per-event engine overhead
/// (push + pop + std::function dispatch), not heap depth.
double EventQueueRate(std::uint64_t events) {
  ctflash::sim::EventQueue queue;
  std::uint64_t fired = 0;
  std::function<void(Us)> chain = [&](Us) {
    if (++fired < events) queue.ScheduleAfter(1, chain);
  };
  const auto start = std::chrono::steady_clock::now();
  queue.ScheduleAfter(1, chain);
  queue.RunToCompletion();
  const double elapsed = SecondsSince(start);
  if (fired != events) {
    throw std::logic_error("event chain terminated early");
  }
  return static_cast<double>(events) / elapsed;
}

struct PipelineRates {
  double requests_per_sec = 0.0;
  double txns_per_sec = 0.0;
  std::uint64_t txns = 0;
};

/// Closed-loop random reads through the full host pipeline on a small
/// queued-timing device: scheduler scan, resource booking, completion
/// events — the per-transaction cost campaigns pay.
PipelineRates HostPipelineRate(std::uint64_t requests) {
  auto config = ctflash::ssd::ScaledConfig(
      ctflash::ssd::FtlKind::kConventional, 64ull << 20, 16 * 1024,
      /*speed_ratio=*/2.0);
  config.timing_mode = ctflash::ftl::TimingMode::kQueued;
  ctflash::ssd::Ssd ssd(config);
  ctflash::ssd::ExperimentRunner prefiller(ssd);
  const Us prefill_end = prefiller.Prefill(ssd.LogicalBytes() / 10 * 8);

  ctflash::host::HostConfig host_config;
  ctflash::host::HostInterface host(ssd, host_config);
  host.AdvanceTo(prefill_end);

  ctflash::host::ClosedLoopGenerator::Config gen_config;
  gen_config.queue_depth = 32;
  gen_config.total_requests = requests;
  gen_config.read_fraction = 1.0;
  gen_config.footprint_bytes = ssd.LogicalBytes() / 10 * 8;
  gen_config.seed = 11;
  ctflash::host::ClosedLoopGenerator generator(host, gen_config);
  const auto start = std::chrono::steady_clock::now();
  generator.Run();
  const double elapsed = SecondsSince(start);

  PipelineRates rates;
  rates.txns = host.TxnsDispatched();
  rates.requests_per_sec = static_cast<double>(requests) / elapsed;
  rates.txns_per_sec = static_cast<double>(rates.txns) / elapsed;
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  std::cout << "=== Simulator-core throughput ===\n";

  const double event_rate = EventQueueRate(options.events);
  std::cout << "event queue:  " << options.events << " chained events -> "
            << static_cast<std::uint64_t>(event_rate) << " events/s (floor "
            << static_cast<std::uint64_t>(kEventQueueFloorPerSec) << ")\n";

  const PipelineRates pipeline = HostPipelineRate(options.requests);
  std::cout << "host pipeline: " << options.requests << " reads, "
            << pipeline.txns << " flash txns -> "
            << static_cast<std::uint64_t>(pipeline.txns_per_sec)
            << " txns/s, "
            << static_cast<std::uint64_t>(pipeline.requests_per_sec)
            << " reqs/s (floor "
            << static_cast<std::uint64_t>(kHostPipelineFloorPerSec)
            << " txns/s)\n";

  bool ok = true;
  if (options.assert_floors) {
    if (event_rate < kEventQueueFloorPerSec) {
      std::cerr << "SELF-ASSERT FAILED: event queue below "
                << kEventQueueFloorPerSec << " events/s\n";
      ok = false;
    }
    if (pipeline.txns_per_sec < kHostPipelineFloorPerSec) {
      std::cerr << "SELF-ASSERT FAILED: host pipeline below "
                << kHostPipelineFloorPerSec << " txns/s\n";
      ok = false;
    }
  }

  Json report;
  report["events"] = options.events;
  report["event_queue_per_sec"] = event_rate;
  report["event_queue_floor_per_sec"] = kEventQueueFloorPerSec;
  report["requests"] = options.requests;
  report["pipeline_txns"] = pipeline.txns;
  report["pipeline_txns_per_sec"] = pipeline.txns_per_sec;
  report["pipeline_requests_per_sec"] = pipeline.requests_per_sec;
  report["pipeline_floor_txns_per_sec"] = kHostPipelineFloorPerSec;
  report["asserted"] = options.assert_floors;
  std::ofstream out(options.json_path);
  out << report.Dump(2) << "\n";
  std::cout << (ok ? "floors hold" : "floors violated") << "; wrote "
            << options.json_path << "\n";
  return ok ? 0 : 1;
}
