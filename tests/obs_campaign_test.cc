// Observability through the campaign and cluster layers: arms/fleets with
// phase tracing on stay byte-deterministic across worker counts, the
// reports carry the phase-breakdown columns, and dead-device timeouts are
// attributed by name in the cluster rows.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "campaign/runner.h"
#include "campaign/spec.h"
#include "cluster/cluster_sim.h"
#include "cluster/spec.h"

namespace ctflash::obs {
namespace {

constexpr const char* kTracedGrid = R"({
  "campaign": "obs-unit",
  "defaults": {
    "device_bytes": "32MiB",
    "prefill_pct": 80,
    "seed": 11,
    "observability": {"phases": true, "metrics_epoch_us": 20000},
    "workload": {"kind": "closed_loop", "requests": 400,
                  "read_fraction": 0.5, "queue_depth": 4}
  },
  "grid": {"gc_routing": ["inline", "scheduled"]}
})";

TEST(ObsCampaign, TracedArmsDeterministicAcrossWorkerCounts) {
  campaign::CampaignRunner runner(campaign::CampaignSpec::Parse(kTracedGrid));
  const campaign::CampaignResult serial = runner.Run(1);
  const campaign::CampaignResult parallel = runner.Run(4);
  ASSERT_EQ(serial.arms.size(), 2u);
  for (const auto& arm : serial.arms) {
    ASSERT_TRUE(arm.ok) << arm.name << ": " << arm.error;
  }
  // The whole report — phase breakdowns and epoch rows included — is
  // byte-identical for any worker count, and so is the CSV.
  EXPECT_EQ(serial.DeterministicJson().Dump(2),
            parallel.DeterministicJson().Dump(2));
  EXPECT_EQ(serial.Csv(), parallel.Csv());
}

TEST(ObsCampaign, ArmMetricsCarryPhaseBreakdowns) {
  campaign::CampaignRunner runner(campaign::CampaignSpec::Parse(kTracedGrid));
  const campaign::CampaignResult result = runner.Run(2);
  for (const auto& arm : result.arms) {
    ASSERT_TRUE(arm.ok) << arm.name << ": " << arm.error;
    const campaign::Json* phases = arm.metrics.Get("phases");
    ASSERT_NE(phases, nullptr) << arm.name;
    const campaign::Json* read = phases->Get("read");
    ASSERT_NE(read, nullptr);
    EXPECT_GT(read->GetUintOr("count", 0), 0u);
    // Conservation in the aggregate: phase means tile the total mean.
    const double total = read->Get("total")->GetDoubleOr("mean_us", 0);
    const double paced = read->Get("paced")->GetDoubleOr("mean_us", 0);
    const double queued = read->Get("queued")->GetDoubleOr("mean_us", 0);
    const double media = read->Get("media")->GetDoubleOr("mean_us", 0);
    EXPECT_NEAR(paced + queued + media, total, 1e-6) << arm.name;
    // metrics_epoch_us > 0: the time series rides along.
    EXPECT_NE(arm.metrics.Get("phase_epochs"), nullptr) << arm.name;
  }
  // CSV: the six per-arm phase columns are present and populated.
  const std::string csv = result.Csv();
  EXPECT_NE(csv.find("read_paced_us"), std::string::npos);
  EXPECT_NE(csv.find("write_media_us"), std::string::npos);
}

TEST(ObsCampaign, ObservabilityOffKeepsMetricsClean) {
  campaign::CampaignRunner runner(campaign::CampaignSpec::Parse(R"({
    "campaign": "obs-off",
    "defaults": {
      "device_bytes": "32MiB",
      "prefill_pct": 80,
      "workload": {"kind": "closed_loop", "requests": 200}
    }
  })"));
  const campaign::CampaignResult result = runner.Run(1);
  ASSERT_EQ(result.arms.size(), 1u);
  ASSERT_TRUE(result.arms[0].ok) << result.arms[0].error;
  EXPECT_EQ(result.arms[0].metrics.Get("phases"), nullptr);
}

constexpr const char* kTracedCluster = R"({
  "cluster": "obs-cluster",
  "fleet": {"devices": 4, "spares": 1},
  "router": {"shards": 64, "vnodes": 32},
  "device": {"device_bytes": "32MiB", "prefill_pct": 60,
             "prefill_chunk": "256KiB"},
  "users": {"count": 20000, "zipf_theta": 0.9},
  "workload": {"rate_iops": 4000, "read_fraction": 0.8,
               "request_bytes": "16KiB", "epochs": 4, "epoch_us": 50000},
  "observability": {"phases": true},
  "faults": [{"device": 1, "kind": "device", "at_us": 60000}],
  "seed": 5
})";

TEST(ObsCluster, TracedFleetDeterministicAcrossWorkerCounts) {
  const cluster::ClusterSpec spec = cluster::ClusterSpec::Parse(kTracedCluster);
  const cluster::ClusterResult serial = cluster::ClusterSim(spec).Run(1);
  const cluster::ClusterResult parallel = cluster::ClusterSim(spec).Run(4);
  EXPECT_TRUE(serial.has_phases);
  EXPECT_EQ(serial.DeterministicJson().Dump(2),
            parallel.DeterministicJson().Dump(2));
  EXPECT_EQ(serial.Csv(), parallel.Csv());
}

TEST(ObsCluster, FleetReportCarriesPhasesAndNamesDeadDeviceStall) {
  const cluster::ClusterSpec spec = cluster::ClusterSpec::Parse(kTracedCluster);
  const cluster::ClusterResult result = cluster::ClusterSim(spec).Run(2);
  ASSERT_TRUE(result.has_phases);
  ASSERT_EQ(result.epochs.size(), 4u);

  std::uint64_t traced_reads = 0;
  std::uint64_t dead_stall_us = 0;
  for (const auto& e : result.epochs) {
    traced_reads += e.phases.read.total.count();
    dead_stall_us += e.phases.read.stall_us[static_cast<std::size_t>(
        StallCause::kDeadDevice)];
  }
  EXPECT_GT(traced_reads, 0u);
  // Device 1 went dark inside epoch 1: its timed-out traffic must appear
  // as dead-device stall, not vanish from the attribution.
  EXPECT_GT(dead_stall_us, 0u);

  // The JSON rows echo the same breakdowns.
  const campaign::Json json = result.DeterministicJson();
  const auto& epoch_rows = json.Get("epochs")->AsArray();
  ASSERT_EQ(epoch_rows.size(), 4u);
  for (const campaign::Json& row : epoch_rows) {
    ASSERT_NE(row.Get("phases"), nullptr);
  }
  bool any_device_phases = false;
  for (const campaign::Json& row : json.Get("devices")->AsArray()) {
    if (row.Get("phases") != nullptr) any_device_phases = true;
  }
  EXPECT_TRUE(any_device_phases);

  // CSV phase columns are always present; populated when tracing is on.
  const std::string csv = result.Csv();
  EXPECT_NE(csv.find("read_paced_mean_us"), std::string::npos);
  EXPECT_NE(csv.find("read_media_mean_us"), std::string::npos);
}

TEST(ObsCluster, ObservabilityOffOmitsPhasesFromReports) {
  cluster::Json root = cluster::Json::Parse(kTracedCluster);
  root.AsObject().erase("observability");
  root.AsObject().erase("faults");
  const cluster::ClusterSpec spec = cluster::ClusterSpec::Parse(root);
  const cluster::ClusterResult result = cluster::ClusterSim(spec).Run(2);
  EXPECT_FALSE(result.has_phases);
  const campaign::Json json = result.DeterministicJson();
  for (const campaign::Json& row : json.Get("epochs")->AsArray()) {
    EXPECT_EQ(row.Get("phases"), nullptr);
  }
  // Columns stay in the header (stable schema); values read 0 when off.
  EXPECT_NE(result.Csv().find("read_paced_mean_us,"), std::string::npos);
}

}  // namespace
}  // namespace ctflash::obs
