#include "campaign/snapshot.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "ssd/ssd.h"
#include "util/serial.h"

namespace ctflash::campaign {

namespace {

constexpr char kMagic[4] = {'C', 'T', 'S', 'S'};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::vector<std::uint8_t> DeviceState::Serialize() const {
  util::StateWriter w;
  w.PutBytes(kMagic, 4);
  w.PutU32(kFormatVersion);
  w.PutString(shape_key);
  w.PutI64(clock_us);
  w.PutU64(payload.size());
  w.PutBytes(payload.data(), payload.size());
  std::vector<std::uint8_t> bytes = w.TakeBytes();
  // CRC over everything after the magic (version, key, clock, payload).
  const std::uint32_t crc = util::Crc32(bytes.data() + 4, bytes.size() - 4);
  util::StateWriter trailer;
  trailer.PutU32(crc);
  const auto& t = trailer.bytes();
  bytes.insert(bytes.end(), t.begin(), t.end());
  return bytes;
}

DeviceState DeviceState::Deserialize(const std::vector<std::uint8_t>& bytes) {
  // magic + version + key length + clock + payload length + crc
  constexpr std::size_t kMinSize = 4 + 4 + 8 + 8 + 8 + 4;
  if (bytes.size() < kMinSize) {
    throw std::runtime_error("snapshot: envelope too small (" +
                             std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw std::runtime_error("snapshot: bad magic (not a ctflash snapshot)");
  }
  const std::uint32_t stored_crc = [&] {
    util::StateReader tr(bytes.data() + bytes.size() - 4, 4);
    return tr.GetU32();
  }();
  const std::uint32_t actual_crc =
      util::Crc32(bytes.data() + 4, bytes.size() - 8);
  if (stored_crc != actual_crc) {
    throw std::runtime_error("snapshot: CRC mismatch (stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(actual_crc) +
                             ") — snapshot is corrupt");
  }
  util::StateReader r(bytes.data() + 4, bytes.size() - 8);
  const std::uint32_t version = r.GetU32();
  if (version != kFormatVersion) {
    throw std::runtime_error("snapshot: unsupported format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kFormatVersion) + ")");
  }
  DeviceState st;
  st.shape_key = r.GetString();
  st.clock_us = r.GetI64();
  const std::uint64_t n = r.GetCount();
  st.payload.resize(n);
  r.GetBytes(st.payload.data(), n);
  r.ExpectEnd();
  return st;
}

std::string SnapshotShapeKey(const ssd::SsdConfig& config) {
  const nand::NandGeometry& g = config.geometry;
  const nand::NandTiming& t = config.timing;
  const ftl::FtlConfig& f = config.ftl;
  std::string key;
  key += "geom=" + std::to_string(g.channels) + "," +
         std::to_string(g.chips_per_channel) + "," +
         std::to_string(g.dies_per_chip) + "," +
         std::to_string(g.planes_per_die) + "," +
         std::to_string(g.blocks_per_plane) + "," +
         std::to_string(g.pages_per_block) + "," +
         std::to_string(g.page_size_bytes) + "," +
         std::to_string(g.num_layers);
  key += ";timing=" + std::to_string(t.page_read_us) + "," +
         std::to_string(t.page_program_us) + "," +
         std::to_string(t.block_erase_us) + "," +
         FormatDouble(t.transfer_mb_per_s) + "," +
         FormatDouble(t.speed_ratio) + "," +
         std::to_string(t.program_layer_dependent ? 1 : 0);
  key += ";mode=" +
         std::to_string(static_cast<int>(config.timing_mode));
  key += ";endurance=" + std::to_string(config.endurance_pe_cycles);
  key += ";err=" + std::to_string(config.model_read_errors ? 1 : 0);
  if (config.model_read_errors) {
    const nand::ErrorModelConfig& e = config.error_model;
    key += "," + FormatDouble(e.base_rber) + "," + FormatDouble(e.layer_skew) +
           "," + FormatDouble(e.pe_scale) + "," +
           std::to_string(e.codeword_bytes) + "," +
           std::to_string(e.correctable_bits_per_codeword) + "," +
           std::to_string(config.error_model_seed);
  }
  key += ";ftl=" + FormatDouble(f.op_ratio) + "," +
         std::to_string(f.gc_threshold_low) + "," +
         std::to_string(f.gc_threshold_high) + "," +
         std::to_string(f.charge_gc_to_write ? 1 : 0) + "," +
         std::to_string(f.wear.delta_threshold) + ":" +
         std::to_string(f.wear.cooldown_erases) + "," +
         std::to_string(f.write_frontiers) + "," +
         std::to_string(static_cast<int>(f.stripe_policy));
  key += ";kind=" + std::to_string(static_cast<int>(config.kind));
  if (config.kind == ssd::FtlKind::kPpb) {
    const core::PpbConfig& p = config.ppb;
    key += ";ppb=" + std::to_string(p.vb_split) + "," +
           std::to_string(p.hot_lru_capacity) + "," +
           std::to_string(p.iron_lru_capacity) + "," +
           std::to_string(p.cold_promote_threshold) + "," +
           std::to_string(p.freq_table_capacity) + "," +
           std::to_string(p.hot_size_threshold_bytes) + "," +
           std::to_string(p.max_open_fast_vbs) + "," +
           std::to_string(p.migrate_on_update ? 1 : 0) + "," +
           std::to_string(p.migrate_on_gc ? 1 : 0);
  }
  return key;
}

}  // namespace ctflash::campaign

// Ssd::Snapshot/Restore are declared in ssd/ssd.h but implemented here so
// the ssd sources never include campaign headers (dependency stays one-way).
namespace ctflash::ssd {

campaign::DeviceState Ssd::Snapshot(Us clock_us) const {
  util::StateWriter w;
  target_->SaveState(w);
  ftl_->SaveState(w);
  campaign::DeviceState state;
  state.shape_key = campaign::SnapshotShapeKey(config_);
  state.clock_us = clock_us;
  state.payload = w.TakeBytes();
  return state;
}

void Ssd::Restore(const campaign::DeviceState& state) {
  const std::string expected = campaign::SnapshotShapeKey(config_);
  if (state.shape_key != expected) {
    throw std::runtime_error(
        "snapshot: device shape mismatch — snapshot was taken on [" +
        state.shape_key + "] but this device is [" + expected + "]");
  }
  util::StateReader r(state.payload);
  target_->LoadState(r);
  ftl_->LoadState(r);
  r.ExpectEnd();
}

}  // namespace ctflash::ssd
