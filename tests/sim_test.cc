#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/resource.h"

namespace ctflash::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&](Us) { order.push_back(3); });
  q.ScheduleAt(10, [&](Us) { order.push_back(1); });
  q.ScheduleAt(20, [&](Us) { order.push_back(2); });
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(100, [&order, i](Us) { order.push_back(i); });
  }
  q.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  Us fired_at = -1;
  q.ScheduleAt(50, [&](Us now) {
    q.ScheduleAfter(25, [&](Us inner) { fired_at = inner; });
    (void)now;
  });
  q.RunToCompletion();
  EXPECT_EQ(fired_at, 75);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.ScheduleAt(10, [](Us) {});
  q.Step();
  EXPECT_THROW(q.ScheduleAt(5, [](Us) {}), std::invalid_argument);
  EXPECT_THROW(q.ScheduleAfter(-1, [](Us) {}), std::invalid_argument);
}

TEST(EventQueue, NullCallbackThrows) {
  EventQueue q;
  EXPECT_THROW(q.ScheduleAt(1, EventCallback{}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const auto h = q.ScheduleAt(10, [&](Us) { fired = true; });
  EXPECT_TRUE(q.Cancel(h));
  q.RunToCompletion();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(q.Cancel(h));  // already cancelled
}

TEST(EventQueue, CancelInvalidHandleReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<Us> fired;
  q.ScheduleAt(10, [&](Us t) { fired.push_back(t); });
  q.ScheduleAt(20, [&](Us t) { fired.push_back(t); });
  q.ScheduleAt(30, [&](Us t) { fired.push_back(t); });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(q.PendingCount(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle) {
  EventQueue q;
  EXPECT_EQ(q.RunUntil(100), 0u);
  EXPECT_EQ(q.Now(), 100);
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, CascadedEventsAllFire) {
  EventQueue q;
  int count = 0;
  std::function<void(Us)> chain = [&](Us) {
    if (++count < 100) q.ScheduleAfter(1, chain);
  };
  q.ScheduleAt(0, chain);
  EXPECT_EQ(q.RunToCompletion(), 100u);
  EXPECT_EQ(q.Now(), 99);
}

TEST(ResourceTimeline, BackToBackReservations) {
  ResourceTimeline t;
  const auto a = t.Reserve(0, 10);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.end, 10);
  const auto b = t.Reserve(0, 5);  // queued behind a
  EXPECT_EQ(b.start, 10);
  EXPECT_EQ(b.end, 15);
  EXPECT_EQ(t.BusyTime(), 15);
  EXPECT_EQ(t.ReservationCount(), 2u);
}

TEST(ResourceTimeline, IdleGapRespected) {
  ResourceTimeline t;
  t.Reserve(0, 10);
  const auto b = t.Reserve(100, 5);
  EXPECT_EQ(b.start, 100);
  EXPECT_EQ(b.end, 105);
  EXPECT_EQ(t.BusyTime(), 15);  // gaps do not count as busy
  EXPECT_EQ(t.FreeAt(), 105);
}

TEST(ResourceTimeline, ZeroDurationAllowed) {
  ResourceTimeline t;
  const auto a = t.Reserve(5, 0);
  EXPECT_EQ(a.Duration(), 0);
}

TEST(ResourceTimeline, NegativeDurationThrows) {
  ResourceTimeline t;
  EXPECT_THROW(t.Reserve(0, -1), std::invalid_argument);
}

TEST(ResourceTimeline, ResetClears) {
  ResourceTimeline t;
  t.Reserve(0, 10);
  t.Reset();
  EXPECT_EQ(t.BusyTime(), 0);
  EXPECT_EQ(t.FreeAt(), 0);
}

TEST(ResourcePool, IndexingAndAggregates) {
  ResourcePool pool(4);
  EXPECT_EQ(pool.Count(), 4u);
  pool.At(0).Reserve(0, 10);
  pool.At(3).Reserve(0, 7);
  EXPECT_EQ(pool.TotalBusyTime(), 17);
  pool.Reset();
  EXPECT_EQ(pool.TotalBusyTime(), 0);
}

TEST(ResourcePool, ErrorsOnBadIndexAndZeroSize) {
  EXPECT_THROW(ResourcePool(0), std::invalid_argument);
  ResourcePool pool(2);
  EXPECT_THROW(pool.At(2), std::out_of_range);
}

}  // namespace
}  // namespace ctflash::sim
