// MetricsRegistry: one enumerable, mergeable home for every counter,
// gauge, and latency histogram the stack reports.
//
// The tree grew a *Stats struct per subsystem (FtlStats, HostStats,
// TenantStats, FaultStats, ReadErrorStats, ...) — each with its own field
// list, JSON shape, and merge story.  The registry unifies them behind
// hierarchical dot-separated names ("ftl.gc.page_copies",
// "host.read.latency") so exporters, campaign reports, and time-series
// sampling can enumerate everything without knowing any struct layout.
// obs/stats_export.h converts the existing families into registry entries;
// they keep their structs as the hot-path representation.
//
// Three metric kinds, matching how they merge across shards/devices:
//   counters   - uint64, merge by sum;
//   gauges     - double point-in-time samples, merge by max (a fleet's
//                peak occupancy is the max of per-device peaks);
//   histograms - util::LatencyStats (QuantileEstimator-backed), merge by
//                histogram merge.
// Names sort deterministically (std::map), so ToJson() bytes are stable —
// the same contract as everything else the campaign layer compares.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "util/stats.h"

namespace ctflash::obs {

/// Tail summary extracted from raw QuantileEstimator bins.
struct BinQuantiles {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Quantile of a raw bin-count vector laid out like
/// util::QuantileEstimator::bins() — the EXACT same walk the estimator
/// runs, so a quantile computed from copied (or windowed-delta) bins agrees
/// bit-for-bit with QuantileEstimator::Quantile on the same stream.  The
/// health/SLO monitors window cumulative histograms by bin subtraction and
/// still need estimator-identical answers.  Throws std::invalid_argument
/// for q outside [0,1]; returns 0.0 for empty bins.
double QuantileFromBins(const std::vector<std::uint64_t>& bins, double q);

/// p50/p99/p99.9 (plus the sample count) from raw bins in one walk setup.
BinQuantiles SummarizeBins(const std::vector<std::uint64_t>& bins);

class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (created at zero on first touch).
  void AddCounter(const std::string& name, std::uint64_t delta);
  /// Sets gauge `name` to `value` (last write wins within one registry).
  void SetGauge(const std::string& name, double value);
  /// The histogram named `name`, created empty on first access.
  util::LatencyStats& Histogram(const std::string& name);

  std::uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  /// p50/p99/p99.9 of histogram `name` via the shared bin walk (all zero
  /// for an unknown name).
  BinQuantiles HistogramQuantiles(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, util::LatencyStats>& histograms() const {
    return histograms_;
  }

  std::size_t Size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Merges another registry: counters sum, gauges keep the max,
  /// histograms merge.
  void Merge(const MetricsRegistry& other);
  void Reset();

  /// Deterministic JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, mean_us, p50_us, p99_us, p999_us,
  /// max_us}}}.
  campaign::Json ToJson() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, util::LatencyStats> histograms_;
};

}  // namespace ctflash::obs
