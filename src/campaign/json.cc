#include "campaign/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ctflash::campaign {

namespace {

const char* KindName(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kNumber: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json Run() {
    Json v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else { ++col; }
    }
    throw std::runtime_error("json: " + what + " at line " +
                             std::to_string(line) + " column " +
                             std::to_string(col));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipWs();
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Json(ParseString());
      case 't': if (Consume("true")) return Json(true); Fail("invalid literal");
      case 'f': if (Consume("false")) return Json(false); Fail("invalid literal");
      case 'n': if (Consume("null")) return Json(); Fail("invalid literal");
      default: return ParseNumber();
    }
  }

  Json ParseObject() {
    Expect('{');
    JsonObject obj;
    SkipWs();
    if (Peek() == '}') { ++pos_; return Json(std::move(obj)); }
    while (true) {
      SkipWs();
      if (Peek() != '"') Fail("expected object key string");
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      if (obj.count(key) != 0) Fail("duplicate object key \"" + key + "\"");
      obj.emplace(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      Expect('}');
      return Json(std::move(obj));
    }
  }

  Json ParseArray() {
    Expect('[');
    JsonArray arr;
    SkipWs();
    if (Peek() == ']') { ++pos_; return Json(std::move(arr)); }
    while (true) {
      arr.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      Expect(']');
      return Json(std::move(arr));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else Fail("invalid \\u escape digit");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported —
            // the campaign layer never emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: Fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Json ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Fail("malformed number '" + token + "'");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

}  // namespace

Json Json::Parse(const std::string& text) { return Parser(text).Run(); }

bool Json::AsBool() const {
  if (kind_ != Kind::kBool) {
    throw std::runtime_error(std::string("json: expected bool, found ") + KindName(kind_));
  }
  return bool_;
}

double Json::AsDouble() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error(std::string("json: expected number, found ") + KindName(kind_));
  }
  return number_;
}

std::int64_t Json::AsInt() const {
  const double v = AsDouble();
  if (v != std::floor(v)) {
    throw std::runtime_error("json: expected an integer, found " + std::to_string(v));
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t Json::AsUint() const {
  const std::int64_t v = AsInt();
  if (v < 0) {
    throw std::runtime_error("json: expected a non-negative integer, found " +
                             std::to_string(v));
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::AsString() const {
  if (kind_ != Kind::kString) {
    throw std::runtime_error(std::string("json: expected string, found ") + KindName(kind_));
  }
  return string_;
}

const JsonArray& Json::AsArray() const {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error(std::string("json: expected array, found ") + KindName(kind_));
  }
  return array_;
}

const JsonObject& Json::AsObject() const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error(std::string("json: expected object, found ") + KindName(kind_));
  }
  return object_;
}

JsonArray& Json::AsArray() {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error(std::string("json: expected array, found ") + KindName(kind_));
  }
  return array_;
}

JsonObject& Json::AsObject() {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error(std::string("json: expected object, found ") + KindName(kind_));
  }
  return object_;
}

const Json* Json::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

bool Json::GetBoolOr(const std::string& key, bool fallback) const {
  const Json* v = Get(key);
  return v == nullptr || v->IsNull() ? fallback : v->AsBool();
}

double Json::GetDoubleOr(const std::string& key, double fallback) const {
  const Json* v = Get(key);
  return v == nullptr || v->IsNull() ? fallback : v->AsDouble();
}

std::int64_t Json::GetIntOr(const std::string& key, std::int64_t fallback) const {
  const Json* v = Get(key);
  return v == nullptr || v->IsNull() ? fallback : v->AsInt();
}

std::uint64_t Json::GetUintOr(const std::string& key, std::uint64_t fallback) const {
  const Json* v = Get(key);
  return v == nullptr || v->IsNull() ? fallback : v->AsUint();
}

std::string Json::GetStringOr(const std::string& key,
                              const std::string& fallback) const {
  const Json* v = Get(key);
  return v == nullptr || v->IsNull() ? fallback : v->AsString();
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) {
    throw std::runtime_error(std::string("json: operator[] on ") + KindName(kind_));
  }
  return object_[key];
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: AppendNumber(out, number_); break;
    case Kind::kString: AppendEscaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) { out += "[]"; break; }
      out += '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) { out += "{}"; break; }
      out += '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        AppendEscaped(out, key);
        out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return number_ == other.number_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object_ == other.object_;
  }
  return false;
}

}  // namespace ctflash::campaign
