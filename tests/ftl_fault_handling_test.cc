// FTL fault-handling tests: the read-retry ladder, bad-block retirement on
// program/erase verify failures, spare-pool accounting, and whole-die loss
// survival through the conventional FTL.
#include <gtest/gtest.h>

#include <utility>

#include "ftl/conventional_ftl.h"
#include "util/random.h"

namespace ctflash::ftl {
namespace {

nand::NandGeometry Geo(std::uint32_t blocks_per_plane = 32,
                       std::uint32_t dies_per_chip = 1) {
  nand::NandGeometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = dies_per_chip;
  g.planes_per_die = 1;
  g.blocks_per_plane = blocks_per_plane;
  g.pages_per_block = 16;
  g.page_size_bytes = 4096;
  g.num_layers = 16;
  return g;
}

FtlConfig SmallCfg() {
  FtlConfig cfg;
  cfg.op_ratio = 0.25;
  cfg.gc_threshold_low = 3;
  cfg.gc_threshold_high = 5;
  return cfg;
}

TEST(FaultHandling, RetryLadderRecoversMarginalReads) {
  // ~60 first-sense errors per 1 KiB codeword against a budget of 40: the
  // first sense always fails ECC, the first/second retry rung (RBER halved
  // per rung) recovers.  Flat layer skew keeps every page identical.
  nand::ErrorModelConfig em;
  em.base_rber = 8e-3;
  em.layer_skew = 1.0;

  FlashTarget plain(Geo(), nand::NandTiming{});
  ConventionalFtl plain_ftl(plain, SmallCfg());
  const Us w0 = plain_ftl.Write(0, 4096, 0).completion_us;
  const Us plain_lat = plain_ftl.Read(0, 4096, w0).LatencyUs();

  FlashTarget target(Geo(), nand::NandTiming{});
  target.ArmErrorModel(em);
  target.ArmFaults(nand::FaultPlanConfig{}, FaultHandlingConfig{}, 1);
  ConventionalFtl ftl(target, SmallCfg());
  const Us w1 = ftl.Write(0, 4096, 0).completion_us;
  const Us armed_lat = ftl.Read(0, 4096, w1).LatencyUs();

  const ReadErrorStats& es = target.read_error_stats();
  EXPECT_EQ(es.uncorrectable_reads, 1u);  // first sense failed...
  EXPECT_EQ(es.retried_reads, 1u);        // ...entered the ladder...
  EXPECT_EQ(es.recovered_reads, 1u);      // ...and a rung recovered it.
  EXPECT_EQ(es.unrecovered_reads, 0u);
  EXPECT_GE(es.retry_rungs, 1u);
  // The data survived: mapping intact, nothing charged as lost.
  EXPECT_NE(ftl.ProbePpn(0), kInvalidPpn);
  EXPECT_EQ(ftl.fault_stats().LostPages(), 0u);
  // Each rung books one extra full cell sense.
  EXPECT_GT(armed_lat, plain_lat);
}

TEST(FaultHandling, LadderExhaustionLosesThePage) {
  nand::ErrorModelConfig em;
  em.base_rber = 0.05;  // hopeless medium
  em.layer_skew = 1.0;
  FaultHandlingConfig handling;
  handling.max_read_retries = 0;  // no ladder: first ECC failure is final
  FlashTarget target(Geo(), nand::NandTiming{});
  target.ArmErrorModel(em);
  target.ArmFaults(nand::FaultPlanConfig{}, handling, 1);
  ConventionalFtl ftl(target, SmallCfg());
  Us now = ftl.Write(0, 4096, 0).completion_us;
  now = ftl.Read(0, 4096, now).completion_us;
  EXPECT_EQ(target.read_error_stats().unrecovered_reads, 1u);
  EXPECT_EQ(ftl.fault_stats().host_unreadable_pages, 1u);
  // The dead mapping is dropped: a re-read is unmapped (and free).
  EXPECT_EQ(ftl.ProbePpn(0), kInvalidPpn);
  ftl.Read(0, 4096, now);
  EXPECT_EQ(target.read_error_stats().sampled_reads, 1u);
  EXPECT_EQ(ftl.fault_stats().host_unreadable_pages, 1u);
}

TEST(FaultHandling, ProgramFailuresRetireBlocksWithoutLosingData) {
  nand::FaultPlanConfig plan;
  plan.program_fail_prob = 0.002;
  FlashTarget target(Geo(/*blocks_per_plane=*/64), nand::NandTiming{});
  target.ArmFaults(plan, FaultHandlingConfig{}, 3);
  ConventionalFtl ftl(target, SmallCfg());
  Us now = 0;
  for (std::uint64_t off = 0; off + 4096 <= ftl.LogicalBytes(); off += 4096) {
    now = ftl.Write(off, 4096, now).completion_us;
  }
  util::Xoshiro256StarStar rng(4);
  for (int i = 0; i < 3000; ++i) {
    now = ftl.Write(rng.UniformBelow(64) * 4096, 4096, now).completion_us;
  }
  // Failed programs re-allocated (no data lost), their blocks flagged and
  // retired once GC erased them.
  EXPECT_GT(ftl.fault_stats().program_failures, 0u);
  EXPECT_GT(ftl.blocks().RetiredCount(), 0u);
  EXPECT_EQ(ftl.fault_stats().LostPages(), 0u);
  for (Lpn lpn = 0; lpn < ftl.LogicalPages(); ++lpn) {
    ASSERT_NE(ftl.ProbePpn(lpn), kInvalidPpn);
  }
  // Spare-pool accounting: per-block states agree with the retired total.
  std::uint64_t retired = 0;
  for (BlockId b = 0; b < ftl.blocks().total_blocks(); ++b) {
    if (ftl.blocks().UseOf(b) == BlockUse::kRetired) ++retired;
  }
  EXPECT_EQ(retired, ftl.blocks().RetiredCount());
}

TEST(FaultHandling, ProgramRetryExhaustionThrowsMediaError) {
  nand::FaultPlanConfig plan;
  plan.program_fail_prob = 0.99;
  FaultHandlingConfig handling;
  handling.max_program_retries = 2;
  FlashTarget target(Geo(), nand::NandTiming{});
  target.ArmFaults(plan, handling, 5);
  ConventionalFtl ftl(target, SmallCfg());
  bool threw = false;
  try {
    Us now = 0;
    for (int i = 0; i < 50; ++i) {
      now = ftl.Write(static_cast<std::uint64_t>(i) * 4096, 4096, now)
                .completion_us;
    }
  } catch (const MediaError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(FaultHandling, EraseFailuresRetireVictims) {
  nand::FaultPlanConfig plan;
  plan.erase_fail_prob = 0.3;
  FlashTarget target(Geo(/*blocks_per_plane=*/64), nand::NandTiming{});
  target.ArmFaults(plan, FaultHandlingConfig{}, 7);
  ConventionalFtl ftl(target, SmallCfg());
  // Churn until erase failures have eaten the spare pool (MediaError) or
  // the workload ends — either way failures must be counted and retired.
  try {
    Us now = 0;
    for (std::uint64_t off = 0; off + 4096 <= ftl.LogicalBytes(); off += 4096) {
      now = ftl.Write(off, 4096, now).completion_us;
    }
    util::Xoshiro256StarStar rng(8);
    for (int i = 0; i < 4000; ++i) {
      now = ftl.Write(rng.UniformBelow(64) * 4096, 4096, now).completion_us;
    }
  } catch (const MediaError&) {
  }
  EXPECT_GT(ftl.fault_stats().erase_failures, 0u);
  EXPECT_GT(ftl.blocks().RetiredCount(), 0u);
}

TEST(FaultHandling, SurvivesWholeDieLoss) {
  // 2 dies; die 0 drops out at t=10s.  Prefill (fault-free window) spreads
  // data across both dies; after the loss, writes must burn past the dead
  // frontier onto die 1 and reads of die-0 residents are reported lost.
  nand::FaultPlanConfig plan;
  plan.fail_dies = {0};
  plan.fail_at_us = 10'000'000;
  FtlConfig cfg = SmallCfg();
  cfg.op_ratio = 0.5;  // logical space fits in the surviving die
  FlashTarget target(Geo(/*blocks_per_plane=*/32, /*dies_per_chip=*/2),
                     nand::NandTiming{});
  target.ArmFaults(plan, FaultHandlingConfig{}, 9);
  ConventionalFtl ftl(target, cfg);
  const std::uint64_t prefill_bytes = ftl.LogicalBytes() / 2;
  Us now = 0;
  for (std::uint64_t off = 0; off + 4096 <= prefill_bytes; off += 4096) {
    now = ftl.Write(off, 4096, now).completion_us;
    ASSERT_LT(now, plan.fail_at_us) << "prefill ran into the failure window";
  }
  // Jump past the die loss and keep writing: allocations on die 0 fail with
  // die_lost, its spares are swept retired, and the writes land on die 1.
  now = 20'000'000;
  for (int i = 0; i < 40; ++i) {
    now = ftl.Write(prefill_bytes + static_cast<std::uint64_t>(i) * 4096, 4096,
                    now)
              .completion_us;
  }
  EXPECT_GT(ftl.fault_stats().program_failures, 0u);
  EXPECT_GT(ftl.blocks().RetiredCount(), 0u);
  // Post-loss writes all readable (they landed on the surviving die).
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(ftl.ProbePpn(prefill_bytes / 4096 + i), kInvalidPpn);
  }
  // Reading the prefill back loses exactly the die-0 residents.
  for (std::uint64_t off = 0; off + 4096 <= prefill_bytes; off += 4096) {
    now = ftl.Read(off, 4096, now).completion_us;
  }
  EXPECT_GT(ftl.fault_stats().host_unreadable_pages, 0u);
  EXPECT_GT(target.read_error_stats().lost_reads, 0u);
  EXPECT_LT(ftl.fault_stats().host_unreadable_pages, prefill_bytes / 4096);
}

}  // namespace
}  // namespace ctflash::ftl
