// Multi-tenant QoS configuration: who owns which submission queues, with
// what scheduling weight, rate limits and minimum-share reservation.
//
// A tenant is the unit of isolation at the host interface — a user, VM or
// service sharing the device.  Tenants own disjoint submission queues
// (every queue must be assigned when QoS is enabled, so queue -> tenant is
// a total function), and three independent knobs shape their service:
//
//  * weight       — weighted deficit-round-robin share among tenants whose
//                   transactions sit in the same priority class (reads
//                   still outrank writes globally; weights divide the
//                   class's dispatch slots in weight proportion);
//  * rate limits  — optional token buckets on IOPS and bytes/s with a
//                   configurable burst, applied at admission (a throttled
//                   request waits host-side and never occupies a queue
//                   slot, so an open-loop flooder cannot buy device time
//                   it is not entitled to);
//  * min_share    — optional dispatch-share floor: while the tenant's
//                   share of recent host dispatches sits below the
//                   reservation, its ready transactions are served first
//                   within their class, ahead of the DRR rotation.
//
// An empty QosConfig (the default) disables the whole layer: the host
// interface and scheduler take their pre-QoS single-tenant paths, which
// stay bit-identical to the seed (tests/host_qos_parity_test.cc).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ctflash::qos {

/// Index into QosConfig::tenants; also the identity carried by every host
/// flash transaction (sched::FlashTransaction::tenant).
using TenantId = std::uint32_t;

/// "No tenant": GC transactions, and all host work when QoS is disabled.
inline constexpr TenantId kNoTenant = std::numeric_limits<TenantId>::max();

struct TenantConfig {
  std::string name;
  /// DRR quantum: transactions served per round relative to other tenants.
  std::uint32_t weight = 1;
  /// Submission queues this tenant owns (disjoint across tenants; together
  /// the tenants must cover every queue).
  std::vector<std::uint32_t> queues;
  /// Token-bucket IOPS cap (requests/s); 0 = uncapped.
  double iops_limit = 0.0;
  /// IOPS bucket capacity in requests; 0 = 10 ms worth of rate, >= 1.
  double iops_burst = 0.0;
  /// Token-bucket throughput cap (bytes/s); 0 = uncapped.
  double bytes_per_sec_limit = 0.0;
  /// Bytes bucket capacity; 0 = 10 ms worth of rate, >= 128 KiB.
  double bytes_burst = 0.0;
  /// Guaranteed fraction [0, 1) of host dispatch slots (see file header);
  /// 0 = no reservation.  Reservations must sum to <= 1 across tenants.
  double min_share = 0.0;

  bool Limited() const { return iops_limit > 0.0 || bytes_per_sec_limit > 0.0; }
};

struct QosConfig {
  std::vector<TenantConfig> tenants;

  bool Enabled() const { return !tenants.empty(); }

  /// Throws std::invalid_argument unless every tenant is well-formed and
  /// the tenants partition [0, num_queues) exactly.
  void Validate(std::uint32_t num_queues) const;
};

}  // namespace ctflash::qos
