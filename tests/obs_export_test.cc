// Exporter unit tests on a hand-driven tracer: the Chrome trace-event JSON
// round-trips through the project's own parser, spans/metadata land on the
// right tracks, phase arithmetic is exact on synthetic event streams, and
// identical event streams serialize to identical bytes (the digest the
// campaign/cluster determinism assertions reuse).
#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/phase.h"
#include "obs/tracer.h"
#include "sched/observer.h"
#include "sched/transaction.h"

namespace ctflash::obs {
namespace {

sched::FlashTransaction HostRead(std::uint64_t request_id, std::uint64_t seq,
                                 Lpn lpn) {
  sched::FlashTransaction txn;
  txn.request_id = request_id;
  txn.seq = seq;
  txn.source = sched::TxnSource::kHostRead;
  txn.lpn = lpn;
  return txn;
}

sched::FlashTransaction GcCopy(std::uint64_t job, std::uint64_t seq) {
  sched::FlashTransaction txn;
  txn.request_id = job;
  txn.seq = seq;
  txn.source = sched::TxnSource::kGcCopy;
  txn.gc_src = 0;
  txn.gc_block = 1;
  return txn;
}

sched::DispatchContext At(Us dispatch_us, Us enqueue_us, std::uint32_t die,
                          Us die_free_at) {
  sched::DispatchContext ctx;
  ctx.dispatch_us = dispatch_us;
  ctx.enqueue_us = enqueue_us;
  ctx.die = die;
  ctx.die_free_at = die_free_at;
  return ctx;
}

/// One deterministic synthetic stream: a GC copy occupies die 2, a host
/// read dispatches behind it, a retry ladder fires, and the request
/// completes.  Phase arithmetic: paced 10, queued 10, media 80.
void DriveOne(Tracer& tracer) {
  tracer.OnDispatch(GcCopy(900, 1), At(100, 90, 2, 100));
  tracer.OnSubmit(1, /*is_read=*/true, /*tenant=*/0, /*submit_us=*/100);
  tracer.OnThrottled(1);
  tracer.OnAdmit(1, /*queue=*/0, /*admit_us=*/110);
  tracer.OnDispatch(HostRead(1, 2, 7), At(120, 110, 2, 150));
  tracer.OnTxnExecuted(GcCopy(900, 1), 100, 150);
  tracer.OnReadRetry(/*die=*/2, /*start_us=*/160, /*dur_us=*/20, /*rungs=*/2,
                     /*recovered=*/true);
  tracer.OnTxnExecuted(HostRead(1, 2, 7), 120, 200);
  tracer.OnUnreachable(/*die=*/3, /*now_us=*/210);
  tracer.OnRequestComplete(1, 200);
}

TracerConfig FullConfig() {
  TracerConfig cfg;
  cfg.record_spans = true;
  cfg.record_requests = true;
  cfg.metrics_epoch_us = 100;
  cfg.epoch_base_us = 0;
  return cfg;
}

TEST(ObsExport, SyntheticStreamPhaseArithmeticIsExact) {
  Tracer tracer(FullConfig());
  DriveOne(tracer);

  ASSERT_EQ(tracer.requests().size(), 1u);
  const PhaseRecord& r = tracer.requests()[0];
  EXPECT_EQ(r.PacedUs(), 10);
  EXPECT_EQ(r.QueuedUs(), 10);
  EXPECT_EQ(r.MediaUs(), 80);
  EXPECT_EQ(r.TotalUs(), 100);
  EXPECT_EQ(r.PacedUs() + r.QueuedUs() + r.MediaUs(), r.TotalUs());
  EXPECT_EQ(r.pace_cause, StallCause::kTokenBucket);
  // The read dispatched onto die 2 while GC job 900 was still in flight
  // there: the 30 us die wait is attributed to GC by name.
  EXPECT_EQ(r.media_cause, StallCause::kDieBusyGc);
  EXPECT_EQ(r.media_stall_us, 30);

  const PhaseBreakdown& read = tracer.phases().read;
  EXPECT_EQ(read.total.count(), 1u);
  EXPECT_DOUBLE_EQ(read.paced.total_us() + read.queued.total_us() +
                       read.media.total_us(),
                   read.total.total_us());
  EXPECT_EQ(read.stall_us[static_cast<std::size_t>(StallCause::kDieBusyGc)],
            30u);
  EXPECT_EQ(tracer.PendingRequests(), 0u);
}

TEST(ObsExport, ChromeTraceRoundTripsThroughJsonParser) {
  Tracer tracer(FullConfig());
  DriveOne(tracer);

  const std::string trace = ChromeTraceJson(tracer);
  const campaign::Json parsed = campaign::Json::Parse(trace);
  const campaign::Json* events = parsed.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->AsArray().empty());

  std::uint64_t metas = 0, spans = 0, counters = 0;
  bool saw_gc_span = false, saw_retry = false, saw_die_lost = false;
  for (const campaign::Json& e : events->AsArray()) {
    const std::string ph = e.GetStringOr("ph", "");
    if (ph == "M") ++metas;
    if (ph == "C") ++counters;
    if (ph == "X") {
      ++spans;
      const std::string name = e.GetStringOr("name", "");
      if (name == "gc-copy") saw_gc_span = true;
      if (name == "read-retry") saw_retry = true;
      if (name == "die-lost") saw_die_lost = true;
    }
  }
  EXPECT_GT(metas, 0u) << "track names missing";
  EXPECT_GT(spans, 0u);
  EXPECT_GT(counters, 0u) << "metrics_epoch_us > 0 should emit counters";
  EXPECT_TRUE(saw_gc_span);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_die_lost);
}

TEST(ObsExport, IdenticalStreamsSerializeToIdenticalBytes) {
  Tracer a(FullConfig());
  Tracer b(FullConfig());
  DriveOne(a);
  DriveOne(b);
  const std::string ja = ChromeTraceJson(a);
  const std::string jb = ChromeTraceJson(b);
  EXPECT_EQ(ja, jb);
  EXPECT_EQ(TraceDigest(ja), TraceDigest(jb));
  EXPECT_EQ(TracerJson(a).Dump(2), TracerJson(b).Dump(2));
}

TEST(ObsExport, FleetExportSkipsNullTracersAndSplitsProcesses) {
  Tracer tracer(FullConfig());
  DriveOne(tracer);
  const std::vector<std::pair<std::string, const Tracer*>> fleet = {
      {"dev0", &tracer}, {"dev1", nullptr}};
  const campaign::Json parsed = campaign::Json::Parse(ChromeTraceJson(fleet));
  bool saw_dev0 = false, saw_dev1 = false;
  for (const campaign::Json& e : parsed.Get("traceEvents")->AsArray()) {
    if (e.GetStringOr("ph", "") != "M") continue;
    if (e.GetStringOr("name", "") != "process_name") continue;
    const std::string name = e.Get("args")->GetStringOr("name", "");
    if (name == "dev0") saw_dev0 = true;
    if (name == "dev1") saw_dev1 = true;
  }
  EXPECT_TRUE(saw_dev0);
  EXPECT_FALSE(saw_dev1);
}

TEST(ObsExport, ChargeDeadDeviceBooksTimeoutsAsDeadDeviceStall) {
  TracerConfig cfg;
  cfg.record_spans = false;
  cfg.metrics_epoch_us = 1000;
  Tracer tracer(cfg);
  tracer.OnSubmit(5, true, 0, 100);  // stranded in flight
  tracer.ChargeDeadDevice(/*reads=*/2, /*writes=*/1, /*charged_us=*/5000,
                          /*at_us=*/1500);

  const PhaseStats& phases = tracer.phases();
  EXPECT_EQ(phases.read.total.count(), 2u);
  EXPECT_EQ(phases.write.total.count(), 1u);
  EXPECT_DOUBLE_EQ(phases.read.media.total_us(), 10000.0);
  const auto dead = static_cast<std::size_t>(StallCause::kDeadDevice);
  EXPECT_EQ(phases.read.stall_us[dead], 10000u);
  EXPECT_EQ(phases.read.stall_events[dead], 2u);
  // All in-flight tracer state for the device is gone.
  EXPECT_EQ(tracer.PendingRequests(), 0u);
  // The charge landed in epoch 1 (at_us 1500 on a 1000 us grid).
  ASSERT_GE(tracer.epoch_counters().size(), 2u);
  EXPECT_EQ(tracer.epoch_counters()[1].timeouts, 3u);

  const campaign::Json json = PhaseStatsJson(phases);
  EXPECT_EQ(json.Get("read")
                ->Get("stalls")
                ->Get("dead-device")
                ->GetUintOr("events", 0),
            2u);
}

TEST(ObsExport, SpanCapCountsDropsInsteadOfGrowing)  {
  TracerConfig cfg;
  cfg.record_spans = true;
  cfg.max_spans = 4;
  Tracer tracer(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.OnDispatch(GcCopy(i, i), At(100 + static_cast<Us>(i), 100, 0, 0));
    tracer.OnTxnExecuted(GcCopy(i, i), 100 + static_cast<Us>(i),
                         110 + static_cast<Us>(i));
  }
  EXPECT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);
}

}  // namespace
}  // namespace ctflash::obs
