#include "ftl/flash_target.h"

#include <gtest/gtest.h>

namespace ctflash::ftl {
namespace {

nand::NandGeometry Geo() {
  nand::NandGeometry g;
  g.channels = 2;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_size_bytes = 16 * 1024;
  g.num_layers = 8;
  return g;
}

nand::NandTiming Timing() {
  nand::NandTiming t;
  t.page_read_us = 80;
  t.page_program_us = 600;
  t.block_erase_us = 4000;
  t.transfer_mb_per_s = 16.384;  // 16 KiB transfers in exactly 1000 us
  t.speed_ratio = 2.0;
  return t;
}

TEST(FlashTarget, ServiceTimeReadIsCellPlusTransfer) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kServiceTime);
  ASSERT_EQ(ft.ProgramPage(0, 0), 0 + 1000 + 600);  // transfer then program
  // Page 0 = top layer: full 80 us cell read + 1000 us transfer.
  EXPECT_EQ(ft.ReadPage(0, 5000), 5000 + 80 + 1000);
}

TEST(FlashTarget, ServiceTimeIgnoresContention) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kServiceTime);
  ft.ProgramPage(0, 0);
  // Two reads at the same arrival both finish at arrival + service.
  const Us a = ft.ReadPage(0, 100);
  const Us b = ft.ReadPage(0, 100);
  EXPECT_EQ(a, b);
}

TEST(FlashTarget, QueuedModeSerializesChipOps) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kQueued);
  ft.ProgramPage(0, 0);
  const Us first = ft.ReadPage(0, 10000);
  const Us second = ft.ReadPage(0, 10000);  // queues behind the first
  EXPECT_GT(second, first);
}

TEST(FlashTarget, PartialTransferShortensRead) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kServiceTime);
  ft.ProgramPage(0, 0);
  const Us full = ft.ReadPage(0, 0, 0);           // whole page
  const Us quarter = ft.ReadPage(0, 0, 4 * 1024); // 4 KiB of 16 KiB
  EXPECT_LT(quarter, full);
  EXPECT_EQ(full - quarter, 750);  // 12 KiB less at 16.384 MB/s
  // Oversized request clamps to the page transfer.
  EXPECT_EQ(ft.ReadPage(0, 0, 1 << 20), full);
}

TEST(FlashTarget, LayerAffectsReadCompletion) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kServiceTime);
  for (std::uint32_t p = 0; p < 8; ++p) ft.ProgramPage(p, 0);
  const Us top = ft.ReadPage(ft.geometry().PpnOf(0, 0), 0);
  const Us bottom = ft.ReadPage(ft.geometry().PpnOf(0, 7), 0);
  EXPECT_EQ(top - bottom, 40);  // 80 us vs 80/2 us cell time
}

TEST(FlashTarget, EraseCompletion) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kServiceTime);
  EXPECT_EQ(ft.EraseBlock(0, 123), 123 + 4000);
}

TEST(FlashTarget, CopyPageChainsReadThenProgram) {
  FlashTarget ft(Geo(), Timing(), 1000, TimingMode::kServiceTime);
  ft.ProgramPage(ft.geometry().PpnOf(0, 0), 0);
  const Us done = ft.CopyPage(ft.geometry().PpnOf(0, 0),
                              ft.geometry().PpnOf(1, 0), 0);
  // read (80 + 1000) then program (1000 + 600).
  EXPECT_EQ(done, 80 + 1000 + 1000 + 600);
}

TEST(FlashTarget, BusyTimeTrackedInBothModes) {
  for (auto mode : {TimingMode::kServiceTime, TimingMode::kQueued}) {
    FlashTarget ft(Geo(), Timing(), 1000, mode);
    ft.ProgramPage(0, 0);
    ft.ReadPage(0, 0);
    Us chips = 0, channels = 0;
    for (std::size_t i = 0; i < ft.chips().Count(); ++i) {
      chips += ft.chips().At(i).BusyTime();
    }
    for (std::size_t i = 0; i < ft.channels().Count(); ++i) {
      channels += ft.channels().At(i).BusyTime();
    }
    EXPECT_EQ(chips, 600 + 80);
    EXPECT_EQ(channels, 2000);
  }
}

TEST(FlashTarget, NandStateSharedAcrossOps) {
  FlashTarget ft(Geo(), Timing());
  ft.ProgramPage(0, 0);
  EXPECT_TRUE(ft.nand().IsPageProgrammed(0));
  EXPECT_EQ(ft.nand().counters().programs, 1u);
}

}  // namespace
}  // namespace ctflash::ftl
