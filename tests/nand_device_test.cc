#include "nand/device.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::nand {
namespace {

NandGeometry Geo() {
  NandGeometry g;
  g.channels = 1;
  g.chips_per_channel = 2;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_size_bytes = 4096;
  g.num_layers = 8;
  return g;
}

class NandDeviceTest : public ::testing::Test {
 protected:
  NandDeviceTest() : dev_(Geo(), NandTiming{}, /*endurance=*/5) {}
  NandDevice dev_;
};

TEST_F(NandDeviceTest, SequentialProgramSucceeds) {
  for (std::uint32_t p = 0; p < 8; ++p) {
    Us t = 0;
    EXPECT_EQ(dev_.Program(dev_.geometry().PpnOf(0, p), &t), NandStatus::kOk);
    EXPECT_GT(t, 0);
  }
  EXPECT_TRUE(dev_.IsBlockFull(0));
  EXPECT_EQ(dev_.NextProgramPage(0), 8u);
}

TEST_F(NandDeviceTest, OutOfOrderProgramRejected) {
  EXPECT_EQ(dev_.Program(dev_.geometry().PpnOf(0, 1)),
            NandStatus::kProgramOutOfOrder);
  // State unchanged: page 0 still programmable.
  EXPECT_EQ(dev_.Program(dev_.geometry().PpnOf(0, 0)), NandStatus::kOk);
}

TEST_F(NandDeviceTest, ReprogramWithoutEraseRejected) {
  const Ppn ppn = dev_.geometry().PpnOf(0, 0);
  EXPECT_EQ(dev_.Program(ppn), NandStatus::kOk);
  EXPECT_EQ(dev_.Program(ppn), NandStatus::kProgramPageNotFree);
}

TEST_F(NandDeviceTest, ReadRequiresProgrammedPage) {
  const Ppn ppn = dev_.geometry().PpnOf(1, 0);
  EXPECT_EQ(dev_.Read(ppn), NandStatus::kReadFreePage);
  EXPECT_EQ(dev_.Program(ppn), NandStatus::kOk);
  Us t = 0;
  EXPECT_EQ(dev_.Read(ppn, &t), NandStatus::kOk);
  EXPECT_GT(t, 0);
}

TEST_F(NandDeviceTest, EraseResetsProgramPointer) {
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_EQ(dev_.Program(dev_.geometry().PpnOf(0, p)), NandStatus::kOk);
  }
  EXPECT_EQ(dev_.Erase(0), NandStatus::kOk);
  EXPECT_TRUE(dev_.IsBlockErased(0));
  EXPECT_EQ(dev_.PeCycles(0), 1u);
  EXPECT_EQ(dev_.Read(dev_.geometry().PpnOf(0, 0)), NandStatus::kReadFreePage);
  EXPECT_EQ(dev_.Program(dev_.geometry().PpnOf(0, 0)), NandStatus::kOk);
}

TEST_F(NandDeviceTest, EnduranceRetiresBlock) {
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_EQ(dev_.Erase(2), NandStatus::kOk);
  }
  EXPECT_TRUE(dev_.IsBlockBad(2));
  EXPECT_EQ(dev_.Erase(2), NandStatus::kBlockBad);
  EXPECT_EQ(dev_.Program(dev_.geometry().PpnOf(2, 0)), NandStatus::kBlockBad);
  EXPECT_EQ(dev_.Read(dev_.geometry().PpnOf(2, 0)), NandStatus::kBlockBad);
  // Other blocks unaffected.
  EXPECT_FALSE(dev_.IsBlockBad(1));
}

TEST_F(NandDeviceTest, InvalidAddresses) {
  EXPECT_EQ(dev_.Program(dev_.geometry().TotalPages()),
            NandStatus::kInvalidAddress);
  EXPECT_EQ(dev_.Read(dev_.geometry().TotalPages()),
            NandStatus::kInvalidAddress);
  EXPECT_EQ(dev_.Erase(dev_.geometry().TotalBlocks()),
            NandStatus::kInvalidAddress);
  EXPECT_THROW(dev_.NextProgramPage(999), std::out_of_range);
  EXPECT_THROW(dev_.PeCycles(999), std::out_of_range);
  EXPECT_THROW(dev_.IsBlockBad(999), std::out_of_range);
  EXPECT_THROW(dev_.IsPageProgrammed(dev_.geometry().TotalPages()),
               std::out_of_range);
}

TEST_F(NandDeviceTest, CountersAccumulate) {
  const Ppn ppn = dev_.geometry().PpnOf(0, 0);
  ASSERT_EQ(dev_.Program(ppn), NandStatus::kOk);
  ASSERT_EQ(dev_.Read(ppn), NandStatus::kOk);
  ASSERT_EQ(dev_.Read(ppn), NandStatus::kOk);
  ASSERT_EQ(dev_.Erase(0), NandStatus::kOk);
  const auto& c = dev_.counters();
  EXPECT_EQ(c.programs, 1u);
  EXPECT_EQ(c.reads, 2u);
  EXPECT_EQ(c.erases, 1u);
  EXPECT_GT(c.program_time_us, 0);
  EXPECT_GT(c.read_time_us, 0);
  EXPECT_EQ(c.erase_time_us, 4000);
  dev_.ResetCounters();
  EXPECT_EQ(dev_.counters().programs, 0u);
}

TEST_F(NandDeviceTest, FailedOpsDoNotCount) {
  ASSERT_EQ(dev_.Read(dev_.geometry().PpnOf(0, 0)), NandStatus::kReadFreePage);
  EXPECT_EQ(dev_.counters().reads, 0u);
}

TEST_F(NandDeviceTest, LayerSpeedVisibleThroughOps) {
  // Fill block 0 and compare first/last page read times (R = 2 default).
  for (std::uint32_t p = 0; p < 8; ++p) {
    ASSERT_EQ(dev_.Program(dev_.geometry().PpnOf(0, p)), NandStatus::kOk);
  }
  Us top = 0, bottom = 0;
  ASSERT_EQ(dev_.Read(dev_.geometry().PpnOf(0, 0), &top), NandStatus::kOk);
  ASSERT_EQ(dev_.Read(dev_.geometry().PpnOf(0, 7), &bottom), NandStatus::kOk);
  EXPECT_GT(top, bottom);
  EXPECT_NEAR(static_cast<double>(top) / static_cast<double>(bottom), 2.0, 0.1);
}

TEST_F(NandDeviceTest, IsPageProgrammedTracksPointer) {
  const Ppn p0 = dev_.geometry().PpnOf(0, 0);
  EXPECT_FALSE(dev_.IsPageProgrammed(p0));
  ASSERT_EQ(dev_.Program(p0), NandStatus::kOk);
  EXPECT_TRUE(dev_.IsPageProgrammed(p0));
  EXPECT_FALSE(dev_.IsPageProgrammed(dev_.geometry().PpnOf(0, 1)));
}

TEST(NandStatusNames, AllDistinct) {
  EXPECT_STREQ(NandStatusName(NandStatus::kOk), "kOk");
  EXPECT_STREQ(NandStatusName(NandStatus::kProgramOutOfOrder),
               "kProgramOutOfOrder");
  EXPECT_STREQ(NandStatusName(NandStatus::kBlockBad), "kBlockBad");
}

}  // namespace
}  // namespace ctflash::nand
