#include "nand/error_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::nand {
namespace {

NandGeometry Geo() {
  NandGeometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 2;
  g.pages_per_block = 64;
  g.page_size_bytes = 16 * 1024;
  g.num_layers = 64;
  return g;
}

TEST(ErrorModelConfig, Validation) {
  ErrorModelConfig c;
  c.base_rber = 0.0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = ErrorModelConfig{};
  c.layer_skew = 0.5;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = ErrorModelConfig{};
  c.pe_scale = 0.0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = ErrorModelConfig{};
  c.codeword_bytes = 0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
}

TEST(ErrorModel, PageMustBeWholeCodewords) {
  ErrorModelConfig c;
  c.codeword_bytes = 1000;  // 16384 % 1000 != 0
  EXPECT_THROW(LayerErrorModel(Geo(), c), std::invalid_argument);
}

TEST(ErrorModel, RberGrowsTowardBottomLayers) {
  const LayerErrorModel m(Geo(), ErrorModelConfig{});
  for (std::uint32_t p = 1; p < 64; ++p) {
    EXPECT_GE(m.Rber(p, 0), m.Rber(p - 1, 0));
  }
  // Bottom/top ratio equals the configured skew.
  EXPECT_NEAR(m.Rber(63, 0) / m.Rber(0, 0), m.config().layer_skew, 1e-6);
}

TEST(ErrorModel, RberGrowsWithWear) {
  const LayerErrorModel m(Geo(), ErrorModelConfig{});
  EXPECT_GT(m.Rber(0, 3000), m.Rber(0, 1000));
  EXPECT_GT(m.Rber(0, 1000), m.Rber(0, 0));
}

TEST(ErrorModel, RberSaturatesAtOne) {
  ErrorModelConfig c;
  c.base_rber = 0.5;
  c.layer_skew = 8.0;
  const LayerErrorModel m(Geo(), c);
  EXPECT_DOUBLE_EQ(m.Rber(63, 100000), 1.0);
}

TEST(ErrorModel, CorrectableRespectsBudget) {
  ErrorModelConfig c;  // 16 codewords/page, 40 bits each
  const LayerErrorModel m(Geo(), c);
  EXPECT_TRUE(m.Correctable(0));
  EXPECT_TRUE(m.Correctable(40 * 16));  // exactly at budget per codeword
  EXPECT_FALSE(m.Correctable(40 * 16 + 16));
}

TEST(ErrorModel, SampledErrorsMatchExpectation) {
  ErrorModelConfig c;
  c.base_rber = 1e-5;  // lambda = 16KiB*8*1e-5 ~ 1.3 at the top layer
  const LayerErrorModel m(Geo(), c);
  util::Xoshiro256StarStar rng(99);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(m.SampleBitErrors(0, 0, rng));
  }
  const double expected = 16.0 * 1024 * 8 * 1e-5;
  EXPECT_NEAR(sum / n, expected, expected * 0.05);
}

TEST(ErrorModel, LargeLambdaUsesNormalApprox) {
  ErrorModelConfig c;
  c.base_rber = 1e-3;  // lambda ~ 131
  const LayerErrorModel m(Geo(), c);
  util::Xoshiro256StarStar rng(7);
  const int n = 5000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(m.SampleBitErrors(0, 0, rng));
  }
  const double expected = 16.0 * 1024 * 8 * 1e-3;
  EXPECT_NEAR(sum / n, expected, expected * 0.05);
}

TEST(ErrorModel, SingleLayerDeviceHasFlatRber) {
  // depth(layer) must be 0 when num_layers == 1 — the old
  // layer / (num_layers - 1) formula divided by zero here.
  NandGeometry g = Geo();
  g.num_layers = 1;
  const ErrorModelConfig c;
  const LayerErrorModel m(g, c);
  for (std::uint32_t p = 0; p < 64; p += 21) {
    EXPECT_DOUBLE_EQ(m.Rber(p, 0), c.base_rber);
  }
}

TEST(ErrorModel, RberEndpointsLocked) {
  // depth must hit exactly 0 at the top layer and exactly 1 at the bottom.
  const ErrorModelConfig c;
  const LayerErrorModel m(Geo(), c);
  EXPECT_DOUBLE_EQ(m.Rber(0, 0), c.base_rber);
  EXPECT_DOUBLE_EQ(m.Rber(63, 0), c.base_rber * c.layer_skew);
}

TEST(ErrorModel, SubPageTransferSamplesOnlyDecodedCodewords) {
  ErrorModelConfig c;
  c.base_rber = 1e-4;
  const LayerErrorModel m(Geo(), c);
  util::Xoshiro256StarStar rng(5);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    // A 512-byte transfer decodes one whole 1 KiB codeword, not the page.
    sum += static_cast<double>(m.SampleBitErrors(0, 0, rng, 512));
  }
  const double expected = 1024.0 * 8 * 1e-4;
  EXPECT_NEAR(sum / n, expected, expected * 0.05);
}

TEST(ErrorModel, FullPageTransferDrawsIdenticallyToDefault) {
  const LayerErrorModel m(Geo(), ErrorModelConfig{});
  util::Xoshiro256StarStar a(3), b(3), c(3);
  for (int i = 0; i < 50; ++i) {
    const auto whole = m.SampleBitErrors(10, 100, a);
    EXPECT_EQ(whole, m.SampleBitErrors(10, 100, b, 16 * 1024));
    EXPECT_EQ(whole, m.SampleBitErrors(10, 100, c, 32 * 1024));  // clamped
  }
}

TEST(ErrorModel, RberScaleInflatesSampling) {
  ErrorModelConfig c;
  c.base_rber = 1e-4;
  const LayerErrorModel m(Geo(), c);
  util::Xoshiro256StarStar rng(9);
  const int n = 20000;
  double base = 0.0, scaled = 0.0;
  for (int i = 0; i < n; ++i) {
    base += static_cast<double>(m.SampleBitErrors(0, 0, rng, 0, 1.0));
    scaled += static_cast<double>(m.SampleBitErrors(0, 0, rng, 0, 3.0));
  }
  EXPECT_NEAR(scaled / base, 3.0, 0.15);
}

TEST(ErrorModel, CorrectableBudgetScalesWithTransfer) {
  const LayerErrorModel m(Geo(), ErrorModelConfig{});  // 40 bits/codeword
  EXPECT_TRUE(m.Correctable(40, 1024));    // one codeword: exactly at budget
  EXPECT_FALSE(m.Correctable(41, 100));    // rounds up to one codeword
  EXPECT_TRUE(m.Correctable(41, 2048));    // two codewords absorb it
}

TEST(ErrorModel, SamplingDeterministicForSeed) {
  const LayerErrorModel m(Geo(), ErrorModelConfig{});
  util::Xoshiro256StarStar a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.SampleBitErrors(10, 500, a), m.SampleBitErrors(10, 500, b));
  }
}

TEST(ErrorModel, EnduranceHigherForTopLayers) {
  const LayerErrorModel m(Geo(), ErrorModelConfig{});
  // Top layers have lower RBER, so they last longer.
  EXPECT_GT(m.EnduranceEstimate(0), m.EnduranceEstimate(63));
  EXPECT_GT(m.EnduranceEstimate(63), 0.0);
}

TEST(ErrorModel, EnduranceZeroWhenFreshRberExceedsBudget) {
  ErrorModelConfig c;
  c.base_rber = 0.1;
  const LayerErrorModel m(Geo(), c);
  EXPECT_DOUBLE_EQ(m.EnduranceEstimate(63), 0.0);
}

TEST(ErrorModel, EnduranceConsistentWithRber) {
  // At the estimated endurance, mean errors per codeword ~ ECC budget.
  const LayerErrorModel m(Geo(), ErrorModelConfig{});
  const double pe = m.EnduranceEstimate(32);
  const double rber = m.Rber(32, static_cast<std::uint32_t>(pe));
  const double bits_per_cw = 1024 * 8;
  EXPECT_NEAR(rber * bits_per_cw, 40.0, 1.0);
}

}  // namespace
}  // namespace ctflash::nand
