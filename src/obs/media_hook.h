// Media-level observation hook: lets the flash target report read-retry
// ladders and dead-die accesses to the tracer without the FTL layer
// depending on obs internals (primitive arguments only; ftl/flash_target.h
// forward-declares this class and holds a borrowed pointer).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace ctflash::obs {

class MediaHook {
 public:
  virtual ~MediaHook() = default;

  /// A checked read entered the retry ladder on `die`: `rungs` extra
  /// senses spanning [start_us, start_us + dur_us); `recovered` tells
  /// whether the ladder found a clean sense.
  virtual void OnReadRetry(std::uint32_t die, Us start_us, Us dur_us,
                           std::uint32_t rungs, bool recovered) = 0;

  /// A media access hit a die/channel that no longer responds at `now_us`.
  virtual void OnUnreachable(std::uint32_t die, Us now_us) = 0;
};

}  // namespace ctflash::obs
