// Ablation bench — which PPB design pieces carry the gains?
//
// Runs the web/SQL trace with individual PPB mechanisms disabled, plus the
// design alternatives DESIGN.md calls out:
//   full            : the complete strategy (reference)
//   no-gc-migrate   : data never migrates during GC (update-only movement)
//   no-upd-migrate  : updates ignore hotness (GC-only movement)
//   strict-pairing  : Algorithm-1 literal allocation (max_open_fast_vbs = 0)
//   split-4         : four virtual blocks per physical block
//   always-hot      : first-stage classifier disabled (everything "hot")
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Ablation: PPB design choices (web/SQL trace, 2x)",
                     "Section 3 design elements", options);

  struct Variant {
    std::string name;
    core::PpbConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", core::PpbConfig{}});
  {
    core::PpbConfig c;
    c.migrate_on_gc = false;
    variants.push_back({"no-gc-migrate", c});
  }
  {
    core::PpbConfig c;
    c.migrate_on_update = false;
    variants.push_back({"no-upd-migrate", c});
  }
  {
    core::PpbConfig c;
    c.max_open_fast_vbs = 0;
    variants.push_back({"strict-pairing", c});
  }
  {
    core::PpbConfig c;
    c.vb_split = 4;
    variants.push_back({"split-4", c});
  }
  {
    core::PpbConfig c;
    c.hot_size_threshold_bytes = 1ull << 40;  // size check always true
    variants.push_back({"always-hot", c});
  }

  const auto baseline =
      bench::RunOne(ssd::FtlKind::kConventional, bench::Workload::kWebServer,
                    16 * 1024, 2.0, options);

  util::TablePrinter table({"Variant", "Read enh.", "Write delta",
                            "Erase ratio", "WAF"});
  for (const auto& v : variants) {
    const auto res =
        bench::RunOne(ssd::FtlKind::kPpb, bench::Workload::kWebServer,
                      16 * 1024, 2.0, options, v.cfg);
    const double erase_ratio =
        baseline.erase_count == 0
            ? 1.0
            : static_cast<double>(res.erase_count) /
                  static_cast<double>(baseline.erase_count);
    table.AddRow({v.name,
                  util::TablePrinter::FormatPercent(ssd::Enhancement(
                      baseline.TotalReadSeconds(), res.TotalReadSeconds())),
                  util::TablePrinter::FormatPercent(
                      ssd::Enhancement(baseline.TotalWriteSeconds(),
                                       res.TotalWriteSeconds()),
                      4),
                  util::TablePrinter::FormatDouble(erase_ratio, 3),
                  util::TablePrinter::FormatDouble(res.waf, 3)});
  }
  table.Print();
  std::cout << "\nExpected: 'full' leads on read enhancement; removing either\n"
               "migration path or the first stage shrinks the gain; strict\n"
               "pairing degenerates placement under demand imbalance.\n";
  return 0;
}
